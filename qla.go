// Package qla is a from-scratch Go implementation of the Quantum Logic
// Array (QLA) microarchitecture of Metodi, Thaker, Cross, Chong and Chuang
// (MICRO-38, 2005): a tiled ion-trap quantum computer built from level-2
// Steane [[7,1,3]] logical qubits connected by a teleportation-island
// interconnect, together with ARQ, the stabilizer-formalism architecture
// simulator the paper introduces.
//
// The package is the public facade over the implementation packages:
//
//   - NewEngine builds the front door: a concurrency-safe,
//     context-aware executor for the registry of named experiments
//     (Experiments, Lookup) that regenerate every table and figure of
//     the paper's evaluation from a JSON-serializable Spec; see
//     EXPERIMENTS.md.
//   - NewMachine configures a QLA instance (floorplan, technology
//     parameters, recursion level, channel bandwidth) and answers
//     architecture questions: EC-step clock tick, logical failure rate,
//     communication overlap, circuit execution estimates.
//   - NewJob / ParseJob run circuits through the ARQ pipeline: exact
//     stabilizer execution, noisy Pauli-frame Monte Carlo, pulse-schedule
//     lowering.
//   - The top-level experiment functions (Table2, Figure7, Figure9,
//     ECLatency, Equation2, SchedulerSweep, SyndromeRates, …) remain as
//     thin wrappers over the registry for callers that want one-line
//     access without building a Spec.
package qla

import (
	"context"
	"fmt"
	"io"

	"qla/internal/adder"
	"qla/internal/arq"
	"qla/internal/circuit"
	"qla/internal/codes"
	"qla/internal/commsim"
	"qla/internal/control"
	"qla/internal/core"
	_ "qla/internal/cyclesim" // installs the cycle-* experiment family
	"qla/internal/engine"
	"qla/internal/ft"
	"qla/internal/iontrap"
	"qla/internal/modarith"
	"qla/internal/multichip"
	"qla/internal/netsim"
	"qla/internal/qccd"
	"qla/internal/sched"
	"qla/internal/shor"
	"qla/internal/stabilizer"
	"qla/internal/sweep"
	"qla/internal/teleport"
	"qla/internal/threshold"
)

// Re-exported model types. The aliases keep the full method sets of the
// implementation packages while presenting a single import path.
type (
	// Machine is a configured QLA instance.
	Machine = core.Machine
	// MachineOption configures NewMachine.
	MachineOption = core.Option
	// Report is an architecture-level circuit execution estimate.
	Report = core.Report
	// Circuit is the ARQ circuit IR.
	Circuit = circuit.Circuit
	// Job is a circuit mapped onto a machine.
	Job = arq.Job
	// TechParams is one technology parameter set (Table 1).
	TechParams = iontrap.Params
	// ShorResources is one row of Table 2.
	ShorResources = shor.Resources
	// ThresholdPoint is one Figure-7 Monte Carlo sample.
	ThresholdPoint = threshold.Point
	// LinkModel is the Figure-9 repeater-channel model.
	LinkModel = teleport.LinkParams
	// Fig9Point is one Figure-9 series sample.
	Fig9Point = teleport.Figure9Point
	// BandwidthResult is one Section-5 scheduler experiment row.
	BandwidthResult = netsim.BandwidthResult
	// State is an n-qubit stabilizer state (the ARQ backend).
	State = stabilizer.State
	// ECLatencySummary reports the Equation-1 headline latencies.
	ECLatencySummary = ft.Summary
)

// Machine construction.

// NewMachine builds a QLA machine with the given logical-qubit capacity.
func NewMachine(logicalQubits int, opts ...MachineOption) (*Machine, error) {
	return core.New(logicalQubits, opts...)
}

// WithParams selects the technology parameter set (default ExpectedParams).
func WithParams(p TechParams) MachineOption { return core.WithParams(p) }

// WithLevel selects the recursion level (default 2).
func WithLevel(level int) MachineOption { return core.WithLevel(level) }

// WithBandwidth selects the channel bandwidth (default 2).
func WithBandwidth(b int) MachineOption { return core.WithBandwidth(b) }

// Technology parameters (Table 1).

// CurrentParams returns the experimentally achieved failure rates.
func CurrentParams() TechParams { return iontrap.Current() }

// ExpectedParams returns the projected failure rates used throughout the
// paper's evaluation.
func ExpectedParams() TechParams { return iontrap.Expected() }

// Circuits and ARQ.

// NewCircuit returns an empty circuit over n qubits.
func NewCircuit(n int) *Circuit { return circuit.New(n) }

// ParseCircuit reads the .qc text format.
func ParseCircuit(r io.Reader) (*Circuit, error) { return circuit.Parse(r) }

// NewState returns the |0…0⟩ stabilizer state on n qubits.
func NewState(n int) *State { return stabilizer.New(n) }

// NewJob maps a circuit onto a fresh machine sized to fit it.
func NewJob(c *Circuit, opts ...MachineOption) (*Job, error) {
	return arq.NewJob(c, opts...)
}

// ParseJob parses a .qc circuit and maps it onto a machine.
func ParseJob(r io.Reader, opts ...MachineOption) (*Job, error) {
	return arq.Parse(r, opts...)
}

// The Engine front door. Every experiment below (and more — see
// EXPERIMENTS.md) is registered by name and runs through
// Engine.Run(ctx, Spec) with a JSON-round-trippable Spec.

type (
	// Engine executes experiment Specs; one instance serves any number
	// of concurrent Run calls.
	Engine = engine.Engine
	// EngineOption configures NewEngine.
	EngineOption = engine.Option
	// Spec is the JSON-(de)serializable description of one run.
	Spec = engine.Spec
	// MachineSpec selects the machine configuration inside a Spec.
	MachineSpec = engine.MachineSpec
	// Result carries an experiment's typed data rows, timing metadata
	// and the seed used.
	Result = engine.Result
	// Experiment is one registered entry point.
	Experiment = engine.Experiment
	// ExperimentParams carries experiment parameters by name.
	ExperimentParams = engine.Params
)

// NewEngine builds the experiment engine.
func NewEngine(opts ...EngineOption) *Engine { return engine.New(opts...) }

// WithParallelism bounds the worker-pool width of Monte Carlo
// experiments (0, the default, means GOMAXPROCS). Results are
// bit-identical at any parallelism for a fixed seed.
func WithParallelism(n int) EngineOption { return engine.WithParallelism(n) }

// Experiments returns every registered experiment in registration order.
func Experiments() []*Experiment { return engine.Experiments() }

// Lookup resolves an experiment name or alias, case-insensitively.
func Lookup(name string) (*Experiment, bool) { return engine.Lookup(name) }

// ReportResult renders a Result for humans (the experiment's registered
// formatter, falling back to indented JSON).
func ReportResult(w io.Writer, res Result) error { return engine.Report(w, res) }

// ReadSpecFile parses a JSON Spec from a file path ("-" reads standard
// input).
func ReadSpecFile(path string) (Spec, error) { return engine.ReadSpecFile(path) }

// DecodeSpec parses a JSON Spec strictly: unknown fields and trailing
// data are rejected, and malformed input returns an error, never a
// panic.
func DecodeSpec(raw []byte) (Spec, error) { return engine.DecodeSpec(raw) }

// CanonicalizeSpec returns the canonical form of a Spec: aliases
// resolved to registry names, parameters fully resolved (defaults and
// seeds included), machine defaults made explicit. It validates exactly
// as Engine.Run does.
func CanonicalizeSpec(spec Spec) (Spec, error) { return engine.Canonicalize(spec) }

// SpecHash returns the content address of a Spec — the hex SHA-256 of
// its canonical JSON. Equivalent spellings of the same run hash equal;
// the qlaserve front end caches Result bytes under this key.
func SpecHash(spec Spec) (string, error) { return engine.SpecHash(spec) }

// Batch sweeps: one base Spec fanned out over a machine/parameter grid
// (the quant-ph/0604070 evaluation shape). The same expansion powers
// the `machine-sweep` registry experiment, `qlabench -sweep`, and
// qlaserve's async job surface (POST /v1/sweeps).

type (
	// SweepSpec describes one sweep: a base Spec plus axes over machine
	// fields and parameters.
	SweepSpec = sweep.Spec
	// SweepAxis is one grid dimension of a SweepSpec.
	SweepAxis = sweep.Axis
	// SweepResult aggregates a sweep run: per-point status, timing,
	// cache provenance and Result payloads, with table/CSV views.
	SweepResult = sweep.Result
	// SweepProgress is the monotonic per-point progress snapshot
	// delivered to RunSweep's callback.
	SweepProgress = sweep.Progress
)

// DecodeSweepSpec parses a JSON SweepSpec strictly (unknown fields and
// trailing data rejected; malformed input errors, never panics).
func DecodeSweepSpec(raw []byte) (SweepSpec, error) { return sweep.DecodeSpec(raw) }

// ReadSweepFile parses a JSON SweepSpec from a file path ("-" reads
// standard input).
func ReadSweepFile(path string) (SweepSpec, error) { return sweep.ReadFile(path) }

// SweepHash returns the content address of a SweepSpec — the hex
// SHA-256 of its canonical encoding, which doubles as the qlaserve job
// ID. Expansion validates fully: a sweep that hashes is a sweep that
// runs.
func SweepHash(s SweepSpec) (string, error) {
	sw, err := sweep.Expand(s)
	if err != nil {
		return "", err
	}
	return sw.Hash, nil
}

// RunSweep expands s and executes every grid point on eng, calling
// progress (when non-nil) after each point completes. Per-point
// failures are recorded in the SweepResult; only an invalid sweep or a
// cancelled context fails the call.
func RunSweep(ctx context.Context, eng *Engine, s SweepSpec, progress func(SweepProgress)) (*SweepResult, error) {
	sw, err := sweep.Expand(s)
	if err != nil {
		return nil, err
	}
	r := &sweep.Runner{Engine: eng}
	return r.Run(ctx, sw, progress)
}

// EngineScheduler allocates Monte Carlo worker slots from a budget
// shared across concurrent Run calls.
type EngineScheduler = engine.Scheduler

// WorkerPool is a process-wide FIFO worker budget implementing
// EngineScheduler; see NewWorkerPool.
type WorkerPool = sched.Pool

// NewWorkerPool builds a WorkerPool with the given slot capacity
// (capacity <= 0 means GOMAXPROCS).
func NewWorkerPool(capacity int) *WorkerPool { return sched.New(capacity) }

// WithScheduler makes every Engine.Run acquire its worker-pool width
// from s instead of taking the full WithParallelism (or GOMAXPROCS)
// width unconditionally, so concurrent runs share a global budget.
func WithScheduler(s EngineScheduler) EngineOption { return engine.WithScheduler(s) }

// defaultEngine backs the deprecated one-line experiment wrappers.
var defaultEngine = engine.New()

// runExperiment is the shared wrapper plumbing: run the named
// experiment on the default engine and hand back the typed payload.
func runExperiment[T any](spec Spec) (T, error) {
	res, err := defaultEngine.Run(context.Background(), spec)
	if err != nil {
		var zero T
		return zero, err
	}
	data, ok := res.Data.(T)
	if !ok {
		var zero T
		return zero, fmt.Errorf("qla: experiment %s returned %T", spec.Experiment, res.Data)
	}
	return data, nil
}

// mustExperiment backs the wrappers whose original signatures have no
// error return. Their specs are wrapper-built and always valid, so a
// failure here can only mean a misconfigured registry — a programming
// error worth a panic rather than a silently returned zero value.
func mustExperiment[T any](spec Spec) T {
	data, err := runExperiment[T](spec)
	if err != nil {
		// The engine already prefixes the experiment name.
		panic(fmt.Sprintf("qla: %v", err))
	}
	return data
}

// Experiments (see EXPERIMENTS.md for the paper-vs-measured record).
// These remain as thin wrappers over the registry; new code should
// prefer Engine.Run, which adds context cancellation, parallelism
// control and machine configuration.

// Table2 regenerates the paper's Table 2 (Shor's algorithm sizing for
// N = 128, 512, 1024, 2048) under the expected parameters.
//
// Deprecated: use Engine.Run with the "table2" experiment.
func Table2() ([]ShorResources, error) {
	return runExperiment[[]ShorResources](Spec{Experiment: "table2"})
}

// EstimateShor sizes Shor's algorithm for an arbitrary modulus width.
func EstimateShor(nBits int, p TechParams) (ShorResources, error) {
	return shor.Estimate(nBits, p)
}

// Figure7 runs the threshold Monte Carlo at both recursion levels over
// the given physical error rates and returns the two curves and the
// interpolated pseudo-threshold crossing.
//
// Deprecated: use Engine.Run with the "figure7" experiment.
func Figure7(physErrors []float64, trialsL1, trialsL2 int, seed uint64) (l1, l2 []ThresholdPoint, crossing float64, err error) {
	data, err := runExperiment[engine.Figure7Data](Spec{
		Experiment: "figure7",
		Params: ExperimentParams{
			"phys-errors": physErrors,
			"trials":      trialsL1,
			"trials-l2":   trialsL2,
			"seed":        seed,
		},
	})
	if err != nil {
		return nil, nil, 0, err
	}
	return data.L1, data.L2, data.Crossing, nil
}

// Figure7Errors is the paper's Figure-7 sweep range.
var Figure7Errors = threshold.Figure7Errors

// SyndromeRates measures the non-trivial syndrome rates at levels 1 and 2
// under the expected parameters (Section 4.1.1).
//
// Deprecated: use Engine.Run with the "syndrome-rates" experiment.
func SyndromeRates(trials int, seed uint64) (l1, l2 float64, err error) {
	data, err := runExperiment[engine.SyndromeRateData](Spec{
		Experiment: "syndrome-rates",
		Params:     ExperimentParams{"trials": trials, "seed": seed},
	})
	if err != nil {
		return 0, 0, err
	}
	return data.Level1, data.Level2, nil
}

// DefaultLink returns the calibrated Figure-9 repeater-channel model.
func DefaultLink() LinkModel { return teleport.DefaultLinkParams() }

// Figure9 sweeps connection time over total distance for each island
// separation of Figure 9.
//
// Deprecated: use Engine.Run with the "figure9" experiment.
func Figure9(distances []int) []Fig9Point {
	return mustExperiment[engine.Figure9Data](Spec{
		Experiment: "figure9",
		Params:     ExperimentParams{"distances": distances},
	}).Points
}

// ECLatency evaluates Equation 1 under the given parameters, returning
// the level-1 and level-2 EC-step times and the ancilla preparation time.
//
// Deprecated: use Engine.Run with the "ec-latency" experiment.
func ECLatency(p TechParams) ECLatencySummary {
	return mustExperiment[ECLatencySummary](Spec{
		Experiment: "ec-latency",
		Machine:    MachineSpec{Tech: &p},
	})
}

// Equation2 evaluates Gottesman's local-architecture failure estimate.
//
// Deprecated: use Engine.Run with the "equation2" experiment.
func Equation2(p0, pth float64, level int) float64 {
	return mustExperiment[engine.Equation2Data](Spec{
		Experiment: "equation2",
		Params:     ExperimentParams{"p0": p0, "pth": pth, "level": level},
	}).Failure
}

// SchedulerSweep runs the Section-5 bandwidth experiment at the given
// channel bandwidths (the paper's canonical workload).
//
// Deprecated: use Engine.Run with the "scheduler-sweep" experiment.
func SchedulerSweep(bandwidths []int) ([]BandwidthResult, error) {
	return runExperiment[[]BandwidthResult](Spec{
		Experiment: "scheduler-sweep",
		Params:     ExperimentParams{"bandwidths": bandwidths},
	})
}

// Arithmetic circuits (Section 5 workload components).

type (
	// AdderMetrics measures one explicit adder circuit.
	AdderMetrics = adder.Metrics
	// AdderComparison pairs ripple vs lookahead at one width.
	AdderComparison = adder.Comparison
)

// CompareAdders builds, verifies and measures the Cuccaro ripple-carry
// baseline against the DKRS carry-lookahead adder (the paper's QCLA
// choice) at the given operand width.
//
// Deprecated: use Engine.Run with the "compare-adders" experiment.
func CompareAdders(nBits int) AdderComparison {
	data := mustExperiment[engine.AddersData](Spec{
		Experiment: "compare-adders",
		Params:     ExperimentParams{"widths": []int{nBits}, "with-modular": false},
	})
	return data.Comparisons[0]
}

// ModAddMetrics measures one modular-adder circuit (the VBE
// construction from four adder passes — the building block the paper's
// modular-exponentiation count is made of).
type ModAddMetrics = modarith.Metrics

// MeasureModAdd builds and measures a verified modular adder for the
// given width and modulus. useCLA selects the carry-lookahead
// subroutine; false selects the ripple baseline.
func MeasureModAdd(nBits int, modulus uint64, useCLA bool) ModAddMetrics {
	kind := modarith.Ripple
	if useCLA {
		kind = modarith.CLA
	}
	return modarith.Measure(nBits, modulus, kind)
}

// Error-correcting code catalog (Section 3/4.1.3 extensibility).

type (
	// Code is an [[n,k,d]] stabilizer code definition.
	Code = codes.Code
	// CodeCost is the syndrome-extraction bill of a code.
	CodeCost = codes.ECCost
)

// CodeCatalog returns the implemented codes: both 3-qubit repetition
// codes, the perfect [[5,1,3]], Steane's [[7,1,3]] and Shor's [[9,1,3]].
func CodeCatalog() []*Code { return codes.All() }

// CodeAblation compares syndrome-extraction costs across the catalog
// under the given technology parameters.
//
// Deprecated: use Engine.Run with the "code-ablation" experiment
// (which adds the decoder Monte Carlo sweep).
func CodeAblation(p TechParams) []CodeCost {
	return mustExperiment[engine.CodeAblationData](Spec{
		Experiment: "code-ablation",
		Machine:    MachineSpec{Tech: &p},
		Params:     ExperimentParams{"mc-trials": 0},
	}).Costs
}

// QCCD physical simulation (Figures 2-4 substrate).

type (
	// ShuttleSim is the discrete-event QCCD substrate simulator.
	ShuttleSim = qccd.Sim
	// ShuttleGrid is a QCCD cell map.
	ShuttleGrid = qccd.Grid
	// TransversalReport is an executed inter-block transversal gate.
	TransversalReport = qccd.TransversalReport
)

// NewShuttleSim builds a QCCD simulator over a cell grid.
func NewShuttleSim(g *ShuttleGrid, p TechParams) *ShuttleSim { return qccd.NewSim(g, p) }

// TwoBlockGrid builds the canonical two-block shuttle geometry.
func TwoBlockGrid(ionsPerBlock, channelCells int) *ShuttleGrid {
	return qccd.TwoBlockGrid(ionsPerBlock, channelCells)
}

// RunTransversalGate executes a full inter-block transversal gate on
// the QCCD simulator and reports measured vs analytic cost.
func RunTransversalGate(ionsPerBlock, channelCells int, p TechParams) (TransversalReport, error) {
	return qccd.InterBlockTransversalGate(ionsPerBlock, channelCells, p)
}

// Gate-level interconnect Monte Carlo (Section 4.2 validation).

type (
	// ChainConfig parameterizes the repeater-chain Monte Carlo.
	ChainConfig = commsim.ChainConfig
	// ChainResult is a repeater-chain Monte Carlo outcome.
	ChainResult = commsim.ChainResult
)

// RunChain executes the repeater protocol gate by gate on the
// stabilizer backend and compares against the Werner-model prediction.
//
// Deprecated: use Engine.Run with the "run-chain" experiment.
func RunChain(cfg ChainConfig) (ChainResult, error) {
	eng := defaultEngine
	if cfg.Parallelism != 0 {
		// The config's worker-pool bound maps onto the engine's; the
		// measurements are bit-identical either way.
		eng = engine.New(engine.WithParallelism(cfg.Parallelism))
	}
	params := ExperimentParams{
		"links":         cfg.Links,
		"link-eps":      cfg.LinkEps,
		"purify-rounds": cfg.PurifyRounds,
		"swap-eps":      cfg.SwapEps,
		"trials":        cfg.Trials,
		"seed":          cfg.Seed,
	}
	if cfg.Backend != "" {
		params["backend"] = cfg.Backend
	}
	res, err := eng.Run(context.Background(), Spec{
		Experiment: "run-chain",
		Params:     params,
	})
	if err != nil {
		return ChainResult{}, err
	}
	return res.Data.(ChainResult), nil
}

// CompareCommStrategies contrasts naive end-to-end teleportation with
// the repeater chain at equal total channel noise, on the full backend.
//
// Deprecated: thin wrapper over the "compare-comm" registry experiment;
// build a Spec and use Engine.Run for parallelism and cancellation.
func CompareCommStrategies(perLinkEps float64, links, purifyRounds, trials int, seed uint64) (commsim.NaiveVsRepeater, error) {
	res, err := defaultEngine.Run(context.Background(), Spec{
		Experiment: "compare-comm",
		Params: ExperimentParams{
			"link-eps":      perLinkEps,
			"links":         links,
			"purify-rounds": purifyRounds,
			"trials":        trials,
			"seed":          seed,
		},
	})
	if err != nil {
		return commsim.NaiveVsRepeater{}, err
	}
	return res.Data.(commsim.NaiveVsRepeater), nil
}

// Classical control (Section 6 resource management).

// ControlBudget is the classical-resource bill of a pulse schedule.
type ControlBudget = control.Budget

// ControlOption configures AnalyzeControl.
type ControlOption = control.Option

// WithEventWindow sets the sliding window (in seconds) used for the
// peak control-event rate; non-positive keeps the 10 µs default.
func WithEventWindow(seconds float64) ControlOption {
	return control.WithEventWindow(seconds)
}

// AnalyzeControl computes laser, detector and event-rate requirements
// for a job's pulse schedule, with SIMD laser grouping.
func AnalyzeControl(j *Job, opts ...ControlOption) ControlBudget {
	return control.AnalyzeSchedule(j.Lower(), opts...)
}

// Multi-chip scaling (Section 6 future work).

type (
	// ChipPartition is a multi-chip plan for one problem size.
	ChipPartition = multichip.Partition
	// PhotonicLink characterizes one inter-chip entanglement link.
	PhotonicLink = multichip.LinkParams
)

// DefaultPhotonicLink returns mid-2000s heralded-link parameters.
func DefaultPhotonicLink() PhotonicLink { return multichip.DefaultLinkParams() }

// PlanMultichip partitions an N-bit factorization machine across chips
// bounded by maxEdgeCM and sizes the photonic links per boundary.
func PlanMultichip(nBits int, maxEdgeCM float64, maxLinks int, link PhotonicLink, p TechParams) (ChipPartition, error) {
	return multichip.Plan(nBits, maxEdgeCM, maxLinks, link, p)
}
