// Factor128 reproduces the paper's headline result (Section 5): sizing a
// QLA machine that factors a 128-bit RSA modulus with Shor's algorithm in
// about a day, and comparing against the classical number-field sieve.
package main

import (
	"fmt"
	"log"

	"qla"
	"qla/internal/shor"
)

func main() {
	r, err := qla.EstimateShor(128, qla.ExpectedParams())
	if err != nil {
		log.Fatal(err)
	}
	m, err := qla.NewMachine(r.LogicalQubits)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Factoring a 128-bit number with Shor's algorithm on the QLA")
	fmt.Println()
	fmt.Printf("%-28s %d\n", "logical qubits:", r.LogicalQubits)
	fmt.Printf("%-28s %d  (paper: 63,730)\n", "critical-path Toffolis:", r.ToffoliDepth)
	fmt.Printf("%-28s %d = 21/Toffoli + QFT (paper: 1.34e6)\n", "error-correction steps:", r.ECSteps)
	fmt.Printf("%-28s %.4f s (paper: 0.043 s)\n", "EC step (level-2):", r.ECStepSeconds)
	fmt.Printf("%-28s %.1f h  (paper: ~16 h)\n", "single run:", r.TimeSeconds/3600)
	fmt.Printf("%-28s %.1f h  (paper: ~21 h)\n", "with 1.3 avg repetitions:", r.TimeHours)
	fmt.Println()
	fmt.Printf("%-28s %.2f m², edge %.0f cm (paper: 0.11 m², 33 cm)\n",
		"chip area:", r.AreaM2, m.Floorplan.EdgeCM())
	fmt.Printf("%-28s %.2g    (paper: ~7e6)\n", "physical ions:", float64(m.PhysicalIons()))
	fmt.Printf("%-28s %.3g\n", "system size S = K·Q:", r.SystemSize)
	fmt.Printf("%-28s %.3g  (level-2 budget: %.3g)\n",
		"failure budget used:", r.SystemSize/m.MaxComputationSize(), m.MaxComputationSize())
	fmt.Println()
	fmt.Println("classical comparison (number field sieve, 512-bit = 8400 MIPS-years):")
	for _, bits := range []int{128, 512, 1024} {
		fmt.Printf("  %4d bits: %.3g MIPS-years classical", bits, shor.ClassicalNFSMIPSYears(bits))
		if q, err := qla.EstimateShor(bits, qla.ExpectedParams()); err == nil {
			fmt.Printf(" vs %.1f days quantum", q.TimeDays)
		}
		fmt.Println()
	}
}
