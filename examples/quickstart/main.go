// Quickstart: build a QLA machine, run a circuit through the ARQ pipeline
// (exact execution, noisy Monte Carlo, architecture estimate), and verify
// quantum teleportation on the stabilizer backend — the primitive the
// whole QLA interconnect is built on.
package main

import (
	"fmt"
	"log"
	"strings"

	"qla"
)

const ghzCircuit = `# three-qubit GHZ state with readout
qubits 3
h 0
cnot 0 1
cnot 1 2
measure 0
measure 1
measure 2
`

func main() {
	// 1. A machine: 100 logical qubits, level-2 Steane encoding,
	//    bandwidth-2 teleportation interconnect (the paper's defaults).
	m, err := qla.NewMachine(100)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== the machine ==")
	fmt.Printf("logical qubits:  %d (level %d recursion)\n", m.LogicalQubits(), m.Level)
	fmt.Printf("EC step (clock): %.4f s\n", m.ECStepTime())
	fmt.Printf("chip area:       %.4f m² (%.1f cm edge)\n", m.AreaM2(), m.Floorplan.EdgeCM())
	fmt.Printf("logical failure: %.3g per gate\n", m.LogicalFailureRate())
	fmt.Printf("max computation: %.3g gate·qubits\n", m.MaxComputationSize())

	// 2. A circuit through the ARQ pipeline.
	job, err := qla.ParseJob(strings.NewReader(ghzCircuit))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n== exact stabilizer run (GHZ) ==")
	for seed := uint64(1); seed <= 4; seed++ {
		fmt.Printf("seed %d: measurements %v\n", seed, job.RunExact(seed))
	}

	rep, err := job.Estimate()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n== architecture estimate ==")
	fmt.Printf("EC steps: %d, wall clock %.3f s, all %d two-qubit gates overlapped: %v\n",
		rep.ECSteps, rep.Seconds, rep.CommOverlapped+rep.CommExposed, rep.CommExposed == 0)

	noisy, err := job.RunNoisy(qla.CurrentParams(), 2000, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n== noisy Monte Carlo (current-generation hardware) ==")
	fmt.Printf("%d/%d trials saw at least one flipped outcome (%d errors injected)\n",
		noisy.AnyFlipTrials, noisy.Trials, noisy.ErrorsInjected)

	// 3. Teleportation: the interconnect primitive, verified exactly.
	fmt.Println("\n== teleportation on the stabilizer backend ==")
	s := qla.NewState(3)
	s.H(0)
	s.S(0) // prepare |+i> on qubit 0
	teleportDemo(s)
	fmt.Println("teleported |+i> from qubit 0 to qubit 2: verified")
}

func teleportDemo(s *qla.State) {
	// Bell pair on (1,2), Bell measurement on (0,1), corrections on 2.
	s.H(1)
	s.CNOT(1, 2)
	s.CNOT(0, 1)
	s.H(0)
	m0 := s.Measure(0)
	m1 := s.Measure(1)
	if m1 == 1 {
		s.X(2)
	}
	if m0 == 1 {
		s.Z(2)
	}
	// Verify: undo the preparation on qubit 2 and measure.
	s.Sdg(2)
	s.H(2)
	if s.Measure(2) != 0 {
		panic("teleportation failed to preserve the state")
	}
}
