// Codecompare exercises the generic stabilizer-code framework: every
// catalog code is validated, its distance certified by brute force, its
// encoder run on the stabilizer backend, its single-error correction
// checked through the syndrome-table decoder, and its syndrome-
// extraction bill compared — the quantitative backing for the paper's
// choice of the Steane [[7,1,3]] code and its remark that the block
// structure "is easily extended to 7-bit and larger codes."
package main

import (
	"fmt"
	"log"

	"qla"
	"qla/internal/codes"
	"qla/internal/pauli"
	"qla/internal/stabilizer"
)

func main() {
	fmt.Println("== catalog validation and distance certification ==")
	for _, c := range qla.CodeCatalog() {
		if err := c.Validate(); err != nil {
			log.Fatalf("%s: %v", c.Name, err)
		}
		d, ok := c.Distance(c.N)
		css := "CSS (transversal CNOT)"
		if !c.IsCSS() {
			css = "non-CSS"
		}
		fmt.Printf("  %-22s n=%d k=%d  distance=%d (certified=%v)  %s\n",
			c.Name, c.N, c.K, d, ok, css)
	}

	fmt.Println("\n== projective encoding + single-error correction round trip ==")
	for _, c := range []*codes.Code{codes.Perfect5(), codes.Steane7(), codes.Shor9()} {
		dec, err := codes.NewDecoder(c, 1)
		if err != nil {
			log.Fatal(err)
		}
		s := stabilizer.NewSeeded(c.N, 42)
		if err := c.PrepareZero(s); err != nil {
			log.Fatal(err)
		}
		// Hit every qubit with every Pauli; decode and verify.
		fails := 0
		for q := 0; q < c.N; q++ {
			for _, letter := range []byte{'X', 'Y', 'Z'} {
				e := pauli.NewIdentity(c.N)
				e.Set(q, letter)
				if !dec.Corrects(e) {
					fails++
				}
			}
		}
		fmt.Printf("  %-22s all %d weight-1 errors corrected: %v  (table %d syndromes)\n",
			c.Name, 3*c.N, fails == 0, dec.TableSize())
	}

	fmt.Println("\n== syndrome-extraction cost (Shor-style cat states, Table-1 times) ==")
	fmt.Printf("  %-22s %6s %8s %8s %8s %12s\n",
		"code", "data", "ancilla", "2q-gates", "meas", "time/round")
	for _, cost := range qla.CodeAblation(qla.ExpectedParams()) {
		fmt.Printf("  %-22s %6d %8d %8d %8d %9.0f µs\n",
			cost.Code, cost.DataQubits, cost.AncillaQubits,
			cost.TwoQubitGates, cost.Measures, cost.TimeSeconds*1e6)
	}

	fmt.Println("\nWhy Steane: the [[5,1,3]] block is smaller but not CSS, so the")
	fmt.Println("QLA's transversal logical gates are unavailable; Shor's [[9,1,3]]")
	fmt.Println("is CSS but needs 9 data ions and a wider cat state. The Steane")
	fmt.Println("code is the smallest block with the full transversal Clifford")
	fmt.Println("group — the property the 49-parallel-pulse logical gates rely on.")
}
