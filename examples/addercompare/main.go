// Addercompare reproduces the arithmetic ablation behind the paper's
// adder choice (Section 5): it builds the Cuccaro ripple-carry adder
// and the Draper–Kutin–Rains–Svore carry-lookahead adder (QCLA) as
// explicit reversible circuits, verifies them against integer addition,
// and prints the Toffoli critical-path comparison that makes the QCLA
// "most optimized for time of computation rather than system size."
//
// The Toffoli depth column is what the QLA latency model multiplies by
// 21 error-correction steps per Toffoli; the width column is the qubit
// price the lookahead adder pays.
package main

import (
	"fmt"

	"qla"
	"qla/internal/adder"
	"qla/internal/shor"
)

func main() {
	fmt.Println("== adder verification ==")
	for _, n := range []int{4, 8} {
		rc, rl := adder.Ripple(n)
		cc, cl := adder.CLA(n)
		ok := true
		for a := uint64(0); a < 1<<uint(n) && ok; a += 3 {
			for b := uint64(0); b < 1<<uint(n) && ok; b += 5 {
				want := (a + b) & (1<<uint(n) - 1)
				wantC := (a+b)>>uint(n) == 1
				if s, c := adder.Add(rc, rl, a, b, false); s != want || c != wantC {
					ok = false
				}
				if s, c := adder.Add(cc, cl, a, b, false); s != want || c != wantC {
					ok = false
				}
			}
		}
		status := "ok"
		if !ok {
			status = "FAILED"
		}
		fmt.Printf("  n=%2d: ripple and lookahead vs integer addition: %s\n", n, status)
	}

	fmt.Println("\n== Toffoli critical path: ripple (2n) vs lookahead (Θ(log n)) ==")
	fmt.Printf("%6s %14s %14s %10s %12s %12s\n",
		"bits", "ripple depth", "QCLA depth", "speedup", "QCLA wires", "paper 4·lg n")
	for _, n := range []int{4, 8, 16, 32, 64} {
		cmp := qla.CompareAdders(n)
		fmt.Printf("%6d %14d %14d %9.1fx %12d %12d\n",
			n, cmp.Ripple.ToffoliDepth, cmp.CLA.ToffoliDepth,
			cmp.DepthRatio, cmp.CLA.Width, shor.QCLAToffoliDepth(n))
	}

	fmt.Println("\nThe paper's Table-2 model charges 4·log2(n) Toffoli steps per")
	fmt.Println("QCLA call; the measured circuit tracks that shape (constant-factor")
	fmt.Println("difference from phase-sequential tree scheduling, see DESIGN.md §6).")
	fmt.Println("At n = 128 the ripple baseline would be ~9x deeper — the whole")
	fmt.Println("modular exponentiation would inflate by the same factor.")
}
