// Modexp walks the arithmetic ladder behind Table 2 bottom-up: a
// verified modular adder built from four plain-adder passes, the
// Van Meter–Itoh composition that prices modular exponentiation in
// adder calls, and the banded QFT that closes the algorithm — ending
// at the paper's headline: how long a QLA takes to factor a 128-bit
// number.
package main

import (
	"fmt"

	"qla"
	"qla/internal/modarith"
	"qla/internal/qft"
	"qla/internal/shor"
)

func main() {
	// 1. A verified modular adder. 13 + 11 mod 21, on actual wires.
	const n, m = 5, 21
	c, lay := modarith.ModAdd(n, m, modarith.CLA)
	fmt.Println("== modular adder (VBE construction, QCLA subroutine) ==")
	fmt.Printf("width %d bits, modulus %d: %d wires, %d gates\n",
		n, m, lay.Width, c.Len())
	for _, pair := range [][2]uint64{{13, 11}, {20, 20}, {0, 17}} {
		got := modarith.Add(c, lay, pair[0], pair[1])
		fmt.Printf("  %2d + %2d mod %d = %2d\n", pair[0], pair[1], m, got)
	}

	// 2. The cost law: a modular adder is ~4 plain-adder passes.
	fmt.Println("\n== cost law: modular add ≈ 4 adder passes ==")
	fmt.Printf("%6s %16s %16s %12s\n", "bits", "ripple-based", "QCLA-based", "passes")
	for _, bits := range []int{8, 12, 16} {
		modulus := uint64(1)<<uint(bits) - 5
		rip := qla.MeasureModAdd(bits, modulus, false)
		cla := qla.MeasureModAdd(bits, modulus, true)
		fmt.Printf("%6d %16d %16d %11.1fx\n",
			bits, rip.ToffoliDepth, cla.ToffoliDepth,
			float64(cla.ToffoliDepth)/float64(cla.AdderDepth))
	}

	// 3. Van Meter–Itoh composition up to the full exponentiation.
	fmt.Println("\n== composing modular exponentiation (N = 128) ==")
	const nBits = 128
	fmt.Printf("multiplier calls (IM):        %d\n", shor.MultiplierCalls(nBits))
	fmt.Printf("adds per multiply (MAC):      %d\n", shor.AdderCallsPerMultiply(nBits))
	fmt.Printf("QCLA depth per add (model):   %d Toffoli layers\n", shor.QCLAToffoliDepth(nBits))
	fmt.Printf("modexp Toffoli depth:         %d\n", shor.ToffoliDepth(nBits))
	fmt.Printf("EC steps (21 per Toffoli):    %d\n", shor.ECSteps(nBits))

	// 4. The QFT coda: banded transform, verified construction.
	band := qft.PaperBand(nBits)
	q := qft.Banded(2*nBits, band)
	fmt.Println("\n== the closing QFT ==")
	fmt.Printf("banded QFT on %d qubits, band %d: %d gates (model charge %d)\n",
		2*nBits, band, q.Counts().Total(), shor.QFTSteps(nBits))
	fmt.Printf("exact QFT verified vs DFT at n=5: L2 error %.1e\n",
		qft.Exact(5).MaxBasisError())

	// 5. The headline.
	res, err := qla.EstimateShor(nBits, qla.ExpectedParams())
	if err != nil {
		panic(err)
	}
	fmt.Println("\n== the paper's headline ==")
	fmt.Printf("factoring a %d-bit number: %.1f hours (paper: ~21 h with retries)\n",
		nBits, res.TimeHours)
	fmt.Printf("on %d logical qubits across %.2f m² of trap array\n",
		res.LogicalQubits, res.AreaM2)
}
