// Threshold reproduces Figure 7 at example scale: the Monte Carlo failure
// rate of a logical one-qubit gate followed by recursive error correction
// at levels 1 and 2, swept over the physical component failure rate, with
// the movement rate pinned to the expected value — showing the
// pseudo-threshold crossing that justifies recursion level 2.
package main

import (
	"fmt"
	"log"
	"strings"

	"qla"
	"qla/internal/threshold"
)

func main() {
	ps := []float64{5e-4, 1e-3, 1.5e-3, 2e-3, 3e-3, 4e-3}
	const trialsL1, trialsL2 = 60000, 20000

	fmt.Println("Figure 7 (example scale): logical gate failure vs physical error")
	fmt.Printf("level-1 trials %d, level-2 trials %d\n\n", trialsL1, trialsL2)
	l1, l2, crossing, err := qla.Figure7(ps, trialsL1, trialsL2, 99)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%9s %12s %12s   ratio L2/L1\n", "p_phys", "level 1", "level 2")
	for i := range ps {
		ratio := "-"
		if l1[i].FailRate > 0 {
			ratio = fmt.Sprintf("%.2f", l2[i].FailRate/l1[i].FailRate)
		}
		fmt.Printf("%9.2g %12.6f %12.6f   %s\n", ps[i], l1[i].FailRate, l2[i].FailRate, ratio)
	}
	fmt.Printf("\npseudo-threshold crossing: %.2g (paper: (2.1±1.8)e-3)\n", crossing)

	// A tiny ASCII rendition of the two curves.
	fmt.Println("\nlog-scale sketch (1=level-1, 2=level-2):")
	maxRate := 0.0
	for i := range ps {
		if l2[i].FailRate > maxRate {
			maxRate = l2[i].FailRate
		}
		if l1[i].FailRate > maxRate {
			maxRate = l1[i].FailRate
		}
	}
	for i := range ps {
		col := func(rate float64) int {
			if rate <= 0 {
				return 0
			}
			return int(60 * rate / maxRate)
		}
		row := []byte(strings.Repeat(" ", 62))
		c1, c2 := col(l1[i].FailRate), col(l2[i].FailRate)
		row[c1] = '1'
		if c2 == c1 {
			row[c2] = '*'
		} else {
			row[c2] = '2'
		}
		fmt.Printf("p=%7.2g |%s\n", ps[i], string(row))
	}

	// The fault-tolerance property behind the curves: no single fault
	// fails the gadget.
	fmt.Println("\nsingle-fault spot check (every 29th site, all Pauli variants):")
	_, total := threshold.SingleFaultTrial(2, -1, 0)
	checked, failures := 0, 0
	for site := int64(0); site < total; site += 29 {
		for choice := 0; choice < 15; choice++ {
			fail, _ := threshold.SingleFaultTrial(2, site, choice)
			checked++
			if fail {
				failures++
			}
		}
	}
	fmt.Printf("checked %d forced single faults at level 2: %d failures\n", checked, failures)
}
