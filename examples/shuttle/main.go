// Shuttle runs the QCCD substrate simulator (Figures 2-4): it draws a
// two-block ion-trap geometry, executes a full 7-ion transversal gate
// between the blocks — splits, ballistic moves, corner turns,
// sympathetic recooling, two-qubit gates — and compares the measured
// makespan and turning counts against the paper's analytic budgets and
// design rules.
package main

import (
	"fmt"
	"log"

	"qla"
	"qla/internal/iontrap"
	"qla/internal/qccd"
)

func main() {
	p := qla.ExpectedParams()

	fmt.Println("== the substrate ==")
	g := qccd.TwoBlockGrid(3, 14)
	fmt.Print(g)
	fmt.Println("(T trap cell, . ballistic channel, # electrode/wall)")

	fmt.Println("\n== one shuttle, step by step ==")
	s := qccd.NewSim(g, p)
	traps := g.TrapPositions()
	id, err := s.AddIon(qccd.Data, traps[0])
	if err != nil {
		log.Fatal(err)
	}
	dst := qccd.Pos{X: traps[3].X - 1, Y: traps[3].Y}
	res, err := s.Shuttle(id, dst)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("route %v -> %v: %d cells, %d corners\n", traps[0], dst, res.Cells, res.Corners)
	fmt.Printf("time: split %.0f µs + %d x %.2f µs/cell + %d x %.0f µs/turn = %.2f µs\n",
		p.Time[iontrap.OpSplit]*1e6, res.Cells, p.Time[iontrap.OpMoveCell]*1e6,
		res.Corners, p.Time[iontrap.OpCorner]*1e6, res.End*1e6)
	fmt.Printf("accumulated heat: %.1f units (threshold %.1f)\n",
		s.Ion(id).Heat, qccd.DefaultHeatModel().MaxGateHeat)

	fmt.Println("\n== transversal inter-block gate, 7 ion pairs ==")
	for _, sep := range []int{12, 100, 350} {
		rep, err := qla.RunTransversalGate(7, sep, p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("separation %4d cells: makespan %8.1f µs  (analytic %7.1f µs)"+
			"  moves %2d  stalls %d  max turns %d\n",
			sep, rep.Makespan*1e6, rep.AnalyticSeconds*1e6,
			rep.Stats.Moves, rep.Stats.Stalls, rep.MaxCorners)
	}

	fmt.Println("\nDesign rules checked: routes stay within the paper's two-turn")
	fmt.Println("ballistic budget when channels are clear; congestion appears as")
	fmt.Println("stalls; and the split cost (10 µs) dominates short hops, which is")
	fmt.Println("why the QLA moves ions ballistically only inside blocks and")
	fmt.Println("teleports between them.")
}
