// Teleportnet explores the QLA communication substrate: the Figure-9
// island-separation trade-off, end-to-end entanglement swapping verified
// on the stabilizer backend, and a Monte Carlo demonstration of BBPSSW
// purification — the three mechanisms that make the logical interconnect
// "error-free over arbitrary on-chip distances".
package main

import (
	"fmt"
	"log"

	"qla"
	"qla/internal/stabilizer"
	"qla/internal/teleport"
)

func main() {
	// 1. Figure 9: connection time vs distance for each island separation.
	fmt.Println("== Figure 9: connection time (s) by island separation ==")
	dists := []int{2000, 6000, 12000, 24000}
	fmt.Printf("%8s", "d \\ D")
	for _, d := range dists {
		fmt.Printf(" %9d", d)
	}
	fmt.Println()
	lp := qla.DefaultLink()
	for _, sep := range teleport.Figure9Separations {
		fmt.Printf("%8d", sep)
		for _, d := range dists {
			if t, err := lp.ConnectionTime(d, sep); err == nil {
				fmt.Printf(" %9.4f", t)
			} else {
				fmt.Printf(" %9s", "inf")
			}
		}
		fmt.Println()
	}
	for _, d := range []int{2000, 24000} {
		sep, t, err := lp.BestSeparation(d)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("best separation at %5d cells: %4d (%.4f s; EC window 0.043 s)\n", d, sep, t)
	}

	// 2. A repeater chain on the exact backend: 8 islands, 7 swaps.
	fmt.Println("\n== entanglement-swapping chain (stabilizer backend) ==")
	const pairs = 8
	s := stabilizer.New(2 * pairs)
	for i := 0; i < pairs; i++ {
		s.H(2 * i)
		s.CNOT(2*i, 2*i+1)
	}
	for i := 1; i < pairs; i++ {
		teleport.EntanglementSwap(s, 2*i-1, 2*i, 2*i+1)
	}
	fmt.Printf("chained %d Bell pairs into one end-to-end pair (qubits 0 and %d)\n", pairs, 2*pairs-1)
	// Verify with a destructive Bell test.
	s.CNOT(0, 2*pairs-1)
	s.H(0)
	if s.Measure(0) == 0 && s.Measure(2*pairs-1) == 0 {
		fmt.Println("end-to-end Bell test: PASS")
	} else {
		fmt.Println("end-to-end Bell test: FAIL")
	}

	// 3. Purification under depolarizing noise.
	fmt.Println("\n== BBPSSW purification Monte Carlo ==")
	for _, eps := range []float64{0.05, 0.10, 0.20} {
		res := teleport.MonteCarloPurify(eps, 6000, 42)
		fmt.Printf("eps=%.2f  raw fidelity %.4f -> purified %.4f (acceptance %.2f)\n",
			eps, res.RawFidelity, res.PurifiedFid, res.AcceptanceFrc)
	}
	fmt.Println("\nanalytic recurrence for comparison:")
	f := 0.85
	for round := 1; round <= 3; round++ {
		next, ps := teleport.PurifyStep(f)
		fmt.Printf("round %d: F %.4f -> %.4f (success probability %.3f)\n", round, f, next, ps)
		f = next
	}
}
