// Ecctrace walks one Steane [[7,1,3]] error-correction gadget at the
// physical level: it prints the level-1 building-block geometry, encodes a
// logical |0>, injects each possible single-qubit error, extracts and
// decodes the syndrome on the exact stabilizer backend, and emits the ARQ
// pulse schedule with the Equation-1 latency breakdown.
package main

import (
	"fmt"
	"log"
	"os"

	"qla"
	"qla/internal/circuit"
	"qla/internal/ft"
	"qla/internal/layout"
	"qla/internal/stabilizer"
	"qla/internal/steane"
)

func main() {
	fmt.Println("== the level-1 building block (Figure 4) ==")
	fmt.Println(layout.RenderBlock())
	fmt.Printf("\nblock footprint %dx%d cells; inter-block distance r = %d cells\n",
		layout.BlockW, layout.BlockH, layout.InterBlockCells)
	fmt.Printf("level-2 tile %dx%d cells = %.2f mm²\n\n",
		layout.TileW, layout.TileH, layout.TileAreaMM2())

	fmt.Println("== encode |0>_L and correct every single-qubit error ==")
	for _, kind := range []byte{'X', 'Z'} {
		for q := 0; q < steane.N; q++ {
			if !correctSingle(kind, q) {
				log.Fatalf("failed to correct %c error on qubit %d", kind, q)
			}
		}
		fmt.Printf("all 7 single-%c errors detected and corrected\n", kind)
	}

	fmt.Println("\n== ARQ pulse schedule of the encoder ==")
	job, err := qla.NewJob(wrapEncoder())
	if err != nil {
		log.Fatal(err)
	}
	if err := job.WritePulses(os.Stdout); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\n== Equation-1 latency breakdown (expected parameters) ==")
	m := ft.NewLatencyModel(qla.ExpectedParams())
	fmt.Printf("physical 2q gate (intra-block):   %8.2f µs\n", m.PhysGate2Intra()*1e6)
	fmt.Printf("physical 2q gate (inter-block):   %8.2f µs\n", m.PhysGate2Inter()*1e6)
	fmt.Printf("block readout:                    %8.2f µs\n", m.Readout()*1e6)
	fmt.Printf("verified level-1 ancilla prep:    %8.2f µs\n", m.PrepTime(1)*1e6)
	fmt.Printf("level-1 syndrome extraction:      %8.2f µs\n", m.SyndromeTime(1)*1e6)
	fmt.Printf("T(1,ecc):                         %8.2f µs  (paper ≈3000)\n", m.ECTime(1)*1e6)
	fmt.Printf("level-2 ancilla prep:             %8.2f ms\n", m.PrepTime(2)*1e3)
	fmt.Printf("T(2,ecc):                         %8.2f ms  (paper ≈43)\n", m.ECTime(2)*1e3)
}

// correctSingle encodes |0>_L, injects the given Pauli error, reads the
// syndrome via stabilizer expectations, applies the decoded correction and
// verifies the state is restored.
func correctSingle(kind byte, q int) bool {
	s := stabilizer.New(steane.N)
	steane.EncodeZero().RunOn(s)
	switch kind {
	case 'X':
		s.X(q)
	case 'Z':
		s.Z(q)
	}
	// The syndrome: X errors violate Z-stabilizers and vice versa.
	gens := steane.ZStabilizers()
	if kind == 'Z' {
		gens = steane.XStabilizers()
	}
	syndrome := 0
	for r, g := range gens {
		if s.Expectation(g) == -1 {
			syndrome |= 1 << (2 - r)
		}
	}
	pos := steane.DecodePosition(syndrome)
	fmt.Printf("  %c on qubit %d -> syndrome %03b -> correct qubit %d\n", kind, q, syndrome, pos)
	if pos != q {
		return false
	}
	switch kind {
	case 'X':
		s.X(pos)
	case 'Z':
		s.Z(pos)
	}
	// Back in the code space with logical Z intact?
	for _, g := range steane.Generators() {
		if s.Expectation(g) != 1 {
			return false
		}
	}
	return s.Expectation(steane.LogicalZ()) == 1
}

func wrapEncoder() *circuit.Circuit {
	c := circuit.New(steane.N)
	for q := 0; q < steane.N; q++ {
		c.Prep0(q)
	}
	c.Append(steane.EncodeZero())
	return c
}
