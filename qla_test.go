package qla_test

import (
	"strings"
	"testing"

	"qla"
)

// The facade tests double as end-to-end integration tests of the public
// API: machine construction, the ARQ pipeline, and every experiment entry
// point.

func TestFacadeMachine(t *testing.T) {
	m, err := qla.NewMachine(64, qla.WithLevel(2), qla.WithBandwidth(2))
	if err != nil {
		t.Fatal(err)
	}
	if m.LogicalQubits() != 64 {
		t.Errorf("capacity = %d", m.LogicalQubits())
	}
	if ec := m.ECStepTime(); ec < 0.03 || ec > 0.06 {
		t.Errorf("EC step %.4f s out of range", ec)
	}
	ok, err := m.Overlapped(0, 1)
	if err != nil || !ok {
		t.Errorf("adjacent communication should overlap: %v %v", ok, err)
	}
}

func TestFacadeARQPipeline(t *testing.T) {
	src := `qubits 4
h 0
cnot 0 1
cnot 1 2
cnot 2 3
measure 0
measure 3
`
	job, err := qla.ParseJob(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	// Exact: GHZ ends correlated.
	for seed := uint64(1); seed < 8; seed++ {
		out := job.RunExact(seed)
		if out[0] != out[1] {
			t.Fatalf("GHZ outer qubits uncorrelated: %v", out)
		}
	}
	// Estimate: everything overlaps on a small machine.
	rep, err := job.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	if rep.CommExposed != 0 {
		t.Errorf("%d exposed communications on a 4-qubit machine", rep.CommExposed)
	}
	// Noisy: current-generation parameters flip some outcomes.
	res, err := job.RunNoisy(qla.CurrentParams(), 400, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.AnyFlipTrials == 0 {
		t.Error("current-generation noise should flip some outcomes")
	}
	// Pulses lower cleanly.
	var sb strings.Builder
	if err := job.WritePulses(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.Count(sb.String(), "\n") != len(job.Circuit.Ops) {
		t.Error("pulse schedule should have one line per op")
	}
}

func TestFacadeExperiments(t *testing.T) {
	// Table 2.
	rows, err := qla.Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 || rows[0].LogicalQubits != 37971 {
		t.Errorf("Table 2 head row wrong: %+v", rows[0])
	}
	// Equation 2.
	p0 := qla.ExpectedParams().AverageComponentFailure()
	if pf := qla.Equation2(p0, 7.5e-5, 2); pf < 0.8e-16 || pf > 1.2e-16 {
		t.Errorf("Equation2 = %.3g", pf)
	}
	// EC latency.
	sum := qla.ECLatency(qla.ExpectedParams())
	if sum.ECLevel2 < sum.ECLevel1 {
		t.Error("level-2 EC should cost more than level-1")
	}
	// Figure 9.
	pts := qla.Figure9([]int{4000})
	if len(pts) != 7 {
		t.Errorf("Figure9 returned %d points", len(pts))
	}
	// Scheduler.
	sched, err := qla.SchedulerSweep([]int{2})
	if err != nil {
		t.Fatal(err)
	}
	if !sched[0].Overlapped {
		t.Error("bandwidth 2 should overlap")
	}
	// Figure 7 at smoke scale.
	l1, l2, _, err := qla.Figure7([]float64{4e-3}, 3000, 1500, 3)
	if err != nil {
		t.Fatal(err)
	}
	if l2[0].FailRate <= l1[0].FailRate {
		t.Error("above threshold, level 2 should fail more")
	}
}

func TestFacadeCircuitBuilder(t *testing.T) {
	c := qla.NewCircuit(2)
	c.PrepPlus(0).CNOT(0, 1).MeasureZ(0).MeasureZ(1)
	s := qla.NewState(2)
	out := c.RunOn(s)
	if out[0] != out[1] {
		t.Errorf("Bell outcomes %v", out)
	}
}
