package qla_test

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"strings"
	"testing"

	"qla"
	"qla/internal/serve"
)

// The facade tests double as end-to-end integration tests of the public
// API: machine construction, the ARQ pipeline, and every experiment entry
// point.

func TestFacadeMachine(t *testing.T) {
	m, err := qla.NewMachine(64, qla.WithLevel(2), qla.WithBandwidth(2))
	if err != nil {
		t.Fatal(err)
	}
	if m.LogicalQubits() != 64 {
		t.Errorf("capacity = %d", m.LogicalQubits())
	}
	if ec := m.ECStepTime(); ec < 0.03 || ec > 0.06 {
		t.Errorf("EC step %.4f s out of range", ec)
	}
	ok, err := m.Overlapped(0, 1)
	if err != nil || !ok {
		t.Errorf("adjacent communication should overlap: %v %v", ok, err)
	}
}

func TestFacadeARQPipeline(t *testing.T) {
	src := `qubits 4
h 0
cnot 0 1
cnot 1 2
cnot 2 3
measure 0
measure 3
`
	job, err := qla.ParseJob(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	// Exact: GHZ ends correlated.
	for seed := uint64(1); seed < 8; seed++ {
		out := job.RunExact(seed)
		if out[0] != out[1] {
			t.Fatalf("GHZ outer qubits uncorrelated: %v", out)
		}
	}
	// Estimate: everything overlaps on a small machine.
	rep, err := job.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	if rep.CommExposed != 0 {
		t.Errorf("%d exposed communications on a 4-qubit machine", rep.CommExposed)
	}
	// Noisy: current-generation parameters flip some outcomes.
	res, err := job.RunNoisy(qla.CurrentParams(), 400, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.AnyFlipTrials == 0 {
		t.Error("current-generation noise should flip some outcomes")
	}
	// Pulses lower cleanly.
	var sb strings.Builder
	if err := job.WritePulses(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.Count(sb.String(), "\n") != len(job.Circuit.Ops) {
		t.Error("pulse schedule should have one line per op")
	}
}

func TestFacadeExperiments(t *testing.T) {
	// Table 2.
	rows, err := qla.Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 || rows[0].LogicalQubits != 37971 {
		t.Errorf("Table 2 head row wrong: %+v", rows[0])
	}
	// Equation 2.
	p0 := qla.ExpectedParams().AverageComponentFailure()
	if pf := qla.Equation2(p0, 7.5e-5, 2); pf < 0.8e-16 || pf > 1.2e-16 {
		t.Errorf("Equation2 = %.3g", pf)
	}
	// EC latency.
	sum := qla.ECLatency(qla.ExpectedParams())
	if sum.ECLevel2 < sum.ECLevel1 {
		t.Error("level-2 EC should cost more than level-1")
	}
	// Figure 9.
	pts := qla.Figure9([]int{4000})
	if len(pts) != 7 {
		t.Errorf("Figure9 returned %d points", len(pts))
	}
	// Scheduler.
	sched, err := qla.SchedulerSweep([]int{2})
	if err != nil {
		t.Fatal(err)
	}
	if !sched[0].Overlapped {
		t.Error("bandwidth 2 should overlap")
	}
	// Figure 7 at smoke scale.
	l1, l2, _, err := qla.Figure7([]float64{4e-3}, 3000, 1500, 3)
	if err != nil {
		t.Fatal(err)
	}
	if l2[0].FailRate <= l1[0].FailRate {
		t.Error("above threshold, level 2 should fail more")
	}
}

func TestFacadeCircuitBuilder(t *testing.T) {
	c := qla.NewCircuit(2)
	c.PrepPlus(0).CNOT(0, 1).MeasureZ(0).MeasureZ(1)
	s := qla.NewState(2)
	out := c.RunOn(s)
	if out[0] != out[1] {
		t.Errorf("Bell outcomes %v", out)
	}
}

// tinyParams shrinks each experiment's Monte Carlo knobs so the whole
// registry can be executed inside the test budget.
var tinyParams = map[string]qla.ExperimentParams{
	"figure7":          {"phys-errors": []float64{4e-3}, "trials": 60, "trials-l2": 20, "seed": 3},
	"syndrome-rates":   {"trials": 40},
	"scheduler-sweep":  {"bandwidths": []int{2}},
	"compare-adders":   {"widths": []int{4, 8}, "with-modular": false},
	"code-ablation":    {"mc-trials": 300},
	"chain-validation": {"trials": 40},
	"run-chain":        {"trials": 40},
	"shuttle":          {"separations": []int{12}},
	"qft":              {"charge-widths": []int{32}},
	"multichip":        {"n-bits": []int{128}},
	"plan-multichip":   {"n-bits": []int{128}, "cell-defect-prob": 1e-6},
	"machine-sweep":    {"levels": []int{2}, "bandwidths": []int{2}},
	"arq-noisy":        {"trials": 50},
}

// TestEngineRunsEveryExperiment enumerates the registry and runs every
// experiment (at tiny trial counts) under a live context, asserting each
// produces a JSON-serializable Result, then under a cancelled context,
// asserting each refuses to run.
func TestEngineRunsEveryExperiment(t *testing.T) {
	eng := qla.NewEngine()
	exps := qla.Experiments()
	if len(exps) < 20 {
		t.Fatalf("registry holds %d experiments", len(exps))
	}
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	for _, e := range exps {
		t.Run(e.Name, func(t *testing.T) {
			spec := qla.Spec{Experiment: e.Name, Params: tinyParams[e.Name]}
			res, err := eng.Run(context.Background(), spec)
			if err != nil {
				t.Fatalf("live context: %v", err)
			}
			if res.Experiment != e.Name || res.Data == nil {
				t.Fatalf("result %+v", res)
			}
			if _, err := json.Marshal(res); err != nil {
				t.Fatalf("result not JSON-serializable: %v", err)
			}
			if _, err := eng.Run(cancelled, spec); err == nil {
				t.Fatal("cancelled context: experiment ran anyway")
			}
		})
	}
}

// TestEngineSpecRoundTrip drives one Monte Carlo experiment through a
// JSON-encoded Spec, the transport a serving front end would use.
func TestEngineSpecRoundTrip(t *testing.T) {
	raw := []byte(`{"experiment":"run-chain","params":{"links":3,"link-eps":0.07,"trials":50,"seed":9}}`)
	var spec qla.Spec
	if err := json.Unmarshal(raw, &spec); err != nil {
		t.Fatal(err)
	}
	res, err := qla.NewEngine().Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := res.Data.(qla.ChainResult)
	if !ok {
		t.Fatalf("data is %T", res.Data)
	}
	if got.Config.Links != 3 || got.Config.Trials != 50 || res.Seed != 9 {
		t.Fatalf("spec not honored: %+v seed %d", got.Config, res.Seed)
	}
}

// TestEngineParallelDeterminism: the Monte Carlo experiments must
// produce bit-identical results at any parallelism for a fixed seed.
func TestEngineParallelDeterminism(t *testing.T) {
	for _, tc := range []struct {
		name string
		spec qla.Spec
	}{
		{"figure7", qla.Spec{
			Experiment: "figure7",
			Params:     qla.ExperimentParams{"phys-errors": []float64{2e-3, 4e-3}, "trials": 400, "trials-l2": 80, "seed": 13},
		}},
		{"figure7-scalar", qla.Spec{
			Experiment: "figure7",
			Params:     qla.ExperimentParams{"phys-errors": []float64{2e-3, 4e-3}, "trials": 400, "trials-l2": 80, "seed": 13, "backend": "scalar"},
		}},
		{"compare-comm", qla.Spec{
			Experiment: "compare-comm",
			Params:     qla.ExperimentParams{"link-eps": 0.05, "links": 4, "trials": 200, "seed": 13},
		}},
		{"run-chain", qla.Spec{
			Experiment: "run-chain",
			Params:     qla.ExperimentParams{"links": 4, "link-eps": 0.06, "purify-rounds": 1, "trials": 400, "seed": 13},
		}},
		{"syndrome-rates", qla.Spec{
			Experiment: "syndrome-rates",
			Params:     qla.ExperimentParams{"trials": 300, "seed": 13},
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			serial, err := qla.NewEngine(qla.WithParallelism(1)).Run(context.Background(), tc.spec)
			if err != nil {
				t.Fatal(err)
			}
			parallel, err := qla.NewEngine(qla.WithParallelism(8)).Run(context.Background(), tc.spec)
			if err != nil {
				t.Fatal(err)
			}
			sd, _ := json.Marshal(serial.Data)
			pd, _ := json.Marshal(parallel.Data)
			if !bytes.Equal(sd, pd) {
				t.Fatalf("parallel result diverged from serial:\n%s\nvs\n%s", pd, sd)
			}
		})
	}
}

// TestExperimentsDocumented: every registered experiment must appear in
// EXPERIMENTS.md so the catalog cannot silently drift from the docs.
func TestExperimentsDocumented(t *testing.T) {
	raw, err := os.ReadFile("EXPERIMENTS.md")
	if err != nil {
		t.Fatal(err)
	}
	doc := string(raw)
	for _, e := range qla.Experiments() {
		if !strings.Contains(doc, "`"+e.Name+"`") {
			t.Errorf("experiment %q missing from EXPERIMENTS.md", e.Name)
		}
	}
	// The qlaserve endpoints are part of the same catalog contract:
	// every served route must be documented with its method and path.
	for _, route := range serve.Routes {
		if !strings.Contains(doc, "`"+route+"`") {
			t.Errorf("qlaserve endpoint %q missing from EXPERIMENTS.md", route)
		}
	}
}

// TestFacadeSpecHashing covers the canonicalization surface re-exported
// through the facade: equivalent spellings share a content address.
func TestFacadeSpecHashing(t *testing.T) {
	spec, err := qla.DecodeSpec([]byte(`{"experiment":"fig7","params":{"trials":64}}`))
	if err != nil {
		t.Fatal(err)
	}
	canon, err := qla.CanonicalizeSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	if canon.Experiment != "figure7" {
		t.Errorf("alias not resolved: %q", canon.Experiment)
	}
	if canon.Params.Uint("seed") != 11 {
		t.Errorf("default seed not resolved: %+v", canon.Params)
	}
	h1, err := qla.SpecHash(spec)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := qla.SpecHash(qla.Spec{Experiment: "figure7", Params: qla.ExperimentParams{"trials": 64}})
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Errorf("alias spelling hashes differently: %s vs %s", h1, h2)
	}
	if _, err := qla.DecodeSpec([]byte(`{"experiment":"fig7","bogus":1}`)); err == nil {
		t.Error("strict decoder accepted an unknown field")
	}
}

// TestFacadeSweep covers the batch-sweep surface re-exported through
// the facade: strict decoding, content addressing, and a grid run with
// progress callbacks.
func TestFacadeSweep(t *testing.T) {
	raw := []byte(`{
		"base": {"experiment": "ecc"},
		"axes": [
			{"field": "machine.param_set", "values": ["expected", "current"]},
			{"field": "machine.level", "values": [1, 2]}
		]
	}`)
	ss, err := qla.DecodeSweepSpec(raw)
	if err != nil {
		t.Fatal(err)
	}
	h1, err := qla.SweepHash(ss)
	if err != nil {
		t.Fatal(err)
	}
	// The alias spelling shares the content address with the canonical
	// one, exactly as Spec hashing does.
	canonical := ss
	canonical.Base = qla.Spec{Experiment: "ec-latency"}
	h2, err := qla.SweepHash(canonical)
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Errorf("alias sweep spelling hashes differently: %s vs %s", h1, h2)
	}
	var last qla.SweepProgress
	res, err := qla.RunSweep(context.Background(), qla.NewEngine(), ss, func(p qla.SweepProgress) { last = p })
	if err != nil {
		t.Fatal(err)
	}
	if res.Total != 4 || res.OK != 4 || res.Experiment != "ec-latency" || res.SweepHash != h1 {
		t.Fatalf("sweep result %+v", res)
	}
	if last.Done != 4 {
		t.Errorf("final progress %+v", last)
	}
	if _, err := qla.DecodeSweepSpec([]byte(`{"base":{},"bogus":1}`)); err == nil {
		t.Error("strict sweep decoder accepted an unknown field")
	}
}

// TestFacadeWorkerPool: an engine behind a shared WorkerPool produces
// the same bytes as an unscheduled one — the budget changes core
// occupancy, never results.
func TestFacadeWorkerPool(t *testing.T) {
	spec := qla.Spec{
		Experiment: "figure7",
		Params:     qla.ExperimentParams{"phys-errors": []float64{4e-3}, "trials": 40, "seed": 5},
	}
	plain, err := qla.NewEngine().Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	pool := qla.NewWorkerPool(1)
	pooled, err := qla.NewEngine(qla.WithScheduler(pool)).Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(plain.Data)
	b, _ := json.Marshal(pooled.Data)
	if !bytes.Equal(a, b) {
		t.Errorf("scheduled run diverged from unscheduled:\n%s\nvs\n%s", b, a)
	}
	if s := pool.Stats(); s.Grants != 1 || s.InUse != 0 {
		t.Errorf("pool stats %+v", s)
	}
}

// TestAnalyzeControlOptions covers the options form of AnalyzeControl.
func TestAnalyzeControlOptions(t *testing.T) {
	job, err := qla.ParseJob(strings.NewReader("qubits 2\nh 0\ncnot 0 1\nmeasure 0\nmeasure 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	def := qla.AnalyzeControl(job)
	if def.EventWindow != 10e-6 {
		t.Errorf("default window %g", def.EventWindow)
	}
	wide := qla.AnalyzeControl(job, qla.WithEventWindow(1e-3))
	if wide.EventWindow != 1e-3 {
		t.Errorf("window option ignored: %g", wide.EventWindow)
	}
	if def.Ops != wide.Ops || def.PeakLasers != wide.PeakLasers {
		t.Error("window must not change pulse accounting")
	}
}
