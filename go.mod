module qla

go 1.24
