// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON object mapping benchmark name → ns/trial (the
// per-trial metric the Monte Carlo benchmarks report; benchmarks
// without it fall back to ns/op). CI feeds the bench smoke step
// through it to emit BENCH_PR4.json, the perf-trajectory artifact.
//
//	go test -run '^$' -bench 'Fig7|ChainTrial|CodesMC' -benchtime 1x . | benchjson > BENCH_PR4.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

func main() {
	rows := map[string]float64{}
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // pass the raw output through for the build log
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 3 {
			continue
		}
		name := trimProcSuffix(fields[0])
		value := -1.0
		haveTrial := false
		for i := 2; i < len(fields); i++ {
			unit := fields[i]
			if unit != "ns/trial" && unit != "ns/op" {
				continue
			}
			v, err := strconv.ParseFloat(fields[i-1], 64)
			if err != nil {
				continue
			}
			// Prefer the per-trial metric; ns/op is the fallback for
			// benchmarks that don't report one.
			if unit == "ns/trial" {
				value, haveTrial = v, true
			} else if !haveTrial {
				value = v
			}
		}
		if value >= 0 {
			rows[name] = value
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	// encoding/json marshals map keys sorted, so the file is stable.
	out, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	f, err := outFile()
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	defer f.Close()
	fmt.Fprintln(f, string(out))
}

// trimProcSuffix drops the -<GOMAXPROCS> tail go test appends, so the
// JSON keys are stable across runner shapes.
func trimProcSuffix(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// outFile resolves the JSON destination: the -o flag value, or stdout
// would collide with the passed-through bench text, so default to
// BENCH_PR4.json in the working directory.
func outFile() (*os.File, error) {
	path := "BENCH_PR4.json"
	args := os.Args[1:]
	for i := 0; i < len(args); i++ {
		if args[i] == "-o" && i+1 < len(args) {
			path = args[i+1]
		}
	}
	return os.Create(path)
}
