package main

// Ablation experiments for the extension systems: the design decisions
// DESIGN.md calls out (adder choice, error-correcting code choice,
// repeater interconnect vs naive teleportation, ballistic substrate
// behaviour, multi-chip partitioning) each get a regeneration target
// here, alongside the paper's own tables and figures.

import (
	"fmt"

	"qla"
	"qla/internal/codes"
	"qla/internal/modarith"
	"qla/internal/qft"
	"qla/internal/shor"
)

// adders regenerates the arithmetic ablation: ripple vs lookahead
// Toffoli critical path across operand widths, with the paper's
// 4·log2(n) model series.
func adders() error {
	fmt.Println("Adder ablation: Toffoli critical path, ripple vs QCLA")
	fmt.Printf("%6s %14s %14s %10s %12s %14s\n",
		"bits", "ripple depth", "QCLA depth", "speedup", "QCLA wires", "model 4·lg n")
	for _, n := range []int{4, 8, 16, 32, 64} {
		cmp := qla.CompareAdders(n)
		fmt.Printf("%6d %14d %14d %9.1fx %12d %14d\n",
			n, cmp.Ripple.ToffoliDepth, cmp.CLA.ToffoliDepth,
			cmp.DepthRatio, cmp.CLA.Width, shor.QCLAToffoliDepth(n))
	}
	fmt.Println("\npaper: the QCLA is \"most optimized for time of computation")
	fmt.Println("rather than system size\" — the crossover lands by n=8 and the")
	fmt.Println("gap widens as 2n vs Θ(log n).")

	fmt.Println("\nModular adder (VBE construction, 4 adder passes), Toffoli depth:")
	fmt.Printf("%6s %10s %16s %16s %12s\n", "bits", "modulus", "ripple-based", "QCLA-based", "ratio/adder")
	for _, row := range []struct {
		n int
		m uint64
	}{{8, 251}, {12, 3677}, {16, 40961}} {
		rip := modarith.Measure(row.n, row.m, modarith.Ripple)
		cla := modarith.Measure(row.n, row.m, modarith.CLA)
		fmt.Printf("%6d %10d %16d %16d %11.1fx\n",
			row.n, row.m, rip.ToffoliDepth, cla.ToffoliDepth,
			float64(cla.ToffoliDepth)/float64(cla.AdderDepth))
	}
	fmt.Println("\nThe modular adder costs ~4 adder passes (Van Meter–Itoh count the")
	fmt.Println("additions per modular multiplication the same way), so the QCLA's")
	fmt.Println("log-depth advantage carries straight into modular exponentiation.")
	return nil
}

// codeAblation regenerates the error-correcting-code comparison.
func codeAblation() error {
	fmt.Println("Code ablation: syndrome-extraction bill per full round")
	fmt.Printf("%-22s %6s %8s %9s %8s %12s %6s\n",
		"code", "data", "ancilla", "2q-gates", "meas", "time/round", "CSS")
	for _, c := range qla.CodeCatalog() {
		if err := c.Validate(); err != nil {
			return fmt.Errorf("%s: %w", c.Name, err)
		}
	}
	for _, cost := range qla.CodeAblation(qla.ExpectedParams()) {
		css := "no"
		for _, c := range qla.CodeCatalog() {
			if c.Name == cost.Code && c.IsCSS() {
				css = "yes"
			}
		}
		fmt.Printf("%-22s %6d %8d %9d %8d %9.0f µs %6s\n",
			cost.Code, cost.DataQubits, cost.AncillaQubits,
			cost.TwoQubitGates, cost.Measures, cost.TimeSeconds*1e6, css)
	}
	fmt.Println("\nLogical failure rate under i.i.d. depolarizing noise (decoder MC,")
	fmt.Println("100k trials/point; d=3 codes suppress O(p²), repetition codes leak O(p)):")
	ps := []float64{0.002, 0.01, 0.05}
	fmt.Printf("%-22s", "code")
	for _, p := range ps {
		fmt.Printf(" %11s", fmt.Sprintf("p=%g", p))
	}
	fmt.Println()
	rows, err := codes.MonteCarloSweep(ps, 100000, 17)
	if err != nil {
		return err
	}
	for i := 0; i < len(rows); i += len(ps) {
		fmt.Printf("%-22s", rows[i].Code)
		for j := 0; j < len(ps); j++ {
			fmt.Printf(" %11.2e", rows[i+j].LogicalRate)
		}
		fmt.Println()
	}

	fmt.Println("\npaper: Steane [[7,1,3]] chosen as the smallest CSS block with a")
	fmt.Println("fully transversal Clifford group (Section 4.1).")
	return nil
}

// chainMC regenerates the gate-level interconnect validation: the
// repeater protocol executed on the stabilizer backend vs the Werner
// recurrences, plus the naive-teleportation comparison.
func chainMC(trials int, seed uint64) error {
	if trials > 6000 {
		trials = 6000 // the default fig7 budget is far more than needed here
	}
	fmt.Println("Repeater-chain Monte Carlo (stabilizer backend) vs Werner model")
	fmt.Printf("%7s %9s %8s %12s %12s %10s\n",
		"links", "purify", "eps", "measured", "predicted", "raw pairs")
	for _, cfg := range []qla.ChainConfig{
		{Links: 2, LinkEps: 0.06, PurifyRounds: 0, Trials: trials, Seed: seed},
		{Links: 2, LinkEps: 0.06, PurifyRounds: 1, Trials: trials, Seed: seed + 1},
		{Links: 4, LinkEps: 0.06, PurifyRounds: 1, Trials: trials, Seed: seed + 2},
		{Links: 8, LinkEps: 0.06, PurifyRounds: 2, Trials: trials, Seed: seed + 3},
	} {
		res, err := qla.RunChain(cfg)
		if err != nil {
			return err
		}
		fmt.Printf("%7d %9d %8.2f %12.4f %12.4f %10.1f\n",
			cfg.Links, cfg.PurifyRounds, cfg.LinkEps,
			res.ErrorRate, res.PredictedError, res.RawPairsMean)
	}
	cmp, err := qla.CompareCommStrategies(0.05, 8, 1, trials, seed+10)
	if err != nil {
		return err
	}
	fmt.Printf("\nnaive end-to-end pair over 8 segments: error %.4f\n", cmp.Naive.ErrorRate)
	fmt.Printf("repeater chain over the same channel:  error %.4f\n", cmp.Repeater.ErrorRate)
	fmt.Println("\npaper (contribution 2): the simplistic approach collapses with")
	fmt.Println("distance; repeater islands keep the delivered fidelity pinned.")
	return nil
}

// shuttle regenerates the QCCD substrate experiment: executed
// transversal gates vs the analytic movement budget.
func shuttle() error {
	p := qla.ExpectedParams()
	fmt.Println("QCCD substrate: executed 7-ion transversal gate vs analytic budget")
	fmt.Printf("%12s %14s %14s %8s %8s %10s\n",
		"separation", "makespan", "analytic", "moves", "stalls", "max turns")
	for _, sep := range []int{12, 50, 100, 350} {
		rep, err := qla.RunTransversalGate(7, sep, p)
		if err != nil {
			return err
		}
		fmt.Printf("%8d cells %11.1f µs %11.1f µs %8d %8d %10d\n",
			sep, rep.Makespan*1e6, rep.AnalyticSeconds*1e6,
			rep.Stats.Moves, rep.Stats.Stalls, rep.MaxCorners)
	}
	fmt.Println("\npaper design rules validated: at most two turns per ballistic")
	fmt.Println("route; split time dominates short hops; movement pipelines.")
	return nil
}

// qftCheck regenerates the QFT-charge validation: the banded transform
// the paper's EC-step model assumes, built as a real gate list and
// verified against the DFT matrix at small widths.
func qftCheck() error {
	fmt.Println("QFT: banded circuit vs the paper's 2N·(log2(2N)+2) EC-step charge")
	fmt.Println("\nexact-circuit verification against the DFT matrix:")
	for n := 2; n <= 6; n++ {
		fmt.Printf("  n=%d: max basis-state L2 error %.2e\n", n, qft.Exact(n).MaxBasisError())
	}
	fmt.Println("\nbanding error at n=6 (Coppersmith: O(n·2^-band)):")
	for band := 3; band <= 7; band++ {
		fmt.Printf("  band %d: %.4f\n", band, qft.Banded(6, band).MaxBasisError())
	}
	fmt.Println("\ngate count of the banded transform vs the model charge:")
	fmt.Printf("%6s %8s %12s %12s %8s\n", "N", "band", "gates", "model", "ratio")
	for _, n := range []int{32, 128, 512, 1024} {
		band := qft.PaperBand(n)
		c := qft.Banded(2*n, band)
		total := int64(c.Counts().Total())
		model := shor.QFTSteps(n)
		fmt.Printf("%6d %8d %12d %12d %8.2f\n", n, band, total, model, float64(total)/float64(model))
	}
	fmt.Println("\nThe model's serial charge brackets the circuit's gate count; ASAP")
	fmt.Println("depth is lower still, so the QFT term stays a rounding error next")
	fmt.Println("to the 21-EC-step Toffolis in Table 2.")
	return nil
}

// multichipPlan regenerates the Section-6 multi-chip scaling study.
func multichipPlan() error {
	p := qla.ExpectedParams()
	link := qla.DefaultPhotonicLink()
	fmt.Println("Multi-chip partitioning (Section 6), 33 cm max chip edge")
	fmt.Printf("%6s %10s %7s %12s %12s %12s %10s\n",
		"N", "qubits", "chips", "chip edge", "mono edge", "links/bdry", "slowdown")
	for _, n := range []int{128, 512, 1024, 2048} {
		pt, err := qla.PlanMultichip(n, 33, 0, link, p)
		if err != nil {
			return err
		}
		fmt.Printf("%6d %10d %7d %9.1f cm %9.1f cm %12d %9.2fx\n",
			pt.N, pt.LogicalQubits, pt.Chips, pt.ChipEdgeCM,
			pt.MonolithicEdgeCM, pt.LinksPerBoundary, pt.Slowdown)
	}
	fmt.Println("\npaper: \"impractical for N > 128 with current single chip")
	fmt.Println("technology... a multi-chip solution is desirable.\" The link")
	fmt.Println("budget keeps inter-chip EPR supply ahead of the 2-pairs-per-EC-")
	fmt.Println("step demand, preserving full communication overlap.")
	return nil
}
