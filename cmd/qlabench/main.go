// Command qlabench regenerates every table and figure of the QLA paper's
// evaluation (Metodi et al., MICRO 2005) and prints them side by side with
// the paper's reported values. It is a thin shell over the experiment
// engine: every experiment is a registry entry (see EXPERIMENTS.md), and
// qlabench only builds Specs and renders Results.
//
// Usage:
//
//	qlabench -exp all
//	qlabench -exp fig7 -trials 200000
//	qlabench -exp fig7 -backend scalar
//	qlabench -exp table2
//	qlabench -list
//	qlabench -spec run.json
//	qlabench -exp fig7 -json > fig7.json
//	qlabench -sweep examples/sweep-ec-grid.json
//	qlabench -sweep grid.json -csv > grid.csv
//
// Run qlabench -list for the experiment catalog. -sweep runs a JSON
// SweepSpec (one base Spec fanned out over machine/parameter axes)
// synchronously and renders the aggregated result as a table, CSV
// (-csv) or JSON (-json); qlaserve runs the same SweepSpecs
// asynchronously behind POST /v1/sweeps.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"slices"
	"sort"
	"strings"

	"qla"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (-list shows the catalog; \"all\" runs the benchmark set)")
	trials := flag.Int("trials", 0, "override the experiment's Monte Carlo trial count (0 keeps its default)")
	seed := flag.Uint64("seed", 0, "override the experiment's Monte Carlo seed (0 keeps its default)")
	backend := flag.String("backend", "", "override the Monte Carlo backend where selectable: \"batch\" (bit-sliced, default) or \"scalar\" (reference)")
	parallelism := flag.Int("parallelism", 0, "Monte Carlo worker-pool width (0 = GOMAXPROCS; results are seed-deterministic at any width)")
	specFile := flag.String("spec", "", "run one JSON Spec file instead of -exp (\"-\" reads standard input)")
	sweepFile := flag.String("sweep", "", "run one JSON SweepSpec file (a base Spec fanned out over machine/parameter axes; \"-\" reads standard input)")
	asCSV := flag.Bool("csv", false, "with -sweep: emit the aggregated result as CSV")
	asJSON := flag.Bool("json", false, "emit results as JSON instead of the human report")
	list := flag.Bool("list", false, "list the registered experiments and exit")
	flag.Parse()

	if *list {
		listExperiments(os.Stdout)
		return
	}

	eng := qla.NewEngine(qla.WithParallelism(*parallelism))
	ctx := context.Background()

	if *sweepFile != "" {
		if err := runSweep(ctx, eng, *sweepFile, *asJSON, *asCSV); err != nil {
			fatal(err)
		}
		return
	}

	if *specFile != "" {
		spec, err := qla.ReadSpecFile(*specFile)
		if err != nil {
			fatal(err)
		}
		if err := runOne(ctx, eng, spec, *asJSON); err != nil {
			fatal(err)
		}
		return
	}

	if *exp == "all" {
		for _, e := range qla.Experiments() {
			if !e.Bench {
				continue
			}
			if !*asJSON {
				// Banners would corrupt a JSON stream; -json consumers
				// get one JSON document per experiment instead.
				fmt.Printf("\n================ %s ================\n", e.Name)
			}
			spec := qla.Spec{Experiment: e.Name, Params: overrides(e, *trials, *seed, *backend)}
			if err := runOne(ctx, eng, spec, *asJSON); err != nil {
				fatal(err)
			}
		}
		return
	}

	e, ok := qla.Lookup(*exp)
	if !ok {
		fmt.Fprintf(os.Stderr, "qlabench: unknown experiment %q (run qlabench -list)\n", *exp)
		os.Exit(2)
	}
	spec := qla.Spec{Experiment: e.Name, Params: overrides(e, *trials, *seed, *backend)}
	if err := runOne(ctx, eng, spec, *asJSON); err != nil {
		fatal(err)
	}
}

// overrides maps the convenience flags onto whichever of the standard
// parameter names the experiment declares; experiments without a
// matching parameter keep their documented defaults.
func overrides(e *qla.Experiment, trials int, seed uint64, backend string) qla.ExperimentParams {
	p := qla.ExperimentParams{}
	if trials > 0 && e.HasParam("trials") {
		p["trials"] = trials
	}
	if seed > 0 && e.HasParam("seed") {
		p["seed"] = seed
	}
	if backend != "" && e.HasParam("backend") {
		p["backend"] = backend
	}
	if len(p) == 0 {
		return nil
	}
	return p
}

// runSweep executes a SweepSpec file synchronously, with a progress
// line on stderr for the human formats.
func runSweep(ctx context.Context, eng *qla.Engine, path string, asJSON, asCSV bool) error {
	ss, err := qla.ReadSweepFile(path)
	if err != nil {
		return err
	}
	var progress func(qla.SweepProgress)
	if !asJSON && !asCSV {
		progress = func(p qla.SweepProgress) {
			fmt.Fprintf(os.Stderr, "\rsweep: %d/%d points (%d cached, %d failed)", p.Done, p.Total, p.Cached, p.Failed)
			if p.Done == p.Total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}
	res, err := qla.RunSweep(ctx, eng, ss, progress)
	if err != nil {
		return err
	}
	switch {
	case asJSON:
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(res)
	case asCSV:
		return res.WriteCSV(os.Stdout)
	default:
		return res.WriteTable(os.Stdout)
	}
}

func runOne(ctx context.Context, eng *qla.Engine, spec qla.Spec, asJSON bool) error {
	res, err := eng.Run(ctx, spec)
	if err != nil {
		return err
	}
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(res)
	}
	return qla.ReportResult(os.Stdout, res)
}

func listExperiments(w io.Writer) {
	fmt.Fprintln(w, "Registered experiments by family (benchmark-set entries marked *):")
	groups := map[string][]*qla.Experiment{}
	for _, e := range qla.Experiments() {
		groups[e.Family] = append(groups[e.Family], e)
	}
	order := []string{"paper", "extensions", "arq", "sweep", "cycle"}
	var extras []string
	for fam := range groups {
		if !slices.Contains(order, fam) {
			extras = append(extras, fam)
		}
	}
	sort.Strings(extras)
	for _, fam := range append(order, extras...) {
		exps := groups[fam]
		if len(exps) == 0 {
			continue
		}
		fmt.Fprintf(w, "\n%s:\n", familyTitle(fam))
		for _, e := range exps {
			mark := " "
			if e.Bench {
				mark = "*"
			}
			fmt.Fprintf(w, "%s %-18s %s\n", mark, e.Name, e.Title)
			if len(e.Aliases) > 0 {
				fmt.Fprintf(w, "  %-18s aliases: %s\n", "", strings.Join(e.Aliases, ", "))
			}
			for _, d := range e.Params {
				if d.Default == nil {
					fmt.Fprintf(w, "  %-18s -%s (%s, optional): %s\n", "", d.Name, d.Kind, d.Doc)
				} else {
					fmt.Fprintf(w, "  %-18s -%s (%s, default %s): %s\n", "", d.Name, d.Kind, formatDefault(d.Default), d.Doc)
				}
			}
		}
	}
}

// familyTitle maps registry family keys to catalog headings.
func familyTitle(family string) string {
	switch family {
	case "paper":
		return "Paper reproductions (MICRO-38 tables and figures)"
	case "extensions":
		return "Extensions and ablations"
	case "arq":
		return "ARQ pipeline stages"
	case "sweep":
		return "Batch sweeps"
	case "cycle":
		return "Cycle-level data movement"
	case "":
		return "Other"
	}
	return family
}

// formatDefault keeps the catalog one entry per line: multi-line string
// defaults (the arq circuit) are quoted and elided.
func formatDefault(v any) string {
	s, ok := v.(string)
	if !ok {
		return fmt.Sprintf("%v", v)
	}
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return fmt.Sprintf("%q…", s[:i])
	}
	return fmt.Sprintf("%q", s)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "qlabench: %v\n", err)
	os.Exit(1)
}
