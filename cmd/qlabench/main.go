// Command qlabench regenerates every table and figure of the QLA paper's
// evaluation (Metodi et al., MICRO 2005) and prints them side by side with
// the paper's reported values.
//
// Usage:
//
//	qlabench -exp all
//	qlabench -exp fig7 -trials 200000
//	qlabench -exp table2
//
// Experiments: table1, table2, fig7, fig9, ecc, eq2, sched, syndrome,
// shor128, all.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"qla"
	"qla/internal/ft"
	"qla/internal/iontrap"
	"qla/internal/shor"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: table1|table2|fig7|fig9|ecc|eq2|sched|syndrome|shor128|all")
	trials := flag.Int("trials", 120000, "Monte Carlo trials for the level-1 Figure-7 sweep (level 2 uses trials/4)")
	seed := flag.Uint64("seed", 11, "Monte Carlo seed")
	flag.Parse()

	runners := map[string]func(int, uint64) error{
		"table1":    func(int, uint64) error { return table1() },
		"table2":    func(int, uint64) error { return table2() },
		"fig7":      fig7,
		"fig9":      func(int, uint64) error { return fig9() },
		"ecc":       func(int, uint64) error { return ecc() },
		"eq2":       func(int, uint64) error { return eq2() },
		"sched":     func(int, uint64) error { return sched() },
		"syndrome":  syndrome,
		"shor128":   func(int, uint64) error { return shor128() },
		"adders":    func(int, uint64) error { return adders() },
		"codes":     func(int, uint64) error { return codeAblation() },
		"chainmc":   chainMC,
		"shuttle":   func(int, uint64) error { return shuttle() },
		"multichip": func(int, uint64) error { return multichipPlan() },
		"qft":       func(int, uint64) error { return qftCheck() },
	}
	order := []string{
		"table1", "ecc", "eq2", "fig7", "syndrome", "fig9", "sched",
		"table2", "shor128", "adders", "codes", "chainmc", "shuttle",
		"qft", "multichip",
	}

	if *exp == "all" {
		for _, name := range order {
			fmt.Printf("\n================ %s ================\n", name)
			if err := runners[name](*trials, *seed); err != nil {
				fmt.Fprintf(os.Stderr, "qlabench: %s: %v\n", name, err)
				os.Exit(1)
			}
		}
		return
	}
	run, ok := runners[*exp]
	if !ok {
		fmt.Fprintf(os.Stderr, "qlabench: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
	if err := run(*trials, *seed); err != nil {
		fmt.Fprintf(os.Stderr, "qlabench: %v\n", err)
		os.Exit(1)
	}
}

func table1() error {
	fmt.Println("Table 1: physical operation times and failure rates")
	fmt.Printf("%-12s %12s %14s %14s\n", "operation", "time", "Pcurrent", "Pexpected")
	cur, exp := qla.CurrentParams(), qla.ExpectedParams()
	rows := []iontrap.OpClass{
		iontrap.OpSingle, iontrap.OpDouble, iontrap.OpMeasure,
		iontrap.OpMoveCell, iontrap.OpSplit, iontrap.OpCool,
	}
	for _, c := range rows {
		fmt.Printf("%-12s %12v %14.3g %14.3g\n", c, cur.Duration(c), cur.Fail[c], exp.Fail[c])
	}
	fmt.Printf("%-12s %12s %14s %14s\n", "memory", fmt.Sprintf("%g-%g s", cur.MemoryLifetime, exp.MemoryLifetime), "-", "-")
	fmt.Printf("\nchannel bandwidth: %.0f Mqbps (paper: ~100)\n", exp.ChannelBandwidthQBPS()/1e6)
	return nil
}

func table2() error {
	rows, err := qla.Table2()
	if err != nil {
		return err
	}
	fmt.Println("Table 2: Shor's algorithm on the QLA (measured vs paper)")
	fmt.Printf("%-22s %12s %12s %12s %12s\n", "", "N=128", "N=512", "N=1024", "N=2048")
	line := func(name string, f func(r qla.ShorResources) string) {
		fmt.Printf("%-22s", name)
		for _, r := range rows {
			fmt.Printf(" %12s", f(r))
		}
		fmt.Println()
	}
	line("logical qubits", func(r qla.ShorResources) string { return fmt.Sprintf("%d", r.LogicalQubits) })
	line("  paper", func(r qla.ShorResources) string { return fmt.Sprintf("%d", shor.PaperTable2[r.N].LogicalQubits) })
	line("Toffoli depth", func(r qla.ShorResources) string { return fmt.Sprintf("%d", r.ToffoliDepth) })
	line("  paper", func(r qla.ShorResources) string { return fmt.Sprintf("%d", shor.PaperTable2[r.N].Toffoli) })
	line("total gates", func(r qla.ShorResources) string { return fmt.Sprintf("%d", r.TotalGates) })
	line("  paper", func(r qla.ShorResources) string { return fmt.Sprintf("%d", shor.PaperTable2[r.N].TotalGates) })
	line("area (m^2)", func(r qla.ShorResources) string { return fmt.Sprintf("%.2f", r.AreaM2) })
	line("  paper", func(r qla.ShorResources) string { return fmt.Sprintf("%.2f", shor.PaperTable2[r.N].AreaM2) })
	line("time (days)", func(r qla.ShorResources) string { return fmt.Sprintf("%.1f", r.TimeDays) })
	line("  paper", func(r qla.ShorResources) string { return fmt.Sprintf("%.1f", shor.PaperTable2[r.N].TimeDays) })
	return nil
}

func fig7(trials int, seed uint64) error {
	fmt.Println("Figure 7: logical one-qubit gate failure vs component failure rate")
	fmt.Printf("(level-1 trials %d, level-2 trials %d)\n\n", trials, trials/4)
	l1, l2, crossing, err := qla.Figure7(qla.Figure7Errors, trials, trials/4, seed)
	if err != nil {
		return err
	}
	fmt.Printf("%10s %14s %14s\n", "p_phys", "level-1 fail", "level-2 fail")
	for i := range l1 {
		fmt.Printf("%10.2g %9.6f±%.6f %8.6f±%.6f\n",
			l1[i].PhysError, l1[i].FailRate, l1[i].StdErr, l2[i].FailRate, l2[i].StdErr)
	}
	fmt.Printf("\npseudo-threshold crossing: %.2g  (paper: (2.1±1.8)e-3)\n", crossing)
	return nil
}

func syndrome(trials int, seed uint64) error {
	l1, l2, err := qla.SyndromeRates(trials, seed)
	if err != nil {
		return err
	}
	fmt.Println("Non-trivial syndrome rates at expected parameters (Section 4.1.1)")
	fmt.Printf("level 1: %.3g   (paper: 3.35e-4 ± 0.41e-4)\n", l1)
	fmt.Printf("level 2: %.3g   (paper: 7.92e-4 ± 0.81e-4)\n", l2)
	return nil
}

func fig9() error {
	fmt.Println("Figure 9: connection time vs total distance by island separation")
	lp := qla.DefaultLink()
	dists := []int{2000, 4000, 6000, 8000, 12000, 16000, 24000, 30000}
	fmt.Printf("%8s", "d \\ D")
	for _, d := range dists {
		fmt.Printf(" %8d", d)
	}
	fmt.Println()
	pts := qla.Figure9(dists)
	bySep := map[int][]qla.Fig9Point{}
	for _, p := range pts {
		bySep[p.Sep] = append(bySep[p.Sep], p)
	}
	var seps []int
	for s := range bySep {
		seps = append(seps, s)
	}
	sort.Ints(seps)
	for _, s := range seps {
		fmt.Printf("%8d", s)
		for _, p := range bySep[s] {
			if p.Feasible {
				fmt.Printf(" %8.4f", p.Time)
			} else {
				fmt.Printf(" %8s", "inf")
			}
		}
		fmt.Println()
	}
	cross := lp.CrossoverDistance(100, 350, dists)
	fmt.Printf("\nd=100 / d=350 crossover: %d cells  (paper: ≈6000 cells)\n", cross)
	sepShort, _, _ := lp.BestSeparation(2000)
	sepLong, _, _ := lp.BestSeparation(24000)
	fmt.Printf("best separation: %d cells at 2000 cells, %d cells at 24000 cells\n", sepShort, sepLong)
	return nil
}

func ecc() error {
	sum := qla.ECLatency(qla.ExpectedParams())
	fmt.Println("Equation 1: error-correction latency (Section 4.1.1)")
	fmt.Printf("T(1,ecc) = %.4f s   (paper: ≈0.003)\n", sum.ECLevel1)
	fmt.Printf("T(2,ecc) = %.4f s   (paper: ≈0.043)\n", sum.ECLevel2)
	fmt.Printf("level-2 ancilla preparation = %.4f s   (paper: ≈0.008)\n", sum.AncillaPrep)
	return nil
}

func eq2() error {
	p0 := qla.ExpectedParams().AverageComponentFailure()
	fmt.Println("Equation 2: Gottesman local-architecture failure estimate")
	pf := qla.Equation2(p0, ft.PthLocal, 2)
	fmt.Printf("p0 = %.3g, pth = %.3g, r = 12, L = 2\n", p0, ft.PthLocal)
	fmt.Printf("P_f(2) = %.3g   (paper: ≈1.0e-16)\n", pf)
	fmt.Printf("S = K·Q = %.3g  (paper: ≈9.9e15)\n", ft.MaxSystemSize(pf))
	pfEmp := qla.Equation2(p0, ft.PthEmpiricalQLA, 2)
	fmt.Printf("with empirical pth %.2g: P_f(2) = %.3g  (paper: approaching 1e-21)\n",
		ft.PthEmpiricalQLA, pfEmp)
	return nil
}

func sched() error {
	fmt.Println("Section 5: EPR scheduler bandwidth sweep (20x20 islands, 25 Toffolis)")
	rows, err := qla.SchedulerSweep([]int{1, 2, 4})
	if err != nil {
		return err
	}
	fmt.Printf("%10s %10s %12s %12s %8s %10s\n", "bandwidth", "requests", "1st-beat %", "utilization", "beats", "overlapped")
	for _, r := range rows {
		fmt.Printf("%10d %10d %11.1f%% %11.1f%% %8d %10v\n",
			r.Bandwidth, r.Requests, 100*r.ScheduledFrac, 100*r.Utilization, r.BeatsUsed, r.Overlapped)
	}
	fmt.Println("\npaper: bandwidth 2 suffices for full overlap at ~23% aggregate utilization")
	return nil
}

func shor128() error {
	r, err := qla.EstimateShor(128, qla.ExpectedParams())
	if err != nil {
		return err
	}
	m, err := qla.NewMachine(r.LogicalQubits)
	if err != nil {
		return err
	}
	fmt.Println("Factoring a 128-bit number on the QLA (Section 5 narrative)")
	fmt.Printf("logical qubits:     %d\n", r.LogicalQubits)
	fmt.Printf("Toffoli depth:      %d   (paper: 63,730)\n", r.ToffoliDepth)
	fmt.Printf("EC steps:           %.3g (paper: 1.34e6)\n", float64(r.ECSteps))
	fmt.Printf("EC step time:       %.4f s (paper: 0.043)\n", r.ECStepSeconds)
	fmt.Printf("single run:         %.1f h (paper: ≈16 h)\n", r.TimeSeconds/3600)
	fmt.Printf("with 1.3 retries:   %.1f h (paper: ≈21 h)\n", r.TimeHours)
	fmt.Printf("chip area:          %.2f m² (paper: 0.11), edge %.0f cm\n", r.AreaM2, m.Floorplan.EdgeCM())
	fmt.Printf("physical ions:      %.2g (paper: ≈7e6)\n", float64(m.PhysicalIons()))
	fmt.Printf("classical baseline: %.3g MIPS-years by NFS (512-bit anchor: 8400)\n",
		shor.ClassicalNFSMIPSYears(128))
	return nil
}
