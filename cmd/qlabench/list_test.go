package main

import (
	"regexp"
	"strings"
	"testing"

	"qla"
)

func TestListExperimentsGroupsByFamily(t *testing.T) {
	var sb strings.Builder
	listExperiments(&sb)
	out := sb.String()

	// Every family heading present, in catalog order.
	headings := []string{
		"Paper reproductions (MICRO-38 tables and figures)",
		"Extensions and ablations",
		"ARQ pipeline stages",
		"Batch sweeps",
		"Cycle-level data movement",
	}
	last := -1
	for _, h := range headings {
		at := strings.Index(out, h+":")
		if at < 0 {
			t.Fatalf("catalog missing family heading %q:\n%s", h, out)
		}
		if at < last {
			t.Errorf("family heading %q out of order", h)
		}
		last = at
	}

	// Every registered experiment appears exactly once, with its
	// one-line title, inside its family's section.
	sections := map[string]string{}
	for i, h := range headings {
		start := strings.Index(out, h+":")
		end := len(out)
		if i+1 < len(headings) {
			end = strings.Index(out, headings[i+1]+":")
		}
		sections[h] = out[start:end]
	}
	famHeading := map[string]string{
		"paper":      headings[0],
		"extensions": headings[1],
		"arq":        headings[2],
		"sweep":      headings[3],
		"cycle":      headings[4],
	}
	for _, e := range qla.Experiments() {
		// Entry lines are "<mark> <name><padding>"; docs may mention
		// other experiments' names, so match only line starts.
		entry := regexp.MustCompile(`(?m)^[* ] ` + regexp.QuoteMeta(e.Name) + `\s`)
		if n := len(entry.FindAllString(out, -1)); n != 1 {
			t.Errorf("experiment %s listed %d times, want 1", e.Name, n)
		}
		h, ok := famHeading[e.Family]
		if !ok {
			t.Errorf("experiment %s has unmapped family %q", e.Name, e.Family)
			continue
		}
		if !strings.Contains(sections[h], e.Name) {
			t.Errorf("experiment %s not listed under %q", e.Name, h)
		}
		if e.Title == "" || !strings.Contains(sections[h], e.Title) {
			t.Errorf("experiment %s missing its one-line title under %q", e.Name, h)
		}
	}

	// Benchmark-set entries keep their marker.
	if !strings.Contains(out, "* cycle-interconnect") {
		t.Error("cycle-interconnect not marked as a benchmark-set entry")
	}
}
