package main

import (
	"encoding/json"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestCrashRecovery is the durability acceptance test, end to end
// against the real binary: kill -9 a qlaserve mid-sweep, restart it
// over the same -journal-dir and -cache-dir, and the sweep is
// re-admitted and completes with the already-finished points served
// from the persisted cache instead of recomputed.
func TestCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills a real server process")
	}
	bin := buildServer(t)
	work := t.TempDir()
	cacheDir := filepath.Join(work, "cache")
	journalDir := filepath.Join(work, "journal")
	addr := freeAddr(t)
	base := "http://" + addr

	args := []string{
		"-addr", addr,
		"-cache-dir", cacheDir,
		"-journal-dir", journalDir,
		"-workers", "1", // slow the sweep down so the kill lands mid-run
	}
	proc1 := startServer(t, bin, args)
	waitHealthy(t, base)

	// 16 points × ~200 ms on one worker: seconds of runtime to kill into.
	sweep := `{
	  "base": {"experiment": "figure7", "params": {"phys-errors": [0.004], "trials": 60000, "seed": 3}},
	  "axes": [{"field": "params.seed", "values": [1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,16]}]
	}`
	resp, err := http.Post(base+"/v1/sweeps", "application/json", strings.NewReader(sweep))
	if err != nil {
		t.Fatal(err)
	}
	var sb struct {
		JobID  string `json:"job_id"`
		Points int    `json:"points"`
	}
	decodeAndClose(t, resp, &sb)
	if resp.StatusCode != http.StatusAccepted || sb.Points != 16 {
		t.Fatalf("submit: status %d body %+v", resp.StatusCode, sb)
	}

	// Let part of the sweep finish, then pull the plug.
	doneBeforeKill := waitProgress(t, base, sb.JobID, 5)
	if err := proc1.Process.Kill(); err != nil { // SIGKILL: no shutdown path runs
		t.Fatal(err)
	}
	proc1.Wait()

	proc2 := startServer(t, bin, args)
	defer func() {
		proc2.Process.Signal(syscall.SIGTERM)
		proc2.Wait()
	}()
	waitHealthy(t, base)

	// The job must exist without any re-submission: the journal replay
	// re-admitted it at startup.
	snap := pollDone(t, base, sb.JobID)
	if snap.State != "done" {
		t.Fatalf("replayed job state %q (error %q)", snap.State, snap.Error)
	}

	var res struct {
		Total  int `json:"total"`
		OK     int `json:"ok"`
		Cached int `json:"cached"`
		Failed int `json:"failed"`
	}
	getJSON(t, base+"/v1/jobs/"+sb.JobID+"/result", &res)
	if res.OK != res.Total || res.Failed != 0 {
		t.Fatalf("recovered sweep incomplete: %+v", res)
	}
	// Everything finished before the kill must replay from the disk
	// cache; allow one torn in-flight point.
	want := doneBeforeKill * 9 / 10
	if res.Cached < want {
		t.Fatalf("only %d/%d points cached after recovery (%d done before kill, want >= %d)",
			res.Cached, res.Total, doneBeforeKill, want)
	}
	t.Logf("recovery: %d done before kill, %d/%d served from cache", doneBeforeKill, res.Cached, res.Total)

	// A clean SIGTERM on the recovered server leaves nothing to replay.
	proc2.Process.Signal(syscall.SIGTERM)
	if err := proc2.Wait(); err != nil {
		t.Fatalf("graceful shutdown exit: %v", err)
	}
	left, _ := filepath.Glob(filepath.Join(journalDir, "*.wal"))
	if len(left) != 0 {
		t.Fatalf("journal not drained after completed job: %v", left)
	}
}

func buildServer(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "qlaserve")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

func startServer(t *testing.T, bin string, args []string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	return cmd
}

func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

func waitHealthy(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never became healthy: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

type jobSnap struct {
	State    string `json:"state"`
	Error    string `json:"error"`
	Progress struct {
		Total  int `json:"total"`
		Done   int `json:"done"`
		Cached int `json:"cached"`
	} `json:"progress"`
}

// waitProgress polls until at least min points are done and returns
// the observed count.
func waitProgress(t *testing.T, base, id string, min int) int {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		var snap jobSnap
		getJSON(t, base+"/v1/jobs/"+id, &snap)
		if snap.Progress.Done >= min {
			return snap.Progress.Done
		}
		if snap.State != "running" && snap.State != "queued" {
			t.Fatalf("job settled early: %+v", snap)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never reached %d done points: %+v", min, snap)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

func pollDone(t *testing.T, base, id string) jobSnap {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for {
		var snap jobSnap
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == http.StatusNotFound {
			resp.Body.Close()
			t.Fatal("job missing after restart: journal replay did not re-admit it")
		}
		decodeAndClose(t, resp, &snap)
		switch snap.State {
		case "done", "failed", "cancelled":
			return snap
		}
		if time.Now().After(deadline) {
			t.Fatalf("recovered job never finished: %+v", snap)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func getJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	decodeAndClose(t, resp, out)
}

func decodeAndClose(t *testing.T, resp *http.Response, out any) {
	t.Helper()
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode >= 300 {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	if err := json.Unmarshal(raw, out); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, raw)
	}
}
