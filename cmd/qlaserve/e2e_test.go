package main

import (
	"encoding/json"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestCrashRecovery is the durability acceptance test, end to end
// against the real binary: kill -9 a qlaserve mid-sweep, restart it
// over the same -journal-dir and -cache-dir, and the sweep is
// re-admitted and completes with the already-finished points served
// from the persisted cache instead of recomputed.
func TestCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills a real server process")
	}
	bin := buildServer(t)
	work := t.TempDir()
	cacheDir := filepath.Join(work, "cache")
	journalDir := filepath.Join(work, "journal")
	addr := freeAddr(t)
	base := "http://" + addr

	args := []string{
		"-addr", addr,
		"-cache-dir", cacheDir,
		"-journal-dir", journalDir,
		"-workers", "1", // slow the sweep down so the kill lands mid-run
	}
	proc1 := startServer(t, bin, args)
	waitHealthy(t, base)

	// 16 points × ~200 ms on one worker: seconds of runtime to kill into.
	sweep := `{
	  "base": {"experiment": "figure7", "params": {"phys-errors": [0.004], "trials": 60000, "seed": 3}},
	  "axes": [{"field": "params.seed", "values": [1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,16]}]
	}`
	resp, err := http.Post(base+"/v1/sweeps", "application/json", strings.NewReader(sweep))
	if err != nil {
		t.Fatal(err)
	}
	var sb struct {
		JobID  string `json:"job_id"`
		Points int    `json:"points"`
	}
	decodeAndClose(t, resp, &sb)
	if resp.StatusCode != http.StatusAccepted || sb.Points != 16 {
		t.Fatalf("submit: status %d body %+v", resp.StatusCode, sb)
	}

	// Let part of the sweep finish, then pull the plug.
	doneBeforeKill := waitProgress(t, base, sb.JobID, 5)
	if err := proc1.Process.Kill(); err != nil { // SIGKILL: no shutdown path runs
		t.Fatal(err)
	}
	proc1.Wait()

	proc2 := startServer(t, bin, args)
	defer func() {
		proc2.Process.Signal(syscall.SIGTERM)
		proc2.Wait()
	}()
	waitHealthy(t, base)

	// The job must exist without any re-submission: the journal replay
	// re-admitted it at startup.
	snap := pollDone(t, base, sb.JobID)
	if snap.State != "done" {
		t.Fatalf("replayed job state %q (error %q)", snap.State, snap.Error)
	}

	var res struct {
		Total  int `json:"total"`
		OK     int `json:"ok"`
		Cached int `json:"cached"`
		Failed int `json:"failed"`
	}
	getJSON(t, base+"/v1/jobs/"+sb.JobID+"/result", &res)
	if res.OK != res.Total || res.Failed != 0 {
		t.Fatalf("recovered sweep incomplete: %+v", res)
	}
	// Everything finished before the kill must replay from the disk
	// cache; allow one torn in-flight point.
	want := doneBeforeKill * 9 / 10
	if res.Cached < want {
		t.Fatalf("only %d/%d points cached after recovery (%d done before kill, want >= %d)",
			res.Cached, res.Total, doneBeforeKill, want)
	}
	t.Logf("recovery: %d done before kill, %d/%d served from cache", doneBeforeKill, res.Cached, res.Total)

	// A clean SIGTERM on the recovered server leaves nothing to replay.
	proc2.Process.Signal(syscall.SIGTERM)
	if err := proc2.Wait(); err != nil {
		t.Fatalf("graceful shutdown exit: %v", err)
	}
	left, _ := filepath.Glob(filepath.Join(journalDir, "*.wal"))
	if len(left) != 0 {
		t.Fatalf("journal not drained after completed job: %v", left)
	}
}

// TestFleetFailover is the fleet-mode acceptance test, end to end
// against real processes: two replicas share one sweep through the
// peer cache tier and per-point work leasing; one replica is SIGKILLed
// mid-sweep, and the survivor completes the whole grid with the dead
// replica's pre-kill completions served from its own cache (the syncer
// prefetched them while both were alive) rather than recomputed.
func TestFleetFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills real server processes")
	}
	bin := buildServer(t)
	work := t.TempDir()
	addrA, addrB := freeAddr(t), freeAddr(t)
	baseA, baseB := "http://"+addrA, "http://"+addrB

	common := []string{
		"-workers", "1", // slow each replica down so the kill lands mid-run
		"-lease-ttl", "2s", // dead replica's claims lapse quickly
		"-fleet-poll", "100ms", // tight ledger polling: completions replicate fast
		"-peer-timeout", "500ms",
	}
	argsA := append([]string{
		"-addr", addrA, "-peers", baseB, "-self-id", "replica-a",
		"-cache-dir", filepath.Join(work, "cache-a"),
		"-journal-dir", filepath.Join(work, "journal-a"),
	}, common...)
	argsB := append([]string{
		"-addr", addrB, "-peers", baseA, "-self-id", "replica-b",
		"-cache-dir", filepath.Join(work, "cache-b"),
		"-journal-dir", filepath.Join(work, "journal-b"),
	}, common...)
	procA := startServer(t, bin, argsA)
	procB := startServer(t, bin, argsB)
	waitHealthy(t, baseA)
	waitHealthy(t, baseB)

	// 24 points × ~400 ms on one worker each: seconds of shared runtime.
	sweep := `{
	  "base": {"experiment": "figure7", "params": {"phys-errors": [0.004], "trials": 120000, "seed": 3}},
	  "axes": [{"field": "params.seed", "values": [1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,16,17,18,19,20,21,22,23,24]}]
	}`
	resp, err := http.Post(baseA+"/v1/sweeps", "application/json", strings.NewReader(sweep))
	if err != nil {
		t.Fatal(err)
	}
	var sb struct {
		JobID  string `json:"job_id"`
		Points int    `json:"points"`
	}
	decodeAndClose(t, resp, &sb)
	if resp.StatusCode != http.StatusAccepted || sb.Points != 24 {
		t.Fatalf("submit: status %d body %+v", resp.StatusCode, sb)
	}

	// The forwarded submission must land on B before the kill matters.
	waitJobExists(t, baseB, sb.JobID)

	// Let A genuinely compute a few points (done minus cached — cached
	// ones came from B and prove nothing), then pull its plug.
	computedA := waitComputed(t, baseA, sb.JobID, 5)
	if err := procA.Process.Kill(); err != nil { // SIGKILL: no shutdown path runs
		t.Fatal(err)
	}
	procA.Wait()

	// The survivor finishes the whole grid despite its peer being gone:
	// claims to A fail open (no veto), A's live leases expire after
	// -lease-ttl, and A's finished points are already in B's cache.
	snap := pollDone(t, baseB, sb.JobID)
	if snap.State != "done" {
		t.Fatalf("survivor job state %q (error %q)", snap.State, snap.Error)
	}
	var res struct {
		Total  int `json:"total"`
		OK     int `json:"ok"`
		Cached int `json:"cached"`
		Failed int `json:"failed"`
	}
	getJSON(t, baseB+"/v1/jobs/"+sb.JobID+"/result", &res)
	if res.OK != res.Total || res.Total != 24 || res.Failed != 0 {
		t.Fatalf("survivor result incomplete: %+v", res)
	}
	// ≥90% of the dead replica's computed points must reach the survivor
	// as cache hits (one may be torn mid-flight or inside one poll gap).
	want := computedA * 9 / 10
	if res.Cached < want {
		t.Fatalf("only %d/%d points cached on the survivor (%d computed on A before kill, want >= %d)",
			res.Cached, res.Total, computedA, want)
	}
	var st struct {
		Cache struct {
			PeerHits uint64 `json:"peer_hits"`
		} `json:"cache"`
		Fleet struct {
			Prefetched uint64 `json:"prefetched"`
			ClaimsSent uint64 `json:"claims_sent"`
		} `json:"fleet"`
	}
	getJSON(t, baseB+"/v1/stats", &st)
	if st.Cache.PeerHits == 0 {
		t.Fatalf("survivor peer_hits = 0: nothing crossed the peer tier (fleet %+v)", st.Fleet)
	}
	t.Logf("failover: A computed %d before kill; survivor served %d/%d cached, peer_hits=%d prefetched=%d claims_sent=%d",
		computedA, res.Cached, res.Total, st.Cache.PeerHits, st.Fleet.Prefetched, st.Fleet.ClaimsSent)

	procB.Process.Signal(syscall.SIGTERM)
	if err := procB.Wait(); err != nil {
		t.Fatalf("graceful survivor shutdown: %v", err)
	}
}

// waitJobExists polls until base knows the job (forwarding is async).
func waitJobExists(t *testing.T, base, id string) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never reached %s", id, base)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// waitComputed polls until base has locally computed (done minus
// cached) at least min points of the job, returning the count.
func waitComputed(t *testing.T, base, id string, min int) int {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		var snap jobSnap
		getJSON(t, base+"/v1/jobs/"+id, &snap)
		if computed := snap.Progress.Done - snap.Progress.Cached; computed >= min {
			return computed
		}
		if snap.State != "running" && snap.State != "queued" {
			t.Fatalf("job settled before computing %d points locally: %+v", min, snap)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never computed %d points locally: %+v", min, snap)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

func buildServer(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "qlaserve")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

func startServer(t *testing.T, bin string, args []string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	return cmd
}

func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

func waitHealthy(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never became healthy: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

type jobSnap struct {
	State    string `json:"state"`
	Error    string `json:"error"`
	Progress struct {
		Total  int `json:"total"`
		Done   int `json:"done"`
		Cached int `json:"cached"`
	} `json:"progress"`
}

// waitProgress polls until at least min points are done and returns
// the observed count.
func waitProgress(t *testing.T, base, id string, min int) int {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		var snap jobSnap
		getJSON(t, base+"/v1/jobs/"+id, &snap)
		if snap.Progress.Done >= min {
			return snap.Progress.Done
		}
		if snap.State != "running" && snap.State != "queued" {
			t.Fatalf("job settled early: %+v", snap)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never reached %d done points: %+v", min, snap)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

func pollDone(t *testing.T, base, id string) jobSnap {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for {
		var snap jobSnap
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == http.StatusNotFound {
			resp.Body.Close()
			t.Fatal("job missing after restart: journal replay did not re-admit it")
		}
		decodeAndClose(t, resp, &snap)
		switch snap.State {
		case "done", "failed", "cancelled":
			return snap
		}
		if time.Now().After(deadline) {
			t.Fatalf("recovered job never finished: %+v", snap)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func getJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	decodeAndClose(t, resp, out)
}

func decodeAndClose(t *testing.T, resp *http.Response, out any) {
	t.Helper()
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode >= 300 {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	if err := json.Unmarshal(raw, out); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, raw)
	}
}
