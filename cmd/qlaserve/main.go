// Command qlaserve serves the QLA experiment engine over HTTP: POST a
// JSON Spec, receive the Result. It is the ROADMAP's serving front
// door: one shared concurrency-safe Engine behind a content-addressed
// result cache (repeated Specs are nearly free — fixed-seed results are
// bit-identical, so cached bytes replay verbatim) and a process-wide
// worker budget (concurrent runs share cores instead of each
// oversubscribing GOMAXPROCS).
//
// Usage:
//
//	qlaserve -addr :8080
//	curl -d '{"experiment":"figure7","params":{"trials":6400}}' localhost:8080/v1/run
//	curl localhost:8080/v1/experiments
//	curl localhost:8080/v1/stats
//
// See the "Serving over HTTP" section of EXPERIMENTS.md for the
// endpoint reference.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"qla/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	cacheBytes := flag.Int64("cache-bytes", 64<<20, "result-cache byte budget (negative = unbounded)")
	workers := flag.Int("workers", 0, "global Monte Carlo worker budget shared across concurrent runs (0 = GOMAXPROCS)")
	timeout := flag.Duration("timeout", 60*time.Second, "default per-request deadline (requests may override with ?timeout=)")
	maxTimeout := flag.Duration("max-timeout", 10*time.Minute, "upper bound on per-request deadlines")
	flag.Parse()

	srv := serve.New(serve.Config{
		CacheBytes:     *cacheBytes,
		Workers:        *workers,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
	})
	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	// Serve until SIGINT/SIGTERM, then drain in-flight runs gracefully.
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)

	cfg := srv.Config()
	log.Printf("qlaserve: listening on %s (workers=%d cache=%d bytes, timeout=%v/%v)",
		*addr, cfg.Workers, cfg.CacheBytes, cfg.DefaultTimeout, cfg.MaxTimeout)
	select {
	case err := <-errc:
		fatal(err)
	case sig := <-sigc:
		log.Printf("qlaserve: %v, shutting down", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	if err == nil || errors.Is(err, http.ErrServerClosed) {
		return
	}
	fmt.Fprintf(os.Stderr, "qlaserve: %v\n", err)
	os.Exit(1)
}
