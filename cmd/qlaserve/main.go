// Command qlaserve serves the QLA experiment engine over HTTP: POST a
// JSON Spec, receive the Result. It is the ROADMAP's serving front
// door: one shared concurrency-safe Engine behind a content-addressed
// result cache (repeated Specs are nearly free — fixed-seed results are
// bit-identical, so cached bytes replay verbatim) and a process-wide
// worker budget (concurrent runs share cores instead of each
// oversubscribing GOMAXPROCS).
//
// Long-running work goes through the async sweep surface: POST a
// SweepSpec (one base Spec fanned out over a machine/parameter grid)
// to /v1/sweeps, poll or stream the returned job, fetch the aggregated
// result when done. Job IDs are sweep content addresses, so identical
// submissions collapse, and -cache-dir persists per-point results
// across restarts.
//
// Replicas started with -peers form a cooperating fleet: each serves
// its cached Result bytes to the others (GET /v1/cache/{hash}),
// forwards sweep submissions, and leases grid points per replica so
// the fleet races through one sweep together. A SIGKILLed replica's
// leases expire and the survivors finish its share from the shared
// cache tier instead of recomputing it.
//
// Usage:
//
//	qlaserve -addr :8080 -cache-dir /var/cache/qla
//	curl -d '{"experiment":"figure7","params":{"trials":6400}}' localhost:8080/v1/run
//	curl -d @sweep.json localhost:8080/v1/sweeps
//	curl localhost:8080/v1/jobs/<id>
//	curl -N localhost:8080/v1/jobs/<id>/events
//	curl localhost:8080/v1/jobs/<id>/result
//	curl localhost:8080/v1/experiments
//	curl localhost:8080/v1/stats
//	curl localhost:8080/metrics
//
// See the "Serving over HTTP", "Batch sweeps & async jobs" and
// "Observability" sections of EXPERIMENTS.md for the endpoint
// reference.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"qla/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	debugAddr := flag.String("debug-addr", "", "listen address for the private debug listener (net/http/pprof); keep it off the public network (empty = disabled)")
	logLevel := flag.String("log-level", "info", "minimum log level: debug, info, warn, error")
	cacheBytes := flag.Int64("cache-bytes", 64<<20, "result-cache byte budget (negative = unbounded)")
	cacheDir := flag.String("cache-dir", "", "directory for the result cache's file persistence tier (empty = memory only)")
	workers := flag.Int("workers", 0, "global Monte Carlo worker budget shared across concurrent runs (0 = GOMAXPROCS)")
	timeout := flag.Duration("timeout", 60*time.Second, "default per-request deadline (requests may override with ?timeout=)")
	maxTimeout := flag.Duration("max-timeout", 10*time.Minute, "upper bound on per-request deadlines")
	maxJobs := flag.Int("max-jobs", 0, "bound on stored async sweep jobs (0 = 256)")
	maxJobBytes := flag.Int64("max-job-bytes", 0, "byte budget for retained async job results (0 = 256 MiB, negative = unbounded)")
	jobTTL := flag.Duration("job-ttl", 0, "retention of finished async jobs (0 = 1h)")
	sweepTimeout := flag.Duration("sweep-timeout", 0, "upper bound on one sweep job's total runtime (0 = 30m)")
	journalDir := flag.String("journal-dir", "", "directory for the write-ahead job journal: unfinished sweeps are re-admitted after a restart (empty = jobs die with the process)")
	pointRetries := flag.Int("point-retries", 0, "extra attempts a failed sweep point gets (0 = 2, negative = none)")
	pointTimeout := flag.Duration("point-timeout", 0, "per-attempt deadline of one sweep point (0 = 5m)")
	maxQueue := flag.Int("max-queue", 0, "scheduler queue bound before uncacheable work is shed with 503 + Retry-After (0 = 4×workers, negative = unbounded)")
	shutdownGrace := flag.Duration("shutdown-grace", 30*time.Second, "how long SIGTERM/SIGINT waits for in-flight requests to drain before exiting")
	peers := flag.String("peers", "", "comma-separated base URLs of the other fleet replicas; non-empty enables fleet mode: the peer cache tier, sweep forwarding and per-point work leasing (empty = standalone)")
	selfID := flag.String("self-id", "", "replica identity used in lease claims, unique across the fleet (empty = random)")
	leaseTTL := flag.Duration("lease-ttl", 0, "per-point work lease lifetime; a SIGKILLed replica's claims expire after this and survivors take the points over (0 = 30s)")
	fleetPoll := flag.Duration("fleet-poll", 0, "interval for polling peers' lease ledgers to prefetch their completed points (0 = 1s)")
	peerTimeout := flag.Duration("peer-timeout", 0, "deadline for one peer HTTP call: cache fetches, lease claims, ledger polls (0 = 2s)")
	interactiveReserve := flag.Int("interactive-reserve", 1, "worker slots bulk sweep work may never occupy, held for interactive /v1/run requests (clamped to workers-1; 0 = no reserve)")
	tenantRPS := flag.Float64("tenant-rps", 0, "per-tenant submission rate limit in requests/second; over-rate submissions get 429 + Retry-After (0 = unlimited)")
	tenantBurst := flag.Float64("tenant-burst", 0, "per-tenant rate-limit burst depth (0 = max(1, 2×tenant-rps))")
	tenantMaxJobs := flag.Int("tenant-max-jobs", 0, "bound on one tenant's concurrently running sweep jobs; past it submissions get 429 (0 = unlimited)")
	tenantMaxJobBytes := flag.Int64("tenant-max-job-bytes", 0, "byte budget for one tenant's retained job results; past it the tenant's oldest finished jobs evict (0 = unlimited)")
	flag.Parse()

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintf(os.Stderr, "qlaserve: bad -log-level %q: %v\n", *logLevel, err)
		os.Exit(2)
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))
	slog.SetDefault(logger)

	var peerList []string
	if *peers != "" {
		peerList = strings.Split(*peers, ",")
	}
	srv := serve.New(serve.Config{
		CacheBytes:     *cacheBytes,
		CacheDir:       *cacheDir,
		Workers:        *workers,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		MaxJobs:        *maxJobs,
		MaxJobBytes:    *maxJobBytes,
		JobTTL:         *jobTTL,
		SweepTimeout:   *sweepTimeout,
		JournalDir:     *journalDir,
		PointRetries:   *pointRetries,
		PointTimeout:   *pointTimeout,
		MaxQueue:       *maxQueue,
		Peers:          peerList,
		SelfID:         *selfID,
		LeaseTTL:       *leaseTTL,
		FleetPoll:      *fleetPoll,
		PeerTimeout:    *peerTimeout,
		Logger:         logger,

		InteractiveReserve:   *interactiveReserve,
		TenantRPS:            *tenantRPS,
		TenantBurst:          *tenantBurst,
		TenantMaxJobs:        *tenantMaxJobs,
		TenantMaxResultBytes: *tenantMaxJobBytes,
	})
	// Crash recovery: re-admit journaled sweeps the previous process
	// did not finish, before the listener opens — their points replay
	// from the content-addressed cache, so only lost work recomputes.
	if n, err := srv.ReplayJournal(); err != nil {
		logger.Error("journal replay", "err", err)
	} else if n > 0 {
		logger.Info("re-admitted journaled sweep jobs", "jobs", n)
	}
	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	// The debug listener carries pprof and nothing else. It is a
	// separate server on a separate address so profiling endpoints are
	// never reachable through the public mux.
	if *debugAddr != "" {
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		ds := &http.Server{Addr: *debugAddr, Handler: dmux, ReadHeaderTimeout: 10 * time.Second}
		go func() {
			logger.Info("debug listener (pprof)", "addr", *debugAddr)
			if err := ds.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("debug listener", "err", err)
			}
		}()
	}

	// Serve until SIGINT/SIGTERM, then drain in-flight runs gracefully.
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)

	bi := serve.ReadBuildInfo()
	logger.Info("build", "go", bi.GoVersion, "path", bi.Path, "version", bi.Version,
		"vcs_revision", bi.Revision, "vcs_modified", bi.Modified)

	cfg := srv.Config()
	persist := cfg.CacheDir
	if persist == "" {
		persist = "memory-only"
	}
	logger.Info("listening", "addr", *addr, "workers", cfg.Workers,
		"cache_bytes", cfg.CacheBytes, "cache_persist", persist,
		"timeout", cfg.DefaultTimeout, "max_timeout", cfg.MaxTimeout,
		"max_jobs", cfg.MaxJobs, "job_ttl", cfg.JobTTL, "sweep_timeout", cfg.SweepTimeout)
	if len(cfg.Peers) > 0 {
		logger.Info("fleet mode", "self", cfg.SelfID, "peers", cfg.Peers,
			"lease_ttl", cfg.LeaseTTL, "fleet_poll", cfg.FleetPoll, "peer_timeout", cfg.PeerTimeout)
	}
	if cfg.InteractiveReserve > 0 || cfg.TenantRPS > 0 || cfg.TenantMaxJobs > 0 {
		logger.Info("admission control", "interactive_reserve", cfg.InteractiveReserve,
			"tenant_rps", cfg.TenantRPS, "tenant_burst", cfg.TenantBurst, "tenant_max_jobs", cfg.TenantMaxJobs)
	}
	select {
	case err := <-errc:
		fatal(err)
	case sig := <-sigc:
		// Graceful shutdown: stop accepting, drain in-flight requests
		// for up to -shutdown-grace, flush and close the journal (open
		// entries replay on the next start), then exit 0.
		logger.Info("draining in-flight requests", "signal", sig.String(), "grace", *shutdownGrace)
		ctx, cancel := context.WithTimeout(context.Background(), *shutdownGrace)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			logger.Warn("drain incomplete", "err", err)
		}
		if err := srv.Close(); err != nil {
			logger.Warn("closing journal", "err", err)
		}
		logger.Info("shutdown complete")
	}
}

func fatal(err error) {
	if err == nil || errors.Is(err, http.ErrServerClosed) {
		return
	}
	fmt.Fprintf(os.Stderr, "qlaserve: %v\n", err)
	os.Exit(1)
}
