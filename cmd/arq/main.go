// Command arq is the ARQ simulator front end: it reads a circuit in the
// .qc text format, maps it onto a QLA machine, and either estimates its
// architecture-level execution, runs it exactly on the stabilizer backend,
// runs a noisy Monte Carlo, or emits the lowered pulse schedule. Each
// mode is an experiment-registry entry ("arq-<mode>") driven through the
// engine front door.
//
// Usage:
//
//	arq -mode estimate circuit.qc
//	arq -mode run -seed 7 circuit.qc
//	arq -mode noisy -trials 2000 -params current circuit.qc
//	arq -mode pulses circuit.qc
//	arq -mode control circuit.qc
//	arq -spec run.json
//
// With no file argument the circuit is read from standard input.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"qla"
)

func main() {
	mode := flag.String("mode", "estimate", "estimate|run|noisy|pulses|control")
	params := flag.String("params", "expected", "technology parameters: expected|current")
	trials := flag.Int("trials", 1000, "Monte Carlo trials for -mode noisy")
	seed := flag.Uint64("seed", 1, "random seed")
	level := flag.Int("level", 2, "recursion level of the logical qubits")
	specFile := flag.String("spec", "", "run one JSON Spec file instead of the mode flags")
	flag.Parse()

	if err := run(*mode, *params, *trials, *seed, *level, *specFile, flag.Args()); err != nil {
		fmt.Fprintf(os.Stderr, "arq: %v\n", err)
		os.Exit(1)
	}
}

func run(mode, params string, trials int, seed uint64, level int, specFile string, args []string) error {
	eng := qla.NewEngine()
	ctx := context.Background()

	if specFile != "" {
		if len(args) > 0 {
			return fmt.Errorf("cannot combine -spec with a circuit file argument (put the circuit in the spec's %q parameter)", "circuit")
		}
		spec, err := qla.ReadSpecFile(specFile)
		if err != nil {
			return err
		}
		res, err := eng.Run(ctx, spec)
		if err != nil {
			return err
		}
		return qla.ReportResult(os.Stdout, res)
	}

	// Validate the flags before touching input: reading the circuit may
	// block on standard input, and a flag typo should fail immediately.
	exp, ok := qla.Lookup("arq-" + mode)
	if !ok {
		return fmt.Errorf("unknown mode %q", mode)
	}
	if level < 1 {
		// The -level flag names a concrete level; only a JSON spec may
		// omit it to get the default.
		return fmt.Errorf("recursion level %d out of range (want >= 1)", level)
	}
	machine := qla.MachineSpec{ParamSet: params, Level: level}
	if _, err := machine.TechParams(); err != nil {
		return err
	}

	var in io.Reader = os.Stdin
	if len(args) > 0 {
		f, err := os.Open(args[0])
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	src, err := io.ReadAll(in)
	if err != nil {
		return err
	}
	p := qla.ExperimentParams{"circuit": string(src)}
	if exp.HasParam("trials") {
		p["trials"] = trials
	}
	if exp.HasParam("seed") {
		p["seed"] = seed
	}
	res, err := eng.Run(ctx, qla.Spec{
		Experiment: exp.Name,
		Machine:    machine,
		Params:     p,
	})
	if err != nil {
		return err
	}
	return qla.ReportResult(os.Stdout, res)
}
