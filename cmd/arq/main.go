// Command arq is the ARQ simulator front end: it reads a circuit in the
// .qc text format, maps it onto a QLA machine, and either estimates its
// architecture-level execution, runs it exactly on the stabilizer backend,
// runs a noisy Monte Carlo, or emits the lowered pulse schedule.
//
// Usage:
//
//	arq -mode estimate circuit.qc
//	arq -mode run -seed 7 circuit.qc
//	arq -mode noisy -trials 2000 -params current circuit.qc
//	arq -mode pulses circuit.qc
//	arq -mode control circuit.qc
//
// With no file argument the circuit is read from standard input.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"qla"
)

func main() {
	mode := flag.String("mode", "estimate", "estimate|run|noisy|pulses|control")
	params := flag.String("params", "expected", "technology parameters: expected|current")
	trials := flag.Int("trials", 1000, "Monte Carlo trials for -mode noisy")
	seed := flag.Uint64("seed", 1, "random seed")
	level := flag.Int("level", 2, "recursion level of the logical qubits")
	flag.Parse()

	if err := run(*mode, *params, *trials, *seed, *level, flag.Args()); err != nil {
		fmt.Fprintf(os.Stderr, "arq: %v\n", err)
		os.Exit(1)
	}
}

func run(mode, params string, trials int, seed uint64, level int, args []string) error {
	var in io.Reader = os.Stdin
	if len(args) > 0 {
		f, err := os.Open(args[0])
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}

	var tech qla.TechParams
	switch params {
	case "expected":
		tech = qla.ExpectedParams()
	case "current":
		tech = qla.CurrentParams()
	default:
		return fmt.Errorf("unknown parameter set %q", params)
	}

	job, err := qla.ParseJob(in, qla.WithParams(tech), qla.WithLevel(level))
	if err != nil {
		return err
	}

	switch mode {
	case "estimate":
		rep, err := job.Estimate()
		if err != nil {
			return err
		}
		fmt.Printf("logical qubits:        %d\n", rep.LogicalQubits)
		fmt.Printf("EC steps (depth):      %d\n", rep.ECSteps)
		fmt.Printf("EC step time:          %.4f s\n", job.Machine.ECStepTime())
		fmt.Printf("estimated wall clock:  %.3f s\n", rep.Seconds)
		fmt.Printf("2q comm overlapped:    %d\n", rep.CommOverlapped)
		fmt.Printf("2q comm exposed:       %d (extra %.3f s)\n", rep.CommExposed, rep.ExtraCommTime)
		fmt.Printf("failure budget used:   %.3g\n", rep.FailureBudget)
		fmt.Printf("chip area:             %.4f m²\n", job.Machine.AreaM2())
	case "run":
		out := job.RunExact(seed)
		fmt.Printf("measurements: %v\n", out)
	case "noisy":
		res, err := job.RunNoisy(tech, trials, seed)
		if err != nil {
			return err
		}
		fmt.Printf("trials:          %d\n", res.Trials)
		fmt.Printf("errors injected: %d\n", res.ErrorsInjected)
		fmt.Printf("trials w/ flips: %d (%.3f%%)\n", res.AnyFlipTrials,
			100*float64(res.AnyFlipTrials)/float64(res.Trials))
		for i, f := range res.FlipHistogram {
			fmt.Printf("  measurement %d flipped in %d trials\n", i, f)
		}
	case "pulses":
		return job.WritePulses(os.Stdout)
	case "control":
		b := qla.AnalyzeControl(job)
		fmt.Printf("pulses:                %d\n", b.Ops)
		fmt.Printf("makespan:              %.6f s\n", b.Makespan)
		fmt.Printf("peak lasers:           %d dedicated, %d SIMD groups (MEMS fanout)\n",
			b.PeakLasers, b.PeakLasersSIMD)
		fmt.Printf("peak photodetectors:   %d\n", b.PeakDetectors)
		fmt.Printf("control event rate:    %.3g/s mean, %.3g/s peak (%.0f µs window)\n",
			b.MeanEventRate, b.PeakEventRate, b.EventWindow*1e6)
	default:
		return fmt.Errorf("unknown mode %q", mode)
	}
	return nil
}
