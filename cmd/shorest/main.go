// Command shorest sizes Shor's factoring algorithm on the QLA for an
// arbitrary modulus width, reporting the Table-2 style resource row and
// the classical number-field-sieve comparison.
//
// Usage:
//
//	shorest -bits 128
//	shorest -bits 1024 -params current
package main

import (
	"flag"
	"fmt"
	"os"

	"qla"
	"qla/internal/shor"
)

func main() {
	bits := flag.Int("bits", 128, "modulus width in bits")
	params := flag.String("params", "expected", "technology parameters: expected|current")
	flag.Parse()

	tech := qla.ExpectedParams()
	if *params == "current" {
		tech = qla.CurrentParams()
	} else if *params != "expected" {
		fmt.Fprintf(os.Stderr, "shorest: unknown parameter set %q\n", *params)
		os.Exit(2)
	}

	r, err := qla.EstimateShor(*bits, tech)
	if err != nil {
		fmt.Fprintf(os.Stderr, "shorest: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("Shor's algorithm for a %d-bit modulus on the QLA (%s parameters)\n\n", *bits, tech.Name)
	fmt.Printf("logical qubits:      %d\n", r.LogicalQubits)
	fmt.Printf("Toffoli depth:       %d\n", r.ToffoliDepth)
	fmt.Printf("total gates:         %d\n", r.TotalGates)
	fmt.Printf("EC steps:            %d (QFT share %d)\n", r.ECSteps, r.QFTSteps)
	fmt.Printf("EC step time:        %.4f s\n", r.ECStepSeconds)
	fmt.Printf("single run:          %.2f h\n", r.TimeSeconds/3600)
	fmt.Printf("with 1.3 retries:    %.2f days\n", r.TimeDays)
	fmt.Printf("chip area:           %.3f m²\n", r.AreaM2)
	fmt.Printf("system size S = K·Q: %.3g\n", r.SystemSize)
	fmt.Printf("\nclassical NFS estimate: %.3g MIPS-years (512-bit anchor: 8400)\n",
		shor.ClassicalNFSMIPSYears(*bits))
}
