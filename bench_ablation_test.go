package qla

// Ablation benchmarks: one per extension-system design study, matching
// the per-experiment index in DESIGN.md. These complement the
// table/figure benches in bench_test.go.

import (
	"testing"

	"qla/internal/codes"
	"qla/internal/qccd"
	"qla/internal/qft"
)

// BenchmarkAblationAdders regenerates the ripple-vs-QCLA depth table
// (qlabench -exp adders).
func BenchmarkAblationAdders(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, n := range []int{8, 16, 32, 64} {
			cmp := CompareAdders(n)
			if cmp.CLA.ToffoliDepth >= cmp.Ripple.ToffoliDepth && n >= 8 {
				b.Fatalf("n=%d: lookahead lost", n)
			}
		}
	}
}

// BenchmarkAblationCodes regenerates the code-choice comparison
// (qlabench -exp codes).
func BenchmarkAblationCodes(b *testing.B) {
	p := ExpectedParams()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		costs := CodeAblation(p)
		if len(costs) != 5 {
			b.Fatal("catalog changed size")
		}
	}
}

// BenchmarkAblationCodeDistance certifies the catalog distances by
// brute force — the expensive validation step of the code framework.
func BenchmarkAblationCodeDistance(b *testing.B) {
	cat := codes.All()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, c := range cat {
			if d, ok := c.Distance(c.D); !ok || d != c.D {
				b.Fatalf("%s: distance drifted", c.Name)
			}
		}
	}
}

// BenchmarkAblationChainMC regenerates one row of the gate-level
// interconnect validation (qlabench -exp chainmc).
func BenchmarkAblationChainMC(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := ChainConfig{Links: 4, LinkEps: 0.06, PurifyRounds: 1, Trials: 60, Seed: uint64(i)}
		if _, err := RunChain(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationShuttle regenerates one row of the QCCD substrate
// experiment (qlabench -exp shuttle).
func BenchmarkAblationShuttle(b *testing.B) {
	p := ExpectedParams()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := RunTransversalGate(7, 100, p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationShuttleRoute isolates the substrate router on the
// two-block geometry.
func BenchmarkAblationShuttleRoute(b *testing.B) {
	g := qccd.TwoBlockGrid(7, 350)
	s := qccd.NewSim(g, ExpectedParams())
	traps := g.TrapPositions()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.Route(traps[0], traps[13], -1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationMultichip regenerates the Section-6 partitioning
// table (qlabench -exp multichip).
func BenchmarkAblationMultichip(b *testing.B) {
	p := ExpectedParams()
	link := DefaultPhotonicLink()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, n := range []int{128, 512, 1024, 2048} {
			if _, err := PlanMultichip(n, 33, 0, link, p); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkAblationQFT regenerates the QFT-charge validation
// (qlabench -exp qft): banded construction at Table-2 widths plus the
// dense verification at small width.
func BenchmarkAblationQFT(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, n := range []int{128, 512, 1024} {
			c := qft.Banded(2*n, qft.PaperBand(n))
			if c.Counts().Total() == 0 {
				b.Fatal("empty circuit")
			}
		}
		if err := qft.Exact(5).MaxBasisError(); err > 1e-12 {
			b.Fatalf("exact QFT drifted: %g", err)
		}
	}
}

// BenchmarkAblationModAdd regenerates the modular-adder rows of the
// adders experiment.
func BenchmarkAblationModAdd(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rip := MeasureModAdd(12, 3677, false)
		cla := MeasureModAdd(12, 3677, true)
		if cla.ToffoliDepth >= rip.ToffoliDepth {
			b.Fatal("lookahead lost at n=12")
		}
	}
}

// BenchmarkAblationControl measures the classical-control analyzer on
// a dense schedule.
func BenchmarkAblationControl(b *testing.B) {
	c := NewCircuit(128)
	for rep := 0; rep < 10; rep++ {
		for q := 0; q < 128; q++ {
			c.H(q)
		}
		for q := 0; q+1 < 128; q += 2 {
			c.CNOT(q, q+1)
		}
		for q := 0; q < 128; q += 4 {
			c.MeasureZ(q)
		}
	}
	j, err := NewJob(c)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bud := AnalyzeControl(j)
		if bud.PeakLasers == 0 {
			b.Fatal("empty budget")
		}
	}
}
