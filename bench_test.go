// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (see DESIGN.md §3 for the experiment index), plus
// micro-benchmarks of the simulation substrates. Each experiment benchmark
// reports its headline quantities through b.ReportMetric so the regenerated
// numbers appear directly in the `go test -bench` output; cmd/qlabench
// prints the full tables.
package qla_test

import (
	"testing"

	"qla"
	"qla/internal/codes"
	"qla/internal/commsim"
	"qla/internal/ft"
	"qla/internal/iontrap"
	"qla/internal/netsim"
	"qla/internal/noise"
	"qla/internal/pauliframe"
	"qla/internal/shor"
	"qla/internal/stabilizer"
	"qla/internal/steane"
	"qla/internal/teleport"
	"qla/internal/threshold"
)

// --- Table 1: technology parameters ---

func BenchmarkTable1Params(b *testing.B) {
	var bw float64
	for i := 0; i < b.N; i++ {
		p := iontrap.Expected()
		bw = p.ChannelBandwidthQBPS()
	}
	b.ReportMetric(bw/1e6, "Mqbps")
}

// --- Table 2: Shor's algorithm sizing ---

func BenchmarkTable2Shor(b *testing.B) {
	var rows []shor.Resources
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = shor.Table2()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].TimeDays, "days@128")
	b.ReportMetric(rows[3].TimeDays, "days@2048")
	b.ReportMetric(float64(rows[0].LogicalQubits), "qubits@128")
}

// --- Figure 7: threshold Monte Carlo ---

// benchFig7Trial runs one threshold level under both Monte Carlo
// backends so `go test -bench Fig7` prints the scalar-vs-batch ns/trial
// side by side (the bit-sliced backend packs 64 trials per word and
// must come out >10× faster at level 2).
func benchFig7Trial(b *testing.B, level int, seed uint64) {
	for _, backend := range []string{threshold.BackendScalar, threshold.BackendBatch} {
		b.Run(backend, func(b *testing.B) {
			cfg := threshold.Config{
				Level: level, PhysError: 2e-3,
				MovePerCell: threshold.DefaultMovePerCell,
				Trials:      b.N, Seed: seed, Backend: backend,
			}
			pt, err := threshold.Run(cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(pt.FailRate, "failrate")
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N), "ns/trial")
		})
	}
}

func BenchmarkFig7Level1Trial(b *testing.B) { benchFig7Trial(b, 1, 1) }

func BenchmarkFig7Level2Trial(b *testing.B) { benchFig7Trial(b, 2, 2) }

func BenchmarkFig7Crossing(b *testing.B) {
	// The full two-curve sweep with the interpolated pseudo-threshold.
	var crossing float64
	for i := 0; i < b.N; i++ {
		ps := []float64{5e-4, 1.5e-3, 3e-3}
		l1, err := threshold.Sweep(1, ps, 20000, 11)
		if err != nil {
			b.Fatal(err)
		}
		l2, err := threshold.Sweep(2, ps, 10000, 12)
		if err != nil {
			b.Fatal(err)
		}
		crossing = threshold.Crossing(l1, l2)
	}
	b.ReportMetric(crossing*1e3, "pth_x1e3")
}

// --- Repeater-chain Monte Carlo (Section 4.2 validation) ---

// BenchmarkChainTrial runs the repeater-chain Monte Carlo under both
// backends so `go test -bench ChainTrial` prints the scalar-vs-batch
// ns/trial side by side (the bit-sliced backend packs 64 trials per
// word; both backends are bit-identical at the same seed). The scalar
// sub-benchmark additionally asserts its per-trial allocation budget:
// each worker reuses one tableau + RNG scratch across all its trials.
func BenchmarkChainTrial(b *testing.B) {
	base := commsim.ChainConfig{
		Links: 2, LinkEps: 0.06, PurifyRounds: 1, SwapEps: 0.01, Seed: 5,
	}
	for _, backend := range []string{commsim.BackendScalar, commsim.BackendBatch} {
		b.Run(backend, func(b *testing.B) {
			cfg := base
			cfg.Trials = b.N
			cfg.Backend = backend
			res, err := commsim.RunChain(cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(res.ErrorRate, "errrate")
			b.ReportMetric(res.RawPairsMean, "rawpairs")
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N), "ns/trial")
			if backend == commsim.BackendScalar {
				// Allocation budget: the per-worker chainRun scratch is
				// reset, not reallocated, per trial; only the fixed
				// worker-pool setup may allocate. Amortized over 64
				// trials on one worker that must stay under 2 allocs
				// per trial (it was >15 before scratch reuse). Off the
				// clock: the ns/trial metric above is already final and
				// the probe must not pollute ns/op.
				b.StopTimer()
				const probeTrials = 64
				probe := base
				probe.Trials = probeTrials
				probe.Backend = backend
				probe.Parallelism = 1
				allocs := testing.AllocsPerRun(5, func() {
					if _, err := commsim.RunChain(probe); err != nil {
						b.Fatal(err)
					}
				})
				if perTrial := allocs / probeTrials; perTrial > 2 {
					b.Fatalf("scalar backend allocates %.2f/trial (budget 2)", perTrial)
				}
			}
		})
	}
}

// --- Code-catalog decoder Monte Carlo ---

// BenchmarkCodesMC runs the Steane-code decoder Monte Carlo under both
// backends, reporting ns/trial side by side.
func BenchmarkCodesMC(b *testing.B) {
	c := codes.Steane7()
	for _, backend := range []string{codes.BackendScalar, codes.BackendBatch} {
		b.Run(backend, func(b *testing.B) {
			res, err := codes.MonteCarloLogicalErrorBackend(c, 0.01, b.N, 17, backend)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(res.LogicalRate, "lograte")
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N), "ns/trial")
		})
	}
}

// --- Section 4.1.1: EC latency (Equation 1) ---

func BenchmarkECCLatency(b *testing.B) {
	var sum ft.Summary
	for i := 0; i < b.N; i++ {
		sum = ft.NewLatencyModel(iontrap.Expected()).Summarize()
	}
	b.ReportMetric(sum.ECLevel1*1e3, "T1ecc_ms")
	b.ReportMetric(sum.ECLevel2*1e3, "T2ecc_ms")
}

// --- Section 4.1.2: Equation 2 ---

func BenchmarkEquation2(b *testing.B) {
	p0 := iontrap.Expected().AverageComponentFailure()
	var pf float64
	for i := 0; i < b.N; i++ {
		pf = ft.GottesmanFailure(p0, ft.PthLocal, 12, 2)
	}
	b.ReportMetric(pf*1e16, "Pf_x1e16")
}

// --- Figure 9: interconnect connection time ---

func BenchmarkFig9Connection(b *testing.B) {
	lp := teleport.DefaultLinkParams()
	var t6000 float64
	for i := 0; i < b.N; i++ {
		var err error
		t6000, err = lp.ConnectionTime(6000, 100)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(t6000*1e3, "ms@6000/100")
}

func BenchmarkFig9FullSeries(b *testing.B) {
	lp := teleport.DefaultLinkParams()
	dists := []int{2000, 6000, 12000, 24000, 30000}
	var cross int
	for i := 0; i < b.N; i++ {
		_ = lp.Figure9Series(dists)
		cross = lp.CrossoverDistance(100, 350, dists)
	}
	b.ReportMetric(float64(cross), "crossover_cells")
}

// --- Section 5: EPR scheduler ---

func BenchmarkScheduler(b *testing.B) {
	var util float64
	for i := 0; i < b.N; i++ {
		rows, err := netsim.DefaultExperiment([]int{2})
		if err != nil {
			b.Fatal(err)
		}
		util = rows[0].Utilization
	}
	b.ReportMetric(util*100, "util%@B2")
}

// --- Section 5: the 128-bit headline ---

func BenchmarkShor128(b *testing.B) {
	var r shor.Resources
	for i := 0; i < b.N; i++ {
		var err error
		r, err = shor.Estimate(128, iontrap.Expected())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.TimeHours, "hours")
}

// --- substrate micro-benchmarks ---

func BenchmarkStabilizerCNOT1024(b *testing.B) {
	s := stabilizer.New(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.CNOT(i%1023, (i%1023)+1)
	}
}

func BenchmarkStabilizerMeasure1024(b *testing.B) {
	s := stabilizer.New(1024)
	for q := 0; q < 1024; q++ {
		s.H(q)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := i % 1024
		s.H(q)
		s.Measure(q)
	}
}

func BenchmarkPauliFrameCNOT(b *testing.B) {
	f := pauliframe.New(1024)
	f.InjectX(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.CNOT(i%1023, (i%1023)+1)
	}
}

// BenchmarkBatchFrame measures the bit-sliced frame's gate throughput:
// every op advances 64 lanes at once, reported as lane-ops/sec.
func BenchmarkBatchFrame(b *testing.B) {
	full := ^uint64(0)
	for _, bench := range []struct {
		name string
		run  func(f *pauliframe.Batch, i int)
	}{
		{"CNOT", func(f *pauliframe.Batch, i int) { f.CNOT(i%1023, (i%1023)+1, full) }},
		{"H", func(f *pauliframe.Batch, i int) { f.H(i%1024, full) }},
		{"MeasureZ", func(f *pauliframe.Batch, i int) { f.MeasureZ(i%1024, full) }},
		{"CNOTMasked", func(f *pauliframe.Batch, i int) { f.CNOT(i%1023, (i%1023)+1, 0xAAAA5555AAAA5555) }},
	} {
		b.Run(bench.name, func(b *testing.B) {
			f := pauliframe.NewBatch(1024)
			f.InjectX(0, full)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				bench.run(f, i)
			}
			b.ReportMetric(float64(b.N)*pauliframe.Lanes/b.Elapsed().Seconds(), "laneops/s")
		})
	}
}

func BenchmarkNoisyCircuitRun(b *testing.B) {
	c := qla.NewCircuit(8)
	for q := 0; q < 7; q++ {
		c.H(q)
		c.CNOT(q, q+1)
	}
	for q := 0; q < 8; q++ {
		c.MeasureZ(q)
	}
	m := noise.NewModel(iontrap.Current(), 3)
	f := pauliframe.New(8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Clear()
		m.RunNoisy(c, f)
	}
}

func BenchmarkSteaneEncodeDecode(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var w [7]int
		w[i%7] = 1
		if steane.DecodeBlock(w) != 0 {
			b.Fatal("single error misdecoded")
		}
	}
}

func BenchmarkMachineEstimate(b *testing.B) {
	m, err := qla.NewMachine(256)
	if err != nil {
		b.Fatal(err)
	}
	c := qla.NewCircuit(16)
	for q := 0; q < 15; q++ {
		c.CNOT(q, q+1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.EstimateCircuit(c, nil); err != nil {
			b.Fatal(err)
		}
	}
}
