package qla

import (
	"strings"
	"testing"
)

// Facade coverage for the extension systems: adder circuits, the code
// catalog, the QCCD shuttle simulator, the gate-level interconnect
// Monte Carlo, classical control and multi-chip planning.

func TestFacadeCompareAdders(t *testing.T) {
	cmp := CompareAdders(16)
	if cmp.Ripple.ToffoliDepth != 32 {
		t.Fatalf("ripple depth %d, want 32", cmp.Ripple.ToffoliDepth)
	}
	if cmp.CLA.ToffoliDepth >= cmp.Ripple.ToffoliDepth {
		t.Fatal("lookahead should win at n=16")
	}
	if cmp.DepthRatio <= 1 || cmp.WidthRatio <= 1 {
		t.Fatalf("ratios %+v", cmp)
	}
}

func TestFacadeMeasureModAdd(t *testing.T) {
	rip := MeasureModAdd(12, 3677, false)
	cla := MeasureModAdd(12, 3677, true)
	if cla.ToffoliDepth >= rip.ToffoliDepth {
		t.Fatalf("CLA modular adder depth %d not below ripple %d",
			cla.ToffoliDepth, rip.ToffoliDepth)
	}
	ratio := float64(cla.ToffoliDepth) / float64(cla.AdderDepth)
	if ratio < 2.5 || ratio > 5.5 {
		t.Fatalf("modular adder pass ratio %.2f outside [2.5, 5.5]", ratio)
	}
}

func TestFacadeCodeCatalog(t *testing.T) {
	cat := CodeCatalog()
	if len(cat) != 5 {
		t.Fatalf("catalog size %d", len(cat))
	}
	for _, c := range cat {
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", c.Name, err)
		}
	}
	costs := CodeAblation(ExpectedParams())
	if len(costs) != len(cat) {
		t.Fatalf("ablation rows %d", len(costs))
	}
	found := false
	for _, c := range costs {
		if strings.Contains(c.Code, "Steane") {
			found = true
			if c.DataQubits != 7 {
				t.Fatalf("Steane block %d", c.DataQubits)
			}
		}
	}
	if !found {
		t.Fatal("no Steane row")
	}
}

func TestFacadeShuttleSim(t *testing.T) {
	g := TwoBlockGrid(3, 20)
	s := NewShuttleSim(g, ExpectedParams())
	if s.Makespan() != 0 {
		t.Fatal("fresh sim has nonzero makespan")
	}
	rep, err := RunTransversalGate(7, 12, ExpectedParams())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ions != 7 || rep.Makespan <= 0 {
		t.Fatalf("report %+v", rep)
	}
	if rep.MaxCorners > 4 {
		t.Fatalf("max corners %d; executed routes should stay near the 2-turn rule", rep.MaxCorners)
	}
}

func TestFacadeRunChain(t *testing.T) {
	res, err := RunChain(ChainConfig{Links: 2, LinkEps: 0.05, Trials: 400, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.ErrorRate < 0 || res.ErrorRate > res.PredictedError*1.5+0.05 {
		t.Fatalf("error rate %g vs prediction %g", res.ErrorRate, res.PredictedError)
	}
	cmp, err := CompareCommStrategies(0.04, 6, 1, 600, 9)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Repeater.ErrorRate > cmp.Naive.ErrorRate {
		t.Fatal("repeater should not lose to naive teleportation")
	}
}

func TestFacadeAnalyzeControl(t *testing.T) {
	c := NewCircuit(10)
	for q := 0; q < 10; q++ {
		c.H(q)
	}
	for q := 0; q < 10; q++ {
		c.MeasureZ(q)
	}
	j, err := NewJob(c)
	if err != nil {
		t.Fatal(err)
	}
	b := AnalyzeControl(j)
	if b.PeakLasers != 10 {
		t.Fatalf("peak lasers %d", b.PeakLasers)
	}
	if b.PeakLasersSIMD < 1 || b.PeakLasersSIMD > 2 {
		t.Fatalf("SIMD groups %d", b.PeakLasersSIMD)
	}
	if b.PeakDetectors != 10 {
		t.Fatalf("detectors %d", b.PeakDetectors)
	}
}

func TestFacadePlanMultichip(t *testing.T) {
	pt, err := PlanMultichip(128, 10, 0, DefaultPhotonicLink(), ExpectedParams())
	if err != nil {
		t.Fatal(err)
	}
	if pt.Chips < 2 {
		t.Fatalf("10 cm limit should force multiple chips, got %d", pt.Chips)
	}
	if !pt.Overlapped || pt.Slowdown != 1 {
		t.Fatalf("unlimited links should overlap: %+v", pt)
	}
}
