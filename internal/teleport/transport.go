package teleport

import (
	"fmt"
	"math"

	"qla/internal/iontrap"
)

// This file implements the paper's second contribution: "While
// teleportation has been proposed as a means of communication, we show the
// limitations of a simplistic approach using teleportation. We then show
// how the QLA micro-architecture can be effectively used to overcome these
// limitations." Three transport strategies are compared over distance:
//
//  1. direct ballistic shuttling — latency grows linearly and, more
//     importantly, failure probability grows exponentially toward 1;
//  2. simplistic teleportation — one EPR pair stretched over the full
//     distance without repeaters: the halves still shuttle the whole
//     distance, so the pair fidelity collapses the same way (and
//     purification stops converging below F = 1/2);
//  3. the QLA repeater interconnect — islands + nested purification keep
//     the delivered fidelity pinned at FTarget for any distance, at the
//     Figure-9 time cost.

// TransportComparison is one row of the strategy comparison.
type TransportComparison struct {
	Cells int

	BallisticTime    float64
	BallisticFailure float64

	// Simplistic teleportation: a single un-repeated EPR pair.
	SimplisticFidelity float64
	SimplisticFeasible bool // above the purification boundary

	// QLA repeater interconnect (best island separation).
	RepeaterTime     float64
	RepeaterFidelity float64
	RepeaterFeasible bool
	RepeaterSep      int
}

// CompareTransport evaluates the three strategies over the given distance.
func (lp LinkParams) CompareTransport(cells int) (TransportComparison, error) {
	if cells <= 0 {
		return TransportComparison{}, fmt.Errorf("teleport: distance must be positive")
	}
	c := TransportComparison{Cells: cells}

	// Direct ballistic shuttling: tau + T·D and per-cell failure.
	c.BallisticTime = lp.P.MoveTime(cells, 0)
	c.BallisticFailure = lp.P.MoveFailure(cells, 0)

	// Simplistic teleportation: EPR halves created mid-channel and moved
	// cells/2 each, so the pair decoheres over the full distance with the
	// link model's per-cell rate — identical to RawFidelity at separation
	// = cells, with no repeaters to rescue it.
	c.SimplisticFidelity = lp.RawFidelity(cells)
	c.SimplisticFeasible = c.SimplisticFidelity > MinPurifiableFidelity

	// The QLA interconnect.
	sep, t, err := lp.BestSeparation(cells)
	if err == nil {
		plan, perr := lp.Plan(cells, sep)
		if perr == nil {
			c.RepeaterTime = t
			c.RepeaterFidelity = plan.EndFid
			c.RepeaterFeasible = true
			c.RepeaterSep = sep
		}
	}
	return c, nil
}

// BallisticBreakevenCells returns the distance at which direct ballistic
// transport's failure probability exceeds the given budget — the point
// past which the paper's design switches to teleportation ("ballistic
// transport must be used for moving ions within a logical qubit, and
// teleportation will be preferred when moving across larger distances in
// order to keep the failure rate due to movement below the threshold").
func BallisticBreakevenCells(p iontrap.Params, budget float64) int {
	if budget <= 0 || budget >= 1 {
		panic("teleport: budget must be in (0,1)")
	}
	perCell := p.Fail[iontrap.OpMoveCell]
	if perCell <= 0 {
		return math.MaxInt32
	}
	// 1-(1-p)^d > budget  =>  d > ln(1-budget)/ln(1-p)
	d := math.Log(1-budget) / math.Log(1-perCell)
	return int(math.Ceil(d))
}

// SimplisticCollapseCells returns the distance at which the un-repeated
// EPR pair falls below the purification boundary and simplistic
// teleportation stops working entirely.
func (lp LinkParams) SimplisticCollapseCells() int {
	lo, hi := 1, 1<<22
	if lp.RawFidelity(lo) <= MinPurifiableFidelity {
		return lo
	}
	if lp.RawFidelity(hi) > MinPurifiableFidelity {
		return hi
	}
	for lo+1 < hi {
		mid := (lo + hi) / 2
		if lp.RawFidelity(mid) > MinPurifiableFidelity {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi
}
