package teleport

import "testing"

var fig9Grid = []int{1000, 2000, 3000, 4000, 5000, 6000, 8000, 10000, 12000, 16000, 20000, 24000, 30000}

func TestRawFidelityDecreasesWithSeparation(t *testing.T) {
	lp := DefaultLinkParams()
	prev := 1.0
	for _, d := range Figure9Separations {
		f := lp.RawFidelity(d)
		if f >= prev {
			t.Errorf("raw fidelity at d=%d is %g, not below %g", d, f, prev)
		}
		prev = f
	}
	// All separations in the Figure-9 sweep must stay purifiable.
	if f := lp.RawFidelity(1000); f <= MinPurifiableFidelity {
		t.Errorf("d=1000 raw fidelity %g below purification boundary; Figure 9 needs it feasible", f)
	}
}

func TestPlanFeasibleAcrossFigure9Range(t *testing.T) {
	lp := DefaultLinkParams()
	for _, sep := range []int{70, 100, 350, 500} {
		for _, d := range fig9Grid {
			plan, err := lp.Plan(d, sep)
			if err != nil {
				t.Errorf("Plan(%d, %d): %v", d, sep, err)
				continue
			}
			if plan.EndFid < lp.FTarget {
				t.Errorf("Plan(%d, %d) delivers %g < target %g", d, sep, plan.EndFid, lp.FTarget)
			}
			if plan.Time <= 0 || plan.Time > 2 {
				t.Errorf("Plan(%d, %d) time %g s out of the plausible band", d, sep, plan.Time)
			}
		}
	}
}

func TestConnectionTimeMonotoneInDistance(t *testing.T) {
	lp := DefaultLinkParams()
	for _, sep := range []int{70, 100, 350, 500} {
		prev := 0.0
		for _, d := range fig9Grid {
			tm, err := lp.ConnectionTime(d, sep)
			if err != nil {
				t.Fatalf("ConnectionTime(%d,%d): %v", d, sep, err)
			}
			if tm < prev {
				t.Errorf("sep %d: time decreased from %g to %g at distance %d", sep, prev, tm, d)
			}
			prev = tm
		}
	}
}

func TestFigure9Crossover(t *testing.T) {
	// The paper: "island separation of 100 cells is more efficient at
	// distances smaller than 6000 cells ... at larger distances
	// separation of 350 cells is preferable." Comparisons use the
	// smoothed times (the raw curves are interleaved step functions).
	lp := DefaultLinkParams()
	t100, err := lp.SmoothedTime(2000, 100)
	if err != nil {
		t.Fatal(err)
	}
	t350, err := lp.SmoothedTime(2000, 350)
	if err != nil {
		t.Fatal(err)
	}
	if t100 > t350 {
		t.Errorf("at 2000 cells: d=100 (%.4f s) should beat d=350 (%.4f s)", t100, t350)
	}
	t100, _ = lp.SmoothedTime(24000, 100)
	t350, _ = lp.SmoothedTime(24000, 350)
	if t350 > t100 {
		t.Errorf("at 24000 cells: d=350 (%.4f s) should beat d=100 (%.4f s)", t350, t100)
	}
	cross := lp.CrossoverDistance(100, 350, fig9Grid)
	if cross < 2000 || cross > 12000 {
		t.Errorf("d=100/d=350 crossover at %d cells; paper says ≈6000", cross)
	}
}

func TestFigure9MagnitudeBand(t *testing.T) {
	// Figure 9 reports connection times of roughly 0.06-0.16 s over the
	// plotted range; our calibration should stay within an order of
	// magnitude: a few ms to a few hundred ms in the mid range.
	lp := DefaultLinkParams()
	for _, sep := range []int{100, 350} {
		for _, d := range []int{5000, 10000, 20000} {
			tm, err := lp.ConnectionTime(d, sep)
			if err != nil {
				t.Fatalf("ConnectionTime(%d,%d): %v", d, sep, err)
			}
			if tm < 0.002 || tm > 0.6 {
				t.Errorf("time(%d,%d) = %.4f s outside the Figure-9 magnitude band", d, sep, tm)
			}
		}
	}
}

func TestFigure9Series(t *testing.T) {
	lp := DefaultLinkParams()
	pts := lp.Figure9Series([]int{4000, 8000})
	if len(pts) != 2*len(Figure9Separations) {
		t.Fatalf("series has %d points", len(pts))
	}
	feasible := 0
	for _, p := range pts {
		if p.Feasible {
			feasible++
			if p.Time <= 0 {
				t.Errorf("feasible point with non-positive time: %+v", p)
			}
		}
	}
	if feasible < len(pts)-2 {
		t.Errorf("only %d/%d points feasible", feasible, len(pts))
	}
}

func TestBestSeparation(t *testing.T) {
	lp := DefaultLinkParams()
	sepShort, tShort, err := lp.BestSeparation(2000)
	if err != nil {
		t.Fatal(err)
	}
	sepLong, tLong, err := lp.BestSeparation(24000)
	if err != nil {
		t.Fatal(err)
	}
	if sepShort >= sepLong {
		t.Errorf("best separation should grow with distance: %d then %d", sepShort, sepLong)
	}
	if sepShort < 35 || sepShort > 100 {
		t.Errorf("short-range best separation = %d, expected a small one (paper: 100)", sepShort)
	}
	if sepLong != 350 {
		t.Errorf("long-range best separation = %d, paper says 350", sepLong)
	}
	if tLong <= tShort {
		t.Error("longer connections should take longer even at the best separation")
	}
}

func TestPlanStructure(t *testing.T) {
	lp := DefaultLinkParams()
	plan, err := lp.Plan(6000, 100)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Links != 60 {
		t.Errorf("links = %d, want 60", plan.Links)
	}
	if plan.SwapStages != 6 {
		t.Errorf("stages = %d, want ceil(log2(60)) = 6", plan.SwapStages)
	}
	if plan.LinkFid <= lp.RawFidelity(100) && plan.InitialRounds > 0 {
		t.Error("purification should raise link fidelity above raw")
	}
	if plan.TimeLink > plan.Time {
		t.Error("link time exceeds total time")
	}
}

func TestPlanErrors(t *testing.T) {
	lp := DefaultLinkParams()
	if _, err := lp.Plan(0, 100); err == nil {
		t.Error("zero distance should fail")
	}
	if _, err := lp.Plan(1000, 0); err == nil {
		t.Error("zero separation should fail")
	}
	// Absurd target: infeasible.
	lp.FTarget = 0.999999999
	if _, err := lp.Plan(30000, 35); err == nil {
		t.Error("unreachable fidelity target should fail")
	}
}

func TestConnectionBeatsEmbeddedECWindow(t *testing.T) {
	// Section 5's overlap argument needs typical connections to complete
	// within the 0.043 s level-2 EC step for on-chip distances of a few
	// thousand cells at the best separation.
	lp := DefaultLinkParams()
	_, tm, err := lp.BestSeparation(4000)
	if err != nil {
		t.Fatal(err)
	}
	if tm > 0.043 {
		t.Errorf("best 4000-cell connection takes %.4f s, exceeding the 0.043 s EC window", tm)
	}
}
