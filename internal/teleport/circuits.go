package teleport

import (
	"math/rand/v2"

	"qla/internal/circuit"
	"qla/internal/stabilizer"
)

// BellPrep appends a Bell-pair preparation |Φ+⟩ on qubits (a, b) to c.
func BellPrep(c *circuit.Circuit, a, b int) {
	c.Prep0(a).Prep0(b).H(a).CNOT(a, b)
}

// TeleportCircuit returns the canonical 3-qubit teleportation circuit:
// qubit 0 is the source, (1,2) become the EPR pair, qubit 2 receives the
// state. Classical corrections are deferred to the caller (the two
// measurement outcomes are, in order, the Z- and X-correction selectors
// for qubit 2: m0 -> Z, m1 -> X).
func TeleportCircuit() *circuit.Circuit {
	c := circuit.New(3)
	BellPrep(c, 1, 2)
	c.CNOT(0, 1)
	c.H(0)
	c.MeasureZ(0)
	c.MeasureZ(1)
	return c
}

// Teleport runs the teleportation protocol on the supplied state: the
// state of qubit src is moved onto qubit dst using mid as the second half
// of a fresh EPR pair, applying the classical corrections. src and mid are
// left measured out.
func Teleport(s *stabilizer.State, src, mid, dst int) {
	s.Reset(mid)
	s.Reset(dst)
	s.H(mid)
	s.CNOT(mid, dst)
	s.CNOT(src, mid)
	s.H(src)
	m0 := s.Measure(src)
	m1 := s.Measure(mid)
	if m1 == 1 {
		s.X(dst)
	}
	if m0 == 1 {
		s.Z(dst)
	}
}

// PurifyResult reports one Monte Carlo BBPSSW experiment.
type PurifyResult struct {
	Trials        int
	RawGood       int // raw pairs passing the Bell test
	PurifiedGood  int // post-selected purified pairs passing
	Accepted      int // purification acceptances
	RawFidelity   float64
	PurifiedFid   float64
	AcceptanceFrc float64
}

// MonteCarloPurify estimates, by stabilizer-circuit sampling, the fidelity
// improvement of one BBPSSW round on pairs subjected to independent
// depolarization with probability eps per half. It demonstrates on the
// full quantum backend the same recurrence the Figure-9 link model applies
// analytically.
func MonteCarloPurify(eps float64, trials int, seed uint64) PurifyResult {
	rng := rand.New(rand.NewPCG(seed, seed^0xbeef))
	res := PurifyResult{Trials: trials}

	depolarize := func(s *stabilizer.State, q int) {
		if rng.Float64() < eps {
			switch rng.IntN(3) {
			case 0:
				s.X(q)
			case 1:
				s.Y(q)
			default:
				s.Z(q)
			}
		}
	}
	bellTest := func(s *stabilizer.State, a, b int) bool {
		// |Φ+⟩ is the unique +1 eigenstate of XX and ZZ: measure both
		// stabilizers destructively and accept only ++.
		s.CNOT(a, b)
		s.H(a)
		return s.Measure(a) == 0 && s.Measure(b) == 0
	}

	for i := 0; i < trials; i++ {
		// Raw-pair fidelity estimate.
		s := stabilizer.NewWithRand(2, rand.New(rand.NewPCG(uint64(i), seed)))
		s.H(0)
		s.CNOT(0, 1)
		depolarize(s, 0)
		depolarize(s, 1)
		if bellTest(s, 0, 1) {
			res.RawGood++
		}

		// Purified-pair estimate: two noisy pairs (0,1) and (2,3); BBPSSW
		// keeps (0,1) when the parity measurements agree.
		s = stabilizer.NewWithRand(4, rand.New(rand.NewPCG(uint64(i)^0xabcd, seed)))
		s.H(0)
		s.CNOT(0, 1)
		s.H(2)
		s.CNOT(2, 3)
		for q := 0; q < 4; q++ {
			depolarize(s, q)
		}
		// Bilateral CNOTs, measure the sacrificial pair in Z.
		s.CNOT(0, 2)
		s.CNOT(1, 3)
		if s.Measure(2) == s.Measure(3) {
			res.Accepted++
			if bellTest(s, 0, 1) {
				res.PurifiedGood++
			}
		}
	}
	res.RawFidelity = float64(res.RawGood) / float64(trials)
	if res.Accepted > 0 {
		res.PurifiedFid = float64(res.PurifiedGood) / float64(res.Accepted)
	}
	res.AcceptanceFrc = float64(res.Accepted) / float64(trials)
	return res
}

// EntanglementSwap performs one repeater hop on the state: pairs (a1,a2)
// and (b1,b2) sharing a station holding a2 and b1 become one pair (a1,b2)
// by teleporting a2's half through (b1,b2) with classical corrections.
func EntanglementSwap(s *stabilizer.State, a2, b1, b2 int) {
	s.CNOT(a2, b1)
	s.H(a2)
	m0 := s.Measure(a2)
	m1 := s.Measure(b1)
	if m1 == 1 {
		s.X(b2)
	}
	if m0 == 1 {
		s.Z(b2)
	}
}
