package teleport

import (
	"math"
	"testing"
)

func TestPurifyStepImproves(t *testing.T) {
	for _, f := range []float64{0.55, 0.7, 0.9, 0.99} {
		fNew, ps := PurifyStep(f)
		if fNew <= f {
			t.Errorf("PurifyStep(%g) = %g, should improve", f, fNew)
		}
		if ps <= 0 || ps > 1 {
			t.Errorf("success probability %g outside (0,1]", ps)
		}
	}
}

func TestPurifyStepFixedPoints(t *testing.T) {
	// F=1 is a fixed point.
	f1, _ := PurifyStep(1)
	if math.Abs(f1-1) > 1e-12 {
		t.Errorf("PurifyStep(1) = %g", f1)
	}
	// Below 1/2 the map does not improve fidelity.
	low, _ := PurifyStep(0.4)
	if low > 0.4 {
		t.Errorf("PurifyStep(0.4) = %g improved below the boundary", low)
	}
	// Near 1 the error contracts by about 2/3 per round.
	f := 0.999
	fNew, _ := PurifyStep(f)
	ratio := (1 - fNew) / (1 - f)
	if math.Abs(ratio-2.0/3) > 0.02 {
		t.Errorf("asymptotic error contraction = %g, want ≈2/3", ratio)
	}
}

func TestSwapStep(t *testing.T) {
	// Perfect pairs swap perfectly.
	if f := SwapStep(1, 1); math.Abs(f-1) > 1e-12 {
		t.Errorf("SwapStep(1,1) = %g", f)
	}
	// Near 1 the errors add: 1-F' ≈ (1-F1) + (1-F2).
	f := SwapStep(0.999, 0.998)
	if e := 1 - f; math.Abs(e-0.003) > 2e-4 {
		t.Errorf("swap error = %g, want ≈0.003", e)
	}
	// Symmetric.
	if SwapStep(0.9, 0.7) != SwapStep(0.7, 0.9) {
		t.Error("SwapStep not symmetric")
	}
}

func TestDepolarize(t *testing.T) {
	if f := Depolarize(1, 0); f != 1 {
		t.Error("no-op depolarization changed fidelity")
	}
	if f := Depolarize(1, 1); math.Abs(f-0.25) > 1e-12 {
		t.Errorf("full depolarization = %g, want 1/4", f)
	}
	if f := Depolarize(0.9, 0.1); f >= 0.9 || f <= 0.25 {
		t.Errorf("partial depolarization = %g out of range", f)
	}
}

func TestTransportFidelity(t *testing.T) {
	f0 := 0.99
	f100 := TransportFidelity(f0, 100, 1e-4)
	if f100 >= f0 {
		t.Error("transport should reduce fidelity")
	}
	// Roughly exponential decay toward 1/4.
	want := 0.25 + (f0-0.25)*math.Pow(1-1e-4, 100)
	if math.Abs(f100-want) > 1e-9 {
		t.Errorf("TransportFidelity = %g, want %g", f100, want)
	}
	if TransportFidelity(f0, 0, 1e-4) != f0 {
		t.Error("zero cells should be a no-op")
	}
}

func TestPurifyTo(t *testing.T) {
	plan := PurifyTo(0.9, 0.999, 40)
	if !plan.Converged {
		t.Fatal("purification from 0.9 to 0.999 should converge")
	}
	if plan.Fidelity < 0.999 {
		t.Errorf("final fidelity %g below target", plan.Fidelity)
	}
	if plan.Rounds < 5 {
		t.Errorf("%d rounds looks too optimistic for 0.9->0.999", plan.Rounds)
	}
	// Pair consumption at least doubles per round.
	if plan.RawPairs < math.Pow(2, float64(plan.Rounds)) {
		t.Errorf("raw pairs %g below 2^rounds", plan.RawPairs)
	}
	// Already above target: trivial plan.
	plan = PurifyTo(0.9995, 0.999, 40)
	if !plan.Converged || plan.Rounds != 0 || plan.RawPairs != 1 {
		t.Errorf("trivial plan = %+v", plan)
	}
	// Below the boundary: cannot converge.
	plan = PurifyTo(0.45, 0.9, 40)
	if plan.Converged {
		t.Error("purification below F=1/2 cannot converge")
	}
}

func TestChainFidelity(t *testing.T) {
	// Error roughly doubles per dyadic stage with perfect swaps.
	fLink := 0.999
	for stages := 1; stages <= 5; stages++ {
		f := ChainFidelity(fLink, stages, 0)
		wantErr := float64(int(1)<<stages) * (1 - fLink)
		if gotErr := 1 - f; math.Abs(gotErr-wantErr)/wantErr > 0.15 {
			t.Errorf("stage %d: chain error %g, want ≈%g", stages, gotErr, wantErr)
		}
	}
	// Swap noise strictly hurts.
	if ChainFidelity(0.999, 4, 1e-3) >= ChainFidelity(0.999, 4, 0) {
		t.Error("swap noise should lower chain fidelity")
	}
}

func TestSwapStages(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 64: 6}
	for links, want := range cases {
		if got := SwapStages(links); got != want {
			t.Errorf("SwapStages(%d) = %d, want %d", links, got, want)
		}
	}
}
