// Package teleport implements the QLA communication substrate: EPR-pair
// fidelity algebra on Werner states (Bennett/BBPSSW entanglement
// purification and entanglement swapping, after Dür et al.), the repeater
// link model behind Figure 9's connection-time analysis, and the
// teleportation / purification circuits themselves, executable on the
// stabilizer backend.
package teleport

import "fmt"

// MinPurifiableFidelity is the BBPSSW convergence boundary: pairs at or
// below fidelity 1/2 cannot be purified.
const MinPurifiableFidelity = 0.5

// PurifyStep applies one round of the Bennett (BBPSSW) recurrence to two
// Werner pairs of fidelity f, returning the post-selected fidelity and the
// success probability:
//
//	F' = (F² + ((1-F)/3)²) / (F² + 2F(1-F)/3 + 5((1-F)/3)²)
//
// The recurrence improves F only for F > 1/2.
func PurifyStep(f float64) (fNew, pSuccess float64) {
	if f < 0 || f > 1 {
		panic(fmt.Sprintf("teleport: fidelity %g outside [0,1]", f))
	}
	e := (1 - f) / 3
	num := f*f + e*e
	den := f*f + 2*f*e + 5*e*e
	return num / den, den
}

// SwapStep returns the fidelity of the Werner pair obtained by entanglement
// swapping two Werner pairs of fidelities f1 and f2 with a perfect Bell
// measurement:
//
//	F' = F1·F2 + (1-F1)(1-F2)/3.
func SwapStep(f1, f2 float64) float64 {
	return f1*f2 + (1-f1)*(1-f2)/3
}

// Depolarize mixes a Werner pair toward the maximally mixed state with
// probability eps (the noise of one repeater operation): F -> (1-eps)F + eps/4.
func Depolarize(f, eps float64) float64 {
	return (1-eps)*f + eps/4
}

// TransportFidelity applies cells steps of per-cell depolarization to a
// pair in transit.
func TransportFidelity(f float64, cells int, epsPerCell float64) float64 {
	for i := 0; i < cells; i++ {
		f = Depolarize(f, epsPerCell)
	}
	return f
}

// PurifyPlan is the outcome of planning a purification ladder.
type PurifyPlan struct {
	Rounds    int     // serial BBPSSW rounds
	Fidelity  float64 // fidelity reached
	RawPairs  float64 // expected raw pairs consumed (2/Ps per round)
	Converged bool    // whether the target was reached within MaxRounds
}

// PurifyTo iterates BBPSSW from fRaw until the fidelity reaches fTarget or
// maxRounds is exhausted, tracking the expected raw-pair consumption
// n(k) = 2·n(k-1)/Ps(k).
func PurifyTo(fRaw, fTarget float64, maxRounds int) PurifyPlan {
	plan := PurifyPlan{Fidelity: fRaw, RawPairs: 1}
	if fRaw >= fTarget {
		plan.Converged = true
		return plan
	}
	if fRaw <= MinPurifiableFidelity {
		return plan
	}
	f := fRaw
	pairs := 1.0
	for r := 1; r <= maxRounds; r++ {
		fNew, ps := PurifyStep(f)
		if fNew <= f {
			// Fixed point reached below target; no further progress.
			break
		}
		pairs = 2 * pairs / ps
		f = fNew
		plan.Rounds = r
		plan.Fidelity = f
		plan.RawPairs = pairs
		if f >= fTarget {
			plan.Converged = true
			return plan
		}
	}
	return plan
}

// ChainFidelity returns the end-to-end fidelity of connecting 2^stages
// identical links of fidelity fLink by dyadic entanglement swapping, with
// each Bell measurement depolarizing its merged pair by epsSwap. The
// recursion charges exactly one noisy swap per merge (2^stages - 1 total).
func ChainFidelity(fLink float64, stages int, epsSwap float64) float64 {
	f := fLink
	for j := 0; j < stages; j++ {
		f = Depolarize(SwapStep(f, f), epsSwap)
	}
	return f
}

// SwapStages returns the number of dyadic swapping stages needed to span
// links links (⌈log2 links⌉; 0 for a single link).
func SwapStages(links int) int {
	if links <= 0 {
		panic("teleport: link count must be positive")
	}
	s := 0
	for (1 << s) < links {
		s++
	}
	return s
}

// WernerError converts a Werner fidelity to an effective error probability
// 1-F (handy for comparing against gate failure budgets).
func WernerError(f float64) float64 { return 1 - f }
