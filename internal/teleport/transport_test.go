package teleport

import (
	"testing"

	"qla/internal/iontrap"
)

func TestCompareTransportShape(t *testing.T) {
	lp := DefaultLinkParams()
	short, err := lp.CompareTransport(100)
	if err != nil {
		t.Fatal(err)
	}
	long, err := lp.CompareTransport(20000)
	if err != nil {
		t.Fatal(err)
	}
	// Ballistic latency grows linearly; failure grows with distance.
	if long.BallisticTime <= short.BallisticTime {
		t.Error("ballistic time should grow with distance")
	}
	if long.BallisticFailure <= short.BallisticFailure {
		t.Error("ballistic failure should grow with distance")
	}
	// At short range, simplistic teleportation still works.
	if !short.SimplisticFeasible {
		t.Error("simplistic teleportation should be feasible at 100 cells")
	}
	// The repeater interconnect delivers target fidelity at both ranges.
	for _, c := range []TransportComparison{short, long} {
		if !c.RepeaterFeasible {
			t.Fatalf("repeater interconnect infeasible at %d cells", c.Cells)
		}
		if c.RepeaterFidelity < lp.FTarget {
			t.Errorf("repeater fidelity %.4f below target at %d cells", c.RepeaterFidelity, c.Cells)
		}
	}
	// The headline: repeater fidelity is distance-independent (pinned at
	// target), while the simplistic pair collapses.
	if long.SimplisticFidelity >= short.SimplisticFidelity {
		t.Error("un-repeated pair fidelity should decay with distance")
	}
}

func TestSimplisticCollapse(t *testing.T) {
	lp := DefaultLinkParams()
	collapse := lp.SimplisticCollapseCells()
	// With eps=0.03 + 5e-4/cell the boundary falls in the low thousands.
	if collapse < 500 || collapse > 10000 {
		t.Errorf("simplistic teleportation collapse at %d cells; expected low thousands", collapse)
	}
	if lp.RawFidelity(collapse) > MinPurifiableFidelity {
		t.Error("collapse distance should be at or below the boundary")
	}
	if lp.RawFidelity(collapse-1) <= MinPurifiableFidelity {
		t.Error("one cell before collapse should still be purifiable")
	}
	// The repeater interconnect keeps working far past the collapse.
	cmp, err := lp.CompareTransport(collapse * 4)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.SimplisticFeasible {
		t.Error("simplistic teleportation should be dead at 4× collapse distance")
	}
	if !cmp.RepeaterFeasible {
		t.Error("repeater interconnect should survive at 4× collapse distance")
	}
}

func TestBallisticBreakeven(t *testing.T) {
	p := iontrap.Expected()
	// At a 7.5e-5 threshold budget with 1e-6/cell movement, the breakeven
	// is ~75 cells — a few block widths, matching the design rule that
	// ballistic transport stays within the logical qubit (tile ≈ 36-147
	// cells) and teleportation handles everything longer.
	d := BallisticBreakevenCells(p, 7.5e-5)
	if d < 40 || d > 150 {
		t.Errorf("ballistic breakeven = %d cells, expected ≈75", d)
	}
	// A generous budget extends the range; a tight one shrinks it.
	if BallisticBreakevenCells(p, 1e-3) <= d {
		t.Error("looser budget should allow longer ballistic runs")
	}
	if BallisticBreakevenCells(p, 1e-6) >= d {
		t.Error("tighter budget should shorten ballistic runs")
	}
	// Perfect movement never breaks even.
	perfect := iontrap.Uniform(0, 0)
	if BallisticBreakevenCells(perfect, 1e-4) < 1<<30 {
		t.Error("zero movement error should never break even")
	}
}

func TestCompareTransportErrors(t *testing.T) {
	lp := DefaultLinkParams()
	if _, err := lp.CompareTransport(0); err == nil {
		t.Error("zero distance should fail")
	}
}
