package teleport

import (
	"testing"
	"testing/quick"
)

// fidelityFrom maps arbitrary uint16 fuzz into a fidelity in (0.5, 1).
func fidelityFrom(raw uint16) float64 {
	return 0.5 + (float64(raw)+1)/65538.0*0.5
}

// Property: one purification round strictly improves any fidelity in
// (1/2, 1), and its success probability is a valid probability.
func TestQuickPurifyImproves(t *testing.T) {
	f := func(raw uint16) bool {
		fid := fidelityFrom(raw)
		if fid >= 1 {
			return true
		}
		next, ps := PurifyStep(fid)
		return next > fid && next <= 1 && ps > 0 && ps <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: entanglement swapping never produces a fidelity above either
// input (no free lunch) and stays a valid fidelity.
func TestQuickSwapNoFreeLunch(t *testing.T) {
	f := func(rawA, rawB uint16) bool {
		fa, fb := fidelityFrom(rawA), fidelityFrom(rawB)
		out := SwapStep(fa, fb)
		maxIn := fa
		if fb > maxIn {
			maxIn = fb
		}
		return out <= maxIn+1e-12 && out >= 0 && out <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: depolarization is a contraction toward 1/4 and transport
// fidelity decreases monotonically with distance.
func TestQuickTransportMonotone(t *testing.T) {
	f := func(raw uint16, cellsRaw uint8) bool {
		fid := fidelityFrom(raw)
		cells := int(cellsRaw) % 200
		eps := 1e-4
		shorter := TransportFidelity(fid, cells, eps)
		longer := TransportFidelity(fid, cells+10, eps)
		return longer <= shorter && longer >= 0.25-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: PurifyTo's reported plan is self-consistent — the claimed
// fidelity is reproduced by iterating the recurrence Rounds times, and
// pair consumption is at least 2^Rounds.
func TestQuickPurifyToConsistent(t *testing.T) {
	f := func(raw uint16, targetRaw uint16) bool {
		fRaw := fidelityFrom(raw)
		fTarget := fidelityFrom(targetRaw)
		plan := PurifyTo(fRaw, fTarget, 60)
		check := fRaw
		for i := 0; i < plan.Rounds; i++ {
			check, _ = PurifyStep(check)
		}
		if diff := check - plan.Fidelity; diff > 1e-12 || diff < -1e-12 {
			return false
		}
		if plan.Converged && plan.Fidelity < fTarget {
			return false
		}
		pow := 1.0
		for i := 0; i < plan.Rounds; i++ {
			pow *= 2
		}
		return plan.RawPairs >= pow-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: the chain fidelity over more stages is never better than over
// fewer stages (swapping only degrades).
func TestQuickChainMonotone(t *testing.T) {
	f := func(raw uint16, stagesRaw uint8) bool {
		fid := fidelityFrom(raw)
		stages := int(stagesRaw) % 8
		return ChainFidelity(fid, stages+1, 1e-5) <= ChainFidelity(fid, stages, 1e-5)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
