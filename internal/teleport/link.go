package teleport

import (
	"fmt"
	"math"

	"qla/internal/iontrap"
)

// LinkParams describes the repeater-channel model behind Figure 9,
// following the nested entanglement-purification scheme of Dür, Briegel,
// Cirac and Zoller (the paper: "borrowing and adapting the recursive
// fidelity equations (9,19) given in [28] for the Bennett purification
// protocol"): EPR pairs are created mid-channel, ballistically distributed
// to the two island endpoints, purified with k0 initial rounds, then
// stretched over the full distance by dyadic entanglement swapping with M
// re-purification rounds per doubling level. Ancilla pairs at level j are
// regenerated sequentially through the same channel, giving Dür's
// polynomial (not logarithmic) time growth with distance — the effect that
// makes the island separation a real optimization knob.
//
// The infidelity constants sit between the paper's Pcurrent and Pexpected
// columns (the paper does not publish its adapted constants); they are
// calibrated so that the model reproduces Figure 9's qualitative result:
// d = 100 cells optimal below ≈6000 cells, d = 350 above, connection times
// of tens of milliseconds. See DESIGN.md §6.
type LinkParams struct {
	P iontrap.Params

	// EpsPair is the infidelity of a freshly created EPR pair.
	EpsPair float64
	// EpsMoveCell is the per-cell depolarization during distribution.
	EpsMoveCell float64
	// EpsSwap is the depolarization of one repeater Bell measurement.
	EpsSwap float64
	// FTarget is the required end-to-end pair fidelity before the final
	// data teleport.
	FTarget float64
	// PairInterval is the steady-state interval between raw-pair
	// deliveries at a link endpoint (pipelined factory), seconds.
	PairInterval float64
	// ClassicalLatency is the per-round classical control latency.
	ClassicalLatency float64
	// MaxInitialRounds bounds the link-level purification ladder.
	MaxInitialRounds int
	// MaxNestedRounds bounds the per-level re-purification count.
	MaxNestedRounds int
}

// DefaultLinkParams returns the calibrated Figure-9 model.
func DefaultLinkParams() LinkParams {
	return LinkParams{
		P:                iontrap.Expected(),
		EpsPair:          0.03, // current-generation two-qubit gate (Table 1)
		EpsMoveCell:      5e-4, // near-term transport infidelity per cell
		EpsSwap:          5e-6, // repeater Bell measurement depolarization
		FTarget:          0.99,
		PairInterval:     0.1e-6, // pipelined channel delivery (~100 Mqbps)
		ClassicalLatency: 1e-6,
		MaxInitialRounds: 25,
		MaxNestedRounds:  4,
	}
}

// RawFidelity returns the fidelity of one raw link pair after creation and
// distribution over a link of d cells (each half travels d/2; both halves
// decohere, charging d cell steps in total).
func (lp LinkParams) RawFidelity(d int) float64 {
	if d <= 0 {
		panic("teleport: link length must be positive")
	}
	return TransportFidelity(1-lp.EpsPair, d, lp.EpsMoveCell)
}

// ConnectionPlan describes a planned end-to-end entanglement connection.
type ConnectionPlan struct {
	TotalCells int
	IslandSep  int
	Links      int
	SwapStages int

	InitialRounds int     // k0: link-level BBPSSW rounds
	NestedRounds  int     // M: re-purification rounds per swap level
	RawPairs      float64 // expected raw pairs behind the link ladder
	LinkFid       float64 // link fidelity after the initial ladder
	EndFid        float64 // end-to-end fidelity delivered

	Time     float64 // total connection latency, seconds
	TimeLink float64 // level-0 component (setup + supply + ladder)
}

func (lp LinkParams) roundTime() float64 {
	return lp.P.Time[iontrap.OpDouble] + lp.P.Time[iontrap.OpMeasure] + lp.ClassicalLatency
}

func (lp LinkParams) swapTime() float64 {
	return lp.P.Time[iontrap.OpDouble] + lp.P.Time[iontrap.OpSingle] +
		lp.P.Time[iontrap.OpMeasure] + lp.ClassicalLatency
}

// evaluate computes the fidelity and latency of the (k0, M) strategy over
// the given number of dyadic stages; feasible reports whether purification
// made progress at every step.
func (lp LinkParams) evaluate(sep, stages, k0, m int) (plan ConnectionPlan, feasible bool) {
	f := lp.RawFidelity(sep)
	if f <= MinPurifiableFidelity {
		return plan, false
	}
	pairs := 1.0
	for r := 0; r < k0; r++ {
		fNew, ps := PurifyStep(f)
		if fNew <= f {
			return plan, false
		}
		pairs = 2 * pairs / ps
		f = fNew
	}
	linkFid := f

	// Level-0 build time: first-pair distribution, pipelined raw-pair
	// supply for the ladder, serial ladder rounds.
	t := lp.P.Time
	setup := t[iontrap.OpSplit] + float64(sep/2)*t[iontrap.OpMoveCell] + t[iontrap.OpDouble]
	tLink := setup + pairs*lp.PairInterval + float64(k0)*lp.roundTime()

	// Nested swapping with sequential ancilla regeneration (Dür et al.):
	// each of the M purification rounds at level j consumes a second
	// level-j pair that takes another T(j-1) to produce.
	tj := tLink
	for j := 0; j < stages; j++ {
		f = Depolarize(SwapStep(f, f), lp.EpsSwap)
		for r := 0; r < m; r++ {
			fNew, _ := PurifyStep(f)
			if fNew <= f {
				return plan, false
			}
			f = fNew
		}
		tj = float64(m+1)*tj + float64(m)*lp.roundTime() + lp.swapTime()
	}
	plan = ConnectionPlan{
		IslandSep:     sep,
		SwapStages:    stages,
		InitialRounds: k0,
		NestedRounds:  m,
		RawPairs:      pairs,
		LinkFid:       linkFid,
		EndFid:        f,
		Time:          tj,
		TimeLink:      tLink,
	}
	return plan, f >= lp.FTarget
}

// Plan finds the fastest feasible (k0, M) strategy for connecting
// totalCells with island separation sep.
func (lp LinkParams) Plan(totalCells, sep int) (ConnectionPlan, error) {
	if totalCells <= 0 || sep <= 0 {
		return ConnectionPlan{}, fmt.Errorf("teleport: bad geometry %d/%d", totalCells, sep)
	}
	links := (totalCells + sep - 1) / sep
	stages := SwapStages(links)
	best := ConnectionPlan{}
	found := false
	for m := 0; m <= lp.MaxNestedRounds; m++ {
		for k0 := 0; k0 <= lp.MaxInitialRounds; k0++ {
			plan, ok := lp.evaluate(sep, stages, k0, m)
			if !ok {
				continue
			}
			if !found || plan.Time < best.Time {
				best = plan
				found = true
			}
			// Further k0 at this m only adds time once feasible.
			break
		}
	}
	if !found {
		return ConnectionPlan{}, fmt.Errorf("teleport: cannot reach fidelity %.4f over %d cells with separation %d",
			lp.FTarget, totalCells, sep)
	}
	best.TotalCells = totalCells
	best.Links = links
	return best, nil
}

// ConnectionTime returns just the latency of Plan.
func (lp LinkParams) ConnectionTime(totalCells, sep int) (float64, error) {
	plan, err := lp.Plan(totalCells, sep)
	if err != nil {
		return 0, err
	}
	return plan.Time, nil
}

// Figure9Separations are the island separations swept in Figure 9.
var Figure9Separations = []int{35, 70, 100, 350, 500, 750, 1000}

// Figure9Point is one sample of the Figure 9 series.
type Figure9Point struct {
	Distance int
	Sep      int
	Time     float64
	Feasible bool
}

// Figure9Series sweeps connection time over total distance for each island
// separation, reproducing the Figure 9 plot data.
func (lp LinkParams) Figure9Series(distances []int) []Figure9Point {
	var out []Figure9Point
	for _, sep := range Figure9Separations {
		for _, d := range distances {
			tm, err := lp.ConnectionTime(d, sep)
			out = append(out, Figure9Point{Distance: d, Sep: sep, Time: tm, Feasible: err == nil})
		}
	}
	return out
}

// SmoothedTime evaluates the connection time averaged (geometrically) over
// a ±30% distance window. The dyadic stage count makes the raw curves step
// functions whose steps interleave between separations; smoothing recovers
// the trend a reader takes from the Figure-9 plot. It returns an error when
// no point in the window is feasible.
func (lp LinkParams) SmoothedTime(totalCells, sep int) (float64, error) {
	factors := []float64{0.7, 0.85, 1.0, 1.15, 1.3}
	logSum, n := 0.0, 0
	for _, f := range factors {
		d := int(float64(totalCells) * f)
		if d < sep {
			d = sep
		}
		t, err := lp.ConnectionTime(d, sep)
		if err != nil {
			continue
		}
		logSum += math.Log(t)
		n++
	}
	if n == 0 {
		return 0, fmt.Errorf("teleport: no feasible point near %d cells at separation %d", totalCells, sep)
	}
	return math.Exp(logSum / float64(n)), nil
}

// CrossoverDistance finds the swept distance from which sepFar stays at
// least as fast as sepNear (in the smoothed sense) for the rest of the
// sweep (the paper: d = 350 overtakes d = 100 at ≈6000 cells). It returns
// 0 when no crossover occurs in range.
func (lp LinkParams) CrossoverDistance(sepNear, sepFar int, distances []int) int {
	const tolerance = 1.05 // ignore sub-5% wobbles from residual steps
	cross := 0
	for i := len(distances) - 1; i >= 0; i-- {
		d := distances[i]
		tNear, errNear := lp.SmoothedTime(d, sepNear)
		tFar, errFar := lp.SmoothedTime(d, sepFar)
		farWins := (errNear != nil && errFar == nil) ||
			(errNear == nil && errFar == nil && tFar <= tNear*tolerance)
		if !farWins {
			return cross
		}
		cross = d
	}
	return cross
}

// BestSeparation returns the island separation from Figure9Separations
// with the lowest smoothed connection time at the given distance — the
// choice the paper's communication scheduler makes ("the teleportation
// islands are equipped with the capability of being used or not being
// used", letting the scheduler pick the separation).
func (lp LinkParams) BestSeparation(totalCells int) (sep int, time float64, err error) {
	bestSep, bestTime := 0, 0.0
	for _, s := range Figure9Separations {
		t, e := lp.SmoothedTime(totalCells, s)
		if e != nil {
			continue
		}
		if bestSep == 0 || t < bestTime {
			bestSep, bestTime = s, t
		}
	}
	if bestSep == 0 {
		return 0, 0, fmt.Errorf("teleport: no feasible separation for %d cells", totalCells)
	}
	return bestSep, bestTime, nil
}
