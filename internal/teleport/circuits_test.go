package teleport

import (
	"testing"

	"qla/internal/pauli"
	"qla/internal/stabilizer"
)

func TestTeleportMovesArbitraryStabilizerStates(t *testing.T) {
	preps := []struct {
		name  string
		prep  func(s *stabilizer.State)
		check pauli.String
	}{
		{"zero", func(s *stabilizer.State) {}, pauli.MustParse("+Z")},
		{"one", func(s *stabilizer.State) { s.X(0) }, pauli.MustParse("-Z")},
		{"plus", func(s *stabilizer.State) { s.H(0) }, pauli.MustParse("+X")},
		{"minus", func(s *stabilizer.State) { s.H(0); s.Z(0) }, pauli.MustParse("-X")},
		{"plusI", func(s *stabilizer.State) { s.H(0); s.S(0) }, pauli.MustParse("+Y")},
	}
	for _, tc := range preps {
		for seed := uint64(1); seed <= 25; seed++ {
			s := stabilizer.NewSeeded(3, seed)
			tc.prep(s)
			Teleport(s, 0, 1, 2)
			if e := s.Expectation(tc.check.Embed(3, []int{2})); e != 1 {
				t.Fatalf("%s: teleported state check failed (seed %d, got %d)", tc.name, seed, e)
			}
		}
	}
}

func TestTeleportCircuitShape(t *testing.T) {
	c := TeleportCircuit()
	if c.N != 3 {
		t.Errorf("teleport circuit over %d qubits", c.N)
	}
	if c.Measurements() != 2 {
		t.Errorf("teleport circuit has %d measurements, want 2", c.Measurements())
	}
}

func TestEntanglementSwapChain(t *testing.T) {
	// Build a chain of 4 Bell pairs across 8 qubits and swap them down to
	// a single end-to-end pair; verify it is a Bell pair.
	for seed := uint64(1); seed <= 30; seed++ {
		s := stabilizer.NewSeeded(8, seed)
		for i := 0; i < 4; i++ {
			s.H(2 * i)
			s.CNOT(2*i, 2*i+1)
		}
		// Swap at stations (1,2), then (3,4), then (5,6): each merges the
		// leftmost pair with the next.
		EntanglementSwap(s, 1, 2, 3) // pair (0,3)
		EntanglementSwap(s, 3, 4, 5) // pair (0,5)
		EntanglementSwap(s, 5, 6, 7) // pair (0,7)
		if e := s.Expectation(pauli.MustParse("+XX").Embed(8, []int{0, 7})); e != 1 {
			t.Fatalf("seed %d: end-to-end pair fails XX test (%d)", seed, e)
		}
		if e := s.Expectation(pauli.MustParse("+ZZ").Embed(8, []int{0, 7})); e != 1 {
			t.Fatalf("seed %d: end-to-end pair fails ZZ test (%d)", seed, e)
		}
	}
}

func TestMonteCarloPurifyImprovesFidelity(t *testing.T) {
	res := MonteCarloPurify(0.15, 4000, 11)
	if res.RawFidelity > 0.95 {
		t.Fatalf("raw fidelity %.3f too high for eps=0.15; test not probing anything", res.RawFidelity)
	}
	if res.PurifiedFid <= res.RawFidelity {
		t.Errorf("purification did not help: raw %.3f, purified %.3f", res.RawFidelity, res.PurifiedFid)
	}
	if res.AcceptanceFrc <= 0.4 || res.AcceptanceFrc > 1 {
		t.Errorf("acceptance fraction %.3f implausible", res.AcceptanceFrc)
	}
}

func TestMonteCarloPurifyCleanPairs(t *testing.T) {
	res := MonteCarloPurify(0, 300, 12)
	if res.RawFidelity != 1 || res.PurifiedFid != 1 || res.AcceptanceFrc != 1 {
		t.Errorf("noiseless purification should be perfect: %+v", res)
	}
}

func TestBellPrep(t *testing.T) {
	c := TeleportCircuit() // includes BellPrep(1,2)
	s := stabilizer.NewSeeded(3, 3)
	// Run only the Bell prep portion: rebuild it.
	c2 := c
	_ = c2
	s.Reset(1)
	s.Reset(2)
	s.H(1)
	s.CNOT(1, 2)
	if e := s.Expectation(pauli.MustParse("+XX").Embed(3, []int{1, 2})); e != 1 {
		t.Error("Bell prep fails XX")
	}
	if e := s.Expectation(pauli.MustParse("+ZZ").Embed(3, []int{1, 2})); e != 1 {
		t.Error("Bell prep fails ZZ")
	}
}
