package pauli

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestParseRoundTrip(t *testing.T) {
	cases := []string{"+XIZY", "-XYZ", "+iXX", "-iZZZ", "+IIII", "+Y"}
	for _, c := range cases {
		p, err := Parse(c)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c, err)
		}
		if got := p.String(); got != c {
			t.Errorf("Parse(%q).String() = %q", c, got)
		}
	}
}

func TestParseDefaults(t *testing.T) {
	p, err := Parse("XZ")
	if err != nil {
		t.Fatal(err)
	}
	if p.Phase != 0 || p.At(0) != 'X' || p.At(1) != 'Z' {
		t.Errorf("Parse(XZ) = %v", p)
	}
	if _, err := Parse("XQ"); err == nil {
		t.Error("Parse(XQ) should fail")
	}
}

func TestSetAt(t *testing.T) {
	p := NewIdentity(4)
	p.Set(0, 'X')
	p.Set(1, 'Y')
	p.Set(2, 'Z')
	p.Set(3, 'I')
	want := "XYZI"
	for i := 0; i < 4; i++ {
		if p.At(i) != want[i] {
			t.Errorf("At(%d) = %c, want %c", i, p.At(i), want[i])
		}
	}
	p.Set(1, 'I')
	if p.At(1) != 'I' {
		t.Errorf("clearing qubit failed: %c", p.At(1))
	}
}

func TestWeight(t *testing.T) {
	cases := map[string]int{"+IIII": 0, "+XIZI": 2, "+YYYY": 4, "-XYZ": 3}
	for s, w := range cases {
		if got := MustParse(s).Weight(); got != w {
			t.Errorf("Weight(%s) = %d, want %d", s, got, w)
		}
	}
}

func TestCommutes(t *testing.T) {
	cases := []struct {
		a, b string
		want bool
	}{
		{"+XI", "+ZI", false},
		{"+XI", "+IZ", true},
		{"+XX", "+ZZ", true},
		{"+XX", "+ZI", false},
		{"+Y", "+X", false},
		{"+Y", "+Y", true},
		{"+XYZ", "+XYZ", true},
		{"+XZ", "+ZX", true},
	}
	for _, c := range cases {
		if got := MustParse(c.a).Commutes(MustParse(c.b)); got != c.want {
			t.Errorf("Commutes(%s,%s) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestMulSingleQubitTable(t *testing.T) {
	// Full 1-qubit multiplication table with phases.
	cases := []struct{ a, b, want string }{
		{"+X", "+X", "+I"},
		{"+Y", "+Y", "+I"},
		{"+Z", "+Z", "+I"},
		{"+X", "+Y", "+iZ"},
		{"+Y", "+X", "-iZ"},
		{"+Y", "+Z", "+iX"},
		{"+Z", "+Y", "-iX"},
		{"+Z", "+X", "+iY"},
		{"+X", "+Z", "-iY"},
		{"-X", "+Y", "-iZ"},
		{"+iX", "+Y", "-Z"},
	}
	for _, c := range cases {
		got := MustParse(c.a).Mul(MustParse(c.b))
		if got.String() != c.want {
			t.Errorf("%s * %s = %s, want %s", c.a, c.b, got, c.want)
		}
	}
}

func TestMulMultiQubit(t *testing.T) {
	a := MustParse("+XYI")
	b := MustParse("+YXZ")
	// X*Y = iZ ; Y*X = -iZ ; I*Z = Z  => phases cancel: +ZZZ
	got := a.Mul(b)
	if got.String() != "+ZZZ" {
		t.Errorf("XYI * YXZ = %s, want +ZZZ", got)
	}
}

func randomPauli(r *rand.Rand, n int) String {
	p := NewIdentity(n)
	for q := 0; q < n; q++ {
		p.Set(q, "IXYZ"[r.IntN(4)])
	}
	p.Phase = uint8(r.IntN(4))
	return p
}

func TestMulPropertyAssociativeAndSquares(t *testing.T) {
	r := rand.New(rand.NewPCG(1, 2))
	for trial := 0; trial < 200; trial++ {
		n := 1 + r.IntN(9)
		a, b, c := randomPauli(r, n), randomPauli(r, n), randomPauli(r, n)
		if !a.Mul(b).Mul(c).Equal(a.Mul(b.Mul(c))) {
			t.Fatalf("associativity failed: a=%s b=%s c=%s", a, b, c)
		}
		// Hermitian Paulis square to identity with + phase.
		h := randomPauli(r, n)
		h.Phase = uint8(2 * r.IntN(2))
		sq := h.Mul(h)
		if !sq.IsIdentity() || sq.Phase != 0 {
			t.Fatalf("h^2 != +I for h=%s: %s", h, sq)
		}
	}
}

func TestMulCommutationSign(t *testing.T) {
	// a·b = ±b·a with + iff they commute.
	r := rand.New(rand.NewPCG(3, 4))
	for trial := 0; trial < 200; trial++ {
		n := 1 + r.IntN(8)
		a, b := randomPauli(r, n), randomPauli(r, n)
		ab, ba := a.Mul(b), b.Mul(a)
		if !ab.EqualUpToPhase(ba) {
			t.Fatalf("ab and ba differ in content: %s vs %s", ab, ba)
		}
		diff := (int(ab.Phase) - int(ba.Phase) + 4) % 4
		if a.Commutes(b) && diff != 0 {
			t.Fatalf("commuting pair with phase diff %d: %s %s", diff, a, b)
		}
		if !a.Commutes(b) && diff != 2 {
			t.Fatalf("anticommuting pair with phase diff %d: %s %s", diff, a, b)
		}
	}
}

func TestEmbedRestrict(t *testing.T) {
	p := MustParse("-XY")
	e := p.Embed(5, []int{3, 1})
	if e.String() != "-IYIXI" {
		t.Errorf("Embed = %s, want -IYIXI", e)
	}
	back := e.Restrict([]int{3, 1})
	if !back.Equal(p) {
		t.Errorf("Restrict(Embed) = %s, want %s", back, p)
	}
}

func TestQuickCommutesSymmetric(t *testing.T) {
	f := func(seed uint64, na uint8) bool {
		r := rand.New(rand.NewPCG(seed, seed+1))
		n := 1 + int(na%12)
		a, b := randomPauli(r, n), randomPauli(r, n)
		return a.Commutes(b) == b.Commutes(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIsIdentity(t *testing.T) {
	if !MustParse("+III").IsIdentity() {
		t.Error("III should be identity")
	}
	if MustParse("+IXI").IsIdentity() {
		t.Error("IXI should not be identity")
	}
	neg := MustParse("-II")
	if !neg.IsIdentity() {
		t.Error("-II is identity content")
	}
}

func TestEmbedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Embed with mismatched positions should panic")
		}
	}()
	MustParse("+XY").Embed(4, []int{0})
}

func TestLargeOperators(t *testing.T) {
	// Exercise multi-word bit vectors (n > 64).
	n := 130
	p := NewIdentity(n)
	p.Set(0, 'X')
	p.Set(64, 'Y')
	p.Set(129, 'Z')
	if p.Weight() != 3 {
		t.Errorf("weight = %d", p.Weight())
	}
	q := NewIdentity(n)
	q.Set(129, 'X')
	if p.Commutes(q) {
		t.Error("Z and X on qubit 129 should anticommute")
	}
	pr := p.Mul(p)
	if !pr.IsIdentity() {
		t.Error("p^2 should be identity content")
	}
}
