// Package pauli implements n-qubit Pauli operators in the symplectic
// (X-bits, Z-bits, phase) representation used throughout the stabilizer
// formalism: P = i^phase * X^x * Z^z applied qubit-wise.
//
// The representation follows the Aaronson–Gottesman convention: a Pauli on
// qubit q is encoded by two bits (x_q, z_q) with 00=I, 10=X, 11=Y, 01=Z.
package pauli

import (
	"fmt"
	"math/bits"
	"strings"
)

// String is an n-qubit Pauli operator. Phase is the exponent of i modulo 4,
// so the overall operator is i^Phase · ⊗_q P_q with P_q determined by the
// X/Z bit vectors. The zero value is the empty (0-qubit) identity.
type String struct {
	X     []uint64 // bit q set: X component on qubit q
	Z     []uint64 // bit q set: Z component on qubit q
	N     int      // number of qubits
	Phase uint8    // exponent of i, mod 4
}

// words returns the number of 64-bit words needed for n qubits.
func words(n int) int { return (n + 63) / 64 }

// NewIdentity returns the n-qubit identity Pauli.
func NewIdentity(n int) String {
	return String{X: make([]uint64, words(n)), Z: make([]uint64, words(n)), N: n}
}

// Parse builds a Pauli from a string like "+XIZY" or "-iXYZ" (phase prefix
// optional: "", "+", "-", "+i", "-i", "i").
func Parse(s string) (String, error) {
	orig := s
	phase := uint8(0)
	switch {
	case strings.HasPrefix(s, "+i"):
		phase, s = 1, s[2:]
	case strings.HasPrefix(s, "-i"):
		phase, s = 3, s[2:]
	case strings.HasPrefix(s, "i"):
		phase, s = 1, s[1:]
	case strings.HasPrefix(s, "+"):
		s = s[1:]
	case strings.HasPrefix(s, "-"):
		phase, s = 2, s[1:]
	}
	p := NewIdentity(len(s))
	p.Phase = phase
	for q, ch := range s {
		switch ch {
		case 'I', 'i':
			// identity
		case 'X', 'x':
			p.SetX(q, true)
		case 'Z', 'z':
			p.SetZ(q, true)
		case 'Y', 'y':
			p.SetX(q, true)
			p.SetZ(q, true)
		default:
			return String{}, fmt.Errorf("pauli: bad character %q in %q", ch, orig)
		}
	}
	return p, nil
}

// MustParse is Parse that panics on error; for tests and literals.
func MustParse(s string) String {
	p, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return p
}

// Clone returns a deep copy of p.
func (p String) Clone() String {
	q := String{X: make([]uint64, len(p.X)), Z: make([]uint64, len(p.Z)), N: p.N, Phase: p.Phase}
	copy(q.X, p.X)
	copy(q.Z, p.Z)
	return q
}

func (p String) xBit(q int) bool { return p.X[q/64]>>(uint(q)%64)&1 == 1 }
func (p String) zBit(q int) bool { return p.Z[q/64]>>(uint(q)%64)&1 == 1 }

// XBit reports whether the operator has an X component on qubit q.
func (p String) XBit(q int) bool { p.check(q); return p.xBit(q) }

// ZBit reports whether the operator has a Z component on qubit q.
func (p String) ZBit(q int) bool { p.check(q); return p.zBit(q) }

// SetX sets or clears the X component on qubit q.
func (p *String) SetX(q int, v bool) {
	p.check(q)
	if v {
		p.X[q/64] |= 1 << (uint(q) % 64)
	} else {
		p.X[q/64] &^= 1 << (uint(q) % 64)
	}
}

// SetZ sets or clears the Z component on qubit q.
func (p *String) SetZ(q int, v bool) {
	p.check(q)
	if v {
		p.Z[q/64] |= 1 << (uint(q) % 64)
	} else {
		p.Z[q/64] &^= 1 << (uint(q) % 64)
	}
}

// Set assigns the single-qubit Pauli at position q from a rune in "IXYZ".
func (p *String) Set(q int, pauli byte) {
	switch pauli {
	case 'I':
		p.SetX(q, false)
		p.SetZ(q, false)
	case 'X':
		p.SetX(q, true)
		p.SetZ(q, false)
	case 'Y':
		p.SetX(q, true)
		p.SetZ(q, true)
	case 'Z':
		p.SetX(q, false)
		p.SetZ(q, true)
	default:
		panic(fmt.Sprintf("pauli: bad pauli byte %q", pauli))
	}
}

// At returns the single-qubit Pauli at position q as one of 'I','X','Y','Z'.
func (p String) At(q int) byte {
	p.check(q)
	switch {
	case p.xBit(q) && p.zBit(q):
		return 'Y'
	case p.xBit(q):
		return 'X'
	case p.zBit(q):
		return 'Z'
	default:
		return 'I'
	}
}

func (p String) check(q int) {
	if q < 0 || q >= p.N {
		panic(fmt.Sprintf("pauli: qubit %d out of range [0,%d)", q, p.N))
	}
}

// Weight returns the number of qubits on which p acts non-trivially.
func (p String) Weight() int {
	w := 0
	for i := range p.X {
		w += bits.OnesCount64(p.X[i] | p.Z[i])
	}
	return w
}

// IsIdentity reports whether p is the identity operator (any phase).
func (p String) IsIdentity() bool {
	for i := range p.X {
		if p.X[i] != 0 || p.Z[i] != 0 {
			return false
		}
	}
	return true
}

// Commutes reports whether p and q commute. Two Paulis commute iff their
// symplectic inner product Σ(x_p·z_q + z_p·x_q) is even.
func (p String) Commutes(q String) bool {
	if p.N != q.N {
		panic("pauli: operator size mismatch")
	}
	parity := 0
	for i := range p.X {
		parity ^= bits.OnesCount64(p.X[i]&q.Z[i]) & 1
		parity ^= bits.OnesCount64(p.Z[i]&q.X[i]) & 1
	}
	return parity == 0
}

// Mul returns the product p·q with the correct phase.
func (p String) Mul(q String) String {
	if p.N != q.N {
		panic("pauli: operator size mismatch")
	}
	r := NewIdentity(p.N)
	phase := int(p.Phase) + int(q.Phase)
	for i := range p.X {
		r.X[i] = p.X[i] ^ q.X[i]
		r.Z[i] = p.Z[i] ^ q.Z[i]
	}
	// Per-qubit phase accounting: multiplying single-qubit Paulis
	// P1=(x1,z1), P2=(x2,z2) yields i^g with
	// g = per-qubit Levi-Civita contribution. Use the standard formula:
	// for each qubit, g = x1·z2 − z1·x2 counted with the Y adjustments.
	// We compute it exactly via lookup over the 16 combinations.
	for q64 := 0; q64 < len(p.X); q64++ {
		xa, za, xb, zb := p.X[q64], p.Z[q64], q.X[q64], q.Z[q64]
		if xa|za|xb|zb == 0 {
			continue
		}
		for b := 0; b < 64; b++ {
			m := uint64(1) << uint(b)
			if (xa|za|xb|zb)&m == 0 {
				continue
			}
			a := pidx(xa&m != 0, za&m != 0)
			c := pidx(xb&m != 0, zb&m != 0)
			phase += int(mulPhase[a][c])
		}
	}
	r.Phase = uint8(phase % 4)
	return r
}

// pidx maps (x,z) to 0=I,1=X,2=Y,3=Z.
func pidx(x, z bool) int {
	switch {
	case x && z:
		return 2
	case x:
		return 1
	case z:
		return 3
	default:
		return 0
	}
}

// mulPhase[a][b] is the exponent of i in P_a·P_b (a,b in 0..3 = I,X,Y,Z),
// e.g. X·Y = iZ -> mulPhase[1][2] = 1; Y·X = -iZ -> mulPhase[2][1] = 3.
var mulPhase = [4][4]uint8{
	{0, 0, 0, 0},
	{0, 0, 1, 3},
	{0, 3, 0, 1},
	{0, 1, 3, 0},
}

// Equal reports whether p and q are the same operator including phase.
func (p String) Equal(q String) bool {
	if p.N != q.N || p.Phase != q.Phase {
		return false
	}
	for i := range p.X {
		if p.X[i] != q.X[i] || p.Z[i] != q.Z[i] {
			return false
		}
	}
	return true
}

// EqualUpToPhase reports whether p and q have the same Pauli content.
func (p String) EqualUpToPhase(q String) bool {
	if p.N != q.N {
		return false
	}
	for i := range p.X {
		if p.X[i] != q.X[i] || p.Z[i] != q.Z[i] {
			return false
		}
	}
	return true
}

// String renders the operator as a phase prefix plus one letter per qubit.
func (p String) String() string {
	var sb strings.Builder
	switch p.Phase {
	case 0:
		sb.WriteByte('+')
	case 1:
		sb.WriteString("+i")
	case 2:
		sb.WriteByte('-')
	case 3:
		sb.WriteString("-i")
	}
	for q := 0; q < p.N; q++ {
		sb.WriteByte(p.At(q))
	}
	return sb.String()
}

// Embed places p (acting on len(qubits) qubits) into an n-qubit identity at
// the given positions: result acts as p on qubits[i] and I elsewhere.
func (p String) Embed(n int, qubits []int) String {
	if len(qubits) != p.N {
		panic("pauli: Embed position count mismatch")
	}
	r := NewIdentity(n)
	r.Phase = p.Phase
	for i, q := range qubits {
		if q < 0 || q >= n {
			panic(fmt.Sprintf("pauli: Embed target %d out of range [0,%d)", q, n))
		}
		r.SetX(q, p.xBit(i))
		r.SetZ(q, p.zBit(i))
	}
	return r
}

// Restrict extracts the sub-operator acting on the given qubits, discarding
// the rest (phase is preserved).
func (p String) Restrict(qubits []int) String {
	r := NewIdentity(len(qubits))
	r.Phase = p.Phase
	for i, q := range qubits {
		p.check(q)
		r.SetX(i, p.xBit(q))
		r.SetZ(i, p.zBit(q))
	}
	return r
}
