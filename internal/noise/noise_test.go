package noise

import (
	"math"
	"testing"

	"qla/internal/circuit"
	"qla/internal/iontrap"
	"qla/internal/pauliframe"
)

func TestFlipProbabilities(t *testing.T) {
	m := NewModel(iontrap.Expected(), 1)
	if m.Flip(0) {
		t.Error("Flip(0) must be false")
	}
	if !m.Flip(1) {
		t.Error("Flip(1) must be true")
	}
	hits := 0
	const trials = 20000
	for i := 0; i < trials; i++ {
		if m.Flip(0.25) {
			hits++
		}
	}
	got := float64(hits) / trials
	if math.Abs(got-0.25) > 0.02 {
		t.Errorf("Flip(0.25) rate = %g", got)
	}
}

func TestDepolarize1Distribution(t *testing.T) {
	m := NewModel(iontrap.Expected(), 2)
	counts := map[string]int{}
	const trials = 30000
	for i := 0; i < trials; i++ {
		f := pauliframe.New(1)
		m.Depolarize1(f, 0, 1) // always inject
		counts[f.Pauli().String()]++
	}
	for _, k := range []string{"+X", "+Y", "+Z"} {
		frac := float64(counts[k]) / trials
		if math.Abs(frac-1.0/3) > 0.02 {
			t.Errorf("Depolarize1 %s fraction = %g, want 1/3", k, frac)
		}
	}
	if counts["+I"] != 0 {
		t.Error("Depolarize1 with p=1 should never inject identity")
	}
}

func TestDepolarize2Distribution(t *testing.T) {
	m := NewModel(iontrap.Expected(), 3)
	counts := map[string]int{}
	const trials = 60000
	for i := 0; i < trials; i++ {
		f := pauliframe.New(2)
		m.Depolarize2(f, 0, 1, 1)
		counts[f.Pauli().String()]++
	}
	if counts["+II"] != 0 {
		t.Fatal("Depolarize2 with p=1 injected identity")
	}
	if len(counts) != 15 {
		t.Fatalf("Depolarize2 produced %d distinct Paulis, want 15", len(counts))
	}
	for k, c := range counts {
		frac := float64(c) / trials
		if math.Abs(frac-1.0/15) > 0.01 {
			t.Errorf("Depolarize2 %s fraction = %g, want 1/15", k, frac)
		}
	}
}

func TestMoveErrorScalesWithDistance(t *testing.T) {
	p := iontrap.Expected()
	p.Fail[iontrap.OpMoveCell] = 1e-3
	m := NewModel(p, 4)
	inject := func(cells int) float64 {
		hits := 0
		const trials = 20000
		for i := 0; i < trials; i++ {
			f := pauliframe.New(1)
			m.MoveError(f, 0, cells, 0)
			if !f.IsClean() {
				hits++
			}
		}
		return float64(hits) / trials
	}
	p10, p100 := inject(10), inject(100)
	want10 := 1 - math.Pow(1-1e-3, 10)
	want100 := 1 - math.Pow(1-1e-3, 100)
	if math.Abs(p10-want10) > 0.01 {
		t.Errorf("move error over 10 cells = %g, want %g", p10, want10)
	}
	if math.Abs(p100-want100) > 0.01 {
		t.Errorf("move error over 100 cells = %g, want %g", p100, want100)
	}
}

func TestRunNoisyCleanParams(t *testing.T) {
	// With zero error rates the noisy runner must return all-zero flips.
	p := iontrap.Uniform(0, 0)
	m := NewModel(p, 5)
	c := circuit.New(3)
	c.PrepPlus(0).CNOT(0, 1).H(2).MeasureZ(0).MeasureZ(1).MeasureX(2)
	f := pauliframe.New(3)
	out := m.RunNoisy(c, f)
	for i, b := range out {
		if b != 0 {
			t.Errorf("noiseless flip[%d] = %d", i, b)
		}
	}
	if m.TotalInjected() != 0 {
		t.Errorf("injected %d errors at zero rates", m.TotalInjected())
	}
}

func TestRunNoisyDetectsInjection(t *testing.T) {
	// Drive the 2-qubit gate error to 1: a CNOT then measurement of both
	// qubits must almost always show a flip somewhere over many trials.
	p := iontrap.Uniform(0, 0)
	p.Fail[iontrap.OpDouble] = 1
	m := NewModel(p, 6)
	flips := 0
	const trials = 2000
	for i := 0; i < trials; i++ {
		c := circuit.New(2)
		c.CNOT(0, 1).MeasureZ(0).MeasureZ(1)
		f := pauliframe.New(2)
		out := m.RunNoisy(c, f)
		if out[0] != 0 || out[1] != 0 {
			flips++
		}
	}
	// 8 of the 15 two-qubit Paulis have an X component on at least one
	// qubit... exactly: pairs (pa,pb) with pa in {X,Y} or pb in {X,Y}.
	// Count: total 15; those with both in {I,Z}: 3 (IZ, ZI, ZZ). So 12/15.
	want := 12.0 / 15
	got := float64(flips) / trials
	if math.Abs(got-want) > 0.04 {
		t.Errorf("flip fraction = %g, want %g", got, want)
	}
}

func TestMeasurementReadoutError(t *testing.T) {
	p := iontrap.Uniform(0, 0)
	p.Fail[iontrap.OpMeasure] = 1
	m := NewModel(p, 7)
	c := circuit.New(1)
	c.MeasureZ(0)
	f := pauliframe.New(1)
	out := m.RunNoisy(c, f)
	if out[0] != 1 {
		t.Error("readout error at p=1 must flip the outcome")
	}
}

func TestIdleError(t *testing.T) {
	p := iontrap.Uniform(0, 0)
	p.Fail[iontrap.OpMemory] = 1
	m := NewModel(p, 8)
	c := circuit.New(1)
	c.Idle(0)
	f := pauliframe.New(1)
	m.RunNoisy(c, f)
	if f.IsClean() {
		t.Error("idle error at p=1 must dirty the frame")
	}
}

func TestPrepClearsOldErrors(t *testing.T) {
	p := iontrap.Uniform(0, 0)
	m := NewModel(p, 9)
	c := circuit.New(1)
	c.Prep0(0).MeasureZ(0)
	f := pauliframe.New(1)
	f.InjectX(0) // stale error from previous use
	out := m.RunNoisy(c, f)
	if out[0] != 0 {
		t.Error("Prep0 should discard stale errors")
	}
}
