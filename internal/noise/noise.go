// Package noise implements the stochastic error models of the QLA study:
// depolarizing errors after every physical operation with the per-class
// probabilities of Table 1 (or sweep parameters), movement errors per cell,
// measurement readout flips and idle (memory) errors.
//
// Errors are injected into a pauliframe.Frame; the same model also drives
// the full tableau backend through sampled Pauli strings.
package noise

import (
	"math/rand/v2"

	"qla/internal/circuit"
	"qla/internal/iontrap"
	"qla/internal/pauliframe"
)

// Model samples errors according to a technology parameter set.
type Model struct {
	P   iontrap.Params
	Rng *rand.Rand

	// Injected counts by op class, for diagnostics and tests.
	Injected [iontrap.NumOpClasses]int64

	// Deterministic fault injection for fault-tolerance verification:
	// when ForceEnabled, every site samples no error except the site
	// whose sequence number equals ForceSite, which injects the
	// class-specific error variant indexed by ForceChoice. Sites are
	// numbered in execution order from zero (see Sites()).
	ForceEnabled bool
	ForceSite    int64
	ForceChoice  int

	siteCounter int64
}

// NewModel returns a model over params p with a deterministic seed.
func NewModel(p iontrap.Params, seed uint64) *Model {
	return &Model{P: p, Rng: rand.New(rand.NewPCG(seed, seed^0xa5a5a5a5deadbeef))}
}

// Sites returns the number of potential error sites visited so far.
func (m *Model) Sites() int64 { return m.siteCounter }

// site implements one potential error site with nChoices distinct error
// variants: it reports whether to inject and which variant.
func (m *Model) site(p float64, nChoices int) (bool, int) {
	idx := m.siteCounter
	m.siteCounter++
	if m.ForceEnabled {
		if idx == m.ForceSite {
			return true, m.ForceChoice % nChoices
		}
		return false, 0
	}
	if !m.Flip(p) {
		return false, 0
	}
	if nChoices <= 1 {
		return true, 0
	}
	return true, m.Rng.IntN(nChoices)
}

// Flip returns true with probability p.
func (m *Model) Flip(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return m.Rng.Float64() < p
}

// Depolarize1 injects a uniformly random non-identity Pauli on q with
// probability p.
func (m *Model) Depolarize1(f *pauliframe.Frame, q int, p float64) bool {
	hit, k := m.site(p, 3)
	if !hit {
		return false
	}
	f.Inject(q, k)
	return true
}

// Depolarize2 injects a uniformly random non-identity two-qubit Pauli on
// (a,b) with probability p (one of the 15 non-II pairs).
func (m *Model) Depolarize2(f *pauliframe.Frame, a, b int, p float64) bool {
	hit, k := m.site(p, 15)
	if !hit {
		return false
	}
	k++ // 1..15, base-4 digits (pa, pb), not both I
	pa, pb := k/4, k%4
	if pa > 0 {
		f.Inject(a, pa-1)
	}
	if pb > 0 {
		f.Inject(b, pb-1)
	}
	return true
}

// GateError injects the post-gate error for a 1-qubit gate on q.
func (m *Model) GateError1(f *pauliframe.Frame, q int) {
	if m.Depolarize1(f, q, m.P.Fail[iontrap.OpSingle]) {
		m.Injected[iontrap.OpSingle]++
	}
}

// GateError2 injects the post-gate error for a 2-qubit gate on (a,b).
func (m *Model) GateError2(f *pauliframe.Frame, a, b int) {
	if m.Depolarize2(f, a, b, m.P.Fail[iontrap.OpDouble]) {
		m.Injected[iontrap.OpDouble]++
	}
}

// PrepError injects a preparation error: the fresh qubit comes up flipped.
func (m *Model) PrepError(f *pauliframe.Frame, q int) {
	if hit, _ := m.site(m.P.Fail[iontrap.OpPrep], 1); hit {
		f.InjectX(q)
		m.Injected[iontrap.OpPrep]++
	}
}

// MeasureFlip samples a readout error: the classical outcome is flipped
// with the measurement failure probability.
func (m *Model) MeasureFlip() int {
	if hit, _ := m.site(m.P.Fail[iontrap.OpMeasure], 1); hit {
		m.Injected[iontrap.OpMeasure]++
		return 1
	}
	return 0
}

// MoveError injects the error of shuttling q across cells and corners,
// composing the per-cell (and per-corner) failure probabilities.
func (m *Model) MoveError(f *pauliframe.Frame, q, cells, corners int) {
	p := m.P.MoveFailure(cells, corners)
	hit, k := m.site(p, 3)
	if hit {
		f.Inject(q, k)
		m.Injected[iontrap.OpMoveCell]++
	}
}

// IdleError injects a memory error for one idle slot on q.
func (m *Model) IdleError(f *pauliframe.Frame, q int) {
	hit, k := m.site(m.P.Fail[iontrap.OpMemory], 3)
	if hit {
		f.Inject(q, k)
		m.Injected[iontrap.OpMemory]++
	}
}

// TotalInjected returns the total number of errors injected so far.
func (m *Model) TotalInjected() int64 {
	var t int64
	for _, v := range m.Injected {
		t += v
	}
	return t
}

// RunNoisy executes a circuit on a Pauli frame with errors injected after
// every operation, returning the measurement outcome flips in program
// order. Gates act on the frame by conjugation; see the pauliframe package
// for the reference-frame measurement semantics.
func (m *Model) RunNoisy(c *circuit.Circuit, f *pauliframe.Frame) []int {
	if f.N() < c.N {
		panic("noise: frame too small for circuit")
	}
	var out []int
	for _, op := range c.Ops {
		switch op.Type {
		case circuit.Prep0, circuit.PrepPlus:
			f.Reset(op.Q[0])
			m.PrepError(f, op.Q[0])
		case circuit.H:
			f.H(op.Q[0])
			m.GateError1(f, op.Q[0])
		case circuit.S:
			f.S(op.Q[0])
			m.GateError1(f, op.Q[0])
		case circuit.Sdg:
			f.Sdg(op.Q[0])
			m.GateError1(f, op.Q[0])
		case circuit.X, circuit.Y, circuit.Z:
			// Pauli gates commute with the frame up to sign; they only
			// contribute their error.
			m.GateError1(f, op.Q[0])
		case circuit.CNOT:
			f.CNOT(op.Q[0], op.Q[1])
			m.GateError2(f, op.Q[0], op.Q[1])
		case circuit.CZ:
			f.CZ(op.Q[0], op.Q[1])
			m.GateError2(f, op.Q[0], op.Q[1])
		case circuit.SWAP:
			f.SWAP(op.Q[0], op.Q[1])
			m.GateError2(f, op.Q[0], op.Q[1])
		case circuit.MeasureZ:
			out = append(out, f.MeasureZ(op.Q[0])^m.MeasureFlip())
		case circuit.MeasureX:
			out = append(out, f.MeasureX(op.Q[0])^m.MeasureFlip())
		case circuit.Move:
			m.MoveError(f, op.Q[0], op.Cells, op.Corners)
		case circuit.Cool:
			// Cooling is error-free in Table 1.
		case circuit.Idle:
			m.IdleError(f, op.Q[0])
		}
	}
	return out
}
