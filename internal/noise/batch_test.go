package noise

import (
	"math"
	"math/bits"
	"testing"

	"qla/internal/iontrap"
	"qla/internal/pauliframe"
)

// TestMaskSamplerRate: the geometric-skipping sampler must produce
// per-lane Bernoulli(p) hits at the right rate.
func TestMaskSamplerRate(t *testing.T) {
	for _, p := range []float64{1e-3, 0.01, 0.1, 0.5} {
		m := NewBatchModel(iontrap.Uniform(0, 0), 42)
		const sites = 20000
		hits := 0
		for i := 0; i < sites; i++ {
			hits += bits.OnesCount64(m.site(p, ^uint64(0)))
		}
		n := float64(sites * 64)
		mean := p * n
		sigma := math.Sqrt(n * p * (1 - p))
		if math.Abs(float64(hits)-mean) > 6*sigma {
			t.Errorf("p=%g: %d hits, want %.0f ± %.0f", p, hits, mean, 6*sigma)
		}
	}
}

// TestMaskSamplerEdges: p=0 never hits, p=1 always hits, and the
// execution mask restricts hits.
func TestMaskSamplerEdges(t *testing.T) {
	m := NewBatchModel(iontrap.Uniform(0, 0), 1)
	for i := 0; i < 100; i++ {
		if m.site(0, ^uint64(0)) != 0 {
			t.Fatal("p=0 must never hit")
		}
		if m.site(1, ^uint64(0)) != ^uint64(0) {
			t.Fatal("p=1 must always hit")
		}
		if m.site(0.7, 0xFF)&^uint64(0xFF) != 0 {
			t.Fatal("hits escaped the execution mask")
		}
	}
}

// TestBatchModelDeterminism: identical seeds must reproduce identical
// hit masks.
func TestBatchModelDeterminism(t *testing.T) {
	run := func() []uint64 {
		m := NewBatchModel(iontrap.Uniform(0.01, 1e-6), 99)
		var out []uint64
		for i := 0; i < 500; i++ {
			out = append(out, m.site(0.01, ^uint64(0)))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("site %d: masks diverge with identical seeds", i)
		}
	}
}

// TestBatchDepolarize1Variants: every Pauli variant appears, lane-wise,
// and X+Z planes stay consistent (Y sets both).
func TestBatchDepolarize1Variants(t *testing.T) {
	m := NewBatchModel(iontrap.Uniform(0, 0), 7)
	f := pauliframe.NewBatch(1)
	var sawX, sawZ, sawY bool
	for i := 0; i < 2000; i++ {
		f.Clear()
		m.Depolarize1(f, 0, 0.5, ^uint64(0))
		x, z := f.XBits(0), f.ZBits(0)
		if x&^z != 0 {
			sawX = true
		}
		if z&^x != 0 {
			sawZ = true
		}
		if x&z != 0 {
			sawY = true
		}
	}
	if !sawX || !sawZ || !sawY {
		t.Errorf("missing depolarizing variant: X=%v Y=%v Z=%v", sawX, sawY, sawZ)
	}
}

// TestBatchDepolarize2Variants: all 15 two-qubit variants occur.
func TestBatchDepolarize2Variants(t *testing.T) {
	m := NewBatchModel(iontrap.Uniform(0, 0), 13)
	f := pauliframe.NewBatch(2)
	seen := map[int]bool{}
	for i := 0; i < 4000 && len(seen) < 15; i++ {
		f.Clear()
		m.Depolarize2(f, 0, 1, 0.5, 1) // single lane isolates the variant
		pa := int(f.XBits(0)&1) | int(f.ZBits(0)&1)<<1
		pb := int(f.XBits(1)&1) | int(f.ZBits(1)&1)<<1
		if pa != 0 || pb != 0 {
			seen[pa<<2|pb] = true
		}
	}
	if len(seen) != 15 {
		t.Errorf("saw %d of 15 two-qubit Pauli variants", len(seen))
	}
}

// TestBatchForceMode mirrors the scalar deterministic-fault contract:
// exactly the forced site injects, into exactly the forced lane, and
// only when that lane is in the execution mask.
func TestBatchForceMode(t *testing.T) {
	m := NewBatchModel(iontrap.Uniform(0.5, 0.5), 3)
	m.ForceEnabled = true
	m.ForceSite = 5
	m.ForceChoice = 2 // Z for 1-qubit sites
	m.ForceLane = 17
	f := pauliframe.NewBatch(1)
	for i := 0; i < 10; i++ {
		m.Depolarize1(f, 0, 0.5, ^uint64(0))
	}
	if f.XBits(0) != 0 || f.ZBits(0) != 1<<17 {
		t.Fatalf("forced fault landed wrong: x=%x z=%x", f.XBits(0), f.ZBits(0))
	}
	if m.Sites() != 10 {
		t.Fatalf("site counter = %d, want 10", m.Sites())
	}

	// Same forced site, but the forced lane is masked out: no injection.
	m2 := NewBatchModel(iontrap.Uniform(0.5, 0.5), 3)
	m2.ForceEnabled = true
	m2.ForceSite = 0
	m2.ForceLane = 17
	f2 := pauliframe.NewBatch(1)
	m2.Depolarize1(f2, 0, 0.5, ^(uint64(1) << 17))
	if f2.DirtyLanes() != 0 {
		t.Fatal("forced fault must respect the execution mask")
	}
}

// TestBatchInjectedLedger: lane-hit counts land in the right op class.
func TestBatchInjectedLedger(t *testing.T) {
	p := iontrap.Uniform(0.5, 0.01)
	m := NewBatchModel(p, 21)
	f := pauliframe.NewBatch(2)
	m.GateError1(f, 0, ^uint64(0))
	m.GateError2(f, 0, 1, ^uint64(0))
	m.PrepError(f, 0, ^uint64(0))
	m.MeasureFlips(^uint64(0))
	m.MoveError(f, 0, 3, 1, ^uint64(0))
	for _, c := range []iontrap.OpClass{iontrap.OpSingle, iontrap.OpDouble, iontrap.OpPrep, iontrap.OpMeasure, iontrap.OpMoveCell} {
		if m.Injected[c] == 0 {
			t.Errorf("op class %v recorded no injections at p=0.5", c)
		}
	}
	if m.TotalInjected() == 0 {
		t.Error("total injected must be positive")
	}
	if m.Sites() != 5 {
		t.Errorf("sites = %d, want 5", m.Sites())
	}
}

// TestBatchModelReseedMatchesFresh: a reseeded model visiting one
// probability must reproduce a freshly constructed model's hit masks
// exactly — the property that lets block loops reuse one model instead
// of allocating one per 64-trial block.
func TestBatchModelReseedMatchesFresh(t *testing.T) {
	const p = 0.03
	reused := NewBatchModel(iontrap.Params{}, 0)
	for _, seed := range []uint64{1, 99, 12345} {
		fresh := NewBatchModel(iontrap.Params{}, seed)
		reused.Reseed(seed)
		ff := pauliframe.NewBatch(8)
		rf := pauliframe.NewBatch(8)
		for q := 0; q < 8; q++ {
			fresh.Depolarize1(ff, q, p, ^uint64(0))
			reused.Depolarize1(rf, q, p, ^uint64(0))
		}
		for q := 0; q < 8; q++ {
			if ff.XBits(q) != rf.XBits(q) || ff.ZBits(q) != rf.ZBits(q) {
				t.Fatalf("seed %d qubit %d: reseeded model diverged from fresh", seed, q)
			}
		}
		if fresh.TotalInjected() != reused.TotalInjected() {
			t.Fatalf("seed %d: injected %d vs %d", seed, fresh.TotalInjected(), reused.TotalInjected())
		}
	}
}
