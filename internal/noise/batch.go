package noise

import (
	"math"
	"math/bits"
	"math/rand/v2"

	"qla/internal/iontrap"
	"qla/internal/pauliframe"
)

// maskSampler draws 64-lane Bernoulli(p) hit masks. Instead of one
// uniform draw per (site, lane) pair it flattens the pairs into one
// stream and jumps between hits with geometric gaps — the standard
// skip-ahead trick — so a site costs O(1) plus O(actual hits). At the
// Figure-7 error rates (p ~ 1e-3) that replaces 64 RNG draws per site
// with ~0.06 on average.
type maskSampler struct {
	p      float64
	invLog float64 // 1 / log1p(-p), negative
	skip   int64   // lanes to skip before the next hit
}

func newMaskSampler(p float64, rng *rand.Rand) *maskSampler {
	s := &maskSampler{p: p}
	if p > 0 && p < 1 {
		s.invLog = 1 / math.Log1p(-p)
		s.skip = s.gap(rng)
	}
	return s
}

// gap samples the number of misses before the next hit (Geometric(p)).
func (s *maskSampler) gap(rng *rand.Rand) int64 {
	u := rng.Float64()
	if u == 0 {
		return 1 << 40 // log(0) would overflow the conversion; cap the gap
	}
	g := math.Log(u) * s.invLog
	if g >= 1<<40 {
		return 1 << 40
	}
	return int64(g)
}

// mask consumes one site's worth (64 lanes) of the Bernoulli stream and
// returns its hit mask.
func (s *maskSampler) mask(rng *rand.Rand) uint64 {
	if s.p <= 0 {
		return 0
	}
	if s.p >= 1 {
		return ^uint64(0)
	}
	var m uint64
	for s.skip < pauliframe.Lanes {
		m |= 1 << uint64(s.skip)
		s.skip += 1 + s.gap(rng)
	}
	s.skip -= pauliframe.Lanes
	return m
}

// BatchModel samples errors for 64 independent trials at once,
// injecting them lane-wise into a pauliframe.Batch. Each error site
// draws one Bernoulli hit mask over the lanes (via maskSampler's
// geometric skipping) and only the hit lanes pay for Pauli-variant
// selection. Masked injection — every sampler method takes the lane
// mask of trials that actually execute the operation — keeps per-lane
// control flow (ancilla retries, syndrome re-extraction) exact: lanes
// outside the mask see no error and no frame change.
//
// The deterministic-fault mode mirrors Model's: when ForceEnabled, no
// randomness is consumed at all; the site whose sequence number equals
// ForceSite injects error variant ForceChoice into lane ForceLane
// (when that lane is in the site's execution mask) and every other
// site is silent. Because sites are numbered once per batched site
// visit, a batch in which only ForceLane's control flow deviates
// visits sites in exactly the scalar backend's order — the property
// the batch-vs-scalar single-fault equivalence tests rely on.
type BatchModel struct {
	P   iontrap.Params
	Rng *rand.Rand

	// Injected counts lane-hits by op class, for diagnostics and tests.
	Injected [iontrap.NumOpClasses]int64

	// Deterministic fault injection (see Model).
	ForceEnabled bool
	ForceSite    int64
	ForceChoice  int
	ForceLane    int

	siteCounter int64
	pcg         *rand.PCG
	// samplers caches one skip-ahead state per distinct probability
	// (gate/prep/measure classes plus the few move-path compositions);
	// a linear scan beats a map at these counts.
	samplers []*maskSampler
	// movePs caches MoveFailure(cells, corners) per path shape: the
	// threshold schedule uses two shapes millions of times each.
	movePs []moveP
}

type moveP struct {
	cells, corners int
	p              float64
}

// NewBatchModel returns a batch model over params p with a
// deterministic seed.
func NewBatchModel(p iontrap.Params, seed uint64) *BatchModel {
	pcg := rand.NewPCG(seed, seed^0xa5a5a5a5deadbeef)
	return &BatchModel{P: p, Rng: rand.New(pcg), pcg: pcg}
}

// Reseed rewinds the model to the state NewBatchModel(P, seed) would
// produce, reusing its allocations: the RNG stream restarts from the
// seed, the site counter and injection statistics zero, and every
// cached sampler re-derives its skip-ahead state from the fresh
// stream. Callers running many independently seeded blocks through one
// model (one block per Reseed) avoid a model + RNG + sampler
// allocation per block. The fresh-model equivalence is exact when the
// model visits a single probability (each block then draws the skip
// state first, exactly as a fresh model's first site would); with
// several cached probabilities the skip states are re-derived in cache
// order rather than first-visit order, which is still a valid
// deterministic stream, just not the fresh model's.
func (m *BatchModel) Reseed(seed uint64) {
	m.pcg.Seed(seed, seed^0xa5a5a5a5deadbeef)
	m.siteCounter = 0
	m.Injected = [iontrap.NumOpClasses]int64{}
	for _, s := range m.samplers {
		if s.p > 0 && s.p < 1 {
			s.skip = s.gap(m.Rng)
		}
	}
}

// Sites returns the number of potential error sites visited so far.
func (m *BatchModel) Sites() int64 { return m.siteCounter }

func (m *BatchModel) sampler(p float64) *maskSampler {
	for _, s := range m.samplers {
		if s.p == p {
			return s
		}
	}
	s := newMaskSampler(p, m.Rng)
	m.samplers = append(m.samplers, s)
	return s
}

// site implements one 64-lane error site: the lane mask of trials that
// inject, already restricted to the execution mask.
func (m *BatchModel) site(p float64, mask uint64) uint64 {
	idx := m.siteCounter
	m.siteCounter++
	if m.ForceEnabled {
		if idx == m.ForceSite {
			return 1 << uint(m.ForceLane) & mask
		}
		return 0
	}
	if p <= 0 {
		return 0
	}
	return m.sampler(p).mask(m.Rng) & mask
}

// forced reports whether a hit in force mode must use ForceChoice.
func (m *BatchModel) forced() bool { return m.ForceEnabled }

// Depolarize1 injects a uniformly random non-identity Pauli on q, per
// hit lane, with probability p.
func (m *BatchModel) Depolarize1(f *pauliframe.Batch, q int, p float64, mask uint64) int64 {
	hits := m.site(p, mask)
	if hits == 0 {
		return 0
	}
	var xm, ym, zm uint64
	for h := hits; h != 0; h &= h - 1 {
		lane := uint64(1) << uint(bits.TrailingZeros64(h))
		k := m.ForceChoice % 3
		if !m.forced() {
			k = m.Rng.IntN(3)
		}
		switch k {
		case 0:
			xm |= lane
		case 1:
			ym |= lane
		case 2:
			zm |= lane
		}
	}
	f.InjectX(q, xm|ym)
	f.InjectZ(q, zm|ym)
	return int64(bits.OnesCount64(hits))
}

// Depolarize2 injects a uniformly random non-identity two-qubit Pauli
// on (a,b), per hit lane, with probability p (one of the 15 non-II
// pairs, same indexing as Model.Depolarize2).
func (m *BatchModel) Depolarize2(f *pauliframe.Batch, a, b int, p float64, mask uint64) int64 {
	hits := m.site(p, mask)
	if hits == 0 {
		return 0
	}
	var ax, az, bx, bz uint64
	for h := hits; h != 0; h &= h - 1 {
		lane := uint64(1) << uint(bits.TrailingZeros64(h))
		k := m.ForceChoice % 15
		if !m.forced() {
			k = m.Rng.IntN(15)
		}
		k++ // 1..15, base-4 digits (pa, pb), not both I
		if pa := k / 4; pa > 0 {
			if pa != 3 { // X or Y carry an X component
				ax |= lane
			}
			if pa != 1 { // Y or Z carry a Z component
				az |= lane
			}
		}
		if pb := k % 4; pb > 0 {
			if pb != 3 {
				bx |= lane
			}
			if pb != 1 {
				bz |= lane
			}
		}
	}
	f.InjectX(a, ax)
	f.InjectZ(a, az)
	f.InjectX(b, bx)
	f.InjectZ(b, bz)
	return int64(bits.OnesCount64(hits))
}

// GateError1 injects the post-gate error for a 1-qubit gate on q in the
// masked lanes.
func (m *BatchModel) GateError1(f *pauliframe.Batch, q int, mask uint64) {
	m.Injected[iontrap.OpSingle] += m.Depolarize1(f, q, m.P.Fail[iontrap.OpSingle], mask)
}

// GateError2 injects the post-gate error for a 2-qubit gate on (a,b) in
// the masked lanes.
func (m *BatchModel) GateError2(f *pauliframe.Batch, a, b int, mask uint64) {
	m.Injected[iontrap.OpDouble] += m.Depolarize2(f, a, b, m.P.Fail[iontrap.OpDouble], mask)
}

// PrepError injects preparation errors: hit lanes come up flipped.
func (m *BatchModel) PrepError(f *pauliframe.Batch, q int, mask uint64) {
	hits := m.site(m.P.Fail[iontrap.OpPrep], mask)
	if hits != 0 {
		f.InjectX(q, hits)
		m.Injected[iontrap.OpPrep] += int64(bits.OnesCount64(hits))
	}
}

// MeasureFlips samples readout errors for the masked lanes, returning
// the lane mask of flipped classical outcomes.
func (m *BatchModel) MeasureFlips(mask uint64) uint64 {
	hits := m.site(m.P.Fail[iontrap.OpMeasure], mask)
	m.Injected[iontrap.OpMeasure] += int64(bits.OnesCount64(hits))
	return hits
}

// MoveError injects the error of shuttling q across cells and corners
// in the masked lanes.
func (m *BatchModel) MoveError(f *pauliframe.Batch, q, cells, corners int, mask uint64) {
	m.Injected[iontrap.OpMoveCell] += m.Depolarize1(f, q, m.moveFailure(cells, corners), mask)
}

func (m *BatchModel) moveFailure(cells, corners int) float64 {
	for _, c := range m.movePs {
		if c.cells == cells && c.corners == corners {
			return c.p
		}
	}
	p := m.P.MoveFailure(cells, corners)
	m.movePs = append(m.movePs, moveP{cells: cells, corners: corners, p: p})
	return p
}

// IdleError injects memory errors for one idle slot on q.
func (m *BatchModel) IdleError(f *pauliframe.Batch, q int, mask uint64) {
	m.Injected[iontrap.OpMemory] += m.Depolarize1(f, q, m.P.Fail[iontrap.OpMemory], mask)
}

// TotalInjected returns the total number of lane-errors injected.
func (m *BatchModel) TotalInjected() int64 {
	var t int64
	for _, v := range m.Injected {
		t += v
	}
	return t
}
