// Package faultinject is a test-only chaos seam for the QLA serving
// stack. The sweep runner (and anything else that executes
// content-addressed work) accepts an optional hook invoked with the
// spec hash before each execution attempt; an Injector built from a
// handful of Rules makes chosen attempts fail, hang, or panic — on the
// Nth matching call, for a bounded (or unbounded) number of calls —
// so every recovery path (retry, per-point timeout, panic conversion,
// journal replay) has a deterministic test driving it. Production
// binaries never construct an Injector; the hook field is simply nil.
package faultinject

import (
	"context"
	"fmt"
	"strings"
	"sync"
)

// Mode is what a firing rule does to the attempt.
type Mode string

const (
	// Fail returns an *Error from the hook.
	Fail Mode = "fail"
	// Hang blocks until the attempt's context is done, then returns its
	// error — the shape of a wedged engine run, seen by callers as a
	// per-point timeout.
	Hang Mode = "hang"
	// Panic panics from the hook — the shape of a crashing experiment
	// body escaping into the runner.
	Panic Mode = "panic"
)

// Rule arms one fault. The zero Field values mean: match every hash,
// fire on the first matching call, fire once, mode Fail.
type Rule struct {
	// HashPrefix selects the runs the rule applies to ("" = all).
	HashPrefix string
	// Nth is the 1-based matching call the rule first fires on (0 = 1):
	// Nth=3 lets two calls through and faults the third.
	Nth int
	// Times is how many consecutive matching calls fire once armed
	// (0 = 1, negative = every call from Nth on).
	Times int
	// Mode is the fault flavor; the zero value is Fail.
	Mode Mode
	// Permanent marks Fail errors as non-retryable (Error.Permanent
	// reports it), modeling a deterministic per-spec failure rather
	// than a transient one.
	Permanent bool
}

// Error is the failure Fail-mode rules inject.
type Error struct {
	// Hash is the spec hash of the faulted call; Call its per-rule
	// match ordinal.
	Hash string
	Call int
	// Perm mirrors the rule's Permanent flag.
	Perm bool
}

func (e *Error) Error() string {
	kind := "transient"
	if e.Perm {
		kind = "permanent"
	}
	return fmt.Sprintf("faultinject: injected %s failure (call %d, spec %s)", kind, e.Call, e.Hash)
}

// Permanent reports whether the injected failure models a
// deterministic, non-retryable error. The sweep runner's failure
// classification consults this interface.
func (e *Error) Permanent() bool { return e.Perm }

type ruleState struct {
	Rule
	seen int // matching calls so far
}

// Injector evaluates Rules against a stream of hook calls. Construct
// with New; an Injector is safe for concurrent use, and a nil
// *Injector injects nothing.
type Injector struct {
	mu    sync.Mutex
	rules []*ruleState
	calls int
	fired int
}

// New builds an Injector from rules, normalizing zero fields.
func New(rules ...Rule) *Injector {
	in := &Injector{}
	for _, r := range rules {
		if r.Nth <= 0 {
			r.Nth = 1
		}
		if r.Times == 0 {
			r.Times = 1
		}
		if r.Mode == "" {
			r.Mode = Fail
		}
		in.rules = append(in.rules, &ruleState{Rule: r})
	}
	return in
}

// Check is the hook body: it evaluates hash against the rules and
// performs the first firing rule's fault. With no firing rule it
// returns nil and the real work proceeds.
func (in *Injector) Check(ctx context.Context, hash string) error {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	in.calls++
	var hit *ruleState
	var call int
	for _, r := range in.rules {
		if !strings.HasPrefix(hash, r.HashPrefix) {
			continue
		}
		r.seen++
		if hit != nil {
			continue // later rules still count their matches
		}
		if r.seen >= r.Nth && (r.Times < 0 || r.seen < r.Nth+r.Times) {
			hit, call = r, r.seen
		}
	}
	if hit != nil {
		in.fired++
	}
	in.mu.Unlock()
	if hit == nil {
		return nil
	}
	switch hit.Mode {
	case Hang:
		<-ctx.Done()
		return ctx.Err()
	case Panic:
		panic(fmt.Sprintf("faultinject: injected panic (call %d, spec %s)", call, hash))
	default:
		return &Error{Hash: hash, Call: call, Perm: hit.Permanent}
	}
}

// Hook adapts the Injector to the plain function shape runners accept,
// keeping them free of any faultinject import.
func (in *Injector) Hook() func(ctx context.Context, hash string) error {
	return in.Check
}

// Calls returns how many hook calls the Injector has evaluated; Fired
// how many of them it faulted.
func (in *Injector) Calls() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.calls
}

// Fired returns the number of injected faults so far.
func (in *Injector) Fired() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.fired
}
