package faultinject

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

func TestNthAndTimes(t *testing.T) {
	in := New(Rule{Nth: 2, Times: 2})
	ctx := context.Background()
	if err := in.Check(ctx, "aaa"); err != nil {
		t.Fatalf("call 1 should pass, got %v", err)
	}
	for call := 2; call <= 3; call++ {
		err := in.Check(ctx, "aaa")
		var fe *Error
		if !errors.As(err, &fe) {
			t.Fatalf("call %d: want *Error, got %v", call, err)
		}
		if fe.Call != call || fe.Permanent() {
			t.Fatalf("call %d: unexpected error %+v", call, fe)
		}
	}
	if err := in.Check(ctx, "aaa"); err != nil {
		t.Fatalf("call 4 should pass again, got %v", err)
	}
	if in.Calls() != 4 || in.Fired() != 2 {
		t.Fatalf("calls=%d fired=%d, want 4/2", in.Calls(), in.Fired())
	}
}

func TestHashPrefixSelects(t *testing.T) {
	in := New(Rule{HashPrefix: "beef", Times: -1})
	ctx := context.Background()
	if err := in.Check(ctx, "cafe0000"); err != nil {
		t.Fatalf("non-matching hash faulted: %v", err)
	}
	if err := in.Check(ctx, "beef0000"); err == nil {
		t.Fatal("matching hash did not fault")
	}
	if err := in.Check(ctx, "beef0001"); err == nil {
		t.Fatal("Times=-1 rule should keep firing")
	}
}

func TestPermanentFlag(t *testing.T) {
	err := New(Rule{Permanent: true}).Check(context.Background(), "x")
	var p interface{ Permanent() bool }
	if !errors.As(err, &p) || !p.Permanent() {
		t.Fatalf("want permanent error, got %v", err)
	}
}

func TestHangRespectsContext(t *testing.T) {
	in := New(Rule{Mode: Hang})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := in.Check(ctx, "x")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("hang did not release on context done")
	}
}

func TestPanicMode(t *testing.T) {
	in := New(Rule{Mode: Panic})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("no panic")
		}
		if !strings.Contains(r.(string), "injected panic") {
			t.Fatalf("unexpected panic value %v", r)
		}
	}()
	in.Check(context.Background(), "x")
}

func TestNilInjectorInjectsNothing(t *testing.T) {
	var in *Injector
	if err := in.Check(context.Background(), "x"); err != nil {
		t.Fatalf("nil injector faulted: %v", err)
	}
}
