// Package jobs is the in-process async job manager of the QLA serving
// layer. A sweep over a machine grid can run for minutes — far past any
// sane HTTP request deadline — so the serving layer submits it here and
// returns immediately: Submit hands back a job keyed by a
// content-addressed ID (the canonical SweepSpec hash), the job runs
// detached from the submitting request, progress counters
// (done/total/cached/failed) stream to any number of subscribers (the
// SSE endpoint), and the finished result bytes stay retrievable until a
// TTL expires. The store is bounded: expired and oldest-finished jobs
// are evicted to admit new work, and submission fails cleanly when
// every stored job is still running. Because IDs are content
// addresses, re-submitting identical work while a job lives — running
// or finished — joins it instead of recomputing.
package jobs

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"qla/internal/obs"
)

// State is a job's lifecycle phase.
type State string

const (
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Finished reports whether the state is terminal.
func (s State) Finished() bool { return s != StateRunning }

// Progress carries a job's monotonic completion counters.
type Progress struct {
	Total  int `json:"total"`
	Done   int `json:"done"`
	Cached int `json:"cached"`
	Failed int `json:"failed"`
	// Retries counts extra per-point attempts the retry policy spent.
	Retries int `json:"retries,omitempty"`
	// Deferred counts fleet-gate deferrals: probes parked because
	// another replica held a point's lease. Done still counts every
	// point exactly once whichever replica computed it — completions
	// aggregate through the shared cache, not through this counter.
	Deferred int `json:"deferred,omitempty"`
}

// Config sizes a Manager. The zero value is usable: 256 stored jobs,
// 256 MiB of retained result bytes, 1 h retention of finished jobs, no
// per-tenant quotas.
type Config struct {
	// MaxJobs bounds the job store, running and finished together.
	MaxJobs int
	// MaxResultBytes bounds the total result bytes retained across
	// finished jobs (the per-point payloads duplicate what the result
	// cache holds, so the store must carry its own budget; negative =
	// unbounded). When a settling job pushes the total over budget,
	// older finished jobs are evicted first; the newest result is
	// always kept even if it alone exceeds the budget — dropping it
	// would turn a completed sweep into an unretrievable one.
	MaxResultBytes int64
	// TTL is how long finished jobs stay retrievable.
	TTL time.Duration
	// TenantMaxJobs caps one tenant's concurrently running jobs;
	// submissions over the cap fail with a *QuotaError. Joining an
	// existing job never counts against the cap — content-addressed
	// dedup stays free. 0 = unlimited.
	TenantMaxJobs int
	// TenantMaxResultBytes bounds one tenant's retained result bytes:
	// when a settling job pushes its tenant over, that tenant's own
	// oldest finished jobs are evicted first (the settling job itself
	// is exempt, like the global budget). 0 = unlimited.
	TenantMaxResultBytes int64
}

// QuotaError reports a submission refused by a per-tenant quota. It is
// a client-pacing signal (HTTP 429), distinct from the store-full
// overload error.
type QuotaError struct {
	Tenant string
	Limit  string // which quota decided, e.g. "max-jobs"
	Max    int
}

func (e *QuotaError) Error() string {
	return fmt.Sprintf("jobs: tenant %q over %s quota (max %d)", e.Tenant, e.Limit, e.Max)
}

// Manager owns the job store. Construct with NewManager; one Manager is
// safe for any number of concurrent submitters, pollers and
// subscribers.
type Manager struct {
	cfg         Config
	mu          sync.Mutex
	jobs        map[string]*Job
	resultBytes int64
	// tenantRunning / tenantBytes are the per-tenant quota ledgers;
	// entries are pruned the moment they hit zero, so the maps stay
	// bounded by the live store, not by tenant-name cardinality.
	tenantRunning map[string]int
	tenantBytes   map[string]int64

	submitted, deduped, completed, failed, cancelled, evicted, quotaDenied atomic.Uint64
}

// Instrument registers the manager's instruments on reg: lifecycle
// event counters bridged from the existing atomics (single source of
// truth for /v1/stats too) and store occupancy gauges evaluated at
// scrape time.
func (m *Manager) Instrument(reg *obs.Registry) {
	if m == nil || reg == nil {
		return
	}
	bridge := func(c *atomic.Uint64) func() float64 {
		return func() float64 { return float64(c.Load()) }
	}
	event := func(e string) map[string]string { return map[string]string{"event": e} }
	help := "Job lifecycle events, by kind."
	reg.CounterFunc("qla_jobs_events_total", help, event("submitted"), bridge(&m.submitted))
	reg.CounterFunc("qla_jobs_events_total", help, event("deduped"), bridge(&m.deduped))
	reg.CounterFunc("qla_jobs_events_total", help, event("completed"), bridge(&m.completed))
	reg.CounterFunc("qla_jobs_events_total", help, event("failed"), bridge(&m.failed))
	reg.CounterFunc("qla_jobs_events_total", help, event("cancelled"), bridge(&m.cancelled))
	reg.CounterFunc("qla_jobs_events_total", help, event("evicted"), bridge(&m.evicted))
	reg.CounterFunc("qla_jobs_events_total", help, event("quota_denied"), bridge(&m.quotaDenied))
	reg.GaugeFunc("qla_jobs_running", "Jobs currently running.", nil, func() float64 {
		return float64(m.Stats().Running)
	})
	reg.GaugeFunc("qla_jobs_stored", "Jobs held in the store, running and finished.", nil, func() float64 {
		m.mu.Lock()
		defer m.mu.Unlock()
		return float64(len(m.jobs))
	})
	reg.GaugeFunc("qla_jobs_result_bytes", "Bytes of stored job results.", nil, func() float64 {
		m.mu.Lock()
		defer m.mu.Unlock()
		return float64(m.resultBytes)
	})
}

// NewManager builds a Manager.
func NewManager(cfg Config) *Manager {
	if cfg.MaxJobs <= 0 {
		cfg.MaxJobs = 256
	}
	if cfg.MaxResultBytes == 0 {
		cfg.MaxResultBytes = 256 << 20
	}
	if cfg.TTL <= 0 {
		cfg.TTL = time.Hour
	}
	return &Manager{
		cfg:           cfg,
		jobs:          make(map[string]*Job),
		tenantRunning: make(map[string]int),
		tenantBytes:   make(map[string]int64),
	}
}

// Job is one asynchronous execution. All methods are safe for
// concurrent use.
type Job struct {
	id      string
	tenant  string
	mgr     *Manager
	created time.Time
	cancel  context.CancelFunc

	mu              sync.Mutex
	state           State
	cancelRequested bool
	progress        Progress
	result          []byte
	charged         bool // result bytes counted against the store budget
	err             error
	finished        time.Time
	subs            map[chan struct{}]struct{}
}

// Snapshot is a point-in-time view of a job, JSON-shaped for the
// polling endpoint.
type Snapshot struct {
	ID             string    `json:"id"`
	Tenant         string    `json:"tenant,omitempty"`
	State          State     `json:"state"`
	Progress       Progress  `json:"progress"`
	Created        time.Time `json:"created"`
	ElapsedSeconds float64   `json:"elapsed_seconds"`
	Error          string    `json:"error,omitempty"`
}

// SubmitOptions qualifies a submission.
type SubmitOptions struct {
	// Tenant is the owning tenant; empty means no tenant accounting
	// (library callers). Quotas and stats are keyed on it.
	Tenant string
	// Total seeds the job's progress denominator.
	Total int
	// BypassQuota admits the job even over the tenant's concurrent-job
	// quota. The journal-replay path sets it: refusing durable work at
	// restart would silently drop it.
	BypassQuota bool
}

// Submit registers a job under id and starts run in its own goroutine,
// detached from the submitter (a disconnecting client must not kill a
// sweep other clients may be watching). If a job with the same id is
// already running, or done within the TTL, that job is returned with
// created=false and nothing new starts: IDs are content addresses, so
// identical work collapses. A failed or cancelled job does not block
// its address — re-submission evicts it and retries fresh. A full
// store of running jobs rejects the submission, and a tenant over its
// concurrent-job quota is refused with a *QuotaError.
//
// run receives a cancellable context (Cancel fires it) and a report
// callback for progress updates; its returned bytes become the job
// result. A nil error with the context cancelled still records the job
// as done — the work finished despite the cancel racing it.
func (m *Manager) Submit(id string, opts SubmitOptions, run func(ctx context.Context, report func(Progress)) ([]byte, error)) (j *Job, created bool, err error) {
	if id == "" {
		return nil, false, fmt.Errorf("jobs: empty job ID")
	}
	now := time.Now()
	m.mu.Lock()
	m.evictExpiredLocked(now)
	if j, ok := m.jobs[id]; ok {
		j.mu.Lock()
		alive := j.state == StateDone || (j.state == StateRunning && !j.cancelRequested)
		j.mu.Unlock()
		if alive {
			m.mu.Unlock()
			m.deduped.Add(1)
			return j, false, nil
		}
		// A failed or cancelled job must not squat on its content
		// address until the TTL: the whole point of re-submitting is to
		// retry, so the dead job makes way for a fresh one. A
		// cancel-requested job still draining counts as dead too — it
		// is destined for StateCancelled, and joining it would turn the
		// retry into a 410. Its goroutine settles harmlessly into the
		// evicted Job object.
		m.dropLocked(id, j)
	}
	if q := m.cfg.TenantMaxJobs; q > 0 && opts.Tenant != "" && !opts.BypassQuota &&
		m.tenantRunning[opts.Tenant] >= q {
		m.mu.Unlock()
		m.quotaDenied.Add(1)
		return nil, false, &QuotaError{Tenant: opts.Tenant, Limit: "max-jobs", Max: q}
	}
	if len(m.jobs) >= m.cfg.MaxJobs && !m.evictOldestFinishedLocked(nil) {
		m.mu.Unlock()
		return nil, false, fmt.Errorf("jobs: store full (%d jobs, all running)", m.cfg.MaxJobs)
	}
	ctx, cancel := context.WithCancel(context.Background())
	j = &Job{
		id:      id,
		tenant:  opts.Tenant,
		mgr:     m,
		created: now,
		cancel:  cancel,
		state:   StateRunning,
		progress: Progress{
			Total: opts.Total,
		},
		subs: make(map[chan struct{}]struct{}),
	}
	m.jobs[id] = j
	if j.tenant != "" {
		m.tenantRunning[j.tenant]++
	}
	m.mu.Unlock()
	m.submitted.Add(1)
	go j.execute(ctx, run)
	return j, true, nil
}

// Get returns the job stored under id.
func (m *Manager) Get(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.evictExpiredLocked(time.Now())
	j, ok := m.jobs[id]
	return j, ok
}

// dropLocked removes a job from the store, refunding any result bytes
// it had charged against the budget.
func (m *Manager) dropLocked(id string, j *Job) {
	delete(m.jobs, id)
	j.mu.Lock()
	if j.charged {
		n := int64(len(j.result))
		m.resultBytes -= n
		if j.tenant != "" {
			m.creditTenantBytesLocked(j.tenant, n)
		}
		j.charged = false
	}
	j.mu.Unlock()
	m.evicted.Add(1)
}

// creditTenantBytesLocked refunds n bytes to a tenant's ledger,
// pruning the entry at zero so the map stays bounded.
func (m *Manager) creditTenantBytesLocked(tenant string, n int64) {
	m.tenantBytes[tenant] -= n
	if m.tenantBytes[tenant] <= 0 {
		delete(m.tenantBytes, tenant)
	}
}

// noteSettled balances the Submit-time running increment; settle calls
// it exactly once per job, whether or not the job is still stored.
func (m *Manager) noteSettled(j *Job) {
	if j.tenant == "" {
		return
	}
	m.mu.Lock()
	m.tenantRunning[j.tenant]--
	if m.tenantRunning[j.tenant] <= 0 {
		delete(m.tenantRunning, j.tenant)
	}
	m.mu.Unlock()
}

// evictExpiredLocked drops finished jobs older than the TTL.
func (m *Manager) evictExpiredLocked(now time.Time) {
	for id, j := range m.jobs {
		j.mu.Lock()
		expired := j.state.Finished() && now.Sub(j.finished) > m.cfg.TTL
		j.mu.Unlock()
		if expired {
			m.dropLocked(id, j)
		}
	}
}

// evictOldestFinishedLocked drops the longest-finished job (other than
// keep, which may be nil) to make room, reporting whether it found a
// victim.
func (m *Manager) evictOldestFinishedLocked(keep *Job) bool {
	return m.evictOldestFinishedOfLocked("", keep)
}

// evictOldestFinishedOfLocked drops the longest-finished job belonging
// to tenant (any tenant when empty), sparing keep.
func (m *Manager) evictOldestFinishedOfLocked(tenant string, keep *Job) bool {
	var (
		victim    string
		victimJob *Job
		oldest    time.Time
	)
	for id, j := range m.jobs {
		if j == keep || (tenant != "" && j.tenant != tenant) {
			continue
		}
		j.mu.Lock()
		fin, at := j.state.Finished(), j.finished
		j.mu.Unlock()
		if fin && (victim == "" || at.Before(oldest)) {
			victim, victimJob, oldest = id, j, at
		}
	}
	if victim == "" {
		return false
	}
	m.dropLocked(victim, victimJob)
	return true
}

// noteResult charges a settled job's result bytes against the store
// budget, evicting older finished jobs until it holds. The settling
// job itself is exempt from eviction: even a result larger than the
// whole budget is kept, because dropping it would turn a completed
// sweep into an unretrievable one.
func (m *Manager) noteResult(j *Job) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if cur, ok := m.jobs[j.id]; !ok || cur != j {
		return // evicted before settling finished accounting
	}
	j.mu.Lock()
	n := int64(len(j.result))
	if j.charged || n == 0 {
		j.mu.Unlock()
		return
	}
	j.charged = true
	j.mu.Unlock()
	m.resultBytes += n
	if j.tenant != "" {
		m.tenantBytes[j.tenant] += n
	}
	// The tenant budget first: it evicts only the settling tenant's own
	// jobs, which also relieves the global total.
	if tmax := m.cfg.TenantMaxResultBytes; tmax > 0 && j.tenant != "" {
		overTenant := func() bool {
			if n > tmax {
				return m.tenantBytes[j.tenant]-n > tmax
			}
			return m.tenantBytes[j.tenant] > tmax
		}
		for overTenant() {
			if !m.evictOldestFinishedOfLocked(j.tenant, j) {
				break
			}
		}
	}
	max := m.cfg.MaxResultBytes
	if max < 0 {
		return
	}
	// When the settling result alone breaches the budget, no eviction
	// can satisfy it — destroying the other jobs' still-valid results
	// would gain nothing. Budget the others on their own instead, so
	// retained memory stays bounded by MaxResultBytes plus the one
	// oversized (and exempt) result.
	overBudget := func() bool {
		if n > max {
			return m.resultBytes-n > max
		}
		return m.resultBytes > max
	}
	for overBudget() {
		if !m.evictOldestFinishedLocked(j) {
			return
		}
	}
}

// execute runs the job body and records the terminal state. A panic
// escaping run must not strand a running job (pollers would wait
// forever); it is converted to a failure.
func (j *Job) execute(ctx context.Context, run func(ctx context.Context, report func(Progress)) ([]byte, error)) {
	defer j.cancel() // release the context's resources once settled
	completed := false
	defer func() {
		if completed {
			return
		}
		j.settle(nil, fmt.Errorf("jobs: job %s panicked: %v", j.id, recover()))
	}()
	res, err := run(ctx, j.report)
	completed = true
	j.settle(res, err)
}

// settle records the terminal state, wakes subscribers and charges the
// result against the manager's byte budget.
func (j *Job) settle(res []byte, err error) {
	j.mu.Lock()
	j.finished = time.Now()
	switch {
	case err == nil:
		j.state = StateDone
		j.result = res
		j.mgr.completed.Add(1)
	case j.cancelRequested && errors.Is(err, context.Canceled):
		j.state = StateCancelled
		j.err = err
		j.mgr.cancelled.Add(1)
	default:
		j.state = StateFailed
		j.err = err
		j.mgr.failed.Add(1)
	}
	j.wakeLocked()
	j.mu.Unlock()
	j.mgr.noteSettled(j)
	if err == nil {
		j.mgr.noteResult(j)
	}
}

// report is the progress callback handed to the job body. Updates are
// kept monotonic (a stale report never rolls Done backwards) and every
// update wakes the subscribers.
func (j *Job) report(p Progress) {
	j.mu.Lock()
	if p.Done >= j.progress.Done {
		j.progress = p
	}
	j.wakeLocked()
	j.mu.Unlock()
}

// wakeLocked nudges every subscriber (coalescing: a subscriber that is
// already flagged stays flagged).
func (j *Job) wakeLocked() {
	for ch := range j.subs {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
}

// ID returns the job's content-addressed identifier.
func (j *Job) ID() string { return j.id }

// Tenant returns the tenant the job was submitted under (empty for
// library submissions with no tenant accounting).
func (j *Job) Tenant() string { return j.tenant }

// Snapshot returns a point-in-time view of the job.
func (j *Job) Snapshot() Snapshot {
	j.mu.Lock()
	defer j.mu.Unlock()
	s := Snapshot{
		ID:       j.id,
		Tenant:   j.tenant,
		State:    j.state,
		Progress: j.progress,
		Created:  j.created,
	}
	if j.state.Finished() {
		s.ElapsedSeconds = j.finished.Sub(j.created).Seconds()
	} else {
		s.ElapsedSeconds = time.Since(j.created).Seconds()
	}
	if j.err != nil {
		s.Error = j.err.Error()
	}
	return s
}

// Result returns the stored result bytes together with the snapshot
// that qualifies them; the bytes are non-nil only in StateDone.
func (j *Job) Result() ([]byte, Snapshot) {
	snap := j.Snapshot()
	j.mu.Lock()
	res := j.result
	j.mu.Unlock()
	if snap.State != StateDone {
		return nil, snap
	}
	return res, snap
}

// Cancel requests cancellation of a running job (a no-op on a finished
// one) and returns the resulting snapshot. The job reaches
// StateCancelled only when its body returns the context's error.
func (j *Job) Cancel() Snapshot {
	j.mu.Lock()
	if !j.state.Finished() {
		j.cancelRequested = true
	}
	j.mu.Unlock()
	j.cancel()
	return j.Snapshot()
}

// Subscribe registers a wake channel: it receives (coalesced) signals
// whenever the job's progress or state changes. The caller reads the
// current Snapshot after each wake. stop unregisters; it must be
// called.
func (j *Job) Subscribe() (wake <-chan struct{}, stop func()) {
	ch := make(chan struct{}, 1)
	j.mu.Lock()
	j.subs[ch] = struct{}{}
	j.mu.Unlock()
	return ch, func() {
		j.mu.Lock()
		delete(j.subs, ch)
		j.mu.Unlock()
	}
}

// Stats is a point-in-time snapshot of the manager's counters.
type Stats struct {
	// Submitted counts jobs actually started; Deduped counts
	// submissions that joined an existing job instead.
	Submitted uint64 `json:"submitted"`
	Deduped   uint64 `json:"deduped"`
	// Completed, Failed and Cancelled count terminal outcomes.
	Completed uint64 `json:"completed"`
	Failed    uint64 `json:"failed"`
	Cancelled uint64 `json:"cancelled"`
	// Evicted counts jobs dropped by TTL or store pressure.
	Evicted uint64 `json:"evicted"`
	// QuotaDenied counts submissions refused by per-tenant quotas.
	QuotaDenied uint64 `json:"quota_denied"`
	// Running and Stored describe the current store; ResultBytes is the
	// retained result total counted against MaxResultBytes.
	Running     int   `json:"running"`
	Stored      int   `json:"stored"`
	ResultBytes int64 `json:"result_bytes"`
	// MaxJobs, MaxResultBytes and TTLSeconds echo the configuration.
	MaxJobs        int     `json:"max_jobs"`
	MaxResultBytes int64   `json:"max_result_bytes"`
	TTLSeconds     float64 `json:"ttl_seconds"`
}

// Stats returns a snapshot of the manager's counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	stored := len(m.jobs)
	resultBytes := m.resultBytes
	running := 0
	for _, j := range m.jobs {
		j.mu.Lock()
		if !j.state.Finished() {
			running++
		}
		j.mu.Unlock()
	}
	m.mu.Unlock()
	return Stats{
		Submitted:      m.submitted.Load(),
		Deduped:        m.deduped.Load(),
		Completed:      m.completed.Load(),
		Failed:         m.failed.Load(),
		Cancelled:      m.cancelled.Load(),
		Evicted:        m.evicted.Load(),
		QuotaDenied:    m.quotaDenied.Load(),
		Running:        running,
		Stored:         stored,
		ResultBytes:    resultBytes,
		MaxJobs:        m.cfg.MaxJobs,
		MaxResultBytes: m.cfg.MaxResultBytes,
		TTLSeconds:     m.cfg.TTL.Seconds(),
	}
}

// TenantStats is one tenant's slice of the job store.
type TenantStats struct {
	// Running counts the tenant's in-flight jobs (what TenantMaxJobs
	// caps); Stored counts all its jobs still retrievable.
	Running int `json:"jobs_running"`
	Stored  int `json:"jobs_stored"`
	// ResultBytes is the tenant's retained result total (what
	// TenantMaxResultBytes caps).
	ResultBytes int64 `json:"result_bytes"`
}

// Tenants returns the per-tenant store breakdown, keyed by tenant
// name. Tenants with no live jobs and no retained bytes do not appear.
func (m *Manager) Tenants() map[string]TenantStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]TenantStats)
	for _, j := range m.jobs {
		if j.tenant == "" {
			continue
		}
		ts := out[j.tenant]
		ts.Stored++
		j.mu.Lock()
		if !j.state.Finished() {
			ts.Running++
		}
		j.mu.Unlock()
		out[j.tenant] = ts
	}
	for tenant, n := range m.tenantBytes {
		ts := out[tenant]
		ts.ResultBytes = n
		out[tenant] = ts
	}
	return out
}
