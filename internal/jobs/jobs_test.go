package jobs

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// startGate returns a run function that blocks until release is called,
// then returns the given result.
func gated(result []byte, err error) (run func(context.Context, func(Progress)) ([]byte, error), release func()) {
	ch := make(chan struct{})
	var once sync.Once
	return func(ctx context.Context, report func(Progress)) ([]byte, error) {
		select {
		case <-ch:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return result, err
	}, func() { once.Do(func() { close(ch) }) }
}

// wait polls the job until its state is terminal.
func wait(t *testing.T, j *Job) Snapshot {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		snap := j.Snapshot()
		if snap.State.Finished() {
			return snap
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never finished: %+v", j.ID(), snap)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestLifecycle(t *testing.T) {
	m := NewManager(Config{})
	j, created, err := m.Submit("job-a", SubmitOptions{Total: 3}, func(ctx context.Context, report func(Progress)) ([]byte, error) {
		for i := 1; i <= 3; i++ {
			report(Progress{Total: 3, Done: i, Cached: i - 1})
		}
		return []byte(`{"ok":true}`), nil
	})
	if err != nil || !created {
		t.Fatalf("submit: created=%v err=%v", created, err)
	}
	snap := wait(t, j)
	if snap.State != StateDone || snap.Progress.Done != 3 || snap.Progress.Cached != 2 {
		t.Fatalf("snapshot %+v", snap)
	}
	if snap.ElapsedSeconds < 0 {
		t.Errorf("elapsed %f", snap.ElapsedSeconds)
	}
	res, rsnap := j.Result()
	if string(res) != `{"ok":true}` || rsnap.State != StateDone {
		t.Fatalf("result %q %+v", res, rsnap)
	}
	s := m.Stats()
	if s.Submitted != 1 || s.Completed != 1 || s.Running != 0 || s.Stored != 1 {
		t.Errorf("stats %+v", s)
	}
}

// TestContentAddressedDedup: submitting an existing ID joins the stored
// job — running or finished — and runs nothing new.
func TestContentAddressedDedup(t *testing.T) {
	m := NewManager(Config{})
	run, release := gated([]byte("r"), nil)
	j1, created, err := m.Submit("dup", SubmitOptions{Total: 1}, run)
	if err != nil || !created {
		t.Fatal(created, err)
	}
	boom := func(ctx context.Context, report func(Progress)) ([]byte, error) {
		t.Error("deduped submission ran anyway")
		return nil, nil
	}
	j2, created, err := m.Submit("dup", SubmitOptions{Total: 1}, boom)
	if err != nil || created || j2 != j1 {
		t.Fatalf("while running: created=%v err=%v same=%v", created, err, j2 == j1)
	}
	release()
	wait(t, j1)
	j3, created, err := m.Submit("dup", SubmitOptions{Total: 1}, boom)
	if err != nil || created || j3 != j1 {
		t.Fatalf("after done: created=%v err=%v same=%v", created, err, j3 == j1)
	}
	if s := m.Stats(); s.Submitted != 1 || s.Deduped != 2 {
		t.Errorf("stats %+v", s)
	}
}

// TestResubmitRetriesDeadJobs: a failed or cancelled job must not
// squat on its content address — re-submitting the same ID evicts it
// and runs fresh, while done and running jobs still dedup.
func TestResubmitRetriesDeadJobs(t *testing.T) {
	m := NewManager(Config{})
	jf, _, _ := m.Submit("retry", SubmitOptions{Total: 1}, func(ctx context.Context, report func(Progress)) ([]byte, error) {
		return nil, errors.New("transient")
	})
	wait(t, jf)
	jr, created, err := m.Submit("retry", SubmitOptions{Total: 1}, func(ctx context.Context, report func(Progress)) ([]byte, error) {
		return []byte("recovered"), nil
	})
	if err != nil || !created || jr == jf {
		t.Fatalf("failed job blocked its address: created=%v err=%v same=%v", created, err, jr == jf)
	}
	if snap := wait(t, jr); snap.State != StateDone {
		t.Fatalf("retry %+v", snap)
	}
	// Same for cancelled jobs.
	started := make(chan struct{})
	jc, _, _ := m.Submit("retry-cancel", SubmitOptions{Total: 1}, func(ctx context.Context, report func(Progress)) ([]byte, error) {
		close(started)
		<-ctx.Done()
		return nil, ctx.Err()
	})
	<-started
	jc.Cancel()
	wait(t, jc)
	if _, created, err := m.Submit("retry-cancel", SubmitOptions{Total: 1}, func(ctx context.Context, report func(Progress)) ([]byte, error) {
		return []byte("r"), nil
	}); err != nil || !created {
		t.Fatalf("cancelled job blocked its address: created=%v err=%v", created, err)
	}
	// And for a cancel-requested job still draining: it is destined for
	// StateCancelled, so a re-submission must not join it.
	drain := make(chan struct{})
	jd, _, _ := m.Submit("retry-draining", SubmitOptions{Total: 1}, func(ctx context.Context, report func(Progress)) ([]byte, error) {
		<-drain
		return nil, ctx.Err()
	})
	jd.Cancel() // the body ignores ctx until drain closes: still running
	jn, created, err := m.Submit("retry-draining", SubmitOptions{Total: 1}, func(ctx context.Context, report func(Progress)) ([]byte, error) {
		return []byte("r"), nil
	})
	if err != nil || !created || jn == jd {
		t.Fatalf("draining cancelled job blocked its address: created=%v err=%v same=%v", created, err, jn == jd)
	}
	close(drain)
	if snap := wait(t, jn); snap.State != StateDone {
		t.Fatalf("retry after draining cancel %+v", snap)
	}
	if s := m.Stats(); s.Evicted != 3 {
		t.Errorf("stats %+v", s)
	}
}

func TestFailureAndPanic(t *testing.T) {
	m := NewManager(Config{})
	jf, _, _ := m.Submit("fails", SubmitOptions{Total: 1}, func(ctx context.Context, report func(Progress)) ([]byte, error) {
		return nil, errors.New("the grid is haunted")
	})
	if snap := wait(t, jf); snap.State != StateFailed || !strings.Contains(snap.Error, "haunted") {
		t.Fatalf("snapshot %+v", snap)
	}
	if res, snap := jf.Result(); res != nil || snap.State != StateFailed {
		t.Fatalf("failed job leaked a result: %q %+v", res, snap)
	}
	jp, _, _ := m.Submit("panics", SubmitOptions{Total: 1}, func(ctx context.Context, report func(Progress)) ([]byte, error) {
		panic("boom")
	})
	if snap := wait(t, jp); snap.State != StateFailed || !strings.Contains(snap.Error, "panicked: boom") {
		t.Fatalf("snapshot %+v", snap)
	}
	if s := m.Stats(); s.Failed != 2 {
		t.Errorf("stats %+v", s)
	}
}

func TestCancel(t *testing.T) {
	m := NewManager(Config{})
	started := make(chan struct{})
	j, _, _ := m.Submit("cancel-me", SubmitOptions{Total: 1}, func(ctx context.Context, report func(Progress)) ([]byte, error) {
		close(started)
		<-ctx.Done()
		return nil, ctx.Err()
	})
	<-started
	j.Cancel()
	snap := wait(t, j)
	if snap.State != StateCancelled {
		t.Fatalf("snapshot %+v", snap)
	}
	// Cancel on a finished job is a no-op.
	if again := j.Cancel(); again.State != StateCancelled {
		t.Errorf("re-cancel %+v", again)
	}
	if s := m.Stats(); s.Cancelled != 1 {
		t.Errorf("stats %+v", s)
	}
}

// TestStoreBound: a full store evicts the oldest finished job to admit
// new work, and rejects cleanly when everything is still running.
func TestStoreBound(t *testing.T) {
	m := NewManager(Config{MaxJobs: 2})
	jDone, _, _ := m.Submit("finished", SubmitOptions{Total: 1}, func(ctx context.Context, report func(Progress)) ([]byte, error) {
		return []byte("r"), nil
	})
	wait(t, jDone)
	run1, release1 := gated(nil, nil)
	m.Submit("running-1", SubmitOptions{Total: 1}, run1)
	defer release1()

	// Third submission: the finished job is the victim.
	run2, release2 := gated(nil, nil)
	_, created, err := m.Submit("running-2", SubmitOptions{Total: 1}, run2)
	defer release2()
	if err != nil || !created {
		t.Fatalf("created=%v err=%v", created, err)
	}
	if _, ok := m.Get("finished"); ok {
		t.Error("finished job survived eviction")
	}

	// Fourth: everything is running, nothing to evict.
	if _, _, err := m.Submit("running-3", SubmitOptions{Total: 1}, run2); err == nil || !strings.Contains(err.Error(), "store full") {
		t.Fatalf("err = %v", err)
	}
	if s := m.Stats(); s.Evicted != 1 {
		t.Errorf("stats %+v", s)
	}
}

// TestResultByteBudget: retained result bytes are bounded — older
// finished jobs are evicted when a new result lands over budget, but
// the newest result always survives, even alone over budget.
func TestResultByteBudget(t *testing.T) {
	m := NewManager(Config{MaxResultBytes: 100})
	submit := func(id string, size int) *Job {
		t.Helper()
		j, _, err := m.Submit(id, SubmitOptions{Total: 1}, func(ctx context.Context, report func(Progress)) ([]byte, error) {
			return make([]byte, size), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		wait(t, j)
		return j
	}
	submit("forty-a", 40)
	submit("forty-b", 40)
	if s := m.Stats(); s.ResultBytes != 80 || s.Evicted != 0 {
		t.Fatalf("stats %+v", s)
	}
	// 80 + 40 > 100: the oldest finished job goes.
	submit("forty-c", 40)
	if _, ok := m.Get("forty-a"); ok {
		t.Error("oldest job survived the byte budget")
	}
	if s := m.Stats(); s.ResultBytes != 80 || s.Evicted != 1 {
		t.Errorf("stats %+v", s)
	}
	// A result alone over budget is kept, and — since no eviction could
	// satisfy the budget anyway — the other jobs' still-valid results
	// are left alone: retained memory is bounded by the budget plus the
	// one oversized result.
	big := submit("huge", 500)
	if res, snap := big.Result(); snap.State != StateDone || len(res) != 500 {
		t.Fatalf("over-budget result dropped: %+v", snap)
	}
	s := m.Stats()
	if s.Stored != 3 || s.ResultBytes != 580 || s.Evicted != 1 {
		t.Errorf("stats %+v", s)
	}
	if _, ok := m.Get("forty-b"); !ok {
		t.Error("within-budget job destroyed for an unsatisfiable breach")
	}
	// The exemption protects only the job that is settling: the next
	// settle re-enforces the plain budget and may reclaim the
	// oversized result along with everything older.
	submit("forty-d", 40)
	if _, ok := m.Get("huge"); ok {
		t.Error("oversized result survived a later budget enforcement")
	}
	if s := m.Stats(); s.ResultBytes != 40 || s.Stored != 1 {
		t.Errorf("stats after re-enforcement %+v", s)
	}
}

// TestTTLEviction: finished jobs expire; Get and Submit both collect.
func TestTTLEviction(t *testing.T) {
	m := NewManager(Config{TTL: 10 * time.Millisecond})
	j, _, _ := m.Submit("ephemeral", SubmitOptions{Total: 1}, func(ctx context.Context, report func(Progress)) ([]byte, error) {
		return []byte("r"), nil
	})
	wait(t, j)
	if _, ok := m.Get("ephemeral"); !ok {
		t.Fatal("job vanished before its TTL")
	}
	time.Sleep(25 * time.Millisecond)
	if _, ok := m.Get("ephemeral"); ok {
		t.Fatal("job survived its TTL")
	}
	// A re-submission after expiry is a fresh job, not a dedup.
	_, created, err := m.Submit("ephemeral", SubmitOptions{Total: 1}, func(ctx context.Context, report func(Progress)) ([]byte, error) {
		return []byte("r2"), nil
	})
	if err != nil || !created {
		t.Fatalf("created=%v err=%v", created, err)
	}
	if s := m.Stats(); s.Evicted != 1 || s.Submitted != 2 {
		t.Errorf("stats %+v", s)
	}
}

// TestSubscribeMonotonic: a subscriber observes non-decreasing Done
// counts ending at total, and a wake for the terminal state.
func TestSubscribeMonotonic(t *testing.T) {
	m := NewManager(Config{})
	const total = 50
	step := make(chan struct{})
	j, _, _ := m.Submit("watched", SubmitOptions{Total: total}, func(ctx context.Context, report func(Progress)) ([]byte, error) {
		for i := 1; i <= total; i++ {
			report(Progress{Total: total, Done: i})
			if i == total/2 {
				// Hold mid-run so the subscriber provably overlaps it.
				<-step
			}
		}
		return []byte("r"), nil
	})
	wake, stop := j.Subscribe()
	defer stop()
	close(step)

	last := -1
	deadline := time.After(10 * time.Second)
	for {
		snap := j.Snapshot()
		if snap.Progress.Done < last {
			t.Fatalf("progress rolled back: %d after %d", snap.Progress.Done, last)
		}
		last = snap.Progress.Done
		if snap.State.Finished() {
			if last != total {
				t.Fatalf("finished at %d/%d", last, total)
			}
			return
		}
		select {
		case <-wake:
		case <-deadline:
			t.Fatal("subscriber starved")
		}
	}
}

func TestSubmitValidation(t *testing.T) {
	m := NewManager(Config{})
	if _, _, err := m.Submit("", SubmitOptions{Total: 1}, nil); err == nil {
		t.Fatal("empty ID accepted")
	}
	if _, ok := m.Get("nope"); ok {
		t.Fatal("phantom job")
	}
}

// BenchmarkJobManager measures the manager's per-job overhead: submit,
// one progress report, completion, result retrieval. The sweep points
// themselves dwarf this; the benchmark guards against the bookkeeping
// ever growing into the request path.
func BenchmarkJobManager(b *testing.B) {
	m := NewManager(Config{MaxJobs: 64})
	body := []byte(`{"ok":true}`)
	b.ReportAllocs()
	for i := 0; b.Loop(); i++ {
		id := fmt.Sprintf("job-%d", i)
		j, _, err := m.Submit(id, SubmitOptions{Total: 1}, func(ctx context.Context, report func(Progress)) ([]byte, error) {
			report(Progress{Total: 1, Done: 1})
			return body, nil
		})
		if err != nil {
			b.Fatal(err)
		}
		wake, stop := j.Subscribe()
		for !j.Snapshot().State.Finished() {
			<-wake
		}
		stop()
		if res, snap := j.Result(); snap.State != StateDone || len(res) == 0 {
			b.Fatalf("result %q %+v", res, snap)
		}
	}
}
