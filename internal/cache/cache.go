// Package cache is a content-addressed result cache for the QLA
// serving layer. Keys are canonical-Spec hashes (engine.SpecHash) and
// values are the marshaled Result bytes of the run — legal to replay
// verbatim because fixed-seed Monte Carlo results are bit-identical at
// any parallelism, so a cached body is indistinguishable from a fresh
// execution. The cache bounds itself by a byte budget with LRU
// eviction, and de-duplicates concurrent identical requests
// (singleflight): N callers asking for the same key while it computes
// share one execution and receive the same bytes.
//
// WithDir adds an optional file persistence tier: stored values are
// also written through to one file per key, and a memory miss consults
// the directory before computing, so content-addressed results — sweep
// points included — survive a process restart. The disk tier is not
// LRU-bounded (content addresses never go stale; the operator owns the
// directory) and all disk failures degrade to recomputation, never to
// request failures. A persistently failing disk (full, unmounted,
// yanked) downgrades the tier to memory-only after a few consecutive
// persist errors — logged once per episode, visible in Stats — and a
// periodic probe write re-enables it when the disk recovers.
//
// WithPeers adds a third, fleet-wide tier: other replicas' caches
// reached over HTTP, consulted after a disk miss and before computing.
// See peer.go.
package cache

import (
	"container/list"
	"context"
	"fmt"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"qla/internal/obs"
)

// Cache is a byte-budgeted LRU keyed by content hash, safe for
// concurrent use. Construct with New; the zero Cache is not usable.
// Stored byte slices are shared between the cache and its callers and
// must be treated as immutable.
type Cache struct {
	mu       sync.Mutex
	maxBytes int64
	dir      string // "" = no persistence tier
	bytes    int64
	ll       *list.List // front = most recently used
	entries  map[string]*list.Element
	inflight map[string]*flight

	// Disk-tier degradation: after degradeAfter consecutive persist
	// errors the tier downgrades to memory-only (writes skipped) until
	// a probe write — one attempt per probeInterval — succeeds again.
	degradeAfter  int
	probeInterval time.Duration
	consecErrs    int
	degraded      bool
	nextProbe     time.Time
	logf          func(format string, args ...any)

	// Peer tier (see peer.go): other replicas consulted between a disk
	// miss and a fresh computation, each with its own breaker.
	peers       []*peerState
	peerTimeout time.Duration
	peerClient  *http.Client

	hits, misses, dedups, evictions     uint64
	diskHits, diskWrites, persistErrors uint64
	degradeEvents, skippedWrites        uint64
	peerHits, peerMisses, peerErrors    uint64

	// Metrics (see WithMetrics). peerRTT is nil when unset; the tier
	// counters above are bridged into the registry as pull-based
	// series, so they stay the single source of truth for /v1/stats.
	metrics *obs.Registry
	peerRTT *obs.Histogram
}

type entry struct {
	key string
	val []byte
}

// flight is one in-progress computation. The leader writes val/err and
// then closes done; followers read them only after done is closed.
type flight struct {
	done chan struct{}
	val  []byte
	err  error
}

// Option configures a Cache.
type Option func(*Cache)

// WithDir enables the file persistence tier rooted at dir: every
// stored value is written through to dir/<key> (atomically, via a
// temp-file rename) and a memory miss reads the file back before
// computing, so entries written by an earlier process are served
// without re-execution. Keys must be filesystem-safe names — the
// serving layer's keys are hex content hashes — and unsafe keys simply
// skip the tier.
func WithDir(dir string) Option {
	return func(c *Cache) { c.dir = dir }
}

// WithDegrade tunes the disk tier's graceful degradation: after
// consecutive persist errors the tier downgrades to memory-only, and
// probe sets how often a single probe write is allowed to test whether
// the disk recovered. Zero values keep the defaults (3 errors, 30s).
func WithDegrade(consecutive int, probe time.Duration) Option {
	return func(c *Cache) {
		if consecutive > 0 {
			c.degradeAfter = consecutive
		}
		if probe > 0 {
			c.probeInterval = probe
		}
	}
}

// WithLogger routes the cache's rare episode logs (tier degradation
// and recovery) through logf instead of the standard library default.
func WithLogger(logf func(format string, args ...any)) Option {
	return func(c *Cache) {
		if logf != nil {
			c.logf = logf
		}
	}
}

// WithMetrics registers the cache's instruments on reg: tier
// resolution outcomes as qla_cache_hits_total{tier=...} (memory, disk,
// peer, inflight) plus miss/eviction/error counters bridged from the
// existing stats fields, and a qla_cache_peer_rtt_seconds histogram
// observed per peer round trip.
func WithMetrics(reg *obs.Registry) Option {
	return func(c *Cache) { c.metrics = reg }
}

func (c *Cache) instrument() {
	reg := c.metrics
	bridge := func(p *uint64) func() float64 {
		return func() float64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			return float64(*p)
		}
	}
	tier := func(t string) map[string]string { return map[string]string{"tier": t} }
	hitsHelp := "Cache lookups resolved per tier (inflight = collapsed onto an in-progress compute)."
	reg.CounterFunc("qla_cache_hits_total", hitsHelp, tier("memory"), bridge(&c.hits))
	reg.CounterFunc("qla_cache_hits_total", hitsHelp, tier("disk"), bridge(&c.diskHits))
	reg.CounterFunc("qla_cache_hits_total", hitsHelp, tier("peer"), bridge(&c.peerHits))
	reg.CounterFunc("qla_cache_hits_total", hitsHelp, tier("inflight"), bridge(&c.dedups))
	reg.CounterFunc("qla_cache_misses_total", "Lookups that fell through every tier to a fresh compute.", nil, bridge(&c.misses))
	reg.CounterFunc("qla_cache_evictions_total", "Entries evicted by the LRU byte budget.", nil, bridge(&c.evictions))
	reg.CounterFunc("qla_cache_disk_writes_total", "Successful write-throughs to the disk tier.", nil, bridge(&c.diskWrites))
	reg.CounterFunc("qla_cache_persist_errors_total", "Failed disk-tier writes.", nil, bridge(&c.persistErrors))
	reg.CounterFunc("qla_cache_peer_misses_total", "Clean 404 peer probes.", nil, bridge(&c.peerMisses))
	reg.CounterFunc("qla_cache_peer_errors_total", "Failed peer fetches (transport, status, or hash mismatch).", nil, bridge(&c.peerErrors))
	reg.GaugeFunc("qla_cache_bytes", "Bytes currently held by the memory tier.", nil, func() float64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		return float64(c.bytes)
	})
	reg.GaugeFunc("qla_cache_entries", "Entries currently held by the memory tier.", nil, func() float64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		return float64(len(c.entries))
	})
	c.peerRTT = reg.Histogram("qla_cache_peer_rtt_seconds",
		"Round-trip latency of one peer cache fetch (any response, including 404).", obs.LatencyBuckets)
}

// New builds a Cache bounded to maxBytes of stored values (keys charged
// against the budget too). maxBytes <= 0 means unbounded.
func New(maxBytes int64, opts ...Option) *Cache {
	c := &Cache{
		maxBytes:      maxBytes,
		ll:            list.New(),
		entries:       make(map[string]*list.Element),
		inflight:      make(map[string]*flight),
		degradeAfter:  3,
		probeInterval: 30 * time.Second,
		peerTimeout:   defaultPeerTimeout,
		logf:          log.Printf,
	}
	for _, o := range opts {
		o(c)
	}
	if len(c.peers) > 0 {
		c.peerClient = &http.Client{Timeout: c.peerTimeout}
	}
	if c.metrics != nil {
		c.instrument()
	}
	if c.dir != "" {
		if err := os.MkdirAll(c.dir, 0o755); err != nil {
			// An unusable directory disables the tier; the in-memory
			// cache keeps working and Stats exposes the failure.
			c.dir = ""
			c.persistErrors++
		}
	}
	return c
}

// GetOrCompute returns the cached bytes for key, or runs compute to
// produce them. Concurrent calls for the same key collapse onto one
// compute (the first caller's); the rest wait and share its outcome,
// reported as hits. Errors are never cached — a later call recomputes —
// and the error of a collapsed flight is delivered to every waiter.
// The context governs only the caller's own wait; it does not cancel a
// computation other callers may still be waiting on.
func (c *Cache) GetOrCompute(ctx context.Context, key string, compute func() ([]byte, error)) (val []byte, hit bool, err error) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		val := el.Value.(*entry).val
		c.mu.Unlock()
		return val, true, nil
	}
	if f, ok := c.inflight[key]; ok {
		c.dedups++
		c.mu.Unlock()
		select {
		case <-f.done:
			if f.err != nil {
				return nil, false, f.err
			}
			return f.val, true, nil
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
	}
	f := &flight{done: make(chan struct{})}
	c.inflight[key] = f
	c.mu.Unlock()

	// Persistence tier: a value written by an earlier process (or
	// evicted from memory since) replays without recomputation. The
	// probe runs as the flight leader, so concurrent callers still
	// collapse onto one disk read.
	if val, ok := c.loadFile(key); ok {
		c.mu.Lock()
		delete(c.inflight, key)
		c.diskHits++
		c.storeLocked(key, val)
		c.mu.Unlock()
		f.val = val
		close(f.done)
		return val, true, nil
	}

	// Peer tier: another replica may already hold the bytes — still as
	// the flight leader, so N concurrent callers cost one peer walk. A
	// peer hit is written through to the local disk (after releasing the
	// followers, like the compute path): the peer can die, and the whole
	// point of the fleet is that its results survive anywhere.
	if val, ok := c.loadPeers(ctx, key); ok {
		c.mu.Lock()
		delete(c.inflight, key)
		c.storeLocked(key, val)
		c.mu.Unlock()
		f.val = val
		close(f.done)
		c.writeFile(key, val)
		return val, true, nil
	}

	c.mu.Lock()
	c.misses++
	c.mu.Unlock()

	// A panic escaping compute must not strand the flight: waiters
	// would block on done forever and the key would be poisoned until
	// process restart. Resolve the flight with an error and let the
	// panic continue to the caller.
	completed := false
	defer func() {
		if completed {
			return
		}
		c.mu.Lock()
		delete(c.inflight, key)
		c.mu.Unlock()
		f.err = fmt.Errorf("cache: computation for key %s panicked", key)
		close(f.done)
	}()
	val, err = compute()
	completed = true

	c.mu.Lock()
	delete(c.inflight, key)
	if err == nil {
		c.storeLocked(key, val)
	}
	c.mu.Unlock()
	f.val, f.err = val, err
	close(f.done)
	// Persist only after releasing the followers: the value is already
	// in memory, and a slow disk must not add latency to requests that
	// collapsed onto this flight.
	if err == nil {
		c.writeFile(key, val)
	}
	return val, false, err
}

// safeKey reports whether key can name a file in the persistence
// directory (hex hashes always can).
func safeKey(key string) bool {
	return key != "" && !strings.ContainsAny(key, "/\\") && key != "." && key != ".." && filepath.Base(key) == key
}

// loadFile reads the persisted value for key, if the tier is enabled
// and holds one.
func (c *Cache) loadFile(key string) ([]byte, bool) {
	if c.dir == "" || !safeKey(key) {
		return nil, false
	}
	val, err := os.ReadFile(filepath.Join(c.dir, key))
	if err != nil {
		return nil, false
	}
	return val, true
}

// writeFile persists val under key, atomically (temp file + rename) so
// a crash mid-write never leaves a truncated entry to replay. Failures
// only bump a counter: persistence is best-effort. Repeated failures
// degrade the tier to memory-only — writes are skipped instead of
// hammering a dead disk on every store — with one probe write allowed
// per probe interval to detect recovery.
func (c *Cache) writeFile(key string, val []byte) {
	if c.dir == "" || !safeKey(key) {
		return
	}
	c.mu.Lock()
	if c.degraded {
		if now := time.Now(); now.Before(c.nextProbe) {
			c.skippedWrites++
			c.mu.Unlock()
			return
		}
		// Claim the probe slot before releasing the lock so concurrent
		// writers don't stampede the disk together.
		c.nextProbe = time.Now().Add(c.probeInterval)
	}
	c.mu.Unlock()
	err := func() error {
		tmp, err := os.CreateTemp(c.dir, key+".tmp-*")
		if err != nil {
			return err
		}
		defer os.Remove(tmp.Name())
		if _, err := tmp.Write(val); err != nil {
			tmp.Close()
			return err
		}
		if err := tmp.Close(); err != nil {
			return err
		}
		return os.Rename(tmp.Name(), filepath.Join(c.dir, key))
	}()
	c.mu.Lock()
	if err != nil {
		c.persistErrors++
		c.consecErrs++
		if !c.degraded && c.consecErrs >= c.degradeAfter {
			c.degraded = true
			c.degradeEvents++
			c.nextProbe = time.Now().Add(c.probeInterval)
			// Logged once per episode: the steady state is silent skips.
			c.logf("cache: disk tier degraded to memory-only after %d consecutive persist errors (last: %v); probing every %v",
				c.consecErrs, err, c.probeInterval)
		}
	} else {
		if c.degraded {
			c.logf("cache: disk tier restored after successful probe write")
		}
		c.degraded = false
		c.consecErrs = 0
		c.diskWrites++
	}
	c.mu.Unlock()
}

// Contains reports whether key would be served without computing:
// stored says the value is in memory or on disk, inflight that an
// identical computation is running (a caller would join it). It is a
// pure probe — no counters move and nothing is promoted — sized for
// the serving layer's load-shed check, which must not 503 requests the
// cache can answer. It never consults peers (a network round-trip in
// an admission decision is the same bug class as a hung disk stat) and
// skips the disk stat while the tier is degraded.
func (c *Cache) Contains(key string) (stored, inflight bool) {
	c.mu.Lock()
	_, stored = c.entries[key]
	_, inflight = c.inflight[key]
	dir := c.dir
	if c.degraded {
		// A degraded disk may be hung, not just full: the admission
		// probe must never block on it. Get keeps reading the tier (a
		// hit is still worth a slow read); the probe just stops
		// promising one, so an affected request is shed instead of
		// stalled.
		dir = ""
	}
	c.mu.Unlock()
	if !stored && dir != "" && safeKey(key) {
		if _, err := os.Stat(filepath.Join(dir, key)); err == nil {
			stored = true
		}
	}
	return stored, inflight
}

// storeLocked inserts the value at the front of the LRU list and evicts
// from the back until the byte budget holds. A value larger than the
// whole budget is not cached at all.
func (c *Cache) storeLocked(key string, val []byte) {
	cost := int64(len(val)) + int64(len(key))
	if c.maxBytes > 0 && cost > c.maxBytes {
		return
	}
	if el, ok := c.entries[key]; ok {
		old := el.Value.(*entry)
		c.bytes += int64(len(val)) - int64(len(old.val))
		old.val = val
		c.ll.MoveToFront(el)
	} else {
		c.entries[key] = c.ll.PushFront(&entry{key: key, val: val})
		c.bytes += cost
	}
	for c.maxBytes > 0 && c.bytes > c.maxBytes {
		back := c.ll.Back()
		if back == nil {
			break
		}
		e := back.Value.(*entry)
		c.ll.Remove(back)
		delete(c.entries, e.key)
		c.bytes -= int64(len(e.val)) + int64(len(e.key))
		c.evictions++
	}
}

// Stats is a point-in-time snapshot of the cache counters.
type Stats struct {
	// Hits counts requests served from stored bytes. Waiters collapsed
	// onto an in-flight computation count under Dedups instead.
	Hits uint64 `json:"hits"`
	// Misses counts computations actually executed.
	Misses uint64 `json:"misses"`
	// Dedups counts requests that joined an in-flight computation
	// instead of starting their own.
	Dedups uint64 `json:"dedups"`
	// Evictions counts entries dropped to hold the byte budget.
	Evictions uint64 `json:"evictions"`
	// Entries and Bytes describe the current stored set; Inflight is the
	// number of computations currently executing.
	Entries  int   `json:"entries"`
	Bytes    int64 `json:"bytes"`
	MaxBytes int64 `json:"max_bytes"`
	Inflight int   `json:"inflight"`
	// Persistent reports whether the file tier is enabled; DiskHits
	// counts memory misses served from it, DiskWrites successful
	// write-throughs, and PersistErrors best-effort failures (the
	// request still succeeds).
	Persistent    bool   `json:"persistent,omitempty"`
	DiskHits      uint64 `json:"disk_hits,omitempty"`
	DiskWrites    uint64 `json:"disk_writes,omitempty"`
	PersistErrors uint64 `json:"persist_errors,omitempty"`
	// Degraded reports the disk tier is currently downgraded to
	// memory-only; DegradeEvents counts downgrade episodes and
	// SkippedWrites the writes not attempted while degraded.
	Degraded      bool   `json:"degraded,omitempty"`
	DegradeEvents uint64 `json:"degrade_events,omitempty"`
	SkippedWrites uint64 `json:"skipped_writes,omitempty"`
	// Peers is how many peer replicas the tier consults (0 = tier off)
	// and PeersDegraded how many are currently skipped by their breaker.
	// PeerHits counts local misses served from a peer, PeerMisses clean
	// peer 404s, PeerErrors failed or hash-rejected fetches.
	Peers         int    `json:"peers,omitempty"`
	PeersDegraded int    `json:"peers_degraded,omitempty"`
	PeerHits      uint64 `json:"peer_hits,omitempty"`
	PeerMisses    uint64 `json:"peer_misses,omitempty"`
	PeerErrors    uint64 `json:"peer_errors,omitempty"`
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	peersDegraded := 0
	for _, p := range c.peers {
		if p.degraded {
			peersDegraded++
		}
	}
	return Stats{
		Hits:          c.hits,
		Misses:        c.misses,
		Dedups:        c.dedups,
		Evictions:     c.evictions,
		Entries:       len(c.entries),
		Bytes:         c.bytes,
		MaxBytes:      c.maxBytes,
		Inflight:      len(c.inflight),
		Persistent:    c.dir != "",
		DiskHits:      c.diskHits,
		DiskWrites:    c.diskWrites,
		PersistErrors: c.persistErrors,
		Degraded:      c.degraded,
		DegradeEvents: c.degradeEvents,
		SkippedWrites: c.skippedWrites,
		Peers:         len(c.peers),
		PeersDegraded: peersDegraded,
		PeerHits:      c.peerHits,
		PeerMisses:    c.peerMisses,
		PeerErrors:    c.peerErrors,
	}
}
