// Package cache is a content-addressed result cache for the QLA
// serving layer. Keys are canonical-Spec hashes (engine.SpecHash) and
// values are the marshaled Result bytes of the run — legal to replay
// verbatim because fixed-seed Monte Carlo results are bit-identical at
// any parallelism, so a cached body is indistinguishable from a fresh
// execution. The cache bounds itself by a byte budget with LRU
// eviction, and de-duplicates concurrent identical requests
// (singleflight): N callers asking for the same key while it computes
// share one execution and receive the same bytes.
package cache

import (
	"container/list"
	"context"
	"fmt"
	"sync"
)

// Cache is a byte-budgeted LRU keyed by content hash, safe for
// concurrent use. Construct with New; the zero Cache is not usable.
// Stored byte slices are shared between the cache and its callers and
// must be treated as immutable.
type Cache struct {
	mu       sync.Mutex
	maxBytes int64
	bytes    int64
	ll       *list.List // front = most recently used
	entries  map[string]*list.Element
	inflight map[string]*flight

	hits, misses, dedups, evictions uint64
}

type entry struct {
	key string
	val []byte
}

// flight is one in-progress computation. The leader writes val/err and
// then closes done; followers read them only after done is closed.
type flight struct {
	done chan struct{}
	val  []byte
	err  error
}

// New builds a Cache bounded to maxBytes of stored values (keys charged
// against the budget too). maxBytes <= 0 means unbounded.
func New(maxBytes int64) *Cache {
	return &Cache{
		maxBytes: maxBytes,
		ll:       list.New(),
		entries:  make(map[string]*list.Element),
		inflight: make(map[string]*flight),
	}
}

// GetOrCompute returns the cached bytes for key, or runs compute to
// produce them. Concurrent calls for the same key collapse onto one
// compute (the first caller's); the rest wait and share its outcome,
// reported as hits. Errors are never cached — a later call recomputes —
// and the error of a collapsed flight is delivered to every waiter.
// The context governs only the caller's own wait; it does not cancel a
// computation other callers may still be waiting on.
func (c *Cache) GetOrCompute(ctx context.Context, key string, compute func() ([]byte, error)) (val []byte, hit bool, err error) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		val := el.Value.(*entry).val
		c.mu.Unlock()
		return val, true, nil
	}
	if f, ok := c.inflight[key]; ok {
		c.dedups++
		c.mu.Unlock()
		select {
		case <-f.done:
			if f.err != nil {
				return nil, false, f.err
			}
			return f.val, true, nil
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
	}
	f := &flight{done: make(chan struct{})}
	c.inflight[key] = f
	c.misses++
	c.mu.Unlock()

	// A panic escaping compute must not strand the flight: waiters
	// would block on done forever and the key would be poisoned until
	// process restart. Resolve the flight with an error and let the
	// panic continue to the caller.
	completed := false
	defer func() {
		if completed {
			return
		}
		c.mu.Lock()
		delete(c.inflight, key)
		c.mu.Unlock()
		f.err = fmt.Errorf("cache: computation for key %s panicked", key)
		close(f.done)
	}()
	val, err = compute()
	completed = true

	c.mu.Lock()
	delete(c.inflight, key)
	if err == nil {
		c.storeLocked(key, val)
	}
	c.mu.Unlock()
	f.val, f.err = val, err
	close(f.done)
	return val, false, err
}

// storeLocked inserts the value at the front of the LRU list and evicts
// from the back until the byte budget holds. A value larger than the
// whole budget is not cached at all.
func (c *Cache) storeLocked(key string, val []byte) {
	cost := int64(len(val)) + int64(len(key))
	if c.maxBytes > 0 && cost > c.maxBytes {
		return
	}
	if el, ok := c.entries[key]; ok {
		old := el.Value.(*entry)
		c.bytes += int64(len(val)) - int64(len(old.val))
		old.val = val
		c.ll.MoveToFront(el)
	} else {
		c.entries[key] = c.ll.PushFront(&entry{key: key, val: val})
		c.bytes += cost
	}
	for c.maxBytes > 0 && c.bytes > c.maxBytes {
		back := c.ll.Back()
		if back == nil {
			break
		}
		e := back.Value.(*entry)
		c.ll.Remove(back)
		delete(c.entries, e.key)
		c.bytes -= int64(len(e.val)) + int64(len(e.key))
		c.evictions++
	}
}

// Stats is a point-in-time snapshot of the cache counters.
type Stats struct {
	// Hits counts requests served from stored bytes. Waiters collapsed
	// onto an in-flight computation count under Dedups instead.
	Hits uint64 `json:"hits"`
	// Misses counts computations actually executed.
	Misses uint64 `json:"misses"`
	// Dedups counts requests that joined an in-flight computation
	// instead of starting their own.
	Dedups uint64 `json:"dedups"`
	// Evictions counts entries dropped to hold the byte budget.
	Evictions uint64 `json:"evictions"`
	// Entries and Bytes describe the current stored set; Inflight is the
	// number of computations currently executing.
	Entries  int   `json:"entries"`
	Bytes    int64 `json:"bytes"`
	MaxBytes int64 `json:"max_bytes"`
	Inflight int   `json:"inflight"`
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:      c.hits,
		Misses:    c.misses,
		Dedups:    c.dedups,
		Evictions: c.evictions,
		Entries:   len(c.entries),
		Bytes:     c.bytes,
		MaxBytes:  c.maxBytes,
		Inflight:  len(c.inflight),
	}
}
