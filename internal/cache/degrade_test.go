package cache

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// breakDir replaces the cache directory with a regular file so every
// CreateTemp inside it fails (chmod tricks don't bite when the tests
// run as root). Returns a restore func that puts the directory back.
func breakDir(t *testing.T, dir string) (restore func()) {
	t.Helper()
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dir, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	return func() {
		if err := os.Remove(dir); err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
	}
}

// TestDegradeAfterConsecutiveErrors: repeated persist failures
// downgrade the disk tier to memory-only, logged exactly once, with
// further writes skipped rather than attempted.
func TestDegradeAfterConsecutiveErrors(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	c := New(0, WithDir(dir), WithDegrade(2, time.Hour))
	var mu sync.Mutex
	var logs []string
	c.logf = func(format string, args ...any) {
		mu.Lock()
		logs = append(logs, fmt.Sprintf(format, args...))
		mu.Unlock()
	}
	breakDir(t, dir)

	for i := 0; i < 5; i++ {
		mustGet(t, c, fmt.Sprintf("k%d", i), "v")
	}
	s := c.Stats()
	if !s.Degraded || s.DegradeEvents != 1 {
		t.Fatalf("not degraded after repeated errors: %+v", s)
	}
	if s.PersistErrors != 2 {
		t.Fatalf("persist errors = %d, want 2 (writes should stop after degrade)", s.PersistErrors)
	}
	if s.SkippedWrites != 3 {
		t.Fatalf("skipped writes = %d, want 3", s.SkippedWrites)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(logs) != 1 || !strings.Contains(logs[0], "degraded to memory-only") {
		t.Fatalf("want exactly one degrade log line, got %q", logs)
	}
	// The cache itself stays fully functional in memory.
	if _, hit := mustGet(t, c, "k0", "v"); !hit {
		t.Fatal("memory tier lost entries while degraded")
	}
}

// TestDegradeProbeRestores: once the disk recovers, the next probe
// write succeeds and the tier re-enables itself.
func TestDegradeProbeRestores(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	c := New(0, WithDir(dir), WithDegrade(1, 20*time.Millisecond))
	var mu sync.Mutex
	var logs []string
	c.logf = func(format string, args ...any) {
		mu.Lock()
		logs = append(logs, fmt.Sprintf(format, args...))
		mu.Unlock()
	}
	restore := breakDir(t, dir)

	mustGet(t, c, "k0", "v")
	if s := c.Stats(); !s.Degraded {
		t.Fatalf("not degraded: %+v", s)
	}
	restore()
	// Probe slots open every 20ms; keep storing until one lands.
	deadline := time.Now().Add(5 * time.Second)
	for i := 1; c.Stats().Degraded; i++ {
		if time.Now().After(deadline) {
			t.Fatalf("tier never restored: %+v", c.Stats())
		}
		mustGet(t, c, fmt.Sprintf("k%d", i), "v")
		time.Sleep(5 * time.Millisecond)
	}
	s := c.Stats()
	if s.DiskWrites == 0 {
		t.Fatalf("no disk write after restore: %+v", s)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(logs) < 2 || !strings.Contains(logs[len(logs)-1], "restored") {
		t.Fatalf("want a restore log line, got %q", logs)
	}
	// Fresh stores now persist again.
	mustGet(t, c, "fresh", "v")
	if _, err := os.Stat(filepath.Join(dir, "fresh")); err != nil {
		t.Fatalf("restored tier did not persist: %v", err)
	}
}

// TestContains: pure probe over all three serve-without-compute
// sources — memory, disk, inflight — with no counter movement.
func TestContains(t *testing.T) {
	dir := t.TempDir()
	c := New(0, WithDir(dir))
	mustGet(t, c, "mem1", "v")
	before := c.Stats()

	if stored, inflight := c.Contains("mem1"); !stored || inflight {
		t.Fatalf("memory entry: stored=%v inflight=%v", stored, inflight)
	}
	if stored, inflight := c.Contains("nope"); stored || inflight {
		t.Fatalf("absent key: stored=%v inflight=%v", stored, inflight)
	}
	if after := c.Stats(); after.Hits != before.Hits || after.Misses != before.Misses || after.DiskHits != before.DiskHits {
		t.Fatalf("Contains moved counters: %+v -> %+v", before, after)
	}

	// Disk-only: a second cache over the same dir has no memory entry.
	c2 := New(0, WithDir(dir))
	if stored, _ := c2.Contains("mem1"); !stored {
		t.Fatal("disk entry not reported")
	}

	// Inflight: a running computation is joinable, not stored.
	started := make(chan struct{})
	release := make(chan struct{})
	go c.GetOrCompute(t.Context(), "slow", func() ([]byte, error) {
		close(started)
		<-release
		return []byte("v"), nil
	})
	<-started
	if stored, inflight := c.Contains("slow"); stored || !inflight {
		t.Fatalf("inflight entry: stored=%v inflight=%v", stored, inflight)
	}
	close(release)
}
