// The peer tier: a fleet of qlaserve replicas shares its
// content-addressed results over HTTP. Each replica serves its own
// stored bytes under GET /v1/cache/{hash} and, configured with
// WithPeers, consults the others' routes between a local disk miss and
// a fresh computation — probe order memory → disk → peers → compute.
// Content addressing makes the tier trivially coherent: a key's bytes
// are bit-identical wherever they were computed, so a peer's body is
// legal to store and replay verbatim once its hash header checks out.
//
// Peers fail independently of the local disk, so each carries its own
// circuit breaker, reusing the WithDegrade episode pattern: after
// degradeAfter consecutive errors the peer is skipped (one probe
// request allowed per probeInterval to detect recovery) instead of
// adding a timeout's worth of latency to every miss. Peer fetches are
// strictly best-effort — every failure degrades to the next tier,
// never to a request failure.
package cache

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"qla/internal/obs"
)

// PeerPath is the route prefix peers serve cached bytes under; the
// serving layer registers its handler to match.
const PeerPath = "/v1/cache/"

// HashHeader names the response header carrying the hex SHA-256 of the
// served body. Receivers recompute it and reject mismatches — a
// truncated proxy response or corrupt peer must not poison the local
// tiers.
const HashHeader = "X-Content-SHA256"

// defaultPeerTimeout bounds one peer fetch end to end.
const defaultPeerTimeout = 2 * time.Second

// peerState is one configured peer and its breaker.
type peerState struct {
	url        string
	consecErrs int
	degraded   bool
	nextProbe  time.Time
}

// WithPeers enables the peer tier: each URL is the base address of
// another replica serving GET /v1/cache/{hash}. Peers are consulted in
// the given order after a memory and disk miss, before computing.
func WithPeers(urls ...string) Option {
	return func(c *Cache) {
		for _, u := range urls {
			u = strings.TrimRight(strings.TrimSpace(u), "/")
			if u == "" {
				continue
			}
			c.peers = append(c.peers, &peerState{url: u})
		}
	}
}

// WithPeerTimeout bounds one peer fetch (0 keeps the 2s default). The
// timeout is per peer, not per key: a miss that walks N slow peers can
// spend N timeouts before computing, which is why the breaker exists.
func WithPeerTimeout(d time.Duration) Option {
	return func(c *Cache) {
		if d > 0 {
			c.peerTimeout = d
		}
	}
}

// BodyHash returns the hex SHA-256 a peer response's HashHeader must
// carry for val.
func BodyHash(val []byte) string {
	sum := sha256.Sum256(val)
	return hex.EncodeToString(sum[:])
}

// loadPeers fetches key from the first peer that holds it. Breaker
// bookkeeping happens under the cache lock; the HTTP requests do not.
// ctx contributes only values (the trace ID forwarded to peers), not
// cancellation: followers collapsed onto this flight may outlive the
// leader's request, so the fetch is bounded by the client timeout
// alone, as before.
func (c *Cache) loadPeers(ctx context.Context, key string) ([]byte, bool) {
	if len(c.peers) == 0 || !safeKey(key) {
		return nil, false
	}
	for _, p := range c.peers {
		c.mu.Lock()
		if p.degraded {
			if time.Now().Before(p.nextProbe) {
				c.mu.Unlock()
				continue
			}
			// Claim the probe slot before releasing the lock so concurrent
			// misses don't stampede a dead peer together.
			p.nextProbe = time.Now().Add(c.probeInterval)
		}
		c.mu.Unlock()

		val, ok, err := c.fetchPeer(ctx, p.url, key)

		c.mu.Lock()
		if err != nil {
			c.peerErrors++
			p.consecErrs++
			if !p.degraded && p.consecErrs >= c.degradeAfter {
				p.degraded = true
				p.nextProbe = time.Now().Add(c.probeInterval)
				// Logged once per episode: the steady state is silent skips.
				c.logf("cache: peer %s skipped after %d consecutive errors (last: %v); probing every %v",
					p.url, p.consecErrs, err, c.probeInterval)
			}
			c.mu.Unlock()
			continue
		}
		if p.degraded {
			c.logf("cache: peer %s restored after successful probe", p.url)
		}
		p.degraded = false
		p.consecErrs = 0
		if !ok {
			c.peerMisses++
			c.mu.Unlock()
			continue
		}
		c.peerHits++
		c.mu.Unlock()
		return val, true
	}
	return nil, false
}

// fetchPeer performs one GET against one peer: (val, true, nil) on a
// validated hit, (nil, false, nil) on a clean 404 miss, an error for
// everything else — transport failures, unexpected statuses, and
// bodies whose hash header does not match.
func (c *Cache) fetchPeer(ctx context.Context, base, key string) ([]byte, bool, error) {
	req, err := http.NewRequest(http.MethodGet, base+PeerPath+key, nil)
	if err != nil {
		return nil, false, err
	}
	if id := obs.TraceFrom(ctx); id != "" {
		req.Header.Set(obs.TraceHeader, id)
	}
	start := time.Now()
	resp, err := c.peerClient.Do(req)
	if err != nil {
		return nil, false, err
	}
	c.peerRTT.Observe(time.Since(start).Seconds())
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusNotFound:
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4<<10))
		return nil, false, nil
	default:
		return nil, false, fmt.Errorf("peer %s: status %d for %s", base, resp.StatusCode, key)
	}
	val, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, false, err
	}
	if got, want := resp.Header.Get(HashHeader), BodyHash(val); got != want {
		return nil, false, fmt.Errorf("peer %s: body hash mismatch for %s (header %q)", base, key, got)
	}
	return val, true, nil
}

// Peek returns the locally stored bytes for key — memory first (with
// LRU promotion), then the disk tier — without computing, joining a
// flight, or consulting peers. It backs the GET /v1/cache/{hash} route:
// peer requests must see only what this replica holds, never trigger
// transitive fetches, and never block on another replica.
func (c *Cache) Peek(key string) ([]byte, bool) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.ll.MoveToFront(el)
		val := el.Value.(*entry).val
		c.mu.Unlock()
		return val, true
	}
	c.mu.Unlock()
	if val, ok := c.loadFile(key); ok {
		c.mu.Lock()
		c.diskHits++
		c.storeLocked(key, val)
		c.mu.Unlock()
		return val, true
	}
	return nil, false
}

// Prefetch pulls key into the local tiers from disk or a peer, never
// computing, and reports whether the value is now stored locally. It
// deliberately skips the singleflight machinery: a prefetch that finds
// nothing must not register a flight that /v1/run callers would join
// and fail with. A peer-sourced value is written through to the local
// disk — the peer may die; that is the point of prefetching.
func (c *Cache) Prefetch(key string) bool {
	c.mu.Lock()
	_, stored := c.entries[key]
	_, inflight := c.inflight[key]
	c.mu.Unlock()
	if stored {
		return true
	}
	if inflight {
		// A local computation is already producing the value.
		return false
	}
	if val, ok := c.loadFile(key); ok {
		c.mu.Lock()
		c.diskHits++
		c.storeLocked(key, val)
		c.mu.Unlock()
		return true
	}
	val, ok := c.loadPeers(context.Background(), key)
	if !ok {
		return false
	}
	c.mu.Lock()
	c.storeLocked(key, val)
	c.mu.Unlock()
	c.writeFile(key, val)
	return true
}
