package cache

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// peerServer fakes a replica's GET /v1/cache/{hash} route over a map of
// stored values.
func peerServer(t *testing.T, values map[string][]byte) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		key := strings.TrimPrefix(r.URL.Path, PeerPath)
		val, ok := values[key]
		if !ok {
			http.NotFound(w, r)
			return
		}
		w.Header().Set(HashHeader, BodyHash(val))
		w.Write(val)
	}))
	t.Cleanup(ts.Close)
	return ts
}

// TestPeerHit: a local miss is served from a peer, stored in memory,
// written through to the local disk, and counted as a peer hit — and
// the compute func never runs.
func TestPeerHit(t *testing.T) {
	ts := peerServer(t, map[string][]byte{"k1": []byte("peer-bytes")})
	dir := t.TempDir()
	c := New(0, WithDir(dir), WithPeers(ts.URL))

	computed := false
	got, hit, err := c.GetOrCompute(context.Background(), "k1", func() ([]byte, error) {
		computed = true
		return []byte("fresh"), nil
	})
	if err != nil || !hit || string(got) != "peer-bytes" {
		t.Fatalf("GetOrCompute = %q, hit=%v, err=%v", got, hit, err)
	}
	if computed {
		t.Fatal("compute ran despite a peer hit")
	}
	s := c.Stats()
	if s.PeerHits != 1 || s.PeerErrors != 0 || s.Misses != 0 {
		t.Fatalf("stats after peer hit: %+v", s)
	}
	// Write-through: the bytes now live on the local disk too.
	if b, err := os.ReadFile(filepath.Join(dir, "k1")); err != nil || string(b) != "peer-bytes" {
		t.Fatalf("peer hit not written through to disk: %q, %v", b, err)
	}
	// Second call is a plain memory hit; the peer is not consulted.
	if _, hit := mustGet(t, c, "k1", "x"); !hit {
		t.Fatal("memory tier lost the peer-fetched entry")
	}
	if s := c.Stats(); s.PeerHits != 1 {
		t.Fatalf("memory hit re-consulted the peer: %+v", s)
	}
}

// TestPeerMiss: a clean peer 404 falls through to compute and counts as
// a peer miss, not an error.
func TestPeerMiss(t *testing.T) {
	ts := peerServer(t, nil)
	c := New(0, WithPeers(ts.URL))
	if _, hit := mustGet(t, c, "k1", "fresh"); hit {
		t.Fatal("miss reported as hit")
	}
	s := c.Stats()
	if s.PeerMisses != 1 || s.PeerErrors != 0 || s.Misses != 1 {
		t.Fatalf("stats after peer miss: %+v", s)
	}
}

// TestPeerDown: a peer refusing connections degrades to computing, the
// failure is counted, and after enough consecutive errors the breaker
// opens so later misses skip the peer entirely.
func TestPeerDown(t *testing.T) {
	// A started-then-closed server yields a connection-refused address.
	ts := httptest.NewServer(http.NotFoundHandler())
	url := ts.URL
	ts.Close()

	c := New(0, WithPeers(url), WithDegrade(2, time.Hour))
	for i := 0; i < 5; i++ {
		if _, hit := mustGet(t, c, fmt.Sprintf("k%d", i), "v"); hit {
			t.Fatal("dead peer produced a hit")
		}
	}
	s := c.Stats()
	if s.PeerErrors != 2 {
		t.Fatalf("peer errors = %d, want 2 (breaker should open after 2)", s.PeerErrors)
	}
	if s.PeersDegraded != 1 {
		t.Fatalf("breaker not open: %+v", s)
	}
}

// TestPeerSlow: a peer that hangs is bounded by the per-peer timeout —
// the caller waits roughly the timeout, not forever — and repeated
// timeouts open the breaker, after which misses don't wait at all.
func TestPeerSlow(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	var requests atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		requests.Add(1)
		select {
		case <-release:
		case <-r.Context().Done():
		}
	}))
	t.Cleanup(ts.Close)

	c := New(0, WithPeers(ts.URL), WithPeerTimeout(50*time.Millisecond), WithDegrade(2, time.Hour))
	started := time.Now()
	mustGet(t, c, "k0", "v")
	if waited := time.Since(started); waited > 2*time.Second {
		t.Fatalf("slow peer stalled the request %v (timeout 50ms)", waited)
	}
	mustGet(t, c, "k1", "v")
	if s := c.Stats(); s.PeerErrors != 2 || s.PeersDegraded != 1 {
		t.Fatalf("stats after two timeouts: %+v", s)
	}
	// Breaker open: further misses never reach the peer.
	before := requests.Load()
	mustGet(t, c, "k2", "v")
	if requests.Load() != before {
		t.Fatal("breaker open but the peer was still consulted")
	}
}

// TestPeerCorruptBody: a body that does not match its hash header is
// rejected, counted as an error, and never cached locally.
func TestPeerCorruptBody(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(HashHeader, BodyHash([]byte("what was stored")))
		w.Write([]byte("what arrived"))
	}))
	t.Cleanup(ts.Close)

	dir := t.TempDir()
	c := New(0, WithDir(dir), WithPeers(ts.URL))
	got, hit, err := c.GetOrCompute(context.Background(), "k1", func() ([]byte, error) {
		return []byte("fresh"), nil
	})
	if err != nil || hit || string(got) != "fresh" {
		t.Fatalf("corrupt peer body not rejected: %q, hit=%v, err=%v", got, hit, err)
	}
	s := c.Stats()
	if s.PeerErrors != 1 || s.PeerHits != 0 {
		t.Fatalf("stats after corrupt body: %+v", s)
	}
	// The freshly computed value, not the corrupt body, is what persisted.
	if b, err := os.ReadFile(filepath.Join(dir, "k1")); err != nil || string(b) != "fresh" {
		t.Fatalf("disk holds %q, %v; want the computed bytes", b, err)
	}
}

// TestPeerRecovers: the breaker re-probes after its interval and closes
// again once the peer answers.
func TestPeerRecovers(t *testing.T) {
	var healthy atomic.Bool
	val := []byte("peer-bytes")
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !healthy.Load() {
			http.Error(w, "warming up", http.StatusInternalServerError)
			return
		}
		w.Header().Set(HashHeader, BodyHash(val))
		w.Write(val)
	}))
	t.Cleanup(ts.Close)

	c := New(0, WithPeers(ts.URL), WithDegrade(1, 20*time.Millisecond))
	mustGet(t, c, "k0", "v")
	if s := c.Stats(); s.PeersDegraded != 1 {
		t.Fatalf("breaker not open after 500: %+v", s)
	}
	healthy.Store(true)
	// Probe slots open every 20ms; fresh keys keep missing locally (a
	// repeated key would become a memory hit and never reach the peer)
	// until one probe lands.
	deadline := time.Now().Add(5 * time.Second)
	for i := 1; c.Stats().PeerHits == 0; i++ {
		if time.Now().After(deadline) {
			t.Fatalf("peer never recovered: %+v", c.Stats())
		}
		c.GetOrCompute(context.Background(), fmt.Sprintf("k%d", i), func() ([]byte, error) { return []byte("v"), nil })
		time.Sleep(5 * time.Millisecond)
	}
	if s := c.Stats(); s.PeersDegraded != 0 {
		t.Fatalf("breaker still open after recovery: %+v", s)
	}
}

// TestPeek: local tiers only — memory, then disk — never peers, never
// compute.
func TestPeek(t *testing.T) {
	ts := peerServer(t, map[string][]byte{"remote": []byte("rv")})
	dir := t.TempDir()
	c := New(0, WithDir(dir), WithPeers(ts.URL))
	mustGet(t, c, "mem", "mv")
	if err := os.WriteFile(filepath.Join(dir, "disk"), []byte("dv"), 0o644); err != nil {
		t.Fatal(err)
	}

	before := c.Stats()
	if v, ok := c.Peek("mem"); !ok || string(v) != "mv" {
		t.Fatalf("Peek(mem) = %q, %v", v, ok)
	}
	if v, ok := c.Peek("disk"); !ok || string(v) != "dv" {
		t.Fatalf("Peek(disk) = %q, %v", v, ok)
	}
	// A key only a peer holds is a miss: Peek serves what this replica
	// stores, it must not chain fetches across the fleet.
	if _, ok := c.Peek("remote"); ok {
		t.Fatal("Peek consulted a peer")
	}
	after := c.Stats()
	if before.PeerHits != after.PeerHits || before.PeerMisses != after.PeerMisses || before.PeerErrors != after.PeerErrors {
		t.Fatalf("Peek touched the peer tier: %+v -> %+v", before, after)
	}
}

// TestPrefetch: pulls disk- and peer-resident values into memory
// without computing, and reports absence without poisoning the
// singleflight table.
func TestPrefetch(t *testing.T) {
	ts := peerServer(t, map[string][]byte{"remote": []byte("rv")})
	dir := t.TempDir()
	c := New(0, WithDir(dir), WithPeers(ts.URL))
	if err := os.WriteFile(filepath.Join(dir, "disk"), []byte("dv"), 0o644); err != nil {
		t.Fatal(err)
	}

	if !c.Prefetch("disk") || !c.Prefetch("remote") {
		t.Fatalf("prefetch of available values failed: %+v", c.Stats())
	}
	if c.Prefetch("absent") {
		t.Fatal("prefetch of an absent key reported success")
	}
	if _, inflight := c.Contains("absent"); inflight {
		t.Fatal("failed prefetch left a flight registered")
	}
	// The peer-fetched value was written through to the local disk.
	if b, err := os.ReadFile(filepath.Join(dir, "remote")); err != nil || string(b) != "rv" {
		t.Fatalf("prefetched value not persisted: %q, %v", b, err)
	}
	// Both are now memory hits; no recompute, no second peer fetch.
	if _, hit := mustGet(t, c, "remote", "x"); !hit {
		t.Fatal("prefetched value not served from memory")
	}
	if s := c.Stats(); s.PeerHits != 1 {
		t.Fatalf("peer consulted again after prefetch: %+v", s)
	}
}

// TestContainsSkipsDegradedDisk: while the disk tier is degraded the
// pure probe must not stat the directory — a hung disk would otherwise
// stall the admission decision it feeds. Reads stay on: Get still
// serves the entry.
func TestContainsSkipsDegradedDisk(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	c := New(0, WithDir(dir), WithDegrade(1, time.Hour))
	restore := breakDir(t, dir)
	mustGet(t, c, "k0", "v")
	if s := c.Stats(); !s.Degraded {
		t.Fatalf("not degraded: %+v", s)
	}

	// Heal the directory and place an entry behind the probe's back: a
	// stat would now succeed, so a "stored" answer proves Contains
	// still touched the degraded tier.
	restore()
	if err := os.WriteFile(filepath.Join(dir, "ondisk"), []byte("dv"), 0o644); err != nil {
		t.Fatal(err)
	}
	if stored, _ := c.Contains("ondisk"); stored {
		t.Fatal("Contains probed the disk tier while degraded")
	}
	// The read path is deliberately unaffected: a degraded tier skips
	// writes and probes, not hits.
	if got, hit := mustGet(t, c, "ondisk", "fresh"); !hit || string(got) != "dv" {
		t.Fatalf("Get while degraded = %q, hit=%v; want the disk value", got, hit)
	}
}
