package cache

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func mustGet(t *testing.T, c *Cache, key, val string) (got []byte, hit bool) {
	t.Helper()
	got, hit, err := c.GetOrCompute(context.Background(), key, func() ([]byte, error) {
		return []byte(val), nil
	})
	if err != nil {
		t.Fatalf("GetOrCompute(%q): %v", key, err)
	}
	return got, hit
}

func TestHitReturnsStoredBytes(t *testing.T) {
	c := New(0)
	first, hit := mustGet(t, c, "k", "payload")
	if hit {
		t.Error("first request reported a hit")
	}
	second, hit := mustGet(t, c, "k", "DIFFERENT")
	if !hit {
		t.Error("second request missed")
	}
	if !bytes.Equal(first, second) || string(second) != "payload" {
		t.Errorf("hit bytes %q differ from stored %q", second, first)
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Entries != 1 {
		t.Errorf("stats %+v", s)
	}
}

// TestSingleflightCollapse: concurrent identical requests run the
// computation once; every waiter receives the same bytes.
func TestSingleflightCollapse(t *testing.T) {
	const followers = 9
	c := New(0)
	var executions atomic.Int64
	started := make(chan struct{})
	release := make(chan struct{})

	results := make(chan []byte, followers+1)
	go func() {
		val, _, err := c.GetOrCompute(context.Background(), "k", func() ([]byte, error) {
			executions.Add(1)
			close(started)
			<-release
			return []byte("shared"), nil
		})
		if err != nil {
			t.Errorf("leader: %v", err)
		}
		results <- val
	}()
	<-started

	var wg sync.WaitGroup
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			val, hit, err := c.GetOrCompute(context.Background(), "k", func() ([]byte, error) {
				executions.Add(1)
				return []byte("shared"), nil
			})
			if err != nil {
				t.Errorf("follower: %v", err)
				return
			}
			if !hit {
				t.Error("collapsed follower did not report a hit")
			}
			results <- val
		}()
	}
	// Every follower must be queued on the flight before it resolves.
	for c.Stats().Dedups != followers {
		time.Sleep(100 * time.Microsecond)
	}
	close(release)
	wg.Wait()

	if n := executions.Load(); n != 1 {
		t.Errorf("computation executed %d times, want 1", n)
	}
	for i := 0; i < followers+1; i++ {
		if val := <-results; string(val) != "shared" {
			t.Errorf("result %q", val)
		}
	}
	s := c.Stats()
	if s.Misses != 1 || s.Dedups != followers || s.Inflight != 0 {
		t.Errorf("stats %+v", s)
	}
}

// TestErrorsNotCached: a failed computation leaves no entry; the next
// request recomputes and can succeed.
func TestErrorsNotCached(t *testing.T) {
	c := New(0)
	boom := errors.New("boom")
	_, _, err := c.GetOrCompute(context.Background(), "k", func() ([]byte, error) {
		return nil, boom
	})
	if err != boom {
		t.Fatalf("err = %v", err)
	}
	if s := c.Stats(); s.Entries != 0 {
		t.Fatalf("error cached: %+v", s)
	}
	val, hit := mustGet(t, c, "k", "ok")
	if hit || string(val) != "ok" {
		t.Fatalf("recompute after error: hit=%v val=%q", hit, val)
	}
}

// TestLRUEviction: the byte budget evicts least-recently-used entries,
// and a hit refreshes recency.
func TestLRUEviction(t *testing.T) {
	// Each entry costs len(key)+len(val) = 1+9 = 10 bytes; budget fits 2.
	c := New(20)
	mustGet(t, c, "a", "123456789")
	mustGet(t, c, "b", "123456789")
	if _, hit := mustGet(t, c, "a", "x"); !hit {
		t.Fatal("a missing before eviction")
	}
	mustGet(t, c, "c", "123456789") // evicts b (LRU), not the refreshed a
	if _, hit := mustGet(t, c, "a", "recomputed"); !hit {
		t.Error("a evicted despite being recently used")
	}
	if _, hit := mustGet(t, c, "b", "recomputed"); hit {
		t.Error("b survived past the byte budget")
	}
	s := c.Stats()
	if s.Evictions < 1 {
		t.Errorf("no evictions recorded: %+v", s)
	}
	if s.Bytes > 20 {
		t.Errorf("bytes %d over budget", s.Bytes)
	}
}

// TestOversizedValueNotCached: one value above the whole budget is
// served but never stored.
func TestOversizedValueNotCached(t *testing.T) {
	c := New(8)
	val, hit := mustGet(t, c, "k", "this value is larger than the budget")
	if hit || len(val) == 0 {
		t.Fatalf("hit=%v val=%q", hit, val)
	}
	if s := c.Stats(); s.Entries != 0 || s.Bytes != 0 {
		t.Fatalf("oversized value stored: %+v", s)
	}
}

// TestWaiterContextCancel: a waiter abandoning an in-flight computation
// gets its context error; the computation still completes and is cached.
func TestWaiterContextCancel(t *testing.T) {
	c := New(0)
	started := make(chan struct{})
	release := make(chan struct{})
	go func() {
		c.GetOrCompute(context.Background(), "k", func() ([]byte, error) {
			close(started)
			<-release
			return []byte("late"), nil
		})
	}()
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, _, err := c.GetOrCompute(ctx, "k", func() ([]byte, error) { return nil, nil })
		errc <- err
	}()
	for c.Stats().Dedups != 1 {
		time.Sleep(100 * time.Microsecond)
	}
	cancel()
	if err := <-errc; err != context.Canceled {
		t.Fatalf("cancelled waiter returned %v", err)
	}
	close(release)
	// The leader's run is unaffected: its value lands in the cache.
	for c.Stats().Inflight != 0 {
		time.Sleep(100 * time.Microsecond)
	}
	val, hit := mustGet(t, c, "k", "x")
	if !hit || string(val) != "late" {
		t.Fatalf("hit=%v val=%q", hit, val)
	}
}

// TestPanickedComputeDoesNotPoisonKey: a panic escaping compute must
// fail waiters promptly (not strand them on the flight) and leave the
// key recomputable; the panic itself propagates to the leader's caller.
func TestPanickedComputeDoesNotPoisonKey(t *testing.T) {
	c := New(0)
	started := make(chan struct{})
	release := make(chan struct{})
	leaderPanicked := make(chan any, 1)
	go func() {
		defer func() { leaderPanicked <- recover() }()
		c.GetOrCompute(context.Background(), "k", func() ([]byte, error) {
			close(started)
			<-release
			panic("boom")
		})
	}()
	<-started
	errc := make(chan error, 1)
	go func() {
		_, _, err := c.GetOrCompute(context.Background(), "k", func() ([]byte, error) {
			return []byte("follower should not compute while flight is live"), nil
		})
		errc <- err
	}()
	for c.Stats().Dedups != 1 {
		time.Sleep(100 * time.Microsecond)
	}
	close(release)
	if r := <-leaderPanicked; r == nil {
		t.Fatal("panic did not propagate to the leader's caller")
	}
	if err := <-errc; err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("follower err = %v, want a panicked-flight error", err)
	}
	if s := c.Stats(); s.Inflight != 0 || s.Entries != 0 {
		t.Fatalf("flight not cleaned up: %+v", s)
	}
	val, hit := mustGet(t, c, "k", "recovered")
	if hit || string(val) != "recovered" {
		t.Fatalf("key poisoned after panic: hit=%v val=%q", hit, val)
	}
}

// TestConcurrentMixedKeys hammers the cache with overlapping keys under
// -race; every returned value must match its key.
func TestConcurrentMixedKeys(t *testing.T) {
	c := New(256)
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := fmt.Sprintf("key-%d", i%8)
			val, _, err := c.GetOrCompute(context.Background(), key, func() ([]byte, error) {
				return []byte("val-" + key), nil
			})
			if err != nil {
				t.Errorf("%s: %v", key, err)
				return
			}
			if string(val) != "val-"+key {
				t.Errorf("key %s got %q", key, val)
			}
		}(i)
	}
	wg.Wait()
	if s := c.Stats(); s.Inflight != 0 {
		t.Errorf("inflight leak: %+v", s)
	}
}

// TestPersistenceWriteThroughAndReload: values written by one Cache are
// served by a fresh Cache over the same directory — the restart
// survival path — and disk hits count as hits, not recomputations.
func TestPersistenceWriteThroughAndReload(t *testing.T) {
	dir := t.TempDir()
	c1 := New(0, WithDir(dir))
	got, hit := mustGet(t, c1, "aaaa", "persisted")
	if hit || string(got) != "persisted" {
		t.Fatalf("first store: hit=%v val=%q", hit, got)
	}
	if s := c1.Stats(); !s.Persistent || s.DiskWrites != 1 || s.PersistErrors != 0 {
		t.Fatalf("stats after write %+v", s)
	}

	// A new process over the same directory.
	c2 := New(0, WithDir(dir))
	var computed atomic.Int32
	val, hit, err := c2.GetOrCompute(context.Background(), "aaaa", func() ([]byte, error) {
		computed.Add(1)
		return []byte("recomputed"), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !hit || string(val) != "persisted" || computed.Load() != 0 {
		t.Fatalf("reload: hit=%v val=%q computed=%d", hit, val, computed.Load())
	}
	s := c2.Stats()
	if s.DiskHits != 1 || s.Misses != 0 {
		t.Fatalf("stats after reload %+v", s)
	}
	// Now resident in memory: the next call never touches disk.
	if _, hit := mustGet(t, c2, "aaaa", "recomputed"); !hit {
		t.Fatal("memory miss after disk reload")
	}
	if s := c2.Stats(); s.Hits != 1 || s.DiskHits != 1 {
		t.Fatalf("stats after memory hit %+v", s)
	}
}

// TestPersistenceSurvivesMemoryEviction: an LRU-evicted entry replays
// from disk instead of recomputing.
func TestPersistenceSurvivesMemoryEviction(t *testing.T) {
	c := New(20, WithDir(t.TempDir())) // fits one 12-byte entry, not two
	mustGet(t, c, "aaaa", "value-aa")
	mustGet(t, c, "bbbb", "value-bb") // evicts aaaa from memory
	if s := c.Stats(); s.Evictions != 1 {
		t.Fatalf("stats %+v", s)
	}
	val, hit, err := c.GetOrCompute(context.Background(), "aaaa", func() ([]byte, error) {
		return []byte("recomputed"), nil
	})
	if err != nil || !hit || string(val) != "value-aa" {
		t.Fatalf("evicted entry not replayed from disk: hit=%v val=%q err=%v", hit, val, err)
	}
}

// TestPersistenceUnsafeKeySkipsTier: keys that cannot name a file
// bypass persistence but still cache in memory.
func TestPersistenceUnsafeKeySkipsTier(t *testing.T) {
	c := New(0, WithDir(t.TempDir()))
	mustGet(t, c, "../escape", "val")
	if s := c.Stats(); s.DiskWrites != 0 || s.Misses != 1 {
		t.Fatalf("stats %+v", s)
	}
	if _, hit := mustGet(t, c, "../escape", "val"); !hit {
		t.Fatal("unsafe key not cached in memory")
	}
}

// TestPersistenceErrorsNotWritten: failed computations leave no file
// behind to replay.
func TestPersistenceErrorsNotWritten(t *testing.T) {
	dir := t.TempDir()
	c := New(0, WithDir(dir))
	_, _, err := c.GetOrCompute(context.Background(), "bad1", func() ([]byte, error) {
		return nil, errors.New("nope")
	})
	if err == nil {
		t.Fatal("error swallowed")
	}
	c2 := New(0, WithDir(dir))
	val, hit, err := c2.GetOrCompute(context.Background(), "bad1", func() ([]byte, error) {
		return []byte("fresh"), nil
	})
	if err != nil || hit || string(val) != "fresh" {
		t.Fatalf("hit=%v val=%q err=%v", hit, val, err)
	}
}

// TestPersistenceUnusableDirDegrades: a directory that cannot be
// created disables the tier; the cache itself keeps working.
func TestPersistenceUnusableDirDegrades(t *testing.T) {
	c := New(0, WithDir(string([]byte{0})))
	if s := c.Stats(); s.Persistent || s.PersistErrors != 1 {
		t.Fatalf("stats %+v", s)
	}
	if got, _ := mustGet(t, c, "k", "v"); string(got) != "v" {
		t.Fatalf("got %q", got)
	}
}
