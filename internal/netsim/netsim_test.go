package netsim

import (
	"math/rand/v2"
	"testing"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 5, 1); err == nil {
		t.Error("zero width should fail")
	}
	if _, err := New(5, 5, 0); err == nil {
		t.Error("zero bandwidth should fail")
	}
	n, err := New(3, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if n.Nodes() != 12 {
		t.Errorf("nodes = %d", n.Nodes())
	}
	// Directed edges: 2*((W-1)*H + W*(H-1)) = 2*(8+9) = 34.
	if n.Edges() != 34 {
		t.Errorf("edges = %d, want 34", n.Edges())
	}
	if n.TotalLaneCapacity() != 68 {
		t.Errorf("capacity = %d, want 68", n.TotalLaneCapacity())
	}
}

func TestFindPathBasics(t *testing.T) {
	n, _ := New(5, 5, 1)
	p := n.FindPath(Node{X: 0, Y: 0}, Node{X: 3, Y: 0})
	if len(p) != 4 {
		t.Fatalf("path length %d, want 4 nodes", len(p))
	}
	if p[0] != (Node{X: 0, Y: 0}) || p[len(p)-1] != (Node{X: 3, Y: 0}) {
		t.Error("path endpoints wrong")
	}
	// Self path.
	if p := n.FindPath(Node{X: 2, Y: 2}, Node{X: 2, Y: 2}); len(p) != 1 {
		t.Error("self path should be the single node")
	}
	// Out-of-grid.
	if p := n.FindPath(Node{X: -1, Y: 0}, Node{X: 0, Y: 0}); p != nil {
		t.Error("out-of-grid src should fail")
	}
}

func TestCapacityRespected(t *testing.T) {
	// A 2x1 grid has a single undirected adjacency; with bandwidth 1 the
	// directed lane (0,0)->(1,0) fits one path only.
	n, _ := New(2, 1, 1)
	r1 := n.ScheduleGreedy([]Request{{ID: 0, Src: Node{X: 0, Y: 0}, Dst: Node{X: 1, Y: 0}}})
	if len(r1.Scheduled) != 1 {
		t.Fatal("first request should schedule")
	}
	r2 := n.ScheduleGreedy([]Request{{ID: 1, Src: Node{X: 0, Y: 0}, Dst: Node{X: 1, Y: 0}}})
	if len(r2.Scheduled) != 0 || len(r2.Failed) != 1 {
		t.Error("second request should exhaust the lane and fail")
	}
	// The reverse direction is independent capacity.
	r3 := n.ScheduleGreedy([]Request{{ID: 2, Src: Node{X: 1, Y: 0}, Dst: Node{X: 0, Y: 0}}})
	if len(r3.Scheduled) != 1 {
		t.Error("reverse lane should still be free")
	}
}

func TestPathsRouteAroundCongestion(t *testing.T) {
	// Block the straight east lane; the scheduler should detour.
	n, _ := New(3, 2, 1)
	first := n.ScheduleGreedy([]Request{{ID: 0, Src: Node{X: 0, Y: 0}, Dst: Node{X: 2, Y: 0}}})
	if len(first.Scheduled) != 1 {
		t.Fatal("first path should schedule")
	}
	second := n.ScheduleGreedy([]Request{{ID: 1, Src: Node{X: 0, Y: 0}, Dst: Node{X: 2, Y: 0}}})
	if len(second.Scheduled) != 1 {
		t.Fatal("second path should detour through row 1")
	}
	if len(second.Scheduled[0].Path) <= 3 {
		t.Errorf("detour path has %d nodes, expected longer than direct", len(second.Scheduled[0].Path))
	}
}

func TestUtilizationAccounting(t *testing.T) {
	n, _ := New(2, 1, 2)
	n.ScheduleGreedy([]Request{{ID: 0, Src: Node{X: 0, Y: 0}, Dst: Node{X: 1, Y: 0}}})
	// 1 lane used of 4 (2 directed edges × bandwidth 2).
	if got := n.Utilization(); got != 0.25 {
		t.Errorf("utilization = %g, want 0.25", got)
	}
	n.Reset()
	if n.Utilization() != 0 {
		t.Error("Reset should clear utilization")
	}
}

func TestAlternateDestinations(t *testing.T) {
	// Saturate the only lane into the destination, then check the request
	// succeeds via its alternate.
	n, _ := New(3, 1, 1)
	n.ScheduleGreedy([]Request{{ID: 0, Src: Node{X: 1, Y: 0}, Dst: Node{X: 2, Y: 0}}})
	res := n.ScheduleGreedy([]Request{{
		ID: 1, Src: Node{X: 1, Y: 0}, Dst: Node{X: 2, Y: 0},
		AltDst: []Node{{X: 0, Y: 0}},
	}})
	if len(res.Scheduled) != 1 {
		t.Fatal("request should schedule via alternate destination")
	}
	if !res.Scheduled[0].UsedAlt {
		t.Error("schedule should be marked as using the alternate")
	}
	if res.Retries != 1 {
		t.Errorf("retries = %d, want 1", res.Retries)
	}
}

func TestScheduleWindowCarriesFailures(t *testing.T) {
	n, _ := New(2, 1, 1)
	reqs := []Request{
		{ID: 0, Src: Node{X: 0, Y: 0}, Dst: Node{X: 1, Y: 0}},
		{ID: 1, Src: Node{X: 0, Y: 0}, Dst: Node{X: 1, Y: 0}},
		{ID: 2, Src: Node{X: 0, Y: 0}, Dst: Node{X: 1, Y: 0}},
	}
	win := n.ScheduleWindow(reqs, 5)
	if !win.AllScheduled {
		t.Fatal("three beats should place three conflicting requests")
	}
	if win.BeatsUsed != 3 {
		t.Errorf("beats used = %d, want 3", win.BeatsUsed)
	}
	// Insufficient beats: not all scheduled.
	n2, _ := New(2, 1, 1)
	win = n2.ScheduleWindow(reqs, 2)
	if win.AllScheduled {
		t.Error("two beats cannot place three conflicting requests")
	}
}

func TestToffoliRequestsShape(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	reqs, err := ToffoliRequests(20, 20, 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 10*RequestsPerToffoli {
		t.Fatalf("requests = %d, want %d", len(reqs), 10*RequestsPerToffoli)
	}
	for _, r := range reqs {
		for _, v := range append([]Node{r.Src, r.Dst}, r.AltDst...) {
			if v.X < 0 || v.X >= 20 || v.Y < 0 || v.Y >= 20 {
				t.Fatalf("request %d touches out-of-grid node %v", r.ID, v)
			}
		}
	}
	if _, err := ToffoliRequests(2, 2, 5, rng); err == nil {
		t.Error("tiny grid should fail")
	}
	if _, err := ToffoliRequests(20, 20, 0, rng); err == nil {
		t.Error("zero Toffolis should fail")
	}
}

func TestBandwidthExperimentPaperClaims(t *testing.T) {
	res, err := DefaultExperiment([]int{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	byB := map[int]BandwidthResult{}
	for _, r := range res {
		byB[r.Bandwidth] = r
	}
	// Bandwidth 2: full overlap with EC, ≈23% first-beat utilization.
	b2 := byB[2]
	if !b2.Overlapped {
		t.Error("bandwidth 2 should hide all communication under the EC window")
	}
	if b2.Utilization < 0.12 || b2.Utilization > 0.40 {
		t.Errorf("bandwidth-2 utilization = %.3f, paper says ≈0.23", b2.Utilization)
	}
	if b2.BeatsUsed > 3 {
		t.Errorf("bandwidth 2 needed %d beats; should be almost single-beat", b2.BeatsUsed)
	}
	// Bandwidth 1 congests: first beat cannot place everything.
	b1 := byB[1]
	if b1.ScheduledFrac >= 0.99 {
		t.Errorf("bandwidth 1 first-beat fraction = %.3f; expected congestion", b1.ScheduledFrac)
	}
	if b1.Utilization <= b2.Utilization {
		t.Error("bandwidth 1 should run hotter than bandwidth 2")
	}
	// Bandwidth 4 is easy: single beat, lower utilization.
	b4 := byB[4]
	if b4.BeatsUsed != 1 || !b4.Overlapped {
		t.Error("bandwidth 4 should schedule in one beat")
	}
	if b4.Utilization >= b2.Utilization {
		t.Error("bandwidth 4 should be cooler than bandwidth 2")
	}
}

func TestScheduleDeterminism(t *testing.T) {
	a, err := DefaultExperiment([]int{2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := DefaultExperiment([]int{2})
	if err != nil {
		t.Fatal(err)
	}
	if a[0] != b[0] {
		t.Errorf("experiment not deterministic: %+v vs %+v", a[0], b[0])
	}
}
