package netsim

import (
	"fmt"
	"math/rand/v2"
)

// The fault-tolerant Toffoli working set (Section 5): three operand
// logical qubits plus six ancilla qubits.
const (
	ToffoliOperands = 3
	ToffoliAncilla  = 6
	// RequestsPerToffoli is the EPR traffic per gate: each ancilla links
	// to an operand and the operands link pairwise.
	RequestsPerToffoli = ToffoliAncilla + 2
)

// ToffoliRequests builds the EPR request set of `toffolis` concurrent
// fault-tolerant Toffoli gates on a w×h island grid. Each gate's nine
// logical qubits occupy a contiguous neighbourhood (the scheduler's drift
// optimization keeps interacting qubits adjacent), so requests span one to
// a few islands; alternates list the destination's neighbours.
func ToffoliRequests(w, h, toffolis int, rng *rand.Rand) ([]Request, error) {
	if w < 4 || h < 4 {
		return nil, fmt.Errorf("netsim: grid %dx%d too small for Toffoli clusters", w, h)
	}
	if toffolis <= 0 {
		return nil, fmt.Errorf("netsim: need a positive Toffoli count")
	}
	var reqs []Request
	id := 0
	for t := 0; t < toffolis; t++ {
		anchor := Node{X: 1 + rng.IntN(w-2), Y: 1 + rng.IntN(h-2)}
		member := func() Node {
			return Node{
				X: clamp(anchor.X+rng.IntN(5)-2, 0, w-1),
				Y: clamp(anchor.Y+rng.IntN(5)-2, 0, h-1),
			}
		}
		operands := [ToffoliOperands]Node{member(), member(), member()}
		addReq := func(src, dst Node) {
			var alts []Node
			for _, d := range [4]Node{{X: 1, Y: 0}, {X: -1, Y: 0}, {X: 0, Y: 1}, {X: 0, Y: -1}} {
				alt := Node{X: dst.X + d.X, Y: dst.Y + d.Y}
				if alt.X >= 0 && alt.X < w && alt.Y >= 0 && alt.Y < h && alt != src {
					alts = append(alts, alt)
				}
			}
			reqs = append(reqs, Request{ID: id, Src: src, Dst: dst, AltDst: alts})
			id++
		}
		for a := 0; a < ToffoliAncilla; a++ {
			addReq(member(), operands[a%ToffoliOperands])
		}
		addReq(operands[0], operands[1])
		addReq(operands[1], operands[2])
	}
	return reqs, nil
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// WindowBeats is how many EPR transport beats fit inside one level-2 EC
// step: T(2,ecc) ≈ 43 ms against a few-ms on-chip connection time.
const WindowBeats = 10

// BandwidthResult is one row of the Section-5 bandwidth experiment.
type BandwidthResult struct {
	Bandwidth     int
	Requests      int
	Scheduled     int     // scheduled in the first beat
	ScheduledFrac float64 // first-beat fraction
	Utilization   float64 // first-beat aggregate bandwidth utilization
	Retries       int
	BeatsUsed     int  // beats needed to place everything (≤ WindowBeats)
	Overlapped    bool // whole request set hidden under the EC window
}

// RunBandwidthSweep reproduces the Section-5 scheduler study: the same
// Toffoli workload scheduled at each candidate bandwidth. The paper's
// finding: "given two channels in each direction (bandwidth of 2), we
// could schedule communication such that it always overlapped with error
// correction", at ≈23% aggregate bandwidth utilization.
func RunBandwidthSweep(w, h, toffolis int, bandwidths []int, seed uint64) ([]BandwidthResult, error) {
	var out []BandwidthResult
	for _, b := range bandwidths {
		rng := rand.New(rand.NewPCG(seed, seed^0x5eed))
		reqs, err := ToffoliRequests(w, h, toffolis, rng)
		if err != nil {
			return nil, err
		}
		net, err := New(w, h, b)
		if err != nil {
			return nil, err
		}
		win := net.ScheduleWindow(reqs, WindowBeats)
		first := win.Beats[0]
		out = append(out, BandwidthResult{
			Bandwidth:     b,
			Requests:      len(reqs),
			Scheduled:     len(first.Scheduled),
			ScheduledFrac: float64(len(first.Scheduled)) / float64(len(reqs)),
			Utilization:   first.Utilization,
			Retries:       first.Retries,
			BeatsUsed:     win.BeatsUsed,
			Overlapped:    win.AllScheduled,
		})
	}
	return out, nil
}

// DefaultExperiment is the canonical Section-5 configuration: a 20×20
// island grid carrying 25 concurrent fault-tolerant Toffoli gates, which
// at bandwidth 2 yields full overlap at ≈23% utilization.
func DefaultExperiment(bandwidths []int) ([]BandwidthResult, error) {
	return RunBandwidthSweep(20, 20, 25, bandwidths, 7)
}
