package netsim

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

// Property: the greedy scheduler never over-subscribes any channel lane,
// every scheduled path is a connected grid walk with the right endpoints,
// and scheduled+failed accounts for every request.
func TestQuickSchedulerSoundness(t *testing.T) {
	f := func(seed uint64, wRaw, hRaw, reqRaw, bRaw uint8) bool {
		w := 4 + int(wRaw%12)
		h := 4 + int(hRaw%12)
		b := 1 + int(bRaw%3)
		nReq := 1 + int(reqRaw)%80
		r := rand.New(rand.NewPCG(seed, seed^1))
		var reqs []Request
		for i := 0; i < nReq; i++ {
			reqs = append(reqs, Request{
				ID:  i,
				Src: Node{X: r.IntN(w), Y: r.IntN(h)},
				Dst: Node{X: r.IntN(w), Y: r.IntN(h)},
			})
		}
		net, err := New(w, h, b)
		if err != nil {
			return false
		}
		res := net.ScheduleGreedy(reqs)
		if len(res.Scheduled)+len(res.Failed) != nReq {
			return false
		}
		// Rebuild lane usage from the reported paths and compare against
		// capacity.
		used := map[[2]Node]int{}
		for _, sp := range res.Scheduled {
			p := sp.Path
			if len(p) == 0 {
				return false
			}
			if p[0] != sp.Request.Src {
				return false
			}
			last := p[len(p)-1]
			okDst := last == sp.Request.Dst
			for _, alt := range sp.Request.AltDst {
				if last == alt {
					okDst = true
				}
			}
			if !okDst {
				return false
			}
			for i := 1; i < len(p); i++ {
				dx := p[i].X - p[i-1].X
				dy := p[i].Y - p[i-1].Y
				if dx*dx+dy*dy != 1 {
					return false // not a grid step
				}
				used[[2]Node{p[i-1], p[i]}]++
			}
		}
		for _, v := range used {
			if v > b {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: utilization is always in [0,1] and grows monotonically as
// requests are added one at a time.
func TestQuickUtilizationBounds(t *testing.T) {
	f := func(seed uint64, reqRaw uint8) bool {
		r := rand.New(rand.NewPCG(seed, seed^2))
		net, err := New(8, 8, 2)
		if err != nil {
			return false
		}
		prev := 0.0
		for i := 0; i < 1+int(reqRaw)%30; i++ {
			net.ScheduleGreedy([]Request{{
				ID:  i,
				Src: Node{X: r.IntN(8), Y: r.IntN(8)},
				Dst: Node{X: r.IntN(8), Y: r.IntN(8)},
			}})
			u := net.Utilization()
			if u < prev || u < 0 || u > 1 {
				return false
			}
			prev = u
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
