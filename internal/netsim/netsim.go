// Package netsim simulates the QLA logical interconnect: the grid of
// teleportation islands and the channels between them, plus the greedy
// EPR-distribution scheduler of Section 5.
//
// "We assigned one channel to carry the created EPR pairs to their
// destinations and another channel to return the used EPR pairs. ... We
// define the bandwidth of QLA's communication channels as the number of
// physical channels in each direction. ... The scheduler is a heuristic
// greedy scheduler that scalably achieves an average of ~23% aggregate
// bandwidth utilization on our implementation of the Toffoli gate. It
// works by grabbing all available bandwidth whenever it can. However, if
// this means that the scheduler cannot find the necessary paths, it will
// back off and retry with a different set of start and end points."
package netsim

import (
	"fmt"
	"sort"

	"qla/internal/tilegrid"
)

// Node is an island position on the interconnect grid — the shared
// tilegrid coordinate type (see internal/tilegrid).
type Node = tilegrid.Coord

// Network is a rectangular island grid with capacitated channels. Each
// undirected neighbour pair is joined by Bandwidth lanes per direction per
// scheduling window (one EC step).
type Network struct {
	W, H      int
	Bandwidth int

	used map[[2]Node]int
}

// New builds a W×H island grid with the given per-direction bandwidth.
func New(w, h, bandwidth int) (*Network, error) {
	if w <= 0 || h <= 0 {
		return nil, fmt.Errorf("netsim: grid %dx%d must be positive", w, h)
	}
	if bandwidth <= 0 {
		return nil, fmt.Errorf("netsim: bandwidth %d must be positive", bandwidth)
	}
	return &Network{W: w, H: h, Bandwidth: bandwidth, used: make(map[[2]Node]int)}, nil
}

// Reset clears all reservations (a new scheduling window).
func (n *Network) Reset() { n.used = make(map[[2]Node]int) }

// Nodes returns the number of islands.
func (n *Network) Nodes() int { return n.W * n.H }

// Edges returns the number of directed channel lanescapacities:
// each undirected adjacency contributes Bandwidth lanes per direction.
func (n *Network) Edges() int {
	horizontal := (n.W - 1) * n.H
	vertical := n.W * (n.H - 1)
	return 2 * (horizontal + vertical) // directed
}

// TotalLaneCapacity is the number of lane-slots available in one window.
func (n *Network) TotalLaneCapacity() int { return n.Edges() * n.Bandwidth }

// UsedLanes returns the number of reserved lane-slots.
func (n *Network) UsedLanes() int {
	total := 0
	for _, v := range n.used {
		total += v
	}
	return total
}

// Utilization is the aggregate bandwidth utilization of the window.
func (n *Network) Utilization() float64 {
	cap := n.TotalLaneCapacity()
	if cap == 0 {
		return 0
	}
	return float64(n.UsedLanes()) / float64(cap)
}

func (n *Network) rect() tilegrid.Rect { return tilegrid.Rect{W: n.W, H: n.H} }

func (n *Network) inGrid(v Node) bool { return n.rect().Contains(v) }

func (n *Network) neighbors(v Node, buf []Node) []Node {
	return n.rect().Neighbors(v, buf[:0])
}

func (n *Network) free(a, b Node) bool {
	return n.used[[2]Node{a, b}] < n.Bandwidth
}

func (n *Network) reserve(path []Node) {
	for i := 1; i < len(path); i++ {
		n.used[[2]Node{path[i-1], path[i]}]++
	}
}

// FindPath runs a BFS from src to dst over channels with free capacity,
// returning the node sequence (src first) or nil when disconnected.
func (n *Network) FindPath(src, dst Node) []Node {
	if !n.inGrid(src) || !n.inGrid(dst) {
		return nil
	}
	if src == dst {
		return []Node{src}
	}
	prev := map[Node]Node{src: src}
	queue := []Node{src}
	var nbuf [4]Node
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range n.neighbors(v, nbuf[:0]) {
			if _, seen := prev[w]; seen || !n.free(v, w) {
				continue
			}
			prev[w] = v
			if w == dst {
				var path []Node
				for at := dst; at != src; at = prev[at] {
					path = append(path, at)
				}
				path = append(path, src)
				for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
					path[i], path[j] = path[j], path[i]
				}
				return path
			}
			queue = append(queue, w)
		}
	}
	return nil
}

// Request asks for an EPR connection between two islands during the
// current window. AltDst lists fallback destinations (the "different set
// of start and end points" the paper's scheduler retries with, enabled by
// qubit drift: the gate can run at either operand's location or a
// neighbouring tile).
type Request struct {
	ID     int
	Src    Node
	Dst    Node
	AltDst []Node
}

// ScheduledPath records a satisfied request.
type ScheduledPath struct {
	Request Request
	Path    []Node
	UsedAlt bool
}

// Result summarizes one scheduling window.
type Result struct {
	Scheduled   []ScheduledPath
	Failed      []Request
	Utilization float64
	Retries     int
}

// ScheduleGreedy satisfies requests greedily: longest-distance requests
// first (they have the fewest routing options), one BFS path each,
// grabbing capacity as it goes. Requests that fail get a second pass with
// their alternate endpoints, then a final pass retrying the originals on
// whatever capacity remains.
func (n *Network) ScheduleGreedy(reqs []Request) Result {
	order := make([]Request, len(reqs))
	copy(order, reqs)
	sort.SliceStable(order, func(i, j int) bool {
		return manhattan(order[i]) > manhattan(order[j])
	})

	var res Result
	var deferred []Request
	for _, r := range order {
		if path := n.FindPath(r.Src, r.Dst); path != nil {
			n.reserve(path)
			res.Scheduled = append(res.Scheduled, ScheduledPath{Request: r, Path: path})
		} else {
			deferred = append(deferred, r)
		}
	}
	for _, r := range deferred {
		res.Retries++
		done := false
		for _, alt := range r.AltDst {
			if path := n.FindPath(r.Src, alt); path != nil {
				n.reserve(path)
				res.Scheduled = append(res.Scheduled, ScheduledPath{Request: r, Path: path, UsedAlt: true})
				done = true
				break
			}
		}
		if !done {
			if path := n.FindPath(r.Src, r.Dst); path != nil {
				n.reserve(path)
				res.Scheduled = append(res.Scheduled, ScheduledPath{Request: r, Path: path})
				done = true
			}
		}
		if !done {
			res.Failed = append(res.Failed, r)
		}
	}
	res.Utilization = n.Utilization()
	return res
}

// WindowResult reports scheduling a request set across the transport
// beats of one error-correction window: the 0.043 s level-2 EC step fits
// several few-ms EPR deliveries back to back, so requests that lose the
// bandwidth race in one beat retry in the next.
type WindowResult struct {
	Beats           []Result
	BeatsUsed       int
	AllScheduled    bool
	PeakUtilization float64 // utilization of the busiest beat
	MeanUtilization float64 // lane-slots used over capacity across beats
}

// ScheduleWindow schedules reqs across up to maxBeats transport beats,
// resetting channel capacity between beats and carrying failures forward.
func (n *Network) ScheduleWindow(reqs []Request, maxBeats int) WindowResult {
	if maxBeats <= 0 {
		panic("netsim: window needs at least one beat")
	}
	var win WindowResult
	pending := reqs
	usedTotal := 0
	for beat := 0; beat < maxBeats && len(pending) > 0; beat++ {
		n.Reset()
		res := n.ScheduleGreedy(pending)
		win.Beats = append(win.Beats, res)
		win.BeatsUsed++
		usedTotal += n.UsedLanes()
		if res.Utilization > win.PeakUtilization {
			win.PeakUtilization = res.Utilization
		}
		pending = res.Failed
	}
	win.AllScheduled = len(pending) == 0
	if cap := n.TotalLaneCapacity() * win.BeatsUsed; cap > 0 {
		win.MeanUtilization = float64(usedTotal) / float64(cap)
	}
	return win
}

func manhattan(r Request) int { return tilegrid.Manhattan(r.Src, r.Dst) }
