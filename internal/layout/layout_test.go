package layout

import (
	"math"
	"strings"
	"testing"
)

func TestTileDimensions(t *testing.T) {
	// Section 4.2: "our qubit will have dimensions of (36×147) cells =
	// 2.11 mm² at 20 µm on each cell side".
	if TileW != 36 || TileH != 147 {
		t.Errorf("tile = %dx%d, want 36x147", TileW, TileH)
	}
	area := TileAreaMM2()
	if math.Abs(area-2.11) > 0.01 {
		t.Errorf("tile area = %.3f mm², paper says 2.11", area)
	}
}

func TestPitchMatchesTable2AreaModel(t *testing.T) {
	// Table 2: area = Q · pitch · (20µm)²; N=2048 has Q=602259 and
	// area 1.80 m².
	got := 602259 * TilePitchAreaM2()
	if math.Abs(got-1.80) > 0.01 {
		t.Errorf("area(N=2048) = %.4f m², Table 2 says 1.80", got)
	}
	// N=128: Q=37971 -> 0.11 m².
	got = 37971 * TilePitchAreaM2()
	if math.Abs(got-0.11) > 0.005 {
		t.Errorf("area(N=128) = %.4f m², Table 2 says 0.11", got)
	}
}

func TestBlockGeometry(t *testing.T) {
	// Three level-1 blocks across a tile, seven rows of them; the block
	// width is the inter-block distance r = 12 of Equation 2.
	if BlockW*3 != TileW || BlockH*7 != TileH {
		t.Errorf("block %dx%d does not tile the %dx%d qubit", BlockW, BlockH, TileW, TileH)
	}
	if InterBlockCells != 12 {
		t.Errorf("r = %d cells, paper says 12", InterBlockCells)
	}
}

func TestFloorplanShape(t *testing.T) {
	f, err := NewFloorplan(100)
	if err != nil {
		t.Fatal(err)
	}
	// The grid compensates the 3.4:1 tile aspect: more columns than rows.
	if f.Cols <= f.Rows {
		t.Errorf("floorplan(100) = %dx%d; expected cols > rows for tall tiles", f.Cols, f.Rows)
	}
	if f.Cols*f.Rows < f.Q {
		t.Error("floorplan too small for its qubits")
	}
	f, _ = NewFloorplan(101)
	if f.Cols*f.Rows < 101 {
		t.Error("floorplan(101) cannot hold 101 qubits")
	}
	if _, err := NewFloorplan(0); err == nil {
		t.Error("NewFloorplan(0) should fail")
	}
}

func TestTilePositions(t *testing.T) {
	f, _ := NewFloorplan(10)
	c, r := f.TilePosition(0)
	if c != 0 || r != 0 {
		t.Errorf("qubit 0 at (%d,%d)", c, r)
	}
	c, r = f.TilePosition(f.Cols + 1)
	if c != 1 || r != 1 {
		t.Errorf("qubit cols+1 at (%d,%d), want (1,1)", c, r)
	}
	// Distances are symmetric and satisfy the triangle inequality shape.
	d01 := f.DistanceCells(0, 1)
	if d01 != PitchX {
		t.Errorf("adjacent-qubit distance = %d, want pitch %d", d01, PitchX)
	}
	if f.DistanceCells(3, 7) != f.DistanceCells(7, 3) {
		t.Error("distance not symmetric")
	}
	if f.DistanceCells(2, 2) != 0 {
		t.Error("self distance not zero")
	}
}

func TestShor1024CommunicationSpan(t *testing.T) {
	// Section 4.2: "to factor a 1024-bit number we may need to
	// communicate over a distance as large as 60 centimeters". The chip
	// is ≈0.9 m² (edge ≈95 cm), so worst-case spans are tens of cm.
	f, _ := NewFloorplan(301251)
	spanCM := float64(f.MaxDistanceCells()) * CellUM * 1e-4
	if spanCM < 60 || spanCM > 250 {
		t.Errorf("Shor-1024 max span = %.1f cm, expected tens-of-cm scale (paper: ≥60 cm occurs)", spanCM)
	}
	// The chip itself should be near-square with edge ≈ sqrt(0.90) m.
	wCM := float64(f.WidthCells()) * CellUM * 1e-4
	hCM := float64(f.HeightCells()) * CellUM * 1e-4
	if ratio := wCM / hCM; ratio < 0.8 || ratio > 1.25 {
		t.Errorf("chip aspect ratio %.2f (%.0fx%.0f cm), want near-square", ratio, wCM, hCM)
	}
}

func TestHundredQubitsPerP4(t *testing.T) {
	// Section 4.2: "we can fit 100 logical qubits per 90nm-technology
	// Pentium IV processor" — a P4 die is ≈2 cm²; 100 tiles ≈ 2.1 cm².
	tiles := 100.0 * TileAreaMM2() // mm²
	if tiles < 150 || tiles > 250 {
		t.Errorf("100 qubits occupy %.0f mm², expected ≈211 (P4-die scale)", tiles)
	}
}

func TestIslands(t *testing.T) {
	f, _ := NewFloorplan(16) // 4x4 tiles
	isl := f.Islands(IslandSpacingShort)
	if len(isl) == 0 {
		t.Fatal("no islands placed")
	}
	// One island row per tile row.
	rows := map[int]bool{}
	for _, is := range isl {
		rows[is.Y] = true
	}
	if len(rows) != f.Rows {
		t.Errorf("%d island rows, want %d (one per tile row)", len(rows), f.Rows)
	}
	// Spacing along x is honored.
	var xs []int
	for _, is := range isl {
		if is.Y == PitchY/2 {
			xs = append(xs, is.X)
		}
	}
	for i := 1; i < len(xs); i++ {
		if xs[i]-xs[i-1] != IslandSpacingShort {
			t.Errorf("island spacing %d, want %d", xs[i]-xs[i-1], IslandSpacingShort)
		}
	}
	// Wider spacing places fewer islands.
	if len(f.Islands(IslandSpacingLong)) >= len(isl) {
		t.Error("350-cell spacing should use fewer islands than 100-cell")
	}
}

func TestIslandsPerQubitX(t *testing.T) {
	// Paper: islands at every ~2-3 qubits for d=100 and every ~7-10 for
	// d=350 in the x̂ direction.
	if r := IslandsPerQubitX(IslandSpacingShort); r < 1.5 || r > 3.5 {
		t.Errorf("d=100 spans %.1f qubits, expected 2-3", r)
	}
	if r := IslandsPerQubitX(IslandSpacingLong); r < 6 || r > 10.5 {
		t.Errorf("d=350 spans %.1f qubits, expected 7-10", r)
	}
}

func TestGateMoves(t *testing.T) {
	intra, inter := IntraBlockGateMove(), InterBlockGateMove()
	if intra.Cells >= inter.Cells {
		t.Error("intra-block moves should be shorter than inter-block")
	}
	if inter.Corners > MaxTurnsBallistic {
		t.Errorf("inter-block gate uses %d turns, design allows ≤ %d", inter.Corners, MaxTurnsBallistic)
	}
	if inter.Cells != 12 {
		t.Errorf("inter-block distance = %d, want r = 12", inter.Cells)
	}
}

func TestRenderBlock(t *testing.T) {
	art := RenderBlock()
	lines := strings.Split(art, "\n")
	if len(lines) < 10 {
		t.Errorf("block sketch only %d lines", len(lines))
	}
	if strings.Count(art, "o") != 7 {
		t.Errorf("block sketch shows %d data ions, want 7", strings.Count(art, "o"))
	}
	if strings.Count(art, ".") != 7 {
		t.Errorf("block sketch shows %d cooling ions, want 7", strings.Count(art, "."))
	}
}

func TestAreaEdge(t *testing.T) {
	f, _ := NewFloorplan(37971) // Shor-128
	if e := f.EdgeCM(); e < 25 || e > 45 {
		t.Errorf("Shor-128 chip edge = %.1f cm, paper says ≈33 cm", e)
	}
}
