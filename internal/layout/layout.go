// Package layout models the QLA chip geometry: the level-1 building block,
// the level-2 logical-qubit tile, the channel grid between tiles, repeater
// (teleportation) island placement, and chip floorplans for a given number
// of logical qubits.
//
// Dimensions follow Section 4 and Table 2 of the paper: a level-2 logical
// qubit occupies 36×147 cells of 20 µm, with 11 extra channel cells in the
// x̂ direction and 12 in ŷ, giving a tile pitch of 47×159 cells and the
// Table-2 chip areas.
package layout

import (
	"fmt"
	"math"
	"strings"
)

// Geometry constants (cells of CellUM micrometers).
const (
	// CellUM is the trap/cell pitch in micrometers.
	CellUM = 20.0

	// TileW and TileH are the level-2 logical-qubit dimensions in cells.
	TileW = 36
	TileH = 147

	// ChanW and ChanH are the channel widths added in x̂ and ŷ.
	ChanW = 11
	ChanH = 12

	// PitchX and PitchY are the tile pitches including channels.
	PitchX = TileW + ChanW // 47
	PitchY = TileH + ChanH // 159

	// BlockW and BlockH are the level-1 block footprint in cells: three
	// blocks across a tile (36/3) and seven block rows (147/7).
	BlockW = TileW / 3 // 12
	BlockH = TileH / 7 // 21

	// InterBlockCells is r in Equation 2: the average communication
	// distance between level-1 blocks ("aligned in QLA to allow r = 12
	// cells on average") — one block width.
	InterBlockCells = BlockW

	// IntraBlockCells is the typical shuttle distance for a physical
	// two-qubit gate between neighbouring traps inside a block.
	IntraBlockCells = 2

	// MaxTurnsBallistic is the design guarantee: "no single gate will
	// require more than two turns when we are using direct ballistic
	// communication, and no turns at all when we are using teleportation".
	MaxTurnsBallistic = 2

	// IslandSpacingShort and IslandSpacingLong are the two island
	// separations the interconnect analysis selects between (Figure 9).
	IslandSpacingShort = 100
	IslandSpacingLong  = 350
)

// TileCells is the number of cells in one logical-qubit tile (no channels).
const TileCells = TileW * TileH // 5292

// TilePitchCells is the number of cells per tile including its share of
// channels; Table 2 chip area = Q · TilePitchCells · (20 µm)².
const TilePitchCells = PitchX * PitchY // 7473

// TileAreaMM2 returns the area of the bare tile in mm² (paper: 2.11 mm²).
func TileAreaMM2() float64 {
	return float64(TileCells) * CellUM * CellUM * 1e-6
}

// TilePitchAreaM2 returns the area of a tile plus channels in m².
func TilePitchAreaM2() float64 {
	return float64(TilePitchCells) * CellUM * CellUM * 1e-12
}

// Floorplan is a rectangular arrangement of logical-qubit tiles.
type Floorplan struct {
	Q    int // logical qubits placed
	Cols int
	Rows int
}

// NewFloorplan lays out q logical qubits so that the chip is near-square
// in physical extent: tiles are PitchY/PitchX ≈ 3.4× taller than wide, so
// the grid uses correspondingly more columns than rows.
func NewFloorplan(q int) (Floorplan, error) {
	if q <= 0 {
		return Floorplan{}, fmt.Errorf("layout: need a positive qubit count, got %d", q)
	}
	aspect := float64(PitchY) / float64(PitchX)
	rows := int(math.Max(1, math.Round(math.Sqrt(float64(q)/aspect))))
	cols := (q + rows - 1) / rows
	return Floorplan{Q: q, Cols: cols, Rows: rows}, nil
}

// TilePosition returns the (col,row) grid position of logical qubit i in
// row-major order.
func (f Floorplan) TilePosition(i int) (col, row int) {
	if i < 0 || i >= f.Q {
		panic(fmt.Sprintf("layout: qubit %d out of range [0,%d)", i, f.Q))
	}
	return i % f.Cols, i / f.Cols
}

// TileCenterCells returns the cell coordinates of the center of qubit i.
func (f Floorplan) TileCenterCells(i int) (x, y int) {
	c, r := f.TilePosition(i)
	return c*PitchX + PitchX/2, r*PitchY + PitchY/2
}

// DistanceCells returns the Manhattan distance in cells between the
// centers of two logical qubits.
func (f Floorplan) DistanceCells(i, j int) int {
	xi, yi := f.TileCenterCells(i)
	xj, yj := f.TileCenterCells(j)
	return abs(xi-xj) + abs(yi-yj)
}

// WidthCells and HeightCells give the chip extent.
func (f Floorplan) WidthCells() int { return f.Cols * PitchX }

// HeightCells returns the chip height in cells.
func (f Floorplan) HeightCells() int { return f.Rows * PitchY }

// AreaM2 returns the chip area in m² using the Table-2 model: every placed
// tile contributes its pitch area (channels included).
func (f Floorplan) AreaM2() float64 {
	return float64(f.Q) * TilePitchAreaM2()
}

// EdgeCM returns the edge length in centimeters of a square chip of the
// same area (the paper quotes "33 centimeters at each edge" for 0.11 m²...
// for the 512-bit, 0.45 m² chip).
func (f Floorplan) EdgeCM() float64 {
	return math.Sqrt(f.AreaM2()) * 100
}

// MaxDistanceCells returns the largest tile-to-tile Manhattan distance on
// the floorplan (the worst-case communication span).
func (f Floorplan) MaxDistanceCells() int {
	if f.Q <= 1 {
		return 0
	}
	return (f.Cols-1)*PitchX + (f.Rows-1)*PitchY
}

// Island is a repeater (teleportation) island position in cell coordinates.
type Island struct {
	X, Y int
}

// Islands places repeater islands on the floorplan's channel grid with the
// given spacing in cells along x̂; along ŷ one island is placed per tile row
// ("in the ŷ direction we place an island at every logical qubit").
func (f Floorplan) Islands(spacingX int) []Island {
	if spacingX <= 0 {
		panic("layout: island spacing must be positive")
	}
	var out []Island
	w, h := f.WidthCells(), f.HeightCells()
	for y := PitchY / 2; y < h; y += PitchY {
		for x := 0; x <= w; x += spacingX {
			out = append(out, Island{X: x, Y: y})
		}
	}
	return out
}

// IslandsPerQubitX returns how many logical qubits sit between two islands
// in the x̂ direction at the given spacing (paper: "an island at every
// third and tenth logical qubit" for 100 and 350 cells).
func IslandsPerQubitX(spacingX int) float64 {
	return float64(spacingX) / float64(PitchX)
}

// GateMove describes the ballistic path charged to one physical two-qubit
// gate, per the QLA design rules.
type GateMove struct {
	Cells   int
	Corners int
}

// IntraBlockGateMove is the path for a gate between ions in one block.
func IntraBlockGateMove() GateMove {
	return GateMove{Cells: IntraBlockCells, Corners: 0}
}

// InterBlockGateMove is the path for a transversal gate between adjacent
// level-1 blocks (r = 12 cells, at most 2 turns).
func InterBlockGateMove() GateMove {
	return GateMove{Cells: InterBlockCells, Corners: MaxTurnsBallistic}
}

// RenderBlock draws an ASCII sketch of one level-1 building block
// (Figure 4): a column of data ions (o) with sympathetic cooling ions (.)
// beside them, surrounded by ballistic channel cells (space) and electrode
// cells (#).
func RenderBlock() string {
	var sb strings.Builder
	sb.WriteString(strings.Repeat("#", BlockW) + "\n")
	for row := 0; row < 7; row++ {
		sb.WriteString("#    o.    #\n")
		if row < 6 {
			sb.WriteString("#          #\n")
			sb.WriteString("#          #\n")
		}
	}
	sb.WriteString(strings.Repeat("#", BlockW))
	return sb.String()
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
