package layout

import (
	"math"
	"testing"
)

func TestTileYield(t *testing.T) {
	if y := TileYield(0); y != 1 {
		t.Errorf("perfect fabrication should yield 1, got %g", y)
	}
	// 1e-7 per cell over 7473 cells ≈ 99.925% per tile.
	y := TileYield(1e-7)
	want := math.Pow(1-1e-7, float64(TilePitchCells))
	if math.Abs(y-want) > 1e-12 {
		t.Errorf("TileYield = %g, want %g", y, want)
	}
	if y < 0.999 {
		t.Errorf("1e-7 cell defects should keep tile yield high, got %g", y)
	}
	// Heavy defects kill tiles.
	if TileYield(1e-3) > 0.01 {
		t.Error("1e-3 cell defects should destroy most tiles")
	}
}

func TestSparesNeeded(t *testing.T) {
	// Perfect yield: no spares.
	s, err := SparesNeeded(1000, 1, 0.999)
	if err != nil || s != 0 {
		t.Errorf("perfect yield needs %d spares (%v)", s, err)
	}
	// 99% tile yield over 10000 tiles: expect ≈100 failures + margin.
	s, err = SparesNeeded(10000, 0.99, 0.999)
	if err != nil {
		t.Fatal(err)
	}
	if s < 100 || s > 200 {
		t.Errorf("spares for 99%% yield = %d, expected ≈100-150", s)
	}
	// Spares grow as yield drops.
	s2, _ := SparesNeeded(10000, 0.95, 0.999)
	if s2 <= s {
		t.Error("lower yield must demand more spares")
	}
	// Hopeless yield errors out.
	if _, err := SparesNeeded(1000, 1e-6, 0.999); err == nil {
		t.Error("absurdly low yield should fail")
	}
}

func TestSparesMeetTarget(t *testing.T) {
	// Verify the provision actually achieves the target via the normal
	// model it used: mean usable minus z·sd must cover the requirement.
	required, yield, target := 37971, TileYield(3e-8), 0.999
	spares, err := SparesNeeded(required, yield, target)
	if err != nil {
		t.Fatal(err)
	}
	n := float64(required + spares)
	mean, sd := n*yield, math.Sqrt(n*yield*(1-yield))
	if mean-3.09*sd < float64(required) { // z(0.999) ≈ 3.09
		t.Errorf("provision of %d spares misses the 99.9%% target", spares)
	}
}

func TestProvisionedFloorplan(t *testing.T) {
	fp, spares, err := ProvisionedFloorplan(1000, 1e-6, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	if fp.Q != 1000+spares {
		t.Errorf("floorplan holds %d tiles, want %d", fp.Q, 1000+spares)
	}
	if spares <= 0 {
		t.Error("1e-6 cell defects over 7473-cell tiles should demand spares")
	}
	// The Shor-128 machine with realistic defects stays buildable.
	fp, spares, err = ProvisionedFloorplan(37971, 1e-8, 0.999)
	if err != nil {
		t.Fatal(err)
	}
	if float64(spares)/37971 > 0.05 {
		t.Errorf("Shor-128 spare overhead %.1f%%, expected a few percent at most",
			100*float64(spares)/37971)
	}
}

func TestNormalQuantileSanity(t *testing.T) {
	// Φ⁻¹(0.5) = 0; Φ⁻¹(0.975) ≈ 1.96.
	if q := normalQuantile(0.5); math.Abs(q) > 1e-6 {
		t.Errorf("median quantile = %g", q)
	}
	if q := normalQuantile(0.975); math.Abs(q-1.96) > 0.01 {
		t.Errorf("97.5%% quantile = %g, want ≈1.96", q)
	}
}
