package layout

import (
	"fmt"
	"math"
)

// Yield modeling for Section 6 ("Computer Area"): "QLA offers an inherent
// redundancy within itself ... all logical qubits and channels are
// identical in both their structure and ability to support different
// functionalities. Defects can be diagnosed and masked out in software
// running on our classical control processor."
//
// The model: every tile is independently defective with probability
// defectProb; the floorplan provisions spare tiles so that the machine
// still fields its required logical-qubit count with probability at least
// yieldTarget.

// TileYield returns the probability that a single tile is usable given a
// per-cell defect probability (a tile needs all of its TilePitchCells
// cells functional).
func TileYield(cellDefectProb float64) float64 {
	if cellDefectProb < 0 || cellDefectProb > 1 {
		panic("layout: defect probability outside [0,1]")
	}
	return math.Pow(1-cellDefectProb, float64(TilePitchCells))
}

// SparesNeeded returns how many spare tiles must be provisioned beyond
// `required` so that P(usable ≥ required) ≥ yieldTarget when each tile
// works independently with probability tileYield. It uses a normal
// approximation with continuity correction, exact enough for the
// thousands-of-tiles regime the QLA lives in, and errs upward.
func SparesNeeded(required int, tileYield, yieldTarget float64) (int, error) {
	if required <= 0 {
		return 0, fmt.Errorf("layout: need a positive tile count")
	}
	if tileYield <= 0 || tileYield > 1 {
		return 0, fmt.Errorf("layout: tile yield %g outside (0,1]", tileYield)
	}
	if yieldTarget <= 0 || yieldTarget >= 1 {
		return 0, fmt.Errorf("layout: yield target %g outside (0,1)", yieldTarget)
	}
	if tileYield == 1 {
		return 0, nil
	}
	z := normalQuantile(yieldTarget)
	for spares := 0; ; spares++ {
		n := float64(required + spares)
		mean := n * tileYield
		sd := math.Sqrt(n * tileYield * (1 - tileYield))
		// P(usable >= required) with continuity correction.
		if mean-z*sd >= float64(required)+0.5 {
			return spares, nil
		}
		if spares > required*10 {
			return 0, fmt.Errorf("layout: yield %g too low to provision %d tiles", tileYield, required)
		}
	}
}

// ProvisionedFloorplan builds a floorplan for `required` logical qubits
// plus the spares demanded by the defect model, returning the plan and the
// spare count.
func ProvisionedFloorplan(required int, cellDefectProb, yieldTarget float64) (Floorplan, int, error) {
	spares, err := SparesNeeded(required, TileYield(cellDefectProb), yieldTarget)
	if err != nil {
		return Floorplan{}, 0, err
	}
	fp, err := NewFloorplan(required + spares)
	if err != nil {
		return Floorplan{}, 0, err
	}
	return fp, spares, nil
}

// normalQuantile computes the standard normal quantile by bisection on the
// complementary error function (stdlib-only, no statistics dependency).
func normalQuantile(p float64) float64 {
	lo, hi := -10.0, 10.0
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if normalCDF(mid) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

func normalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}
