// Package iontrap models the physical technology layer of the QLA
// microarchitecture: trapped-ion (QCCD) operation latencies and component
// failure rates as published in Table 1 of Metodi et al., MICRO 2005.
//
// The package is deliberately free of simulation logic: it is the single
// source of truth for "what does a physical operation cost and how often
// does it fail", consumed by the noise models, the latency engine and the
// resource estimators.
package iontrap

import (
	"fmt"
	"time"
)

// OpClass enumerates the physical operation classes of Table 1.
type OpClass int

const (
	// OpSingle is a one-qubit laser gate (X, Z, H, S, ...).
	OpSingle OpClass = iota
	// OpDouble is a two-qubit gate between ions in a shared trap region.
	OpDouble
	// OpMeasure is state-dependent resonance-fluorescence readout.
	OpMeasure
	// OpMoveCell is ballistic shuttling across one 20 µm grid cell.
	OpMoveCell
	// OpSplit separates an ion from a linear chain to start a move.
	OpSplit
	// OpCorner turns a corner at a QCCD channel intersection
	// (the paper charges it at the split cost).
	OpCorner
	// OpCool is one sympathetic-recooling step.
	OpCool
	// OpPrep initializes an ion to |0> (charged as a single-qubit op).
	OpPrep
	// OpMemory is one idle "memory slot": the per-operation decoherence
	// of a resting ion, derived from the 10-100 s lifetime.
	OpMemory

	numOpClasses
)

// String returns the Table-1 row name for the op class.
func (c OpClass) String() string {
	switch c {
	case OpSingle:
		return "single-gate"
	case OpDouble:
		return "double-gate"
	case OpMeasure:
		return "measure"
	case OpMoveCell:
		return "move-cell"
	case OpSplit:
		return "split"
	case OpCorner:
		return "corner"
	case OpCool:
		return "cooling"
	case OpPrep:
		return "prepare"
	case OpMemory:
		return "memory"
	default:
		return fmt.Sprintf("OpClass(%d)", int(c))
	}
}

// NumOpClasses is the number of distinct physical operation classes.
const NumOpClasses = int(numOpClasses)

// Params bundles the per-op latencies and failure probabilities used by a
// QLA model instance. Durations are in seconds; probabilities are per
// operation (for OpMoveCell, per cell traversed).
type Params struct {
	Name string

	// Time holds the latency of each op class in seconds.
	Time [NumOpClasses]float64
	// Fail holds the failure probability of each op class.
	Fail [NumOpClasses]float64

	// CellSizeUM is the trap/cell pitch in micrometers (paper: 20 µm).
	CellSizeUM float64
	// MemoryLifetime is the qubit lifetime in seconds (paper: 10-100 s).
	MemoryLifetime float64
}

// Table-1 latencies, shared by the current and expected parameter sets.
//
// The paper quotes movement two ways: 10 ns/µm in Table 1 (local,
// within-trap shuttling) and "a single trap can be traversed with a time
// cost of T = 0.01 µs" for pipelined ballistic channel transport
// (Section 2.1). Channel transport dominates QLA communication, so
// OpMoveCell uses the 0.01 µs/cell figure; LocalMoveTime exposes the
// 10 ns/µm rate for intra-block shuttling.
const (
	TimeSingle   = 1e-6   // 1 µs
	TimeDouble   = 10e-6  // 10 µs
	TimeMeasure  = 100e-6 // 100 µs
	TimeMoveCell = 0.01e-6
	TimeSplit    = 10e-6
	TimeCorner   = 10e-6 // "corner-turning speed equivalent to splitting"
	TimeCool     = 1e-6
	TimePrep     = 1e-6

	// LocalMoveSecPerUM is the Table-1 movement rate: 10 ns/µm.
	LocalMoveSecPerUM = 10e-9

	// CellSizeUM is the default trap separation (ARDA roadmap scaling).
	CellSizeUM = 20.0
)

func baseTimes() [NumOpClasses]float64 {
	var t [NumOpClasses]float64
	t[OpSingle] = TimeSingle
	t[OpDouble] = TimeDouble
	t[OpMeasure] = TimeMeasure
	t[OpMoveCell] = TimeMoveCell
	t[OpSplit] = TimeSplit
	t[OpCorner] = TimeCorner
	t[OpCool] = TimeCool
	t[OpPrep] = TimePrep
	t[OpMemory] = TimeSingle // an idle slot is charged at one gate time
	return t
}

// Current returns the experimentally achieved failure rates (Table 1,
// column Pcurrent: NIST 9Be+ data with 24Mg+ sympathetic cooling).
func Current() Params {
	p := Params{
		Name:           "current",
		Time:           baseTimes(),
		CellSizeUM:     CellSizeUM,
		MemoryLifetime: 10,
	}
	p.Fail[OpSingle] = 1e-4
	p.Fail[OpDouble] = 0.03
	p.Fail[OpMeasure] = 0.01
	// Table 1: 0.005/µm -> per 20 µm cell.
	p.Fail[OpMoveCell] = 0.005 * CellSizeUM
	p.Fail[OpSplit] = 0.005 * CellSizeUM // charged like one cell of motion
	p.Fail[OpCorner] = 0.005 * CellSizeUM
	p.Fail[OpCool] = 0
	p.Fail[OpPrep] = 1e-4
	p.Fail[OpMemory] = memoryFailPerOp(10)
	return p
}

// Expected returns the projected failure rates (Table 1, column Pexpected:
// ARDA-roadmap extrapolation) used to model QLA performance.
func Expected() Params {
	p := Params{
		Name:           "expected",
		Time:           baseTimes(),
		CellSizeUM:     CellSizeUM,
		MemoryLifetime: 100,
	}
	p.Fail[OpSingle] = 1e-8
	p.Fail[OpDouble] = 1e-7
	p.Fail[OpMeasure] = 1e-8
	p.Fail[OpMoveCell] = 1e-6 // per cell
	p.Fail[OpSplit] = 1e-6
	p.Fail[OpCorner] = 1e-6
	p.Fail[OpCool] = 0
	p.Fail[OpPrep] = 1e-8
	p.Fail[OpMemory] = memoryFailPerOp(100)
	return p
}

// memoryFailPerOp converts a memory lifetime into a per-gate-time idle error
// probability: p = t_gate / lifetime for one single-gate-duration slot.
func memoryFailPerOp(lifetimeSec float64) float64 {
	return TimeSingle / lifetimeSec
}

// Uniform returns a parameter set whose gate, measurement and preparation
// failure rates all equal p. Movement keeps the supplied per-cell rate.
// This is the knob used by the Figure-7 threshold sweep ("we fixed the
// movement failure rate to be the expected rate, but varied the rest").
func Uniform(p, movePerCell float64) Params {
	ps := Params{
		Name:           fmt.Sprintf("uniform(%.3g)", p),
		Time:           baseTimes(),
		CellSizeUM:     CellSizeUM,
		MemoryLifetime: 100,
	}
	ps.Fail[OpSingle] = p
	ps.Fail[OpDouble] = p
	ps.Fail[OpMeasure] = p
	ps.Fail[OpMoveCell] = movePerCell
	ps.Fail[OpSplit] = movePerCell
	ps.Fail[OpCorner] = movePerCell
	ps.Fail[OpCool] = 0
	ps.Fail[OpPrep] = p
	ps.Fail[OpMemory] = 0
	return ps
}

// AverageComponentFailure is the paper's p0: the mean of the single-gate,
// double-gate, measurement and per-cell movement failure probabilities.
// Section 4.1.2 feeds this into Equation 2.
func (p Params) AverageComponentFailure() float64 {
	return (p.Fail[OpSingle] + p.Fail[OpDouble] + p.Fail[OpMeasure] + p.Fail[OpMoveCell]) / 4
}

// MoveTime returns the ballistic-channel latency for a path: the split cost
// plus per-cell transport plus corner turns. This is the paper's
// (tau + T×D) channel latency model extended with corner costs.
func (p Params) MoveTime(cells, corners int) float64 {
	if cells < 0 || corners < 0 {
		panic("iontrap: negative path component")
	}
	if cells == 0 && corners == 0 {
		return 0
	}
	return p.Time[OpSplit] + float64(cells)*p.Time[OpMoveCell] + float64(corners)*p.Time[OpCorner]
}

// MoveFailure returns the probability that a ballistic move over the given
// path corrupts the ion, treating per-cell and per-corner failures as
// independent.
func (p Params) MoveFailure(cells, corners int) float64 {
	if cells < 0 || corners < 0 {
		panic("iontrap: negative path component")
	}
	surv := 1.0
	for i := 0; i < cells; i++ {
		surv *= 1 - p.Fail[OpMoveCell]
	}
	for i := 0; i < corners; i++ {
		surv *= 1 - p.Fail[OpCorner]
	}
	return 1 - surv
}

// LocalMoveTime returns the latency of an intra-block move of the given
// distance in micrometers at the Table-1 rate of 10 ns/µm.
func (p Params) LocalMoveTime(um float64) float64 {
	return um * LocalMoveSecPerUM
}

// ChannelBandwidthQBPS returns the pipelined ballistic channel bandwidth in
// qubits per second: one ion delivered per per-cell transport interval.
// With T = 0.01 µs this is the paper's ~100 Mqbps.
func (p Params) ChannelBandwidthQBPS() float64 {
	return 1 / p.Time[OpMoveCell]
}

// Duration converts one op-class latency to a time.Duration for display.
func (p Params) Duration(c OpClass) time.Duration {
	return time.Duration(p.Time[c] * float64(time.Second))
}

// Validate checks internal consistency of a parameter set.
func (p Params) Validate() error {
	for c := 0; c < NumOpClasses; c++ {
		if p.Time[c] < 0 {
			return fmt.Errorf("iontrap: %v has negative time %g", OpClass(c), p.Time[c])
		}
		if p.Fail[c] < 0 || p.Fail[c] > 1 {
			return fmt.Errorf("iontrap: %v has failure probability %g outside [0,1]", OpClass(c), p.Fail[c])
		}
	}
	if p.CellSizeUM <= 0 {
		return fmt.Errorf("iontrap: non-positive cell size %g", p.CellSizeUM)
	}
	return nil
}
