package iontrap

import (
	"math"
	"testing"
)

func TestTable1Times(t *testing.T) {
	p := Expected()
	cases := []struct {
		c    OpClass
		want float64
	}{
		{OpSingle, 1e-6},
		{OpDouble, 10e-6},
		{OpMeasure, 100e-6},
		{OpMoveCell, 0.01e-6},
		{OpSplit, 10e-6},
		{OpCorner, 10e-6},
		{OpCool, 1e-6},
	}
	for _, c := range cases {
		if p.Time[c.c] != c.want {
			t.Errorf("Time[%v] = %g, want %g", c.c, p.Time[c.c], c.want)
		}
	}
}

func TestTable1FailureColumns(t *testing.T) {
	cur, exp := Current(), Expected()
	if cur.Fail[OpSingle] != 1e-4 || cur.Fail[OpDouble] != 0.03 || cur.Fail[OpMeasure] != 0.01 {
		t.Errorf("current failure rates wrong: %v", cur.Fail)
	}
	if cur.Fail[OpMoveCell] != 0.005*20 {
		t.Errorf("current movement failure per cell = %g, want 0.1", cur.Fail[OpMoveCell])
	}
	if exp.Fail[OpSingle] != 1e-8 || exp.Fail[OpDouble] != 1e-7 || exp.Fail[OpMeasure] != 1e-8 || exp.Fail[OpMoveCell] != 1e-6 {
		t.Errorf("expected failure rates wrong: %v", exp.Fail)
	}
}

func TestAverageComponentFailure(t *testing.T) {
	// Paper Section 4.1.2: p0 is the average of the expected failure
	// probabilities; with Equation 2 it must yield Pf ≈ 1e-16 (tested in
	// the ft package). Here we pin the p0 value itself.
	p0 := Expected().AverageComponentFailure()
	want := (1e-8 + 1e-7 + 1e-8 + 1e-6) / 4
	if math.Abs(p0-want)/want > 1e-12 {
		t.Errorf("p0 = %g, want %g", p0, want)
	}
}

func TestMoveTimeChannelModel(t *testing.T) {
	p := Expected()
	// Paper: latency = tau + T*D with tau=10µs split, T=0.01µs.
	got := p.MoveTime(1000, 0)
	want := 10e-6 + 1000*0.01e-6
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("MoveTime(1000,0) = %g, want %g", got, want)
	}
	// Corners add 10µs each.
	got = p.MoveTime(100, 2)
	want = 10e-6 + 100*0.01e-6 + 2*10e-6
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("MoveTime(100,2) = %g, want %g", got, want)
	}
	if p.MoveTime(0, 0) != 0 {
		t.Error("zero-length move should cost nothing")
	}
}

func TestMoveFailureComposition(t *testing.T) {
	p := Expected()
	got := p.MoveFailure(100, 0)
	want := 1 - math.Pow(1-1e-6, 100)
	if math.Abs(got-want) > 1e-15 {
		t.Errorf("MoveFailure(100,0) = %g, want %g", got, want)
	}
	if p.MoveFailure(0, 0) != 0 {
		t.Error("no movement, no failure")
	}
	if f := p.MoveFailure(10, 2); f <= p.MoveFailure(10, 0) {
		t.Errorf("corners should add failure probability: %g", f)
	}
}

func TestChannelBandwidth(t *testing.T) {
	// Paper: "the ballistic channels provide a bandwidth of ~100M qbps".
	bw := Expected().ChannelBandwidthQBPS()
	if bw < 90e6 || bw > 110e6 {
		t.Errorf("channel bandwidth = %g qbps, want ~100M", bw)
	}
}

func TestUniformSweepParams(t *testing.T) {
	u := Uniform(2e-3, 1e-6)
	for _, c := range []OpClass{OpSingle, OpDouble, OpMeasure, OpPrep} {
		if u.Fail[c] != 2e-3 {
			t.Errorf("Uniform Fail[%v] = %g, want 2e-3", c, u.Fail[c])
		}
	}
	if u.Fail[OpMoveCell] != 1e-6 {
		t.Errorf("Uniform movement = %g, want fixed 1e-6", u.Fail[OpMoveCell])
	}
}

func TestValidate(t *testing.T) {
	for _, p := range []Params{Current(), Expected(), Uniform(1e-3, 1e-6)} {
		if err := p.Validate(); err != nil {
			t.Errorf("Validate(%s): %v", p.Name, err)
		}
	}
	bad := Expected()
	bad.Fail[OpSingle] = 1.5
	if bad.Validate() == nil {
		t.Error("Validate should reject probability > 1")
	}
	bad = Expected()
	bad.Time[OpDouble] = -1
	if bad.Validate() == nil {
		t.Error("Validate should reject negative time")
	}
}

func TestLocalMoveTime(t *testing.T) {
	p := Expected()
	// Table 1: 10 ns/µm.
	if got := p.LocalMoveTime(20); math.Abs(got-200e-9) > 1e-15 {
		t.Errorf("LocalMoveTime(20µm) = %g, want 200ns", got)
	}
}

func TestOpClassString(t *testing.T) {
	if OpSingle.String() != "single-gate" || OpMeasure.String() != "measure" {
		t.Error("OpClass names wrong")
	}
	if OpClass(99).String() == "" {
		t.Error("unknown OpClass should still render")
	}
}

func TestMoveTimePanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MoveTime(-1,0) should panic")
		}
	}()
	Expected().MoveTime(-1, 0)
}
