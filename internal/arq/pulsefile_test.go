package arq

import (
	"bytes"
	"strings"
	"testing"

	"qla/internal/circuit"
)

// TestPulseRoundTrip: WritePulses then ParsePulses reproduces the
// schedule exactly.
func TestPulseRoundTrip(t *testing.T) {
	c := circuit.New(4)
	c.Prep0(0).H(0).CNOT(0, 1).SWAP(1, 2).Move(3, 25, 2).MeasureZ(0).MeasureX(1)
	j, err := NewJob(c)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := j.WritePulses(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ParsePulses(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := j.Lower()
	if len(got) != len(want) {
		t.Fatalf("parsed %d pulses, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Op.String() != want[i].Op.String() {
			t.Fatalf("pulse %d op %q != %q", i, got[i].Op, want[i].Op)
		}
		if diff := got[i].Start - want[i].Start; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("pulse %d start %g != %g", i, got[i].Start, want[i].Start)
		}
		if diff := got[i].Duration - want[i].Duration; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("pulse %d duration %g != %g", i, got[i].Duration, want[i].Duration)
		}
	}
}

func TestParsePulsesCommentsAndBlanks(t *testing.T) {
	src := `
# a comment
t=0.000000000 dur=0.000001000 h 0

t=0.000001000 dur=0.000010000 cnot 0 1
`
	pulses, err := ParsePulses(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(pulses) != 2 {
		t.Fatalf("parsed %d pulses, want 2", len(pulses))
	}
	if pulses[1].Op.Type != circuit.CNOT || pulses[1].Op.Q != [2]int{0, 1} {
		t.Fatalf("second pulse %+v", pulses[1].Op)
	}
}

func TestParsePulsesMoveLine(t *testing.T) {
	pulses, err := ParsePulses(strings.NewReader(
		"t=0.5 dur=0.25 move 7 cells=120 corners=2\n"))
	if err != nil {
		t.Fatal(err)
	}
	op := pulses[0].Op
	if op.Type != circuit.Move || op.Q[0] != 7 || op.Cells != 120 || op.Corners != 2 {
		t.Fatalf("move parsed as %+v", op)
	}
}

func TestParsePulsesErrors(t *testing.T) {
	cases := []struct {
		name, src string
	}{
		{"too few fields", "t=0 dur=1 h\n"},
		{"missing t key", "x=0 dur=1 h 0\n"},
		{"missing dur key", "t=0 d=1 h 0\n"},
		{"bad float", "t=zz dur=1 h 0\n"},
		{"negative start", "t=-1 dur=1 h 0\n"},
		{"zero duration", "t=0 dur=0 h 0\n"},
		{"unknown op", "t=0 dur=1 frobnicate 0\n"},
		{"one-qubit op with two args", "t=0 dur=1 h 0 1\n"},
		{"two-qubit op with one arg", "t=0 dur=1 cnot 0\n"},
		{"identical cnot qubits", "t=0 dur=1 cnot 2 2\n"},
		{"bad qubit", "t=0 dur=1 h q\n"},
		{"move missing corners", "t=0 dur=1 move 0 cells=5\n"},
		{"move bad cells", "t=0 dur=1 move 0 cells=x corners=0\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ParsePulses(strings.NewReader(tc.src)); err == nil {
				t.Fatalf("accepted %q", tc.src)
			}
		})
	}
}

// TestParsedPulsesFeedControlAnalyzer: the parsed schedule is usable
// downstream (its op classes and timing survive the trip).
func TestParsedPulsesDurationsPositive(t *testing.T) {
	c := circuit.New(3)
	c.H(0).H(1).H(2).CNOT(0, 1).MeasureZ(2)
	j, err := NewJob(c)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := j.WritePulses(&buf); err != nil {
		t.Fatal(err)
	}
	pulses, err := ParsePulses(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pulses {
		if p.Duration <= 0 {
			t.Fatalf("pulse %d non-positive duration", i)
		}
	}
}
