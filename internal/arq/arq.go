// Package arq is the reproduction of ARQ, the paper's scalable
// quantum-architecture simulator: "ARQ takes a description of a general
// quantum circuit with a sequence of quantum gates as an input, maps it
// onto a specified physical layout, and generates pulse sequence files,
// which are then executed on the general quantum architecture simulator."
//
// The package ties the substrates together: circuits are parsed from the
// .qc format, mapped onto a QLA floorplan, lowered to timed physical pulse
// operations, and simulated — exactly (stabilizer backend) or as a noisy
// Monte Carlo (Pauli-frame backend with the Table-1 error models).
package arq

import (
	"fmt"
	"io"

	"qla/internal/circuit"
	"qla/internal/core"
	"qla/internal/iontrap"
	"qla/internal/noise"
	"qla/internal/pauliframe"
)

// Job is a circuit mapped onto a machine.
type Job struct {
	Machine   *core.Machine
	Circuit   *circuit.Circuit
	Placement []int // circuit qubit -> tile
}

// NewJob maps a circuit onto a fresh QLA machine sized to fit it
// (row-major identity placement).
func NewJob(c *circuit.Circuit, opts ...core.Option) (*Job, error) {
	m, err := core.New(c.N, opts...)
	if err != nil {
		return nil, err
	}
	placement := make([]int, c.N)
	for i := range placement {
		placement[i] = i
	}
	return &Job{Machine: m, Circuit: c, Placement: placement}, nil
}

// Parse reads a .qc circuit and maps it onto a machine.
func Parse(r io.Reader, opts ...core.Option) (*Job, error) {
	c, err := circuit.Parse(r)
	if err != nil {
		return nil, err
	}
	return NewJob(c, opts...)
}

// Estimate returns the architecture-level execution report.
func (j *Job) Estimate() (core.Report, error) {
	return j.Machine.EstimateCircuit(j.Circuit, j.Placement)
}

// RunExact executes the circuit on the noiseless stabilizer backend and
// returns the measurement outcomes in program order.
func (j *Job) RunExact(seed uint64) []int {
	return j.Circuit.Run(seed)
}

// NoisyResult summarizes a physical-noise Monte Carlo of the circuit.
type NoisyResult struct {
	Trials         int
	FlipHistogram  []int // per measurement op: trials whose outcome flipped
	AnyFlipTrials  int   // trials with at least one flipped outcome
	ErrorsInjected int64
}

// RunNoisy executes the circuit through the Pauli-frame backend `trials`
// times under the given technology parameters, reporting how often each
// measurement outcome deviates from the noiseless reference.
func (j *Job) RunNoisy(p iontrap.Params, trials int, seed uint64) (NoisyResult, error) {
	if trials <= 0 {
		return NoisyResult{}, fmt.Errorf("arq: need positive trials")
	}
	res := NoisyResult{
		Trials:        trials,
		FlipHistogram: make([]int, j.Circuit.Measurements()),
	}
	for trial := 0; trial < trials; trial++ {
		model := noise.NewModel(p, seed^uint64(trial+1)*0x9e3779b97f4a7c15)
		frame := pauliframe.New(j.Circuit.N)
		flips := model.RunNoisy(j.Circuit, frame)
		any := false
		for i, f := range flips {
			if f != 0 {
				res.FlipHistogram[i]++
				any = true
			}
		}
		if any {
			res.AnyFlipTrials++
		}
		res.ErrorsInjected += model.TotalInjected()
	}
	return res, nil
}

// PulseOp is one timed physical control operation in a lowered schedule.
type PulseOp struct {
	Start    float64 // seconds
	Duration float64
	Op       circuit.Op
}

// Lower produces the timed pulse schedule of the circuit under the
// machine's technology parameters with ASAP scheduling (the "pulse
// sequence file" ARQ generates).
func (j *Job) Lower() []PulseOp {
	p := j.Machine.Params
	avail := make([]float64, j.Circuit.N)
	var out []PulseOp
	for _, op := range j.Circuit.Ops {
		start := 0.0
		for _, q := range op.Qubits() {
			if avail[q] > start {
				start = avail[q]
			}
		}
		var dur float64
		if op.Type == circuit.Move {
			dur = p.MoveTime(op.Cells, op.Corners)
		} else {
			dur = p.Time[op.Type.OpClass()]
		}
		out = append(out, PulseOp{Start: start, Duration: dur, Op: op})
		for _, q := range op.Qubits() {
			avail[q] = start + dur
		}
	}
	return out
}

// WritePulses renders the pulse schedule as text, one op per line:
//
//	t=0.000000000 dur=0.000001000 h 0
func (j *Job) WritePulses(w io.Writer) error {
	for _, po := range j.Lower() {
		if _, err := fmt.Fprintf(w, "t=%.9f dur=%.9f %s\n", po.Start, po.Duration, po.Op); err != nil {
			return err
		}
	}
	return nil
}
