package arq

// The pulse-sequence file round trip. ARQ "generates pulse sequence
// files, which are then executed on the general quantum architecture
// simulator" (Section 3); WritePulses emits them and ParsePulses reads
// them back, so schedules can be stored, inspected, diffed, and fed to
// the classical-control analyzer without rebuilding the job.

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"qla/internal/circuit"
)

// pulseOpNames maps the textual gate mnemonics back to op types; it is
// the inverse of circuit.OpType.String for every single- and two-qubit
// op (move lines carry their own structure).
var pulseOpNames = map[string]circuit.OpType{
	"prep0": circuit.Prep0, "prep+": circuit.PrepPlus,
	"h": circuit.H, "s": circuit.S, "sdg": circuit.Sdg,
	"x": circuit.X, "y": circuit.Y, "z": circuit.Z,
	"cnot": circuit.CNOT, "cz": circuit.CZ, "swap": circuit.SWAP,
	"measure": circuit.MeasureZ, "measurex": circuit.MeasureX,
	"cool": circuit.Cool,
}

// ParsePulses reads the text format produced by WritePulses:
//
//	t=0.000000000 dur=0.000001000 h 0
//	t=0.000001000 dur=0.000010000 cnot 0 1
//	t=0.000011000 dur=0.000100300 move 2 cells=30 corners=1
//
// Blank lines and lines starting with '#' are ignored. Pulses are
// returned in file order; starts must be non-negative and durations
// positive.
func ParsePulses(r io.Reader) ([]PulseOp, error) {
	var out []PulseOp
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			return nil, fmt.Errorf("arq: pulse line %d: want at least 4 fields, got %d", lineNo, len(fields))
		}
		start, err := parseKeyedFloat(fields[0], "t")
		if err != nil {
			return nil, fmt.Errorf("arq: pulse line %d: %w", lineNo, err)
		}
		dur, err := parseKeyedFloat(fields[1], "dur")
		if err != nil {
			return nil, fmt.Errorf("arq: pulse line %d: %w", lineNo, err)
		}
		if start < 0 || dur <= 0 {
			return nil, fmt.Errorf("arq: pulse line %d: bad timing t=%g dur=%g", lineNo, start, dur)
		}
		op, err := parsePulseOp(fields[2:])
		if err != nil {
			return nil, fmt.Errorf("arq: pulse line %d: %w", lineNo, err)
		}
		out = append(out, PulseOp{Start: start, Duration: dur, Op: op})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("arq: reading pulses: %w", err)
	}
	return out, nil
}

func parseKeyedFloat(field, key string) (float64, error) {
	prefix := key + "="
	if !strings.HasPrefix(field, prefix) {
		return 0, fmt.Errorf("expected %q field, got %q", prefix, field)
	}
	v, err := strconv.ParseFloat(field[len(prefix):], 64)
	if err != nil {
		return 0, fmt.Errorf("bad %s value: %w", key, err)
	}
	return v, nil
}

func parsePulseOp(fields []string) (circuit.Op, error) {
	name := fields[0]
	if name == "move" {
		// move <q> cells=<n> corners=<n>
		if len(fields) != 4 {
			return circuit.Op{}, fmt.Errorf("move wants 4 fields, got %d", len(fields))
		}
		q, err := strconv.Atoi(fields[1])
		if err != nil {
			return circuit.Op{}, fmt.Errorf("bad move qubit: %w", err)
		}
		cells, err := parseKeyedInt(fields[2], "cells")
		if err != nil {
			return circuit.Op{}, err
		}
		corners, err := parseKeyedInt(fields[3], "corners")
		if err != nil {
			return circuit.Op{}, err
		}
		return circuit.Op{Type: circuit.Move, Q: [2]int{q, -1}, Cells: cells, Corners: corners}, nil
	}
	t, ok := pulseOpNames[name]
	if !ok {
		return circuit.Op{}, fmt.Errorf("unknown op %q", name)
	}
	wantArgs := 1
	if t.IsTwoQubit() {
		wantArgs = 2
	}
	if len(fields) != 1+wantArgs {
		return circuit.Op{}, fmt.Errorf("%s wants %d qubits, got %d", name, wantArgs, len(fields)-1)
	}
	q0, err := strconv.Atoi(fields[1])
	if err != nil {
		return circuit.Op{}, fmt.Errorf("bad qubit: %w", err)
	}
	op := circuit.Op{Type: t, Q: [2]int{q0, -1}}
	if wantArgs == 2 {
		q1, err := strconv.Atoi(fields[2])
		if err != nil {
			return circuit.Op{}, fmt.Errorf("bad qubit: %w", err)
		}
		if q1 == q0 {
			return circuit.Op{}, fmt.Errorf("%s qubits must differ", name)
		}
		op.Q[1] = q1
	}
	return op, nil
}

func parseKeyedInt(field, key string) (int, error) {
	prefix := key + "="
	if !strings.HasPrefix(field, prefix) {
		return 0, fmt.Errorf("expected %q field, got %q", prefix, field)
	}
	v, err := strconv.Atoi(field[len(prefix):])
	if err != nil {
		return 0, fmt.Errorf("bad %s value: %w", key, err)
	}
	return v, nil
}
