package arq

import (
	"strings"
	"testing"

	"qla/internal/circuit"
	"qla/internal/iontrap"
)

const bellSrc = `# Bell pair and readout
qubits 2
h 0
cnot 0 1
measure 0
measure 1
`

func TestParseAndRunExact(t *testing.T) {
	job, err := Parse(strings.NewReader(bellSrc))
	if err != nil {
		t.Fatal(err)
	}
	for seed := uint64(1); seed <= 10; seed++ {
		out := job.RunExact(seed)
		if len(out) != 2 || out[0] != out[1] {
			t.Fatalf("Bell outcomes %v not correlated (seed %d)", out, seed)
		}
	}
}

func TestEstimate(t *testing.T) {
	job, err := Parse(strings.NewReader(bellSrc))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := job.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	if rep.ECSteps <= 0 || rep.Seconds <= 0 {
		t.Errorf("degenerate estimate %+v", rep)
	}
	if rep.CommExposed != 0 {
		t.Error("adjacent-qubit Bell circuit should fully overlap communication")
	}
}

func TestRunNoisyCleanAndNoisy(t *testing.T) {
	job, err := Parse(strings.NewReader(bellSrc))
	if err != nil {
		t.Fatal(err)
	}
	clean, err := job.RunNoisy(iontrap.Uniform(0, 0), 200, 5)
	if err != nil {
		t.Fatal(err)
	}
	if clean.AnyFlipTrials != 0 || clean.ErrorsInjected != 0 {
		t.Errorf("zero-noise run flipped outcomes: %+v", clean)
	}
	noisy, err := job.RunNoisy(iontrap.Uniform(0.05, 0), 500, 6)
	if err != nil {
		t.Fatal(err)
	}
	if noisy.AnyFlipTrials == 0 {
		t.Error("5% error rate should flip some outcomes")
	}
	if len(noisy.FlipHistogram) != 2 {
		t.Errorf("histogram for %d measurements", len(noisy.FlipHistogram))
	}
	if _, err := job.RunNoisy(iontrap.Expected(), 0, 1); err == nil {
		t.Error("zero trials should fail")
	}
}

func TestLowerSchedule(t *testing.T) {
	c := circuit.New(2)
	c.H(0).H(1).CNOT(0, 1).MeasureZ(1)
	job, err := NewJob(c)
	if err != nil {
		t.Fatal(err)
	}
	pulses := job.Lower()
	if len(pulses) != 4 {
		t.Fatalf("%d pulses", len(pulses))
	}
	// The two H's start together; the CNOT starts when both end.
	if pulses[0].Start != 0 || pulses[1].Start != 0 {
		t.Error("parallel H gates should start at t=0")
	}
	if pulses[2].Start != pulses[0].Duration {
		t.Errorf("CNOT starts at %g, want %g", pulses[2].Start, pulses[0].Duration)
	}
	if pulses[3].Start != pulses[2].Start+pulses[2].Duration {
		t.Error("measurement should wait for the CNOT")
	}
}

func TestWritePulses(t *testing.T) {
	job, err := Parse(strings.NewReader(bellSrc))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := job.WritePulses(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if strings.Count(out, "\n") != 4 {
		t.Errorf("pulse file has %d lines, want 4", strings.Count(out, "\n"))
	}
	if !strings.Contains(out, "cnot 0 1") || !strings.HasPrefix(out, "t=0.000000000") {
		t.Errorf("pulse format unexpected:\n%s", out)
	}
}

func TestParseRejectsBadInput(t *testing.T) {
	if _, err := Parse(strings.NewReader("frobnicate")); err == nil {
		t.Error("bad circuit text should fail")
	}
}
