package engine

import (
	"context"
	"encoding/json"
	"strings"
	"testing"

	"qla/internal/iontrap"
)

func mustHash(t *testing.T, spec Spec) string {
	t.Helper()
	h, err := SpecHash(spec)
	if err != nil {
		t.Fatalf("SpecHash(%+v): %v", spec, err)
	}
	return h
}

// TestSpecHashInvariants: Specs describing the same run hash equal —
// alias vs canonical name, defaults omitted vs spelled out, machine
// defaults implicit vs explicit — and Specs describing different runs
// (a changed seed, a changed parameter) hash differently.
func TestSpecHashInvariants(t *testing.T) {
	base := mustHash(t, Spec{Experiment: "figure7"})
	for name, spec := range map[string]Spec{
		"alias":            {Experiment: "fig7"},
		"case-insensitive": {Experiment: "FIGURE7"},
		"defaults spelled": {Experiment: "figure7", Params: Params{"trials": 120000, "seed": 11, "trials-l2": 0}},
	} {
		if h := mustHash(t, spec); h != base {
			t.Errorf("%s: hash %s != default %s", name, h, base)
		}
	}
	for name, spec := range map[string]Spec{
		"different seed":   {Experiment: "figure7", Params: Params{"seed": 12}},
		"different trials": {Experiment: "figure7", Params: Params{"trials": 64}},
		"other experiment": {Experiment: "syndrome-rates"},
	} {
		if h := mustHash(t, spec); h == base {
			t.Errorf("%s: hash collides with the default spec", name)
		}
	}

	// Machine normalization: zero fields mean the package defaults, so
	// spelling the defaults must not change the address; Tech overrides
	// shadow ParamSet entirely.
	mbase := mustHash(t, Spec{Experiment: "ec-latency"})
	if h := mustHash(t, Spec{
		Experiment: "ec-latency",
		Machine:    MachineSpec{ParamSet: "expected", Level: 2, Bandwidth: 2},
	}); h != mbase {
		t.Errorf("explicit machine defaults changed the hash")
	}
	if h := mustHash(t, Spec{
		Experiment: "ec-latency",
		Machine:    MachineSpec{ParamSet: "current"},
	}); h == mbase {
		t.Errorf("current parameter set hashes like expected")
	}
	tech := iontrap.Current()
	withTech := mustHash(t, Spec{Experiment: "ec-latency", Machine: MachineSpec{Tech: &tech}})
	if h := mustHash(t, Spec{
		Experiment: "ec-latency",
		Machine:    MachineSpec{ParamSet: "expected", Tech: &tech},
	}); h != withTech {
		t.Errorf("shadowed ParamSet perturbed the hash of a Tech override")
	}

	// JSON-shaped params (float64 numbers, []any lists) hash like their
	// native-Go equivalents: the wire form and the in-process form of
	// one request share a cache entry.
	native := Spec{Experiment: "figure7", Params: Params{"phys-errors": []float64{0.004}, "trials": 50}}
	wire := Spec{Experiment: "figure7", Params: Params{"phys-errors": []any{0.004}, "trials": float64(50)}}
	if mustHash(t, native) != mustHash(t, wire) {
		t.Errorf("JSON-generic params hash differently from typed params")
	}
}

// TestCanonicalizeDoesNotAliasTech: normalization must deep-copy the
// Tech override so mutating the caller's struct later cannot change
// what a stored canonical Spec means.
func TestCanonicalizeDoesNotAliasTech(t *testing.T) {
	tech := iontrap.Current()
	canon, err := Canonicalize(Spec{Experiment: "ec-latency", Machine: MachineSpec{Tech: &tech}})
	if err != nil {
		t.Fatal(err)
	}
	if canon.Machine.Tech == &tech {
		t.Fatal("canonical spec aliases the caller's Tech pointer")
	}
	before, _ := json.Marshal(canon)
	tech = iontrap.Expected()
	after, _ := json.Marshal(canon)
	if string(before) != string(after) {
		t.Error("mutating the caller's Tech changed the canonical spec")
	}
}

// TestCanonicalJSONIsFixedPoint: decoding canonical JSON and
// canonicalizing again reproduces the same bytes (the property the
// fuzz target checks on arbitrary valid inputs).
func TestCanonicalJSONIsFixedPoint(t *testing.T) {
	for _, spec := range []Spec{
		{Experiment: "fig7", Params: Params{"trials": 64}},
		{Experiment: "shor", Machine: MachineSpec{ParamSet: "current"}},
		{Experiment: "arq-run"},
	} {
		cj, err := CanonicalJSON(spec)
		if err != nil {
			t.Fatal(err)
		}
		back, err := DecodeSpec(cj)
		if err != nil {
			t.Fatalf("canonical JSON fails strict decode: %v\n%s", err, cj)
		}
		cj2, err := CanonicalJSON(back)
		if err != nil {
			t.Fatal(err)
		}
		if string(cj) != string(cj2) {
			t.Errorf("not a fixed point:\n%s\nvs\n%s", cj, cj2)
		}
	}
}

// recordingSched counts scheduler acquisitions.
type recordingSched struct{ acquires int }

func (r *recordingSched) Acquire(ctx context.Context, want int) (int, func(), error) {
	r.acquires++
	return 1, func() {}, nil
}

// TestSchedulerOnlyForParallelExperiments: deterministic analyses must
// not draw from (or queue on) the shared worker budget; fanout
// experiments must.
func TestSchedulerOnlyForParallelExperiments(t *testing.T) {
	rs := &recordingSched{}
	eng := New(WithScheduler(rs))
	if _, err := eng.Run(context.Background(), Spec{Experiment: "table1"}); err != nil {
		t.Fatal(err)
	}
	if rs.acquires != 0 {
		t.Errorf("deterministic experiment acquired %d scheduler grants", rs.acquires)
	}
	res, err := eng.Run(context.Background(), Spec{
		Experiment: "figure7",
		Params:     Params{"phys-errors": []float64{4e-3}, "trials": 8, "seed": 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rs.acquires != 1 {
		t.Errorf("fanout experiment acquired %d scheduler grants, want 1", rs.acquires)
	}
	if res.Experiment != "figure7" {
		t.Errorf("result %+v", res)
	}
}

// TestMakeCanonicalConsistent: the one-pass form agrees with the
// per-piece helpers it subsumes.
func TestMakeCanonicalConsistent(t *testing.T) {
	spec := Spec{Experiment: "fig7", Params: Params{"trials": 64}}
	c, err := MakeCanonical(spec)
	if err != nil {
		t.Fatal(err)
	}
	h, err := SpecHash(spec)
	if err != nil {
		t.Fatal(err)
	}
	cj, err := CanonicalJSON(spec)
	if err != nil {
		t.Fatal(err)
	}
	if c.Hash != h || string(c.JSON) != string(cj) {
		t.Errorf("MakeCanonical disagrees with SpecHash/CanonicalJSON")
	}
	if c.Spec.Experiment != "figure7" {
		t.Errorf("canonical spec %+v", c.Spec)
	}
	if _, err := MakeCanonical(Spec{Experiment: "nope"}); err == nil {
		t.Error("invalid spec made canonical")
	}
}

// TestRunCanonical: the no-revalidation fast path computes exactly what
// Run computes, and a hand-built Canonical (no resolved experiment)
// still canonicalizes defensively.
func TestRunCanonical(t *testing.T) {
	spec := Spec{
		Experiment: "figure7",
		Params:     Params{"phys-errors": []float64{4e-3}, "trials": 40, "seed": 5},
	}
	eng := New()
	viaRun, err := eng.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	c, err := MakeCanonical(spec)
	if err != nil {
		t.Fatal(err)
	}
	viaCanonical, err := eng.RunCanonical(context.Background(), c)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(viaRun.Data)
	b, _ := json.Marshal(viaCanonical.Data)
	if string(a) != string(b) {
		t.Errorf("RunCanonical diverged from Run:\n%s\nvs\n%s", b, a)
	}
	if viaCanonical.Seed != 5 || viaCanonical.Experiment != "figure7" {
		t.Errorf("metadata %+v", viaCanonical)
	}
	// Hand-built: only the Spec set.
	handBuilt, err := eng.RunCanonical(context.Background(), Canonical{Spec: spec})
	if err != nil {
		t.Fatal(err)
	}
	hb, _ := json.Marshal(handBuilt.Data)
	if string(hb) != string(a) {
		t.Errorf("hand-built Canonical diverged")
	}
	if _, err := eng.RunCanonical(context.Background(), Canonical{Spec: Spec{Experiment: "nope"}}); err == nil {
		t.Error("invalid hand-built Canonical ran")
	}
}

// TestMachineSpecValidationErrorText pins the exact error strings HTTP
// API callers see for invalid machine configurations, through both
// Canonicalize (the serving path) and Engine.Run. ec-latency is the
// probe: it is machine-aware but never builds a core.Machine itself, so
// these must be caught by the engine's up-front validation, not by the
// experiment.
func TestMachineSpecValidationErrorText(t *testing.T) {
	for _, tc := range []struct {
		name string
		spec Spec
		want string
	}{
		{
			"unknown param_set",
			Spec{Experiment: "ec-latency", Machine: MachineSpec{ParamSet: "warp"}},
			`ec-latency: engine: unknown parameter set "warp" (want expected or current)`,
		},
		{
			"negative level",
			Spec{Experiment: "ec-latency", Machine: MachineSpec{Level: -1}},
			"ec-latency: engine: negative recursion level -1",
		},
		{
			"negative bandwidth",
			Spec{Experiment: "ec-latency", Machine: MachineSpec{Bandwidth: -2}},
			"ec-latency: engine: negative channel bandwidth -2",
		},
		{
			"negative logical qubits",
			Spec{Experiment: "ec-latency", Machine: MachineSpec{LogicalQubits: -3}},
			"ec-latency: engine: negative logical-qubit count -3",
		},
		{
			"machine on machine-less experiment",
			Spec{Experiment: "table1", Machine: MachineSpec{Level: 1}},
			"table1: experiment takes no machine configuration",
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Canonicalize(tc.spec); err == nil || err.Error() != tc.want {
				t.Errorf("Canonicalize error = %v, want %q", err, tc.want)
			}
			if _, err := New().Run(context.Background(), tc.spec); err == nil || err.Error() != tc.want {
				t.Errorf("Run error = %v, want %q", err, tc.want)
			}
		})
	}
}

// TestDecodeSpecStrict: the strict decoder rejects what json.Unmarshal
// quietly tolerates.
func TestDecodeSpecStrict(t *testing.T) {
	for _, tc := range []struct {
		name     string
		raw      string
		contains string
	}{
		{"truncated", `{"experiment":`, "invalid spec JSON"},
		{"unknown top-level field", `{"experiment":"table1","bogus":1}`, "bogus"},
		{"unknown machine field", `{"experiment":"shor","machine":{"lvel":2}}`, "lvel"},
		{"trailing document", `{"experiment":"table1"}{"experiment":"table2"}`, "trailing data"},
		{"wrong type", `{"experiment":42}`, "invalid spec JSON"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := DecodeSpec([]byte(tc.raw)); err == nil || !strings.Contains(err.Error(), tc.contains) {
				t.Errorf("DecodeSpec(%q) err = %v, want mention of %q", tc.raw, err, tc.contains)
			}
		})
	}
	spec, err := DecodeSpec([]byte(`{"experiment":"fig7","params":{"trials":10}}`))
	if err != nil || spec.Experiment != "fig7" {
		t.Fatalf("valid spec rejected: %v", err)
	}
}
