package engine

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// DecodeSpec parses a JSON Spec strictly: unknown top-level or machine
// fields are rejected (a typoed field name must not silently fall back
// to a default — the spec hash would cache the wrong run under it), as
// is trailing data after the document. Malformed input of any shape
// returns an error, never panics; FuzzSpecDecode enforces that.
func DecodeSpec(raw []byte) (Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	var spec Spec
	if err := dec.Decode(&spec); err != nil {
		return Spec{}, fmt.Errorf("engine: invalid spec JSON: %w", err)
	}
	if dec.More() {
		return Spec{}, fmt.Errorf("engine: trailing data after spec JSON")
	}
	return spec, nil
}

// ReadSpecFile parses a JSON Spec from path; "-" reads standard input.
// Shared by every CLI front end so spec invocations stay uniform.
func ReadSpecFile(path string) (Spec, error) {
	var (
		raw []byte
		err error
	)
	if path == "-" {
		raw, err = io.ReadAll(os.Stdin)
	} else {
		raw, err = os.ReadFile(path)
	}
	if err != nil {
		return Spec{}, err
	}
	spec, err := DecodeSpec(raw)
	if err != nil {
		return Spec{}, fmt.Errorf("parsing spec %s: %w", path, err)
	}
	return spec, nil
}
