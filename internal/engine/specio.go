package engine

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// ReadSpecFile parses a JSON Spec from path; "-" reads standard input.
// Shared by every CLI front end so spec invocations stay uniform.
func ReadSpecFile(path string) (Spec, error) {
	var (
		raw []byte
		err error
	)
	if path == "-" {
		raw, err = io.ReadAll(os.Stdin)
	} else {
		raw, err = os.ReadFile(path)
	}
	if err != nil {
		return Spec{}, err
	}
	var spec Spec
	if err := json.Unmarshal(raw, &spec); err != nil {
		return Spec{}, fmt.Errorf("parsing spec %s: %w", path, err)
	}
	return spec, nil
}
