package engine

// FuzzCycleSpecDecode narrows FuzzSpecDecode's contract onto the
// cycle-* experiment family: arbitrary Specs naming a cycle experiment
// must decode strictly or error (never panic), and any input that
// hashes must hash stably across its canonical round trip. The family
// registers here (internal/engine/cycleexp.go) with its Run injected
// by internal/cyclesim, so parameter coercion and canonicalization —
// what this fuzzer drives — are fully linked in this test binary.
//
//	go test ./internal/engine -run '^$' -fuzz FuzzCycleSpecDecode -fuzztime 30s

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func FuzzCycleSpecDecode(f *testing.F) {
	// Seed with the cycle goldens plus shapes near the validation
	// edges of the cycle parameter schemas.
	entries, err := os.ReadDir(specDir)
	if err != nil {
		f.Fatalf("reading %s (regenerate goldens with -update): %v", specDir, err)
	}
	seeded := 0
	for _, ent := range entries {
		if !strings.HasPrefix(ent.Name(), "cycle-") {
			continue
		}
		raw, err := os.ReadFile(filepath.Join(specDir, ent.Name()))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(raw)
		seeded++
	}
	if seeded != 3 {
		f.Fatalf("found %d cycle-* goldens, want 3 (regenerate with -update)", seeded)
	}
	for _, seed := range []string{
		`{"experiment":"cycle-interconnect"}`,
		`{"experiment":"cycle-interconnect","machine":{"bandwidth":4},"params":{"grid":16,"kernel":"bitrev"}}`,
		`{"experiment":"cycle-interconnect","params":{"kernel":"nope"}}`,
		`{"experiment":"cycle-interconnect","params":{"routing":"adaptive","epr-cycles":100}}`,
		`{"experiment":"cycle-interconnect","params":{"tile-cells":-1}}`,
		`{"experiment":"cycle-interconnect","params":{"seed":18446744073709551615}}`,
		`{"experiment":"cycle-interconnect","params":{"ops":1e99}}`,
		`{"experiment":"cycle-hierarchy","params":{"levels":8,"miss-ratio":0.99}}`,
		`{"experiment":"cycle-hierarchy","params":{"miss-ratio":"half"}}`,
		`{"experiment":"cycle-trace","params":{"trace":"cx 0 1\n# comment\ncx 2 3"}}`,
		`{"experiment":"cycle-trace","params":{"trace":""}}`,
		`{"experiment":"cycle-trace","params":{"unknown":1}}`,
		`{"experiment":"cycle-interconnect","machine":{"level":-2}}`,
	} {
		f.Add([]byte(seed))
	}

	f.Fuzz(func(t *testing.T, raw []byte) {
		spec, err := DecodeSpec(raw)
		if err != nil {
			return // malformed input must error, and it did
		}
		hash, err := SpecHash(spec)
		if err != nil {
			return // decodes but fails validation: also fine
		}
		cj, err := CanonicalJSON(spec)
		if err != nil {
			t.Fatalf("SpecHash succeeded but CanonicalJSON failed: %v", err)
		}
		back, err := DecodeSpec(cj)
		if err != nil {
			t.Fatalf("canonical JSON fails strict decode: %v\n%s", err, cj)
		}
		hash2, err := SpecHash(back)
		if err != nil {
			t.Fatalf("canonical JSON fails to re-hash: %v\n%s", err, cj)
		}
		if hash != hash2 {
			t.Fatalf("hash not stable across canonical round trip: %s vs %s\n%s", hash, hash2, cj)
		}
	})
}
