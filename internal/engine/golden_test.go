package engine

// Golden-file guard for the cache key format. The serving layer caches
// Results by the hash of the canonical Spec encoding, so an accidental
// change to canonicalization — a renamed field, a new default, a
// different machine normalization — silently invalidates (or worse,
// aliases) every cached entry. For every registered experiment a
// canonical Spec lives under testdata/specs/ and its content address
// under testdata/spec_hashes.json; both must reproduce byte-for-byte.
// A deliberate format change regenerates them:
//
//	go test ./internal/engine -run TestGoldenSpecs -update

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden spec files under testdata/")

const (
	specDir  = "testdata/specs"
	hashFile = "testdata/spec_hashes.json"
)

// encodeGoldenSpec renders a canonical Spec as golden-file bytes:
// indented JSON plus a trailing newline.
func encodeGoldenSpec(canon Spec) ([]byte, error) {
	raw, err := json.MarshalIndent(canon, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(raw, '\n'), nil
}

func TestGoldenSpecs(t *testing.T) {
	wantHashes := map[string]string{}
	if raw, err := os.ReadFile(hashFile); err == nil {
		if err := json.Unmarshal(raw, &wantHashes); err != nil {
			t.Fatalf("parsing %s: %v", hashFile, err)
		}
	} else if !*update {
		t.Fatalf("missing %s (regenerate with -update): %v", hashFile, err)
	}

	gotHashes := map[string]string{}
	for _, e := range Experiments() {
		canon, err := Canonicalize(Spec{Experiment: e.Name})
		if err != nil {
			t.Errorf("%s: default spec does not canonicalize: %v", e.Name, err)
			continue
		}
		blob, err := encodeGoldenSpec(canon)
		if err != nil {
			t.Errorf("%s: %v", e.Name, err)
			continue
		}
		hash, err := SpecHash(canon)
		if err != nil {
			t.Errorf("%s: %v", e.Name, err)
			continue
		}
		gotHashes[e.Name] = hash
		path := filepath.Join(specDir, e.Name+".json")
		if *update {
			if err := os.MkdirAll(specDir, 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, blob, 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		t.Run(e.Name, func(t *testing.T) {
			golden, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden spec (regenerate with -update): %v", err)
			}
			if !bytes.Equal(blob, golden) {
				t.Errorf("canonical encoding of the default %s spec drifted from %s;\nif deliberate, regenerate with -update and note that cached results are invalidated.\ngot:\n%s", e.Name, path, blob)
			}
			// Round trip: the golden must decode strictly and re-encode
			// byte-identically after canonicalization.
			spec, err := DecodeSpec(golden)
			if err != nil {
				t.Fatalf("golden spec fails strict decode: %v", err)
			}
			recanon, err := Canonicalize(spec)
			if err != nil {
				t.Fatalf("golden spec fails canonicalization: %v", err)
			}
			reblob, err := encodeGoldenSpec(recanon)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(reblob, golden) {
				t.Errorf("golden spec not a canonicalization fixed point:\n%s", reblob)
			}
			// Hash stability: the content address recorded for this spec
			// must reproduce exactly.
			h, err := SpecHash(spec)
			if err != nil {
				t.Fatal(err)
			}
			if want := wantHashes[e.Name]; h != want {
				t.Errorf("spec hash drifted: got %s, recorded %s", h, want)
			}
		})
	}

	if *update {
		raw, err := json.MarshalIndent(gotHashes, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(hashFile, append(raw, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	// No orphans: every recorded hash and every golden file must belong
	// to a registered experiment.
	for name := range wantHashes {
		if _, ok := gotHashes[name]; !ok {
			t.Errorf("%s records hash for unregistered experiment %q", hashFile, name)
		}
	}
	entries, err := os.ReadDir(specDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, ent := range entries {
		name := ent.Name()
		if _, ok := gotHashes[name[:len(name)-len(".json")]]; !ok {
			t.Errorf("stale golden file %s", filepath.Join(specDir, name))
		}
	}
}
