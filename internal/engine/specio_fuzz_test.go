package engine

// FuzzSpecDecode hardens the HTTP front door's input path: arbitrary
// bytes through DecodeSpec must produce a Spec or an error, never a
// panic — and any input that decodes and hashes must hash *stably*:
// its canonical JSON must itself decode strictly and canonicalize to
// the same content address (otherwise the cache key would depend on
// how many times a spec bounced through the wire format).
//
//	go test ./internal/engine -run '^$' -fuzz FuzzSpecDecode -fuzztime 30s

import (
	"os"
	"path/filepath"
	"testing"
)

func FuzzSpecDecode(f *testing.F) {
	// Seed with the golden canonical specs plus shapes near the
	// validation edges.
	entries, err := os.ReadDir(specDir)
	if err != nil {
		f.Fatalf("reading %s (regenerate goldens with -update): %v", specDir, err)
	}
	for _, ent := range entries {
		raw, err := os.ReadFile(filepath.Join(specDir, ent.Name()))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(raw)
	}
	for _, seed := range []string{
		`{"experiment":"figure7","params":{"trials":64,"seed":11}}`,
		`{"experiment":"fig7","params":{"phys-errors":[0.004,0.008]}}`,
		`{"experiment":"shor","machine":{"param_set":"current","level":1}}`,
		`{"experiment":"ec-latency","machine":{"tech":{}}}`,
		`{"experiment":"figure7","params":{"seed":18446744073709551615}}`,
		`{"experiment":"figure7","params":{"trials":1e99}}`,
		`{"experiment":"figure7","params":{"trials":null}}`,
		`{"experiment":""}`,
		`{"experiment":`,
		`null`,
		`[]`,
		`{}`,
		`{"experiment":"table1"} trailing`,
		"\xff\xfe",
	} {
		f.Add([]byte(seed))
	}

	f.Fuzz(func(t *testing.T, raw []byte) {
		spec, err := DecodeSpec(raw)
		if err != nil {
			return // malformed input must error, and it did
		}
		hash, err := SpecHash(spec)
		if err != nil {
			return // decodes but fails validation: also fine
		}
		// A spec that hashes must round-trip through its canonical JSON
		// to the same address.
		cj, err := CanonicalJSON(spec)
		if err != nil {
			t.Fatalf("SpecHash succeeded but CanonicalJSON failed: %v", err)
		}
		back, err := DecodeSpec(cj)
		if err != nil {
			t.Fatalf("canonical JSON fails strict decode: %v\n%s", err, cj)
		}
		hash2, err := SpecHash(back)
		if err != nil {
			t.Fatalf("canonical JSON fails to re-hash: %v\n%s", err, cj)
		}
		if hash != hash2 {
			t.Fatalf("hash not stable across canonical round trip: %s vs %s\n%s", hash, hash2, cj)
		}
	})
}
