package engine

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// Experiment is one registered entry point: a named, parameterized,
// documented reproduction of a paper table/figure (or an ARQ pipeline
// stage). Experiments run through Engine.Run, never directly.
type Experiment struct {
	// Name is the canonical registry key (lower-case, hyphenated).
	Name string
	// Family groups related experiments for catalog displays
	// (qlabench -list, the serving catalog): "paper" for direct
	// table/figure reproductions, "extensions" for ablations and
	// follow-up analyses, "arq" for the ARQ pipeline stages, "sweep"
	// for the batch-sweep meta-experiment, "cycle" for the cycle-level
	// data-movement family.
	Family string
	// Aliases are alternative lookup names (legacy CLI spellings).
	Aliases []string
	// Title is the one-line human heading printed above reports.
	Title string
	// Doc records which paper artifact the experiment reproduces and
	// any measurement caveats.
	Doc string
	// Params declares the accepted parameters with defaults.
	Params []ParamDef
	// Bench marks experiments included in the qlabench "all" sweep.
	Bench bool
	// UsesMachine marks experiments that honor Spec.Machine. The engine
	// rejects a non-zero Machine on experiments that would silently
	// ignore it.
	UsesMachine bool
	// Parallel marks experiments whose Run fans trials out over
	// RunContext.Parallelism workers. Only these acquire from the
	// engine's Scheduler: a deterministic analysis must not queue
	// behind long Monte Carlo runs for worker slots it would never use.
	Parallel bool
	// Run executes the experiment and returns its typed data payload.
	Run func(ctx context.Context, rc *RunContext) (any, error)
	// Report renders a Result for humans. A nil Report falls back to
	// JSON encoding of the data payload.
	Report func(w io.Writer, res Result) error
}

// HasParam reports whether the experiment declares the named parameter.
func (e *Experiment) HasParam(name string) bool {
	_, ok := e.Param(name)
	return ok
}

// Param returns the declaration of the named parameter.
func (e *Experiment) Param(name string) (ParamDef, bool) {
	for _, d := range e.Params {
		if d.Name == name {
			return d, true
		}
	}
	return ParamDef{}, false
}

var (
	regMu     sync.RWMutex
	regByName = map[string]*Experiment{}
	regOrder  []string
)

// Register adds an experiment to the registry. It panics on a duplicate
// or empty name/alias, or a nil Run: registration happens at init time
// and a malformed table is a programming error.
func Register(e Experiment) {
	regMu.Lock()
	defer regMu.Unlock()
	if e.Name == "" || e.Run == nil {
		panic("engine: Register needs a name and a Run function")
	}
	if e.Name != strings.ToLower(e.Name) {
		// Canonical names must be lower-case: lookups fold case, and a
		// mixed-case name would be unreachable through Experiments().
		panic(fmt.Sprintf("engine: experiment name %q is not lower-case", e.Name))
	}
	stored := e
	for _, key := range append([]string{e.Name}, e.Aliases...) {
		key = strings.ToLower(key)
		if key == "" {
			panic(fmt.Sprintf("engine: experiment %q has an empty alias", e.Name))
		}
		if _, dup := regByName[key]; dup {
			panic(fmt.Sprintf("engine: duplicate experiment name %q", key))
		}
		regByName[key] = &stored
	}
	regOrder = append(regOrder, e.Name)
}

// Experiments returns every registered experiment in registration order.
func Experiments() []*Experiment {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]*Experiment, 0, len(regOrder))
	for _, name := range regOrder {
		out = append(out, regByName[name])
	}
	return out
}

// Lookup resolves a canonical name or alias, case-insensitively.
func Lookup(name string) (*Experiment, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	e, ok := regByName[strings.ToLower(name)]
	return e, ok
}

// knownNames lists every canonical name, sorted, for error messages.
func knownNames() string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := append([]string(nil), regOrder...)
	sort.Strings(names)
	return strings.Join(names, ", ")
}
