package engine

// Human-readable rendering of experiment results, printed beside the
// paper's reported values. This is the presentation layer the qlabench
// command used to hard-code per experiment; it lives next to the
// registry so every front end (CLI, service, tests) shares it.

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"qla/internal/arq"
	"qla/internal/codes"
	"qla/internal/commsim"
	"qla/internal/control"
	"qla/internal/ft"
	"qla/internal/iontrap"
	"qla/internal/multichip"
	"qla/internal/netsim"
	"qla/internal/shor"
	"qla/internal/teleport"
)

// Report renders a Result for humans: the experiment's registered
// formatter when it has one and the data payload is still typed,
// otherwise indented JSON. Results decoded from JSON (whose Data is
// generic maps) always take the JSON path.
func Report(w io.Writer, res Result) error {
	if exp, ok := Lookup(res.Experiment); ok && exp.Report != nil {
		return exp.Report(w, res)
	}
	return reportJSON(w, res)
}

func reportJSON(w io.Writer, res Result) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(res)
}

func reportTable1(w io.Writer, res Result) error {
	data, ok := res.Data.(Table1Data)
	if !ok {
		return reportJSON(w, res)
	}
	fmt.Fprintln(w, "Table 1: physical operation times and failure rates")
	fmt.Fprintf(w, "%-12s %12s %14s %14s\n", "operation", "time", "Pcurrent", "Pexpected")
	rows := []iontrap.OpClass{
		iontrap.OpSingle, iontrap.OpDouble, iontrap.OpMeasure,
		iontrap.OpMoveCell, iontrap.OpSplit, iontrap.OpCool,
	}
	for _, c := range rows {
		fmt.Fprintf(w, "%-12s %12v %14.3g %14.3g\n", c, data.Current.Duration(c), data.Current.Fail[c], data.Expected.Fail[c])
	}
	fmt.Fprintf(w, "%-12s %12s %14s %14s\n", "memory",
		fmt.Sprintf("%g-%g s", data.Current.MemoryLifetime, data.Expected.MemoryLifetime), "-", "-")
	fmt.Fprintf(w, "\nchannel bandwidth: %.0f Mqbps (paper: ~100)\n", data.Expected.ChannelBandwidthQBPS()/1e6)
	return nil
}

func reportTable2(w io.Writer, res Result) error {
	rows, ok := res.Data.([]shor.Resources)
	if !ok {
		return reportJSON(w, res)
	}
	fmt.Fprintln(w, "Table 2: Shor's algorithm on the QLA (measured vs paper)")
	fmt.Fprintf(w, "%-22s", "")
	for _, r := range rows {
		fmt.Fprintf(w, " %12s", fmt.Sprintf("N=%d", r.N))
	}
	fmt.Fprintln(w)
	line := func(name string, f func(r shor.Resources) string) {
		fmt.Fprintf(w, "%-22s", name)
		for _, r := range rows {
			fmt.Fprintf(w, " %12s", f(r))
		}
		fmt.Fprintln(w)
	}
	line("logical qubits", func(r shor.Resources) string { return fmt.Sprintf("%d", r.LogicalQubits) })
	line("  paper", func(r shor.Resources) string { return fmt.Sprintf("%d", shor.PaperTable2[r.N].LogicalQubits) })
	line("Toffoli depth", func(r shor.Resources) string { return fmt.Sprintf("%d", r.ToffoliDepth) })
	line("  paper", func(r shor.Resources) string { return fmt.Sprintf("%d", shor.PaperTable2[r.N].Toffoli) })
	line("total gates", func(r shor.Resources) string { return fmt.Sprintf("%d", r.TotalGates) })
	line("  paper", func(r shor.Resources) string { return fmt.Sprintf("%d", shor.PaperTable2[r.N].TotalGates) })
	line("area (m^2)", func(r shor.Resources) string { return fmt.Sprintf("%.2f", r.AreaM2) })
	line("  paper", func(r shor.Resources) string { return fmt.Sprintf("%.2f", shor.PaperTable2[r.N].AreaM2) })
	line("time (days)", func(r shor.Resources) string { return fmt.Sprintf("%.1f", r.TimeDays) })
	line("  paper", func(r shor.Resources) string { return fmt.Sprintf("%.1f", shor.PaperTable2[r.N].TimeDays) })
	return nil
}

func reportFigure7(w io.Writer, res Result) error {
	data, ok := res.Data.(Figure7Data)
	if !ok {
		return reportJSON(w, res)
	}
	fmt.Fprintln(w, "Figure 7: logical one-qubit gate failure vs component failure rate")
	if len(data.L1) > 0 && len(data.L2) > 0 {
		fmt.Fprintf(w, "(level-1 trials %d, level-2 trials %d)\n\n", data.L1[0].Trials, data.L2[0].Trials)
	}
	fmt.Fprintf(w, "%10s %14s %14s\n", "p_phys", "level-1 fail", "level-2 fail")
	for i := range data.L1 {
		if i >= len(data.L2) {
			break
		}
		fmt.Fprintf(w, "%10.2g %9.6f±%.6f %8.6f±%.6f\n",
			data.L1[i].PhysError, data.L1[i].FailRate, data.L1[i].StdErr,
			data.L2[i].FailRate, data.L2[i].StdErr)
	}
	fmt.Fprintf(w, "\npseudo-threshold crossing: %.2g  (paper: (2.1±1.8)e-3)\n", data.Crossing)
	return nil
}

func reportSyndromeRates(w io.Writer, res Result) error {
	data, ok := res.Data.(SyndromeRateData)
	if !ok {
		return reportJSON(w, res)
	}
	fmt.Fprintln(w, "Non-trivial syndrome rates at expected parameters (Section 4.1.1)")
	fmt.Fprintf(w, "level 1: %.3g   (paper: 3.35e-4 ± 0.41e-4)\n", data.Level1)
	fmt.Fprintf(w, "level 2: %.3g   (paper: 7.92e-4 ± 0.81e-4)\n", data.Level2)
	return nil
}

func reportFigure9(w io.Writer, res Result) error {
	data, ok := res.Data.(Figure9Data)
	if !ok {
		return reportJSON(w, res)
	}
	dists := res.Params.Ints("distances")
	fmt.Fprintln(w, "Figure 9: connection time vs total distance by island separation")
	fmt.Fprintf(w, "%8s", "d \\ D")
	for _, d := range dists {
		fmt.Fprintf(w, " %8d", d)
	}
	fmt.Fprintln(w)
	bySep := map[int][]teleport.Figure9Point{}
	for _, p := range data.Points {
		bySep[p.Sep] = append(bySep[p.Sep], p)
	}
	var seps []int
	for s := range bySep {
		seps = append(seps, s)
	}
	sort.Ints(seps)
	for _, s := range seps {
		fmt.Fprintf(w, "%8d", s)
		for _, p := range bySep[s] {
			if p.Feasible {
				fmt.Fprintf(w, " %8.4f", p.Time)
			} else {
				fmt.Fprintf(w, " %8s", "inf")
			}
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "\nd=100 / d=350 crossover: %d cells  (paper: ≈6000 cells)\n", data.Crossover)
	if len(dists) > 0 {
		fmt.Fprintf(w, "best separation: %d cells at %d cells, %d cells at %d cells\n",
			data.BestSepShort, dists[0], data.BestSepLong, dists[len(dists)-1])
	}
	return nil
}

func reportECLatency(w io.Writer, res Result) error {
	sum, ok := res.Data.(ft.Summary)
	if !ok {
		return reportJSON(w, res)
	}
	fmt.Fprintln(w, "Equation 1: error-correction latency (Section 4.1.1)")
	fmt.Fprintf(w, "T(1,ecc) = %.4f s   (paper: ≈0.003)\n", sum.ECLevel1)
	fmt.Fprintf(w, "T(2,ecc) = %.4f s   (paper: ≈0.043)\n", sum.ECLevel2)
	fmt.Fprintf(w, "level-2 ancilla preparation = %.4f s   (paper: ≈0.008)\n", sum.AncillaPrep)
	return nil
}

func reportEquation2(w io.Writer, res Result) error {
	data, ok := res.Data.(Equation2Data)
	if !ok {
		return reportJSON(w, res)
	}
	fmt.Fprintln(w, "Equation 2: Gottesman local-architecture failure estimate")
	fmt.Fprintf(w, "p0 = %.3g, pth = %.3g, r = 12, L = %d\n", data.P0, data.Pth, data.Level)
	fmt.Fprintf(w, "P_f(%d) = %.3g   (paper: ≈1.0e-16)\n", data.Level, data.Failure)
	fmt.Fprintf(w, "S = K·Q = %.3g  (paper: ≈9.9e15)\n", data.MaxSystemSize)
	fmt.Fprintf(w, "with empirical pth %.2g: P_f(%d) = %.3g  (paper: approaching 1e-21)\n",
		data.EmpiricalPth, data.Level, data.EmpiricalFailure)
	return nil
}

func reportSchedulerSweep(w io.Writer, res Result) error {
	rows, ok := res.Data.([]netsim.BandwidthResult)
	if !ok {
		return reportJSON(w, res)
	}
	fmt.Fprintf(w, "Section 5: EPR scheduler bandwidth sweep (%dx%d islands, %d Toffolis)\n",
		res.Params.Int("islands-w"), res.Params.Int("islands-h"), res.Params.Int("toffolis"))
	fmt.Fprintf(w, "%10s %10s %12s %12s %8s %10s\n", "bandwidth", "requests", "1st-beat %", "utilization", "beats", "overlapped")
	for _, r := range rows {
		fmt.Fprintf(w, "%10d %10d %11.1f%% %11.1f%% %8d %10v\n",
			r.Bandwidth, r.Requests, 100*r.ScheduledFrac, 100*r.Utilization, r.BeatsUsed, r.Overlapped)
	}
	fmt.Fprintln(w, "\npaper: bandwidth 2 suffices for full overlap at ~23% aggregate utilization")
	return nil
}

func reportShor(w io.Writer, res Result) error {
	data, ok := res.Data.(ShorRunData)
	if !ok {
		return reportJSON(w, res)
	}
	r := data.Resources
	fmt.Fprintf(w, "Factoring a %d-bit number on the QLA (Section 5 narrative)\n", r.N)
	fmt.Fprintf(w, "logical qubits:     %d\n", r.LogicalQubits)
	fmt.Fprintf(w, "Toffoli depth:      %d   (paper at N=128: 63,730)\n", r.ToffoliDepth)
	fmt.Fprintf(w, "EC steps:           %.3g (paper at N=128: 1.34e6)\n", float64(r.ECSteps))
	fmt.Fprintf(w, "EC step time:       %.4f s (paper: 0.043)\n", r.ECStepSeconds)
	fmt.Fprintf(w, "single run:         %.1f h (paper at N=128: ≈16 h)\n", r.TimeSeconds/3600)
	fmt.Fprintf(w, "with 1.3 retries:   %.1f h (paper at N=128: ≈21 h)\n", r.TimeHours)
	fmt.Fprintf(w, "chip area:          %.2f m² (paper at N=128: 0.11), edge %.0f cm\n", r.AreaM2, data.EdgeCM)
	fmt.Fprintf(w, "physical ions:      %.2g (paper at N=128: ≈7e6)\n", float64(data.PhysicalIons))
	fmt.Fprintf(w, "classical baseline: %.3g MIPS-years by NFS (512-bit anchor: 8400)\n", data.ClassicalMIPSYears)
	return nil
}

func reportCompareAdders(w io.Writer, res Result) error {
	data, ok := res.Data.(AddersData)
	if !ok {
		return reportJSON(w, res)
	}
	fmt.Fprintln(w, "Adder ablation: Toffoli critical path, ripple vs QCLA")
	fmt.Fprintf(w, "%6s %14s %14s %10s %12s %14s\n",
		"bits", "ripple depth", "QCLA depth", "speedup", "QCLA wires", "model 4·lg n")
	for _, cmp := range data.Comparisons {
		fmt.Fprintf(w, "%6d %14d %14d %9.1fx %12d %14d\n",
			cmp.Ripple.N, cmp.Ripple.ToffoliDepth, cmp.CLA.ToffoliDepth,
			cmp.DepthRatio, cmp.CLA.Width, shor.QCLAToffoliDepth(cmp.Ripple.N))
	}
	fmt.Fprintln(w, "\npaper: the QCLA is \"most optimized for time of computation")
	fmt.Fprintln(w, "rather than system size\" — the crossover lands by n=8 and the")
	fmt.Fprintln(w, "gap widens as 2n vs Θ(log n).")
	if len(data.Modular) == 0 {
		return nil
	}
	fmt.Fprintln(w, "\nModular adder (VBE construction, 4 adder passes), Toffoli depth:")
	fmt.Fprintf(w, "%6s %10s %16s %16s %12s\n", "bits", "modulus", "ripple-based", "QCLA-based", "ratio/adder")
	for _, row := range data.Modular {
		fmt.Fprintf(w, "%6d %10d %16d %16d %11.1fx\n",
			row.Bits, row.Modulus, row.Ripple.ToffoliDepth, row.CLA.ToffoliDepth,
			float64(row.CLA.ToffoliDepth)/float64(row.CLA.AdderDepth))
	}
	fmt.Fprintln(w, "\nThe modular adder costs ~4 adder passes (Van Meter–Itoh count the")
	fmt.Fprintln(w, "additions per modular multiplication the same way), so the QCLA's")
	fmt.Fprintln(w, "log-depth advantage carries straight into modular exponentiation.")
	return nil
}

func reportCodeAblation(w io.Writer, res Result) error {
	data, ok := res.Data.(CodeAblationData)
	if !ok {
		return reportJSON(w, res)
	}
	fmt.Fprintln(w, "Code ablation: syndrome-extraction bill per full round")
	fmt.Fprintf(w, "%-22s %6s %8s %9s %8s %12s %6s\n",
		"code", "data", "ancilla", "2q-gates", "meas", "time/round", "CSS")
	for _, cost := range data.Costs {
		css := "no"
		for _, c := range codes.All() {
			if c.Name == cost.Code && c.IsCSS() {
				css = "yes"
			}
		}
		fmt.Fprintf(w, "%-22s %6d %8d %9d %8d %9.0f µs %6s\n",
			cost.Code, cost.DataQubits, cost.AncillaQubits,
			cost.TwoQubitGates, cost.Measures, cost.TimeSeconds*1e6, css)
	}
	if len(data.MonteCarlo) > 0 && len(data.MCErrors) > 0 {
		fmt.Fprintln(w, "\nLogical failure rate under i.i.d. depolarizing noise (decoder MC;")
		fmt.Fprintln(w, "d=3 codes suppress O(p²), repetition codes leak O(p)):")
		ps := data.MCErrors
		fmt.Fprintf(w, "%-22s", "code")
		for _, p := range ps {
			fmt.Fprintf(w, " %11s", fmt.Sprintf("p=%g", p))
		}
		fmt.Fprintln(w)
		for i := 0; i+len(ps) <= len(data.MonteCarlo); i += len(ps) {
			fmt.Fprintf(w, "%-22s", data.MonteCarlo[i].Code)
			for j := 0; j < len(ps); j++ {
				fmt.Fprintf(w, " %11.2e", data.MonteCarlo[i+j].LogicalRate)
			}
			fmt.Fprintln(w)
		}
	}
	fmt.Fprintln(w, "\npaper: Steane [[7,1,3]] chosen as the smallest CSS block with a")
	fmt.Fprintln(w, "fully transversal Clifford group (Section 4.1).")
	return nil
}

func reportChainValidation(w io.Writer, res Result) error {
	data, ok := res.Data.(ChainValidationData)
	if !ok {
		return reportJSON(w, res)
	}
	fmt.Fprintln(w, "Repeater-chain Monte Carlo vs Werner model")
	fmt.Fprintf(w, "%7s %9s %8s %12s %12s %10s\n",
		"links", "purify", "eps", "measured", "predicted", "raw pairs")
	for _, r := range data.Rows {
		fmt.Fprintf(w, "%7d %9d %8.2f %12.4f %12.4f %10.1f\n",
			r.Config.Links, r.Config.PurifyRounds, r.Config.LinkEps,
			r.ErrorRate, r.PredictedError, r.RawPairsMean)
	}
	fmt.Fprintf(w, "\nnaive end-to-end pair over 8 segments: error %.4f\n", data.Compare.Naive.ErrorRate)
	fmt.Fprintf(w, "repeater chain over the same channel:  error %.4f\n", data.Compare.Repeater.ErrorRate)
	fmt.Fprintln(w, "\npaper (contribution 2): the simplistic approach collapses with")
	fmt.Fprintln(w, "distance; repeater islands keep the delivered fidelity pinned.")
	return nil
}

// chainBackendName resolves the default for display.
func chainBackendName(backend string) string {
	if backend == "" {
		return commsim.BackendBatch
	}
	return backend
}

func reportRunChain(w io.Writer, res Result) error {
	r, ok := res.Data.(commsim.ChainResult)
	if !ok {
		return reportJSON(w, res)
	}
	fmt.Fprintf(w, "Repeater-chain Monte Carlo (%s backend)\n", chainBackendName(r.Config.Backend))
	fmt.Fprintf(w, "links %d, purify rounds %d, link eps %g, swap eps %g, trials %d\n",
		r.Config.Links, r.Config.PurifyRounds, r.Config.LinkEps, r.Config.SwapEps, r.Config.Trials)
	fmt.Fprintf(w, "measured error:  %.4f (Z basis %d/%d, X basis %d/%d)\n",
		r.ErrorRate, r.ZBasisErrors, r.ZTrials, r.XBasisErrors, r.XTrials)
	fmt.Fprintf(w, "Werner predicts: %.4f\n", r.PredictedError)
	fmt.Fprintf(w, "raw pairs/conn:  %.1f\n", r.RawPairsMean)
	return nil
}

func reportCompareComm(w io.Writer, res Result) error {
	c, ok := res.Data.(commsim.NaiveVsRepeater)
	if !ok {
		return reportJSON(w, res)
	}
	fmt.Fprintln(w, "Communication strategies at equal total channel noise")
	fmt.Fprintf(w, "naive end-to-end pair:  error %.4f (predicted %.4f, %.1f raw pairs/conn)\n",
		c.Naive.ErrorRate, c.Naive.PredictedError, c.Naive.RawPairsMean)
	fmt.Fprintf(w, "repeater chain:         error %.4f (predicted %.4f, %.1f raw pairs/conn)\n",
		c.Repeater.ErrorRate, c.Repeater.PredictedError, c.Repeater.RawPairsMean)
	fmt.Fprintln(w, "\npaper (Section 5): stretching one pair across the whole channel")
	fmt.Fprintln(w, "collapses with distance; repeater islands keep fidelity pinned.")
	return nil
}

func reportShuttle(w io.Writer, res Result) error {
	rows, ok := res.Data.([]ShuttleRow)
	if !ok {
		return reportJSON(w, res)
	}
	fmt.Fprintf(w, "QCCD substrate: executed %d-ion transversal gate vs analytic budget\n", res.Params.Int("ions"))
	fmt.Fprintf(w, "%12s %14s %14s %8s %8s %10s\n",
		"separation", "makespan", "analytic", "moves", "stalls", "max turns")
	for _, row := range rows {
		rep := row.Report
		fmt.Fprintf(w, "%8d cells %11.1f µs %11.1f µs %8d %8d %10d\n",
			row.Separation, rep.Makespan*1e6, rep.AnalyticSeconds*1e6,
			rep.Stats.Moves, rep.Stats.Stalls, rep.MaxCorners)
	}
	fmt.Fprintln(w, "\npaper design rules validated: at most two turns per ballistic")
	fmt.Fprintln(w, "route; split time dominates short hops; movement pipelines.")
	return nil
}

func reportQFT(w io.Writer, res Result) error {
	data, ok := res.Data.(QFTData)
	if !ok {
		return reportJSON(w, res)
	}
	fmt.Fprintln(w, "QFT: banded circuit vs the paper's 2N·(log2(2N)+2) EC-step charge")
	fmt.Fprintln(w, "\nexact-circuit verification against the DFT matrix:")
	for _, r := range data.Exact {
		fmt.Fprintf(w, "  n=%d: max basis-state L2 error %.2e\n", r.N, r.MaxBasisError)
	}
	fmt.Fprintln(w, "\nbanding error at n=6 (Coppersmith: O(n·2^-band)):")
	for _, r := range data.Banding {
		fmt.Fprintf(w, "  band %d: %.4f\n", r.Band, r.MaxBasisError)
	}
	fmt.Fprintln(w, "\ngate count of the banded transform vs the model charge:")
	fmt.Fprintf(w, "%6s %8s %12s %12s %8s\n", "N", "band", "gates", "model", "ratio")
	for _, r := range data.Charge {
		fmt.Fprintf(w, "%6d %8d %12d %12d %8.2f\n", r.N, r.Band, r.Gates, r.Model, r.Ratio)
	}
	fmt.Fprintln(w, "\nThe model's serial charge brackets the circuit's gate count; ASAP")
	fmt.Fprintln(w, "depth is lower still, so the QFT term stays a rounding error next")
	fmt.Fprintln(w, "to the 21-EC-step Toffolis in Table 2.")
	return nil
}

func reportMultichip(w io.Writer, res Result) error {
	rows, ok := res.Data.([]multichip.Partition)
	if !ok {
		return reportJSON(w, res)
	}
	fmt.Fprintf(w, "Multi-chip partitioning (Section 6), %g cm max chip edge\n", res.Params.Float("max-edge-cm"))
	fmt.Fprintf(w, "%6s %10s %7s %12s %12s %12s %10s\n",
		"N", "qubits", "chips", "chip edge", "mono edge", "links/bdry", "slowdown")
	for _, pt := range rows {
		fmt.Fprintf(w, "%6d %10d %7d %9.1f cm %9.1f cm %12d %9.2fx\n",
			pt.N, pt.LogicalQubits, pt.Chips, pt.ChipEdgeCM,
			pt.MonolithicEdgeCM, pt.LinksPerBoundary, pt.Slowdown)
	}
	fmt.Fprintln(w, "\npaper: \"impractical for N > 128 with current single chip")
	fmt.Fprintln(w, "technology... a multi-chip solution is desirable.\" The link")
	fmt.Fprintln(w, "budget keeps inter-chip EPR supply ahead of the 2-pairs-per-EC-")
	fmt.Fprintln(w, "step demand, preserving full communication overlap.")
	return nil
}

func reportPlanMultichip(w io.Writer, res Result) error {
	rows, ok := res.Data.([]multichip.YieldPartition)
	if !ok {
		return reportJSON(w, res)
	}
	fmt.Fprintf(w, "Yield-aware multi-chip planning, %g cm max edge, defect p=%g, yield target %g\n",
		res.Params.Float("max-edge-cm"), res.Params.Float("cell-defect-prob"), res.Params.Float("yield-target"))
	fmt.Fprintf(w, "%6s %10s %7s %8s %12s %12s %12s %10s\n",
		"N", "qubits", "chips", "spares", "prov edge", "bare edge", "links/bdry", "slowdown")
	for _, pt := range rows {
		fmt.Fprintf(w, "%6d %10d %7d %8d %9.1f cm %9.1f cm %12d %9.2fx\n",
			pt.N, pt.LogicalQubits, pt.Chips, pt.SpareTiles, pt.ProvisionedEdgeCM,
			pt.ChipEdgeCM, pt.LinksPerBoundary, pt.Slowdown)
	}
	fmt.Fprintln(w, "\nSpare tiles implement Section 6's redundancy argument (\"defects can")
	fmt.Fprintln(w, "be diagnosed and masked out in software\"); they are real area, so")
	fmt.Fprintln(w, "provisioning can force more chips than the defect-free partition.")
	return nil
}

func reportEstimate(w io.Writer, res Result) error {
	data, ok := res.Data.(EstimateData)
	if !ok {
		return reportJSON(w, res)
	}
	rep := data.Report
	fmt.Fprintf(w, "logical qubits:        %d\n", rep.LogicalQubits)
	fmt.Fprintf(w, "EC steps (depth):      %d\n", rep.ECSteps)
	fmt.Fprintf(w, "EC step time:          %.4f s\n", data.ECStepTime)
	fmt.Fprintf(w, "estimated wall clock:  %.3f s\n", rep.Seconds)
	fmt.Fprintf(w, "2q comm overlapped:    %d\n", rep.CommOverlapped)
	fmt.Fprintf(w, "2q comm exposed:       %d (extra %.3f s)\n", rep.CommExposed, rep.ExtraCommTime)
	fmt.Fprintf(w, "failure budget used:   %.3g\n", rep.FailureBudget)
	fmt.Fprintf(w, "chip area:             %.4f m²\n", data.AreaM2)
	return nil
}

func reportRunExact(w io.Writer, res Result) error {
	out, ok := res.Data.([]int)
	if !ok {
		return reportJSON(w, res)
	}
	fmt.Fprintf(w, "measurements: %v\n", out)
	return nil
}

func reportRunNoisy(w io.Writer, res Result) error {
	r, ok := res.Data.(arq.NoisyResult)
	if !ok {
		return reportJSON(w, res)
	}
	fmt.Fprintf(w, "trials:          %d\n", r.Trials)
	fmt.Fprintf(w, "errors injected: %d\n", r.ErrorsInjected)
	fmt.Fprintf(w, "trials w/ flips: %d (%.3f%%)\n", r.AnyFlipTrials,
		100*float64(r.AnyFlipTrials)/float64(r.Trials))
	for i, f := range r.FlipHistogram {
		fmt.Fprintf(w, "  measurement %d flipped in %d trials\n", i, f)
	}
	return nil
}

func reportPulses(w io.Writer, res Result) error {
	text, ok := res.Data.(string)
	if !ok {
		return reportJSON(w, res)
	}
	_, err := io.WriteString(w, text)
	return err
}

func reportControl(w io.Writer, res Result) error {
	b, ok := res.Data.(control.Budget)
	if !ok {
		return reportJSON(w, res)
	}
	fmt.Fprintf(w, "pulses:                %d\n", b.Ops)
	fmt.Fprintf(w, "makespan:              %.6f s\n", b.Makespan)
	fmt.Fprintf(w, "peak lasers:           %d dedicated, %d SIMD groups (MEMS fanout)\n",
		b.PeakLasers, b.PeakLasersSIMD)
	fmt.Fprintf(w, "peak photodetectors:   %d\n", b.PeakDetectors)
	fmt.Fprintf(w, "control event rate:    %.3g/s mean, %.3g/s peak (%.0f µs window)\n",
		b.MeanEventRate, b.PeakEventRate, b.EventWindow*1e6)
	return nil
}
