package engine

// The machine-sweep experiment fans one base experiment out over a
// machine grid (param-set × level × bandwidth) — the evaluation shape
// of the paper's Figures 8–10 and the memory-hierarchy follow-up
// (quant-ph/0604070). Its implementation lives in internal/sweep, which
// depends on this package, so the Run/Report pair arrives through
// RegisterMachineSweep at that package's init: a dependency inversion
// that keeps registration, parameter validation, canonicalization and
// the golden Specs here without an import cycle. Anything that links
// internal/sweep (the facade, the serving layer, the CLIs) gets a
// working machine-sweep; a binary that does not gets a clear error
// instead of a silent no-op.

import (
	"context"
	"fmt"
	"io"
)

var machineSweepHook struct {
	run    func(ctx context.Context, rc *RunContext) (any, error)
	report func(w io.Writer, res Result) error
}

// RegisterMachineSweep installs the machine-sweep implementation.
// Called exactly once, from internal/sweep's init; a second call (or a
// nil run function) panics, as Register does for malformed entries.
func RegisterMachineSweep(run func(ctx context.Context, rc *RunContext) (any, error), report func(w io.Writer, res Result) error) {
	if run == nil {
		panic("engine: RegisterMachineSweep needs a run function")
	}
	if machineSweepHook.run != nil {
		panic("engine: machine-sweep implementation already registered")
	}
	machineSweepHook.run = run
	machineSweepHook.report = report
}

func init() {
	Register(Experiment{
		Name:        "machine-sweep",
		Family:      "sweep",
		UsesMachine: true,
		Aliases:     []string{"sweep"},
		Title:       "Machine-grid batch sweep over one experiment",
		Doc: "Fans one base experiment out over a param-set × level × bandwidth machine grid and aggregates per-point results with status and timing (the quant-ph/0604070 evaluation shape). " +
			"Spec.Machine supplies the base machine the axes override. The async job surface (POST /v1/sweeps) runs the same expansion with arbitrary axes.",
		Params: []ParamDef{
			{Name: "experiment", Kind: Text, Default: "ec-latency", Doc: "base experiment to fan out (must honor Spec.Machine; must not be machine-sweep itself)"},
			{Name: "param-sets", Kind: Text, Default: "expected", Doc: "comma-separated technology parameter sets to sweep (empty skips the axis)"},
			{Name: "levels", Kind: Ints, Default: []int{1, 2}, Doc: "recursion levels to sweep (empty list skips the axis)"},
			{Name: "bandwidths", Kind: Ints, Default: []int{2, 4}, Doc: "channel bandwidths to sweep (empty list skips the axis)"},
			{Name: "base-params", Kind: Text, Doc: "JSON object of base-experiment parameter overrides (optional; the text is hashed verbatim, so keep one spelling per sweep — or use POST /v1/sweeps, whose SweepSpec canonicalizes fully)"},
		},
		Run: func(ctx context.Context, rc *RunContext) (any, error) {
			if machineSweepHook.run == nil {
				return nil, fmt.Errorf("machine-sweep: implementation not linked (import qla/internal/sweep)")
			}
			return machineSweepHook.run(ctx, rc)
		},
		Report: func(w io.Writer, res Result) error {
			if machineSweepHook.report == nil {
				return reportJSON(w, res)
			}
			return machineSweepHook.report(w, res)
		},
	})
}
