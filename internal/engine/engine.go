// Package engine is the front door of the QLA simulator: a
// concurrency-safe, context-aware executor for the registry of named
// experiments that reproduce the paper's evaluation (and the ARQ
// pipeline stages). Callers describe a run as a JSON-serializable Spec
// — experiment name, machine configuration, parameters — and receive a
// Result carrying the typed data rows, timing metadata and the seed
// used. One Engine serves any number of concurrent Run calls; the
// Monte Carlo hot paths fan trials out over worker pools whose width
// WithParallelism bounds, with per-trial deterministic sub-seeds so
// results are bit-identical to serial execution at the same seed.
package engine

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"qla/internal/core"
	"qla/internal/iontrap"
)

// Spec is the JSON-(de)serializable description of one experiment run.
type Spec struct {
	// Experiment is the registry name (or alias) to run.
	Experiment string `json:"experiment"`
	// Machine configures the QLA instance experiments run against.
	Machine MachineSpec `json:"machine,omitzero"`
	// Params overrides the experiment's documented defaults.
	Params Params `json:"params,omitempty"`
}

// MachineSpec selects the machine configuration for a Spec. The zero
// value means the paper's canonical machine: expected technology
// parameters, recursion level 2, channel bandwidth 2.
type MachineSpec struct {
	// ParamSet names the technology parameter set: "expected" (default)
	// or "current" (Table 1's two columns). Ignored when Tech is set.
	ParamSet string `json:"param_set,omitempty"`
	// Tech is an explicit technology parameter override for machine
	// variants outside the two named sets.
	Tech *iontrap.Params `json:"tech,omitempty"`
	// Level is the recursion level (0 means the package default, 2).
	Level int `json:"level,omitempty"`
	// Bandwidth is the channel bandwidth (0 means the default, 2).
	Bandwidth int `json:"bandwidth,omitempty"`
	// LogicalQubits sizes machines for experiments that build one
	// explicitly (0 lets the experiment pick).
	LogicalQubits int `json:"logical_qubits,omitempty"`
}

// TechParams resolves the technology parameter set.
func (m MachineSpec) TechParams() (iontrap.Params, error) {
	if m.Tech != nil {
		return *m.Tech, nil
	}
	switch m.ParamSet {
	case "", "expected":
		return iontrap.Expected(), nil
	case "current":
		return iontrap.Current(), nil
	}
	return iontrap.Params{}, fmt.Errorf("engine: unknown parameter set %q (want expected or current)", m.ParamSet)
}

// Options lowers the spec to core machine options. Zero fields mean
// the package defaults; negative values are rejected here rather than
// silently falling back (out-of-range positives are rejected by core).
func (m MachineSpec) Options() ([]core.Option, error) {
	tech, err := m.TechParams()
	if err != nil {
		return nil, err
	}
	if m.Level < 0 {
		return nil, fmt.Errorf("engine: negative recursion level %d", m.Level)
	}
	if m.Bandwidth < 0 {
		return nil, fmt.Errorf("engine: negative channel bandwidth %d", m.Bandwidth)
	}
	if m.LogicalQubits < 0 {
		return nil, fmt.Errorf("engine: negative logical-qubit count %d", m.LogicalQubits)
	}
	opts := []core.Option{core.WithParams(tech)}
	if m.Level > 0 {
		opts = append(opts, core.WithLevel(m.Level))
	}
	if m.Bandwidth > 0 {
		opts = append(opts, core.WithBandwidth(m.Bandwidth))
	}
	return opts, nil
}

// Result is the outcome of one Engine.Run: the typed data payload plus
// the run metadata needed to reproduce and audit it. It JSON-serializes
// for transport; Data round-trips as the experiment's documented row
// type (or generic JSON maps after a decode).
type Result struct {
	// Experiment is the canonical name of what ran (aliases resolved).
	Experiment string `json:"experiment"`
	// Params are the fully resolved parameters, defaults included.
	Params Params `json:"params,omitempty"`
	// Seed is the Monte Carlo seed used (0 for deterministic analyses).
	Seed uint64 `json:"seed,omitempty"`
	// Started and Elapsed are the run's timing metadata.
	Started time.Time     `json:"started"`
	Elapsed time.Duration `json:"elapsed_ns"`
	// Data is the experiment's typed payload (rows, curves, bills).
	Data any `json:"data,omitempty"`
}

// RunContext is what a registered experiment receives: resolved
// parameters, the machine selection with its resolved technology
// parameters, and the engine's parallelism bound for Monte Carlo fanout.
type RunContext struct {
	Params      Params
	Machine     MachineSpec
	Tech        iontrap.Params
	Parallelism int
	// Engine is the engine executing this run. Experiments that fan out
	// into sub-Specs (machine-sweep) run them through it so sub-runs
	// share its scheduler budget instead of oversubscribing cores.
	Engine *Engine
}

// Engine executes Specs against the experiment registry. The zero
// configuration (New()) is ready to use; one Engine is safe for any
// number of concurrent Run calls.
type Engine struct {
	parallelism int
	sched       Scheduler
}

// Scheduler allocates Monte Carlo worker slots from a budget shared
// across concurrent Run calls (typically process-wide: internal/sched).
// Acquire blocks until at least one slot is free and returns the number
// granted (1 ≤ granted ≤ want) plus a release function the engine calls
// when the run finishes. Because results are bit-identical at any
// parallelism for a fixed seed, the grant width never changes what a
// run computes — only how many cores it occupies.
type Scheduler interface {
	Acquire(ctx context.Context, want int) (granted int, release func(), err error)
}

// Option configures an Engine.
type Option func(*Engine)

// WithParallelism bounds the worker-pool width of Monte Carlo
// experiments (0, the default, means GOMAXPROCS). Results are
// bit-identical at any parallelism for a fixed seed.
func WithParallelism(n int) Option {
	return func(e *Engine) { e.parallelism = n }
}

// WithScheduler makes every Run acquire its worker-pool width from s
// instead of taking the full WithParallelism (or GOMAXPROCS) width
// unconditionally, so concurrent runs share a global budget rather than
// each oversubscribing the machine.
func WithScheduler(s Scheduler) Option {
	return func(e *Engine) { e.sched = s }
}

// New builds an Engine.
func New(opts ...Option) *Engine {
	e := &Engine{}
	for _, o := range opts {
		o(e)
	}
	return e
}

// HasScheduler reports whether runs acquire their worker width from a
// shared budget. Fan-out layers use it to decide how many runs to keep
// in flight: without a scheduler every concurrent run takes its full
// width, so stacking them oversubscribes the machine.
func (e *Engine) HasScheduler() bool { return e.sched != nil }

// Run resolves the spec against the registry, validates and defaults
// its parameters, and executes the experiment under ctx. Cancellation
// is honored both up front and cooperatively inside the Monte Carlo
// hot paths. A panic inside an experiment is converted to an error:
// the engine is a serving front door and one bad spec must not take
// the process down.
func (e *Engine) Run(ctx context.Context, spec Spec) (Result, error) {
	exp, canon, tech, err := canonicalize(spec)
	if err != nil {
		return Result{}, err
	}
	return e.run(ctx, exp, canon, tech)
}

// RunCanonical executes a Canonical produced by MakeCanonical without
// repeating its validation pass — the serving hot path, where the spec
// was already canonicalized to compute the cache key. A hand-built
// Canonical (no resolved experiment) is canonicalized from its Spec.
func (e *Engine) RunCanonical(ctx context.Context, c Canonical) (Result, error) {
	if c.exp == nil {
		mc, err := MakeCanonical(c.Spec)
		if err != nil {
			return Result{}, err
		}
		c = mc
	}
	return e.run(ctx, c.exp, c.Spec, c.tech)
}

// run executes an already-canonicalized spec.
func (e *Engine) run(ctx context.Context, exp *Experiment, canon Spec, tech iontrap.Params) (Result, error) {
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	par := e.parallelism
	if e.sched != nil && exp.Parallel {
		// Only fanout experiments draw from the shared worker budget;
		// a deterministic analysis finishes in microseconds on one core
		// and must not queue behind long Monte Carlo runs.
		want := par
		if want <= 0 {
			want = runtime.GOMAXPROCS(0)
		}
		granted, release, err := e.sched.Acquire(ctx, want)
		if err != nil {
			return Result{}, err
		}
		defer release()
		par = granted
	}
	params := canon.Params
	rc := &RunContext{
		Params:      params,
		Machine:     canon.Machine,
		Tech:        tech,
		Parallelism: par,
		Engine:      e,
	}
	started := time.Now()
	data, err := runGuarded(ctx, exp, rc)
	if err != nil {
		return Result{}, fmt.Errorf("%s: %w", exp.Name, err)
	}
	res := Result{
		Experiment: exp.Name,
		Params:     params,
		Started:    started,
		Elapsed:    time.Since(started),
		Data:       data,
	}
	// Record the Monte Carlo seed whichever standard parameter name the
	// experiment declares it under.
	for _, name := range []string{"seed", "mc-seed", "workload-seed"} {
		if seed, ok := params[name].(uint64); ok {
			res.Seed = seed
			break
		}
	}
	return res, nil
}

// runGuarded executes the experiment, converting a panic (a model-layer
// domain violation an experiment failed to pre-validate) into an error.
func runGuarded(ctx context.Context, exp *Experiment, rc *RunContext) (data any, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v", r)
		}
	}()
	return exp.Run(ctx, rc)
}
