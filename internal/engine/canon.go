package engine

// Spec canonicalization and content addressing. Two Specs that describe
// the same run — alias vs canonical experiment name, defaults spelled
// out vs omitted, machine defaults explicit vs zero — must hash to the
// same content address, because the serving layer caches Results by
// that hash and fixed-seed runs are bit-identical at any parallelism.
// Canonical form: the experiment's registry name, every parameter
// resolved (defaults included, values coerced to their declared kind,
// seeds included), and the machine selection with the package defaults
// made explicit. encoding/json marshals map keys sorted, so the
// canonical JSON encoding is byte-stable.

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"qla/internal/iontrap"
)

// canonicalize resolves spec against the registry and validates it
// fully: experiment lookup, parameter resolution (defaults + coercion),
// and the complete machine validation (parameter set, negative fields)
// — not just the slice of it the experiment happens to touch. It
// returns the experiment, the canonical spec, and the resolved
// technology parameters. Both Engine.Run and the content-address path
// go through here, so a spec that hashes is a spec that runs.
func canonicalize(spec Spec) (*Experiment, Spec, iontrap.Params, error) {
	fail := func(err error) (*Experiment, Spec, iontrap.Params, error) {
		return nil, Spec{}, iontrap.Params{}, err
	}
	exp, ok := Lookup(spec.Experiment)
	if !ok {
		return fail(fmt.Errorf("engine: unknown experiment %q (known: %s)", spec.Experiment, knownNames()))
	}
	params, err := resolveParams(exp.Params, spec.Params)
	if err != nil {
		return fail(fmt.Errorf("%s: %w", exp.Name, err))
	}
	if !exp.UsesMachine && spec.Machine != (MachineSpec{}) {
		return fail(fmt.Errorf("%s: experiment takes no machine configuration", exp.Name))
	}
	tech, err := spec.Machine.TechParams()
	if err != nil {
		return fail(fmt.Errorf("%s: %w", exp.Name, err))
	}
	// Full machine validation up front: an experiment that only reads
	// rc.Tech would otherwise silently ignore a negative level.
	if _, err := spec.Machine.Options(); err != nil {
		return fail(fmt.Errorf("%s: %w", exp.Name, err))
	}
	canon := Spec{Experiment: exp.Name, Params: params}
	if exp.UsesMachine {
		canon.Machine = spec.Machine.normalize()
	}
	return exp, canon, tech, nil
}

// normalize makes the machine defaults explicit so equivalent
// selections canonicalize identically: the zero ParamSet becomes
// "expected", zero Level/Bandwidth become the core package defaults,
// and a ParamSet shadowed by an explicit Tech override is dropped
// (TechParams ignores it, so it must not perturb the hash).
func (m MachineSpec) normalize() MachineSpec {
	if m.Tech != nil {
		m.ParamSet = ""
		tech := *m.Tech
		m.Tech = &tech
	} else if m.ParamSet == "" {
		m.ParamSet = "expected"
	}
	if m.Level == 0 {
		m.Level = 2
	}
	if m.Bandwidth == 0 {
		m.Bandwidth = 2
	}
	return m
}

// Canonicalize returns the canonical form of spec: aliases resolved to
// the registry name, parameters fully resolved (defaults and seeds
// included), machine defaults explicit. It validates exactly as
// Engine.Run does; a spec Canonicalize accepts is a spec Run accepts.
func Canonicalize(spec Spec) (Spec, error) {
	_, canon, _, err := canonicalize(spec)
	return canon, err
}

// Canonical is a Spec in canonical form together with its encoding and
// content address, produced by one validation pass (MakeCanonical) so
// serving front ends don't re-canonicalize per derived value.
type Canonical struct {
	// Spec is the canonical form; running it through Engine.Run executes
	// exactly what the original described.
	Spec Spec
	// JSON is the byte-stable canonical encoding.
	JSON []byte
	// Hash is the hex SHA-256 of JSON — the result-cache key.
	Hash string

	// Resolved during MakeCanonical so Engine.RunCanonical need not
	// repeat the validation pass; nil/zero in a hand-built Canonical,
	// which RunCanonical re-canonicalizes defensively.
	exp  *Experiment
	tech iontrap.Params
}

// MakeCanonical canonicalizes, encodes and hashes spec in one pass.
func MakeCanonical(spec Spec) (Canonical, error) {
	exp, canon, tech, err := canonicalize(spec)
	if err != nil {
		return Canonical{}, err
	}
	raw, err := json.Marshal(canon)
	if err != nil {
		return Canonical{}, err
	}
	return Canonical{Spec: canon, JSON: raw, Hash: HashBytes(raw), exp: exp, tech: tech}, nil
}

// HashBytes returns the hex SHA-256 content address of raw — the
// addressing primitive shared by Spec hashing, the sweep layer's
// SweepSpec hashing (which doubles as the async job ID), and the result
// cache's persistence tier.
func HashBytes(raw []byte) string {
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:])
}

// CanonicalJSON returns the byte-stable JSON encoding of the canonical
// form of spec (parameter keys sorted by encoding/json).
func CanonicalJSON(spec Spec) ([]byte, error) {
	c, err := MakeCanonical(spec)
	if err != nil {
		return nil, err
	}
	return c.JSON, nil
}

// SpecHash returns the content address of spec: the hex SHA-256 of its
// canonical JSON. Two Specs hash equal exactly when Run would execute
// the same computation, and fixed-seed results are bit-identical at any
// parallelism, so the hash is a sound cache key for Results.
func SpecHash(spec Spec) (string, error) {
	c, err := MakeCanonical(spec)
	if err != nil {
		return "", err
	}
	return c.Hash, nil
}
