package engine

import (
	"context"
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"testing"

	"qla/internal/iontrap"
)

func TestLookupNamesAndAliases(t *testing.T) {
	for _, name := range []string{
		"table1", "table2", "figure7", "figure9", "ec-latency", "equation2",
		"scheduler-sweep", "syndrome-rates", "compare-adders", "code-ablation",
		"run-chain", "shor", "shuttle", "qft", "multichip", "chain-validation",
		"arq-estimate", "arq-run", "arq-noisy", "arq-pulses", "arq-control",
	} {
		if _, ok := Lookup(name); !ok {
			t.Errorf("experiment %q not registered", name)
		}
	}
	for alias, want := range map[string]string{
		"fig7": "figure7", "fig9": "figure9", "ecc": "ec-latency",
		"eq2": "equation2", "sched": "scheduler-sweep", "syndrome": "syndrome-rates",
		"adders": "compare-adders", "codes": "code-ablation",
		"chainmc": "chain-validation", "shor128": "shor",
		"FIGURE7": "figure7", // case-insensitive
	} {
		e, ok := Lookup(alias)
		if !ok {
			t.Errorf("alias %q not registered", alias)
			continue
		}
		if e.Name != want {
			t.Errorf("alias %q resolved to %q, want %q", alias, e.Name, want)
		}
	}
}

func TestExperimentsAreDocumented(t *testing.T) {
	exps := Experiments()
	if len(exps) < 20 {
		t.Fatalf("registry has %d experiments", len(exps))
	}
	for _, e := range exps {
		if e.Title == "" || e.Doc == "" {
			t.Errorf("%s: missing Title or Doc", e.Name)
		}
		for _, d := range e.Params {
			if d.Doc == "" {
				t.Errorf("%s: parameter %q undocumented", e.Name, d.Name)
			}
			if d.Default != nil {
				if _, err := coerce(d.Kind, d.Default); err != nil {
					t.Errorf("%s: parameter %q default does not coerce: %v", e.Name, d.Name, err)
				}
			}
		}
	}
}

func TestUnknownExperiment(t *testing.T) {
	_, err := New().Run(context.Background(), Spec{Experiment: "no-such-thing"})
	if err == nil || !strings.Contains(err.Error(), "unknown experiment") {
		t.Fatalf("err = %v", err)
	}
}

func TestUnknownParameterRejected(t *testing.T) {
	_, err := New().Run(context.Background(), Spec{
		Experiment: "figure7",
		Params:     Params{"bogus": 1},
	})
	if err == nil || !strings.Contains(err.Error(), "unknown parameter") {
		t.Fatalf("err = %v", err)
	}
}

// TestInvalidBackendRejected: every experiment with a backend selector
// rejects an unknown name at spec validation with one canonical error
// text — before any Monte Carlo runs and before the spec can hash into
// the result cache.
func TestInvalidBackendRejected(t *testing.T) {
	eng := New()
	for _, exp := range []string{"figure7", "syndrome-rates", "run-chain", "chain-validation", "compare-comm", "code-ablation"} {
		_, err := eng.Run(context.Background(), Spec{
			Experiment: exp,
			Params:     Params{"backend": "warp"},
		})
		want := `parameter "backend": invalid value "warp" (want one of "batch", "scalar")`
		if err == nil || !strings.Contains(err.Error(), want) {
			t.Errorf("%s: err = %v, want contains %q", exp, err, want)
		}
		// The canonicalization path (cache keying) must reject it too.
		if _, err := Canonicalize(Spec{Experiment: exp, Params: Params{"backend": "warp"}}); err == nil {
			t.Errorf("%s: invalid backend canonicalized", exp)
		}
	}
}

// TestBackendParamSelectsScalar: the scalar oracle stays reachable
// through the front door for every backend-bearing experiment.
func TestBackendParamSelectsScalar(t *testing.T) {
	res, err := New().Run(context.Background(), Spec{
		Experiment: "run-chain",
		Params:     Params{"trials": 130, "backend": "scalar"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Params.Str("backend"); got != "scalar" {
		t.Fatalf("resolved backend %q", got)
	}
}

func TestParamCoercion(t *testing.T) {
	defs := []ParamDef{
		{Name: "n", Kind: Int, Default: 3},
		{Name: "seed", Kind: Uint, Default: 7},
		{Name: "eps", Kind: Float, Default: 0.5},
		{Name: "on", Kind: Bool, Default: false},
		{Name: "name", Kind: Text, Default: "x"},
		{Name: "fs", Kind: Floats, Default: []float64{1, 2}},
		{Name: "is", Kind: Ints, Default: []int{1, 2}},
	}
	// JSON-shaped inputs: numbers are float64, lists are []any.
	got, err := resolveParams(defs, Params{
		"n":    float64(5),
		"seed": float64(9),
		"eps":  7, // int -> float
		"on":   true,
		"fs":   []any{float64(3), 4},
		"is":   []any{float64(8)},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := Params{
		"n": 5, "seed": uint64(9), "eps": 7.0, "on": true, "name": "x",
		"fs": []float64{3, 4}, "is": []int{8},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("resolved %#v, want %#v", got, want)
	}

	if _, err := resolveParams(defs, Params{"n": 1.5}); err == nil {
		t.Error("fractional int accepted")
	}
	if _, err := resolveParams(defs, Params{"seed": -1}); err == nil {
		t.Error("negative uint accepted")
	}
	if _, err := resolveParams(defs, Params{"name": 3}); err == nil {
		t.Error("numeric string accepted")
	}
	// Seeds legitimately span the full uint64 range.
	big, err := resolveParams(defs, Params{"seed": uint64(math.MaxUint64)})
	if err != nil {
		t.Fatalf("max uint64 seed rejected: %v", err)
	}
	if big.Uint("seed") != math.MaxUint64 {
		t.Fatalf("seed = %d", big.Uint("seed"))
	}
}

func TestMachineRejectedWhereUnused(t *testing.T) {
	// table2 is defined at the paper's expected parameters; a machine
	// selection would be silently ignored, so the engine refuses it.
	_, err := New().Run(context.Background(), Spec{
		Experiment: "table2",
		Machine:    MachineSpec{ParamSet: "current"},
	})
	if err == nil || !strings.Contains(err.Error(), "no machine configuration") {
		t.Fatalf("err = %v", err)
	}
	// Machine-aware experiments accept it.
	if _, err := New().Run(context.Background(), Spec{
		Experiment: "ec-latency",
		Machine:    MachineSpec{ParamSet: "current"},
	}); err != nil {
		t.Fatalf("ec-latency rejected a machine: %v", err)
	}
}

func TestBadInputErrorsNotPanics(t *testing.T) {
	for _, spec := range []Spec{
		{Experiment: "compare-adders", Params: Params{"widths": []int{-1}, "with-modular": false}},
		{Experiment: "qft", Params: Params{"charge-widths": []int{0}}},
		{Experiment: "equation2", Params: Params{"p0": -1.0}},
		{Experiment: "figure7", Params: Params{"phys-errors": []float64{4e-3}, "trials": 10, "trials-l2": -5}},
	} {
		if _, err := New().Run(context.Background(), spec); err == nil {
			t.Errorf("%s with bad input ran anyway", spec.Experiment)
		}
	}
}

func TestMachineSpecRejectsNegatives(t *testing.T) {
	for _, m := range []MachineSpec{
		{Level: -1}, {Bandwidth: -2}, {LogicalQubits: -3},
	} {
		if _, err := m.Options(); err == nil {
			t.Errorf("MachineSpec %+v accepted", m)
		}
	}
	if _, err := (MachineSpec{}).Options(); err != nil {
		t.Errorf("zero MachineSpec rejected: %v", err)
	}
}

func TestMachineSpecTech(t *testing.T) {
	for _, tc := range []struct {
		spec MachineSpec
		want iontrap.Params
	}{
		{MachineSpec{}, iontrap.Expected()},
		{MachineSpec{ParamSet: "expected"}, iontrap.Expected()},
		{MachineSpec{ParamSet: "current"}, iontrap.Current()},
	} {
		got, err := tc.spec.TechParams()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("TechParams(%+v) mismatch", tc.spec)
		}
	}
	if _, err := (MachineSpec{ParamSet: "bogus"}).TechParams(); err == nil {
		t.Error("bogus parameter set accepted")
	}
	custom := iontrap.Uniform(1e-3, 1e-6)
	got, err := (MachineSpec{ParamSet: "bogus", Tech: &custom}).TechParams()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, custom) {
		t.Error("Tech override not honored")
	}
}

func TestSpecJSONRoundTrip(t *testing.T) {
	tech := iontrap.Current()
	spec := Spec{
		Experiment: "run-chain",
		Machine:    MachineSpec{ParamSet: "current", Tech: &tech, Level: 1, Bandwidth: 4},
		Params:     Params{"links": 3, "link-eps": 0.05, "trials": 10, "seed": 2},
	}
	raw, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	var back Spec
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Experiment != spec.Experiment || back.Machine.ParamSet != "current" ||
		back.Machine.Level != 1 || back.Machine.Bandwidth != 4 || back.Machine.Tech == nil {
		t.Fatalf("round trip lost fields: %+v", back)
	}
	// The decoded params are JSON-generic; the engine must accept them.
	// (run-chain takes no machine, so run the machine-less spec.)
	back.Machine = MachineSpec{}
	res, err := New().Run(context.Background(), back)
	if err != nil {
		t.Fatal(err)
	}
	if res.Seed != 2 {
		t.Errorf("Result.Seed = %d", res.Seed)
	}
	if _, err := json.Marshal(res); err != nil {
		t.Errorf("Result not JSON-serializable: %v", err)
	}
}

func TestResultMetadata(t *testing.T) {
	res, err := New().Run(context.Background(), Spec{
		Experiment: "figure7",
		Params:     Params{"phys-errors": []float64{4e-3}, "trials": 40, "seed": 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Experiment != "figure7" {
		t.Errorf("Experiment = %q", res.Experiment)
	}
	if res.Seed != 5 {
		t.Errorf("Seed = %d", res.Seed)
	}
	if res.Started.IsZero() || res.Elapsed <= 0 {
		t.Errorf("timing metadata missing: %v %v", res.Started, res.Elapsed)
	}
	// Defaults are resolved into Params.
	if res.Params.Int("trials-l2") != 0 || res.Params.Int("trials") != 40 {
		t.Errorf("resolved params %+v", res.Params)
	}
	data, ok := res.Data.(Figure7Data)
	if !ok {
		t.Fatalf("Data is %T", res.Data)
	}
	if len(data.L1) != 1 || data.L1[0].Trials != 40 || len(data.L2) != 1 || data.L2[0].Trials != 10 {
		t.Fatalf("curves %+v", data)
	}
}

func TestReportFallsBackToJSON(t *testing.T) {
	// A Result decoded from JSON has a generic Data payload; Report must
	// still produce output rather than panic.
	res := Result{Experiment: "figure7", Data: map[string]any{"l1": []any{}}}
	var sb strings.Builder
	if err := Report(&sb, res); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "figure7") {
		t.Errorf("JSON fallback output %q", sb.String())
	}
}

func TestRegisterPanicsOnDuplicate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	Register(Experiment{
		Name: "table1",
		Run:  func(context.Context, *RunContext) (any, error) { return nil, nil },
	})
}

// TestMachineSweepUnlinked: this package's own test binary does not
// import internal/sweep, so the machine-sweep experiment must be
// registered (catalog, canonicalization and goldens all work) but
// refuse to run with a clear linking error rather than a silent no-op.
func TestMachineSweepUnlinked(t *testing.T) {
	e, ok := Lookup("machine-sweep")
	if !ok {
		t.Fatal("machine-sweep not registered")
	}
	if !e.UsesMachine {
		t.Error("machine-sweep must honor Spec.Machine (it is the base machine)")
	}
	if _, err := Canonicalize(Spec{Experiment: "sweep"}); err != nil {
		t.Errorf("machine-sweep default spec does not canonicalize: %v", err)
	}
	_, err := New().Run(context.Background(), Spec{Experiment: "machine-sweep"})
	if err == nil || !strings.Contains(err.Error(), "not linked") {
		t.Fatalf("err = %v, want a linking error", err)
	}
}

func TestRegisterMachineSweepValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("RegisterMachineSweep(nil) did not panic")
		}
	}()
	RegisterMachineSweep(nil, nil)
}

// TestCoerceValueExported: the exported coercion matches what Run does
// to parameters, kind by kind.
func TestCoerceValueExported(t *testing.T) {
	for _, tc := range []struct {
		kind Kind
		in   any
		want any
	}{
		{Int, 2.0, 2},
		{Uint, 7, uint64(7)},
		{Float, 3, 3.0},
		{Text, "expected", "expected"},
		{Bool, true, true},
	} {
		got, err := CoerceValue(tc.kind, tc.in)
		if err != nil || got != tc.want {
			t.Errorf("CoerceValue(%v, %v) = %v, %v; want %v", tc.kind, tc.in, got, err, tc.want)
		}
	}
	if _, err := CoerceValue(Int, "nope"); err == nil {
		t.Error("CoerceValue coerced a string to int")
	}
	if got, err := CoerceValue(Floats, []any{1, 2.5}); err != nil {
		t.Errorf("CoerceValue floats: %v", err)
	} else if f := got.([]float64); len(f) != 2 || f[1] != 2.5 {
		t.Errorf("CoerceValue floats = %v", got)
	}
}

// TestExperimentParamLookup covers the exported parameter-declaration
// lookup the sweep layer validates axis fields against.
func TestExperimentParamLookup(t *testing.T) {
	fig7, _ := Lookup("figure7")
	def, ok := fig7.Param("seed")
	if !ok || def.Kind != Uint {
		t.Errorf("figure7 seed: ok=%v def=%+v", ok, def)
	}
	if _, ok := fig7.Param("bogus"); ok {
		t.Error("phantom parameter resolved")
	}
}
