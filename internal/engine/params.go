package engine

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Kind is the declared type of one experiment parameter. Values arriving
// from JSON (where every number is a float64) or from Go callers (typed
// ints, uints, slices) are coerced to one canonical Go type per kind
// before an experiment sees them.
type Kind int

const (
	// Int coerces to int.
	Int Kind = iota
	// Uint coerces to uint64 (seeds).
	Uint
	// Float coerces to float64.
	Float
	// Bool coerces to bool.
	Bool
	// Text coerces to string.
	Text
	// Floats coerces to []float64.
	Floats
	// Ints coerces to []int.
	Ints
)

// String names the kind as it appears in documentation and error text.
func (k Kind) String() string {
	switch k {
	case Int:
		return "int"
	case Uint:
		return "uint"
	case Float:
		return "float"
	case Bool:
		return "bool"
	case Text:
		return "string"
	case Floats:
		return "[]float"
	case Ints:
		return "[]int"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// ParamDef declares one parameter of a registered experiment: its name,
// type, default value and one-line documentation. A nil Default makes
// the parameter optional with no resolved entry when absent.
type ParamDef struct {
	Name    string
	Kind    Kind
	Default any
	Doc     string
	// OneOf restricts a Text parameter to an explicit value set;
	// resolution rejects anything else *before* the experiment runs, so
	// a bad value is a spec-validation error (HTTP 400, never cached)
	// rather than a runtime failure. Empty means unrestricted.
	OneOf []string
}

// allows reports whether v satisfies the OneOf restriction.
func (d *ParamDef) allows(v string) bool {
	for _, ok := range d.OneOf {
		if v == ok {
			return true
		}
	}
	return false
}

// Params carries experiment parameters by name. In a Spec the values may
// be anything JSON unmarshals to (or native Go values when constructed
// in-process); after Engine.Run resolves them against the experiment's
// ParamDefs they hold exactly one canonical type per declared kind.
type Params map[string]any

// Int returns the named int parameter (zero when absent).
func (p Params) Int(name string) int { v, _ := p[name].(int); return v }

// Uint returns the named uint parameter (zero when absent).
func (p Params) Uint(name string) uint64 { v, _ := p[name].(uint64); return v }

// Float returns the named float parameter (zero when absent).
func (p Params) Float(name string) float64 { v, _ := p[name].(float64); return v }

// Bool returns the named bool parameter (false when absent).
func (p Params) Bool(name string) bool { v, _ := p[name].(bool); return v }

// Str returns the named string parameter (empty when absent).
func (p Params) Str(name string) string { v, _ := p[name].(string); return v }

// Floats returns the named []float64 parameter (nil when absent).
func (p Params) Floats(name string) []float64 { v, _ := p[name].([]float64); return v }

// Ints returns the named []int parameter (nil when absent).
func (p Params) Ints(name string) []int { v, _ := p[name].([]int); return v }

// resolveParams merges the caller's params over the experiment defaults,
// rejecting names the experiment does not declare and values that cannot
// be coerced to the declared kind.
func resolveParams(defs []ParamDef, given Params) (Params, error) {
	byName := make(map[string]*ParamDef, len(defs))
	for i := range defs {
		byName[defs[i].Name] = &defs[i]
	}
	out := make(Params, len(defs))
	for _, d := range defs {
		if d.Default == nil {
			continue
		}
		v, err := coerce(d.Kind, d.Default)
		if err != nil {
			return nil, fmt.Errorf("engine: bad default for %q: %w", d.Name, err)
		}
		out[d.Name] = v
	}
	// Deterministic iteration keeps error messages stable.
	names := make([]string, 0, len(given))
	for name := range given {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		d, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("engine: unknown parameter %q (known: %s)", name, paramNames(defs))
		}
		v, err := coerce(d.Kind, given[name])
		if err != nil {
			return nil, fmt.Errorf("engine: parameter %q: %w", name, err)
		}
		if s, ok := v.(string); ok && len(d.OneOf) > 0 && !d.allows(s) {
			return nil, fmt.Errorf("engine: parameter %q: invalid value %q (want one of %s)",
				name, s, quotedList(d.OneOf))
		}
		out[name] = v
	}
	return out, nil
}

func quotedList(values []string) string {
	quoted := make([]string, len(values))
	for i, v := range values {
		quoted[i] = fmt.Sprintf("%q", v)
	}
	return strings.Join(quoted, ", ")
}

func paramNames(defs []ParamDef) string {
	if len(defs) == 0 {
		return "none"
	}
	names := make([]string, len(defs))
	for i, d := range defs {
		names[i] = d.Name
	}
	return strings.Join(names, ", ")
}

// CoerceValue converts v to the canonical Go type of kind k — the same
// coercion Run applies to Spec parameters, exported so the sweep layer
// canonicalizes axis values exactly as point canonicalization will.
func CoerceValue(k Kind, v any) (any, error) { return coerce(k, v) }

// coerce converts v to the canonical Go type of kind k.
func coerce(k Kind, v any) (any, error) {
	switch k {
	case Int:
		n, err := toInt64(v)
		if err != nil {
			return nil, err
		}
		return int(n), nil
	case Uint:
		n, err := toUint64(v)
		if err != nil {
			return nil, err
		}
		return n, nil
	case Float:
		f, err := toFloat64(v)
		if err != nil {
			return nil, err
		}
		return f, nil
	case Bool:
		b, ok := v.(bool)
		if !ok {
			return nil, fmt.Errorf("want bool, got %T", v)
		}
		return b, nil
	case Text:
		s, ok := v.(string)
		if !ok {
			return nil, fmt.Errorf("want string, got %T", v)
		}
		return s, nil
	case Floats:
		return toFloats(v)
	case Ints:
		return toInts(v)
	}
	return nil, fmt.Errorf("unknown parameter kind %v", k)
}

func toInt64(v any) (int64, error) {
	switch n := v.(type) {
	case int:
		return int64(n), nil
	case int64:
		return n, nil
	case uint64:
		if n > math.MaxInt64 {
			return 0, fmt.Errorf("integer %d overflows", n)
		}
		return int64(n), nil
	case float64:
		if n != math.Trunc(n) || math.Abs(n) > 1<<53 {
			return 0, fmt.Errorf("want integer, got %g", n)
		}
		return int64(n), nil
	}
	return 0, fmt.Errorf("want integer, got %T", v)
}

// toUint64 accepts the full uint64 range directly (seeds legitimately
// use the upper half), plus non-negative signed and integral floats.
func toUint64(v any) (uint64, error) {
	switch n := v.(type) {
	case uint64:
		return n, nil
	case uint:
		return uint64(n), nil
	case int:
		if n < 0 {
			return 0, fmt.Errorf("want non-negative, got %d", n)
		}
		return uint64(n), nil
	case int64:
		if n < 0 {
			return 0, fmt.Errorf("want non-negative, got %d", n)
		}
		return uint64(n), nil
	case float64:
		if n != math.Trunc(n) || n < 0 || n > 1<<53 {
			return 0, fmt.Errorf("want non-negative integer, got %g", n)
		}
		return uint64(n), nil
	}
	return 0, fmt.Errorf("want non-negative integer, got %T", v)
}

func toFloat64(v any) (float64, error) {
	switch n := v.(type) {
	case float64:
		return n, nil
	case int:
		return float64(n), nil
	case int64:
		return float64(n), nil
	case uint64:
		return float64(n), nil
	}
	return 0, fmt.Errorf("want number, got %T", v)
}

func toFloats(v any) ([]float64, error) {
	switch s := v.(type) {
	case []float64:
		return append([]float64(nil), s...), nil
	case []int:
		out := make([]float64, len(s))
		for i, n := range s {
			out[i] = float64(n)
		}
		return out, nil
	case []any:
		out := make([]float64, len(s))
		for i, e := range s {
			f, err := toFloat64(e)
			if err != nil {
				return nil, fmt.Errorf("element %d: %w", i, err)
			}
			out[i] = f
		}
		return out, nil
	}
	return nil, fmt.Errorf("want number list, got %T", v)
}

func toInts(v any) ([]int, error) {
	switch s := v.(type) {
	case []int:
		return append([]int(nil), s...), nil
	case []float64:
		out := make([]int, len(s))
		for i, f := range s {
			n, err := toInt64(f)
			if err != nil {
				return nil, fmt.Errorf("element %d: %w", i, err)
			}
			out[i] = int(n)
		}
		return out, nil
	case []any:
		out := make([]int, len(s))
		for i, e := range s {
			n, err := toInt64(e)
			if err != nil {
				return nil, fmt.Errorf("element %d: %w", i, err)
			}
			out[i] = int(n)
		}
		return out, nil
	}
	return nil, fmt.Errorf("want integer list, got %T", v)
}
