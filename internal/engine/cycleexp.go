package engine

// The cycle-* experiment family runs the cycle-level data-movement
// simulator of internal/cyclesim, which depends on this package (it
// consumes RunContext machines and Table-1 parameter sets), so — as
// with machine-sweep — the Run/Report pairs arrive through
// RegisterCycleExperiment at that package's init. Registration,
// parameter schemas, canonicalization and the golden Specs stay here;
// a binary that links internal/cyclesim (the facade, the serving
// layer, the CLIs) gets working cycle experiments, and one that does
// not gets a clear error instead of a silent no-op.

import (
	"context"
	"fmt"
	"io"
)

// Cycle experiment names.
const (
	CycleInterconnect = "cycle-interconnect"
	CycleHierarchy    = "cycle-hierarchy"
	CycleTrace        = "cycle-trace"
)

type cycleImpl struct {
	run    func(ctx context.Context, rc *RunContext) (any, error)
	report func(w io.Writer, res Result) error
}

var cycleHooks = map[string]*cycleImpl{
	CycleInterconnect: {},
	CycleHierarchy:    {},
	CycleTrace:        {},
}

// RegisterCycleExperiment installs one cycle experiment's
// implementation. Called from internal/cyclesim's init, once per name;
// unknown names, duplicate installs and nil run functions panic, as
// Register does for malformed entries.
func RegisterCycleExperiment(name string, run func(ctx context.Context, rc *RunContext) (any, error), report func(w io.Writer, res Result) error) {
	hook, ok := cycleHooks[name]
	if !ok {
		panic(fmt.Sprintf("engine: RegisterCycleExperiment: unknown experiment %q", name))
	}
	if run == nil {
		panic(fmt.Sprintf("engine: RegisterCycleExperiment(%s) needs a run function", name))
	}
	if hook.run != nil {
		panic(fmt.Sprintf("engine: cycle experiment %s already registered", name))
	}
	hook.run = run
	hook.report = report
}

func cycleRun(name string) func(ctx context.Context, rc *RunContext) (any, error) {
	return func(ctx context.Context, rc *RunContext) (any, error) {
		if cycleHooks[name].run == nil {
			return nil, fmt.Errorf("%s: implementation not linked (import qla/internal/cyclesim)", name)
		}
		return cycleHooks[name].run(ctx, rc)
	}
}

func cycleReport(name string) func(w io.Writer, res Result) error {
	return func(w io.Writer, res Result) error {
		if cycleHooks[name].report == nil {
			return reportJSON(w, res)
		}
		return cycleHooks[name].report(w, res)
	}
}

// cycleFabricParams are the latency/fabric knobs shared by every cycle
// experiment. Spec.Machine supplies the rest: the Table-1 parameter
// set sets the cycle latencies, machine.bandwidth the lanes per link
// direction, and machine.level the tile pitch the hop distance derives
// from.
func cycleFabricParams() []ParamDef {
	return []ParamDef{
		{Name: "routing", Kind: Text, Default: "dimension", OneOf: []string{"dimension", "adaptive"}, Doc: "mesh routing policy: \"dimension\" (X then Y, at most one corner) or \"adaptive\" (earliest-free productive direction)"},
		{Name: "tile-cells", Kind: Int, Default: 0, Doc: "inter-tile hop distance in cells (0 derives the machine level's tile pitch from internal/layout)"},
		{Name: "epr-cycles", Kind: Int, Default: 0, Doc: "EPR-generator interval between pair halves, in cycles (0 derives the pipelined 0.1 µs factory rate)"},
		{Name: "epr-pairs", Kind: Int, Default: 2, Doc: "purified pair halves shipped per codeword ion (purification sacrifice included)"},
		{Name: "purify-cycles", Kind: Int, Default: 0, Doc: "residual purification latency at the destination port, in cycles (0 derives two BBPSSW rounds)"},
		{Name: "cool-cells", Kind: Int, Default: 0, Doc: "ballistic recooling interval in cells (0 keeps the default 50; negative disables recooling stalls)"},
		{Name: "seed", Kind: Uint, Default: 7, Doc: "workload generation seed"},
	}
}

func init() {
	Register(Experiment{
		Name:        CycleInterconnect,
		Family:      "cycle",
		UsesMachine: true,
		Title:       "Cycle-level interconnect: teleportation vs. ballistic shuttling under contention",
		Doc: "Replays a synthetic logical-op kernel through the cycle-level tile-grid simulator in both transport modes and compares sustained logical-op bandwidth, latency and link contention — the data-movement tradeoff behind the paper's Sections 4–5 " +
			"(teleportation interconnect with dedicated EPR-generator ports vs. ballistic codeword shuttling). One cycle is one ballistic cell move of the machine's Table-1 parameter set.",
		Params: append([]ParamDef{
			{Name: "grid", Kind: Int, Default: 8, Doc: "tiles per side of the square logical-qubit grid"},
			{Name: "ops", Kind: Int, Default: 256, Doc: "logical operations replayed"},
			{Name: "window", Kind: Int, Default: 16, Doc: "logical ops the scheduler keeps in flight"},
			{Name: "kernel", Kind: Text, Default: "random", OneOf: []string{"random", "neighbor", "transversal", "bitrev"}, Doc: "synthetic workload kernel"},
		}, cycleFabricParams()...),
		Bench:    true,
		Parallel: true,
		Run:      cycleRun(CycleInterconnect),
		Report:   cycleReport(CycleInterconnect),
	})

	Register(Experiment{
		Name:        CycleHierarchy,
		Family:      "cycle",
		UsesMachine: true,
		Title:       "Cycle-level memory hierarchy: cache levels over the teleportation interconnect",
		Doc: "Places cache levels at geometrically growing distances on a line of tiles (level i at 2^i hops) and replays a miss-chain access stream through both transport modes, reporting per-level mean access latency and the AMAT of each mode — " +
			"the cache-level × bandwidth evaluation shape of the memory-hierarchy follow-up (quant-ph/0604070).",
		Params: append([]ParamDef{
			{Name: "levels", Kind: Int, Default: 3, Doc: "cache levels (level i sits 2^i tiles from compute)"},
			{Name: "accesses", Kind: Int, Default: 512, Doc: "memory accesses replayed"},
			{Name: "miss-ratio", Kind: Float, Default: 0.35, Doc: "per-level miss probability of the access stream"},
			{Name: "window", Kind: Int, Default: 8, Doc: "accesses the scheduler keeps in flight"},
		}, cycleFabricParams()...),
		Bench:    true,
		Parallel: true,
		Run:      cycleRun(CycleHierarchy),
		Report:   cycleReport(CycleHierarchy),
	})

	Register(Experiment{
		Name:        CycleTrace,
		Family:      "cycle",
		UsesMachine: true,
		Title:       "Cycle-level trace replay (circuit-trace seam)",
		Doc: "Replays an explicit logical-operation trace (\"cx SRC DST\" lines over row-major tile indices) through the cycle-level simulator in both transport modes. " +
			"This is the seam for compiled circuit traces; netsim's workload generators emit the same shape.",
		Params: append([]ParamDef{
			{Name: "trace", Kind: Text, Default: "cx 0 5\ncx 3 6\ncx 12 9\ncx 15 10", Doc: "logical-op trace, one \"cx SRC DST\" per line ('#' comments allowed)"},
			{Name: "grid", Kind: Int, Default: 4, Doc: "tiles per side of the square logical-qubit grid"},
			{Name: "window", Kind: Int, Default: 4, Doc: "logical ops the scheduler keeps in flight"},
		}, cycleFabricParams()...),
		Parallel: true,
		Run:      cycleRun(CycleTrace),
		Report:   cycleReport(CycleTrace),
	})
}
