package engine

// The experiment registry. Every table and figure of the paper's
// evaluation — plus the extension-system ablations and the ARQ pipeline
// stages — is registered here as a named, parameterized experiment so
// that one Engine front door (and one CLI, and any future service)
// drives them all. Registration happens at package init; the Run
// functions contain the experiment logic that used to live as bespoke
// top-level functions and qlabench switch arms.

import (
	"context"
	"fmt"
	"strings"

	"qla/internal/adder"
	"qla/internal/arq"
	"qla/internal/codes"
	"qla/internal/commsim"
	"qla/internal/control"
	"qla/internal/core"
	"qla/internal/ft"
	"qla/internal/iontrap"
	"qla/internal/modarith"
	"qla/internal/multichip"
	"qla/internal/netsim"
	"qla/internal/qccd"
	"qla/internal/qft"
	"qla/internal/shor"
	"qla/internal/teleport"
	"qla/internal/threshold"
)

// Typed data payloads. These are what Result.Data holds for each
// experiment; EXPERIMENTS.md documents the mapping.

// Table1Data carries both technology parameter sets of Table 1.
type Table1Data struct {
	Current  iontrap.Params `json:"current"`
	Expected iontrap.Params `json:"expected"`
}

// Figure7Data carries the two threshold curves and their crossing.
type Figure7Data struct {
	L1       []threshold.Point `json:"l1"`
	L2       []threshold.Point `json:"l2"`
	Crossing float64           `json:"crossing"`
}

// SyndromeRateData carries the Section-4.1.1 non-trivial syndrome rates.
type SyndromeRateData struct {
	Level1 float64 `json:"level1"`
	Level2 float64 `json:"level2"`
}

// Figure9Data carries the repeater-network series plus its headline
// derived numbers (the d=100/d=350 crossover and the best separations
// at the shortest and longest swept distances).
type Figure9Data struct {
	Points       []teleport.Figure9Point `json:"points"`
	Crossover    int                     `json:"crossover"`
	BestSepShort int                     `json:"best_sep_short"`
	BestSepLong  int                     `json:"best_sep_long"`
}

// Equation2Data carries the Gottesman local-architecture estimate at the
// requested threshold and, for comparison, at the empirical QLA one.
type Equation2Data struct {
	P0               float64 `json:"p0"`
	Pth              float64 `json:"pth"`
	Level            int     `json:"level"`
	Failure          float64 `json:"failure"`
	MaxSystemSize    float64 `json:"max_system_size"`
	EmpiricalPth     float64 `json:"empirical_pth"`
	EmpiricalFailure float64 `json:"empirical_failure"`
}

// ShorRunData carries one Shor sizing row plus machine-level derived
// quantities (the Section-5 narrative numbers).
type ShorRunData struct {
	Resources          shor.Resources `json:"resources"`
	EdgeCM             float64        `json:"edge_cm"`
	PhysicalIons       int            `json:"physical_ions"`
	ClassicalMIPSYears float64        `json:"classical_mips_years"`
}

// ModAddComparison pairs the two modular-adder constructions at one
// width/modulus.
type ModAddComparison struct {
	Bits    int              `json:"bits"`
	Modulus uint64           `json:"modulus"`
	Ripple  modarith.Metrics `json:"ripple"`
	CLA     modarith.Metrics `json:"cla"`
}

// AddersData carries the arithmetic ablation rows.
type AddersData struct {
	Comparisons []adder.Comparison `json:"comparisons"`
	Modular     []ModAddComparison `json:"modular,omitempty"`
}

// CodeAblationData carries the code-catalog cost bill and, when
// mc-trials is non-zero, the decoder Monte Carlo sweep.
type CodeAblationData struct {
	Costs      []codes.ECCost   `json:"costs"`
	MCErrors   []float64        `json:"mc_errors,omitempty"`
	MonteCarlo []codes.MCResult `json:"monte_carlo,omitempty"`
}

// ChainValidationData carries the gate-level interconnect validation:
// the repeater-chain rows and the naive-vs-repeater comparison.
type ChainValidationData struct {
	Rows    []commsim.ChainResult   `json:"rows"`
	Compare commsim.NaiveVsRepeater `json:"compare"`
}

// ShuttleRow is one executed transversal gate at one separation.
type ShuttleRow struct {
	Separation int                    `json:"separation"`
	Report     qccd.TransversalReport `json:"report"`
}

// QFTExactRow is one exact-circuit verification sample.
type QFTExactRow struct {
	N             int     `json:"n"`
	MaxBasisError float64 `json:"max_basis_error"`
}

// QFTBandRow is one banding-error sample at fixed width.
type QFTBandRow struct {
	Band          int     `json:"band"`
	MaxBasisError float64 `json:"max_basis_error"`
}

// QFTChargeRow compares banded gate counts against the model charge.
type QFTChargeRow struct {
	N     int     `json:"n"`
	Band  int     `json:"band"`
	Gates int64   `json:"gates"`
	Model int64   `json:"model"`
	Ratio float64 `json:"ratio"`
}

// QFTData carries the three QFT validation sections.
type QFTData struct {
	Exact   []QFTExactRow  `json:"exact"`
	Banding []QFTBandRow   `json:"banding"`
	Charge  []QFTChargeRow `json:"charge"`
}

// EstimateData carries an architecture-level execution estimate plus
// the machine quantities its report prints.
type EstimateData struct {
	Report     core.Report `json:"report"`
	ECStepTime float64     `json:"ec_step_time"`
	AreaM2     float64     `json:"area_m2"`
}

// defaultCircuit is the GHZ smoke circuit the ARQ experiments run when
// no circuit parameter is given.
const defaultCircuit = `qubits 4
h 0
cnot 0 1
cnot 1 2
cnot 2 3
measure 0
measure 3
`

// backendNames is the value set of every "backend" parameter: the
// bit-sliced 64-trials-per-word engine and the scalar reference
// oracle. Validation happens at spec resolution (a bad name is a 400,
// never a cached run), shared by the threshold, repeater-chain and
// code-catalog Monte Carlos.
var backendNames = []string{threshold.BackendBatch, threshold.BackendScalar}

func parseJob(rc *RunContext) (*arq.Job, error) {
	opts, err := rc.Machine.Options()
	if err != nil {
		return nil, err
	}
	return arq.Parse(strings.NewReader(rc.Params.Str("circuit")), opts...)
}

func init() {
	Register(Experiment{
		Name:   "table1",
		Family: "paper",
		Title:  "Table 1: physical operation times and failure rates",
		Doc:    "Reproduces Table 1's two technology parameter columns (current vs expected ion-trap failure rates).",
		Bench:  true,
		Run: func(ctx context.Context, rc *RunContext) (any, error) {
			return Table1Data{Current: iontrap.Current(), Expected: iontrap.Expected()}, nil
		},
		Report: reportTable1,
	})

	Register(Experiment{
		Name:        "ec-latency",
		Family:      "paper",
		UsesMachine: true,
		Aliases:     []string{"ecc", "eclatency"},
		Title:       "Equation 1: error-correction latency (Section 4.1.1)",
		Doc:         "Evaluates Equation 1 under the machine's technology parameters: level-1/level-2 EC-step times and ancilla preparation (paper: ~0.003 s, ~0.043 s, ~0.008 s).",
		Bench:       true,
		Run: func(ctx context.Context, rc *RunContext) (any, error) {
			return ft.NewLatencyModel(rc.Tech).Summarize(), nil
		},
		Report: reportECLatency,
	})

	Register(Experiment{
		Name:        "equation2",
		Family:      "paper",
		UsesMachine: true,
		Aliases:     []string{"eq2"},
		Title:       "Equation 2: Gottesman local-architecture failure estimate",
		Doc:         "Evaluates P_f(L) = (p0/pth)^(2^L) scaled by r=12 error sites, at the requested threshold and at the empirical QLA one (paper: ~1.0e-16 at L=2).",
		Params: []ParamDef{
			{Name: "p0", Kind: Float, Doc: "component failure rate (omit to derive the machine average)"},
			{Name: "pth", Kind: Float, Default: ft.PthLocal, Doc: "threshold failure rate"},
			{Name: "level", Kind: Int, Default: 2, Doc: "recursion level L"},
		},
		Bench: true,
		Run: func(ctx context.Context, rc *RunContext) (any, error) {
			p0, given := rc.Params["p0"].(float64)
			if !given {
				p0 = rc.Tech.AverageComponentFailure()
			}
			pth := rc.Params.Float("pth")
			level := rc.Params.Int("level")
			// Guard the model's domain here: the engine is a serving
			// front door and must reject bad input, not panic on it.
			if p0 <= 0 || pth <= 0 {
				return nil, fmt.Errorf("p0 (%g) and pth (%g) must be positive", p0, pth)
			}
			if level < 0 {
				return nil, fmt.Errorf("level %d must be non-negative", level)
			}
			pf := ft.GottesmanFailure(p0, pth, 12, level)
			return Equation2Data{
				P0:               p0,
				Pth:              pth,
				Level:            level,
				Failure:          pf,
				MaxSystemSize:    ft.MaxSystemSize(pf),
				EmpiricalPth:     ft.PthEmpiricalQLA,
				EmpiricalFailure: ft.GottesmanFailure(p0, ft.PthEmpiricalQLA, 12, level),
			}, nil
		},
		Report: reportEquation2,
	})

	Register(Experiment{
		Name:     "figure7",
		Family:   "paper",
		Parallel: true,
		Aliases:  []string{"fig7"},
		Title:    "Figure 7: logical one-qubit gate failure vs component failure rate",
		Doc:      "Threshold Monte Carlo at recursion levels 1 and 2 over a physical-error sweep, with the interpolated pseudo-threshold crossing (paper: (2.1±1.8)e-3). Honors engine parallelism with bit-identical results at any width.",
		Params: []ParamDef{
			{Name: "phys-errors", Kind: Floats, Default: threshold.Figure7Errors, Doc: "physical error rates to sweep"},
			{Name: "trials", Kind: Int, Default: 120000, Doc: "level-1 Monte Carlo trials per point"},
			{Name: "trials-l2", Kind: Int, Default: 0, Doc: "level-2 trials per point (0 means trials/4)"},
			{Name: "seed", Kind: Uint, Default: 11, Doc: "Monte Carlo seed (level 2 uses seed+1)"},
			{Name: "backend", Kind: Text, Default: threshold.BackendBatch, OneOf: backendNames, Doc: "Monte Carlo backend: \"batch\" (64 bit-sliced trials/word) or \"scalar\" (reference oracle)"},
		},
		Bench: true,
		Run: func(ctx context.Context, rc *RunContext) (any, error) {
			physErrors := rc.Params.Floats("phys-errors")
			trials := rc.Params.Int("trials")
			trialsL2 := rc.Params.Int("trials-l2")
			if trialsL2 < 0 {
				return nil, fmt.Errorf("trials-l2 %d must be non-negative (0 means trials/4)", trialsL2)
			}
			if trialsL2 == 0 {
				trialsL2 = trials / 4
				if trialsL2 < 1 {
					trialsL2 = 1
				}
			}
			seed := rc.Params.Uint("seed")
			backend := rc.Params.Str("backend")
			l1, err := threshold.SweepCtx(ctx, 1, physErrors, trials, seed, rc.Parallelism, backend)
			if err != nil {
				return nil, err
			}
			l2, err := threshold.SweepCtx(ctx, 2, physErrors, trialsL2, seed+1, rc.Parallelism, backend)
			if err != nil {
				return nil, err
			}
			return Figure7Data{L1: l1, L2: l2, Crossing: threshold.Crossing(l1, l2)}, nil
		},
		Report: reportFigure7,
	})

	Register(Experiment{
		Name:     "syndrome-rates",
		Family:   "paper",
		Parallel: true,
		Aliases:  []string{"syndrome"},
		Title:    "Non-trivial syndrome rates at expected parameters (Section 4.1.1)",
		Doc:      "Measures the non-trivial syndrome fraction at levels 1 and 2 under the expected parameters (paper: 3.35e-4 ± 0.41e-4 and 7.92e-4 ± 0.81e-4). Level 2 uses trials/10.",
		Params: []ParamDef{
			{Name: "trials", Kind: Int, Default: 120000, Doc: "level-1 Monte Carlo trials"},
			{Name: "seed", Kind: Uint, Default: 11, Doc: "Monte Carlo seed"},
			{Name: "backend", Kind: Text, Default: threshold.BackendBatch, OneOf: backendNames, Doc: "Monte Carlo backend: \"batch\" or \"scalar\""},
		},
		Bench: true,
		Run: func(ctx context.Context, rc *RunContext) (any, error) {
			l1, l2, err := threshold.SyndromeRatesCtx(ctx, rc.Params.Int("trials"), rc.Params.Uint("seed"), rc.Parallelism, rc.Params.Str("backend"))
			if err != nil {
				return nil, err
			}
			return SyndromeRateData{Level1: l1, Level2: l2}, nil
		},
		Report: reportSyndromeRates,
	})

	Register(Experiment{
		Name:    "figure9",
		Family:  "paper",
		Aliases: []string{"fig9"},
		Title:   "Figure 9: connection time vs total distance by island separation",
		Doc:     "Sweeps the calibrated repeater-channel model over total distance for each Figure-9 island separation, with the d=100/d=350 crossover (paper: ~6000 cells) and the best separation at the sweep endpoints.",
		Params: []ParamDef{
			{Name: "distances", Kind: Ints, Default: []int{2000, 4000, 6000, 8000, 12000, 16000, 24000, 30000}, Doc: "total distances in cells"},
		},
		Bench: true,
		Run: func(ctx context.Context, rc *RunContext) (any, error) {
			distances := rc.Params.Ints("distances")
			lp := teleport.DefaultLinkParams()
			data := Figure9Data{Points: lp.Figure9Series(distances)}
			if len(distances) > 0 {
				data.Crossover = lp.CrossoverDistance(100, 350, distances)
				data.BestSepShort, _, _ = lp.BestSeparation(distances[0])
				data.BestSepLong, _, _ = lp.BestSeparation(distances[len(distances)-1])
			}
			return data, nil
		},
		Report: reportFigure9,
	})

	Register(Experiment{
		Name:    "scheduler-sweep",
		Family:  "paper",
		Aliases: []string{"sched"},
		Title:   "Section 5: EPR scheduler bandwidth sweep",
		Doc:     "Schedules the canonical Toffoli workload at each candidate channel bandwidth (paper: bandwidth 2 fully overlaps communication with error correction at ~23% utilization).",
		Params: []ParamDef{
			{Name: "bandwidths", Kind: Ints, Default: []int{1, 2, 4}, Doc: "channel bandwidths to sweep"},
			{Name: "islands-w", Kind: Int, Default: 20, Doc: "island grid width"},
			{Name: "islands-h", Kind: Int, Default: 20, Doc: "island grid height"},
			{Name: "toffolis", Kind: Int, Default: 25, Doc: "concurrent fault-tolerant Toffoli gates"},
			{Name: "workload-seed", Kind: Uint, Default: 7, Doc: "workload placement seed"},
		},
		Bench: true,
		Run: func(ctx context.Context, rc *RunContext) (any, error) {
			return netsim.RunBandwidthSweep(
				rc.Params.Int("islands-w"), rc.Params.Int("islands-h"),
				rc.Params.Int("toffolis"), rc.Params.Ints("bandwidths"),
				rc.Params.Uint("workload-seed"))
		},
		Report: reportSchedulerSweep,
	})

	Register(Experiment{
		Name:   "table2",
		Family: "paper",
		Title:  "Table 2: Shor's algorithm on the QLA",
		Doc:    "Regenerates Table 2 (Shor sizing for N = 128, 512, 1024, 2048) under the expected parameters, printed beside the paper's reported values.",
		Bench:  true,
		Run: func(ctx context.Context, rc *RunContext) (any, error) {
			return shor.Table2()
		},
		Report: reportTable2,
	})

	Register(Experiment{
		Name:        "shor",
		Family:      "paper",
		UsesMachine: true,
		Aliases:     []string{"shor128"},
		Title:       "Factoring on the QLA (Section 5 narrative)",
		Doc:         "Sizes Shor's algorithm for one modulus width and derives the machine-level narrative numbers (paper at N=128: ~16 h/run, 0.11 m², ~7e6 ions).",
		Params: []ParamDef{
			{Name: "n-bits", Kind: Int, Default: 128, Doc: "modulus width in bits"},
		},
		Bench: true,
		Run: func(ctx context.Context, rc *RunContext) (any, error) {
			n := rc.Params.Int("n-bits")
			r, err := shor.Estimate(n, rc.Tech)
			if err != nil {
				return nil, err
			}
			opts, err := rc.Machine.Options()
			if err != nil {
				return nil, err
			}
			m, err := core.New(r.LogicalQubits, opts...)
			if err != nil {
				return nil, err
			}
			return ShorRunData{
				Resources:          r,
				EdgeCM:             m.Floorplan.EdgeCM(),
				PhysicalIons:       m.PhysicalIons(),
				ClassicalMIPSYears: shor.ClassicalNFSMIPSYears(n),
			}, nil
		},
		Report: reportShor,
	})

	Register(Experiment{
		Name:    "compare-adders",
		Family:  "extensions",
		Aliases: []string{"adders"},
		Title:   "Adder ablation: Toffoli critical path, ripple vs QCLA",
		Doc:     "Builds, verifies and measures the Cuccaro ripple-carry baseline against the DKRS carry-lookahead adder at each width, plus the VBE modular-adder comparison (the paper's QCLA choice).",
		Params: []ParamDef{
			{Name: "widths", Kind: Ints, Default: []int{4, 8, 16, 32, 64}, Doc: "operand widths in bits"},
			{Name: "with-modular", Kind: Bool, Default: true, Doc: "include the modular-adder comparison rows"},
		},
		Bench: true,
		Run: func(ctx context.Context, rc *RunContext) (any, error) {
			var data AddersData
			for _, n := range rc.Params.Ints("widths") {
				if n < 1 {
					return nil, fmt.Errorf("width %d must be positive", n)
				}
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				data.Comparisons = append(data.Comparisons, adder.Compare(n))
			}
			if rc.Params.Bool("with-modular") {
				for _, row := range []struct {
					n int
					m uint64
				}{{8, 251}, {12, 3677}, {16, 40961}} {
					if err := ctx.Err(); err != nil {
						return nil, err
					}
					data.Modular = append(data.Modular, ModAddComparison{
						Bits:    row.n,
						Modulus: row.m,
						Ripple:  modarith.Measure(row.n, row.m, modarith.Ripple),
						CLA:     modarith.Measure(row.n, row.m, modarith.CLA),
					})
				}
			}
			return data, nil
		},
		Report: reportCompareAdders,
	})

	Register(Experiment{
		Name:        "code-ablation",
		Family:      "extensions",
		UsesMachine: true,
		Aliases:     []string{"codes"},
		Title:       "Code ablation: syndrome-extraction bill per full round",
		Doc:         "Compares syndrome-extraction costs across the code catalog under the machine's technology parameters, plus a decoder Monte Carlo when mc-trials > 0 (paper: Steane [[7,1,3]] chosen in Section 4.1).",
		Params: []ParamDef{
			{Name: "mc-trials", Kind: Int, Default: 100000, Doc: "decoder Monte Carlo trials per point (0 skips)"},
			{Name: "mc-errors", Kind: Floats, Default: []float64{0.002, 0.01, 0.05}, Doc: "depolarizing probabilities for the Monte Carlo"},
			{Name: "mc-seed", Kind: Uint, Default: 17, Doc: "decoder Monte Carlo seed"},
			{Name: "backend", Kind: Text, Default: codes.BackendBatch, OneOf: backendNames, Doc: "decoder Monte Carlo backend: \"batch\" (64 bit-sliced trials/word) or \"scalar\" (reference oracle)"},
		},
		Bench: true,
		Run: func(ctx context.Context, rc *RunContext) (any, error) {
			for _, c := range codes.All() {
				if err := c.Validate(); err != nil {
					return nil, err
				}
			}
			data := CodeAblationData{Costs: codes.Ablation(rc.Tech)}
			if trials := rc.Params.Int("mc-trials"); trials > 0 {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				data.MCErrors = rc.Params.Floats("mc-errors")
				mc, err := codes.MonteCarloSweepBackend(data.MCErrors, trials, rc.Params.Uint("mc-seed"), rc.Params.Str("backend"))
				if err != nil {
					return nil, err
				}
				data.MonteCarlo = mc
			}
			return data, nil
		},
		Report: reportCodeAblation,
	})

	Register(Experiment{
		Name:     "chain-validation",
		Family:   "extensions",
		Parallel: true,
		Aliases:  []string{"chainmc"},
		Title:    "Repeater-chain Monte Carlo vs Werner model",
		Doc:      "Executes the repeater protocol gate by gate across four chain shapes and contrasts naive end-to-end teleportation with the repeater chain (the paper's contribution-2 validation). The batch and scalar backends are bit-identical at the same seed.",
		Params: []ParamDef{
			{Name: "trials", Kind: Int, Default: 3000, Doc: "Monte Carlo trials per chain shape (capped at 6000)"},
			{Name: "seed", Kind: Uint, Default: 11, Doc: "Monte Carlo seed"},
			{Name: "backend", Kind: Text, Default: commsim.BackendBatch, OneOf: backendNames, Doc: "chain Monte Carlo backend: \"batch\" (64 bit-sliced trials/word) or \"scalar\" (stabilizer-tableau oracle); both are bit-identical at the same seed"},
		},
		Bench: true,
		Run: func(ctx context.Context, rc *RunContext) (any, error) {
			trials := rc.Params.Int("trials")
			if trials > 6000 {
				trials = 6000 // far more than this validation needs
			}
			seed := rc.Params.Uint("seed")
			var data ChainValidationData
			for i, cfg := range []commsim.ChainConfig{
				{Links: 2, LinkEps: 0.06, PurifyRounds: 0},
				{Links: 2, LinkEps: 0.06, PurifyRounds: 1},
				{Links: 4, LinkEps: 0.06, PurifyRounds: 1},
				{Links: 8, LinkEps: 0.06, PurifyRounds: 2},
			} {
				cfg.Trials = trials
				cfg.Seed = seed + uint64(i)
				cfg.Parallelism = rc.Parallelism
				cfg.Backend = rc.Params.Str("backend")
				res, err := commsim.RunChainCtx(ctx, cfg)
				if err != nil {
					return nil, err
				}
				data.Rows = append(data.Rows, res)
			}
			cmp, err := commsim.CompareStrategiesCtx(ctx, 0.05, 8, 1, trials, seed+10, rc.Parallelism, rc.Params.Str("backend"))
			if err != nil {
				return nil, err
			}
			data.Compare = cmp
			return data, nil
		},
		Report: reportChainValidation,
	})

	Register(Experiment{
		Name:     "run-chain",
		Family:   "extensions",
		Parallel: true,
		Title:    "Repeater-chain Monte Carlo: one configuration",
		Doc:      "Executes the repeater protocol gate by gate for one chain configuration and compares against the Werner-model prediction. Honors engine parallelism with bit-identical results at any width; the batch and scalar backends are bit-identical at the same seed.",
		Params: []ParamDef{
			{Name: "links", Kind: Int, Default: 2, Doc: "repeater links in the chain"},
			{Name: "link-eps", Kind: Float, Default: 0.06, Doc: "per-link depolarization probability"},
			{Name: "purify-rounds", Kind: Int, Default: 1, Doc: "nested BBPSSW ladder depth per link"},
			{Name: "swap-eps", Kind: Float, Default: 0.0, Doc: "depolarization per entanglement swap"},
			{Name: "trials", Kind: Int, Default: 2000, Doc: "Monte Carlo trials"},
			{Name: "seed", Kind: Uint, Default: 11, Doc: "Monte Carlo seed"},
			{Name: "backend", Kind: Text, Default: commsim.BackendBatch, OneOf: backendNames, Doc: "chain Monte Carlo backend: \"batch\" (64 bit-sliced trials/word) or \"scalar\" (stabilizer-tableau oracle); both are bit-identical at the same seed"},
		},
		Run: func(ctx context.Context, rc *RunContext) (any, error) {
			return commsim.RunChainCtx(ctx, commsim.ChainConfig{
				Links:        rc.Params.Int("links"),
				LinkEps:      rc.Params.Float("link-eps"),
				PurifyRounds: rc.Params.Int("purify-rounds"),
				SwapEps:      rc.Params.Float("swap-eps"),
				Trials:       rc.Params.Int("trials"),
				Seed:         rc.Params.Uint("seed"),
				Backend:      rc.Params.Str("backend"),
				Parallelism:  rc.Parallelism,
			})
		},
		Report: reportRunChain,
	})

	Register(Experiment{
		Name:     "compare-comm",
		Family:   "extensions",
		Parallel: true,
		Aliases:  []string{"comm"},
		Title:    "Communication strategies: naive end-to-end vs repeater chain",
		Doc:      "Contrasts naive end-to-end teleportation with the repeater chain at equal total channel noise on the full protocol circuit (the Section-5 interconnect argument). Honors engine parallelism with bit-identical results at any width; the batch and scalar backends are bit-identical at the same seed.",
		Params: []ParamDef{
			{Name: "link-eps", Kind: Float, Default: 0.05, Doc: "per-link depolarization probability"},
			{Name: "links", Kind: Int, Default: 8, Doc: "repeater links the channel splits into"},
			{Name: "purify-rounds", Kind: Int, Default: 1, Doc: "nested BBPSSW ladder depth per link"},
			{Name: "trials", Kind: Int, Default: 2000, Doc: "Monte Carlo trials per strategy"},
			{Name: "seed", Kind: Uint, Default: 11, Doc: "Monte Carlo seed (the repeater run uses seed+1)"},
			{Name: "backend", Kind: Text, Default: commsim.BackendBatch, OneOf: backendNames, Doc: "chain Monte Carlo backend: \"batch\" (64 bit-sliced trials/word) or \"scalar\" (stabilizer-tableau oracle); both are bit-identical at the same seed"},
		},
		Run: func(ctx context.Context, rc *RunContext) (any, error) {
			return commsim.CompareStrategiesCtx(ctx,
				rc.Params.Float("link-eps"),
				rc.Params.Int("links"),
				rc.Params.Int("purify-rounds"),
				rc.Params.Int("trials"),
				rc.Params.Uint("seed"),
				rc.Parallelism,
				rc.Params.Str("backend"))
		},
		Report: reportCompareComm,
	})

	Register(Experiment{
		Name:        "shuttle",
		Family:      "paper",
		UsesMachine: true,
		Title:       "QCCD substrate: executed transversal gate vs analytic budget",
		Doc:         "Runs full inter-block transversal gates on the discrete-event QCCD simulator at each island separation and compares against the analytic movement budget (Figures 2-4 substrate).",
		Params: []ParamDef{
			{Name: "ions", Kind: Int, Default: 7, Doc: "ions per block (7 for Steane)"},
			{Name: "separations", Kind: Ints, Default: []int{12, 50, 100, 350}, Doc: "channel separations in cells"},
		},
		Bench: true,
		Run: func(ctx context.Context, rc *RunContext) (any, error) {
			var rows []ShuttleRow
			for _, sep := range rc.Params.Ints("separations") {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				rep, err := qccd.InterBlockTransversalGate(rc.Params.Int("ions"), sep, rc.Tech)
				if err != nil {
					return nil, err
				}
				rows = append(rows, ShuttleRow{Separation: sep, Report: rep})
			}
			return rows, nil
		},
		Report: reportShuttle,
	})

	Register(Experiment{
		Name:   "qft",
		Family: "extensions",
		Title:  "QFT: banded circuit vs the paper's EC-step charge",
		Doc:    "Verifies the banded transform against the DFT matrix at small widths, measures the Coppersmith banding error, and compares banded gate counts to the 2N·(log2(2N)+2) model charge.",
		Params: []ParamDef{
			{Name: "charge-widths", Kind: Ints, Default: []int{32, 128, 512, 1024}, Doc: "modulus widths for the gate-count comparison"},
		},
		Bench: true,
		Run: func(ctx context.Context, rc *RunContext) (any, error) {
			var data QFTData
			for n := 2; n <= 6; n++ {
				data.Exact = append(data.Exact, QFTExactRow{N: n, MaxBasisError: qft.Exact(n).MaxBasisError()})
			}
			for band := 3; band <= 7; band++ {
				data.Banding = append(data.Banding, QFTBandRow{Band: band, MaxBasisError: qft.Banded(6, band).MaxBasisError()})
			}
			for _, n := range rc.Params.Ints("charge-widths") {
				if n < 1 {
					return nil, fmt.Errorf("charge width %d must be positive", n)
				}
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				band := qft.PaperBand(n)
				total := int64(qft.Banded(2*n, band).Counts().Total())
				model := shor.QFTSteps(n)
				data.Charge = append(data.Charge, QFTChargeRow{
					N: n, Band: band, Gates: total, Model: model,
					Ratio: float64(total) / float64(model),
				})
			}
			return data, nil
		},
		Report: reportQFT,
	})

	Register(Experiment{
		Name:        "multichip",
		Family:      "extensions",
		UsesMachine: true,
		Title:       "Multi-chip partitioning (Section 6)",
		Doc:         "Partitions N-bit factorization machines across chips bounded by a maximum edge and sizes the photonic links per boundary (paper: 'a multi-chip solution is desirable' beyond N=128).",
		Params: []ParamDef{
			{Name: "n-bits", Kind: Ints, Default: []int{128, 512, 1024, 2048}, Doc: "modulus widths to partition"},
			{Name: "max-edge-cm", Kind: Float, Default: 33.0, Doc: "maximum chip edge in cm"},
			{Name: "max-links", Kind: Int, Default: 0, Doc: "links available per boundary (0 = unlimited)"},
		},
		Bench: true,
		Run: func(ctx context.Context, rc *RunContext) (any, error) {
			link := multichip.DefaultLinkParams()
			var rows []multichip.Partition
			for _, n := range rc.Params.Ints("n-bits") {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				pt, err := multichip.Plan(n, rc.Params.Float("max-edge-cm"), rc.Params.Int("max-links"), link, rc.Tech)
				if err != nil {
					return nil, err
				}
				rows = append(rows, pt)
			}
			return rows, nil
		},
		Report: reportMultichip,
	})

	Register(Experiment{
		Name:        "plan-multichip",
		Family:      "extensions",
		UsesMachine: true,
		Title:       "Multi-chip planning: custom photonic links + yield-aware floorplans",
		Doc: "Extends the Section-6 multichip partitioning with a configurable heralded photonic-link model and defect-yield spare-tile provisioning (internal/layout): " +
			"chips are re-partitioned until the provisioned floorplan (spares included) honors the edge limit.",
		Params: []ParamDef{
			{Name: "n-bits", Kind: Ints, Default: []int{128, 512, 1024, 2048}, Doc: "modulus widths to partition"},
			{Name: "max-edge-cm", Kind: Float, Default: 33.0, Doc: "maximum chip edge in cm"},
			{Name: "max-links", Kind: Int, Default: 0, Doc: "links available per boundary (0 = unlimited)"},
			{Name: "attempt-hz", Kind: Float, Default: 1e6, Doc: "photonic-link entanglement-attempt repetition rate"},
			{Name: "success-prob", Kind: Float, Default: 1e-3, Doc: "heralding probability per attempt"},
			{Name: "raw-fidelity", Kind: Float, Default: 0.92, Doc: "fidelity of a heralded raw pair"},
			{Name: "target-fidelity", Kind: Float, Default: 0.99, Doc: "required post-purification fidelity"},
			{Name: "max-purify-rounds", Kind: Int, Default: 12, Doc: "purification-ladder depth bound"},
			{Name: "cell-defect-prob", Kind: Float, Default: 0.0, Doc: "per-cell fabrication defect probability (0 = perfect fabrication, no spares)"},
			{Name: "yield-target", Kind: Float, Default: 0.99, Doc: "probability each chip fields its required logical qubits"},
		},
		Run: func(ctx context.Context, rc *RunContext) (any, error) {
			link := multichip.LinkParams{
				AttemptHz:       rc.Params.Float("attempt-hz"),
				SuccessProb:     rc.Params.Float("success-prob"),
				RawFidelity:     rc.Params.Float("raw-fidelity"),
				TargetFidelity:  rc.Params.Float("target-fidelity"),
				MaxPurifyRounds: rc.Params.Int("max-purify-rounds"),
			}
			if err := link.Validate(); err != nil {
				return nil, err
			}
			var rows []multichip.YieldPartition
			for _, n := range rc.Params.Ints("n-bits") {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				pt, err := multichip.PlanProvisioned(n, rc.Params.Float("max-edge-cm"), rc.Params.Int("max-links"),
					link, rc.Tech, rc.Params.Float("cell-defect-prob"), rc.Params.Float("yield-target"))
				if err != nil {
					return nil, err
				}
				rows = append(rows, pt)
			}
			return rows, nil
		},
		Report: reportPlanMultichip,
	})

	// ARQ pipeline stages: the circuit front end as registry experiments,
	// so cmd/arq drives the same front door as everything else.

	circuitParam := ParamDef{Name: "circuit", Kind: Text, Default: defaultCircuit, Doc: "circuit in the .qc text format"}

	Register(Experiment{
		Name:        "arq-estimate",
		Family:      "arq",
		UsesMachine: true,
		Title:       "ARQ: architecture-level execution estimate",
		Doc:         "Maps a .qc circuit onto a QLA machine and reports the execution estimate (EC-step depth, communication overlap, failure budget, area).",
		Params: []ParamDef{
			circuitParam,
		},
		Run: func(ctx context.Context, rc *RunContext) (any, error) {
			job, err := parseJob(rc)
			if err != nil {
				return nil, err
			}
			rep, err := job.Estimate()
			if err != nil {
				return nil, err
			}
			return EstimateData{Report: rep, ECStepTime: job.Machine.ECStepTime(), AreaM2: job.Machine.AreaM2()}, nil
		},
		Report: reportEstimate,
	})

	Register(Experiment{
		Name:        "arq-run",
		Family:      "arq",
		UsesMachine: true,
		Title:       "ARQ: exact stabilizer execution",
		Doc:         "Runs a .qc circuit exactly on the stabilizer backend and returns the measurement outcomes in program order.",
		Params: []ParamDef{
			circuitParam,
			{Name: "seed", Kind: Uint, Default: 1, Doc: "measurement randomness seed"},
		},
		Run: func(ctx context.Context, rc *RunContext) (any, error) {
			job, err := parseJob(rc)
			if err != nil {
				return nil, err
			}
			return job.RunExact(rc.Params.Uint("seed")), nil
		},
		Report: reportRunExact,
	})

	Register(Experiment{
		Name:        "arq-noisy",
		Family:      "arq",
		UsesMachine: true,
		Title:       "ARQ: noisy Pauli-frame Monte Carlo",
		Doc:         "Runs a .qc circuit through the Pauli-frame backend under the machine's technology parameters and reports measurement-flip statistics.",
		Params: []ParamDef{
			circuitParam,
			{Name: "trials", Kind: Int, Default: 1000, Doc: "Monte Carlo trials"},
			{Name: "seed", Kind: Uint, Default: 1, Doc: "Monte Carlo seed"},
		},
		Run: func(ctx context.Context, rc *RunContext) (any, error) {
			job, err := parseJob(rc)
			if err != nil {
				return nil, err
			}
			return job.RunNoisy(rc.Tech, rc.Params.Int("trials"), rc.Params.Uint("seed"))
		},
		Report: reportRunNoisy,
	})

	Register(Experiment{
		Name:        "arq-pulses",
		Family:      "arq",
		UsesMachine: true,
		Title:       "ARQ: lowered pulse schedule",
		Doc:         "Lowers a .qc circuit to the timed pulse-schedule text format.",
		Params: []ParamDef{
			circuitParam,
		},
		Run: func(ctx context.Context, rc *RunContext) (any, error) {
			job, err := parseJob(rc)
			if err != nil {
				return nil, err
			}
			var sb strings.Builder
			if err := job.WritePulses(&sb); err != nil {
				return nil, err
			}
			return sb.String(), nil
		},
		Report: reportPulses,
	})

	Register(Experiment{
		Name:        "arq-control",
		Family:      "arq",
		UsesMachine: true,
		Title:       "ARQ: classical control budget (Section 6)",
		Doc:         "Computes laser, photodetector and control-event-rate requirements for a circuit's pulse schedule, with SIMD laser grouping.",
		Params: []ParamDef{
			circuitParam,
			{Name: "event-window", Kind: Float, Default: 0.0, Doc: "peak-rate sliding window in seconds (0 means 10 µs)"},
		},
		Run: func(ctx context.Context, rc *RunContext) (any, error) {
			job, err := parseJob(rc)
			if err != nil {
				return nil, err
			}
			return control.Analyze(job.Lower(), rc.Params.Float("event-window")), nil
		},
		Report: reportControl,
	})
}
