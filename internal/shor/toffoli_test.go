package shor

import (
	"math"
	"testing"
)

func TestToffoliPipelineExtremes(t *testing.T) {
	// Full sharing reproduces the paper's 21 steps per Toffoli.
	s, err := ToffoliPipeline(1000, PaperShareFraction)
	if err != nil {
		t.Fatal(err)
	}
	if s.Steps != s.NoOverlap {
		t.Errorf("full sharing: %d steps, want the no-overlap baseline %d", s.Steps, s.NoOverlap)
	}
	if math.Abs(s.PerGate-21) > 1e-9 {
		t.Errorf("per-gate = %g, want 21", s.PerGate)
	}
	// Zero sharing approaches 6 steps per gate.
	s, err = ToffoliPipeline(1000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.Steps != s.FullHiding {
		t.Errorf("zero sharing: %d steps, want the full-hiding bound %d", s.Steps, s.FullHiding)
	}
	if s.PerGate > 6.1 {
		t.Errorf("per-gate = %g, want ≈6", s.PerGate)
	}
}

func TestToffoliPipelineMonotone(t *testing.T) {
	prev := int64(-1)
	for _, frac := range []float64{0, 0.25, 0.5, 0.75, 1} {
		s, err := ToffoliPipeline(5000, frac)
		if err != nil {
			t.Fatal(err)
		}
		if s.Steps <= prev {
			t.Errorf("steps should grow with sharing: %d at %.2f", s.Steps, frac)
		}
		prev = s.Steps
	}
}

func TestModexpPipelineAblation(t *testing.T) {
	// The ablation: perfect ancilla placement would cut the 128-bit
	// modexp by about 21/6 ≈ 3.5×.
	conservative, err := ModexpWithPipeline(128, PaperShareFraction)
	if err != nil {
		t.Fatal(err)
	}
	ideal, err := ModexpWithPipeline(128, 0)
	if err != nil {
		t.Fatal(err)
	}
	speedup := float64(conservative.Steps) / float64(ideal.Steps)
	if speedup < 3.0 || speedup > 3.6 {
		t.Errorf("ideal-pipeline speedup = %.2f, want ≈3.5", speedup)
	}
	// Consistency with the headline estimate: conservative pipeline
	// matches the 21·T charge used by ECSteps (modulo the QFT term).
	if conservative.Steps != 21*ToffoliDepth(128) {
		t.Errorf("conservative pipeline %d ≠ 21·T %d", conservative.Steps, 21*ToffoliDepth(128))
	}
}

func TestToffoliPipelineValidation(t *testing.T) {
	if _, err := ToffoliPipeline(0, 0.5); err == nil {
		t.Error("zero gates should fail")
	}
	if _, err := ToffoliPipeline(10, 1.5); err == nil {
		t.Error("fraction > 1 should fail")
	}
}
