package shor

import (
	"testing"

	"qla/internal/modarith"
)

// TestModexpDepthFromCircuits rebuilds the paper's modular-
// exponentiation Toffoli count from the measured modular-adder
// circuits instead of the closed form, and checks the two agree on
// order of magnitude. The Van Meter–Itoh accounting is
//
//	depth ≈ IM(n) × MAC(n) × (adder depth)
//
// where the closed form prices an adder call at QCLAToffoliDepth(n) =
// 4·lg n and the circuit-level price is one VBE modular adder at the
// same width, which measures ≈4.8 plain-adder passes (each ≈4·lg n
// with the phase-sequential tree's constant offset).
func TestModexpDepthFromCircuits(t *testing.T) {
	for _, n := range []int{16, 32} {
		modulus := uint64(1)<<uint(n) - 3
		measured := modarith.Measure(n, modulus, modarith.CLA)
		circuitDepth := int64(MultiplierCalls(n)) * int64(AdderCallsPerMultiply(n)) *
			int64(measured.ToffoliDepth)

		model := ToffoliDepth(n)
		ratio := float64(circuitDepth) / float64(model)
		// The circuit-level figure charges the full modular adder
		// (≈4.8 adder passes) where the model charges one QCLA call
		// plus overheads absorbed into ArgSet/retries; the two must
		// agree within an order of magnitude with the circuit figure
		// higher.
		if ratio < 1 || ratio > 12 {
			t.Fatalf("n=%d: circuit-composed depth %d vs model %d (ratio %.1f) outside [1,12]",
				n, circuitDepth, model, ratio)
		}
	}
}

// TestModAddDepthIndependentOfModulus: the modular adder's critical
// path must not depend on the modulus value (only its width), since the
// constant is loaded with X gates that cost no Toffoli depth.
func TestModAddDepthIndependentOfModulus(t *testing.T) {
	a := modarith.Measure(12, 2049, modarith.CLA)
	b := modarith.Measure(12, 4095, modarith.CLA)
	if a.ToffoliDepth != b.ToffoliDepth {
		t.Fatalf("depth depends on modulus: %d vs %d", a.ToffoliDepth, b.ToffoliDepth)
	}
}
