package shor

import (
	"testing"

	"qla/internal/adder"
)

// TestQCLAModelVsMeasuredCircuit ties the closed-form Toffoli-depth
// model the paper uses (4*log2 n per QCLA call) to the explicit DKRS
// circuit in internal/adder. The model and the measured critical path
// must agree up to a small constant factor — the paper's model counts
// DKRS's maximally interleaved schedule, while our construction runs the
// tree phases sequentially — and both must grow logarithmically.
func TestQCLAModelVsMeasuredCircuit(t *testing.T) {
	for _, n := range []int{8, 16, 32, 64} {
		model := QCLAToffoliDepth(n)
		measured := adder.MeasureCLA(n).ToffoliDepth
		ratio := float64(measured) / float64(model)
		if ratio < 1.0 || ratio > 3.0 {
			t.Fatalf("n=%d: measured depth %d vs model %d (ratio %.2f) outside [1,3]",
				n, measured, model, ratio)
		}
	}
	// Logarithmic growth: doubling n adds a bounded number of layers to
	// the measured circuit, mirroring the model's +4.
	d64 := adder.MeasureCLA(64).ToffoliDepth
	d32 := adder.MeasureCLA(32).ToffoliDepth
	if growth := d64 - d32; growth < 1 || growth > 16 {
		t.Fatalf("measured depth growth from n=32 to n=64 is %d; want small constant", growth)
	}
}

// TestRippleWouldDominateTable2 quantifies why the paper rejects the
// ripple adder: at Shor operand widths the ripple critical path is an
// order of magnitude longer than the lookahead's.
func TestRippleWouldDominateTable2(t *testing.T) {
	cmp := adder.Compare(64)
	if cmp.DepthRatio < 3 {
		t.Fatalf("at n=64 ripple/CLA depth ratio = %.1f; expected the lookahead to win by >3x",
			cmp.DepthRatio)
	}
	if cmp.WidthRatio < 1 {
		t.Fatalf("CLA should pay a qubit price; width ratio %.2f < 1", cmp.WidthRatio)
	}
}
