// Package shor implements the workload model of Section 5: resource and
// latency estimation for Shor's factoring algorithm on the QLA, built on
// the quantum carry-lookahead adder (QCLA, Draper et al.) and the Van
// Meter–Itoh latency-optimized modular exponentiation, with the
// fault-tolerant Toffoli cost model (15 + 6 error-correction steps).
//
// The closed forms reproduce Table 2:
//
//	logical qubits  Q(N) = 294·N − 48·⌈log2 N⌉ + 675        (exact)
//	Toffoli depth   T(N) = 2N · (⌈log2 N⌉+2) · 4⌈log2 N⌉    (within ~2%)
//	total gates     G(N) = T(N) + 2N² + 20.4·N·⌈log2 N⌉     (within ~1%)
//	area            A(N) = Q(N) · 7473 cells · (20 µm)²     (exact)
//	time            (21·T(N) + QFT(N)) · T(2,ecc) · 1.3 retries
package shor

import (
	"fmt"
	"math"

	"qla/internal/ft"
	"qla/internal/iontrap"
	"qla/internal/layout"
)

// Repetitions is the expected number of algorithm repetitions: "assuming
// success of all the gates, the circuit is repeated on average 1.3 times".
const Repetitions = 1.3

// Log2Ceil returns ⌈log2 n⌉ for n ≥ 1.
func Log2Ceil(n int) int {
	if n <= 0 {
		panic("shor: log2 of non-positive value")
	}
	l := 0
	for (1 << l) < n {
		l++
	}
	return l
}

// QCLAToffoliDepth is the Toffoli-gate latency of one n-bit quantum
// carry-lookahead addition: "4·log2 n Toffoli gates, 4 CNOTs and 2 NOTs".
func QCLAToffoliDepth(n int) int {
	return 4 * Log2Ceil(n)
}

// QCLACNOTs and QCLANOTs are the adder's non-Toffoli depth terms.
const (
	QCLACNOTs = 4
	QCLANOTs  = 2
)

// MultiplierCalls is IM: the number of calls to the modular multiplier
// (one per bit of the 2N-bit exponent register).
func MultiplierCalls(n int) int { return 2 * n }

// AdderCallsPerMultiply is MAC: adder invocations per modular
// multiplication after the argument-indirection optimization of Van
// Meter–Itoh ("ArgSet refers to the technique of indirection which allows
// us to reduce the number of multiplications"): ⌈log2 N⌉ + 2.
func AdderCallsPerMultiply(n int) int { return Log2Ceil(n) + 2 }

// LogicalQubits is Q(N): the Table-2 logical-qubit count (closed form
// reproducing all four table entries exactly).
func LogicalQubits(n int) int {
	return 294*n - 48*Log2Ceil(n) + 675
}

// ToffoliDepth is T(N): the serial (critical-path) Toffoli count of the
// modular exponentiation, IM × MAC × QCLA depth.
func ToffoliDepth(n int) int64 {
	return int64(MultiplierCalls(n)) * int64(AdderCallsPerMultiply(n)) * int64(QCLAToffoliDepth(n))
}

// TotalGates is G(N): the Table-2 total gate count; the non-Toffoli work
// is dominated by the 2N² CNOTs of the multiplication network plus the
// adders' CNOT/NOT terms (coefficient calibrated to Table 2, see
// DESIGN.md §6).
func TotalGates(n int) int64 {
	nonToffoli := 2*int64(n)*int64(n) + int64(math.Round(20.4*float64(n)*float64(Log2Ceil(n))))
	return ToffoliDepth(n) + nonToffoli
}

// QFTSteps is the error-correction-step cost of the final quantum Fourier
// transform on the 2N-bit register, using a banded (approximate) QFT of
// depth 2N·(log2(2N)+2).
func QFTSteps(n int) int64 {
	return int64(2*n) * int64(Log2Ceil(2*n)+2)
}

// ECSteps is the total number of level-2 error-correction steps on the
// critical path: 21 per Toffoli plus the QFT ("The error correction steps
// of the entire algorithm amount to 21×63730 + QFT = 1.34×10⁶" for N=128).
func ECSteps(n int) int64 {
	return int64(ft.ToffoliECSteps)*ToffoliDepth(n) + QFTSteps(n)
}

// Resources is one row of Table 2 plus derived quantities.
type Resources struct {
	N             int
	LogicalQubits int
	ToffoliDepth  int64
	TotalGates    int64
	QFTSteps      int64
	ECSteps       int64
	AreaM2        float64
	TimeSeconds   float64 // one algorithm run
	TimeDays      float64 // including Repetitions
	TimeHours     float64 // including Repetitions
	SystemSize    float64 // S = K·Q
	ECStepSeconds float64 // the T(2,ecc) used
}

// Estimate computes the full Table-2 row for factoring an N-bit number,
// using the Equation-1 latency model at level-2 recursion over the given
// technology parameters.
func Estimate(n int, p iontrap.Params) (Resources, error) {
	if n < 8 {
		return Resources{}, fmt.Errorf("shor: modulus of %d bits is below the model's range", n)
	}
	ecc := ft.NewLatencyModel(p).ECTime(2)
	q := LogicalQubits(n)
	steps := ECSteps(n)
	oneRun := float64(steps) * ecc
	return Resources{
		N:             n,
		LogicalQubits: q,
		ToffoliDepth:  ToffoliDepth(n),
		TotalGates:    TotalGates(n),
		QFTSteps:      QFTSteps(n),
		ECSteps:       steps,
		AreaM2:        float64(q) * layout.TilePitchAreaM2(),
		TimeSeconds:   oneRun,
		TimeDays:      oneRun * Repetitions / 86400,
		TimeHours:     oneRun * Repetitions / 3600,
		SystemSize:    float64(steps) * float64(q),
		ECStepSeconds: ecc,
	}, nil
}

// Table2Sizes are the moduli evaluated in Table 2.
var Table2Sizes = []int{128, 512, 1024, 2048}

// Table2 computes all four Table-2 rows under the expected parameters.
func Table2() ([]Resources, error) {
	var rows []Resources
	for _, n := range Table2Sizes {
		r, err := Estimate(n, iontrap.Expected())
		if err != nil {
			return nil, err
		}
		rows = append(rows, r)
	}
	return rows, nil
}

// PaperTable2 holds the values printed in the paper, for side-by-side
// comparison in EXPERIMENTS.md and the benchmark harness.
var PaperTable2 = map[int]struct {
	LogicalQubits int
	Toffoli       int64
	TotalGates    int64
	AreaM2        float64
	TimeDays      float64
}{
	128:  {37971, 63729, 115033, 0.11, 0.9},
	512:  {150771, 397910, 1016295, 0.45, 5.5},
	1024: {301251, 964919, 3270582, 0.90, 13.4},
	2048: {602259, 2301767, 11148214, 1.80, 32.1},
}

// ClassicalNFSSeconds estimates the classical number-field-sieve runtime
// for an n-bit modulus in MIPS-years-equivalent seconds, anchored to the
// paper's reference point: a 512-bit factorization took 8400 MIPS-years.
//
//	L(N) = exp((1.923+o(1)) (ln N)^(1/3) (ln ln N)^(2/3))
func ClassicalNFSMIPSYears(nBits int) float64 {
	lnN := float64(nBits) * math.Ln2
	l := func(ln float64) float64 {
		return math.Exp(1.923 * math.Cbrt(ln) * math.Pow(math.Log(ln), 2.0/3.0))
	}
	anchor := 512.0 * math.Ln2
	return 8400 * l(lnN) / l(anchor)
}
