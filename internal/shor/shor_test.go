package shor

import (
	"math"
	"testing"

	"qla/internal/iontrap"
)

func relErr(got, want float64) float64 {
	return math.Abs(got-want) / math.Abs(want)
}

func TestLogicalQubitsExact(t *testing.T) {
	// Q(N) reproduces the Table-2 column exactly.
	for n, p := range PaperTable2 {
		if got := LogicalQubits(n); got != p.LogicalQubits {
			t.Errorf("Q(%d) = %d, Table 2 says %d", n, got, p.LogicalQubits)
		}
	}
}

func TestToffoliDepthWithinTwoPercent(t *testing.T) {
	for n, p := range PaperTable2 {
		got := ToffoliDepth(n)
		if re := relErr(float64(got), float64(p.Toffoli)); re > 0.03 {
			t.Errorf("T(%d) = %d vs paper %d (%.1f%% off)", n, got, p.Toffoli, re*100)
		}
	}
}

func TestTotalGatesWithinTwoPercent(t *testing.T) {
	for n, p := range PaperTable2 {
		got := TotalGates(n)
		if re := relErr(float64(got), float64(p.TotalGates)); re > 0.02 {
			t.Errorf("G(%d) = %d vs paper %d (%.1f%% off)", n, got, p.TotalGates, re*100)
		}
	}
}

func TestAreaMatchesTable2(t *testing.T) {
	rows, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		want := PaperTable2[r.N].AreaM2
		if re := relErr(r.AreaM2, want); re > 0.05 {
			t.Errorf("area(%d) = %.3f m² vs paper %.2f (%.1f%% off)", r.N, r.AreaM2, want, re*100)
		}
	}
}

func TestTimeDaysMatchesTable2(t *testing.T) {
	rows, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		want := PaperTable2[r.N].TimeDays
		if re := relErr(r.TimeDays, want); re > 0.20 {
			t.Errorf("time(%d) = %.2f days vs paper %.1f (%.0f%% off)", r.N, r.TimeDays, want, re*100)
		}
	}
}

func TestSection5Shor128Narrative(t *testing.T) {
	// "For a 128 bit number, modular exponentiation requires 63730
	// Toffoli gates with 21 error correction steps per Toffoli. The error
	// correction steps of the entire algorithm amount to ... 1.34×10⁶.
	// ... approximately 16 hours ... the total time to factor a 128 bit
	// number would be around 21 hours."
	r, err := Estimate(128, iontrap.Expected())
	if err != nil {
		t.Fatal(err)
	}
	if relErr(float64(r.ECSteps), 1.34e6) > 0.05 {
		t.Errorf("EC steps = %.3g, paper says 1.34e6", float64(r.ECSteps))
	}
	hoursOneRun := r.TimeSeconds / 3600
	if hoursOneRun < 13 || hoursOneRun > 20 {
		t.Errorf("single-run time = %.1f h, paper says ≈16 h", hoursOneRun)
	}
	if r.TimeHours < 17 || r.TimeHours > 26 {
		t.Errorf("with retries = %.1f h, paper says ≈21 h", r.TimeHours)
	}
}

func TestSystemSizeMagnitude(t *testing.T) {
	// Section 4.1.2: Shor-1024 needs S ≈ 4.4×10¹² elementary steps.
	r, err := Estimate(1024, iontrap.Expected())
	if err != nil {
		t.Fatal(err)
	}
	if r.SystemSize < 1e12 || r.SystemSize > 2e13 {
		t.Errorf("S(1024) = %.3g, paper says ≈4.4e12", r.SystemSize)
	}
}

func TestQCLAStructure(t *testing.T) {
	if QCLAToffoliDepth(128) != 28 {
		t.Errorf("QCLA depth(128) = %d, want 4·7 = 28", QCLAToffoliDepth(128))
	}
	if QCLAToffoliDepth(1024) != 40 {
		t.Errorf("QCLA depth(1024) = %d, want 40", QCLAToffoliDepth(1024))
	}
	if MultiplierCalls(128) != 256 {
		t.Errorf("IM(128) = %d, want 2N", MultiplierCalls(128))
	}
	if AdderCallsPerMultiply(1024) != 12 {
		t.Errorf("MAC(1024) = %d, want log2(1024)+2 = 12", AdderCallsPerMultiply(1024))
	}
}

func TestLog2Ceil(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 128: 7, 129: 8, 1024: 10}
	for n, want := range cases {
		if got := Log2Ceil(n); got != want {
			t.Errorf("Log2Ceil(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestScalingMonotonic(t *testing.T) {
	prev, err := Estimate(128, iontrap.Expected())
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{256, 512, 1024, 2048} {
		cur, err := Estimate(n, iontrap.Expected())
		if err != nil {
			t.Fatal(err)
		}
		if cur.LogicalQubits <= prev.LogicalQubits || cur.ToffoliDepth <= prev.ToffoliDepth ||
			cur.AreaM2 <= prev.AreaM2 || cur.TimeDays <= prev.TimeDays {
			t.Errorf("resources must grow from N=%d to N=%d", prev.N, n)
		}
		prev = cur
	}
}

func TestEstimateValidation(t *testing.T) {
	if _, err := Estimate(4, iontrap.Expected()); err == nil {
		t.Error("tiny modulus should be rejected")
	}
}

func TestClassicalNFSAnchor(t *testing.T) {
	// The anchor point itself.
	if relErr(ClassicalNFSMIPSYears(512), 8400) > 1e-9 {
		t.Errorf("NFS(512) = %g, want the 8400 MIPS-year anchor", ClassicalNFSMIPSYears(512))
	}
	// Factoring gets super-polynomially harder.
	r1024 := ClassicalNFSMIPSYears(1024) / ClassicalNFSMIPSYears(512)
	if r1024 < 1e3 {
		t.Errorf("NFS(1024)/NFS(512) = %.3g; expected thousands×", r1024)
	}
	// And the quantum machine beats it at scale: compare 1024-bit quantum
	// days vs classical MIPS-years (a year of a 1-MIPS machine).
	q, _ := Estimate(1024, iontrap.Expected())
	if q.TimeDays > 60 {
		t.Errorf("quantum 1024-bit estimate %.1f days; should be weeks, not years", q.TimeDays)
	}
}

func TestQFTStepsSmall(t *testing.T) {
	// The QFT term must stay a small correction next to the Toffoli term.
	for _, n := range Table2Sizes {
		if f := float64(QFTSteps(n)) / float64(ECSteps(n)); f > 0.01 {
			t.Errorf("QFT fraction at N=%d is %.3f; should be ≪ 1", n, f)
		}
	}
}
