package shor

import (
	"fmt"

	"qla/internal/ft"
)

// This file models the fault-tolerant Toffoli pipeline of Section 5: "The
// preparation of the ancilla qubits is an involved process of 15 timesteps
// repeated three times. However each Toffoli gate is performed on an
// independent set of logical qubits; thus the ancilla preparation of each
// successive Toffoli can be overlapped in most cases with the execution of
// the previous Toffoli gates. ... however, in many Toffoli's one of the
// three qubits involved shares its ancilla with a previous Toffoli.
// Therefore each Toffoli will contribute approximately 15 error correction
// steps for the ancilla preparation and 6 error correction cycles to
// finish the gate."

// ToffoliSchedule is the EC-step accounting of a serial Toffoli chain.
type ToffoliSchedule struct {
	Gates      int64
	ShareFrac  float64 // fraction of gates whose ancilla prep serializes
	Steps      int64   // total EC steps on the critical path
	PerGate    float64 // Steps / Gates
	NoOverlap  int64   // baseline: 21 steps per gate, no pipelining
	FullHiding int64   // ideal: prep always hidden, 6 steps per gate
}

// ToffoliPipeline computes the EC-step cost of `gates` serial
// fault-tolerant Toffolis when a fraction shareFrac of them must serialize
// their 15-step ancilla preparation (shared ancilla with the previous
// gate), while the rest hide the preparation behind the previous gate's
// execution.
//
// shareFrac = 1 recovers the paper's conservative 21 steps per Toffoli;
// shareFrac = 0 is the ideal 6-step pipeline (plus one exposed prep).
func ToffoliPipeline(gates int64, shareFrac float64) (ToffoliSchedule, error) {
	if gates <= 0 {
		return ToffoliSchedule{}, fmt.Errorf("shor: need a positive gate count")
	}
	if shareFrac < 0 || shareFrac > 1 {
		return ToffoliSchedule{}, fmt.Errorf("shor: share fraction %g outside [0,1]", shareFrac)
	}
	prep := int64(ft.ToffoliPrepECSteps)
	finish := int64(ft.ToffoliFinishECSteps)
	// First gate always pays its preparation; subsequent gates pay it
	// only when sharing forces serialization.
	exposedPreps := 1 + float64(gates-1)*shareFrac
	steps := int64(exposedPreps*float64(prep)) + gates*finish
	return ToffoliSchedule{
		Gates:      gates,
		ShareFrac:  shareFrac,
		Steps:      steps,
		PerGate:    float64(steps) / float64(gates),
		NoOverlap:  gates * (prep + finish),
		FullHiding: prep + gates*finish,
	}, nil
}

// PaperShareFraction is the sharing rate under which the pipeline model
// reproduces the paper's 21-steps-per-Toffoli charge exactly.
const PaperShareFraction = 1.0

// ModexpWithPipeline re-evaluates the modular-exponentiation EC-step count
// under a given ancilla-sharing fraction — the ablation showing how much
// headroom better ancilla placement would buy (a future-work knob the
// paper's Section 6 alludes to under classical-resource management).
func ModexpWithPipeline(n int, shareFrac float64) (ToffoliSchedule, error) {
	return ToffoliPipeline(ToffoliDepth(n), shareFrac)
}
