package cyclesim

// Engine registration glue: the cycle-* experiments are declared (with
// their parameter schemas and golden Specs) in internal/engine, which
// cannot import this package without a cycle; the Run/Report pairs are
// installed here through engine.RegisterCycleExperiment, mirroring the
// machine-sweep inversion. Any binary that imports this package gets
// working cycle experiments.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"text/tabwriter"

	"qla/internal/engine"
)

// InterconnectData is the payload of cycle-interconnect and
// cycle-trace: both transport modes over one op stream.
type InterconnectData struct {
	GridW     int    `json:"grid_w"`
	GridH     int    `json:"grid_h"`
	Ops       int    `json:"ops"`
	Window    int    `json:"window"`
	Bandwidth int    `json:"bandwidth"`
	Kernel    string `json:"kernel"`
	Routing   string `json:"routing"`

	Lat Latencies `json:"latencies"`

	Teleport  Metrics `json:"teleport"`
	Ballistic Metrics `json:"ballistic"`

	// TeleportAdvantage is the ballistic makespan over the teleport
	// makespan: above 1, the teleportation interconnect sustains
	// higher effective logical-op bandwidth on this workload.
	TeleportAdvantage float64 `json:"teleport_advantage"`
}

// HierarchyData is the payload of cycle-hierarchy.
type HierarchyData struct {
	Levels    int     `json:"levels"`
	Accesses  int     `json:"accesses"`
	MissRatio float64 `json:"miss_ratio"`
	Window    int     `json:"window"`
	Bandwidth int     `json:"bandwidth"`
	Routing   string  `json:"routing"`

	Lat    Latencies       `json:"latencies"`
	Result HierarchyResult `json:"result"`
}

// fabricFromContext resolves the shared fabric parameters: bandwidth
// and tile pitch from Spec.Machine, cycle latencies from the machine's
// Table-1 parameter set plus the override params.
func fabricFromContext(rc *engine.RunContext) (bandwidth int, routing string, lat Latencies, err error) {
	bandwidth = rc.Machine.Bandwidth
	if bandwidth == 0 {
		bandwidth = 2
	}
	if bandwidth < 1 {
		return 0, "", Latencies{}, fmt.Errorf("machine bandwidth %d must be positive", bandwidth)
	}
	routing = rc.Params.Str("routing")
	lat, err = DeriveLatencies(rc.Tech, DeriveOptions{
		Level:        rc.Machine.Level,
		TileCells:    rc.Params.Int("tile-cells"),
		EPRCycles:    rc.Params.Int("epr-cycles"),
		PurifyCycles: rc.Params.Int("purify-cycles"),
		EPRPairs:     rc.Params.Int("epr-pairs"),
		CoolCells:    rc.Params.Int("cool-cells"),
	})
	return bandwidth, routing, lat, err
}

// runBothModes executes one op stream in both transport modes,
// concurrently when par permits. Each mode holds independent state, so
// the results are bit-identical at any parallelism.
func runBothModes(cfg Config, ops []Op, par int) (tele Metrics, teleLat []int64, ball Metrics, ballLat []int64, err error) {
	var teleErr, ballErr error
	if par >= 2 {
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			tele, teleLat, teleErr = Run(cfg, Teleport, ops)
		}()
		ball, ballLat, ballErr = Run(cfg, Ballistic, ops)
		wg.Wait()
	} else {
		tele, teleLat, teleErr = Run(cfg, Teleport, ops)
		ball, ballLat, ballErr = Run(cfg, Ballistic, ops)
	}
	if teleErr != nil {
		return tele, teleLat, ball, ballLat, teleErr
	}
	return tele, teleLat, ball, ballLat, ballErr
}

func interconnectData(cfg Config, kernel string, ops []Op, par int) (InterconnectData, error) {
	tele, _, ball, _, err := runBothModes(cfg, ops, par)
	if err != nil {
		return InterconnectData{}, err
	}
	data := InterconnectData{
		GridW:     cfg.W,
		GridH:     cfg.H,
		Ops:       len(ops),
		Window:    cfg.Window,
		Bandwidth: cfg.Bandwidth,
		Kernel:    kernel,
		Routing:   cfg.Routing,
		Lat:       cfg.Lat,
		Teleport:  tele,
		Ballistic: ball,
	}
	if tele.MakespanCycles > 0 {
		data.TeleportAdvantage = float64(ball.MakespanCycles) / float64(tele.MakespanCycles)
	}
	return data, nil
}

func runInterconnect(ctx context.Context, rc *engine.RunContext) (any, error) {
	grid := rc.Params.Int("grid")
	if grid < 2 || grid > 64 {
		return nil, fmt.Errorf("grid %d out of range [2,64]", grid)
	}
	nOps := rc.Params.Int("ops")
	if nOps < 1 || nOps > 1<<20 {
		return nil, fmt.Errorf("ops %d out of range [1,%d]", nOps, 1<<20)
	}
	window := rc.Params.Int("window")
	if window < 1 || window > 1<<16 {
		return nil, fmt.Errorf("window %d out of range [1,%d]", window, 1<<16)
	}
	bandwidth, routing, lat, err := fabricFromContext(rc)
	if err != nil {
		return nil, err
	}
	kernel := rc.Params.Str("kernel")
	ops, err := MakeKernel(kernel, grid, grid, nOps, rc.Params.Uint("seed"))
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	cfg := Config{W: grid, H: grid, Bandwidth: bandwidth, Window: window, Routing: routing, Lat: lat}
	return interconnectData(cfg, kernel, ops, rc.Parallelism)
}

func runTrace(ctx context.Context, rc *engine.RunContext) (any, error) {
	grid := rc.Params.Int("grid")
	if grid < 2 || grid > 64 {
		return nil, fmt.Errorf("grid %d out of range [2,64]", grid)
	}
	window := rc.Params.Int("window")
	if window < 1 || window > 1<<16 {
		return nil, fmt.Errorf("window %d out of range [1,%d]", window, 1<<16)
	}
	bandwidth, routing, lat, err := fabricFromContext(rc)
	if err != nil {
		return nil, err
	}
	ops, err := ParseTrace(rc.Params.Str("trace"), grid*grid)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	cfg := Config{W: grid, H: grid, Bandwidth: bandwidth, Window: window, Routing: routing, Lat: lat}
	return interconnectData(cfg, "trace", ops, rc.Parallelism)
}

func runHierarchy(ctx context.Context, rc *engine.RunContext) (any, error) {
	levels := rc.Params.Int("levels")
	accesses := rc.Params.Int("accesses")
	if accesses < 1 || accesses > 1<<20 {
		return nil, fmt.Errorf("accesses %d out of range [1,%d]", accesses, 1<<20)
	}
	window := rc.Params.Int("window")
	if window < 1 || window > 1<<16 {
		return nil, fmt.Errorf("window %d out of range [1,%d]", window, 1<<16)
	}
	bandwidth, routing, lat, err := fabricFromContext(rc)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	cfg := HierarchyConfig{
		Levels:    levels,
		Accesses:  accesses,
		MissRatio: rc.Params.Float("miss-ratio"),
		Window:    window,
		Bandwidth: bandwidth,
		Routing:   routing,
		Lat:       lat,
		Seed:      rc.Params.Uint("seed"),
	}
	res, err := RunHierarchy(cfg, rc.Parallelism)
	if err != nil {
		return nil, err
	}
	return HierarchyData{
		Levels:    levels,
		Accesses:  accesses,
		MissRatio: cfg.MissRatio,
		Window:    window,
		Bandwidth: bandwidth,
		Routing:   routing,
		Lat:       lat,
		Result:    res,
	}, nil
}

func reportModeTable(w io.Writer, rows ...Metrics) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "mode\tmakespan\tops/kcycle\tmean lat\tmax lat\tlane wait\tqubit wait\tgen wait\tlink util\tcorners")
	for _, m := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%.3f\t%.0f\t%d\t%d\t%d\t%d\t%.3f\t%d\n",
			m.Mode, m.MakespanCycles, m.OpsPerKilocycle, m.MeanLatencyCycles, m.MaxLatencyCycles,
			m.LaneWaitCycles, m.QubitWaitCycles, m.GenWaitCycles, m.LinkUtilization, m.Corners)
	}
	tw.Flush()
}

// jsonReport renders a Result whose Data is no longer typed (decoded
// from a cached JSON result), mirroring engine's fallback.
func jsonReport(w io.Writer, res engine.Result) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(res)
}

func reportInterconnect(w io.Writer, res engine.Result) error {
	data, ok := res.Data.(InterconnectData)
	if !ok {
		return jsonReport(w, res)
	}
	fmt.Fprintf(w, "Cycle-level interconnect: %dx%d tiles, %d %s ops, window %d, bandwidth %d, %s routing\n",
		data.GridW, data.GridH, data.Ops, data.Kernel, data.Window, data.Bandwidth, data.Routing)
	fmt.Fprintf(w, "1 cycle = 1 cell move; hop %d cycles, EPR interval %d cycles, %d halves/teleport\n",
		data.Lat.HopCycles, data.Lat.EPRCycles, data.Lat.EPRFlits)
	reportModeTable(w, data.Teleport, data.Ballistic)
	verdict := "ballistic shuttling wins on this workload"
	if data.TeleportAdvantage > 1 {
		verdict = "the teleportation interconnect sustains more bandwidth"
	}
	fmt.Fprintf(w, "teleport/ballistic effective-bandwidth ratio: %.2fx (%s)\n", data.TeleportAdvantage, verdict)
	return nil
}

func reportHierarchy(w io.Writer, res engine.Result) error {
	data, ok := res.Data.(HierarchyData)
	if !ok {
		return jsonReport(w, res)
	}
	fmt.Fprintf(w, "Cycle-level memory hierarchy: %d levels on a %d-tile line, %d accesses (miss ratio %.2f), window %d, bandwidth %d\n",
		data.Levels, data.Result.GridW, data.Accesses, data.MissRatio, data.Window, data.Bandwidth)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "level\thops\taccesses\tteleport mean\tballistic mean")
	for _, l := range data.Result.Levels {
		fmt.Fprintf(tw, "L%d\t%d\t%d\t%.0f\t%.0f\n",
			l.Level, l.HopsAway, l.Accesses, l.TeleportMeanCycles, l.BallisticMeanCycles)
	}
	tw.Flush()
	reportModeTable(w, data.Result.Teleport, data.Result.Ballistic)
	fmt.Fprintf(w, "AMAT: teleport %.0f cycles, ballistic %.0f cycles\n",
		data.Result.Teleport.MeanLatencyCycles, data.Result.Ballistic.MeanLatencyCycles)
	return nil
}

func init() {
	engine.RegisterCycleExperiment(engine.CycleInterconnect, runInterconnect, reportInterconnect)
	engine.RegisterCycleExperiment(engine.CycleHierarchy, runHierarchy, reportHierarchy)
	engine.RegisterCycleExperiment(engine.CycleTrace, runTrace, reportInterconnect)
}
