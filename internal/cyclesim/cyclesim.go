// Package cyclesim is a deterministic discrete-event, cycle-level
// simulator of logical data movement on the QLA tile grid — the model
// behind the paper's central claim (Sections 4–5) that a
// teleportation-based interconnect with dedicated EPR-generator ports
// sustains logical-operation bandwidth where ballistic ion shuttling
// does not.
//
// The machine is a W×H grid of logical-qubit tiles joined by channel
// links with a fixed number of lanes per direction (the machine
// bandwidth of Section 5). One cycle is one ballistic cell move
// (Table 1's shortest operation, 0.01 µs under the expected
// parameters); every other latency is expressed in those cycles. A
// two-operand logical operation between tiles A and B executes in one
// of two transport modes:
//
//   - Ballistic: the logical codeword's ions split out of tile A,
//     shuttle hop by hop through the channel mesh (reserving a lane on
//     every link they cross, paying junction-turn penalties at
//     corners, and stalling for sympathetic recooling as motional
//     heating accumulates), interact transversally at B, and shuttle
//     home. The data qubit is locked for the whole round trip.
//   - Teleport: tile A's EPR-generator port emits purified pair halves
//     at its finite generation rate; the halves stream one-way through
//     the mesh to B, are purified there, and the logical gate is then
//     teleported. The data qubits are busy only for the transversal
//     interaction and Pauli correction — Bell measurement and
//     classical signalling overlap with other work, and the stream
//     never returns.
//
// Both modes run on the same contention fabric: per-link lane
// reservations with queueing, dimension-ordered or adaptive minimal
// routing, and a sliding-window logical-op scheduler that replays an
// operation stream (synthetic kernels now; parsed traces through the
// same seam). The simulator is exactly deterministic: identical specs
// produce bit-identical results at any engine parallelism.
package cyclesim

import (
	"fmt"
	"math"

	"qla/internal/iontrap"
	"qla/internal/layout"
)

// Mode selects the transport mechanism for logical operands.
type Mode int

const (
	// Teleport moves quantum state over pre-distributed EPR pairs.
	Teleport Mode = iota
	// Ballistic shuttles the codeword ions through the channel mesh.
	Ballistic
)

// String returns the spec-level mode name.
func (m Mode) String() string {
	switch m {
	case Teleport:
		return "teleport"
	case Ballistic:
		return "ballistic"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Routing policies.
const (
	// RoutingDimension routes X-first then Y (at most one corner).
	RoutingDimension = "dimension"
	// RoutingAdaptive picks, at each junction, the productive direction
	// whose next lane frees earliest (ties prefer X), trading extra
	// corner turns for queueing time.
	RoutingAdaptive = "adaptive"
)

// CodewordIons is the number of physical data ions per logical qubit
// at one level of the [[7,1,3]] Steane code — the convoy length of a
// ballistic logical move and the halves-per-pair multiplier of a
// logical teleport.
const CodewordIons = 7

// DefaultCoolCells is the default ballistic recooling interval: after
// this many cells of shuttling, the convoy pauses for one sympathetic
// recooling step (the heating budget of Section 3).
const DefaultCoolCells = 50

// Latencies fixes every model latency in cycles (1 cycle = one
// ballistic cell move). Derive them from a Table-1 parameter set with
// DeriveLatencies.
type Latencies struct {
	// HopCycles is the channel transit time between adjacent tile
	// centres (one tile pitch of cell moves).
	HopCycles int64
	// SplitCycles is charged when a convoy leaves or re-enters a trap
	// region (ballistic only; EPR halves leave through dedicated
	// generator ports).
	SplitCycles int64
	// CornerCycles is the junction-turn penalty, charged to latency
	// and to the occupancy of the link entered after the turn.
	CornerCycles int64
	// GateCycles is the transversal two-qubit interaction.
	GateCycles int64
	// BellCycles is the Bell measurement of a teleport (two-qubit gate
	// plus readout on the ancilla half — the data qubit is free).
	BellCycles int64
	// ClassicalCycles is the classical latency of teleport corrections.
	ClassicalCycles int64
	// CorrectionCycles is the conditional Pauli fix-up on data.
	CorrectionCycles int64
	// CoolCycles is the total recooling stall per hop of ballistic
	// data movement (stops per hop × one cooling step).
	CoolCycles int64
	// EPRCycles is the generator-port interval between purified pair
	// halves (the finite EPR generation rate).
	EPRCycles int64
	// PurifyCycles is the residual purification latency at the
	// destination port after the stream lands.
	PurifyCycles int64
	// ConvoyFlits is the ballistic convoy length in ions.
	ConvoyFlits int
	// EPRFlits is the number of pair halves shipped per logical
	// teleport (codeword ions × purified pairs per qubit).
	EPRFlits int
}

// StreamCycles is the serialization length of one teleport EPR stream
// at the generator port.
func (l Latencies) StreamCycles() int64 { return int64(l.EPRFlits) * l.EPRCycles }

// TeleportLockCycles is how long a teleport occupies the data qubits.
func (l Latencies) TeleportLockCycles() int64 { return l.GateCycles + l.CorrectionCycles }

// DeriveOptions overrides individual derived latencies; zero fields
// keep the Table-1 derivation.
type DeriveOptions struct {
	// Level is the recursion level whose tile pitch sets the hop
	// distance (0 means the paper's operating level 2).
	Level int
	// TileCells overrides the inter-tile hop distance in cells
	// (default: the Level tile pitch derived from internal/layout).
	TileCells int
	// EPRCycles overrides the generator interval (default: the
	// pipelined PairInterval of the Figure-9 link model, 0.1 µs).
	EPRCycles int
	// PurifyCycles overrides the destination purification latency
	// (default: two purification rounds of gate+measure+classical).
	PurifyCycles int
	// EPRPairs is the purified halves shipped per codeword ion
	// (default 2: one pair plus one purification sacrifice).
	EPRPairs int
	// CoolCells is the ballistic recooling interval in cells; 0 keeps
	// DefaultCoolCells, negative disables recooling stalls.
	CoolCells int
}

// HopCellsForLevel returns the mean inter-tile pitch in cells at one
// recursion level. Level 2 is the layout package's tile; each level
// scales the tile by 3 in x̂ and 7 in ŷ (a level-L logical qubit is a
// 3×7 arrangement of level-(L-1) tiles), with channel widths fixed.
func HopCellsForLevel(level int) int {
	if level < 1 {
		level = 2
	}
	w, h := float64(layout.TileW), float64(layout.TileH)
	for l := 2; l < level; l++ {
		w, h = w*3, h*7
	}
	for l := 2; l > level; l-- {
		w, h = w/3, h/7
	}
	hop := int(math.Round(((w + layout.ChanW) + (h + layout.ChanH)) / 2))
	if hop < 1 {
		hop = 1
	}
	return hop
}

// DeriveLatencies converts a Table-1 parameter set into cycle counts.
// The cycle is p.Time[OpMoveCell]; everything else rounds to it.
func DeriveLatencies(p iontrap.Params, opt DeriveOptions) (Latencies, error) {
	cycle := p.Time[iontrap.OpMoveCell]
	if !(cycle > 0) {
		return Latencies{}, fmt.Errorf("cyclesim: parameter set has non-positive cell-move time %g", cycle)
	}
	r := func(seconds float64) int64 {
		return int64(math.Round(seconds / cycle))
	}

	hopCells := opt.TileCells
	if hopCells == 0 {
		hopCells = HopCellsForLevel(opt.Level)
	}
	if hopCells < 1 {
		return Latencies{}, fmt.Errorf("cyclesim: tile-cells %d must be positive", hopCells)
	}

	eprCycles := int64(opt.EPRCycles)
	if eprCycles == 0 {
		// The pipelined EPR factory of the Figure-9 link model delivers
		// a raw half every 0.1 µs.
		eprCycles = r(0.1e-6)
		if eprCycles < 1 {
			eprCycles = 1
		}
	}
	if eprCycles < 1 {
		return Latencies{}, fmt.Errorf("cyclesim: epr-cycles %d must be positive", eprCycles)
	}

	classical := r(1e-6) // per-round classical control latency
	purify := int64(opt.PurifyCycles)
	if purify == 0 {
		// Two BBPSSW rounds at the destination port: each is a
		// two-qubit gate, a measurement, and a classical exchange.
		purify = 2 * (r(p.Time[iontrap.OpDouble]) + r(p.Time[iontrap.OpMeasure]) + classical)
	}
	if purify < 0 {
		return Latencies{}, fmt.Errorf("cyclesim: purify-cycles %d must be non-negative", purify)
	}

	pairs := opt.EPRPairs
	if pairs == 0 {
		pairs = 2
	}
	if pairs < 1 {
		return Latencies{}, fmt.Errorf("cyclesim: epr-pairs %d must be positive", pairs)
	}

	coolCells := opt.CoolCells
	if coolCells == 0 {
		coolCells = DefaultCoolCells
	}
	var cool int64
	if coolCells > 0 {
		stops := int64(hopCells / coolCells)
		cool = stops * r(p.Time[iontrap.OpCool])
	}

	return Latencies{
		HopCycles:        int64(hopCells),
		SplitCycles:      r(p.Time[iontrap.OpSplit]),
		CornerCycles:     r(p.Time[iontrap.OpCorner]),
		GateCycles:       r(p.Time[iontrap.OpDouble]),
		BellCycles:       r(p.Time[iontrap.OpDouble]) + r(p.Time[iontrap.OpMeasure]),
		ClassicalCycles:  classical,
		CorrectionCycles: r(p.Time[iontrap.OpSingle]),
		CoolCycles:       cool,
		EPRCycles:        eprCycles,
		PurifyCycles:     purify,
		ConvoyFlits:      CodewordIons,
		EPRFlits:         CodewordIons * pairs,
	}, nil
}

// Config describes one cycle-level simulation.
type Config struct {
	// W, H are the tile-grid dimensions.
	W, H int
	// Bandwidth is the number of lanes per direction per link.
	Bandwidth int
	// Window is the number of logical ops concurrently in flight.
	Window int
	// Routing is RoutingDimension or RoutingAdaptive.
	Routing string
	// Lat fixes the model latencies.
	Lat Latencies
}

func (c Config) validate() error {
	if c.W < 1 || c.H < 1 {
		return fmt.Errorf("cyclesim: grid %dx%d must be positive", c.W, c.H)
	}
	if c.W*c.H < 2 {
		return fmt.Errorf("cyclesim: grid %dx%d has no tile pair to operate on", c.W, c.H)
	}
	if c.Bandwidth < 1 {
		return fmt.Errorf("cyclesim: bandwidth %d must be positive", c.Bandwidth)
	}
	if c.Window < 1 {
		return fmt.Errorf("cyclesim: window %d must be positive", c.Window)
	}
	if c.Routing != RoutingDimension && c.Routing != RoutingAdaptive {
		return fmt.Errorf("cyclesim: unknown routing %q (want %s or %s)", c.Routing, RoutingDimension, RoutingAdaptive)
	}
	if c.Lat.HopCycles < 1 || c.Lat.ConvoyFlits < 1 || c.Lat.EPRFlits < 1 || c.Lat.EPRCycles < 1 {
		return fmt.Errorf("cyclesim: latencies not derived (use DeriveLatencies)")
	}
	return nil
}
