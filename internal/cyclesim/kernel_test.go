package cyclesim

import (
	"reflect"
	"strings"
	"testing"
)

func TestMakeKernelShapes(t *testing.T) {
	for _, kernel := range KernelNames {
		ops, err := MakeKernel(kernel, 4, 4, 64, 7)
		if err != nil {
			t.Fatalf("%s: %v", kernel, err)
		}
		if len(ops) != 64 {
			t.Fatalf("%s: generated %d ops, want 64", kernel, len(ops))
		}
		for i, op := range ops {
			if op.Src < 0 || op.Src >= 16 || op.Dst < 0 || op.Dst >= 16 || op.Src == op.Dst {
				t.Fatalf("%s: op %d invalid: %+v", kernel, i, op)
			}
		}
	}
	if _, err := MakeKernel("nope", 4, 4, 8, 7); err == nil {
		t.Error("unknown kernel accepted")
	}
	if _, err := MakeKernel(KernelRandom, 1, 1, 8, 7); err == nil {
		t.Error("single-tile grid accepted")
	}
	if _, err := MakeKernel(KernelRandom, 4, 4, 0, 7); err == nil {
		t.Error("empty kernel accepted")
	}
}

func TestMakeKernelDeterministic(t *testing.T) {
	a, err := MakeKernel(KernelRandom, 8, 8, 128, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MakeKernel(KernelRandom, 8, 8, 128, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("same seed produced different kernels")
	}
	c, err := MakeKernel(KernelRandom, 8, 8, 128, 8)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Error("different seeds produced identical kernels")
	}
}

func TestKernelNeighborLocality(t *testing.T) {
	ops, err := MakeKernel(KernelNeighbor, 6, 6, 256, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i, op := range ops {
		sx, sy := op.Src%6, op.Src/6
		dx, dy := op.Dst%6, op.Dst/6
		if d := absInt(sx-dx) + absInt(sy-dy); d != 1 {
			t.Fatalf("neighbor op %d spans %d hops: %+v", i, d, op)
		}
	}
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func TestParseTrace(t *testing.T) {
	ops, err := ParseTrace("# toffoli slice\ncx 0 5\n\ncx 3 6\n", 16)
	if err != nil {
		t.Fatal(err)
	}
	want := []Op{{0, 5}, {3, 6}}
	if !reflect.DeepEqual(ops, want) {
		t.Errorf("parsed %+v, want %+v", ops, want)
	}

	for name, trace := range map[string]string{
		"empty":        "",
		"comment only": "# nothing\n",
		"bad verb":     "cz 0 1\n",
		"missing arg":  "cx 0\n",
		"non-numeric":  "cx a b\n",
		"out of grid":  "cx 0 16\n",
		"negative":     "cx -1 2\n",
		"self op":      "cx 3 3\n",
	} {
		if _, err := ParseTrace(trace, 16); err == nil {
			t.Errorf("%s: trace accepted", name)
		}
	}
}

func TestParseTraceMatchesDefaultSpec(t *testing.T) {
	// The cycle-trace experiment's default trace must stay parseable
	// on its default 4x4 grid.
	def := "cx 0 5\ncx 3 6\ncx 12 9\ncx 15 10"
	ops, err := ParseTrace(def, 16)
	if err != nil {
		t.Fatalf("default cycle-trace trace no longer parses: %v", err)
	}
	if len(ops) != strings.Count(def, "cx") {
		t.Errorf("parsed %d ops from default trace", len(ops))
	}
}
