package cyclesim

import (
	"bufio"
	"fmt"
	"math/rand/v2"
	"strconv"
	"strings"

	"qla/internal/tilegrid"
)

// Kernel names accepted by MakeKernel.
const (
	// KernelRandom draws uniformly random distinct tile pairs — the
	// bisection-stressing traffic of the bandwidth figures.
	KernelRandom = "random"
	// KernelNeighbor pairs each tile with a random 4-neighbour —
	// nearest-neighbour circuits that favour ballistic movement.
	KernelNeighbor = "neighbor"
	// KernelTransversal sweeps every tile against its +X neighbour in
	// order — the lock-step transversal pattern of error correction.
	KernelTransversal = "transversal"
	// KernelBitrev pairs tile i with the bit-reversal of i — the
	// long-haul permutation traffic of QFT-style kernels.
	KernelBitrev = "bitrev"
)

// KernelNames lists the synthetic kernels in spec order.
var KernelNames = []string{KernelRandom, KernelNeighbor, KernelTransversal, KernelBitrev}

// MakeKernel generates n logical ops of the named synthetic kernel on
// a W×H grid. Generation is deterministic in (kernel, w, h, n, seed).
func MakeKernel(kernel string, w, h, n int, seed uint64) ([]Op, error) {
	rect := tilegrid.Rect{W: w, H: h}
	tiles := rect.Tiles()
	if tiles < 2 {
		return nil, fmt.Errorf("cyclesim: kernel needs at least two tiles, have %dx%d", w, h)
	}
	if n < 1 {
		return nil, fmt.Errorf("cyclesim: kernel length %d must be positive", n)
	}
	rng := rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
	ops := make([]Op, 0, n)
	switch kernel {
	case KernelRandom:
		for len(ops) < n {
			a, b := rng.IntN(tiles), rng.IntN(tiles)
			if a == b {
				continue
			}
			ops = append(ops, Op{Src: a, Dst: b})
		}
	case KernelNeighbor:
		var buf []tilegrid.Coord
		for len(ops) < n {
			a := rng.IntN(tiles)
			buf = rect.Neighbors(rect.Coord(a), buf[:0])
			b := buf[rng.IntN(len(buf))]
			ops = append(ops, Op{Src: a, Dst: rect.Index(b)})
		}
	case KernelTransversal:
		for len(ops) < n {
			for i := 0; i < tiles && len(ops) < n; i++ {
				c := rect.Coord(i)
				if c.X+1 < w {
					ops = append(ops, Op{Src: i, Dst: rect.Index(tilegrid.Coord{X: c.X + 1, Y: c.Y})})
				}
			}
		}
	case KernelBitrev:
		bits := 0
		for 1<<(bits+1) <= tiles {
			bits++
		}
		span := 1 << bits
		for len(ops) < n {
			for i := 0; i < span && len(ops) < n; i++ {
				j := reverseBits(i, bits)
				if i != j {
					ops = append(ops, Op{Src: i, Dst: j})
				}
			}
		}
	default:
		return nil, fmt.Errorf("cyclesim: unknown kernel %q", kernel)
	}
	return ops, nil
}

func reverseBits(v, bits int) int {
	out := 0
	for i := 0; i < bits; i++ {
		out = out<<1 | (v>>i)&1
	}
	return out
}

// ParseTrace reads a logical-operation trace: one op per line in the
// form "cx SRC DST" (tile indices), with blank lines and '#' comments
// ignored. This is the circuit-trace seam — netsim's workload
// generators and external compilers emit the same shape.
func ParseTrace(trace string, tiles int) ([]Op, error) {
	var ops []Op
	sc := bufio.NewScanner(strings.NewReader(trace))
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 3 || fields[0] != "cx" {
			return nil, fmt.Errorf("cyclesim: trace line %d: want \"cx SRC DST\", got %q", line, text)
		}
		src, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("cyclesim: trace line %d: bad source %q", line, fields[1])
		}
		dst, err := strconv.Atoi(fields[2])
		if err != nil {
			return nil, fmt.Errorf("cyclesim: trace line %d: bad destination %q", line, fields[2])
		}
		if src < 0 || src >= tiles || dst < 0 || dst >= tiles {
			return nil, fmt.Errorf("cyclesim: trace line %d: tile outside grid of %d", line, tiles)
		}
		if src == dst {
			return nil, fmt.Errorf("cyclesim: trace line %d: self-operation on tile %d", line, src)
		}
		ops = append(ops, Op{Src: src, Dst: dst})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("cyclesim: reading trace: %w", err)
	}
	if len(ops) == 0 {
		return nil, fmt.Errorf("cyclesim: trace holds no operations")
	}
	return ops, nil
}
