package cyclesim

import (
	"qla/internal/tilegrid"
)

// fabric is the contention state of the channel mesh: every directed
// nearest-neighbour link carries Bandwidth lanes, each lane a single
// reservation horizon (freeAt). A transfer entering a link reserves
// the earliest-free lane from max(now, freeAt) for its occupancy; the
// difference between the reserved start and the requested time is
// queueing delay.
type fabric struct {
	rect    tilegrid.Rect
	lanes   int
	transit int64 // head transit time per link (Latencies.HopCycles)
	// freeAt is indexed [link*lanes + lane]; link = tile*4 + dir with
	// dir an index into tilegrid.Dirs4 on the link's source tile.
	freeAt []int64

	laneCycles int64 // total reserved occupancy
	laneWaits  int64 // total queueing delay
	reserves   int64 // reservation events
}

func newFabric(rect tilegrid.Rect, lanes int, transit int64) *fabric {
	return &fabric{
		rect:    rect,
		lanes:   lanes,
		transit: transit,
		freeAt:  make([]int64, rect.Tiles()*4*lanes),
	}
}

func (f *fabric) linkIndex(from tilegrid.Coord, dir int) int {
	return (f.rect.Index(from)*4 + dir) * f.lanes
}

// earliest returns the soonest lane release time on (from, dir).
func (f *fabric) earliest(from tilegrid.Coord, dir int) int64 {
	base := f.linkIndex(from, dir)
	best := f.freeAt[base]
	for i := 1; i < f.lanes; i++ {
		if t := f.freeAt[base+i]; t < best {
			best = t
		}
	}
	return best
}

// reserve claims the earliest-free lane on (from, dir) starting no
// sooner than t, holding it for occ cycles. It returns the reserved
// start time.
func (f *fabric) reserve(from tilegrid.Coord, dir int, t, occ int64) int64 {
	base := f.linkIndex(from, dir)
	lane := 0
	for i := 1; i < f.lanes; i++ {
		if f.freeAt[base+i] < f.freeAt[base+lane] {
			lane = i
		}
	}
	start := t
	if f.freeAt[base+lane] > start {
		start = f.freeAt[base+lane]
	}
	f.freeAt[base+lane] = start + occ
	f.laneCycles += occ
	f.laneWaits += start - t
	f.reserves++
	return start
}

// step is one hop decision: the direction taken and whether it turned
// a corner relative to the previous hop.
type step struct {
	dir    int
	corner bool
}

// route walks a minimal path from src to dst, reserving a lane on each
// link as it goes. headOcc is the occupancy charged per link beyond
// the corner penalty (transit + payload tail + per-hop stalls);
// hopStall is extra per-hop latency spent inside the channel (e.g.
// recooling stops). It returns the arrival time of the transfer head
// at dst and the number of corners turned.
func (f *fabric) route(src, dst tilegrid.Coord, t, headOcc, cornerOcc, hopStall int64, adaptive bool) (arrival int64, corners int64) {
	at := src
	prevDir := -1
	for at != dst {
		d := f.pickDir(at, dst, prevDir, t, adaptive)
		corner := prevDir >= 0 && d != prevDir
		occ := headOcc
		stall := hopStall
		if corner {
			occ += cornerOcc
			stall += cornerOcc
			corners++
		}
		start := f.reserve(at, d, t, occ)
		// The head leaves the link after the stalls plus transit; the
		// tail drains behind it within the reserved occupancy.
		t = start + stall + f.transit
		at = at.Add(tilegrid.Dirs4[d])
		prevDir = d
	}
	return t, corners
}

// pickDir chooses the next hop direction toward dst.
func (f *fabric) pickDir(at, dst tilegrid.Coord, prevDir int, t int64, adaptive bool) int {
	dx, dy := dst.X-at.X, dst.Y-at.Y
	xDir, yDir := -1, -1
	if dx > 0 {
		xDir = 0 // +X
	} else if dx < 0 {
		xDir = 1 // -X
	}
	if dy > 0 {
		yDir = 2 // +Y
	} else if dy < 0 {
		yDir = 3 // -Y
	}
	switch {
	case xDir < 0:
		return yDir
	case yDir < 0:
		return xDir
	case !adaptive:
		// Dimension order: finish X first.
		return xDir
	}
	// Adaptive: take the productive direction whose lane frees
	// earliest; prefer staying in the current direction on ties (fewer
	// corners), then X.
	ex, ey := f.earliest(at, xDir), f.earliest(at, yDir)
	if ex == ey {
		if prevDir == yDir {
			return yDir
		}
		return xDir
	}
	if ex < ey {
		return xDir
	}
	return yDir
}
