package cyclesim_test

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"

	_ "qla/internal/cyclesim"
	"qla/internal/engine"
)

func runSpec(t *testing.T, eng *engine.Engine, spec engine.Spec) engine.Result {
	t.Helper()
	res, err := eng.Run(context.Background(), spec)
	if err != nil {
		t.Fatalf("running %s: %v", spec.Experiment, err)
	}
	return res
}

func payloadJSON(t *testing.T, res engine.Result) []byte {
	t.Helper()
	raw, err := json.Marshal(res.Data)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestDeterministicAcrossParallelism pins the engine contract the
// Monte Carlo backends honor: the same Spec produces bit-identical
// payloads at any WithParallelism setting and across repeated runs.
func TestDeterministicAcrossParallelism(t *testing.T) {
	specs := []engine.Spec{
		{Experiment: "cycle-interconnect"},
		{Experiment: "cycle-interconnect", Machine: engine.MachineSpec{Bandwidth: 1},
			Params: engine.Params{"grid": 12, "ops": 512, "window": 128, "routing": "adaptive", "kernel": "bitrev"}},
		{Experiment: "cycle-hierarchy"},
		{Experiment: "cycle-trace"},
	}
	for _, spec := range specs {
		serial := engine.New(engine.WithParallelism(1))
		parallel := engine.New(engine.WithParallelism(8))
		base := payloadJSON(t, runSpec(t, serial, spec))
		for run := 0; run < 2; run++ {
			if got := payloadJSON(t, runSpec(t, parallel, spec)); !bytes.Equal(base, got) {
				t.Errorf("%s: payload differs between parallelism 1 and 8 (run %d)", spec.Experiment, run)
			}
		}
		if got := payloadJSON(t, runSpec(t, serial, spec)); !bytes.Equal(base, got) {
			t.Errorf("%s: payload differs across repeated serial runs", spec.Experiment)
		}
	}
}

// TestExperimentsLinked exercises each cycle experiment end to end
// through the engine and sanity-checks the typed payloads and reports.
func TestExperimentsLinked(t *testing.T) {
	eng := engine.New(engine.WithParallelism(2))

	res := runSpec(t, eng, engine.Spec{Experiment: "cycle-interconnect"})
	var buf bytes.Buffer
	if err := engine.Report(&buf, res); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "teleport/ballistic effective-bandwidth ratio") {
		t.Errorf("interconnect report missing verdict:\n%s", buf.String())
	}

	res = runSpec(t, eng, engine.Spec{Experiment: "cycle-hierarchy"})
	buf.Reset()
	if err := engine.Report(&buf, res); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "AMAT") {
		t.Errorf("hierarchy report missing AMAT:\n%s", buf.String())
	}

	res = runSpec(t, eng, engine.Spec{Experiment: "cycle-trace"})
	raw := payloadJSON(t, res)
	var data struct {
		Ops    int    `json:"ops"`
		Kernel string `json:"kernel"`
	}
	if err := json.Unmarshal(raw, &data); err != nil {
		t.Fatal(err)
	}
	if data.Ops != 4 || data.Kernel != "trace" {
		t.Errorf("cycle-trace default payload = %s", raw)
	}
}

// TestInvalidParams pins typed validation errors surfacing through the
// engine rather than panicking.
func TestInvalidParams(t *testing.T) {
	eng := engine.New()
	for name, spec := range map[string]engine.Spec{
		"bad kernel":     {Experiment: "cycle-interconnect", Params: engine.Params{"kernel": "nope"}},
		"bad routing":    {Experiment: "cycle-interconnect", Params: engine.Params{"routing": "zigzag"}},
		"huge grid":      {Experiment: "cycle-interconnect", Params: engine.Params{"grid": 1000}},
		"negative tiles": {Experiment: "cycle-interconnect", Params: engine.Params{"tile-cells": -5}},
		"bad levels":     {Experiment: "cycle-hierarchy", Params: engine.Params{"levels": 20}},
		"bad miss":       {Experiment: "cycle-hierarchy", Params: engine.Params{"miss-ratio": 1.5}},
		"bad trace":      {Experiment: "cycle-trace", Params: engine.Params{"trace": "h 0"}},
		"unknown param":  {Experiment: "cycle-trace", Params: engine.Params{"wat": 1}},
	} {
		if _, err := eng.Run(context.Background(), spec); err == nil {
			t.Errorf("%s: engine accepted invalid spec", name)
		}
	}
}
