package cyclesim

import (
	"container/heap"
	"fmt"

	"qla/internal/tilegrid"
)

// Op is one two-operand logical operation between tiles (row-major
// tile indices).
type Op struct {
	Src, Dst int
}

// Metrics summarizes one simulated mode.
type Metrics struct {
	Mode string `json:"mode"`
	Ops  int    `json:"ops"`

	// MakespanCycles is the completion time of the last op.
	MakespanCycles int64 `json:"makespan_cycles"`
	// OpsPerKilocycle is the sustained effective logical-op bandwidth.
	OpsPerKilocycle float64 `json:"ops_per_kilocycle"`

	MeanLatencyCycles float64 `json:"mean_latency_cycles"`
	MaxLatencyCycles  int64   `json:"max_latency_cycles"`

	// LaneWaitCycles is total queueing delay at channel links.
	LaneWaitCycles int64 `json:"lane_wait_cycles"`
	// QubitWaitCycles is total serialization on busy logical qubits.
	QubitWaitCycles int64 `json:"qubit_wait_cycles"`
	// GenWaitCycles is total serialization at EPR-generator ports
	// (teleport only).
	GenWaitCycles int64 `json:"gen_wait_cycles"`

	// LinkUtilization is reserved lane-cycles over total lane-cycle
	// capacity across the makespan.
	LinkUtilization float64 `json:"link_utilization"`
	Corners         int64   `json:"corners"`
	// EPRHalves counts pair halves shipped (teleport only).
	EPRHalves int64 `json:"epr_halves"`
	// Events counts discrete simulation events (issues, reservations,
	// completions) — the benchmark's work unit.
	Events int64 `json:"events"`
}

// issueHeap orders in-flight ops by completion time, then issue order.
type issueEvent struct {
	done int64
	idx  int
}

type issueHeap []issueEvent

func (h issueHeap) Len() int { return len(h) }
func (h issueHeap) Less(i, j int) bool {
	if h[i].done != h[j].done {
		return h[i].done < h[j].done
	}
	return h[i].idx < h[j].idx
}
func (h issueHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *issueHeap) Push(x any)   { *h = append(*h, x.(issueEvent)) }
func (h *issueHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	*h = old[:n-1]
	return ev
}

// sim is one run's mutable state.
type sim struct {
	cfg  Config
	rect tilegrid.Rect
	fab  *fabric
	mode Mode

	// qubitFree serializes ops touching the same logical tile.
	qubitFree []int64
	// genFree serializes each tile's EPR-generator port.
	genFree []int64

	metrics Metrics
}

// Run replays ops through the grid in the given mode and returns the
// aggregate metrics plus the per-op completion latency (issue to
// completion), in op order.
func Run(cfg Config, mode Mode, ops []Op) (Metrics, []int64, error) {
	if err := cfg.validate(); err != nil {
		return Metrics{}, nil, err
	}
	rect := tilegrid.Rect{W: cfg.W, H: cfg.H}
	for i, op := range ops {
		if op.Src < 0 || op.Src >= rect.Tiles() || op.Dst < 0 || op.Dst >= rect.Tiles() {
			return Metrics{}, nil, fmt.Errorf("cyclesim: op %d references tile outside %dx%d grid", i, cfg.W, cfg.H)
		}
		if op.Src == op.Dst {
			return Metrics{}, nil, fmt.Errorf("cyclesim: op %d is a self-operation on tile %d", i, op.Src)
		}
	}

	s := &sim{
		cfg:       cfg,
		rect:      rect,
		fab:       newFabric(rect, cfg.Bandwidth, cfg.Lat.HopCycles),
		mode:      mode,
		qubitFree: make([]int64, rect.Tiles()),
		genFree:   make([]int64, rect.Tiles()),
	}
	s.metrics.Mode = mode.String()
	s.metrics.Ops = len(ops)

	latencies := make([]int64, len(ops))
	var inflight issueHeap
	next := 0
	issue := func(t int64) {
		op := ops[next]
		done := s.execute(op, t)
		latencies[next] = done - t
		if done > s.metrics.MakespanCycles {
			s.metrics.MakespanCycles = done
		}
		if latencies[next] > s.metrics.MaxLatencyCycles {
			s.metrics.MaxLatencyCycles = latencies[next]
		}
		heap.Push(&inflight, issueEvent{done: done, idx: next})
		s.metrics.Events += 2 // issue + completion
		next++
	}
	// Fill the window at t=0, then issue one op per completion: the
	// scheduler keeps Window logical ops in flight, in stream order.
	for next < len(ops) && next < cfg.Window {
		issue(0)
	}
	for next < len(ops) {
		ev := heap.Pop(&inflight).(issueEvent)
		issue(ev.done)
	}

	var sum int64
	for _, l := range latencies {
		sum += l
	}
	if len(ops) > 0 {
		s.metrics.MeanLatencyCycles = float64(sum) / float64(len(ops))
	}
	if s.metrics.MakespanCycles > 0 {
		s.metrics.OpsPerKilocycle = 1000 * float64(len(ops)) / float64(s.metrics.MakespanCycles)
		capacity := int64(rect.DirectedLinks()) * int64(cfg.Bandwidth) * s.metrics.MakespanCycles
		if capacity > 0 {
			s.metrics.LinkUtilization = float64(s.fab.laneCycles) / float64(capacity)
		}
	}
	s.metrics.LaneWaitCycles = s.fab.laneWaits
	s.metrics.Events += s.fab.reserves
	return s.metrics, latencies, nil
}

// execute runs one logical op issued at t and returns its completion
// time.
func (s *sim) execute(op Op, t int64) int64 {
	if s.mode == Ballistic {
		return s.executeBallistic(op, t)
	}
	return s.executeTeleport(op, t)
}

// executeBallistic: split the convoy out of the source trap, shuttle
// to the destination (lane reservations, corner stalls, recooling),
// interact transversally, shuttle home. The source qubit is locked
// until the convoy is home; the destination for the interaction.
func (s *sim) executeBallistic(op Op, t int64) int64 {
	lat := s.cfg.Lat
	src, dst := s.rect.Coord(op.Src), s.rect.Coord(op.Dst)
	adaptive := s.cfg.Routing == RoutingAdaptive

	start := s.waitQubit(op.Src, t)
	depart := start + lat.SplitCycles
	// Per-link occupancy: head transit plus convoy tail plus recooling
	// stalls mid-channel.
	headOcc := lat.HopCycles + int64(lat.ConvoyFlits) + lat.CoolCycles
	arrive, corners := s.fab.route(src, dst, depart, headOcc, lat.CornerCycles, lat.CoolCycles, adaptive)
	s.metrics.Corners += corners

	gateStart := s.waitQubit(op.Dst, arrive)
	gateEnd := gateStart + lat.GateCycles
	s.qubitFree[op.Dst] = gateEnd

	returnDepart := gateEnd + lat.SplitCycles
	home, corners2 := s.fab.route(dst, src, returnDepart, headOcc, lat.CornerCycles, lat.CoolCycles, adaptive)
	s.metrics.Corners += corners2
	s.qubitFree[op.Src] = home
	return home
}

// executeTeleport: the source generator port streams EPR halves to the
// destination; after purification the gate is teleported. Data qubits
// are locked only for the transversal interaction and correction —
// Bell measurement and classical signalling happen on ancillas.
func (s *sim) executeTeleport(op Op, t int64) int64 {
	lat := s.cfg.Lat
	src, dst := s.rect.Coord(op.Src), s.rect.Coord(op.Dst)
	adaptive := s.cfg.Routing == RoutingAdaptive

	// Finite generation rate: the port serializes its streams.
	stream := lat.StreamCycles()
	gen := t
	if s.genFree[op.Src] > gen {
		gen = s.genFree[op.Src]
	}
	s.metrics.GenWaitCycles += gen - t
	s.genFree[op.Src] = gen + stream
	s.metrics.EPRHalves += int64(lat.EPRFlits)

	// The stream occupies each link for head transit plus its tail.
	headArrive, corners := s.fab.route(src, dst, gen, lat.HopCycles+stream, lat.CornerCycles, 0, adaptive)
	s.metrics.Corners += corners
	ready := headArrive + stream + lat.PurifyCycles

	// Teleported gate: both data qubits join for the transversal
	// interaction; measurement and signalling overlap other work.
	es := s.waitQubit2(op.Src, op.Dst, ready)
	lock := es + lat.TeleportLockCycles()
	s.qubitFree[op.Src] = lock
	s.qubitFree[op.Dst] = lock
	return es + lat.GateCycles + lat.BellCycles + lat.ClassicalCycles + lat.CorrectionCycles
}

func (s *sim) waitQubit(q int, t int64) int64 {
	if s.qubitFree[q] > t {
		s.metrics.QubitWaitCycles += s.qubitFree[q] - t
		t = s.qubitFree[q]
	}
	return t
}

func (s *sim) waitQubit2(a, b int, t int64) int64 {
	return s.waitQubit(b, s.waitQubit(a, t))
}
