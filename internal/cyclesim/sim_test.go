package cyclesim

import (
	"reflect"
	"testing"

	"qla/internal/iontrap"
)

func testLatencies(t testing.TB) Latencies {
	t.Helper()
	lat, err := DeriveLatencies(iontrap.Expected(), DeriveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return lat
}

func TestDeriveLatenciesExpected(t *testing.T) {
	lat := testLatencies(t)
	// Table 1 expected parameters: cell move 0.01 µs, split/corner
	// 10 µs, two-qubit gate 10 µs, measure 100 µs, cool 1 µs. Tile
	// pitch (47+159)/2 = 103 cells.
	want := Latencies{
		HopCycles:        103,
		SplitCycles:      1000,
		CornerCycles:     1000,
		GateCycles:       1000,
		BellCycles:       11000,
		ClassicalCycles:  100,
		CorrectionCycles: 100,
		CoolCycles:       200, // 103/50 = 2 stops x 100 cycles
		EPRCycles:        10,
		PurifyCycles:     22200,
		ConvoyFlits:      7,
		EPRFlits:         14,
	}
	if lat != want {
		t.Errorf("derived latencies = %+v, want %+v", lat, want)
	}
}

func TestHopCellsForLevel(t *testing.T) {
	if HopCellsForLevel(2) != 103 {
		t.Errorf("level 2 hop = %d, want 103", HopCellsForLevel(2))
	}
	if HopCellsForLevel(0) != 103 {
		t.Errorf("level 0 (default) hop = %d, want 103", HopCellsForLevel(0))
	}
	if l1, l3 := HopCellsForLevel(1), HopCellsForLevel(3); !(l1 < 103 && 103 < l3) {
		t.Errorf("hop cells not monotone in level: L1=%d L2=103 L3=%d", l1, l3)
	}
}

// TestCrossover asserts the paper's qualitative claim: ballistic
// shuttling wins in small, latency-bound configurations, but beyond a
// grid size / contention level the teleportation interconnect sustains
// higher effective logical-op bandwidth (acceptance criterion).
func TestCrossover(t *testing.T) {
	lat := testLatencies(t)

	// Small grid, shallow window, ample bandwidth: per-op latency
	// dominates, and teleportation's Bell-measurement overhead loses.
	small := Config{W: 4, H: 4, Bandwidth: 2, Window: 4, Routing: RoutingDimension, Lat: lat}
	ops, err := MakeKernel(KernelRandom, 4, 4, 128, 7)
	if err != nil {
		t.Fatal(err)
	}
	tele, _, err := Run(small, Teleport, ops)
	if err != nil {
		t.Fatal(err)
	}
	ball, _, err := Run(small, Ballistic, ops)
	if err != nil {
		t.Fatal(err)
	}
	if !(ball.OpsPerKilocycle > tele.OpsPerKilocycle) {
		t.Errorf("small grid: ballistic %.3f ops/kcycle should beat teleport %.3f",
			ball.OpsPerKilocycle, tele.OpsPerKilocycle)
	}

	// Large grid, deep window, single-lane channels: contention and
	// round-trip qubit locking throttle ballistic movement while EPR
	// streams pipeline.
	large := Config{W: 16, H: 16, Bandwidth: 1, Window: 512, Routing: RoutingDimension, Lat: lat}
	ops, err = MakeKernel(KernelRandom, 16, 16, 2048, 7)
	if err != nil {
		t.Fatal(err)
	}
	tele, _, err = Run(large, Teleport, ops)
	if err != nil {
		t.Fatal(err)
	}
	ball, _, err = Run(large, Ballistic, ops)
	if err != nil {
		t.Fatal(err)
	}
	if !(tele.OpsPerKilocycle > 2*ball.OpsPerKilocycle) {
		t.Errorf("large contended grid: teleport %.3f ops/kcycle should sustain >2x ballistic %.3f",
			tele.OpsPerKilocycle, ball.OpsPerKilocycle)
	}
}

func TestRunDeterministicAcrossRepeats(t *testing.T) {
	lat := testLatencies(t)
	cfg := Config{W: 8, H: 8, Bandwidth: 2, Window: 16, Routing: RoutingAdaptive, Lat: lat}
	ops, err := MakeKernel(KernelRandom, 8, 8, 256, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []Mode{Teleport, Ballistic} {
		m1, l1, err := Run(cfg, mode, ops)
		if err != nil {
			t.Fatal(err)
		}
		m2, l2, err := Run(cfg, mode, ops)
		if err != nil {
			t.Fatal(err)
		}
		if m1 != m2 {
			t.Errorf("%s metrics differ across repeats:\n%+v\n%+v", mode, m1, m2)
		}
		if !reflect.DeepEqual(l1, l2) {
			t.Errorf("%s per-op latencies differ across repeats", mode)
		}
	}
}

func TestBandwidthRelievesContention(t *testing.T) {
	lat := testLatencies(t)
	ops, err := MakeKernel(KernelRandom, 12, 12, 1024, 7)
	if err != nil {
		t.Fatal(err)
	}
	prev := int64(-1)
	for _, bw := range []int{1, 2, 4} {
		cfg := Config{W: 12, H: 12, Bandwidth: bw, Window: 256, Routing: RoutingDimension, Lat: lat}
		m, _, err := Run(cfg, Ballistic, ops)
		if err != nil {
			t.Fatal(err)
		}
		if prev >= 0 && m.MakespanCycles > prev {
			t.Errorf("bandwidth %d makespan %d exceeds narrower channel's %d", bw, m.MakespanCycles, prev)
		}
		prev = m.MakespanCycles
	}
}

func TestAdaptiveRoutingValid(t *testing.T) {
	lat := testLatencies(t)
	ops, err := MakeKernel(KernelBitrev, 8, 8, 512, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, routing := range []string{RoutingDimension, RoutingAdaptive} {
		cfg := Config{W: 8, H: 8, Bandwidth: 1, Window: 64, Routing: routing, Lat: lat}
		m, lats, err := Run(cfg, Teleport, ops)
		if err != nil {
			t.Fatal(err)
		}
		if m.MakespanCycles <= 0 || len(lats) != len(ops) {
			t.Errorf("%s routing produced empty run: %+v", routing, m)
		}
		for i, l := range lats {
			if l <= 0 {
				t.Fatalf("%s routing: op %d has non-positive latency %d", routing, i, l)
			}
		}
	}
	// Dimension-ordered minimal routes turn at most one corner per
	// transfer in teleport mode (one-way streams).
	cfg := Config{W: 8, H: 8, Bandwidth: 4, Window: 8, Routing: RoutingDimension, Lat: lat}
	m, _, err := Run(cfg, Teleport, ops)
	if err != nil {
		t.Fatal(err)
	}
	if m.Corners > int64(len(ops)) {
		t.Errorf("dimension routing turned %d corners on %d one-way transfers", m.Corners, len(ops))
	}
}

func TestRunValidation(t *testing.T) {
	lat := testLatencies(t)
	good := Config{W: 4, H: 4, Bandwidth: 1, Window: 1, Routing: RoutingDimension, Lat: lat}
	cases := []struct {
		name string
		cfg  Config
		ops  []Op
	}{
		{"zero grid", Config{W: 0, H: 4, Bandwidth: 1, Window: 1, Routing: RoutingDimension, Lat: lat}, []Op{{0, 1}}},
		{"one tile", Config{W: 1, H: 1, Bandwidth: 1, Window: 1, Routing: RoutingDimension, Lat: lat}, []Op{{0, 0}}},
		{"bad routing", Config{W: 4, H: 4, Bandwidth: 1, Window: 1, Routing: "zigzag", Lat: lat}, []Op{{0, 1}}},
		{"no bandwidth", Config{W: 4, H: 4, Bandwidth: 0, Window: 1, Routing: RoutingDimension, Lat: lat}, []Op{{0, 1}}},
		{"underived latencies", Config{W: 4, H: 4, Bandwidth: 1, Window: 1, Routing: RoutingDimension}, []Op{{0, 1}}},
		{"op out of grid", good, []Op{{0, 99}}},
		{"self op", good, []Op{{3, 3}}},
	}
	for _, c := range cases {
		if _, _, err := Run(c.cfg, Ballistic, c.ops); err == nil {
			t.Errorf("%s: Run accepted invalid input", c.name)
		}
	}
}

func TestHierarchyLevels(t *testing.T) {
	lat := testLatencies(t)
	cfg := HierarchyConfig{
		Levels: 3, Accesses: 512, MissRatio: 0.35,
		Window: 8, Bandwidth: 2, Routing: RoutingDimension, Lat: lat, Seed: 7,
	}
	res, err := RunHierarchy(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.GridW != 9 {
		t.Errorf("grid width = %d, want 9 (2^3+1)", res.GridW)
	}
	total := 0
	for _, l := range res.Levels {
		total += l.Accesses
	}
	if total != cfg.Accesses {
		t.Errorf("level accesses sum to %d, want %d", total, cfg.Accesses)
	}
	// The near level must be hit most often at miss ratio 0.35, and
	// ballistic mean access latency must grow with distance.
	if res.Levels[0].Accesses <= res.Levels[2].Accesses {
		t.Errorf("L1 (%d accesses) should dominate L3 (%d)", res.Levels[0].Accesses, res.Levels[2].Accesses)
	}
	if !(res.Levels[0].BallisticMeanCycles < res.Levels[2].BallisticMeanCycles) {
		t.Errorf("ballistic latency not increasing with level: L1=%.0f L3=%.0f",
			res.Levels[0].BallisticMeanCycles, res.Levels[2].BallisticMeanCycles)
	}
	// Shared access stream: both modes replay identical ops.
	if res.Teleport.Ops != cfg.Accesses || res.Ballistic.Ops != cfg.Accesses {
		t.Errorf("modes ran %d/%d ops, want %d each", res.Teleport.Ops, res.Ballistic.Ops, cfg.Accesses)
	}

	// Parallel execution of the two modes is bit-identical.
	par, err := RunHierarchy(cfg, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, par) {
		t.Error("hierarchy results differ between par=1 and par=8")
	}
}

func BenchmarkCycleInterconnect(b *testing.B) {
	lat := testLatencies(b)
	cfg := Config{W: 8, H: 8, Bandwidth: 2, Window: 16, Routing: RoutingDimension, Lat: lat}
	ops, err := MakeKernel(KernelRandom, 8, 8, 256, 7)
	if err != nil {
		b.Fatal(err)
	}
	var events, cycles int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, mode := range []Mode{Teleport, Ballistic} {
			m, _, err := Run(cfg, mode, ops)
			if err != nil {
				b.Fatal(err)
			}
			events += m.Events
			cycles += m.MakespanCycles
		}
	}
	elapsed := b.Elapsed()
	if elapsed > 0 {
		b.ReportMetric(float64(events)/elapsed.Seconds(), "events/s")
	}
	if cycles > 0 {
		b.ReportMetric(float64(elapsed.Nanoseconds())/float64(cycles), "ns/cycle")
	}
}
