package cyclesim

import (
	"fmt"
	"math/rand/v2"
)

// HierarchyConfig describes a quant-ph/0604070-style memory-hierarchy
// run: a compute region at one end of a line of tiles, with cache
// levels at geometrically growing distances, all sharing the trunk
// links nearest the compute tile.
type HierarchyConfig struct {
	// Levels is the number of cache levels; level i sits 2^i tiles
	// from the compute tile.
	Levels int
	// Accesses is the length of the access stream.
	Accesses int
	// MissRatio is the per-level miss probability: an access hits
	// level 1 with probability 1-m, level 2 with m(1-m), and so on;
	// the last level catches the remainder.
	MissRatio float64
	// Window, Bandwidth, Routing and Lat parameterize the fabric as in
	// Config.
	Window    int
	Bandwidth int
	Routing   string
	Lat       Latencies
	// Seed drives the access-level draw.
	Seed uint64
}

// HierarchyLevel is one cache level's slice of the run.
type HierarchyLevel struct {
	Level    int `json:"level"`
	HopsAway int `json:"hops_away"`
	Accesses int `json:"accesses"`
	// Mean access latency in cycles, per transport mode.
	TeleportMeanCycles  float64 `json:"teleport_mean_cycles"`
	BallisticMeanCycles float64 `json:"ballistic_mean_cycles"`
}

// HierarchyResult aggregates both transport modes over one access
// stream.
type HierarchyResult struct {
	// GridW is the line length in tiles (2^Levels + 1).
	GridW  int              `json:"grid_w"`
	Levels []HierarchyLevel `json:"levels"`
	// Teleport and Ballistic are fabric metrics for the full stream;
	// their MeanLatencyCycles is the AMAT of each mode.
	Teleport  Metrics `json:"teleport"`
	Ballistic Metrics `json:"ballistic"`
}

func (c HierarchyConfig) validate() error {
	if c.Levels < 1 || c.Levels > 8 {
		return fmt.Errorf("cyclesim: hierarchy levels %d out of range [1,8]", c.Levels)
	}
	if c.Accesses < 1 {
		return fmt.Errorf("cyclesim: accesses %d must be positive", c.Accesses)
	}
	if !(c.MissRatio >= 0 && c.MissRatio < 1) {
		return fmt.Errorf("cyclesim: miss-ratio %g out of range [0,1)", c.MissRatio)
	}
	return nil
}

// RunHierarchy replays one access stream through both transport modes
// on the hierarchy line grid. The stream itself (which level each
// access reaches) is shared, so the two modes differ only in
// transport. par ≥ 2 runs the two modes concurrently; the modes hold
// independent state, so results are bit-identical at any par.
func RunHierarchy(cfg HierarchyConfig, par int) (HierarchyResult, error) {
	if err := cfg.validate(); err != nil {
		return HierarchyResult{}, err
	}
	gridW := 1<<cfg.Levels + 1
	sim := Config{
		W:         gridW,
		H:         1,
		Bandwidth: cfg.Bandwidth,
		Window:    cfg.Window,
		Routing:   cfg.Routing,
		Lat:       cfg.Lat,
	}

	// Draw the access stream: every access is a transfer between the
	// hit level's bank and the compute tile at x=0. Memory-side EPR
	// generation (the bank streams halves toward compute) is the
	// hierarchy paper's port placement.
	rng := rand.New(rand.NewPCG(cfg.Seed, cfg.Seed^0x9e3779b97f4a7c15))
	ops := make([]Op, cfg.Accesses)
	levelOf := make([]int, cfg.Accesses)
	perLevel := make([]int, cfg.Levels+1)
	for i := range ops {
		level := cfg.Levels
		for l := 1; l < cfg.Levels; l++ {
			if rng.Float64() >= cfg.MissRatio {
				level = l
				break
			}
		}
		levelOf[i] = level
		perLevel[level]++
		ops[i] = Op{Src: 1 << level, Dst: 0}
	}

	tele, teleLat, ball, ballLat, err := runBothModes(sim, ops, par)
	if err != nil {
		return HierarchyResult{}, err
	}

	res := HierarchyResult{GridW: gridW, Teleport: tele, Ballistic: ball}
	sums := make([]struct{ tele, ball int64 }, cfg.Levels+1)
	for i, l := range levelOf {
		sums[l].tele += teleLat[i]
		sums[l].ball += ballLat[i]
	}
	for l := 1; l <= cfg.Levels; l++ {
		row := HierarchyLevel{Level: l, HopsAway: 1 << l, Accesses: perLevel[l]}
		if perLevel[l] > 0 {
			row.TeleportMeanCycles = float64(sums[l].tele) / float64(perLevel[l])
			row.BallisticMeanCycles = float64(sums[l].ball) / float64(perLevel[l])
		}
		res.Levels = append(res.Levels, row)
	}
	return res, nil
}
