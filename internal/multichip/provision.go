package multichip

// Yield-aware multi-chip planning. Section 6's redundancy argument —
// "defects can be diagnosed and masked out in software" — means a real
// chip must carry spare tiles beyond its logical requirement, and spare
// tiles are real area: provisioning can push a chip past the edge limit
// that sized the partition, forcing more chips. PlanProvisioned closes
// that loop, combining the photonic-link partition model with
// internal/layout's defect-yield provisioning.

import (
	"fmt"

	"qla/internal/iontrap"
	"qla/internal/layout"
)

// YieldPartition augments a Partition with defect-yield provisioning:
// the spare tiles each chip carries so it fields its required logical
// qubits with probability at least YieldTarget, and the provisioned
// chip edge those spares cost.
type YieldPartition struct {
	Partition
	// CellDefectProb is the per-cell fabrication defect probability
	// (0 means perfect fabrication: no spares).
	CellDefectProb float64 `json:"cell_defect_prob"`
	// YieldTarget is the per-chip probability of fielding QubitsPerChip
	// usable tiles.
	YieldTarget float64 `json:"yield_target"`
	// TileYield is the resulting probability that one tile is usable.
	TileYield float64 `json:"tile_yield"`
	// SpareTiles is the per-chip spare provision.
	SpareTiles int `json:"spare_tiles"`
	// ProvisionedQubitsPerChip is QubitsPerChip + SpareTiles.
	ProvisionedQubitsPerChip int `json:"provisioned_qubits_per_chip"`
	// ProvisionedEdgeCM is the chip edge including spares; it, not the
	// bare ChipEdgeCM, is what honors the partition's edge limit.
	ProvisionedEdgeCM float64 `json:"provisioned_edge_cm"`
}

// PlanProvisioned partitions like Plan and then provisions each chip
// with the spare tiles the defect model demands, growing the chip count
// until the provisioned floorplan honors the edge limit.
func PlanProvisioned(nBits int, maxEdgeCM float64, maxLinks int, lp LinkParams, p iontrap.Params, cellDefectProb, yieldTarget float64) (YieldPartition, error) {
	if cellDefectProb < 0 || cellDefectProb > 1 {
		return YieldPartition{}, fmt.Errorf("multichip: cell defect probability %g outside [0,1]", cellDefectProb)
	}
	// Validate the yield target here, not just inside SparesNeeded: its
	// tileYield==1 fast path would otherwise let a perfect-fabrication
	// plan (the default) echo a nonsense target back in its results.
	if yieldTarget <= 0 || yieldTarget >= 1 {
		return YieldPartition{}, fmt.Errorf("multichip: yield target %g outside (0,1)", yieldTarget)
	}
	base, err := Plan(nBits, maxEdgeCM, maxLinks, lp, p)
	if err != nil {
		return YieldPartition{}, err
	}
	out := YieldPartition{
		Partition:      base,
		CellDefectProb: cellDefectProb,
		YieldTarget:    yieldTarget,
		TileYield:      layout.TileYield(cellDefectProb),
	}
	// Spares are per-chip area: if provisioning breaks the edge limit,
	// shrink chips (more of them) until it holds again.
	chips := base.Chips
	for {
		perChip := (base.LogicalQubits + chips - 1) / chips
		spares, err := layout.SparesNeeded(perChip, out.TileYield, yieldTarget)
		if err != nil {
			return YieldPartition{}, err
		}
		provisioned, err := layout.NewFloorplan(perChip + spares)
		if err != nil {
			return YieldPartition{}, err
		}
		if provisioned.EdgeCM() <= maxEdgeCM || chips > base.LogicalQubits {
			bare, err := layout.NewFloorplan(perChip)
			if err != nil {
				return YieldPartition{}, err
			}
			out.Chips = chips
			out.QubitsPerChip = perChip
			out.ChipEdgeCM = bare.EdgeCM()
			out.SpareTiles = spares
			out.ProvisionedQubitsPerChip = perChip + spares
			out.ProvisionedEdgeCM = provisioned.EdgeCM()
			return out, nil
		}
		chips++
	}
}
