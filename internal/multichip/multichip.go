// Package multichip models the multi-chip QLA systems the paper's
// Section 6 identifies as the way past fabrication limits: "the sheer
// sizes of the ion-trap chips required make the physical realization of
// such systems a considerable engineering challenge, which may be
// impractical for N > 128 with current single chip technology... a
// multi-chip solution for solving such large problems is desirable."
//
// Chips are tiled QLA floorplans bounded by a maximum edge length; the
// chips are joined by heralded photonic entanglement links (the
// Cabrillo/DLCZ/Blinov experiments the paper cites), whose raw pairs
// are purified to the interconnect's target fidelity. The model answers
// the paper's question quantitatively: how many chips does an N-bit
// factorization need, how many optical links per chip boundary keep the
// inter-chip traffic hidden under error correction, and what slowdown
// results when the link budget falls short.
package multichip

import (
	"fmt"
	"math"

	"qla/internal/ft"
	"qla/internal/iontrap"
	"qla/internal/layout"
	"qla/internal/shor"
	"qla/internal/teleport"
)

// LinkParams characterizes one heralded photonic inter-chip link.
type LinkParams struct {
	// AttemptHz is the entanglement-attempt repetition rate.
	AttemptHz float64
	// SuccessProb is the heralding probability per attempt.
	SuccessProb float64
	// RawFidelity is the fidelity of a heralded pair.
	RawFidelity float64
	// TargetFidelity is the required post-purification fidelity
	// (matched to the on-chip interconnect's target).
	TargetFidelity float64
	// MaxPurifyRounds bounds the purification ladder.
	MaxPurifyRounds int
}

// DefaultLinkParams reflects mid-2000s trapped-ion/photon interfaces
// (probabilistic, MHz-class attempt rates, heralded fidelities near
// 0.9) with the QLA interconnect's delivery target.
func DefaultLinkParams() LinkParams {
	return LinkParams{
		AttemptHz:       1e6,
		SuccessProb:     1e-3,
		RawFidelity:     0.92,
		TargetFidelity:  0.99,
		MaxPurifyRounds: 12,
	}
}

// Validate checks physical bounds.
func (lp LinkParams) Validate() error {
	switch {
	case lp.AttemptHz <= 0:
		return fmt.Errorf("multichip: attempt rate %g", lp.AttemptHz)
	case lp.SuccessProb <= 0 || lp.SuccessProb > 1:
		return fmt.Errorf("multichip: success probability %g", lp.SuccessProb)
	case lp.RawFidelity <= teleport.MinPurifiableFidelity || lp.RawFidelity > 1:
		return fmt.Errorf("multichip: raw fidelity %g not purifiable", lp.RawFidelity)
	case lp.TargetFidelity <= lp.RawFidelity && lp.TargetFidelity != lp.RawFidelity:
		return fmt.Errorf("multichip: target fidelity %g below raw %g", lp.TargetFidelity, lp.RawFidelity)
	case lp.TargetFidelity > 1:
		return fmt.Errorf("multichip: target fidelity %g", lp.TargetFidelity)
	case lp.MaxPurifyRounds <= 0:
		return fmt.Errorf("multichip: purify rounds %d", lp.MaxPurifyRounds)
	}
	return nil
}

// RawPairHz is the heralded raw-pair generation rate of one link.
func (lp LinkParams) RawPairHz() float64 { return lp.AttemptHz * lp.SuccessProb }

// PurifiedPairHz is the delivered-pair rate after the purification
// ladder consumes its expected raw-pair budget. An error is returned
// when the ladder cannot reach the target.
func (lp LinkParams) PurifiedPairHz() (float64, error) {
	if err := lp.Validate(); err != nil {
		return 0, err
	}
	plan := teleport.PurifyTo(lp.RawFidelity, lp.TargetFidelity, lp.MaxPurifyRounds)
	if !plan.Converged {
		return 0, fmt.Errorf("multichip: purification cannot reach %g from %g in %d rounds",
			lp.TargetFidelity, lp.RawFidelity, lp.MaxPurifyRounds)
	}
	return lp.RawPairHz() / plan.RawPairs, nil
}

// Partition is the multi-chip plan for one problem size.
type Partition struct {
	// N is the Shor modulus width in bits.
	N int
	// LogicalQubits is the total machine size.
	LogicalQubits int
	// Chips is the number of chips required under the edge limit.
	Chips int
	// QubitsPerChip is the per-chip logical capacity used.
	QubitsPerChip int
	// ChipEdgeCM is the per-chip edge after partitioning.
	ChipEdgeCM float64
	// MonolithicEdgeCM is the single-chip edge the partition avoids.
	MonolithicEdgeCM float64
	// BoundaryDemandHz is the EPR-pair demand per chip boundary needed
	// to keep inter-chip gates overlapped with error correction.
	BoundaryDemandHz float64
	// LinksPerBoundary is the optical-link count meeting that demand.
	LinksPerBoundary int
	// Overlapped reports whether the demand is met within MaxLinks.
	Overlapped bool
	// Slowdown is the algorithm-level stretch factor when links cap
	// out (1.0 when fully overlapped).
	Slowdown float64
}

// BoundaryBandwidthPairs is the inter-chip analogue of the paper's
// on-chip result that channel bandwidth 2 fully overlaps communication
// with error correction: each chip boundary must sustain two EPR
// deliveries per level-2 EC step.
const BoundaryBandwidthPairs = 2

// Plan partitions an N-bit factorization machine across chips with the
// given maximum edge, and sizes the photonic links per boundary.
// maxLinks caps the links available per boundary (0 means unlimited).
func Plan(nBits int, maxEdgeCM float64, maxLinks int, lp LinkParams, p iontrap.Params) (Partition, error) {
	if maxEdgeCM <= 0 {
		return Partition{}, fmt.Errorf("multichip: non-positive edge limit")
	}
	res, err := shor.Estimate(nBits, p)
	if err != nil {
		return Partition{}, err
	}
	mono, err := layout.NewFloorplan(res.LogicalQubits)
	if err != nil {
		return Partition{}, err
	}
	part := Partition{
		N:                nBits,
		LogicalQubits:    res.LogicalQubits,
		MonolithicEdgeCM: mono.EdgeCM(),
	}

	// Area-based partitioning: chips hold equal shares; the per-chip
	// floorplan must respect the edge limit.
	maxAreaM2 := (maxEdgeCM / 100) * (maxEdgeCM / 100)
	chips := int(math.Ceil(mono.AreaM2() / maxAreaM2))
	if chips < 1 {
		chips = 1
	}
	for {
		perChip := (res.LogicalQubits + chips - 1) / chips
		f, err := layout.NewFloorplan(perChip)
		if err != nil {
			return Partition{}, err
		}
		if f.EdgeCM() <= maxEdgeCM || chips > res.LogicalQubits {
			part.Chips = chips
			part.QubitsPerChip = perChip
			part.ChipEdgeCM = f.EdgeCM()
			break
		}
		chips++
	}

	// Boundary traffic: BoundaryBandwidthPairs per level-2 EC step.
	ecStep := ft.NewLatencyModel(p).ECTime(2)
	part.BoundaryDemandHz = BoundaryBandwidthPairs / ecStep

	supply, err := lp.PurifiedPairHz()
	if err != nil {
		return Partition{}, err
	}
	links := int(math.Ceil(part.BoundaryDemandHz / supply))
	if links < 1 {
		links = 1
	}
	part.LinksPerBoundary = links
	part.Overlapped = maxLinks <= 0 || links <= maxLinks
	part.Slowdown = 1
	if !part.Overlapped {
		// Communication stretches each EC window by the supply gap.
		part.Slowdown = part.BoundaryDemandHz / (supply * float64(maxLinks))
		part.LinksPerBoundary = maxLinks
	}
	return part, nil
}

// Table evaluates the partition plan across the paper's Table-2
// problem sizes.
func Table(maxEdgeCM float64, maxLinks int, lp LinkParams, p iontrap.Params) ([]Partition, error) {
	sizes := []int{128, 512, 1024, 2048}
	out := make([]Partition, 0, len(sizes))
	for _, n := range sizes {
		pt, err := Plan(n, maxEdgeCM, maxLinks, lp, p)
		if err != nil {
			return nil, err
		}
		out = append(out, pt)
	}
	return out, nil
}
