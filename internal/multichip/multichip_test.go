package multichip

import (
	"math"
	"testing"

	"qla/internal/iontrap"
)

func TestLinkParamsValidate(t *testing.T) {
	if err := DefaultLinkParams().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []LinkParams{
		{AttemptHz: 0, SuccessProb: 0.1, RawFidelity: 0.9, TargetFidelity: 0.99, MaxPurifyRounds: 4},
		{AttemptHz: 1e6, SuccessProb: 0, RawFidelity: 0.9, TargetFidelity: 0.99, MaxPurifyRounds: 4},
		{AttemptHz: 1e6, SuccessProb: 2, RawFidelity: 0.9, TargetFidelity: 0.99, MaxPurifyRounds: 4},
		{AttemptHz: 1e6, SuccessProb: 0.1, RawFidelity: 0.4, TargetFidelity: 0.99, MaxPurifyRounds: 4},
		{AttemptHz: 1e6, SuccessProb: 0.1, RawFidelity: 0.9, TargetFidelity: 1.2, MaxPurifyRounds: 4},
		{AttemptHz: 1e6, SuccessProb: 0.1, RawFidelity: 0.9, TargetFidelity: 0.99, MaxPurifyRounds: 0},
	}
	for i, lp := range bad {
		if err := lp.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, lp)
		}
	}
}

func TestPurifiedPairRate(t *testing.T) {
	lp := DefaultLinkParams()
	raw := lp.RawPairHz()
	if raw != 1e3 {
		t.Fatalf("raw rate %g, want 1000", raw)
	}
	purified, err := lp.PurifiedPairHz()
	if err != nil {
		t.Fatal(err)
	}
	if purified <= 0 || purified >= raw {
		t.Fatalf("purified rate %g must be positive and below raw %g", purified, raw)
	}
}

func TestPurifiedPairRateUnreachableTarget(t *testing.T) {
	lp := DefaultLinkParams()
	lp.RawFidelity = 0.52
	lp.TargetFidelity = 0.999999
	lp.MaxPurifyRounds = 1
	if _, err := lp.PurifiedPairHz(); err == nil {
		t.Fatal("unreachable target accepted")
	}
}

// TestPlan128SingleVsPartitioned pins the paper's Section 6 numbers:
// factoring 128 bits needs a ~33 cm chip, so a 10 cm process forces a
// multi-chip build while a 40 cm process does not.
func TestPlan128SingleVsPartitioned(t *testing.T) {
	p := iontrap.Expected()
	lp := DefaultLinkParams()

	large, err := Plan(128, 40, 0, lp, p)
	if err != nil {
		t.Fatal(err)
	}
	if large.Chips != 1 {
		t.Fatalf("40 cm process should fit one chip, got %d", large.Chips)
	}
	if large.MonolithicEdgeCM < 25 || large.MonolithicEdgeCM > 45 {
		t.Fatalf("monolithic edge %.1f cm; paper says ~33 cm", large.MonolithicEdgeCM)
	}

	small, err := Plan(128, 10, 0, lp, p)
	if err != nil {
		t.Fatal(err)
	}
	if small.Chips < 2 {
		t.Fatalf("10 cm process should need multiple chips, got %d", small.Chips)
	}
	if small.ChipEdgeCM > 10 {
		t.Fatalf("per-chip edge %.1f exceeds the limit", small.ChipEdgeCM)
	}
	if small.QubitsPerChip*small.Chips < small.LogicalQubits {
		t.Fatal("partition loses qubits")
	}
}

// TestTableMonotone: larger problems need at least as many chips, and
// every row respects the edge limit.
func TestTableMonotone(t *testing.T) {
	p := iontrap.Expected()
	rows, err := Table(20, 0, DefaultLinkParams(), p)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows %d", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Chips < rows[i-1].Chips {
			t.Fatalf("chip count not monotone: %d then %d", rows[i-1].Chips, rows[i].Chips)
		}
	}
	for _, r := range rows {
		if r.ChipEdgeCM > 20 {
			t.Fatalf("N=%d: edge %.1f over limit", r.N, r.ChipEdgeCM)
		}
		if !r.Overlapped || r.Slowdown != 1 {
			t.Fatalf("N=%d: unlimited links should overlap", r.N)
		}
	}
}

// TestLinkCapCausesSlowdown: capping the links below demand must
// produce a proportional slowdown.
func TestLinkCapCausesSlowdown(t *testing.T) {
	p := iontrap.Expected()
	lp := DefaultLinkParams()
	free, err := Plan(512, 15, 0, lp, p)
	if err != nil {
		t.Fatal(err)
	}
	if free.LinksPerBoundary < 2 {
		t.Skipf("demand already met by one link (%d); cap test not meaningful", free.LinksPerBoundary)
	}
	capped, err := Plan(512, 15, 1, lp, p)
	if err != nil {
		t.Fatal(err)
	}
	if capped.Overlapped {
		t.Fatal("capped plan claims overlap")
	}
	if capped.Slowdown <= 1 {
		t.Fatalf("slowdown %.2f, want > 1", capped.Slowdown)
	}
	want := free.BoundaryDemandHz / (free.BoundaryDemandHz / float64(free.LinksPerBoundary))
	_ = want // demand/supply relation asserted qualitatively below
	if capped.LinksPerBoundary != 1 {
		t.Fatalf("capped links %d", capped.LinksPerBoundary)
	}
}

// TestBoundaryDemandMatchesECStep: demand = 2 pairs per 0.043 s EC
// step ≈ 46 Hz under expected parameters.
func TestBoundaryDemandMatchesECStep(t *testing.T) {
	p := iontrap.Expected()
	pt, err := Plan(128, 40, 0, DefaultLinkParams(), p)
	if err != nil {
		t.Fatal(err)
	}
	if pt.BoundaryDemandHz < 30 || pt.BoundaryDemandHz > 70 {
		t.Fatalf("boundary demand %.1f Hz; expected ~46 Hz (2 per 43 ms)", pt.BoundaryDemandHz)
	}
}

func TestPlanValidation(t *testing.T) {
	p := iontrap.Expected()
	if _, err := Plan(128, 0, 0, DefaultLinkParams(), p); err == nil {
		t.Fatal("zero edge accepted")
	}
	if _, err := Plan(4, 10, 0, DefaultLinkParams(), p); err == nil {
		t.Fatal("tiny modulus accepted")
	}
}

func TestSlowdownFinite(t *testing.T) {
	p := iontrap.Expected()
	rows, err := Table(33, 1, DefaultLinkParams(), p)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if math.IsInf(r.Slowdown, 0) || math.IsNaN(r.Slowdown) || r.Slowdown < 1 {
			t.Fatalf("N=%d: slowdown %v", r.N, r.Slowdown)
		}
	}
}

func BenchmarkPlan1024(b *testing.B) {
	p := iontrap.Expected()
	lp := DefaultLinkParams()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Plan(1024, 20, 0, lp, p); err != nil {
			b.Fatal(err)
		}
	}
}
