package multichip

import (
	"strings"
	"testing"

	"qla/internal/iontrap"
)

func TestPlanProvisionedPerfectFabrication(t *testing.T) {
	lp := DefaultLinkParams()
	p := iontrap.Expected()
	base, err := Plan(512, 33, 0, lp, p)
	if err != nil {
		t.Fatal(err)
	}
	yp, err := PlanProvisioned(512, 33, 0, lp, p, 0, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	if yp.TileYield != 1 || yp.SpareTiles != 0 {
		t.Errorf("perfect fabrication provisioned spares: %+v", yp)
	}
	if yp.Chips != base.Chips || yp.QubitsPerChip != base.QubitsPerChip {
		t.Errorf("defect-free provisioning changed the partition: %+v vs %+v", yp.Partition, base)
	}
	if yp.ProvisionedEdgeCM != yp.ChipEdgeCM || yp.ProvisionedQubitsPerChip != yp.QubitsPerChip {
		t.Errorf("provisioned quantities drifted with no spares: %+v", yp)
	}
}

func TestPlanProvisionedAddsSpares(t *testing.T) {
	lp := DefaultLinkParams()
	p := iontrap.Expected()
	yp, err := PlanProvisioned(512, 33, 0, lp, p, 1e-6, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	if yp.TileYield >= 1 || yp.TileYield <= 0 {
		t.Fatalf("tile yield %g", yp.TileYield)
	}
	if yp.SpareTiles <= 0 {
		t.Errorf("defective fabrication provisioned no spares: %+v", yp)
	}
	if yp.ProvisionedQubitsPerChip != yp.QubitsPerChip+yp.SpareTiles {
		t.Errorf("provisioned qubits %d != %d + %d", yp.ProvisionedQubitsPerChip, yp.QubitsPerChip, yp.SpareTiles)
	}
	if yp.ProvisionedEdgeCM < yp.ChipEdgeCM {
		t.Errorf("spares shrank the chip: %g < %g", yp.ProvisionedEdgeCM, yp.ChipEdgeCM)
	}
	if yp.ProvisionedEdgeCM > 33 {
		t.Errorf("provisioned edge %g cm breaks the 33 cm limit", yp.ProvisionedEdgeCM)
	}
}

// TestPlanProvisionedRepartitions: when spares would push a chip past
// the edge limit, the plan absorbs them by using more chips. A tight
// edge limit makes the effect visible at a modest defect probability.
func TestPlanProvisionedRepartitions(t *testing.T) {
	lp := DefaultLinkParams()
	p := iontrap.Expected()
	const edge = 12.0
	base, err := Plan(512, edge, 0, lp, p)
	if err != nil {
		t.Fatal(err)
	}
	yp, err := PlanProvisioned(512, edge, 0, lp, p, 5e-6, 0.999)
	if err != nil {
		t.Fatal(err)
	}
	if yp.ProvisionedEdgeCM > edge {
		t.Errorf("provisioned edge %g cm breaks the %g cm limit", yp.ProvisionedEdgeCM, edge)
	}
	if yp.Chips < base.Chips {
		t.Errorf("provisioning reduced the chip count: %d < %d", yp.Chips, base.Chips)
	}
	// The provisioned machine still fields every logical qubit.
	if yp.Chips*yp.QubitsPerChip < yp.LogicalQubits {
		t.Errorf("partition lost qubits: %d chips × %d < %d", yp.Chips, yp.QubitsPerChip, yp.LogicalQubits)
	}
}

func TestPlanProvisionedValidation(t *testing.T) {
	lp := DefaultLinkParams()
	p := iontrap.Expected()
	if _, err := PlanProvisioned(128, 33, 0, lp, p, -0.1, 0.99); err == nil || !strings.Contains(err.Error(), "defect probability") {
		t.Errorf("negative defect prob: %v", err)
	}
	if _, err := PlanProvisioned(128, 33, 0, lp, p, 1e-6, 1.5); err == nil || !strings.Contains(err.Error(), "yield target") {
		t.Errorf("bad yield target: %v", err)
	}
	if _, err := PlanProvisioned(128, 33, 0, lp, p, 1e-6, 0); err == nil {
		t.Error("zero yield target accepted")
	}
	// The target is validated even when perfect fabrication would never
	// consult it.
	if _, err := PlanProvisioned(128, 33, 0, lp, p, 0, 5); err == nil || !strings.Contains(err.Error(), "yield target") {
		t.Errorf("out-of-range yield target with zero defects: %v", err)
	}
}
