package pauliframe

import (
	"fmt"
	"math/bits"
)

// Lanes is the number of independent trials a Batch packs per word.
const Lanes = 64

// LaneMask returns the active-lane mask of a block carrying the given
// number of trials (the final block of a run may be short).
func LaneMask(lanes int) uint64 {
	if lanes >= Lanes {
		return ^uint64(0)
	}
	return 1<<uint(lanes) - 1
}

// Batch is a bit-sliced Pauli error frame: the X/Z components of Lanes
// (64) independent trials packed one bit per lane, so that Clifford
// propagation, error injection and measurement become branch-free
// word-wide bitwise operations. x[q] and z[q] hold the lane masks of
// qubit q; lane l of every word belongs to trial l of the batch.
//
// Every operation has a masked variant taking a lane mask of the trials
// that actually execute it; lanes outside the mask are untouched, which
// is how per-lane control flow (ancilla re-preparation, the
// agreeing-syndromes rule) is expressed on top of a single shared
// instruction stream. The unmasked forms are the masked forms at the
// full mask.
type Batch struct {
	n int
	x []uint64
	z []uint64
}

// NewBatch returns an all-identity batch frame over n qubits.
func NewBatch(n int) *Batch {
	if n <= 0 {
		panic("pauliframe: number of qubits must be positive")
	}
	return &Batch{n: n, x: make([]uint64, n), z: make([]uint64, n)}
}

// N returns the number of qubits.
func (b *Batch) N() int { return b.n }

func (b *Batch) check(q int) {
	if q < 0 || q >= b.n {
		panic(fmt.Sprintf("pauliframe: qubit %d out of range [0,%d)", q, b.n))
	}
}

// XBits returns the lane mask of trials with an X component on q.
func (b *Batch) XBits(q int) uint64 { b.check(q); return b.x[q] }

// ZBits returns the lane mask of trials with a Z component on q.
func (b *Batch) ZBits(q int) uint64 { b.check(q); return b.z[q] }

// InjectX multiplies an X error onto q in the masked lanes.
func (b *Batch) InjectX(q int, mask uint64) { b.check(q); b.x[q] ^= mask }

// InjectZ multiplies a Z error onto q in the masked lanes.
func (b *Batch) InjectZ(q int, mask uint64) { b.check(q); b.z[q] ^= mask }

// InjectY multiplies a Y error onto q in the masked lanes.
func (b *Batch) InjectY(q int, mask uint64) {
	b.check(q)
	b.x[q] ^= mask
	b.z[q] ^= mask
}

// H propagates the masked lanes through a Hadamard on q (X <-> Z).
func (b *Batch) H(q int, mask uint64) {
	b.check(q)
	diff := (b.x[q] ^ b.z[q]) & mask
	b.x[q] ^= diff
	b.z[q] ^= diff
}

// S propagates the masked lanes through a phase gate on q (X -> Y).
func (b *Batch) S(q int, mask uint64) {
	b.check(q)
	b.z[q] ^= b.x[q] & mask
}

// Sdg propagates the masked lanes through an inverse phase gate (the
// frame cannot see the sign difference from S).
func (b *Batch) Sdg(q int, mask uint64) { b.S(q, mask) }

// CNOT propagates the masked lanes through a controlled-NOT: X errors
// copy control->target, Z errors copy target->control.
func (b *Batch) CNOT(c, t int, mask uint64) {
	b.check(c)
	b.check(t)
	b.x[t] ^= b.x[c] & mask
	b.z[c] ^= b.z[t] & mask
}

// CZ propagates the masked lanes through a controlled-Z.
func (b *Batch) CZ(p, q int, mask uint64) {
	b.check(p)
	b.check(q)
	b.z[q] ^= b.x[p] & mask
	b.z[p] ^= b.x[q] & mask
}

// SWAP exchanges the frame bits of p and q in the masked lanes.
func (b *Batch) SWAP(p, q int, mask uint64) {
	b.check(p)
	b.check(q)
	dx := (b.x[p] ^ b.x[q]) & mask
	dz := (b.z[p] ^ b.z[q]) & mask
	b.x[p] ^= dx
	b.x[q] ^= dx
	b.z[p] ^= dz
	b.z[q] ^= dz
}

// MeasureZ returns the Z-basis outcome flips of the masked lanes (set
// where the frame carries an X component) and clears their irrelevant
// post-measurement Z components, mirroring Frame.MeasureZ per lane.
func (b *Batch) MeasureZ(q int, mask uint64) uint64 {
	b.check(q)
	out := b.x[q] & mask
	b.z[q] &^= mask
	return out
}

// MeasureX returns the X-basis outcome flips of the masked lanes (set
// where the frame carries a Z component) and clears their X components.
func (b *Batch) MeasureX(q int, mask uint64) uint64 {
	b.check(q)
	out := b.z[q] & mask
	b.x[q] &^= mask
	return out
}

// Reset clears the frame on q in the masked lanes (fresh |0⟩
// preparation discards errors).
func (b *Batch) Reset(q int, mask uint64) {
	b.check(q)
	b.x[q] &^= mask
	b.z[q] &^= mask
}

// Clear empties the whole frame in every lane.
func (b *Batch) Clear() {
	for i := range b.x {
		b.x[i] = 0
		b.z[i] = 0
	}
}

// Weight returns the number of qubits carrying a non-identity error in
// the given lane.
func (b *Batch) Weight(lane int) int {
	if lane < 0 || lane >= Lanes {
		panic("pauliframe: lane out of range")
	}
	w := 0
	for q := 0; q < b.n; q++ {
		w += int((b.x[q] | b.z[q]) >> uint(lane) & 1)
	}
	return w
}

// DirtyLanes returns the lane mask of trials whose frame is not the
// identity.
func (b *Batch) DirtyLanes() uint64 {
	var m uint64
	for q := 0; q < b.n; q++ {
		m |= b.x[q] | b.z[q]
	}
	return m
}

// Lane extracts one trial's frame as a scalar Frame (for debugging and
// cross-checking against the scalar backend).
func (b *Batch) Lane(lane int) *Frame {
	if lane < 0 || lane >= Lanes {
		panic("pauliframe: lane out of range")
	}
	f := New(b.n)
	for q := 0; q < b.n; q++ {
		f.setX(q, b.x[q]>>uint(lane)&1 == 1)
		f.setZ(q, b.z[q]>>uint(lane)&1 == 1)
	}
	return f
}

// PopulationWeight returns the total number of set error bits across
// all lanes and qubits (X and Z components counted separately).
func (b *Batch) PopulationWeight() int {
	w := 0
	for q := 0; q < b.n; q++ {
		w += bits.OnesCount64(b.x[q]) + bits.OnesCount64(b.z[q])
	}
	return w
}
