package pauliframe

import (
	"math/rand/v2"
	"testing"
)

// TestBatchMatchesScalarFrames drives a Batch and 64 independent scalar
// Frames through the same random masked program and requires every lane
// to match its scalar twin bit for bit — the defining property of the
// bit-sliced layout.
func TestBatchMatchesScalarFrames(t *testing.T) {
	const n = 23
	rng := rand.New(rand.NewPCG(7, 11))
	b := NewBatch(n)
	var fs [Lanes]*Frame
	for l := range fs {
		fs[l] = New(n)
	}
	agree := func(step int) {
		for l := 0; l < Lanes; l++ {
			for q := 0; q < n; q++ {
				if fs[l].XBit(q) != (b.XBits(q)>>uint(l)&1 == 1) ||
					fs[l].ZBit(q) != (b.ZBits(q)>>uint(l)&1 == 1) {
					t.Fatalf("step %d: lane %d diverged from scalar frame on qubit %d", step, l, q)
				}
			}
		}
	}
	for step := 0; step < 4000; step++ {
		mask := rng.Uint64()
		q := rng.IntN(n)
		p := rng.IntN(n)
		for p == q {
			p = rng.IntN(n)
		}
		op := rng.IntN(12)
		for l := 0; l < Lanes; l++ {
			on := mask>>uint(l)&1 == 1
			if !on {
				continue
			}
			switch op {
			case 0:
				fs[l].H(q)
			case 1:
				fs[l].S(q)
			case 2:
				fs[l].Sdg(q)
			case 3:
				fs[l].CNOT(p, q)
			case 4:
				fs[l].CZ(p, q)
			case 5:
				fs[l].SWAP(p, q)
			case 6:
				fs[l].InjectX(q)
			case 7:
				fs[l].InjectZ(q)
			case 8:
				fs[l].InjectY(q)
			case 9:
				fs[l].Reset(q)
			case 10:
				fs[l].MeasureZ(q)
			case 11:
				fs[l].MeasureX(q)
			}
		}
		switch op {
		case 0:
			b.H(q, mask)
		case 1:
			b.S(q, mask)
		case 2:
			b.Sdg(q, mask)
		case 3:
			b.CNOT(p, q, mask)
		case 4:
			b.CZ(p, q, mask)
		case 5:
			b.SWAP(p, q, mask)
		case 6:
			b.InjectX(q, mask)
		case 7:
			b.InjectZ(q, mask)
		case 8:
			b.InjectY(q, mask)
		case 9:
			b.Reset(q, mask)
		case 10:
			// Outcomes must agree lane-wise too.
			out := b.MeasureZ(q, mask)
			for l := 0; l < Lanes; l++ {
				if mask>>uint(l)&1 == 0 {
					continue
				}
				// Scalar outcome was consumed above; recompute from the
				// invariant instead: outcome bit == pre-measure X bit,
				// which MeasureZ leaves in place.
				want := uint64(0)
				if fs[l].XBit(q) {
					want = 1
				}
				if out>>uint(l)&1 != want {
					t.Fatalf("step %d: lane %d MeasureZ outcome mismatch", step, l)
				}
			}
		case 11:
			b.MeasureX(q, mask)
		}
		if step%512 == 0 {
			agree(step)
		}
	}
	agree(4000)
}

// TestBatchZeroMaskIsNoop: an op masked to zero lanes must leave the
// batch untouched.
func TestBatchZeroMaskIsNoop(t *testing.T) {
	b := NewBatch(4)
	b.InjectX(0, ^uint64(0))
	b.InjectZ(1, 0xF0F0)
	before := [][2]uint64{}
	for q := 0; q < 4; q++ {
		before = append(before, [2]uint64{b.XBits(q), b.ZBits(q)})
	}
	b.H(0, 0)
	b.S(1, 0)
	b.CNOT(0, 1, 0)
	b.CZ(2, 3, 0)
	b.SWAP(0, 3, 0)
	b.Reset(0, 0)
	if out := b.MeasureZ(0, 0); out != 0 {
		t.Fatalf("zero-mask MeasureZ returned %x", out)
	}
	for q := 0; q < 4; q++ {
		if b.XBits(q) != before[q][0] || b.ZBits(q) != before[q][1] {
			t.Fatalf("zero-mask ops disturbed qubit %d", q)
		}
	}
}

// TestBatchLaneAndDirty covers the lane-extraction helpers.
func TestBatchLaneAndDirty(t *testing.T) {
	b := NewBatch(3)
	if b.DirtyLanes() != 0 {
		t.Fatal("fresh batch must be clean")
	}
	b.InjectX(1, 1<<5)
	b.InjectZ(2, 1<<9)
	if b.DirtyLanes() != 1<<5|1<<9 {
		t.Fatalf("dirty lanes = %x", b.DirtyLanes())
	}
	f := b.Lane(5)
	if !f.XBit(1) || f.ZBit(2) {
		t.Fatal("Lane(5) extraction wrong")
	}
	if b.Weight(5) != 1 || b.Weight(0) != 0 {
		t.Fatal("per-lane weight wrong")
	}
	if b.PopulationWeight() != 2 {
		t.Fatalf("population weight = %d", b.PopulationWeight())
	}
	b.Clear()
	if b.DirtyLanes() != 0 {
		t.Fatal("Clear must empty every lane")
	}
}
