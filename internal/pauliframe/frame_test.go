package pauliframe

import (
	"math/rand/v2"
	"testing"

	"qla/internal/pauli"
	"qla/internal/stabilizer"
)

func TestInjectAndMeasure(t *testing.T) {
	f := New(3)
	if !f.IsClean() {
		t.Fatal("fresh frame not clean")
	}
	f.InjectX(1)
	if f.MeasureZ(1) != 1 {
		t.Error("X error should flip Z measurement")
	}
	if f.MeasureZ(0) != 0 {
		t.Error("clean qubit should not flip")
	}
	f.Clear()
	f.InjectZ(2)
	if f.MeasureZ(2) != 0 {
		t.Error("Z error should not flip Z measurement")
	}
	f.Clear()
	f.InjectZ(2)
	if f.MeasureX(2) != 1 {
		t.Error("Z error should flip X measurement")
	}
}

func TestHPropagation(t *testing.T) {
	f := New(1)
	f.InjectX(0)
	f.H(0)
	if !f.ZBit(0) || f.XBit(0) {
		t.Error("H should map X -> Z")
	}
	f.H(0)
	if !f.XBit(0) || f.ZBit(0) {
		t.Error("H should map Z -> X")
	}
	f.Clear()
	f.InjectY(0)
	f.H(0)
	if !(f.XBit(0) && f.ZBit(0)) {
		t.Error("H should fix Y")
	}
}

func TestSPropagation(t *testing.T) {
	f := New(1)
	f.InjectX(0)
	f.S(0)
	if !(f.XBit(0) && f.ZBit(0)) {
		t.Error("S should map X -> Y")
	}
	f.Clear()
	f.InjectZ(0)
	f.S(0)
	if f.XBit(0) || !f.ZBit(0) {
		t.Error("S should fix Z")
	}
}

func TestCNOTPropagation(t *testing.T) {
	// X on control copies to target.
	f := New(2)
	f.InjectX(0)
	f.CNOT(0, 1)
	if !f.XBit(0) || !f.XBit(1) {
		t.Error("CNOT should copy X from control to target")
	}
	// Z on target copies to control.
	f.Clear()
	f.InjectZ(1)
	f.CNOT(0, 1)
	if !f.ZBit(0) || !f.ZBit(1) {
		t.Error("CNOT should copy Z from target to control")
	}
	// X on target stays put.
	f.Clear()
	f.InjectX(1)
	f.CNOT(0, 1)
	if f.XBit(0) || !f.XBit(1) {
		t.Error("CNOT should leave X on target alone")
	}
}

func TestReset(t *testing.T) {
	f := New(2)
	f.InjectY(0)
	f.InjectY(1)
	f.Reset(0)
	if f.XBit(0) || f.ZBit(0) {
		t.Error("Reset should clear the frame on the qubit")
	}
	if !f.XBit(1) {
		t.Error("Reset should not touch other qubits")
	}
	if f.Weight() != 1 {
		t.Errorf("Weight = %d, want 1", f.Weight())
	}
}

func TestPauliRoundTrip(t *testing.T) {
	f := New(5)
	f.InjectX(0)
	f.InjectY(2)
	f.InjectZ(4)
	p := f.Pauli()
	if p.String() != "+XIYIZ" {
		t.Errorf("Pauli() = %s", p)
	}
	g := New(5)
	g.SetPauli(p)
	if g.Pauli().String() != "+XIYIZ" {
		t.Errorf("SetPauli round trip = %s", g.Pauli())
	}
}

// TestFrameMatchesTableau is the key equivalence property: propagating a
// random Pauli error through a random Clifford circuit with the frame gives
// the same operator as conjugating it on the full tableau.
func TestFrameMatchesTableau(t *testing.T) {
	r := rand.New(rand.NewPCG(42, 43))
	for trial := 0; trial < 60; trial++ {
		n := 2 + r.IntN(8)
		type gate struct{ kind, a, b int }
		var gates []gate
		for g := 0; g < 50; g++ {
			k := r.IntN(5)
			a := r.IntN(n)
			b := r.IntN(n)
			for b == a {
				b = r.IntN(n)
			}
			gates = append(gates, gate{k, a, b})
		}
		// Random initial error.
		errP := pauli.NewIdentity(n)
		for q := 0; q < n; q++ {
			errP.Set(q, "IXYZ"[r.IntN(4)])
		}

		// Frame path.
		f := New(n)
		f.SetPauli(errP)
		apply := func(k, a, b int) {
			switch k {
			case 0:
				f.H(a)
			case 1:
				f.S(a)
			case 2:
				f.CNOT(a, b)
			case 3:
				f.CZ(a, b)
			case 4:
				f.SWAP(a, b)
			}
		}
		for _, g := range gates {
			apply(g.kind, g.a, g.b)
		}
		frameResult := f.Pauli()

		// Tableau path: prepare two states differing by errP, run the same
		// Clifford on both; the final states must differ by frameResult.
		s1 := stabilizer.NewSeeded(n, uint64(trial)+1)
		s2 := stabilizer.NewSeeded(n, uint64(trial)+1)
		// Scramble the start state identically on both.
		for q := 0; q < n; q++ {
			if r.IntN(2) == 0 {
				s1.H(q)
				s2.H(q)
			}
		}
		s2.ApplyPauli(errP)
		runTab := func(s *stabilizer.State) {
			for _, g := range gates {
				switch g.kind {
				case 0:
					s.H(g.a)
				case 1:
					s.S(g.a)
				case 2:
					s.CNOT(g.a, g.b)
				case 3:
					s.CZ(g.a, g.b)
				case 4:
					s.SWAP(g.a, g.b)
				}
			}
		}
		runTab(s1)
		runTab(s2)
		// Applying the frame's Pauli to s2 must recover s1.
		s2.ApplyPauli(frameResult)
		if !s1.SameState(s2) {
			t.Fatalf("trial %d: frame disagrees with tableau conjugation", trial)
		}
	}
}

func TestCZSymmetric(t *testing.T) {
	f := New(2)
	f.InjectX(0)
	f.CZ(0, 1)
	if !f.XBit(0) || !f.ZBit(1) {
		t.Error("CZ should add Z on the far side of an X error")
	}
}

func TestSWAP(t *testing.T) {
	f := New(2)
	f.InjectY(0)
	f.SWAP(0, 1)
	if f.XBit(0) || f.ZBit(0) || !f.XBit(1) || !f.ZBit(1) {
		t.Error("SWAP should move the whole error")
	}
}

func TestClone(t *testing.T) {
	f := New(2)
	f.InjectX(0)
	g := f.Clone()
	g.InjectX(1)
	if f.XBit(1) {
		t.Error("Clone should not share storage")
	}
}

func BenchmarkFrameCNOT(b *testing.B) {
	f := New(1024)
	f.InjectX(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.CNOT(i%1023, (i%1023)+1)
	}
}
