// Package pauliframe implements Pauli-frame simulation: tracking only the
// error displacement of a noisy Clifford circuit relative to its noiseless
// reference execution.
//
// For stabilizer circuits with Pauli noise this is exactly equivalent to
// full stabilizer simulation (the frame commutes through Clifford gates by
// conjugation), but costs O(1) per gate instead of O(n). It is the fast
// path used for the paper's Figure-7 threshold Monte Carlo, where millions
// of level-2 error-correction circuits must be sampled.
//
// Two layouts are provided: Frame simulates one trial (one bit per qubit
// per error component), and Batch bit-slices 64 independent trials into
// each word (see batch.go), turning gate propagation and measurement into
// branch-free lane-parallel bitwise operations.
//
// Measurement semantics: MeasureZ returns the bit by which the noisy
// outcome differs from the noiseless reference outcome. Circuits whose
// decoded quantities (syndromes, verification parities, logical parities)
// are deterministically zero in the noiseless run — which holds for all the
// fault-tolerant gadgets in this repository — can therefore treat the
// returned bit directly as the measured value.
package pauliframe

import (
	"fmt"
	"math/bits"

	"qla/internal/pauli"
)

// Frame is the Pauli error frame over n qubits.
type Frame struct {
	n int
	x []uint64
	z []uint64
}

// New returns an empty (all-identity) frame over n qubits.
func New(n int) *Frame {
	if n <= 0 {
		panic("pauliframe: number of qubits must be positive")
	}
	w := (n + 63) / 64
	return &Frame{n: n, x: make([]uint64, w), z: make([]uint64, w)}
}

// N returns the number of qubits.
func (f *Frame) N() int { return f.n }

func (f *Frame) check(q int) {
	if q < 0 || q >= f.n {
		panic(fmt.Sprintf("pauliframe: qubit %d out of range [0,%d)", q, f.n))
	}
}

// XBit reports whether the frame has an X error component on q.
func (f *Frame) XBit(q int) bool { f.check(q); return f.x[q/64]>>(uint(q)%64)&1 == 1 }

// ZBit reports whether the frame has a Z error component on q.
func (f *Frame) ZBit(q int) bool { f.check(q); return f.z[q/64]>>(uint(q)%64)&1 == 1 }

// InjectX multiplies an X error onto qubit q.
func (f *Frame) InjectX(q int) { f.check(q); f.x[q/64] ^= 1 << (uint(q) % 64) }

// InjectZ multiplies a Z error onto qubit q.
func (f *Frame) InjectZ(q int) { f.check(q); f.z[q/64] ^= 1 << (uint(q) % 64) }

// InjectY multiplies a Y error onto qubit q.
func (f *Frame) InjectY(q int) { f.InjectX(q); f.InjectZ(q) }

// Inject multiplies the k-th non-identity Pauli (0=X, 1=Y, 2=Z) onto q;
// used by depolarizing samplers.
func (f *Frame) Inject(q, k int) {
	switch k {
	case 0:
		f.InjectX(q)
	case 1:
		f.InjectY(q)
	case 2:
		f.InjectZ(q)
	default:
		panic("pauliframe: Inject index out of range")
	}
}

// --- Clifford propagation (conjugation of the frame) ---

// H propagates the frame through a Hadamard on q (X <-> Z).
func (f *Frame) H(q int) {
	f.check(q)
	w, m := q/64, uint64(1)<<(uint(q)%64)
	xb, zb := f.x[w]&m, f.z[w]&m
	if (xb != 0) != (zb != 0) {
		f.x[w] ^= m
		f.z[w] ^= m
	}
}

// S propagates the frame through a phase gate on q (X -> Y).
func (f *Frame) S(q int) {
	f.check(q)
	w, m := q/64, uint64(1)<<(uint(q)%64)
	if f.x[w]&m != 0 {
		f.z[w] ^= m
	}
}

// Sdg propagates the frame through an inverse phase gate (same bit action
// as S; the sign difference is invisible to the frame).
func (f *Frame) Sdg(q int) { f.S(q) }

// CNOT propagates the frame through a controlled-NOT: X errors copy
// control->target, Z errors copy target->control.
func (f *Frame) CNOT(c, t int) {
	f.check(c)
	f.check(t)
	cw, cm := c/64, uint64(1)<<(uint(c)%64)
	tw, tm := t/64, uint64(1)<<(uint(t)%64)
	if f.x[cw]&cm != 0 {
		f.x[tw] ^= tm
	}
	if f.z[tw]&tm != 0 {
		f.z[cw] ^= cm
	}
}

// CZ propagates the frame through a controlled-Z.
func (f *Frame) CZ(a, b int) {
	f.check(a)
	f.check(b)
	aw, am := a/64, uint64(1)<<(uint(a)%64)
	bw, bm := b/64, uint64(1)<<(uint(b)%64)
	if f.x[aw]&am != 0 {
		f.z[bw] ^= bm
	}
	if f.x[bw]&bm != 0 {
		f.z[aw] ^= am
	}
}

// SWAP exchanges the frame bits of a and b.
func (f *Frame) SWAP(a, b int) {
	f.check(a)
	f.check(b)
	ax, az := f.XBit(a), f.ZBit(a)
	bx, bz := f.XBit(b), f.ZBit(b)
	f.setX(a, bx)
	f.setZ(a, bz)
	f.setX(b, ax)
	f.setZ(b, az)
}

func (f *Frame) setX(q int, v bool) {
	w, m := q/64, uint64(1)<<(uint(q)%64)
	if v {
		f.x[w] |= m
	} else {
		f.x[w] &^= m
	}
}

func (f *Frame) setZ(q int, v bool) {
	w, m := q/64, uint64(1)<<(uint(q)%64)
	if v {
		f.z[w] |= m
	} else {
		f.z[w] &^= m
	}
}

// MeasureZ returns the Z-basis outcome flip of qubit q (1 when the frame
// carries an X component) and leaves the frame untouched; the measured
// qubit's post-measurement Z component is irrelevant and cleared.
func (f *Frame) MeasureZ(q int) int {
	f.check(q)
	out := 0
	if f.XBit(q) {
		out = 1
	}
	f.setZ(q, false)
	return out
}

// MeasureX returns the X-basis outcome flip (1 when the frame carries a Z
// component); the X component is cleared.
func (f *Frame) MeasureX(q int) int {
	f.check(q)
	out := 0
	if f.ZBit(q) {
		out = 1
	}
	f.setX(q, false)
	return out
}

// Reset clears the frame on q (fresh |0⟩ preparation discards errors).
func (f *Frame) Reset(q int) {
	f.setX(q, false)
	f.setZ(q, false)
}

// Clear empties the whole frame.
func (f *Frame) Clear() {
	for i := range f.x {
		f.x[i] = 0
		f.z[i] = 0
	}
}

// Weight returns the number of qubits carrying a non-identity error.
func (f *Frame) Weight() int {
	w := 0
	for i := range f.x {
		w += bits.OnesCount64(f.x[i] | f.z[i])
	}
	return w
}

// IsClean reports whether the frame is the identity.
func (f *Frame) IsClean() bool {
	for i := range f.x {
		if f.x[i] != 0 || f.z[i] != 0 {
			return false
		}
	}
	return true
}

// Pauli exports the frame as a Pauli string (phase +).
func (f *Frame) Pauli() pauli.String {
	p := pauli.NewIdentity(f.n)
	copy(p.X, f.x)
	copy(p.Z, f.z)
	return p
}

// SetPauli overwrites the frame with the content of p (phase ignored).
func (f *Frame) SetPauli(p pauli.String) {
	if p.N != f.n {
		panic("pauliframe: SetPauli size mismatch")
	}
	copy(f.x, p.X)
	copy(f.z, p.Z)
}

// Clone returns an independent copy of the frame.
func (f *Frame) Clone() *Frame {
	c := New(f.n)
	copy(c.x, f.x)
	copy(c.z, f.z)
	return c
}
