// Package core composes the QLA microarchitecture model — the paper's
// primary contribution: an array of level-2 Steane-encoded logical qubits
// (Figure 5) on a QCCD substrate, connected by a teleportation-island
// interconnect (Figure 1), with error correction as the clock tick.
//
// The Machine answers architecture-level questions: what does a logical
// gate cost, can a given communication hide under the EC step, what is the
// logical failure rate, how large a computation fits, how long does a
// mapped circuit run.
package core

import (
	"fmt"

	"qla/internal/circuit"
	"qla/internal/ft"
	"qla/internal/iontrap"
	"qla/internal/layout"
	"qla/internal/teleport"
)

// Machine is a configured QLA instance.
type Machine struct {
	Params    iontrap.Params
	Floorplan layout.Floorplan
	Latency   *ft.LatencyModel
	Link      teleport.LinkParams
	Level     int // recursion level of every logical qubit
	Bandwidth int // physical channels per direction (paper: 2)

	ecStep float64
}

// Option configures a Machine.
type Option func(*Machine)

// WithParams overrides the technology parameters (default: Expected).
func WithParams(p iontrap.Params) Option {
	return func(m *Machine) { m.Params = p }
}

// WithLevel overrides the recursion level (default 2).
func WithLevel(level int) Option {
	return func(m *Machine) { m.Level = level }
}

// WithBandwidth overrides the channel bandwidth (default 2).
func WithBandwidth(b int) Option {
	return func(m *Machine) { m.Bandwidth = b }
}

// New builds a QLA machine holding the given number of logical qubits.
func New(logicalQubits int, opts ...Option) (*Machine, error) {
	fp, err := layout.NewFloorplan(logicalQubits)
	if err != nil {
		return nil, err
	}
	m := &Machine{
		Params:    iontrap.Expected(),
		Floorplan: fp,
		Link:      teleport.DefaultLinkParams(),
		Level:     2,
		Bandwidth: 2,
	}
	for _, o := range opts {
		o(m)
	}
	if m.Level < 1 || m.Level > 4 {
		return nil, fmt.Errorf("core: recursion level %d out of the modeled range [1,4]", m.Level)
	}
	if m.Bandwidth < 1 {
		return nil, fmt.Errorf("core: bandwidth must be at least 1")
	}
	if err := m.Params.Validate(); err != nil {
		return nil, err
	}
	m.Latency = ft.NewLatencyModel(m.Params)
	m.Link.P = m.Params
	m.ecStep = m.Latency.ECTime(m.Level)
	return m, nil
}

// LogicalQubits returns the machine's capacity.
func (m *Machine) LogicalQubits() int { return m.Floorplan.Q }

// ECStepTime is the architecture's clock tick: one level-L error
// correction step (0.043 s at level 2 under expected parameters).
func (m *Machine) ECStepTime() float64 { return m.ecStep }

// AreaM2 returns the chip area.
func (m *Machine) AreaM2() float64 { return m.Floorplan.AreaM2() }

// PhysicalIons returns the number of ions on the machine: every logical
// qubit tile carries a full Figure-5 structure (21 level-1 groups of 21
// ions) plus verification banks.
func (m *Machine) PhysicalIons() int {
	perTile := 21*21 + 2*49 // data+ancilla conglomerations + verification banks
	return m.Floorplan.Q * perTile
}

// LogicalFailureRate evaluates Equation 2 at the machine's level with the
// empirical QLA threshold.
func (m *Machine) LogicalFailureRate() float64 {
	return ft.GottesmanFailure(m.Params.AverageComponentFailure(), ft.PthEmpiricalQLA,
		float64(layout.InterBlockCells), m.Level)
}

// MaxComputationSize returns S = K·Q supportable at the machine's logical
// failure rate.
func (m *Machine) MaxComputationSize() float64 {
	return ft.MaxSystemSize(m.LogicalFailureRate())
}

// CommunicationTime plans a teleportation connection between two logical
// qubits and returns its latency.
func (m *Machine) CommunicationTime(a, b int) (float64, error) {
	d := m.Floorplan.DistanceCells(a, b)
	if d == 0 {
		return 0, nil
	}
	_, t, err := m.Link.BestSeparation(d)
	return t, err
}

// Overlapped reports whether the communication between two logical qubits
// hides entirely under one EC step (the paper's headline interconnect
// property: "the complete overlap between communication and computation").
func (m *Machine) Overlapped(a, b int) (bool, error) {
	t, err := m.CommunicationTime(a, b)
	if err != nil {
		return false, err
	}
	return t <= m.ecStep, nil
}

// GateCost returns the latency of one logical operation in EC steps:
// every logical gate is followed by an error-correction step, so
// transversal one- and two-qubit gates cost one step; a fault-tolerant
// Toffoli costs 21 (Section 5).
func (m *Machine) GateCost(t circuit.OpType) int {
	switch {
	case t == circuit.CNOT || t == circuit.CZ || t == circuit.SWAP:
		return 1
	case t.IsMeasurement():
		return 1
	default:
		return 1
	}
}

// ToffoliCost is the EC-step cost of a fault-tolerant Toffoli.
func (m *Machine) ToffoliCost() int { return ft.ToffoliECSteps }

// Report summarizes the estimated execution of a mapped circuit.
type Report struct {
	LogicalQubits  int
	ECSteps        int64
	Seconds        float64
	CommOverlapped int // two-qubit gates whose communication hid under EC
	CommExposed    int // two-qubit gates that stalled on communication
	ExtraCommTime  float64
	FailureBudget  float64 // S consumed / S available
}

// EstimateCircuit walks a logical circuit mapped onto the machine
// (placement[i] = tile of circuit qubit i; nil means identity) and
// estimates its wall-clock time, charging one EC step per logical gate
// layer and checking communication overlap for two-qubit gates.
func (m *Machine) EstimateCircuit(c *circuit.Circuit, placement []int) (Report, error) {
	if placement == nil {
		placement = make([]int, c.N)
		for i := range placement {
			placement[i] = i
		}
	}
	if len(placement) != c.N {
		return Report{}, fmt.Errorf("core: placement covers %d of %d qubits", len(placement), c.N)
	}
	for _, p := range placement {
		if p < 0 || p >= m.Floorplan.Q {
			return Report{}, fmt.Errorf("core: placement target %d outside the %d-qubit machine", p, m.Floorplan.Q)
		}
	}
	var rep Report
	rep.LogicalQubits = c.N
	for _, l := range c.Layers() {
		rep.ECSteps++ // one EC step per logical layer
		for _, op := range l {
			if !op.Type.IsTwoQubit() {
				continue
			}
			t, err := m.CommunicationTime(placement[op.Q[0]], placement[op.Q[1]])
			if err != nil {
				return Report{}, fmt.Errorf("core: qubits %d-%d unreachable: %w", op.Q[0], op.Q[1], err)
			}
			if t <= m.ecStep {
				rep.CommOverlapped++
			} else {
				rep.CommExposed++
				rep.ExtraCommTime += t - m.ecStep
			}
		}
	}
	rep.Seconds = float64(rep.ECSteps)*m.ecStep + rep.ExtraCommTime
	ops := float64(len(c.Ops))
	rep.FailureBudget = ops * float64(c.N) / m.MaxComputationSize()
	return rep, nil
}
