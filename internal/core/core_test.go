package core

import (
	"testing"

	"qla/internal/circuit"
	"qla/internal/iontrap"
)

func TestNewDefaults(t *testing.T) {
	m, err := New(100)
	if err != nil {
		t.Fatal(err)
	}
	if m.LogicalQubits() != 100 {
		t.Errorf("capacity = %d", m.LogicalQubits())
	}
	if m.Level != 2 || m.Bandwidth != 2 {
		t.Errorf("defaults wrong: level %d bandwidth %d", m.Level, m.Bandwidth)
	}
	// The clock tick is the paper's 0.043 s level-2 EC step (±20%).
	if ec := m.ECStepTime(); ec < 0.035 || ec > 0.050 {
		t.Errorf("EC step = %.4f s, want ≈0.043", ec)
	}
}

func TestOptionsAndValidation(t *testing.T) {
	m, err := New(10, WithLevel(1), WithBandwidth(4), WithParams(iontrap.Current()))
	if err != nil {
		t.Fatal(err)
	}
	if m.Level != 1 || m.Bandwidth != 4 || m.Params.Name != "current" {
		t.Error("options not applied")
	}
	if _, err := New(0); err == nil {
		t.Error("zero qubits should fail")
	}
	if _, err := New(10, WithLevel(9)); err == nil {
		t.Error("absurd level should fail")
	}
	if _, err := New(10, WithBandwidth(0)); err == nil {
		t.Error("zero bandwidth should fail")
	}
}

func TestPhysicalIons(t *testing.T) {
	// Section 7: "a system of 7×10⁶ physical ions to be able to implement
	// Shor's algorithm to factor a 128-bit number". 37971 tiles × ions per
	// tile should land within a small factor of that.
	m, err := New(37971)
	if err != nil {
		t.Fatal(err)
	}
	ions := m.PhysicalIons()
	if ions < 5e6 || ions > 5e7 {
		t.Errorf("Shor-128 machine has %d ions; paper says ≈7e6 (same order)", ions)
	}
}

func TestFailureBudget(t *testing.T) {
	m, err := New(100)
	if err != nil {
		t.Fatal(err)
	}
	// With the empirical threshold the level-2 machine supports ≈1e20+
	// elementary steps (Section 4.1.3: "approaching 10⁻²¹" failure).
	if s := m.MaxComputationSize(); s < 1e19 {
		t.Errorf("max computation size = %.3g, want ≥1e19", s)
	}
}

func TestCommunicationOverlap(t *testing.T) {
	m, err := New(400)
	if err != nil {
		t.Fatal(err)
	}
	// Neighbours communicate well under one EC step.
	ok, err := m.Overlapped(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("adjacent qubits should overlap communication with EC")
	}
	// Self-communication is free.
	if tm, _ := m.CommunicationTime(5, 5); tm != 0 {
		t.Error("self communication should cost nothing")
	}
	// Far corners still resolve to a finite plan.
	tm, err := m.CommunicationTime(0, 399)
	if err != nil {
		t.Fatal(err)
	}
	if tm <= 0 {
		t.Error("long-distance communication should take time")
	}
}

func TestEstimateCircuit(t *testing.T) {
	m, err := New(16)
	if err != nil {
		t.Fatal(err)
	}
	c := circuit.New(4)
	c.H(0).CNOT(0, 1).CNOT(2, 3).CNOT(1, 2).MeasureZ(3)
	rep, err := m.EstimateCircuit(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Layers: [H, CNOT01|CNOT23? H blocks q0...] — depth from circuit.
	if rep.ECSteps != int64(c.Depth()) {
		t.Errorf("EC steps = %d, want depth %d", rep.ECSteps, c.Depth())
	}
	if rep.Seconds < float64(rep.ECSteps)*m.ECStepTime() {
		t.Error("wall clock below EC floor")
	}
	if rep.CommOverlapped+rep.CommExposed != 3 {
		t.Errorf("two-qubit gates accounted = %d, want 3", rep.CommOverlapped+rep.CommExposed)
	}
	if rep.FailureBudget <= 0 || rep.FailureBudget >= 1 {
		t.Errorf("failure budget = %g, want small positive", rep.FailureBudget)
	}
}

func TestEstimateCircuitPlacementErrors(t *testing.T) {
	m, _ := New(4)
	c := circuit.New(2)
	c.CNOT(0, 1)
	if _, err := m.EstimateCircuit(c, []int{0}); err == nil {
		t.Error("short placement should fail")
	}
	if _, err := m.EstimateCircuit(c, []int{0, 99}); err == nil {
		t.Error("out-of-machine placement should fail")
	}
}

func TestLevelAffectsClock(t *testing.T) {
	m1, _ := New(10, WithLevel(1))
	m2, _ := New(10, WithLevel(2))
	if m2.ECStepTime() <= m1.ECStepTime() {
		t.Error("level-2 EC step must exceed level-1")
	}
	if m2.LogicalFailureRate() >= m1.LogicalFailureRate() {
		t.Error("below threshold, level 2 must be more reliable")
	}
}
