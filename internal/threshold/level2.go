package threshold

import "qla/internal/steane"

// l2sim lays out a full level-2 logical qubit per Figure 5: seven level-1
// data groups in the middle, and two ancilla conglomerations of seven
// level-1 groups each (one per syndrome kind, enabling parallel X/Z
// extraction), each with a 49-ion level-2 verification bank.
type l2sim struct {
	sim
	data   [7]Group
	xSide  [7]Group
	zSide  [7]Group
	xVerif [49]int
	zVerif [49]int
}

// l2FrameSize is the number of physical qubits simulated for one level-2
// logical qubit: 21 groups of 21 ions plus two 49-ion verification banks.
const l2FrameSize = 21*groupSize + 2*49

func newL2Layout() ([7]Group, [7]Group, [7]Group, [49]int, [49]int) {
	var data, xs, zs [7]Group
	base := 0
	for b := 0; b < 7; b++ {
		data[b] = makeGroup(base)
		base += groupSize
	}
	for b := 0; b < 7; b++ {
		xs[b] = makeGroup(base)
		base += groupSize
	}
	for b := 0; b < 7; b++ {
		zs[b] = makeGroup(base)
		base += groupSize
	}
	var xv, zv [49]int
	for i := 0; i < 49; i++ {
		xv[i] = base + i
		zv[i] = base + 49 + i
	}
	return data, xs, zs, xv, zv
}

// logicalCNOTL1 applies a level-1 logical CNOT between two groups
// (transversal physical CNOTs; the target block's ions travel), followed
// by level-1 EC of both blocks — the fault-tolerance rule the QLA design
// obeys after every logical gate.
func (s *l2sim) logicalCNOTL1(from, to Group, withEC bool) {
	for i := 0; i < 7; i++ {
		s.cnotInter(from.Data[i], to.Data[i], to.Data[i])
	}
	if withEC {
		s.l1EC(from)
		s.l1EC(to)
	}
}

// prepL2Zero prepares a verified level-2 |0>_L on the given conglomeration:
// seven verified level-1 blocks, the transversal encoder at the logical
// level with level-1 EC after each logical CNOT, then a level-2
// verification copy onto the 49-ion bank, hierarchically decoded; a
// residual logical error in any sub-block restarts the preparation.
func (s *l2sim) prepL2Zero(side *[7]Group, verif *[49]int) {
	for attempt := 0; attempt < maxPrepAttempts; attempt++ {
		for b := 0; b < 7; b++ {
			// Each level-1 block of the conglomeration is prepared with
			// the full two-screen verified preparation.
			s.prepVerifiedZero(side[b].Data, side[b].Verif)
		}
		// Logical-level encoder: H on pivot blocks 3, 1, 0. Level-1 EC
		// between encoder stages is unnecessary here — the level-2
		// verification bank screens the finished ancilla, and skipping it
		// keeps the ancilla preparation lean (the paper's design goal:
		// "reduce ... the ancillary qubits required by the error
		// correction algorithm" at the cost of EC time elsewhere).
		for _, b := range [3]int{3, 1, 0} {
			for _, q := range side[b].Data {
				s.h(q)
			}
		}
		for _, p := range encoderCNOTs {
			s.logicalCNOTL1(side[p[0]], side[p[1]], false)
		}
		// Level-2 verification.
		for i := 0; i < 49; i++ {
			s.prep0(verif[i])
		}
		for b := 0; b < 7; b++ {
			for i := 0; i < 7; i++ {
				s.cnotInter(side[b].Data[i], verif[b*7+i], verif[b*7+i])
			}
		}
		var ell [7]int
		for b := 0; b < 7; b++ {
			var w [7]int
			for i := 0; i < 7; i++ {
				w[i] = s.measureZ(verif[b*7+i])
			}
			ell[b] = steane.DecodeBlock(w)
		}
		ok := true
		for b := 0; b < 7; b++ {
			if ell[b] != 0 {
				ok = false
			}
		}
		if ok {
			return
		}
		s.prepRetries++
	}
}

// prepL2Plus prepares a verified level-2 |+>_L: |0>_L then transversal H.
func (s *l2sim) prepL2Plus(side *[7]Group, verif *[49]int) {
	s.prepL2Zero(side, verif)
	for b := 0; b < 7; b++ {
		for _, q := range side[b].Data {
			s.h(q)
		}
	}
}

// l2ExtractX extracts the level-2 bit-flip syndrome: verified |0>_L2
// ancilla conglomeration, transversal logical CNOT data->ancilla,
// hierarchical readout decode. blockSyn reports whether any sub-block
// word carried a non-trivial level-1 syndrome (counted in the paper's
// non-trivial-syndrome statistics).
func (s *l2sim) l2ExtractX() (syn int, blockSyn bool) {
	s.prepL2Zero(&s.xSide, &s.xVerif)
	for b := 0; b < 7; b++ {
		for i := 0; i < 7; i++ {
			s.cnotInter(s.data[b].Data[i], s.xSide[b].Data[i], s.xSide[b].Data[i])
		}
	}
	var ell [7]int
	for b := 0; b < 7; b++ {
		var w [7]int
		for i := 0; i < 7; i++ {
			w[i] = s.measureZ(s.xSide[b].Data[i])
		}
		if steane.Syndrome(w) != 0 {
			blockSyn = true
		}
		ell[b] = steane.DecodeBlock(w)
	}
	return steane.Syndrome(ell), blockSyn
}

// l2ExtractZ extracts the level-2 phase-flip syndrome with a |+>_L2
// ancilla and reversed CNOT direction, reading out in the X basis.
func (s *l2sim) l2ExtractZ() (syn int, blockSyn bool) {
	s.prepL2Plus(&s.zSide, &s.zVerif)
	for b := 0; b < 7; b++ {
		for i := 0; i < 7; i++ {
			s.cnotInter(s.zSide[b].Data[i], s.data[b].Data[i], s.zSide[b].Data[i])
		}
	}
	var ell [7]int
	for b := 0; b < 7; b++ {
		var w [7]int
		for i := 0; i < 7; i++ {
			w[i] = s.measureX(s.zSide[b].Data[i])
		}
		if steane.Syndrome(w) != 0 {
			blockSyn = true
		}
		ell[b] = steane.DecodeBlock(w)
	}
	return steane.Syndrome(ell), blockSyn
}

// l2ECKind runs one error-kind correction at level 2 with the
// agreeing-syndromes rule; corrections are transversal logical Paulis on
// the identified level-1 block.
func (s *l2sim) l2ECKind(zKind bool) {
	extract := func() int {
		s.extractions[2]++
		var syn int
		var blockSyn bool
		if zKind {
			syn, blockSyn = s.l2ExtractZ()
		} else {
			syn, blockSyn = s.l2ExtractX()
		}
		if syn != 0 || blockSyn {
			s.nontrivial[2]++
		}
		return syn
	}
	syn := extract()
	if syn == 0 {
		return
	}
	use := syn
	prev := syn
	for round := 1; round < maxSyndromeRounds; round++ {
		next := extract()
		if next == prev {
			use = next
			break
		}
		use = next
		prev = next
	}
	if pos := steane.DecodePosition(use); pos >= 0 {
		for _, q := range s.data[pos].Data {
			if zKind {
				s.f.InjectZ(q)
			} else {
				s.f.InjectX(q)
			}
			s.gate1Noise(q)
		}
		// Equation 1's non-trivial branch: "correct the error with the
		// appropriate gate followed by a lower level error correction
		// cycle" — level-1 EC of the corrected block.
		s.l1EC(s.data[pos])
	}
}

// l2EC is one full level-2 error-correction step.
func (s *l2sim) l2EC() {
	s.l2ECKind(false)
	s.l2ECKind(true)
}

// residualFail scores the trial by ideal hierarchical decoding of the
// residual frame over the 49 data ions.
func (s *l2sim) residualFail() bool {
	xs := make([]int, 49)
	zs := make([]int, 49)
	for b := 0; b < 7; b++ {
		for i := 0; i < 7; i++ {
			q := s.data[b].Data[i]
			if s.f.XBit(q) {
				xs[b*7+i] = 1
			}
			if s.f.ZBit(q) {
				zs[b*7+i] = 1
			}
		}
	}
	return steane.DecodeRecursive(xs, 2) != 0 || steane.DecodeRecursive(zs, 2) != 0
}
