package threshold

import (
	"math"
	"reflect"
	"testing"

	"qla/internal/iontrap"
)

// TestBatchSingleFaultEquivalenceLevel1: under deterministic fault
// injection the two backends must agree EXACTLY — same site census,
// and the same logical-failure verdict for every (site, choice) pair.
// The fault is planted in an arbitrary interior lane; every other lane
// runs fault-free and must stay clean.
func TestBatchSingleFaultEquivalenceLevel1(t *testing.T) {
	const lane = 37
	_, scalarTotal := SingleFaultTrial(1, -1, 0)
	_, _, batchTotal := SingleFaultTrialBatch(1, -1, 0, lane)
	if scalarTotal != batchTotal {
		t.Fatalf("site census disagrees: scalar %d, batch %d", scalarTotal, batchTotal)
	}
	for site := int64(0); site < scalarTotal; site++ {
		for choice := 0; choice < 15; choice += 2 {
			want, _ := SingleFaultTrial(1, site, choice)
			got, othersClean, _ := SingleFaultTrialBatch(1, site, choice, lane)
			if got != want {
				t.Fatalf("site %d choice %d: batch fail=%v, scalar fail=%v", site, choice, got, want)
			}
			if !othersClean {
				t.Fatalf("site %d choice %d: fault leaked into other lanes", site, choice)
			}
		}
	}
}

// TestBatchSingleFaultEquivalenceLevel2 strides the (much larger)
// level-2 site space.
func TestBatchSingleFaultEquivalenceLevel2(t *testing.T) {
	const lane = 0
	_, scalarTotal := SingleFaultTrial(2, -1, 0)
	_, _, batchTotal := SingleFaultTrialBatch(2, -1, 0, lane)
	if scalarTotal != batchTotal {
		t.Fatalf("site census disagrees: scalar %d, batch %d", scalarTotal, batchTotal)
	}
	stride := int64(101)
	if testing.Short() {
		stride = 997
	}
	for site := int64(0); site < scalarTotal; site += stride {
		for _, choice := range []int{0, 7, 14} {
			want, _ := SingleFaultTrial(2, site, choice)
			got, othersClean, _ := SingleFaultTrialBatch(2, site, choice, lane)
			if got != want {
				t.Fatalf("site %d choice %d: batch fail=%v, scalar fail=%v", site, choice, got, want)
			}
			if !othersClean {
				t.Fatalf("site %d choice %d: fault leaked into other lanes", site, choice)
			}
		}
	}
}

// zTest returns the two-proportion z statistic for k1/n1 vs k2/n2.
func zTest(k1 int64, n1 int, k2 int64, n2 int) float64 {
	p1 := float64(k1) / float64(n1)
	p2 := float64(k2) / float64(n2)
	pool := float64(k1+k2) / float64(n1+n2)
	if pool == 0 || pool == 1 {
		return 0
	}
	se := math.Sqrt(pool * (1 - pool) * (1/float64(n1) + 1/float64(n2)))
	return math.Abs(p1-p2) / se
}

// TestBatchScalarStatisticalAgreement: at a mid-sweep Figure-7 point
// the two backends draw different random streams but must estimate the
// same failure and non-trivial-syndrome rates. 5σ on fixed seeds is
// deterministic, not flaky.
func TestBatchScalarStatisticalAgreement(t *testing.T) {
	const trials = 30000
	base := Config{Level: 1, PhysError: 2.5e-3, MovePerCell: DefaultMovePerCell, Trials: trials}
	scalar := base
	scalar.Backend = BackendScalar
	scalar.Seed = 101
	sp, err := Run(scalar)
	if err != nil {
		t.Fatal(err)
	}
	batch := base
	batch.Backend = BackendBatch
	batch.Seed = 202
	bp, err := Run(batch)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Failures == 0 || bp.Failures == 0 {
		t.Fatalf("operating point produced no failures (scalar %d, batch %d); test has no power",
			sp.Failures, bp.Failures)
	}
	if z := zTest(int64(sp.Failures), trials, int64(bp.Failures), trials); z > 5 {
		t.Errorf("failure rates disagree: scalar %.4g, batch %.4g (z=%.2f)", sp.FailRate, bp.FailRate, z)
	}
	// The non-trivial syndrome fraction is a per-extraction ratio (the
	// denominators differ between backends), so compare with a relative
	// tolerance rather than a z statistic.
	if diff := math.Abs(sp.NonTrivial - bp.NonTrivial); diff > 0.25*(sp.NonTrivial+bp.NonTrivial)/2+0.01 {
		t.Errorf("non-trivial syndrome fractions disagree: scalar %.4g, batch %.4g", sp.NonTrivial, bp.NonTrivial)
	}
}

// TestBatchScalarAgreementAtTable1Point: the Table-1 operating point
// (expected technology parameters) drives the Section-4.1.1 syndrome
// statistics; the backends must agree there too.
func TestBatchScalarAgreementAtTable1Point(t *testing.T) {
	const trials = 120000
	exp := iontrap.Expected()
	run := func(backend string, seed uint64) Point {
		p, err := Run(Config{
			Level:       1,
			PhysError:   exp.Fail[iontrap.OpDouble],
			MovePerCell: exp.Fail[iontrap.OpMoveCell],
			Trials:      trials,
			Seed:        seed,
			Backend:     backend,
		})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	sp := run(BackendScalar, 301)
	bp := run(BackendBatch, 302)
	if sp.Failures != 0 || bp.Failures != 0 {
		t.Errorf("expected parameters should be failure-free (scalar %d, batch %d)", sp.Failures, bp.Failures)
	}
	// Paper: 3.35e-4 non-trivial syndromes per extraction at level 1.
	for name, p := range map[string]Point{"scalar": sp, "batch": bp} {
		if p.NonTrivial < 3e-5 || p.NonTrivial > 3e-3 {
			t.Errorf("%s: non-trivial syndrome rate %.3g outside the paper's ballpark", name, p.NonTrivial)
		}
	}
	ratio := sp.NonTrivial / bp.NonTrivial
	if ratio < 0.5 || ratio > 2 {
		t.Errorf("backends disagree at the Table-1 point: scalar %.3g, batch %.3g", sp.NonTrivial, bp.NonTrivial)
	}
}

// TestBatchParallelMatchesSerial: the batch backend seeds every
// 64-trial block from its global block index, so results must be
// bit-identical at any worker-pool width — the reproducibility
// contract the spec-hash result cache relies on.
func TestBatchParallelMatchesSerial(t *testing.T) {
	base := Config{
		Level:       1,
		PhysError:   3e-3,
		MovePerCell: DefaultMovePerCell,
		Trials:      4000,
		Seed:        19,
		Backend:     BackendBatch,
	}
	serial := base
	serial.Parallelism = 1
	want, err := Run(serial)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 7, 16, 64} {
		cfg := base
		cfg.Parallelism = workers
		got, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("parallelism %d: %+v != serial %+v", workers, got, want)
		}
	}
}

// TestBatchPartialBlock: trial counts that are not multiples of 64 must
// score only the live lanes.
func TestBatchPartialBlock(t *testing.T) {
	for _, trials := range []int{1, 3, 63, 65, 100} {
		pt, err := Run(Config{
			Level: 1, PhysError: 0, MovePerCell: 0,
			Trials: trials, Seed: 1, Backend: BackendBatch,
		})
		if err != nil {
			t.Fatal(err)
		}
		if pt.Failures != 0 {
			t.Errorf("trials=%d: %d failures with zero noise", trials, pt.Failures)
		}
		if pt.Trials != trials {
			t.Errorf("trials=%d: point reports %d", trials, pt.Trials)
		}
		// One extraction per error kind per live trial, no retries.
		if pt.NonTrivial != 0 || pt.PrepRetry != 0 {
			t.Errorf("trials=%d: clean run produced syndrome activity", trials)
		}
	}
	// Dead lanes must not leak into the statistics at high error rates
	// either: a 1-trial run can at most fail once.
	pt, err := Run(Config{
		Level: 1, PhysError: 0.2, MovePerCell: DefaultMovePerCell,
		Trials: 1, Seed: 7, Backend: BackendBatch,
	})
	if err != nil {
		t.Fatal(err)
	}
	if pt.Failures > 1 {
		t.Errorf("1-trial run reports %d failures", pt.Failures)
	}
}

// TestBatchHighErrorRetries: the masked "Start Over" retry path engages
// under heavy noise.
func TestBatchHighErrorRetries(t *testing.T) {
	pt, err := Run(Config{
		Level: 1, PhysError: 0.2, MovePerCell: DefaultMovePerCell,
		Trials: 640, Seed: 9, Backend: BackendBatch,
	})
	if err != nil {
		t.Fatal(err)
	}
	if pt.FailRate < 0.2 {
		t.Errorf("at p=0.2 the gadget should fail frequently, got %.3f", pt.FailRate)
	}
	if pt.PrepRetry == 0 {
		t.Error("at p=0.2 ancilla verification should be retrying")
	}
}

// TestBackendValidation: unknown backends are rejected, named backends
// are honored.
func TestBackendValidation(t *testing.T) {
	if _, err := Run(Config{Level: 1, PhysError: 1e-3, Trials: 10, Backend: "bogus"}); err == nil {
		t.Error("unknown backend must be rejected")
	}
	for _, b := range []string{"", BackendBatch, BackendScalar} {
		if _, err := Run(Config{Level: 1, PhysError: 1e-3, MovePerCell: DefaultMovePerCell, Trials: 10, Backend: b}); err != nil {
			t.Errorf("backend %q rejected: %v", b, err)
		}
	}
}

// TestBatchLevel2Smoke: the level-2 batched pipeline runs end to end
// and matches the scalar backend's qualitative behavior (failures grow
// with physical error).
func TestBatchLevel2Smoke(t *testing.T) {
	lo, err := Run(Config{Level: 2, PhysError: 1e-3, MovePerCell: DefaultMovePerCell, Trials: 640, Seed: 5, Backend: BackendBatch})
	if err != nil {
		t.Fatal(err)
	}
	hi, err := Run(Config{Level: 2, PhysError: 8e-3, MovePerCell: DefaultMovePerCell, Trials: 640, Seed: 6, Backend: BackendBatch})
	if err != nil {
		t.Fatal(err)
	}
	if hi.FailRate <= lo.FailRate {
		t.Errorf("batch level-2 failure rate did not grow with physical error (%g -> %g)", lo.FailRate, hi.FailRate)
	}
}
