package threshold

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"

	"qla/internal/iontrap"
	"qla/internal/noise"
	"qla/internal/pauliframe"
)

// Config describes one Figure-7 Monte Carlo point.
type Config struct {
	// Level is the recursion level (1 or 2).
	Level int
	// PhysError is the uniform component failure rate applied to gates,
	// measurements and preparations (the sweep variable).
	PhysError float64
	// MovePerCell is the per-cell movement failure rate, pinned to the
	// expected value in the paper's procedure.
	MovePerCell float64
	// Trials is the number of Monte Carlo trials.
	Trials int
	// Seed makes the run reproducible.
	Seed uint64
	// Parallelism bounds the worker-pool width (0 means GOMAXPROCS).
	// Every trial (scalar backend) or 64-trial block (batch backend) is
	// seeded from its global index, so the result is bit-identical at
	// any parallelism for a fixed Seed and Backend.
	Parallelism int
	// Backend selects the Monte Carlo engine: BackendBatch (the
	// default, 64 bit-sliced trials per word) or BackendScalar (the
	// one-trial-at-a-time reference oracle). The two backends draw
	// different random streams from the same Seed, so their results
	// agree statistically, not bit-for-bit.
	Backend string
}

// Monte Carlo backends.
const (
	// BackendBatch is the bit-sliced engine: 64 independent trials per
	// uint64 word, the default (an empty Backend selects it).
	BackendBatch = "batch"
	// BackendScalar is the one-trial-at-a-time reference engine.
	BackendScalar = "scalar"
)

// Point is one measured point of the Figure-7 curves.
type Point struct {
	Level      int
	PhysError  float64
	Failures   int
	Trials     int
	FailRate   float64
	StdErr     float64 // binomial standard error
	NonTrivial float64 // non-trivial syndrome fraction at Level
	PrepRetry  float64 // ancilla re-preparations per trial
}

// DefaultMovePerCell is Table 1's expected movement failure rate.
const DefaultMovePerCell = 1e-6

// Run executes the Monte Carlo for one configuration, parallelized over
// available CPUs with per-shard deterministic seeding.
func Run(cfg Config) (Point, error) { return RunCtx(context.Background(), cfg) }

// RunCtx is Run with cooperative cancellation: workers poll ctx between
// trials and the call returns ctx.Err() if the context ends before the
// last trial completes.
func RunCtx(ctx context.Context, cfg Config) (Point, error) {
	if cfg.Level != 1 && cfg.Level != 2 {
		return Point{}, fmt.Errorf("threshold: level must be 1 or 2, got %d", cfg.Level)
	}
	if cfg.Trials <= 0 {
		return Point{}, fmt.Errorf("threshold: need positive trials")
	}
	if cfg.PhysError < 0 || cfg.PhysError > 1 {
		return Point{}, fmt.Errorf("threshold: physical error %g outside [0,1]", cfg.PhysError)
	}

	var total blockStats
	var err error
	switch cfg.Backend {
	case "", BackendBatch:
		total, err = runBatched(ctx, cfg)
	case BackendScalar:
		total, err = runScalar(ctx, cfg)
	default:
		return Point{}, fmt.Errorf("threshold: unknown backend %q (want %q or %q)",
			cfg.Backend, BackendBatch, BackendScalar)
	}
	if err != nil {
		return Point{}, err
	}

	p := Point{
		Level:     cfg.Level,
		PhysError: cfg.PhysError,
		Failures:  int(total.failures),
		Trials:    cfg.Trials,
		FailRate:  float64(total.failures) / float64(cfg.Trials),
	}
	p.StdErr = math.Sqrt(p.FailRate * (1 - p.FailRate) / float64(cfg.Trials))
	if total.extractions > 0 {
		p.NonTrivial = float64(total.nontrivial) / float64(total.extractions)
	}
	p.PrepRetry = float64(total.prepRetries) / float64(cfg.Trials)
	return p, nil
}

// runScalar fans trials out one at a time over the worker pool (the
// reference oracle path).
func runScalar(ctx context.Context, cfg Config) (blockStats, error) {
	return fanOut(ctx, cfg.Parallelism, cfg.Trials, func(trial int) blockStats {
		fail, ext, nt, pr := runTrial(cfg, uint64(trial))
		r := blockStats{extractions: ext, nontrivial: nt, prepRetries: pr}
		if fail {
			r.failures = 1
		}
		return r
	})
}

// runBatched fans 64-trial blocks out over the worker pool; the final
// block runs short when Trials is not a multiple of 64.
func runBatched(ctx context.Context, cfg Config) (blockStats, error) {
	blocks := (cfg.Trials + pauliframe.Lanes - 1) / pauliframe.Lanes
	return fanOut(ctx, cfg.Parallelism, blocks, func(block int) blockStats {
		lanes := pauliframe.Lanes
		if rem := cfg.Trials - block*pauliframe.Lanes; rem < lanes {
			lanes = rem
		}
		return runBlock(cfg, uint64(block), lanes)
	})
}

func (a *blockStats) add(b blockStats) {
	a.failures += b.failures
	a.extractions += b.extractions
	a.nontrivial += b.nontrivial
	a.prepRetries += b.prepRetries
}

// fanOut shards unit indices [0,units) over a worker pool. Each unit is
// seeded from its global index by the caller and the integer statistics
// are summed, so the total is bit-identical at any worker count.
func fanOut(ctx context.Context, parallelism, units int, run func(unit int) blockStats) (blockStats, error) {
	workers := parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > units {
		workers = units
	}
	results := make([]blockStats, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lo := units * w / workers
			hi := units * (w + 1) / workers
			var r blockStats
			for u := lo; u < hi; u++ {
				if ctx.Err() != nil {
					return
				}
				r.add(run(u))
			}
			results[w] = r
		}(w)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return blockStats{}, err
	}
	var total blockStats
	for _, r := range results {
		total.add(r)
	}
	return total, nil
}

// runTrial simulates one logical one-qubit gate followed by error
// correction at the configured level, returning failure and syndrome
// statistics for the top level.
func runTrial(cfg Config, trial uint64) (fail bool, extractions, nontrivial, prepRetries int64) {
	params := iontrap.Uniform(cfg.PhysError, cfg.MovePerCell)
	seed := cfg.Seed ^ (trial+1)*0x9e3779b97f4a7c15 ^ uint64(cfg.Level)<<60
	model := noise.NewModel(params, seed)

	if cfg.Level == 1 {
		s := sim{f: pauliframe.New(groupSize), m: model}
		g := makeGroup(0)
		// Transversal logical one-qubit gate (Pauli: frame-transparent,
		// contributes only its per-ion gate noise).
		for _, q := range g.Data {
			s.gate1Noise(q)
		}
		s.l1EC(g)
		return s.dataResidualFail(g), s.extractions[1], s.nontrivial[1], s.prepRetries
	}

	s := l2sim{sim: sim{f: pauliframe.New(l2FrameSize), m: model}}
	s.data, s.xSide, s.zSide, s.xVerif, s.zVerif = newL2Layout()
	for b := 0; b < 7; b++ {
		for _, q := range s.data[b].Data {
			s.gate1Noise(q)
		}
	}
	s.l2EC()
	return s.residualFail(), s.extractions[2], s.nontrivial[2], s.prepRetries
}

// SingleFaultTrial runs one level-1 or level-2 trial with exactly one
// forced error at the given noise site (choice selects the error variant;
// see noise.Model) and no other noise anywhere. It reports whether the
// trial ended in logical failure and how many sites the trial visited.
// Running with site < 0 injects nothing (a clean census pass).
//
// This is the fault-tolerance verifier: a correct gadget never fails under
// any single fault.
func SingleFaultTrial(level int, site int64, choice int) (fail bool, totalSites int64) {
	model := noise.NewModel(iontrap.Uniform(0, 0), 1)
	model.ForceEnabled = true
	model.ForceSite = site
	model.ForceChoice = choice
	if site < 0 {
		model.ForceSite = -1 << 62
	}

	if level == 1 {
		s := sim{f: pauliframe.New(groupSize), m: model}
		g := makeGroup(0)
		for _, q := range g.Data {
			s.gate1Noise(q)
		}
		s.l1EC(g)
		return s.dataResidualFail(g), model.Sites()
	}
	s := l2sim{sim: sim{f: pauliframe.New(l2FrameSize), m: model}}
	s.data, s.xSide, s.zSide, s.xVerif, s.zVerif = newL2Layout()
	for b := 0; b < 7; b++ {
		for _, q := range s.data[b].Data {
			s.gate1Noise(q)
		}
	}
	s.l2EC()
	return s.residualFail(), model.Sites()
}

// Sweep runs the Monte Carlo at each physical error rate for one level
// on the default (batch) backend.
func Sweep(level int, physErrors []float64, trials int, seed uint64) ([]Point, error) {
	return SweepCtx(context.Background(), level, physErrors, trials, seed, 0, "")
}

// SweepCtx is Sweep with cooperative cancellation, an explicit
// worker-pool width (parallelism 0 means GOMAXPROCS) and a backend
// selection (empty means BackendBatch).
func SweepCtx(ctx context.Context, level int, physErrors []float64, trials int, seed uint64, parallelism int, backend string) ([]Point, error) {
	var out []Point
	for _, p := range physErrors {
		pt, err := RunCtx(ctx, Config{
			Level:       level,
			PhysError:   p,
			MovePerCell: DefaultMovePerCell,
			Trials:      trials,
			Seed:        seed,
			Parallelism: parallelism,
			Backend:     backend,
		})
		if err != nil {
			return nil, err
		}
		out = append(out, pt)
	}
	return out, nil
}

// Figure7Errors is the sweep range of Figure 7 (the x-axis runs from
// 1×10⁻³ to 2.5×10⁻³).
var Figure7Errors = []float64{5e-4, 1e-3, 1.5e-3, 2e-3, 2.5e-3, 3e-3, 4e-3}

// Crossing locates the pseudo-threshold: the physical error rate at which
// the level-2 curve crosses the level-1 curve, by linear interpolation of
// the failure-rate difference. Points must share the same PhysError grid.
// It returns 0 when no crossing is bracketed.
func Crossing(l1, l2 []Point) float64 {
	n := len(l1)
	if len(l2) < n {
		n = len(l2)
	}
	for i := 1; i < n; i++ {
		d0 := l2[i-1].FailRate - l1[i-1].FailRate
		d1 := l2[i].FailRate - l1[i].FailRate
		if d0 < 0 && d1 >= 0 {
			// Interpolate the zero of the difference.
			span := d1 - d0
			if span == 0 {
				return l1[i].PhysError
			}
			frac := -d0 / span
			return l1[i-1].PhysError + frac*(l1[i].PhysError-l1[i-1].PhysError)
		}
	}
	return 0
}

// SyndromeRates measures the non-trivial syndrome fraction at levels 1 and
// 2 under the expected technology parameters (Section 4.1.1 reports
// 3.35×10⁻⁴ and 7.92×10⁻⁴).
func SyndromeRates(trials int, seed uint64) (l1, l2 float64, err error) {
	return SyndromeRatesCtx(context.Background(), trials, seed, 0, "")
}

// SyndromeRatesCtx is SyndromeRates with cooperative cancellation, an
// explicit worker-pool width (parallelism 0 means GOMAXPROCS) and a
// backend selection (empty means BackendBatch).
func SyndromeRatesCtx(ctx context.Context, trials int, seed uint64, parallelism int, backend string) (l1, l2 float64, err error) {
	expected := iontrap.Expected()
	p1, err := RunCtx(ctx, Config{
		Level:       1,
		PhysError:   expected.Fail[iontrap.OpDouble],
		MovePerCell: expected.Fail[iontrap.OpMoveCell],
		Trials:      trials,
		Seed:        seed,
		Parallelism: parallelism,
		Backend:     backend,
	})
	if err != nil {
		return 0, 0, err
	}
	l2Trials := trials / 10
	if l2Trials < 1 {
		l2Trials = 1
	}
	p2, err := RunCtx(ctx, Config{
		Level:       2,
		PhysError:   expected.Fail[iontrap.OpDouble],
		MovePerCell: expected.Fail[iontrap.OpMoveCell],
		Trials:      l2Trials,
		Seed:        seed + 1,
		Parallelism: parallelism,
		Backend:     backend,
	})
	if err != nil {
		return 0, 0, err
	}
	return p1.NonTrivial, p2.NonTrivial, nil
}
