package threshold

import (
	"testing"

	"qla/internal/iontrap"
)

func TestCleanRunsNeverFail(t *testing.T) {
	for _, level := range []int{1, 2} {
		pt, err := Run(Config{Level: level, PhysError: 0, MovePerCell: 0, Trials: 200, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		if pt.Failures != 0 {
			t.Errorf("level %d: %d failures with zero noise", level, pt.Failures)
		}
		if pt.NonTrivial != 0 {
			t.Errorf("level %d: non-trivial syndromes with zero noise", level)
		}
	}
}

// TestSingleFaultToleranceLevel1 exhaustively verifies the level-1 gadget:
// no single fault at any site, of any Pauli kind, may cause a logical
// failure (the defining property of a fault-tolerant d=3 gadget).
func TestSingleFaultToleranceLevel1(t *testing.T) {
	_, total := SingleFaultTrial(1, -1, 0)
	if total < 100 {
		t.Fatalf("level-1 gadget has only %d fault sites; circuit looks truncated", total)
	}
	for site := int64(0); site < total; site++ {
		for choice := 0; choice < 15; choice++ {
			if fail, _ := SingleFaultTrial(1, site, choice); fail {
				t.Fatalf("single fault (site %d, choice %d) caused a level-1 logical failure", site, choice)
			}
		}
	}
}

// TestSingleFaultToleranceLevel2 exhaustively verifies the level-2 gadget.
func TestSingleFaultToleranceLevel2(t *testing.T) {
	_, total := SingleFaultTrial(2, -1, 0)
	if total < 1000 {
		t.Fatalf("level-2 gadget has only %d fault sites; circuit looks truncated", total)
	}
	stride := int64(1)
	if testing.Short() {
		stride = 17
	}
	for site := int64(0); site < total; site += stride {
		for choice := 0; choice < 15; choice++ {
			if fail, _ := SingleFaultTrial(2, site, choice); fail {
				t.Fatalf("single fault (site %d, choice %d) caused a level-2 logical failure", site, choice)
			}
		}
	}
}

func TestFailureRatesGrowWithError(t *testing.T) {
	for _, level := range []int{1, 2} {
		lo, err := Run(Config{Level: level, PhysError: 1e-3, MovePerCell: DefaultMovePerCell, Trials: 4000, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		hi, err := Run(Config{Level: level, PhysError: 8e-3, MovePerCell: DefaultMovePerCell, Trials: 4000, Seed: 6})
		if err != nil {
			t.Fatal(err)
		}
		if hi.FailRate <= lo.FailRate {
			t.Errorf("level %d: failure rate did not grow with physical error (%g -> %g)",
				level, lo.FailRate, hi.FailRate)
		}
	}
}

// TestFigure7Shape verifies the paper's qualitative result: below the
// pseudo-threshold recursion helps (level 2 beats level 1); above it,
// recursion hurts; and the measured crossing falls within the paper's
// quoted band of (2.1 ± 1.8)×10⁻³.
func TestFigure7Shape(t *testing.T) {
	ps := []float64{5e-4, 1.5e-3, 4e-3}
	l1, err := Sweep(1, ps, 60000, 11)
	if err != nil {
		t.Fatal(err)
	}
	l2, err := Sweep(2, ps, 30000, 12)
	if err != nil {
		t.Fatal(err)
	}
	// Below threshold: level 2 no worse than level 1 within noise.
	if l2[0].FailRate > l1[0].FailRate+3*(l1[0].StdErr+l2[0].StdErr) {
		t.Errorf("at p=5e-4, level 2 (%.2g) should not exceed level 1 (%.2g)",
			l2[0].FailRate, l1[0].FailRate)
	}
	// Above threshold: recursion clearly hurts.
	if l2[2].FailRate < 2*l1[2].FailRate {
		t.Errorf("at p=4e-3, level 2 (%.2g) should clearly exceed level 1 (%.2g)",
			l2[2].FailRate, l1[2].FailRate)
	}
	cross := Crossing(l1, l2)
	if cross < 2e-4 || cross > 4e-3 {
		t.Errorf("pseudo-threshold crossing at %.2g; paper quotes (2.1±1.8)e-3", cross)
	}
}

func TestSyndromeRatesBallpark(t *testing.T) {
	// Section 4.1.1: non-trivial syndrome rates of 3.35e-4 (level 1) and
	// 7.92e-4 (level 2) at the expected parameters. Movement dominates
	// these rates; assert the order of magnitude.
	l1, l2, err := SyndromeRates(200000, 21)
	if err != nil {
		t.Fatal(err)
	}
	if l1 < 3e-5 || l1 > 3e-3 {
		t.Errorf("level-1 non-trivial syndrome rate = %.3g, paper says 3.35e-4", l1)
	}
	if l2 < 1e-4 || l2 > 1e-2 {
		t.Errorf("level-2 non-trivial syndrome rate = %.3g, paper says 7.92e-4", l2)
	}
	if l2 <= l1 {
		t.Errorf("level-2 rate (%.3g) should exceed level-1 rate (%.3g): more sites per extraction", l2, l1)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{Level: 3, PhysError: 1e-3, Trials: 10}); err == nil {
		t.Error("level 3 should be rejected")
	}
	if _, err := Run(Config{Level: 1, PhysError: 1e-3, Trials: 0}); err == nil {
		t.Error("zero trials should be rejected")
	}
	if _, err := Run(Config{Level: 1, PhysError: 2, Trials: 10}); err == nil {
		t.Error("probability > 1 should be rejected")
	}
}

func TestDeterminism(t *testing.T) {
	cfg := Config{Level: 2, PhysError: 3e-3, MovePerCell: DefaultMovePerCell, Trials: 2000, Seed: 33}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Failures != b.Failures || a.NonTrivial != b.NonTrivial {
		t.Errorf("runs with identical seeds disagree: %+v vs %+v", a, b)
	}
}

func TestCrossingInterpolation(t *testing.T) {
	l1 := []Point{{PhysError: 1e-3, FailRate: 0.002}, {PhysError: 2e-3, FailRate: 0.004}}
	l2 := []Point{{PhysError: 1e-3, FailRate: 0.001}, {PhysError: 2e-3, FailRate: 0.007}}
	cross := Crossing(l1, l2)
	if cross <= 1e-3 || cross >= 2e-3 {
		t.Errorf("crossing = %g, want inside (1e-3, 2e-3)", cross)
	}
	// No crossing when level 2 stays below.
	l2[1].FailRate = 0.003
	if Crossing(l1, l2) != 0 {
		t.Error("no crossing should yield 0")
	}
}

func TestHighErrorSaturates(t *testing.T) {
	pt, err := Run(Config{Level: 1, PhysError: 0.2, MovePerCell: DefaultMovePerCell, Trials: 500, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if pt.FailRate < 0.2 {
		t.Errorf("at p=0.2 the gadget should fail frequently, got %.3f", pt.FailRate)
	}
	if pt.PrepRetry == 0 {
		t.Error("at p=0.2 ancilla verification should be retrying")
	}
}

func TestExpectedParamsEssentiallyPerfect(t *testing.T) {
	// "We observed no failure at level 2 recursion as the physical
	// component errors approached the expected ion-trap parameters."
	exp := iontrap.Expected()
	pt, err := Run(Config{
		Level:       2,
		PhysError:   exp.Fail[iontrap.OpDouble],
		MovePerCell: exp.Fail[iontrap.OpMoveCell],
		Trials:      3000,
		Seed:        44,
	})
	if err != nil {
		t.Fatal(err)
	}
	if pt.Failures != 0 {
		t.Errorf("level 2 at expected parameters failed %d/%d times; paper observed none",
			pt.Failures, pt.Trials)
	}
}
