package threshold

import (
	"context"
	"reflect"
	"testing"
)

// TestParallelMatchesSerial: trials are seeded from their global index,
// so the aggregate must be bit-identical at any worker-pool width.
func TestParallelMatchesSerial(t *testing.T) {
	base := Config{
		Level:       1,
		PhysError:   3e-3,
		MovePerCell: DefaultMovePerCell,
		Trials:      4000,
		Seed:        19,
	}
	serial := base
	serial.Parallelism = 1
	want, err := Run(serial)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 7, 16} {
		cfg := base
		cfg.Parallelism = workers
		got, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("parallelism %d: %+v != serial %+v", workers, got, want)
		}
	}
}

func TestRunCtxCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunCtx(ctx, Config{
		Level:       1,
		PhysError:   3e-3,
		MovePerCell: DefaultMovePerCell,
		Trials:      100000,
		Seed:        1,
	})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
