package threshold

import (
	"math/bits"

	"qla/internal/iontrap"
	"qla/internal/layout"
	"qla/internal/noise"
	"qla/internal/pauliframe"
	"qla/internal/steane"
)

// Batched (bit-sliced) Monte Carlo backend: 64 independent trials per
// uint64 word, the default engine for the Figure-7 threshold pipeline.
//
// Each simulated circuit runs ONCE per 64-trial block; Clifford
// propagation, noise injection and syndrome extraction are branch-free
// word-wide bitwise operations on pauliframe.Batch lane masks. Per-lane
// control flow — the "Start Over" ancilla-verification retry of Figure 6
// and the two-agreeing-syndromes rule — is expressed with execution
// masks: a retried preparation or a repeated extraction re-runs the
// (masked) circuit only for the lanes that still need it, leaving every
// other lane's frame untouched, exactly as if those lanes had not
// executed the gates. Steane syndromes decode bit-sliced (three
// syndrome-bit lane masks -> per-lane correction position masks; see
// steane.SyndromeMasks).
//
// The scalar path (sim/l2sim) remains the reference oracle: the two
// backends agree exactly under deterministic single-fault injection and
// statistically under random noise (see batch_test.go).

// popcount is a local shorthand for lane-mask statistics.
func popcount(m uint64) int64 { return int64(bits.OnesCount64(m)) }

// bsim is the batched counterpart of sim: shared machinery for one
// 64-trial block.
type bsim struct {
	f *pauliframe.Batch
	m *noise.BatchModel

	// Lane-summed syndrome statistics per recursion level (1-indexed).
	extractions [3]int64
	nontrivial  [3]int64
	prepRetries int64
}

func (s *bsim) prep0(q int, mask uint64) {
	s.f.Reset(q, mask)
	s.m.PrepError(s.f, q, mask)
}

func (s *bsim) h(q int, mask uint64) {
	s.f.H(q, mask)
	s.m.GateError1(s.f, q, mask)
}

// gate1Noise charges a one-qubit gate that is a Pauli (frame-transparent).
func (s *bsim) gate1Noise(q int, mask uint64) {
	s.m.GateError1(s.f, q, mask)
}

func (s *bsim) cnotIntra(c, t int, mask uint64) {
	mv := layout.IntraBlockGateMove()
	s.m.MoveError(s.f, t, mv.Cells, mv.Corners, mask)
	s.f.CNOT(c, t, mask)
	s.m.GateError2(s.f, c, t, mask)
}

func (s *bsim) cnotInter(c, t, travel int, mask uint64) {
	mv := layout.InterBlockGateMove()
	s.m.MoveError(s.f, travel, mv.Cells, mv.Corners, mask)
	s.f.CNOT(c, t, mask)
	s.m.GateError2(s.f, c, t, mask)
}

func (s *bsim) measureZ(q int, mask uint64) uint64 {
	return s.f.MeasureZ(q, mask) ^ s.m.MeasureFlips(mask)
}

func (s *bsim) measureX(q int, mask uint64) uint64 {
	// Physical X-basis readout: H then fluorescence readout.
	s.h(q, mask)
	return s.measureZ(q, mask)
}

func (s *bsim) encodeZero(q [7]int, mask uint64) {
	s.h(q[3], mask)
	s.h(q[1], mask)
	s.h(q[0], mask)
	for _, p := range encoderCNOTs {
		s.cnotIntra(q[p[0]], q[p[1]], mask)
	}
}

// prepVerifiedZero is the batched two-screen verified |0>_L preparation
// (see sim.prepVerifiedZero for the physics). need tracks the lanes
// still requiring (re)preparation: an attempt re-runs the circuit only
// for those lanes, and any screen detection keeps the lane in need for
// the next attempt ("Start Over" in Figure 6, per lane).
func (s *bsim) prepVerifiedZero(anc, verif [7]int, active uint64) {
	need := active
	for attempt := 0; attempt < maxPrepAttempts && need != 0; attempt++ {
		for _, q := range anc {
			s.prep0(q, need)
		}
		s.encodeZero(anc, need)
		var bad uint64
		// Z screen.
		for _, q := range verif {
			s.prep0(q, need)
		}
		s.encodeZero(verif, need)
		for i := 0; i < 7; i++ {
			s.cnotIntra(verif[i], anc[i], need)
		}
		for i := 0; i < 7; i++ {
			bad |= s.measureX(verif[i], need)
		}
		// X screen.
		for _, q := range verif {
			s.prep0(q, need)
		}
		for i := 0; i < 7; i++ {
			s.cnotIntra(anc[i], verif[i], need)
		}
		for i := 0; i < 7; i++ {
			bad |= s.measureZ(verif[i], need)
		}
		need &= bad
		s.prepRetries += popcount(need)
	}
}

func (s *bsim) prepVerifiedPlus(anc, verif [7]int, active uint64) {
	s.prepVerifiedZero(anc, verif, active)
	for _, q := range anc {
		s.h(q, active)
	}
}

// l1ExtractX extracts the bit-flip syndrome for the masked lanes,
// returned as three syndrome-bit lane masks (LSB first).
func (s *bsim) l1ExtractX(g Group, mask uint64) (s0, s1, s2 uint64) {
	s.prepVerifiedZero(g.Anc, g.Verif, mask)
	for i := 0; i < 7; i++ {
		s.cnotInter(g.Data[i], g.Anc[i], g.Anc[i], mask)
	}
	var w [7]uint64
	for i := 0; i < 7; i++ {
		w[i] = s.measureZ(g.Anc[i], mask)
	}
	return steane.SyndromeMasks(&w)
}

// l1ExtractZ extracts the phase-flip syndrome for the masked lanes.
func (s *bsim) l1ExtractZ(g Group, mask uint64) (s0, s1, s2 uint64) {
	s.prepVerifiedPlus(g.Anc, g.Verif, mask)
	for i := 0; i < 7; i++ {
		s.cnotInter(g.Anc[i], g.Data[i], g.Anc[i], mask)
	}
	var w [7]uint64
	for i := 0; i < 7; i++ {
		w[i] = s.measureX(g.Anc[i], mask)
	}
	return steane.SyndromeMasks(&w)
}

// agreeLoop runs the per-lane two-agreeing-syndromes rule over an
// extraction function: extract once for every active lane; lanes with a
// non-trivial syndrome re-extract (masked) until two successive
// syndromes agree or maxSyndromeRounds is reached, each lane settling
// on its last syndrome — the exact per-lane semantics of l1ECKind.
// It returns the three bit-planes of each lane's settled syndrome.
func agreeLoop(active uint64, extract func(mask uint64) (uint64, uint64, uint64)) (u0, u1, u2 uint64) {
	s0, s1, s2 := extract(active)
	u0, u1, u2 = s0, s1, s2
	pending := s0 | s1 | s2
	p0, p1, p2 := s0, s1, s2
	for round := 1; round < maxSyndromeRounds && pending != 0; round++ {
		n0, n1, n2 := extract(pending)
		u0 = u0&^pending | n0
		u1 = u1&^pending | n1
		u2 = u2&^pending | n2
		agree := pending &^ ((n0 ^ p0&pending) | (n1 ^ p1&pending) | (n2 ^ p2&pending))
		p0 = p0&^pending | n0
		p1 = p1&^pending | n1
		p2 = p2&^pending | n2
		pending &^= agree
	}
	return u0, u1, u2
}

// l1ECKind runs one error-kind correction for the masked lanes.
func (s *bsim) l1ECKind(g Group, zKind bool, active uint64) {
	extract := func(mask uint64) (uint64, uint64, uint64) {
		s.extractions[1] += popcount(mask)
		var s0, s1, s2 uint64
		if zKind {
			s0, s1, s2 = s.l1ExtractZ(g, mask)
		} else {
			s0, s1, s2 = s.l1ExtractX(g, mask)
		}
		s.nontrivial[1] += popcount(s0 | s1 | s2)
		return s0, s1, s2
	}
	u0, u1, u2 := agreeLoop(active, extract)
	// Bit-sliced decode: lanes settling on syndrome value pos+1 get a
	// correction on Data[pos]; the correction gate carries its own noise
	// for exactly those lanes.
	for pos := 0; pos < 7; pos++ {
		pm := steane.PositionMask(u0, u1, u2, pos)
		if pm == 0 {
			continue
		}
		q := g.Data[pos]
		if zKind {
			s.f.InjectZ(q, pm)
		} else {
			s.f.InjectX(q, pm)
		}
		s.gate1Noise(q, pm)
	}
}

// l1EC is one full level-1 error-correction step for the masked lanes.
func (s *bsim) l1EC(g Group, active uint64) {
	s.l1ECKind(g, false, active)
	s.l1ECKind(g, true, active)
}

// dataResidualFailMask scores a level-1 block per lane by ideal
// decoding of its residual frame.
func (s *bsim) dataResidualFailMask(g Group) uint64 {
	var xs, zs [7]uint64
	for i, q := range g.Data {
		xs[i] = s.f.XBits(q)
		zs[i] = s.f.ZBits(q)
	}
	return steane.DecodeBlockMasks(&xs) | steane.DecodeBlockMasks(&zs)
}

// bl2sim is the batched counterpart of l2sim (Figure-5 layout).
type bl2sim struct {
	bsim
	data   [7]Group
	xSide  [7]Group
	zSide  [7]Group
	xVerif [49]int
	zVerif [49]int
}

// logicalCNOTL1 applies a level-1 logical CNOT between two groups for
// the masked lanes (transversal physical CNOTs; the target travels).
func (s *bl2sim) logicalCNOTL1(from, to Group, mask uint64) {
	for i := 0; i < 7; i++ {
		s.cnotInter(from.Data[i], to.Data[i], to.Data[i], mask)
	}
}

// prepL2Zero is the batched verified level-2 |0>_L preparation: a
// residual logical error in any sub-block restarts the preparation for
// that lane only.
func (s *bl2sim) prepL2Zero(side *[7]Group, verif *[49]int, active uint64) {
	need := active
	for attempt := 0; attempt < maxPrepAttempts && need != 0; attempt++ {
		for b := 0; b < 7; b++ {
			s.prepVerifiedZero(side[b].Data, side[b].Verif, need)
		}
		// Logical-level encoder (see l2sim.prepL2Zero for why level-1 EC
		// between stages is skipped).
		for _, b := range [3]int{3, 1, 0} {
			for _, q := range side[b].Data {
				s.h(q, need)
			}
		}
		for _, p := range encoderCNOTs {
			s.logicalCNOTL1(side[p[0]], side[p[1]], need)
		}
		// Level-2 verification bank.
		for i := 0; i < 49; i++ {
			s.prep0(verif[i], need)
		}
		for b := 0; b < 7; b++ {
			for i := 0; i < 7; i++ {
				s.cnotInter(side[b].Data[i], verif[b*7+i], verif[b*7+i], need)
			}
		}
		var bad uint64
		for b := 0; b < 7; b++ {
			var w [7]uint64
			for i := 0; i < 7; i++ {
				w[i] = s.measureZ(verif[b*7+i], need)
			}
			bad |= steane.DecodeBlockMasks(&w)
		}
		need &= bad
		s.prepRetries += popcount(need)
	}
}

func (s *bl2sim) prepL2Plus(side *[7]Group, verif *[49]int, active uint64) {
	s.prepL2Zero(side, verif, active)
	for b := 0; b < 7; b++ {
		for _, q := range side[b].Data {
			s.h(q, active)
		}
	}
}

// l2ExtractX extracts the level-2 bit-flip syndrome for the masked
// lanes; blockSyn is the lane mask of trials whose readout carried a
// non-trivial level-1 syndrome in any sub-block.
func (s *bl2sim) l2ExtractX(mask uint64) (s0, s1, s2, blockSyn uint64) {
	s.prepL2Zero(&s.xSide, &s.xVerif, mask)
	for b := 0; b < 7; b++ {
		for i := 0; i < 7; i++ {
			s.cnotInter(s.data[b].Data[i], s.xSide[b].Data[i], s.xSide[b].Data[i], mask)
		}
	}
	var ell [7]uint64
	for b := 0; b < 7; b++ {
		var w [7]uint64
		for i := 0; i < 7; i++ {
			w[i] = s.measureZ(s.xSide[b].Data[i], mask)
		}
		b0, b1, b2 := steane.SyndromeMasks(&w)
		blockSyn |= b0 | b1 | b2
		ell[b] = steane.DecodeBlockMasks(&w)
	}
	s0, s1, s2 = steane.SyndromeMasks(&ell)
	return s0, s1, s2, blockSyn
}

// l2ExtractZ extracts the level-2 phase-flip syndrome for the masked
// lanes.
func (s *bl2sim) l2ExtractZ(mask uint64) (s0, s1, s2, blockSyn uint64) {
	s.prepL2Plus(&s.zSide, &s.zVerif, mask)
	for b := 0; b < 7; b++ {
		for i := 0; i < 7; i++ {
			s.cnotInter(s.zSide[b].Data[i], s.data[b].Data[i], s.zSide[b].Data[i], mask)
		}
	}
	var ell [7]uint64
	for b := 0; b < 7; b++ {
		var w [7]uint64
		for i := 0; i < 7; i++ {
			w[i] = s.measureX(s.zSide[b].Data[i], mask)
		}
		b0, b1, b2 := steane.SyndromeMasks(&w)
		blockSyn |= b0 | b1 | b2
		ell[b] = steane.DecodeBlockMasks(&w)
	}
	s0, s1, s2 = steane.SyndromeMasks(&ell)
	return s0, s1, s2, blockSyn
}

// l2ECKind runs one error-kind correction at level 2 for the masked
// lanes; corrections are transversal logical Paulis on the identified
// level-1 block, followed by level-1 EC of that block (Equation 1's
// non-trivial branch), masked to the lanes that corrected it.
func (s *bl2sim) l2ECKind(zKind bool, active uint64) {
	extract := func(mask uint64) (uint64, uint64, uint64) {
		s.extractions[2] += popcount(mask)
		var s0, s1, s2, blockSyn uint64
		if zKind {
			s0, s1, s2, blockSyn = s.l2ExtractZ(mask)
		} else {
			s0, s1, s2, blockSyn = s.l2ExtractX(mask)
		}
		s.nontrivial[2] += popcount(s0 | s1 | s2 | blockSyn)
		return s0, s1, s2
	}
	u0, u1, u2 := agreeLoop(active, extract)
	for pos := 0; pos < 7; pos++ {
		pm := steane.PositionMask(u0, u1, u2, pos)
		if pm == 0 {
			continue
		}
		for _, q := range s.data[pos].Data {
			if zKind {
				s.f.InjectZ(q, pm)
			} else {
				s.f.InjectX(q, pm)
			}
			s.gate1Noise(q, pm)
		}
		s.l1EC(s.data[pos], pm)
	}
}

func (s *bl2sim) l2EC(active uint64) {
	s.l2ECKind(false, active)
	s.l2ECKind(true, active)
}

// residualFailMask scores the block's lanes by ideal hierarchical
// decoding of the residual frame over the 49 data ions.
func (s *bl2sim) residualFailMask() uint64 {
	var xl, zl [7]uint64
	for b := 0; b < 7; b++ {
		var xs, zs [7]uint64
		for i := 0; i < 7; i++ {
			q := s.data[b].Data[i]
			xs[i] = s.f.XBits(q)
			zs[i] = s.f.ZBits(q)
		}
		xl[b] = steane.DecodeBlockMasks(&xs)
		zl[b] = steane.DecodeBlockMasks(&zs)
	}
	return steane.DecodeBlockMasks(&xl) | steane.DecodeBlockMasks(&zl)
}

// blockStats aggregates one 64-trial block.
type blockStats struct {
	failures    int64
	extractions int64
	nontrivial  int64
	prepRetries int64
}

// runBlock simulates one 64-trial block (lanes may be short for the
// final block of a run) with a per-block deterministic seed: fixed
// Seed + Backend "batch" reproduces bit-identical statistics at any
// parallelism, because blocks are independent and integer-summed.
func runBlock(cfg Config, block uint64, lanes int) blockStats {
	params := iontrap.Uniform(cfg.PhysError, cfg.MovePerCell)
	seed := cfg.Seed ^ (block+1)*0x9e3779b97f4a7c15 ^ uint64(cfg.Level)<<60 ^ 0xb175c1ed
	model := noise.NewBatchModel(params, seed)
	return runBlockModel(cfg.Level, model, pauliframe.LaneMask(lanes))
}

// runBlockModel runs the level-1 or level-2 gadget schedule once for
// every lane in active, under the given (possibly force-mode) model.
func runBlockModel(level int, model *noise.BatchModel, active uint64) blockStats {
	var st blockStats
	if level == 1 {
		s := bsim{f: pauliframe.NewBatch(groupSize), m: model}
		g := makeGroup(0)
		// Transversal logical one-qubit gate (Pauli: frame-transparent,
		// contributes only its per-ion gate noise).
		for _, q := range g.Data {
			s.gate1Noise(q, active)
		}
		s.l1EC(g, active)
		st.failures = popcount(s.dataResidualFailMask(g) & active)
		st.extractions = s.extractions[1]
		st.nontrivial = s.nontrivial[1]
		st.prepRetries = s.prepRetries
		return st
	}
	s := bl2sim{bsim: bsim{f: pauliframe.NewBatch(l2FrameSize), m: model}}
	s.data, s.xSide, s.zSide, s.xVerif, s.zVerif = newL2Layout()
	for b := 0; b < 7; b++ {
		for _, q := range s.data[b].Data {
			s.gate1Noise(q, active)
		}
	}
	s.l2EC(active)
	st.failures = popcount(s.residualFailMask() & active)
	st.extractions = s.extractions[2]
	st.nontrivial = s.nontrivial[2]
	st.prepRetries = s.prepRetries
	return st
}

// SingleFaultTrialBatch is the batched counterpart of SingleFaultTrial:
// one block with exactly one forced error (site/choice, as in
// noise.Model) injected into the given lane, and no other noise. It
// reports whether that lane failed, whether every other lane stayed
// clean (they must: their trials are fault-free), and the number of
// sites visited. With only one lane's control flow deviating, the batch
// visits sites in exactly the scalar order, so site numbers and the
// census agree with SingleFaultTrial.
func SingleFaultTrialBatch(level int, site int64, choice, lane int) (fail, othersClean bool, totalSites int64) {
	model := noise.NewBatchModel(iontrap.Uniform(0, 0), 1)
	model.ForceEnabled = true
	model.ForceSite = site
	model.ForceChoice = choice
	model.ForceLane = lane
	if site < 0 {
		model.ForceSite = -1 << 62
	}
	var failMask uint64
	if level == 1 {
		s := bsim{f: pauliframe.NewBatch(groupSize), m: model}
		g := makeGroup(0)
		for _, q := range g.Data {
			s.gate1Noise(q, ^uint64(0))
		}
		s.l1EC(g, ^uint64(0))
		failMask = s.dataResidualFailMask(g)
	} else {
		s := bl2sim{bsim: bsim{f: pauliframe.NewBatch(l2FrameSize), m: model}}
		s.data, s.xSide, s.zSide, s.xVerif, s.zVerif = newL2Layout()
		for b := 0; b < 7; b++ {
			for _, q := range s.data[b].Data {
				s.gate1Noise(q, ^uint64(0))
			}
		}
		s.l2EC(^uint64(0))
		failMask = s.residualFailMask()
	}
	fail = failMask>>uint(lane)&1 == 1
	othersClean = failMask&^(1<<uint(lane)) == 0
	return fail, othersClean, model.Sites()
}
