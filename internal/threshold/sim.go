// Package threshold implements the paper's Figure-7 experiment: gate-level
// Monte Carlo simulation of a single logical one-qubit gate followed by
// recursive Steane [[7,1,3]] error correction at levels 1 and 2, mapped to
// the Figure-5 layout distances, with the movement failure rate pinned to
// the expected value while all other component failure rates sweep.
//
// The simulation follows the paper's procedure exactly:
//   - ancilla blocks are prepared with encoder + verification ions and
//     re-prepared on verification failure ("Start Over" in Figure 6);
//   - syndromes are re-extracted until two successive extractions agree;
//   - at level 2 every logical gate is followed by level-1 error
//     correction of the touched blocks, and ancilla conglomerations are
//     built from seven level-1 blocks via the transversal encoder;
//   - trials are scored by ideal hierarchical decoding of the residual
//     Pauli frame: a residual logical operator is a gate failure.
//
// Two Monte Carlo backends implement this procedure. The default batch
// backend (batch.go) bit-slices 64 independent trials per word: the
// gadget schedule runs once per 64-trial block on pauliframe.Batch lane
// masks, with per-lane control flow (ancilla "Start Over" retries, the
// agreeing-syndromes rule) expressed as masked re-execution. The scalar
// backend (this file, level2.go) simulates one trial at a time and is
// kept as the reference oracle: the backends agree exactly under
// deterministic single-fault injection and statistically under random
// noise. Fixed Seed + Backend reproduces bit-identical statistics at
// any Parallelism; the two backends draw different random streams, so
// across backends agreement is statistical only.
package threshold

import (
	"qla/internal/layout"
	"qla/internal/noise"
	"qla/internal/pauliframe"
	"qla/internal/steane"
)

// Group indexes one level-1 block: 7 data ions, 7 ancilla ions and 7
// verification ions (Section 4.1: "uses 7 ions as data and 7 ions as
// ancilla, the other 7 are used as verification bits").
type Group struct {
	Data  [7]int
	Anc   [7]int
	Verif [7]int
}

const groupSize = 21

func makeGroup(base int) Group {
	var g Group
	for i := 0; i < 7; i++ {
		g.Data[i] = base + i
		g.Anc[i] = base + 7 + i
		g.Verif[i] = base + 14 + i
	}
	return g
}

// maxPrepAttempts bounds ancilla re-preparation; beyond it the last
// preparation is used as-is (only reachable at absurd error rates).
const maxPrepAttempts = 5

// maxSyndromeRounds bounds the two-successive-agreeing-syndromes rule (the
// paper observed at most two extractions before agreement).
const maxSyndromeRounds = 3

// encoderCNOTs is the [[7,1,3]] |0>_L encoder CNOT schedule (pivot
// fan-outs along the stabilizer row supports; see steane.EncodeZero).
var encoderCNOTs = [9][2]int{
	{3, 4}, {3, 5}, {3, 6},
	{1, 2}, {1, 5}, {1, 6},
	{0, 2}, {0, 4}, {0, 6},
}

// sim carries the shared Monte Carlo machinery.
type sim struct {
	f *pauliframe.Frame
	m *noise.Model

	// Syndrome statistics per recursion level (1-indexed).
	extractions [3]int64
	nontrivial  [3]int64
	prepRetries int64
}

func (s *sim) prep0(q int) {
	s.f.Reset(q)
	s.m.PrepError(s.f, q)
}

func (s *sim) h(q int) {
	s.f.H(q)
	s.m.GateError1(s.f, q)
}

// gate1Noise charges a one-qubit gate that is a Pauli (frame-transparent).
func (s *sim) gate1Noise(q int) {
	s.m.GateError1(s.f, q)
}

// cnotIntra performs a CNOT between ions of the same block: the target ion
// shuttles a couple of cells.
func (s *sim) cnotIntra(c, t int) {
	mv := layout.IntraBlockGateMove()
	s.m.MoveError(s.f, t, mv.Cells, mv.Corners)
	s.f.CNOT(c, t)
	s.m.GateError2(s.f, c, t)
}

// cnotInter performs a CNOT between ions of different blocks; travel names
// the ion that shuttles the inter-block distance (QLA never moves data:
// the ancilla-side ion travels r = 12 cells with up to two turns).
func (s *sim) cnotInter(c, t, travel int) {
	mv := layout.InterBlockGateMove()
	s.m.MoveError(s.f, travel, mv.Cells, mv.Corners)
	s.f.CNOT(c, t)
	s.m.GateError2(s.f, c, t)
}

func (s *sim) measureZ(q int) int {
	return s.f.MeasureZ(q) ^ s.m.MeasureFlip()
}

func (s *sim) measureX(q int) int {
	// Physical X-basis readout: H then fluorescence readout.
	s.h(q)
	return s.f.MeasureZ(q) ^ s.m.MeasureFlip()
}

// encodeZero runs the noisy [[7,1,3]] encoder over the given qubits.
func (s *sim) encodeZero(q [7]int) {
	s.h(q[3])
	s.h(q[1])
	s.h(q[0])
	for _, p := range encoderCNOTs {
		s.cnotIntra(q[p[0]], q[p[1]])
	}
}

// prepVerifiedZero prepares anc in |0>_L with two verification screens
// using the block's 7 verification ions, restarting on any detection
// ("Start Over" in Figure 6):
//
//  1. Z screen: the verification ions are themselves encoded to |0>_L and
//     used as the control of a transversal CNOT onto the ancilla (a
//     logical identity), then read out in the X basis. Correlated Z
//     errors from the ancilla encoder — which would feed back into the
//     data during syndrome extraction — copy onto the verifier and are
//     caught here.
//  2. X screen: the codeword is copied transversally onto fresh
//     verification ions and read out in Z. It runs last so that it also
//     catches correlated X errors injected by the Z screen's own encoder.
func (s *sim) prepVerifiedZero(anc, verif [7]int) {
	for attempt := 0; attempt < maxPrepAttempts; attempt++ {
		for _, q := range anc {
			s.prep0(q)
		}
		s.encodeZero(anc)
		ok := true
		// Z screen.
		for _, q := range verif {
			s.prep0(q)
		}
		s.encodeZero(verif)
		for i := 0; i < 7; i++ {
			s.cnotIntra(verif[i], anc[i])
		}
		for i := 0; i < 7; i++ {
			if s.measureX(verif[i]) != 0 {
				ok = false
			}
		}
		// X screen.
		for _, q := range verif {
			s.prep0(q)
		}
		for i := 0; i < 7; i++ {
			s.cnotIntra(anc[i], verif[i])
		}
		for i := 0; i < 7; i++ {
			if s.measureZ(verif[i]) != 0 {
				ok = false
			}
		}
		if ok {
			return
		}
		s.prepRetries++
	}
}

// prepVerifiedPlus prepares |+>_L: verified |0>_L then transversal H.
func (s *sim) prepVerifiedPlus(anc, verif [7]int) {
	s.prepVerifiedZero(anc, verif)
	for _, q := range anc {
		s.h(q)
	}
}

// l1ExtractX extracts the bit-flip syndrome of a block's data: verified
// |0>_L ancilla, transversal CNOT data->ancilla, Z readout, Hamming decode.
func (s *sim) l1ExtractX(g Group) int {
	s.prepVerifiedZero(g.Anc, g.Verif)
	for i := 0; i < 7; i++ {
		s.cnotInter(g.Data[i], g.Anc[i], g.Anc[i])
	}
	var w [7]int
	for i := 0; i < 7; i++ {
		w[i] = s.measureZ(g.Anc[i])
	}
	return steane.Syndrome(w)
}

// l1ExtractZ extracts the phase-flip syndrome: verified |+>_L ancilla,
// transversal CNOT ancilla->data, X readout.
func (s *sim) l1ExtractZ(g Group) int {
	s.prepVerifiedPlus(g.Anc, g.Verif)
	for i := 0; i < 7; i++ {
		s.cnotInter(g.Anc[i], g.Data[i], g.Anc[i])
	}
	var w [7]int
	for i := 0; i < 7; i++ {
		w[i] = s.measureX(g.Anc[i])
	}
	return steane.Syndrome(w)
}

// l1ECKind runs one error-kind correction with the agreeing-syndromes rule.
func (s *sim) l1ECKind(g Group, zKind bool) {
	extract := func() int {
		s.extractions[1]++
		var syn int
		if zKind {
			syn = s.l1ExtractZ(g)
		} else {
			syn = s.l1ExtractX(g)
		}
		if syn != 0 {
			s.nontrivial[1]++
		}
		return syn
	}
	syn := extract()
	if syn == 0 {
		return
	}
	use := syn
	prev := syn
	for round := 1; round < maxSyndromeRounds; round++ {
		next := extract()
		if next == prev {
			use = next
			break
		}
		use = next
		prev = next
	}
	if pos := steane.DecodePosition(use); pos >= 0 {
		q := g.Data[pos]
		if zKind {
			s.f.InjectZ(q)
		} else {
			s.f.InjectX(q)
		}
		s.gate1Noise(q)
	}
}

// l1EC is one full level-1 error-correction step (X then Z serially; the
// level-1 qubit has a single ancilla block).
func (s *sim) l1EC(g Group) {
	s.l1ECKind(g, false)
	s.l1ECKind(g, true)
}

// dataResidualFail scores a level-1 block by ideal decoding of its
// residual frame.
func (s *sim) dataResidualFail(g Group) bool {
	var xs, zs [7]int
	for i, q := range g.Data {
		if s.f.XBit(q) {
			xs[i] = 1
		}
		if s.f.ZBit(q) {
			zs[i] = 1
		}
	}
	return steane.DecodeBlock(xs) != 0 || steane.DecodeBlock(zs) != 0
}
