// Package modarith builds verified modular-arithmetic circuits from the
// adders in internal/adder — the layer between plain addition and the
// modular exponentiation that dominates Shor's algorithm (Section 5 of
// the QLA paper: "modular exponentiation consists of modular
// multiplication, which itself can be divided into additions").
//
// The construction is the classical Vedral–Barenco–Ekert modular adder:
//
//	b := (a + b) mod M        for a, b < M < 2^n
//
// implemented as four adder passes — add a, subtract M, conditionally
// add M back, and a compare pass that uncomputes the condition flag —
// plus constant loading of M by NOT gates and conditional loading
// through CNOT fanout. Every ancilla is returned to zero, which the
// executor checks on every run.
//
// The adder subroutine is pluggable (ripple or carry-lookahead), so the
// package also quantifies how the paper's QCLA choice propagates
// through modular arithmetic: the modular adder's Toffoli depth is
// essentially four adder depths, which is what the Van Meter–Itoh
// latency model multiplies by the number of additions per
// multiplication.
package modarith

import (
	"fmt"

	"qla/internal/adder"
	"qla/internal/revcirc"
)

// AdderKind selects the addition subroutine.
type AdderKind int

const (
	// Ripple uses the Cuccaro linear-depth adder.
	Ripple AdderKind = iota
	// CLA uses the DKRS carry-lookahead adder.
	CLA
)

// String names the adder kind.
func (k AdderKind) String() string {
	if k == CLA {
		return "CLA"
	}
	return "Ripple"
}

// Layout names the wires of the modular adder circuit.
type Layout struct {
	// N is the operand width; operands must be < M < 2^n.
	N int
	// M is the modulus baked into the circuit.
	M uint64
	// A and B are the operand registers; after execution B holds
	// (a+b) mod M and A is preserved.
	A, B []int
	// Anc lists every ancilla wire; all are restored to zero.
	Anc []int
	// Width is the total wire count.
	Width int
}

// Pack builds the input word for operands a, b.
func (l Layout) Pack(a, b uint64) uint64 {
	if a >= l.M || b >= l.M {
		panic(fmt.Sprintf("modarith: operands must be below M=%d", l.M))
	}
	var x uint64
	for i := 0; i < l.N; i++ {
		x |= (a >> uint(i) & 1) << uint(l.A[i])
		x |= (b >> uint(i) & 1) << uint(l.B[i])
	}
	return x
}

// Unpack extracts (aOut, result) and whether ancilla are clean.
func (l Layout) Unpack(x uint64) (aOut, result uint64, clean bool) {
	for i := 0; i < l.N; i++ {
		aOut |= (x >> uint(l.A[i]) & 1) << uint(i)
		result |= (x >> uint(l.B[i]) & 1) << uint(i)
	}
	clean = true
	for _, w := range l.Anc {
		if x>>uint(w)&1 == 1 {
			clean = false
		}
	}
	return aOut, result, clean
}

// builder assembles the modular adder.
type builder struct {
	c   *revcirc.Circuit
	lay Layout

	// Sub-adder wires, all width n+1 (the sum a+b needs one extra bit).
	cin  int   // shared ripple carry-in, always returned to 0
	ext  []int // b extended by the high bit: ext = B ++ [hi]
	hi   int   // the (n+1)-th bit of the running sum
	mreg []int // n+1 wires holding the constant M (loaded by X gates)
	lreg []int // n+1 wires for the conditional M load
	t    int   // "sum < M" flag from the subtraction borrow
	w    int   // scratch borrow bit for the final compare pass

	// scratch is the shared internal-ancilla region for sub-adders;
	// every pass restores it to zero, so passes can reuse it.
	scratch []int

	kind AdderKind

	// n+1-wide adder template and its layout, built once.
	add    *revcirc.Circuit
	addLay adder.Layout
	// n-wide adder for the compare pass.
	cmp    *revcirc.Circuit
	cmpLay adder.Layout
}

// ModAdd builds the modular adder circuit for modulus M at width n
// using the selected adder subroutine. Requirements: 2 ≤ M ≤ 2^n - 1
// (so operands and results fit in n bits), n ≤ 20 with the ripple
// subroutine to stay within the 64-wire packed executor (wider circuits
// run through Run/AddWide).
func ModAdd(n int, m uint64, kind AdderKind) (*revcirc.Circuit, Layout) {
	if n <= 0 || n > 62 {
		panic(fmt.Sprintf("modarith: width %d out of range", n))
	}
	if m < 2 || m > (uint64(1)<<uint(n))-1 {
		panic(fmt.Sprintf("modarith: modulus %d not in [2, 2^%d)", m, n))
	}
	b := &builder{kind: kind}
	b.plan(n, m)
	b.emit()
	return b.c, b.lay
}

func (b *builder) newAdder(width int) (*revcirc.Circuit, adder.Layout) {
	if b.kind == CLA {
		return adder.CLA(width)
	}
	return adder.Ripple(width)
}

func (b *builder) plan(n int, m uint64) {
	lay := Layout{N: n, M: m, A: make([]int, n), B: make([]int, n)}
	next := 0
	alloc := func(k int) []int {
		out := make([]int, k)
		for i := range out {
			out[i] = next
			next++
		}
		return out
	}
	b.cin = alloc(1)[0]
	copy(lay.A, alloc(n))
	copy(lay.B, alloc(n))
	b.hi = alloc(1)[0]
	b.mreg = alloc(n + 1)
	b.lreg = alloc(n + 1)
	b.t = alloc(1)[0]
	b.w = alloc(1)[0]

	// Sub-adder templates. The width-(n+1) adder drives the main
	// passes; the width-n adder drives the final compare.
	b.add, b.addLay = b.newAdder(n + 1)
	b.cmp, b.cmpLay = b.newAdder(n)

	// Sub-adders bring their own internal ancilla; reserve a shared
	// scratch region big enough for the larger template and reuse it
	// for every pass (each pass restores it to zero).
	extra := b.add.N() - (2*(n+1) + 2) // beyond cin/a/b/cout
	if b.kind == CLA {
		extra = b.add.N() - (2*(n+1) + 1) // CLA has no cin
	}
	if extra < 0 {
		extra = 0
	}
	scratch := alloc(extra)

	b.ext = append(append([]int{}, lay.B...), b.hi)
	b.lay = lay
	b.lay.Width = next
	b.lay.Anc = append([]int{b.cin, b.hi}, b.mreg...)
	b.lay.Anc = append(b.lay.Anc, b.lreg...)
	b.lay.Anc = append(b.lay.Anc, b.t, b.w)
	b.lay.Anc = append(b.lay.Anc, scratch...)
	b.scratch = scratch
	b.c = revcirc.New(b.lay.Width)
}

// mapping builds the wire map embedding a sub-adder with the given
// operand registers (x into y) and carry-out wire.
func (b *builder) mapping(sub adder.Layout, x, y []int, cout int) []int {
	mp := make([]int, 0, sub.Width)
	used := make(map[int]int) // sub wire -> big wire
	assign := func(subWire, bigWire int) {
		used[subWire] = bigWire
	}
	if sub.Cin >= 0 {
		assign(sub.Cin, b.cin)
	}
	for i, w := range sub.A {
		assign(w, x[i])
	}
	for i, w := range sub.B {
		assign(w, y[i])
	}
	assign(sub.Cout, cout)
	si := 0
	for _, w := range sub.Anc {
		assign(w, b.scratch[si])
		si++
	}
	for i := 0; i < sub.Width; i++ {
		bw, ok := used[i]
		if !ok {
			panic(fmt.Sprintf("modarith: sub-adder wire %d unassigned", i))
		}
		mp = append(mp, bw)
	}
	return mp
}

func (b *builder) emit() {
	n, m := b.lay.N, b.lay.M
	c := b.c

	// Load the constant M into mreg (high bit of the n+1-bit M is 0
	// because M < 2^n).
	for i := 0; i < n; i++ {
		if m>>uint(i)&1 == 1 {
			c.X(b.mreg[i])
		}
	}

	// Pass 1 — (hi, b) := a + b: a width-n addition whose carry-out
	// lands on the extension bit, making ext = b ++ [hi] the full
	// (n+1)-bit sum V = a + b < 2M.
	c.AppendMapped(b.cmp, b.mapping(b.cmpLay, b.lay.A, b.lay.B, b.hi))

	// Pass 2 — (ext) -= M over n+1 bits; borrow lands on t.
	c.AppendMapped(b.add.Inverse(), b.mapping(b.addLay, b.mreg, b.ext, b.t))

	// Pass 3 — conditionally add M back: load M into lreg when t=1,
	// add lreg into ext, unload. The carry of this addition equals t,
	// so one CNOT clears the carry target (we reuse w, then clear it).
	for i := 0; i < n; i++ {
		if m>>uint(i)&1 == 1 {
			c.CNOT(b.t, b.lreg[i])
		}
	}
	c.AppendMapped(b.add, b.mapping(b.addLay, b.lreg, b.ext, b.w))
	c.CNOT(b.t, b.w)
	for i := 0; i < n; i++ {
		if m>>uint(i)&1 == 1 {
			c.CNOT(b.t, b.lreg[i])
		}
	}

	// Pass 4 — uncompute t: t=1 iff result >= a iff NOT borrow(b - a).
	// Subtract a (width n, borrow onto w), flip, absorb into t, restore.
	c.AppendMapped(b.cmp.Inverse(), b.mapping(b.cmpLay, b.lay.A, b.lay.B, b.w))
	c.X(b.w)
	c.CNOT(b.w, b.t)
	c.X(b.w)
	c.AppendMapped(b.cmp, b.mapping(b.cmpLay, b.lay.A, b.lay.B, b.w))

	// Unload the constant M.
	for i := 0; i < n; i++ {
		if m>>uint(i)&1 == 1 {
			c.X(b.mreg[i])
		}
	}
}

// Add executes the modular adder on (a, b) and returns (a+b) mod M,
// panicking if the circuit corrupted a, an ancilla, or the flag — the
// tests rely on this self-check.
func Add(c *revcirc.Circuit, lay Layout, a, b uint64) uint64 {
	var out uint64
	if c.N() <= 64 {
		out = c.RunUint(lay.Pack(a, b))
	} else {
		bits := make([]bool, c.N())
		for i := 0; i < lay.N; i++ {
			bits[lay.A[i]] = a>>uint(i)&1 == 1
			bits[lay.B[i]] = b>>uint(i)&1 == 1
		}
		res := c.Run(bits)
		for i, v := range res {
			if v {
				out |= 1 << uint(i)
			}
		}
	}
	aOut, r, clean := lay.Unpack(out)
	if aOut != a || !clean {
		panic(fmt.Sprintf("modarith: corrupted state a=%d aOut=%d clean=%v", a, aOut, clean))
	}
	return r
}

// Metrics reports the cost of a modular adder — roughly four plain
// adder passes, the structural fact behind the Van Meter–Itoh counting
// of modular multiplication as a sequence of additions.
type Metrics struct {
	N            int
	M            uint64
	Kind         AdderKind
	Width        int
	Counts       revcirc.Counts
	ToffoliDepth int
	// AdderDepth is the Toffoli depth of one plain adder pass at the
	// same width, for the ratio ToffoliDepth/AdderDepth ≈ 4.
	AdderDepth int
}

// Measure builds and measures a modular adder.
func Measure(n int, m uint64, kind AdderKind) Metrics {
	c, lay := ModAdd(n, m, kind)
	var one adder.Metrics
	if kind == CLA {
		one = adder.MeasureCLA(n + 1)
	} else {
		one = adder.MeasureRipple(n + 1)
	}
	return Metrics{
		N: n, M: m, Kind: kind,
		Width:        lay.Width,
		Counts:       c.Counts(),
		ToffoliDepth: c.ToffoliDepth(),
		AdderDepth:   one.ToffoliDepth,
	}
}
