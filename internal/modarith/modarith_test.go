package modarith

import (
	"math/rand/v2"
	"testing"
)

var kinds = []AdderKind{Ripple, CLA}

// TestExhaustiveSmallModuli checks every (M, a, b) combination at small
// widths against integer modular addition, for both adder subroutines.
// Add panics if the circuit corrupts a or any ancilla, so operand
// preservation and ancilla restoration are covered implicitly.
func TestExhaustiveSmallModuli(t *testing.T) {
	for _, kind := range kinds {
		t.Run(kind.String(), func(t *testing.T) {
			for n := 2; n <= 4; n++ {
				for m := uint64(2); m < 1<<uint(n); m++ {
					c, lay := ModAdd(n, m, kind)
					for a := uint64(0); a < m; a++ {
						for b := uint64(0); b < m; b++ {
							got := Add(c, lay, a, b)
							want := (a + b) % m
							if got != want {
								t.Fatalf("n=%d M=%d: %d+%d = %d, want %d", n, m, a, b, got, want)
							}
						}
					}
				}
			}
		})
	}
}

// TestRandomWideModuli spot-checks wider circuits, including widths
// that exceed the 64-wire packed executor.
func TestRandomWideModuli(t *testing.T) {
	r := rand.New(rand.NewPCG(97, 101))
	for _, kind := range kinds {
		t.Run(kind.String(), func(t *testing.T) {
			for _, n := range []int{8, 12, 16} {
				mask := uint64(1)<<uint(n) - 1
				for rep := 0; rep < 4; rep++ {
					m := 2 + r.Uint64()%(mask-2)
					c, lay := ModAdd(n, m, kind)
					for trial := 0; trial < 40; trial++ {
						a := r.Uint64() % m
						b := r.Uint64() % m
						if got, want := Add(c, lay, a, b), (a+b)%m; got != want {
							t.Fatalf("n=%d M=%d: %d+%d = %d, want %d", n, m, a, b, got, want)
						}
					}
				}
			}
		})
	}
}

// TestPowerOfTwoBoundary exercises M just below the register capacity,
// where the intermediate sum uses the extension bit heavily.
func TestPowerOfTwoBoundary(t *testing.T) {
	n := 6
	m := uint64(1)<<uint(n) - 1 // 63
	c, lay := ModAdd(n, m, Ripple)
	for _, pair := range [][2]uint64{{62, 62}, {62, 1}, {0, 62}, {31, 32}, {0, 0}} {
		got := Add(c, lay, pair[0], pair[1])
		want := (pair[0] + pair[1]) % m
		if got != want {
			t.Fatalf("%d+%d mod %d = %d, want %d", pair[0], pair[1], m, got, want)
		}
	}
}

// TestMetricsFourAdderPasses pins the structural cost: the modular
// adder is four adder passes plus constant overhead, so its Toffoli
// depth sits near 4x one adder's.
func TestMetricsFourAdderPasses(t *testing.T) {
	for _, kind := range kinds {
		mt := Measure(12, 3677, kind)
		ratio := float64(mt.ToffoliDepth) / float64(mt.AdderDepth)
		if ratio < 2.5 || ratio > 5.5 {
			t.Fatalf("%v: depth ratio %.2f outside [2.5, 5.5] (want ~4 passes)", kind, ratio)
		}
	}
}

// TestCLAShallowerThanRipple: the adder choice propagates — the
// lookahead-based modular adder has the shorter critical path at Shor
// widths.
func TestCLAShallowerThanRipple(t *testing.T) {
	rip := Measure(16, 40961, Ripple)
	cla := Measure(16, 40961, CLA)
	if cla.ToffoliDepth >= rip.ToffoliDepth {
		t.Fatalf("CLA modular adder depth %d not below ripple %d", cla.ToffoliDepth, rip.ToffoliDepth)
	}
	if cla.Width <= rip.Width {
		t.Fatalf("CLA should pay qubits: %d vs %d", cla.Width, rip.Width)
	}
}

func TestPanics(t *testing.T) {
	cases := []func(){
		func() { ModAdd(0, 3, Ripple) },
		func() { ModAdd(4, 1, Ripple) },  // modulus too small
		func() { ModAdd(4, 16, Ripple) }, // modulus needs 5 bits
		func() {
			_, lay := ModAdd(4, 11, Ripple)
			lay.Pack(11, 0) // operand not reduced
		},
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

// TestQuickLikeSweep drives many random (M, a, b) triples through one
// mid-sized circuit per kind, as a randomized regression net.
func TestQuickLikeSweep(t *testing.T) {
	r := rand.New(rand.NewPCG(7, 13))
	for _, kind := range kinds {
		n := 10
		m := uint64(997) // prime near 2^10
		c, lay := ModAdd(n, m, kind)
		for trial := 0; trial < 300; trial++ {
			a := r.Uint64() % m
			b := r.Uint64() % m
			if got, want := Add(c, lay, a, b), (a+b)%m; got != want {
				t.Fatalf("%v: %d+%d mod %d = %d, want %d", kind, a, b, m, got, want)
			}
		}
	}
}

func BenchmarkBuildModAdd16(b *testing.B) {
	for _, kind := range kinds {
		b.Run(kind.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ModAdd(16, 40961, kind)
			}
		})
	}
}

func BenchmarkModAdd12(b *testing.B) {
	c, lay := ModAdd(12, 3677, Ripple)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Add(c, lay, uint64(i)%3677, uint64(i*7)%3677)
	}
}
