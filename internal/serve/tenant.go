package serve

// Multi-tenant admission: every request carries a tenant identity
// (X-QLA-Tenant header, "default" otherwise) that the serving stack
// threads through rate limiting, job quotas, the fair scheduler and
// /v1/stats. Throttling responses are unified here: 429s (per-tenant
// rate/quota limits) and 503s (global queue bounds) share one JSON
// error envelope, one backlog-scaled Retry-After policy, and headers
// naming the refused tenant and the deciding limit.

import (
	"fmt"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"qla/internal/sched"
)

const (
	// TenantHeader carries the caller's tenant identity. Absent means
	// sched.DefaultTenant; fleet-forwarded sweeps carry the
	// originating caller's tenant in it.
	TenantHeader = "X-QLA-Tenant"
	// ThrottleHeader names the limit that refused a throttled request:
	// "rate" (per-tenant token bucket), "quota" (per-tenant job
	// quota), or "queue" (global backlog / queue-wait bounds).
	ThrottleHeader = "X-QLA-Throttle"
)

const (
	throttleRate  = "rate"
	throttleQuota = "quota"
	throttleQueue = "queue"
)

// tenantFrom resolves and validates the request's tenant identity. An
// absent header means the default tenant; a malformed one is a client
// error, not a new tenant — names land in stats maps and scheduler
// queues, so their alphabet and length stay bounded.
func tenantFrom(r *http.Request) (string, error) {
	t := strings.TrimSpace(r.Header.Get(TenantHeader))
	if t == "" {
		return sched.DefaultTenant, nil
	}
	if len(t) > 64 {
		return "", fmt.Errorf("invalid %s %q: longer than 64 bytes", TenantHeader, t[:64]+"…")
	}
	for _, c := range t {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return "", fmt.Errorf("invalid %s %q: want [A-Za-z0-9._-]{1,64}", TenantHeader, t)
		}
	}
	return t, nil
}

// tenantTableCap bounds the rate-limiter table; past it the least
// recently seen tenant's bucket is recycled.
const tenantTableCap = 4096

// tenantTable holds the per-tenant token buckets and serve-side
// counters. One table is safe for concurrent use.
type tenantTable struct {
	rps   float64 // tokens accrued per second; <= 0 disables limiting
	burst float64 // bucket depth

	mu      sync.Mutex
	entries map[string]*tenantEntry
}

type tenantEntry struct {
	tokens   float64
	last     time.Time
	lastSeen time.Time

	requests    uint64
	rateLimited uint64
	quotaDenied uint64
	shed        uint64
}

func newTenantTable(rps, burst float64) *tenantTable {
	if burst <= 0 {
		burst = math.Max(1, 2*rps)
	}
	return &tenantTable{rps: rps, burst: burst, entries: make(map[string]*tenantEntry)}
}

// entryLocked finds or creates a tenant's bucket, recycling the least
// recently seen one when the table is full.
func (t *tenantTable) entryLocked(tenant string, now time.Time) *tenantEntry {
	e := t.entries[tenant]
	if e == nil {
		if len(t.entries) >= tenantTableCap {
			var victim string
			var oldest time.Time
			for name, v := range t.entries {
				if victim == "" || v.lastSeen.Before(oldest) {
					victim, oldest = name, v.lastSeen
				}
			}
			delete(t.entries, victim)
		}
		e = &tenantEntry{tokens: t.burst, last: now}
		t.entries[tenant] = e
	}
	e.lastSeen = now
	return e
}

// admit spends one rate-limit token for tenant, counting the request
// either way. When refused it returns the whole seconds until the
// bucket accrues a token — the client-facing wait the 429 quotes.
func (t *tenantTable) admit(tenant string) (ok bool, tokenWait int) {
	now := time.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	e := t.entryLocked(tenant, now)
	e.requests++
	if t.rps <= 0 {
		return true, 0
	}
	e.tokens = math.Min(t.burst, e.tokens+now.Sub(e.last).Seconds()*t.rps)
	e.last = now
	if e.tokens >= 1 {
		e.tokens--
		return true, 0
	}
	e.rateLimited++
	return false, int(math.Ceil((1 - e.tokens) / t.rps))
}

// note bumps a tenant's refusal counter for limits decided outside the
// token bucket (job quotas, global sheds).
func (t *tenantTable) note(tenant, limit string) {
	now := time.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	e := t.entryLocked(tenant, now)
	switch limit {
	case throttleQuota:
		e.quotaDenied++
	case throttleQueue:
		e.shed++
	}
}

// TenantStatsBody is one tenant's slice of GET /v1/stats: serve-side
// admission counters merged with the job store's quota ledger and the
// scheduler's fair-share counters.
type TenantStatsBody struct {
	// Requests counts run and sweep submissions seen; RateLimited,
	// QuotaDenied and Shed count the refusals by deciding limit.
	Requests    uint64 `json:"requests"`
	RateLimited uint64 `json:"rate_limited"`
	QuotaDenied uint64 `json:"quota_denied"`
	Shed        uint64 `json:"shed"`
	// JobsRunning / JobsStored / JobResultBytes mirror the job store's
	// per-tenant ledgers (what -tenant-max-jobs caps).
	JobsRunning    int   `json:"jobs_running"`
	JobsStored     int   `json:"jobs_stored"`
	JobResultBytes int64 `json:"job_result_bytes"`
	// SchedGrants / SchedWaits / SchedWaiting mirror the scheduler's
	// per-tenant fair-share counters.
	SchedGrants  uint64 `json:"sched_grants"`
	SchedWaits   uint64 `json:"sched_waits"`
	SchedWaiting int    `json:"sched_waiting"`
}

// tenantStats assembles the per-tenant stats map from the three
// subsystems that keep tenant ledgers.
func (s *Server) tenantStats() map[string]TenantStatsBody {
	out := make(map[string]TenantStatsBody)
	s.tenants.mu.Lock()
	for name, e := range s.tenants.entries {
		out[name] = TenantStatsBody{
			Requests:    e.requests,
			RateLimited: e.rateLimited,
			QuotaDenied: e.quotaDenied,
			Shed:        e.shed,
		}
	}
	s.tenants.mu.Unlock()
	for name, js := range s.jobs.Tenants() {
		ts := out[name]
		ts.JobsRunning, ts.JobsStored, ts.JobResultBytes = js.Running, js.Stored, js.ResultBytes
		out[name] = ts
	}
	for name, ss := range s.pool.Stats().Tenants {
		ts := out[name]
		ts.SchedGrants, ts.SchedWaits, ts.SchedWaiting = ss.Grants, ss.Waits, ss.Waiting
		out[name] = ts
	}
	return out
}

// throttle writes one unified refusal — the single path every 429 and
// throttling 503 goes through: the JSON error envelope, Retry-After,
// and the tenant/limit headers clients use to tell limits apart.
func (s *Server) throttle(w http.ResponseWriter, status int, tenant, limit string, retryAfter int, err error) {
	if status == http.StatusServiceUnavailable {
		s.shedRequests.Add(1)
	} else {
		s.throttled429.Add(1)
	}
	if limit != throttleRate {
		// admit already counted rate refusals under the bucket lock.
		s.tenants.note(tenant, limit)
	}
	w.Header().Set(TenantHeader, tenant)
	w.Header().Set(ThrottleHeader, limit)
	w.Header().Set("Retry-After", strconv.Itoa(retryAfter))
	writeError(w, status, err)
}

// rateLimit runs the per-tenant token bucket for one submission,
// writing the 429 itself when the tenant is over. The Retry-After is
// backlog-consistent: at least the bucket's token wait, never less
// than what a 503 would quote right now, capped like every
// retryAfterSeconds answer.
func (s *Server) rateLimit(w http.ResponseWriter, tenant string) bool {
	ok, tokenWait := s.tenants.admit(tenant)
	if ok {
		return true
	}
	ra := s.retryAfterSeconds()
	if tokenWait > ra {
		ra = tokenWait
	}
	if ra > 30 {
		ra = 30
	}
	s.throttle(w, http.StatusTooManyRequests, tenant, throttleRate, ra,
		fmt.Errorf("tenant %q over rate limit (%g req/s, burst %g); retry after %ds",
			tenant, s.tenants.rps, s.tenants.burst, ra))
	return false
}
