// The server's observability surface: the per-Server metrics registry
// (GET /metrics, Prometheus text exposition), the ingress trace
// middleware (X-QLA-Trace minted or accepted, stamped on the response,
// carried in the request context), per-route HTTP instruments, and the
// GET /buildinfo report.
package serve

import (
	"net/http"
	"runtime/debug"
	"strconv"
	"time"

	"qla/internal/obs"
)

// instrument registers the serve layer's own instruments: the request
// counters /v1/stats reads (the registry is their single home), the
// per-route HTTP vecs, and pull-based scheduler occupancy gauges.
func (s *Server) instrument() {
	reg := s.reg
	s.runRequests = reg.Counter("qla_serve_run_requests_total", "POST /v1/run submissions.")
	s.runsExecuted = reg.Counter("qla_serve_runs_executed_total", "Fresh engine executions (cache misses that computed).")
	s.shedRequests = reg.Counter("qla_serve_shed_total", "Requests refused 503 by the load-shed queue bound.")
	s.shedBypassMisses = reg.Counter("qla_serve_shed_bypass_misses_total",
		"Runs admitted as cache-servable whose entry vanished before compute (re-checked admission).")
	s.peerServes = reg.Counter("qla_serve_peer_serves_total", "GET /v1/cache/{hash} hits served to fleet peers.")
	s.throttled429 = reg.Counter("qla_serve_throttled_total", "Per-tenant rate-limit and quota refusals (429s).")
	s.sweepRequests = reg.Counter("qla_sweep_requests_total", "POST /v1/sweeps submissions (including joins).")
	s.sweepPoints = reg.Counter("qla_sweep_points_total", "Grid points settled across completed sweep jobs.")
	s.sweepCached = reg.Counter("qla_sweep_points_cached_total", "Sweep points served from a cache tier.")
	s.sweepFailed = reg.Counter("qla_sweep_points_failed_total", "Sweep points that settled as errors.")
	s.sweepRetried = reg.Counter("qla_sweep_points_retried_total", "Sweep points that needed more than one attempt.")
	s.sweepRetries = reg.Counter("qla_sweep_retry_attempts_total", "Extra sweep-point attempts spent by the retry policy.")
	s.journalReplayed = reg.Counter("qla_journal_replayed_jobs_total", "Jobs re-admitted from the journal at startup.")

	s.httpReqs = reg.CounterVec("qla_http_requests_total",
		"HTTP requests served, by route pattern, status code and tenant.", "route", "status", "tenant")
	s.httpDur = reg.HistogramVec("qla_http_request_duration_seconds",
		"Wall time of one HTTP request, by route pattern.", obs.LatencyBuckets, "route")
	s.httpInflight = reg.Gauge("qla_http_requests_inflight", "Requests currently being served.")

	reg.GaugeFunc("qla_sched_in_use", "Scheduler slots currently granted.", nil, func() float64 {
		return float64(s.pool.Stats().InUse)
	})
	reg.GaugeFunc("qla_sched_waiting", "Acquirers queued for a scheduler slot.", nil, func() float64 {
		return float64(s.pool.Stats().Waiting)
	})
	reg.GaugeFunc("qla_sched_capacity", "The scheduler's global slot budget.", nil, func() float64 {
		return float64(s.pool.Stats().Capacity)
	})
	reg.GaugeFunc("qla_uptime_seconds", "Seconds since the server was built.", nil, func() float64 {
		return time.Since(s.started).Seconds()
	})
}

// Registry exposes the server's metrics registry (tests and embedding
// callers; the HTTP surface is GET /metrics).
func (s *Server) Registry() *obs.Registry { return s.reg }

// trace is the ingress middleware: accept a well-formed client
// X-QLA-Trace or mint one, stamp it on the response up front (error
// envelopes read it back), and carry it in the request context — from
// where it survives context.WithoutCancel into detached computes and
// rides outbound fleet requests.
func (s *Server) trace(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := obs.SanitizeTraceID(r.Header.Get(obs.TraceHeader))
		if id == "" {
			id = obs.NewTraceID()
		}
		w.Header().Set(obs.TraceHeader, id)
		next.ServeHTTP(w, r.WithContext(obs.WithTrace(r.Context(), id)))
	})
}

// observe wraps one route's handler with the HTTP instruments. The
// tenant label reuses the admission header (invalid names collapse to
// "invalid" rather than growing the vec); the vec's own cardinality
// cap bounds hostile tenant spreads.
func (s *Server) observe(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		s.httpInflight.Add(1)
		sw := &statusWriter{ResponseWriter: w}
		h(sw, r)
		s.httpInflight.Add(-1)
		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		tenant, err := tenantFrom(r)
		if err != nil {
			tenant = "invalid"
		}
		s.httpReqs.With(route, strconv.Itoa(status), tenant).Inc()
		s.httpDur.With(route).Observe(time.Since(start).Seconds())
	}
}

// statusWriter records the status code while passing Flush through —
// the SSE route needs the flusher.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap lets http.ResponseController reach the underlying writer.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// handleMetrics is GET /metrics: the whole registry in Prometheus text
// exposition format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.reg.WriteText(w)
}

// BuildInfo is the GET /buildinfo payload, read once from the binary's
// embedded module metadata.
type BuildInfo struct {
	GoVersion string `json:"go_version"`
	Path      string `json:"path,omitempty"`
	Version   string `json:"version,omitempty"`
	// Revision/Time/Modified carry the vcs stamp when the binary was
	// built inside a checkout.
	Revision string `json:"vcs_revision,omitempty"`
	Time     string `json:"vcs_time,omitempty"`
	Modified bool   `json:"vcs_modified,omitempty"`
}

// ReadBuildInfo assembles the /buildinfo payload.
func ReadBuildInfo() BuildInfo {
	out := BuildInfo{}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return out
	}
	out.GoVersion = bi.GoVersion
	out.Path = bi.Main.Path
	out.Version = bi.Main.Version
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			out.Revision = s.Value
		case "vcs.time":
			out.Time = s.Value
		case "vcs.modified":
			out.Modified = s.Value == "true"
		}
	}
	return out
}

// handleBuildinfo is GET /buildinfo: module version and vcs revision
// from the binary's embedded build metadata.
func (s *Server) handleBuildinfo(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, ReadBuildInfo())
}
