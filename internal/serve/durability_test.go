package serve

import (
	"context"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"qla/internal/engine"
	"qla/internal/faultinject"
	"qla/internal/journal"
	"qla/internal/sweep"
)

// saturate fills the scheduler: it takes every slot and parks enough
// extra acquirers to push Waiting to want. Returns a release func.
func saturate(t *testing.T, s *Server, want int) (release func()) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	var rels []func()
	for i := 0; i < s.cfg.Workers; i++ {
		_, rel, err := s.pool.Acquire(ctx, 1)
		if err != nil {
			t.Fatal(err)
		}
		rels = append(rels, rel)
	}
	for i := 0; i < want; i++ {
		go s.pool.Acquire(ctx, 1) // parks: pool is full
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.pool.Stats().Waiting < want {
		if time.Now().After(deadline) {
			t.Fatalf("queue never reached %d waiters: %+v", want, s.pool.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	return func() {
		cancel()
		for _, rel := range rels {
			rel()
		}
	}
}

// TestLoadShedUncachedRun: with the scheduler queue over the bound, an
// uncached POST /v1/run is refused with 503 + Retry-After — but a spec
// the cache can answer is still served.
func TestLoadShedUncachedRun(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 1, MaxQueue: 1})
	// Prime the cache while the server is healthy.
	if status, _, raw := postRun(t, ts.URL, tinySpec(50)); status != http.StatusOK {
		t.Fatalf("prime run: %d %s", status, raw)
	}

	release := saturate(t, srv, 1)
	defer release()

	resp, err := http.Post(ts.URL+"/v1/run", "application/json", strings.NewReader(tinySpec(51)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("uncached run under overload: status %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" || ra == "0" {
		t.Fatalf("Retry-After header %q", ra)
	}

	// The cached spec bypasses the shed: no fresh compute needed.
	if status, xc, raw := postRun(t, ts.URL, tinySpec(50)); status != http.StatusOK || xc != "hit" {
		t.Fatalf("cached run under overload: status %d xcache %q %s", status, xc, raw)
	}

	var st StatsBody
	getJSON(t, ts.URL+"/v1/stats", &st)
	if st.ShedRequests != 1 {
		t.Fatalf("shed_requests = %d, want 1", st.ShedRequests)
	}
	if st.MaxQueue != 1 {
		t.Fatalf("max_queue = %d, want 1", st.MaxQueue)
	}
}

// TestLoadShedSweepSubmission: fresh sweep submissions are shed under
// overload; re-submitting a finished job's sweep joins it regardless.
func TestLoadShedSweepSubmission(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 1, MaxQueue: 1})
	_, sb, _ := postSweep(t, ts.URL, gridSweep)
	pollJob(t, ts.URL, sb.JobID)

	release := saturate(t, srv, 1)
	defer release()

	status, _, raw := postSweep(t, ts.URL, fig7Sweep(16))
	if status != http.StatusServiceUnavailable {
		t.Fatalf("fresh sweep under overload: status %d %s", status, raw)
	}
	if !strings.Contains(string(raw), "retry after") {
		t.Fatalf("shed body %s", raw)
	}

	// Joining an existing job needs no new compute and is never shed.
	status, sb2, raw := postSweep(t, ts.URL, gridSweep)
	if status != http.StatusOK || !sb2.Existing || sb2.JobID != sb.JobID {
		t.Fatalf("existing sweep under overload: status %d body %+v %s", status, sb2, raw)
	}
}

// TestUnboundedQueueNeverSheds: MaxQueue < 0 disables the bound.
func TestUnboundedQueueNeverSheds(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 1, MaxQueue: -1})
	release := saturate(t, srv, 2)
	// Release promptly so the queued request below can actually run.
	go func() { time.Sleep(50 * time.Millisecond); release() }()
	status, _, raw := postRun(t, ts.URL, tinySpec(52))
	if status != http.StatusOK {
		t.Fatalf("unbounded queue shed a request: %d %s", status, raw)
	}
	if n := srv.shedRequests.Value(); n != 0 {
		t.Fatalf("shed_requests = %d, want 0", n)
	}
}

// TestJournalReplayCompletesSweep is the crash-recovery core: an
// unfinished journal entry left by a dead process is re-admitted at
// startup and completes from the persisted point cache — no HTTP
// submission, no recompute.
func TestJournalReplayCompletesSweep(t *testing.T) {
	cacheDir := t.TempDir()
	journalDir := t.TempDir()

	// Process 1 runs the sweep to completion, populating the disk cache.
	srv1, ts1 := newTestServer(t, Config{CacheDir: cacheDir, JournalDir: journalDir})
	_, sb, _ := postSweep(t, ts1.URL, gridSweep)
	pollJob(t, ts1.URL, sb.JobID)
	ts1.Close()
	if err := srv1.Close(); err != nil {
		t.Fatal(err)
	}

	// Fabricate the crash: an admitted entry with no terminal record,
	// exactly what a kill -9 mid-sweep leaves behind.
	sw, err := sweep.Expand(mustDecodeSpec(t, gridSweep))
	if err != nil {
		t.Fatal(err)
	}
	if sw.Hash != sb.JobID {
		t.Fatalf("sweep hash %s != job id %s", sw.Hash, sb.JobID)
	}
	j, err := journal.Open(journalDir)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := j.Admit(sw.Hash, journal.KindSweep, "", sw.JSON); err != nil {
		t.Fatal(err)
	}
	j.Close()

	// Process 2 replays before serving.
	srv2, ts2 := newTestServer(t, Config{CacheDir: cacheDir, JournalDir: journalDir})
	n, err := srv2.ReplayJournal()
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("replayed %d jobs, want 1", n)
	}
	snap := pollJob(t, ts2.URL, sb.JobID) // job exists without any POST
	if string(snap.State) != "done" {
		t.Fatalf("replayed job state %q", snap.State)
	}
	var res sweep.Result
	getJSON(t, ts2.URL+"/v1/jobs/"+sb.JobID+"/result", &res)
	if res.Cached != res.Total {
		t.Fatalf("replayed sweep recomputed: %d/%d cached", res.Cached, res.Total)
	}
	var st StatsBody
	getJSON(t, ts2.URL+"/v1/stats", &st)
	if st.Journal == nil || st.Journal.Replayed != 1 {
		t.Fatalf("journal stats %+v", st.Journal)
	}
	// The settled entry removed its file: a third start has nothing to do.
	j3, err := journal.Open(journalDir)
	if err != nil {
		t.Fatal(err)
	}
	if pend, _ := j3.Replay(); len(pend) != 0 {
		t.Fatalf("journal not drained after completion: %+v", pend)
	}
}

// TestJournalGarbageDropped: a journal entry that cannot be decoded
// back into a sweep is dropped at replay, not retried forever.
func TestJournalGarbageDropped(t *testing.T) {
	journalDir := t.TempDir()
	j, err := journal.Open(journalDir)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := j.Admit("nothex", journal.KindSweep, "", []byte(`{"bogus":true}`)); err != nil {
		t.Fatal(err)
	}
	j.Close()

	srv, _ := newTestServer(t, Config{JournalDir: journalDir})
	n, err := srv.ReplayJournal()
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("garbage entry replayed as %d job(s)", n)
	}
	if st := srv.journal.Stats(); st.Dropped != 1 {
		t.Fatalf("journal stats %+v", st)
	}
}

// TestSweepRetryVisible: an injected transient failure is retried per
// policy, and the attempt counts surface in the job result and
// /v1/stats — the acceptance-criteria observability check.
func TestSweepRetryVisible(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	// First fault-hook call fails once, transiently; every later call
	// passes. Exactly one point needs its second attempt.
	srv.fault = faultinject.New(faultinject.Rule{}).Hook()

	_, sb, _ := postSweep(t, ts.URL, gridSweep)
	pollJob(t, ts.URL, sb.JobID)
	var res sweep.Result
	getJSON(t, ts.URL+"/v1/jobs/"+sb.JobID+"/result", &res)
	if res.OK != res.Total || res.Failed != 0 {
		t.Fatalf("sweep did not recover: %+v", res)
	}
	if res.Retried != 1 || res.RetryAttempts != 1 {
		t.Fatalf("retried=%d attempts=%d, want 1/1", res.Retried, res.RetryAttempts)
	}
	retried := 0
	for _, pr := range res.Points {
		if pr.Attempts > 1 {
			retried++
		}
	}
	if retried != 1 {
		t.Fatalf("%d points report extra attempts, want 1", retried)
	}

	var st StatsBody
	getJSON(t, ts.URL+"/v1/stats", &st)
	if st.Sweeps.PointsRetried != 1 || st.Sweeps.RetryAttempts != 1 {
		t.Fatalf("sweep stats %+v", st.Sweeps)
	}
}

// TestPointRetriesDisabled: PointRetries < 0 turns retries off — an
// injected failure lands as a failed point on its only attempt.
func TestPointRetriesDisabled(t *testing.T) {
	srv, ts := newTestServer(t, Config{PointRetries: -1})
	srv.fault = faultinject.New(faultinject.Rule{}).Hook()

	_, sb, _ := postSweep(t, ts.URL, gridSweep)
	pollJob(t, ts.URL, sb.JobID)
	var res sweep.Result
	getJSON(t, ts.URL+"/v1/jobs/"+sb.JobID+"/result", &res)
	if res.Failed != 1 || res.Retried != 0 {
		t.Fatalf("retries not disabled: %+v", res)
	}
	for _, pr := range res.Points {
		if pr.Attempts > 1 {
			t.Fatalf("point %d got %d attempts with retries off", pr.Index, pr.Attempts)
		}
	}
}

func mustDecodeSpec(t *testing.T, raw string) sweep.Spec {
	t.Helper()
	spec, err := sweep.DecodeSpec([]byte(raw))
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

// TestJobStoreSaturationRetryAfterScaled: the 503 for a saturated job
// store quotes the same backlog-scaled Retry-After as the load-shed
// path — not a constant — so clients back off proportionally.
func TestJobStoreSaturationRetryAfterScaled(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 1, MaxQueue: -1, MaxJobs: 1})
	// Park the only job slot on a sweep whose first point hangs in the
	// fault hook — upstream of the scheduler, so the pool stays ours to
	// saturate deterministically.
	srv.fault = faultinject.New(faultinject.Rule{Mode: faultinject.Hang, Times: -1}).Hook()
	_, sb, _ := postSweep(t, ts.URL, fig7Sweep(16))

	release := saturate(t, srv, 5)
	defer release()

	resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", strings.NewReader(gridSweep))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("saturated job store: status %d, want 503", resp.StatusCode)
	}
	// Workers=1 with 5 parked acquirers: 1 + 5/1 = 6 seconds.
	if ra := resp.Header.Get("Retry-After"); ra != "6" {
		t.Fatalf("Retry-After = %q, want backlog-scaled \"6\"", ra)
	}

	// Unblock the hung sweep so the job goroutine can exit.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+sb.JobID, nil)
	if resp, err := http.DefaultClient.Do(req); err == nil {
		resp.Body.Close()
	}
}

// TestShedBypassRecheck is the Contains→Get race regression test: a
// request admitted as cache-servable whose entry turns out unreadable
// must re-check the overload bound before computing, not ride its
// stale admission into a saturated pool. A directory squatting on the
// cache file path makes Contains (a stat) say stored while the read
// fails.
func TestShedBypassRecheck(t *testing.T) {
	cacheDir := t.TempDir()
	srv, ts := newTestServer(t, Config{Workers: 1, MaxQueue: 1, CacheDir: cacheDir})

	spec, err := engine.DecodeSpec([]byte(tinySpec(53)))
	if err != nil {
		t.Fatal(err)
	}
	canon, err := engine.MakeCanonical(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Mkdir(filepath.Join(cacheDir, canon.Hash), 0o755); err != nil {
		t.Fatal(err)
	}

	release := saturate(t, srv, 1)
	defer release()

	resp, err := http.Post(ts.URL+"/v1/run", "application/json", strings.NewReader(tinySpec(53)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("bypass miss under overload: status %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" || ra == "0" {
		t.Fatalf("Retry-After header %q", ra)
	}
	var st StatsBody
	getJSON(t, ts.URL+"/v1/stats", &st)
	if st.ShedBypassMisses != 1 {
		t.Fatalf("shed_bypass_misses = %d, want 1", st.ShedBypassMisses)
	}
	if st.ShedRequests != 1 {
		t.Fatalf("shed_requests = %d, want 1", st.ShedRequests)
	}
}
