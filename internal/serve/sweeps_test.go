package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"qla/internal/jobs"
	"qla/internal/sweep"
)

// gridSweep is the acceptance-criteria sweep: 3 axes (param-set ×
// level × bandwidth), 12 points, over the machine-aware EC-latency
// analysis.
const gridSweep = `{
  "base": {"experiment": "ec-latency"},
  "axes": [
    {"field": "machine.param_set", "values": ["expected", "current"]},
    {"field": "machine.level", "values": [1, 2]},
    {"field": "machine.bandwidth", "values": [1, 2, 4]}
  ]
}`

// fig7Sweep is a slower sweep (a few hundred ms) for tests that need
// to observe a running job.
func fig7Sweep(trials int) string {
	return fmt.Sprintf(`{
  "base": {"experiment": "figure7", "params": {"phys-errors": [0.004], "trials": %d, "seed": 3}},
  "axes": [{"field": "params.seed", "values": [31, 32, 33]}]
}`, trials)
}

func postSweep(t *testing.T, url, body string) (status int, sb SubmitBody, raw []byte) {
	t.Helper()
	resp, err := http.Post(url+"/v1/sweeps", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/sweeps: %v", err)
	}
	defer resp.Body.Close()
	raw, err = io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode < 300 {
		if err := json.Unmarshal(raw, &sb); err != nil {
			t.Fatalf("submit body not JSON: %v\n%s", err, raw)
		}
	}
	return resp.StatusCode, sb, raw
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil && resp.StatusCode < 300 {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("body not JSON: %v\n%s", err, raw)
		}
	}
	return resp.StatusCode
}

// pollJob polls /v1/jobs/{id} until the job reaches a terminal state.
func pollJob(t *testing.T, base, id string) jobs.Snapshot {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		var snap jobs.Snapshot
		if status := getJSON(t, base+"/v1/jobs/"+id, &snap); status != http.StatusOK {
			t.Fatalf("poll status %d", status)
		}
		if snap.State.Finished() {
			return snap
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never finished: %+v", id, snap)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestSweepSubmitPollResult is the acceptance-criteria test: a 3-axis
// 12-point sweep submitted via POST /v1/sweeps completes; its per-point
// results are byte-identical to the same Specs run one-by-one through
// POST /v1/run (which reports them as cache hits); and re-submitting
// the identical sweep joins the finished job instantly.
func TestSweepSubmitPollResult(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	status, sb, raw := postSweep(t, ts.URL, gridSweep)
	if status != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", status, raw)
	}
	if sb.Points != 12 || sb.Experiment != "ec-latency" || sb.Existing || sb.JobID == "" {
		t.Fatalf("submit body %+v", sb)
	}

	snap := pollJob(t, ts.URL, sb.JobID)
	if snap.State != jobs.StateDone || snap.Progress.Done != 12 || snap.Progress.Failed != 0 {
		t.Fatalf("terminal snapshot %+v", snap)
	}

	var res sweep.Result
	if status := getJSON(t, ts.URL+"/v1/jobs/"+sb.JobID+"/result", &res); status != http.StatusOK {
		t.Fatalf("result status %d", status)
	}
	if res.Total != 12 || res.OK != 12 || res.Failed != 0 || res.SweepHash != sb.JobID {
		t.Fatalf("sweep result: total=%d ok=%d failed=%d hash=%s", res.Total, res.OK, res.Failed, res.SweepHash)
	}

	// Per-point bit-identity with the synchronous path: running each
	// point's canonical Spec through POST /v1/run must hit the cache the
	// sweep populated and return exactly the bytes the sweep recorded.
	ss, err := sweep.DecodeSpec([]byte(gridSweep))
	if err != nil {
		t.Fatal(err)
	}
	sw, err := sweep.Expand(ss)
	if err != nil {
		t.Fatal(err)
	}
	for i, pt := range sw.Points {
		status, xc, body := postRun(t, ts.URL, string(pt.Canonical.JSON))
		if status != http.StatusOK {
			t.Fatalf("point %d run status %d: %s", i, status, body)
		}
		if xc != "hit" {
			t.Errorf("point %d missed the cache the sweep populated (X-Cache=%q)", i, xc)
		}
		if res.Points[i].SpecHash != pt.Canonical.Hash {
			t.Errorf("point %d hash mismatch", i)
		}
		if !bytes.Equal(body, res.Points[i].Result) {
			t.Errorf("point %d: /v1/run body differs from the sweep's recorded result", i)
		}
	}

	// Identical re-submission joins the finished job: instant, no new
	// execution.
	status, sb2, _ := postSweep(t, ts.URL, gridSweep)
	if status != http.StatusOK || !sb2.Existing || sb2.JobID != sb.JobID || sb2.State != jobs.StateDone {
		t.Fatalf("re-submit: status=%d body=%+v", status, sb2)
	}
	if got := srv.jobs.Stats(); got.Submitted != 1 || got.Deduped != 1 {
		t.Errorf("job stats %+v", got)
	}
}

// TestSweepResubmitAfterExpiryServedFromCache: once the job itself has
// expired, a re-submitted sweep runs as a fresh job whose points are
// all served from the result cache.
func TestSweepResubmitAfterExpiryServedFromCache(t *testing.T) {
	_, ts := newTestServer(t, Config{JobTTL: 30 * time.Millisecond})
	_, sb, _ := postSweep(t, ts.URL, gridSweep)
	pollJob(t, ts.URL, sb.JobID)
	time.Sleep(70 * time.Millisecond) // expire the finished job

	status, sb2, _ := postSweep(t, ts.URL, gridSweep)
	if status != http.StatusAccepted || sb2.Existing {
		t.Fatalf("expired sweep did not resubmit fresh: status=%d %+v", status, sb2)
	}
	pollJob(t, ts.URL, sb2.JobID)
	var res sweep.Result
	getJSON(t, ts.URL+"/v1/jobs/"+sb2.JobID+"/result", &res)
	if res.Cached < res.Total*9/10 {
		t.Errorf("re-submitted sweep served %d/%d from cache, want >= 90%%", res.Cached, res.Total)
	}
}

// TestSweepPersistenceAcrossRestart: with a cache directory, a second
// server process serves a re-submitted sweep's points from disk.
func TestSweepPersistenceAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	_, ts1 := newTestServer(t, Config{CacheDir: dir})
	_, sb, _ := postSweep(t, ts1.URL, gridSweep)
	pollJob(t, ts1.URL, sb.JobID)
	ts1.Close()

	srv2, ts2 := newTestServer(t, Config{CacheDir: dir})
	_, sb2, _ := postSweep(t, ts2.URL, gridSweep)
	pollJob(t, ts2.URL, sb2.JobID)
	var res sweep.Result
	getJSON(t, ts2.URL+"/v1/jobs/"+sb2.JobID+"/result", &res)
	if res.Cached != res.Total {
		t.Errorf("restarted server served %d/%d points from the persisted cache", res.Cached, res.Total)
	}
	if cs := srv2.CacheStats(); cs.DiskHits != uint64(res.Total) {
		t.Errorf("cache stats %+v", cs)
	}
}

// TestSweepCycleBandwidthGrid: the shipped cycle-interconnect example
// sweep — 3 axes (bandwidth × EPR generation rate × grid size), 27
// points — completes via POST /v1/sweeps; each point's canonical Spec
// is then a cache hit through POST /v1/run; and a re-submission after
// job expiry is served entirely from the per-point result cache.
func TestSweepCycleBandwidthGrid(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("..", "..", "examples", "sweep-cycle-bandwidth.json"))
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	_, ts := newTestServer(t, Config{JobTTL: 30 * time.Millisecond})
	status, sb, resp := postSweep(t, ts.URL, body)
	if status != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", status, resp)
	}
	if sb.Points != 27 || sb.Experiment != "cycle-interconnect" {
		t.Fatalf("submit body %+v", sb)
	}
	snap := pollJob(t, ts.URL, sb.JobID)
	if snap.State != jobs.StateDone || snap.Progress.Done != 27 || snap.Progress.Failed != 0 {
		t.Fatalf("terminal snapshot %+v", snap)
	}
	var res sweep.Result
	if status := getJSON(t, ts.URL+"/v1/jobs/"+sb.JobID+"/result", &res); status != http.StatusOK {
		t.Fatalf("result status %d", status)
	}
	if res.Total != 27 || res.OK != 27 || res.Failed != 0 {
		t.Fatalf("sweep result: total=%d ok=%d failed=%d", res.Total, res.OK, res.Failed)
	}

	// Every point the sweep ran is now a synchronous cache hit.
	ss, err := sweep.DecodeSpec(raw)
	if err != nil {
		t.Fatal(err)
	}
	sw, err := sweep.Expand(ss)
	if err != nil {
		t.Fatal(err)
	}
	for i, pt := range sw.Points {
		status, xc, body := postRun(t, ts.URL, string(pt.Canonical.JSON))
		if status != http.StatusOK {
			t.Fatalf("point %d run status %d: %s", i, status, body)
		}
		if xc != "hit" {
			t.Errorf("point %d missed the cache the sweep populated (X-Cache=%q)", i, xc)
		}
	}

	// After the job expires, an identical sweep runs fresh but every
	// point is served from the result cache.
	time.Sleep(70 * time.Millisecond)
	status, sb2, _ := postSweep(t, ts.URL, body)
	if status != http.StatusAccepted || sb2.Existing {
		t.Fatalf("expired sweep did not resubmit fresh: status=%d %+v", status, sb2)
	}
	pollJob(t, ts.URL, sb2.JobID)
	var res2 sweep.Result
	getJSON(t, ts.URL+"/v1/jobs/"+sb2.JobID+"/result", &res2)
	if res2.Cached != res2.Total {
		t.Errorf("re-submitted cycle sweep served %d/%d points from cache", res2.Cached, res2.Total)
	}
}

// sseEvent is one parsed Server-Sent Event frame.
type sseEvent struct {
	name string
	data string
}

// readSSE consumes an event stream until it closes or the deadline
// passes.
func readSSE(t *testing.T, r io.Reader) []sseEvent {
	t.Helper()
	var (
		events []sseEvent
		cur    sseEvent
	)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			cur.name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		case line == "":
			if cur.name != "" {
				events = append(events, cur)
			}
			cur = sseEvent{}
		}
	}
	return events
}

// TestSweepSSEMonotonicProgress: the events stream delivers monotonic
// progress from the first snapshot to done == total, terminated by a
// "done" event carrying the job snapshot.
func TestSweepSSEMonotonicProgress(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	_, sb, _ := postSweep(t, ts.URL, fig7Sweep(40000))

	resp, err := http.Get(ts.URL + "/v1/jobs/" + sb.JobID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type %q", ct)
	}
	events := readSSE(t, resp.Body) // the server closes the stream after "done"
	if len(events) < 2 {
		t.Fatalf("got %d events, want at least progress+done: %+v", len(events), events)
	}
	last := -1
	for i, ev := range events[:len(events)-1] {
		if ev.name != "progress" {
			t.Fatalf("event %d is %q, want progress", i, ev.name)
		}
		var p jobs.Progress
		if err := json.Unmarshal([]byte(ev.data), &p); err != nil {
			t.Fatalf("event %d data: %v", i, err)
		}
		if p.Total != 3 {
			t.Errorf("event %d total %d", i, p.Total)
		}
		if p.Done < last {
			t.Errorf("progress rolled back: %d after %d", p.Done, last)
		}
		last = p.Done
	}
	if last != 3 {
		t.Errorf("final progress %d/3", last)
	}
	final := events[len(events)-1]
	if final.name != "done" {
		t.Fatalf("final event %q", final.name)
	}
	var snap jobs.Snapshot
	if err := json.Unmarshal([]byte(final.data), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.State != jobs.StateDone || snap.Progress.Done != 3 {
		t.Errorf("done snapshot %+v", snap)
	}
}

// TestSweepCancel: DELETE /v1/jobs/{id} cancels a running sweep.
func TestSweepCancel(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	_, sb, _ := postSweep(t, ts.URL, fig7Sweep(120000))
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+sb.JobID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel status %d", resp.StatusCode)
	}
	snap := pollJob(t, ts.URL, sb.JobID)
	if snap.State != jobs.StateCancelled {
		t.Fatalf("state after cancel: %+v", snap)
	}
	// The cancelled job has no result to fetch.
	if status := getJSON(t, ts.URL+"/v1/jobs/"+sb.JobID+"/result", nil); status != http.StatusGone {
		t.Errorf("result status %d, want 410", status)
	}
}

// TestSweepErrorResponses: submission and job-surface client mistakes
// map to typed statuses with the JSON error envelope.
func TestSweepErrorResponses(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, tc := range []struct {
		name     string
		body     string
		status   int
		contains string
	}{
		{"malformed JSON", `{"base":`, http.StatusBadRequest, "invalid sweep JSON"},
		{"unknown field", `{"base":{"experiment":"ec-latency"},"bogus":1}`, http.StatusBadRequest, "bogus"},
		{"trailing data", `{"base":{"experiment":"ec-latency"},"axes":[{"field":"machine.level","values":[1]}]} x`, http.StatusBadRequest, "trailing data"},
		{"no axes", `{"base":{"experiment":"ec-latency"},"axes":[]}`, http.StatusBadRequest, "no axes"},
		{"unknown axis field", `{"base":{"experiment":"ec-latency"},"axes":[{"field":"machine.warp","values":[1]}]}`, http.StatusBadRequest, "unknown axis field"},
		{"bad base experiment", `{"base":{"experiment":"no-such"},"axes":[{"field":"machine.level","values":[1]}]}`, http.StatusBadRequest, "unknown experiment"},
		{"duplicate point", `{"base":{"experiment":"ec-latency"},"axes":[{"field":"machine.level","values":[0,2]}]}`, http.StatusBadRequest, "same run"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			status, _, raw := postSweep(t, ts.URL, tc.body)
			if status != tc.status {
				t.Fatalf("status %d, want %d (%s)", status, tc.status, raw)
			}
			var eb errorBody
			if err := json.Unmarshal(raw, &eb); err != nil {
				t.Fatalf("error envelope not JSON: %s", raw)
			}
			if !strings.Contains(eb.Error, tc.contains) {
				t.Errorf("error %q does not contain %q", eb.Error, tc.contains)
			}
		})
	}

	t.Run("unknown job", func(t *testing.T) {
		if status := getJSON(t, ts.URL+"/v1/jobs/nope", nil); status != http.StatusNotFound {
			t.Errorf("status %d", status)
		}
		if status := getJSON(t, ts.URL+"/v1/jobs/nope/result", nil); status != http.StatusNotFound {
			t.Errorf("result status %d", status)
		}
		if status := getJSON(t, ts.URL+"/v1/jobs/nope/events", nil); status != http.StatusNotFound {
			t.Errorf("events status %d", status)
		}
	})

	t.Run("result while running", func(t *testing.T) {
		status, sb, _ := postSweep(t, ts.URL, fig7Sweep(120000))
		if status != http.StatusAccepted {
			t.Fatalf("submit status %d", status)
		}
		var snap jobs.Snapshot
		getJSON(t, ts.URL+"/v1/jobs/"+sb.JobID, &snap)
		if !snap.State.Finished() {
			if status := getJSON(t, ts.URL+"/v1/jobs/"+sb.JobID+"/result", nil); status != http.StatusConflict {
				t.Errorf("result status %d, want 409", status)
			}
		}
		pollJob(t, ts.URL, sb.JobID)
	})
}

// TestStatsIncludeJobsAndSweeps: /v1/stats carries the job-manager and
// sweep counters, including the per-point cache-hit ratio.
func TestStatsIncludeJobsAndSweeps(t *testing.T) {
	_, ts := newTestServer(t, Config{JobTTL: 20 * time.Millisecond})
	_, sb, _ := postSweep(t, ts.URL, gridSweep)
	pollJob(t, ts.URL, sb.JobID)
	time.Sleep(50 * time.Millisecond)
	_, sb2, _ := postSweep(t, ts.URL, gridSweep) // fresh job, cached points
	pollJob(t, ts.URL, sb2.JobID)

	var stats StatsBody
	if status := getJSON(t, ts.URL+"/v1/stats", &stats); status != http.StatusOK {
		t.Fatalf("stats status %d", status)
	}
	if stats.Jobs.Submitted != 2 || stats.Jobs.Completed != 2 {
		t.Errorf("job stats %+v", stats.Jobs)
	}
	if stats.Sweeps.Requests != 2 || stats.Sweeps.Points != 24 || stats.Sweeps.PointsCached != 12 {
		t.Errorf("sweep stats %+v", stats.Sweeps)
	}
	if got := stats.Sweeps.PointCacheHitRatio; got < 0.49 || got > 0.51 {
		t.Errorf("cache-hit ratio %f", got)
	}
}
