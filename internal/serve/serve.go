// Package serve is the HTTP front door of the QLA simulator: a JSON
// Spec in, a Result out, over one shared concurrency-safe Engine. Three
// layers sit between the socket and the experiment registry:
//
//   - per-request deadlines (?timeout=30s, clamped to a server maximum)
//     mapped directly onto the engine's context plumbing;
//   - a content-addressed result cache keyed on the canonical-Spec hash
//     (engine.SpecHash) with singleflight de-duplication, legal because
//     fixed-seed results are bit-identical at any parallelism — a cache
//     hit replays the stored Result bytes verbatim;
//   - a process-wide worker-budget scheduler (internal/sched), so
//     concurrent runs share a global core budget instead of each
//     oversubscribing GOMAXPROCS.
package serve

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"runtime"
	"strings"
	"time"

	"qla/internal/cache"
	_ "qla/internal/cyclesim" // installs the cycle-* experiment family
	"qla/internal/engine"
	"qla/internal/jobs"
	"qla/internal/journal"
	"qla/internal/obs"
	"qla/internal/sched"
	"qla/internal/sweep"
)

// Routes lists the served endpoints as ServeMux patterns. The
// documentation drift test asserts EXPERIMENTS.md covers every entry;
// Handler builds the mux from the same list.
var Routes = []string{
	"POST /v1/run",
	"POST /v1/sweeps",
	"GET /v1/jobs/{id}",
	"GET /v1/jobs/{id}/events",
	"GET /v1/jobs/{id}/result",
	"DELETE /v1/jobs/{id}",
	"GET /v1/cache/{hash}",
	"POST /v1/leases/{sweep}/{point}",
	"GET /v1/leases/{sweep}",
	"GET /v1/experiments",
	"GET /v1/stats",
	"GET /metrics",
	"GET /buildinfo",
	"GET /healthz",
}

// Config sizes a Server. The zero value is production-usable: a 64 MiB
// result cache, a GOMAXPROCS worker budget, 60 s default and 10 min
// maximum per-request deadlines, 1 MiB spec bodies.
type Config struct {
	// CacheBytes is the result-cache byte budget (0 = 64 MiB, negative =
	// unbounded).
	CacheBytes int64
	// Workers is the global Monte Carlo worker budget shared by all
	// concurrent runs (0 = GOMAXPROCS).
	Workers int
	// DefaultTimeout applies when a request names none; MaxTimeout caps
	// what ?timeout= may ask for.
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// MaxBodyBytes caps the POST /v1/run and POST /v1/sweeps request
	// bodies.
	MaxBodyBytes int64
	// CacheDir enables the result cache's file persistence tier: run
	// and sweep-point results survive a restart ("" = memory only).
	CacheDir string
	// MaxJobs, MaxJobBytes and JobTTL bound the async job store (0 =
	// 256 jobs, 256 MiB of retained result bytes, finished jobs
	// retained 1 h).
	MaxJobs     int
	MaxJobBytes int64
	JobTTL      time.Duration
	// SweepTimeout caps one sweep job's total runtime (0 = 30 min); a
	// submission may ask for less with ?timeout=.
	SweepTimeout time.Duration
	// JournalDir enables the write-ahead job journal: submitted sweeps
	// are recorded durably at admission and a restarted server
	// re-admits the unfinished ones via ReplayJournal ("" = no
	// journal; jobs die with the process).
	JournalDir string
	// PointRetries is how many extra attempts a failed sweep point gets
	// (0 = 2, negative = none); PointTimeout bounds each attempt
	// (0 = 5 min). Cancellations and permanent failures never retry.
	PointRetries int
	PointTimeout time.Duration
	// MaxQueue bounds the scheduler's wait queue before new
	// uncacheable work is shed with 503 + Retry-After (0 = 4×Workers,
	// negative = unbounded).
	MaxQueue int
	// Peers lists the base URLs of the other fleet replicas; non-empty
	// enables fleet mode — the peer cache tier, sweep forwarding and
	// per-point work leasing (see fleet.go).
	Peers []string
	// SelfID names this replica in lease claims and forward headers;
	// IDs order simultaneous cross-claims, so they must be unique
	// across the fleet ("" = random hex, which is).
	SelfID string
	// LeaseTTL is how long a point lease lives without renewal — the
	// window a SIGKILLed replica's claimed points stay blocked before
	// survivors pick them up (0 = 30s).
	LeaseTTL time.Duration
	// FleetPoll is the syncer's ledger-polling interval (0 = 1s).
	FleetPoll time.Duration
	// PeerTimeout bounds one peer HTTP call — cache fetches, lease
	// claims, ledger polls (0 = 2s).
	PeerTimeout time.Duration
	// InteractiveReserve is the slot floor withheld from bulk sweep
	// points so interactive /v1/run work is admitted without waiting
	// for a saturating sweep to drain (0 = none; clamped to
	// Workers-1).
	InteractiveReserve int
	// TenantRPS / TenantBurst shape the per-tenant token-bucket rate
	// limit on run and sweep submissions; over-limit tenants get 429 +
	// Retry-After (TenantRPS 0 = unlimited; TenantBurst 0 = max(1,
	// 2×TenantRPS)).
	TenantRPS   float64
	TenantBurst float64
	// TenantMaxJobs caps one tenant's concurrently running sweep jobs
	// (429 over the cap); TenantMaxResultBytes bounds one tenant's
	// retained job result bytes, evicting that tenant's own oldest
	// finished jobs first. 0 = unlimited.
	TenantMaxJobs        int
	TenantMaxResultBytes int64
	// Logger receives the server's structured log lines, each stamped
	// with the request's trace ID (nil = slog.Default()). Tests inject
	// a captured logger here to follow one trace across replicas.
	Logger *slog.Logger
}

// Server executes Specs over HTTP. Construct with New; one Server
// handles any number of concurrent requests.
type Server struct {
	cfg     Config
	eng     *engine.Engine
	cache   *cache.Cache
	pool    *sched.Pool
	jobs    *jobs.Manager
	journal *journal.Journal // nil when no JournalDir is configured
	fleet   *fleet           // nil when no Peers are configured
	tenants *tenantTable
	started time.Time

	// reg is the server's metrics registry: every subsystem registers
	// its instruments here, GET /metrics renders it, and /v1/stats
	// reads the same instruments — one source of truth.
	reg *obs.Registry
	log *slog.Logger

	// HTTP-layer instruments (see obs.go).
	httpReqs     *obs.CounterVec
	httpDur      *obs.HistogramVec
	httpInflight *obs.Gauge
	pointMetrics *sweep.PointMetrics

	// fault is the test-only chaos seam threaded into sweep runners;
	// production servers leave it nil.
	fault sweep.FaultHook

	runRequests      *obs.Counter
	runsExecuted     *obs.Counter
	shedRequests     *obs.Counter
	shedBypassMisses *obs.Counter
	peerServes       *obs.Counter
	sweepRequests    *obs.Counter
	sweepPoints      *obs.Counter
	sweepCached      *obs.Counter
	sweepFailed      *obs.Counter
	sweepRetried     *obs.Counter
	sweepRetries     *obs.Counter
	journalReplayed  *obs.Counter
	throttled429     *obs.Counter
}

// New builds a Server with its engine, cache, scheduler and job
// manager wired together.
func New(cfg Config) *Server {
	if cfg.CacheBytes == 0 {
		cfg.CacheBytes = 64 << 20
	}
	if cfg.DefaultTimeout <= 0 {
		cfg.DefaultTimeout = 60 * time.Second
	}
	if cfg.MaxTimeout <= 0 {
		cfg.MaxTimeout = 10 * time.Minute
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 1 << 20
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.SweepTimeout <= 0 {
		cfg.SweepTimeout = 30 * time.Minute
	}
	if cfg.MaxJobs <= 0 {
		cfg.MaxJobs = 256
	}
	if cfg.JobTTL <= 0 {
		cfg.JobTTL = time.Hour
	}
	if cfg.PointRetries == 0 {
		cfg.PointRetries = 2
	}
	if cfg.PointTimeout <= 0 {
		cfg.PointTimeout = 5 * time.Minute
	}
	if cfg.MaxQueue == 0 {
		cfg.MaxQueue = 4 * cfg.Workers
	}
	if cfg.InteractiveReserve < 0 {
		cfg.InteractiveReserve = 0
	}
	if cfg.InteractiveReserve > cfg.Workers-1 {
		cfg.InteractiveReserve = cfg.Workers - 1
	}
	logger := cfg.Logger
	if logger == nil {
		logger = slog.Default()
	}
	reg := obs.NewRegistry()
	// The class queue-wait bounds piggyback on the request deadlines:
	// an interactive acquisition queued past the longest request
	// deadline, or a bulk one past the sweep budget, can never be
	// served in time anyway — fail it as overload instead.
	pool := sched.NewFair(sched.Config{
		Capacity:           cfg.Workers,
		InteractiveReserve: cfg.InteractiveReserve,
		InteractiveMaxWait: cfg.MaxTimeout,
		BulkMaxWait:        cfg.SweepTimeout,
		Metrics:            reg,
	})
	copts := []cache.Option{
		cache.WithMetrics(reg),
		cache.WithLogger(func(format string, args ...any) {
			logger.Info(fmt.Sprintf(format, args...), "subsystem", "cache")
		}),
	}
	if cfg.CacheDir != "" {
		copts = append(copts, cache.WithDir(cfg.CacheDir))
	}
	if peers := normalizePeers(cfg.Peers); len(peers) > 0 {
		cfg.Peers = peers
		if cfg.SelfID == "" {
			cfg.SelfID = randomID()
		}
		if cfg.LeaseTTL <= 0 {
			cfg.LeaseTTL = 30 * time.Second
		}
		if cfg.FleetPoll <= 0 {
			cfg.FleetPoll = time.Second
		}
		if cfg.PeerTimeout <= 0 {
			cfg.PeerTimeout = 2 * time.Second
		}
		copts = append(copts, cache.WithPeers(cfg.Peers...), cache.WithPeerTimeout(cfg.PeerTimeout))
	} else {
		cfg.Peers = nil
	}
	s := &Server{
		cfg:   cfg,
		eng:   engine.New(engine.WithScheduler(pool)),
		cache: cache.New(cfg.CacheBytes, copts...),
		pool:  pool,
		jobs: jobs.NewManager(jobs.Config{
			MaxJobs:              cfg.MaxJobs,
			MaxResultBytes:       cfg.MaxJobBytes,
			TTL:                  cfg.JobTTL,
			TenantMaxJobs:        cfg.TenantMaxJobs,
			TenantMaxResultBytes: cfg.TenantMaxResultBytes,
		}),
		tenants: newTenantTable(cfg.TenantRPS, cfg.TenantBurst),
		started: time.Now(),
		reg:     reg,
		log:     logger,
	}
	s.instrument()
	s.jobs.Instrument(reg)
	s.pointMetrics = sweep.NewPointMetrics(reg)
	if cfg.JournalDir != "" {
		j, err := journal.Open(cfg.JournalDir)
		if err != nil {
			// A broken journal directory must not take serving down with
			// it: run journal-less (jobs lose durability, nothing else)
			// and say so.
			logger.Error("job journal disabled", "err", err)
		} else {
			s.journal = j
			s.journal.Instrument(reg)
		}
	}
	if len(cfg.Peers) > 0 {
		s.fleet = newFleet(cfg, s.cache, logger)
	}
	return s
}

// normalizePeers trims whitespace and trailing slashes and drops
// empties, so flag values compose cleanly into route URLs.
func normalizePeers(peers []string) []string {
	out := make([]string, 0, len(peers))
	for _, p := range peers {
		if p = strings.TrimRight(strings.TrimSpace(p), "/"); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// randomID mints a replica identity for lease claims. Collisions would
// only confuse lease accounting between two replicas, so best-effort
// entropy with a pid fallback is plenty.
func randomID() string {
	var b [6]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("pid-%d", os.Getpid())
	}
	return hex.EncodeToString(b[:])
}

// retryPolicy resolves the configured per-point execution policy.
func (s *Server) retryPolicy() sweep.RetryPolicy {
	attempts := 1 + s.cfg.PointRetries
	if s.cfg.PointRetries < 0 {
		attempts = 1
	}
	return sweep.RetryPolicy{MaxAttempts: attempts, PointTimeout: s.cfg.PointTimeout}
}

// Close releases the server's durable resources: open journal entries
// are closed without a terminal record, so their jobs replay on the
// next start. Call it after the HTTP listener has drained.
func (s *Server) Close() error {
	return s.journal.Close()
}

// retryAfterSeconds is the one Retry-After policy every 503 shares:
// scaled to the scheduler backlog (one second, plus one per queued run
// per worker, capped) so a saturated server asks clients to back off
// proportionally instead of quoting a constant.
func (s *Server) retryAfterSeconds() int {
	st := s.pool.Stats()
	ra := 1 + st.Waiting/max(st.Capacity, 1)
	if ra > 30 {
		ra = 30
	}
	return ra
}

// overloaded implements the load-shed bound: when the scheduler's wait
// queue exceeds MaxQueue the server refuses new uncacheable work
// rather than queueing unboundedly, and retryAfter suggests when to
// try again.
func (s *Server) overloaded() (shed bool, retryAfter int) {
	if s.cfg.MaxQueue < 0 {
		return false, 0
	}
	if s.pool.Stats().Waiting < s.cfg.MaxQueue {
		return false, 0
	}
	return true, s.retryAfterSeconds()
}

// shed writes the 503 + Retry-After load-shed response through the
// unified throttle path (limit "queue": the global backlog bound
// decided, not a per-tenant limit).
func (s *Server) shed(w http.ResponseWriter, tenant string, retryAfter int, what string) {
	s.throttle(w, http.StatusServiceUnavailable, tenant, throttleQueue, retryAfter,
		fmt.Errorf("server overloaded (%d runs queued, bound %d): %s shed; retry after %ds",
			s.pool.Stats().Waiting, s.cfg.MaxQueue, what, retryAfter))
}

// Config returns the server's configuration with all defaults resolved.
func (s *Server) Config() Config { return s.cfg }

// Handler returns the routed HTTP handler.
func (s *Server) Handler() http.Handler {
	handlers := map[string]http.HandlerFunc{
		"POST /v1/run":                    s.handleRun,
		"POST /v1/sweeps":                 s.handleSweeps,
		"GET /v1/jobs/{id}":               s.handleJob,
		"GET /v1/jobs/{id}/events":        s.handleJobEvents,
		"GET /v1/jobs/{id}/result":        s.handleJobResult,
		"DELETE /v1/jobs/{id}":            s.handleJobCancel,
		"GET /v1/cache/{hash}":            s.handleCacheGet,
		"POST /v1/leases/{sweep}/{point}": s.handleLeaseClaim,
		"GET /v1/leases/{sweep}":          s.handleLeaseLedger,
		"GET /v1/experiments":             s.handleExperiments,
		"GET /v1/stats":                   s.handleStats,
		"GET /metrics":                    s.handleMetrics,
		"GET /buildinfo":                  s.handleBuildinfo,
		"GET /healthz":                    s.handleHealthz,
	}
	mux := http.NewServeMux()
	for _, route := range Routes {
		h, ok := handlers[route]
		if !ok {
			panic("serve: route " + route + " has no handler")
		}
		// Each handler is wrapped per route (latency/status/tenant
		// instruments need the route pattern, which the outer trace
		// middleware cannot see).
		mux.HandleFunc(route, s.observe(route, h))
	}
	return s.trace(mux)
}

// errorBody is the JSON error envelope every non-2xx response carries.
// Trace echoes the request's X-QLA-Trace ID so a failure report can be
// matched to the fleet's log lines.
type errorBody struct {
	Error string `json:"error"`
	Trace string `json:"trace,omitempty"`
}

// shedError carries the Retry-After hint out of a compute closure whose
// request was admitted as cache-servable but lost its entry before the
// compute started (see the re-check in handleRun).
type shedError struct{ retryAfter int }

func (e shedError) Error() string {
	return fmt.Sprintf("server overloaded; retry after %ds", e.retryAfter)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	// The trace middleware stamps the response header before the
	// handler runs, so the envelope can echo it without replumbing
	// every writeError call site.
	writeJSON(w, status, errorBody{Error: err.Error(), Trace: w.Header().Get(obs.TraceHeader)})
}

// handleRun is POST /v1/run: decode the Spec strictly, canonicalize and
// hash it (validating it completely — a spec that hashes is a spec that
// runs), then serve from the cache or execute under the per-request
// deadline. The response body of a hit is byte-identical to the miss
// that populated it; X-Cache says which happened and X-Spec-Hash names
// the content address.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	s.runRequests.Add(1)
	tenant, err := tenantFrom(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if !s.rateLimit(w, tenant) {
		return
	}
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		status := http.StatusBadRequest
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			status = http.StatusRequestEntityTooLarge
		}
		writeError(w, status, fmt.Errorf("reading spec body: %w", err))
		return
	}
	spec, err := engine.DecodeSpec(raw)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	canon, err := engine.MakeCanonical(spec)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	timeout, err := parseTimeout(r, s.cfg.DefaultTimeout, s.cfg.MaxTimeout)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// Load shedding: a saturated scheduler queue refuses fresh compute
	// work — but only fresh work. A request the cache can serve (stored
	// bytes, or an identical computation already in flight it would
	// join) costs no worker and is never shed.
	cacheable := false
	if stored, inflight := s.cache.Contains(canon.Hash); stored || inflight {
		cacheable = true
	} else if over, retryAfter := s.overloaded(); over {
		s.shed(w, tenant, retryAfter, "uncached run")
		return
	}
	// The request's compute runs as this tenant's interactive work:
	// the scheduler serves it ahead of queued bulk sweep points and
	// from the reserved slot floor.
	ctx := sched.WithIdentity(r.Context(), sched.Identity{Tenant: tenant, Class: sched.ClassInteractive})
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()

	body, hit, err := s.cache.GetOrCompute(ctx, canon.Hash, func() ([]byte, error) {
		// Contains→GetOrCompute is a check-then-act window: the stored
		// entry this request was admitted against can be evicted (or the
		// flight it meant to join can fail) before we get here, leaving a
		// request that bypassed admission holding a compute slot. Re-check
		// the overload bound at the moment compute actually starts.
		if cacheable {
			s.shedBypassMisses.Add(1)
			if over, retryAfter := s.overloaded(); over {
				return nil, shedError{retryAfter: retryAfter}
			}
		}
		// The computation is detached from the leader's request context:
		// collapsed followers share this one execution, so the leader
		// hanging up (or carrying a shorter deadline than its followers)
		// must not fail them. The run still gets the leader's timeout
		// budget; each waiter's own deadline governs only its wait.
		runCtx, cancel := context.WithTimeout(context.WithoutCancel(ctx), timeout)
		defer cancel()
		s.runsExecuted.Add(1)
		res, err := s.eng.RunCanonical(runCtx, canon)
		if err != nil {
			return nil, err
		}
		return json.Marshal(res)
	})
	if err != nil {
		var se shedError
		if errors.As(err, &se) {
			s.shed(w, tenant, se.retryAfter, "uncached run (cache entry lost before compute)")
			return
		}
		var qw *sched.QueueWaitError
		if errors.As(err, &qw) {
			// The acquisition sat queued past the class bound — overload,
			// through the same unified throttle path as the sheds.
			s.throttle(w, http.StatusServiceUnavailable, tenant, throttleQueue, s.retryAfterSeconds(), err)
			return
		}
		status := http.StatusInternalServerError
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			status = http.StatusGatewayTimeout
		case errors.Is(err, context.Canceled):
			// The client is gone; the status is for the log line only.
			status = http.StatusServiceUnavailable
		}
		writeError(w, status, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Spec-Hash", canon.Hash)
	if hit {
		w.Header().Set("X-Cache", "hit")
	} else {
		w.Header().Set("X-Cache", "miss")
	}
	w.Write(body)
}

// ParamInfo documents one experiment parameter over the wire. Default
// is always present (a zero default like swap-eps's 0 must stay
// distinguishable from having none): null exactly when Optional is
// true.
type ParamInfo struct {
	Name     string `json:"name"`
	Kind     string `json:"kind"`
	Default  any    `json:"default"`
	Optional bool   `json:"optional,omitempty"`
	Doc      string `json:"doc"`
}

// ExperimentInfo documents one registry entry over the wire.
type ExperimentInfo struct {
	Name        string      `json:"name"`
	Family      string      `json:"family,omitempty"`
	Aliases     []string    `json:"aliases,omitempty"`
	Title       string      `json:"title"`
	Doc         string      `json:"doc"`
	UsesMachine bool        `json:"uses_machine"`
	Bench       bool        `json:"bench"`
	Params      []ParamInfo `json:"params,omitempty"`
}

// handleExperiments is GET /v1/experiments: the registry catalog —
// names, aliases, docs, and parameter declarations with defaults — in
// registration order.
func (s *Server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	exps := engine.Experiments()
	out := make([]ExperimentInfo, 0, len(exps))
	for _, e := range exps {
		info := ExperimentInfo{
			Name:        e.Name,
			Family:      e.Family,
			Aliases:     e.Aliases,
			Title:       e.Title,
			Doc:         e.Doc,
			UsesMachine: e.UsesMachine,
			Bench:       e.Bench,
		}
		for _, d := range e.Params {
			info.Params = append(info.Params, ParamInfo{
				Name:     d.Name,
				Kind:     d.Kind.String(),
				Default:  d.Default,
				Optional: d.Default == nil,
				Doc:      d.Doc,
			})
		}
		out = append(out, info)
	}
	writeJSON(w, http.StatusOK, out)
}

// SweepStats aggregates the sweep workload's point-level counters.
type SweepStats struct {
	// Requests counts POST /v1/sweeps submissions (including ones that
	// joined an existing job).
	Requests uint64 `json:"requests"`
	// Points, PointsCached and PointsFailed count grid points across
	// every completed sweep job.
	Points       uint64 `json:"points"`
	PointsCached uint64 `json:"points_cached"`
	PointsFailed uint64 `json:"points_failed"`
	// PointsRetried counts points that needed more than one attempt;
	// RetryAttempts the extra attempts the retry policy spent on them.
	PointsRetried uint64 `json:"points_retried"`
	RetryAttempts uint64 `json:"retry_attempts"`
	// PointCacheHitRatio is PointsCached/Points (0 when no points ran).
	PointCacheHitRatio float64 `json:"point_cache_hit_ratio"`
}

// JournalStats wraps the journal counters with the replay total.
type JournalStats struct {
	journal.Stats
	// Replayed counts jobs this process re-admitted from the journal
	// at startup.
	Replayed uint64 `json:"replayed"`
}

// StatsBody is the GET /v1/stats payload.
type StatsBody struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	Experiments   int     `json:"experiments"`
	RunRequests   uint64  `json:"run_requests"`
	RunsExecuted  uint64  `json:"runs_executed"`
	// ShedRequests counts requests refused with 503 + Retry-After by
	// the load-shed bound; MaxQueue echoes the bound. Throttled429
	// counts per-tenant rate-limit and quota refusals (429s).
	ShedRequests uint64 `json:"shed_requests"`
	MaxQueue     int    `json:"max_queue"`
	Throttled429 uint64 `json:"throttled_429"`
	// ShedBypassMisses counts runs admitted as cache-servable whose
	// entry vanished before compute started (the check-then-act race);
	// each re-checked the overload bound at compute admission.
	ShedBypassMisses uint64 `json:"shed_bypass_misses"`
	// PeerServes counts GET /v1/cache/{hash} hits served to fleet peers.
	PeerServes uint64        `json:"peer_serves,omitempty"`
	Cache      cache.Stats   `json:"cache"`
	Scheduler  sched.Stats   `json:"scheduler"`
	Jobs       jobs.Stats    `json:"jobs"`
	Sweeps     SweepStats    `json:"sweeps"`
	Journal    *JournalStats `json:"journal,omitempty"`
	// Fleet is present when the server runs with peers configured.
	Fleet *FleetStats `json:"fleet,omitempty"`
	// Tenants breaks admission, job and scheduler counters down by
	// tenant name.
	Tenants map[string]TenantStatsBody `json:"tenants"`
}

// handleStats is GET /v1/stats: cache hit/miss/dedup counters, the
// scheduler budget, request totals, load-shed and journal state, and
// the job-manager and sweep workload counters.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	sw := SweepStats{
		Requests:      s.sweepRequests.Value(),
		Points:        s.sweepPoints.Value(),
		PointsCached:  s.sweepCached.Value(),
		PointsFailed:  s.sweepFailed.Value(),
		PointsRetried: s.sweepRetried.Value(),
		RetryAttempts: s.sweepRetries.Value(),
	}
	if sw.Points > 0 {
		sw.PointCacheHitRatio = float64(sw.PointsCached) / float64(sw.Points)
	}
	body := StatsBody{
		UptimeSeconds:    time.Since(s.started).Seconds(),
		Experiments:      len(engine.Experiments()),
		RunRequests:      s.runRequests.Value(),
		RunsExecuted:     s.runsExecuted.Value(),
		ShedRequests:     s.shedRequests.Value(),
		MaxQueue:         s.cfg.MaxQueue,
		Throttled429:     s.throttled429.Value(),
		ShedBypassMisses: s.shedBypassMisses.Value(),
		PeerServes:       s.peerServes.Value(),
		Cache:            s.cache.Stats(),
		Scheduler:        s.pool.Stats(),
		Jobs:             s.jobs.Stats(),
		Sweeps:           sw,
		Tenants:          s.tenantStats(),
	}
	if s.journal != nil {
		body.Journal = &JournalStats{Stats: s.journal.Stats(), Replayed: s.journalReplayed.Value()}
	}
	if s.fleet != nil {
		fs := s.fleet.stats()
		body.Fleet = &fs
	}
	writeJSON(w, http.StatusOK, body)
}

// handleHealthz is GET /healthz: liveness only, no dependencies.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// SchedulerStats exposes the worker pool's counters for tests asserting
// the budget is never exceeded.
func (s *Server) SchedulerStats() sched.Stats { return s.pool.Stats() }

// CacheStats exposes the result cache's counters.
func (s *Server) CacheStats() cache.Stats { return s.cache.Stats() }
