package serve

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"qla/internal/cache"
	"qla/internal/sweep"
)

// newFleetServers starts n replicas that list each other as peers.
// Peer URLs must be known before serve.New runs, so the listeners are
// bound first and handed to unstarted test servers.
func newFleetServers(t *testing.T, n int, mutate func(i int, cfg *Config)) ([]*Server, []string) {
	t.Helper()
	listeners := make([]net.Listener, n)
	urls := make([]string, n)
	for i := range listeners {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = l
		urls[i] = "http://" + l.Addr().String()
	}
	srvs := make([]*Server, n)
	for i := range srvs {
		var peers []string
		for j, u := range urls {
			if j != i {
				peers = append(peers, u)
			}
		}
		cfg := Config{
			Peers:       peers,
			SelfID:      fmt.Sprintf("replica-%d", i),
			LeaseTTL:    2 * time.Second,
			FleetPoll:   50 * time.Millisecond,
			PeerTimeout: time.Second,
		}
		if mutate != nil {
			mutate(i, &cfg)
		}
		srvs[i] = New(cfg)
		ts := httptest.NewUnstartedServer(srvs[i].Handler())
		ts.Listener.Close()
		ts.Listener = listeners[i]
		ts.Start()
		t.Cleanup(ts.Close)
	}
	return srvs, urls
}

// TestCacheRouteServesStoredBytes: GET /v1/cache/{hash} returns the
// exact cached Result bytes with the integrity header, and an unknown
// hash is an ordinary 404 — fleet mode not required for either.
func TestCacheRouteServesStoredBytes(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	resp, err := http.Post(ts.URL+"/v1/run", "application/json", strings.NewReader(tinySpec(70)))
	if err != nil {
		t.Fatal(err)
	}
	want, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	hash := resp.Header.Get("X-Spec-Hash")
	if resp.StatusCode != http.StatusOK || hash == "" {
		t.Fatalf("prime run: status %d hash %q", resp.StatusCode, hash)
	}

	resp, err = http.Get(ts.URL + "/v1/cache/" + hash)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cache route: status %d %s", resp.StatusCode, got)
	}
	if string(got) != string(want) {
		t.Fatalf("cache route bytes differ:\n%s\nvs\n%s", got, want)
	}
	if h := resp.Header.Get(cache.HashHeader); h != cache.BodyHash(want) {
		t.Fatalf("integrity header %q, want %q", h, cache.BodyHash(want))
	}
	if n := srv.peerServes.Value(); n != 1 {
		t.Fatalf("peer_serves = %d, want 1", n)
	}

	resp, err = http.Get(ts.URL + "/v1/cache/" + strings.Repeat("00", 32))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown hash: status %d, want 404", resp.StatusCode)
	}
}

// TestFleetPeerCacheHit: a Spec computed on replica A is served on
// replica B from the peer tier — no local compute, visible in both
// replicas' counters.
func TestFleetPeerCacheHit(t *testing.T) {
	srvs, urls := newFleetServers(t, 2, nil)
	if status, xc, raw := postRun(t, urls[0], tinySpec(71)); status != http.StatusOK || xc != "miss" {
		t.Fatalf("run on A: status %d xcache %q %s", status, xc, raw)
	}
	status, xc, _ := postRun(t, urls[1], tinySpec(71))
	if status != http.StatusOK || xc != "hit" {
		t.Fatalf("run on B: status %d xcache %q, want a peer-tier hit", status, xc)
	}
	if n := srvs[1].runsExecuted.Value(); n != 0 {
		t.Fatalf("B executed %d runs, want 0 (peer tier should have served it)", n)
	}
	if cs := srvs[1].CacheStats(); cs.PeerHits != 1 {
		t.Fatalf("B cache stats %+v, want peer_hits 1", cs)
	}
	if n := srvs[0].peerServes.Value(); n != 1 {
		t.Fatalf("A peer_serves = %d, want 1", n)
	}
}

// TestFleetSweepForwardedAndShared: a sweep submitted to one replica is
// forwarded to the other; both finish it, the lease protocol keeps
// duplicated compute near zero, and the fleet counters show the
// coordination happened.
func TestFleetSweepForwardedAndShared(t *testing.T) {
	srvs, urls := newFleetServers(t, 2, nil)
	_, sb, _ := postSweep(t, urls[0], gridSweep)

	// The forward is fire-and-forget; B learns about the job when the
	// replicated POST lands.
	deadline := time.Now().Add(10 * time.Second)
	for {
		var snap struct{ ID string }
		if status := getJSON(t, urls[1]+"/v1/jobs/"+sb.JobID, &snap); status == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("sweep %s never forwarded to B", sb.JobID)
		}
		time.Sleep(10 * time.Millisecond)
	}

	snapA := pollJob(t, urls[0], sb.JobID)
	snapB := pollJob(t, urls[1], sb.JobID)
	if string(snapA.State) != "done" || string(snapB.State) != "done" {
		t.Fatalf("states A=%s B=%s", snapA.State, snapB.State)
	}
	var resA, resB sweep.Result
	getJSON(t, urls[0]+"/v1/jobs/"+sb.JobID+"/result", &resA)
	getJSON(t, urls[1]+"/v1/jobs/"+sb.JobID+"/result", &resB)
	if resA.OK != resA.Total || resB.OK != resB.Total {
		t.Fatalf("incomplete results: A %+v B %+v", resA, resB)
	}
	// Every point computes somewhere once; the lease protocol plus the
	// shared cache tier should keep cross-replica duplicates to at most
	// a race or two.
	computed := (resA.Total - resA.Cached) + (resB.Total - resB.Cached)
	if computed < resA.Total || computed > resA.Total+3 {
		t.Fatalf("fleet computed %d points for a %d-point grid (A cached %d, B cached %d)",
			computed, resA.Total, resA.Cached, resB.Cached)
	}
	if n := srvs[0].fleet.forwarded.Load(); n != 1 {
		t.Fatalf("A forwarded %d sweeps, want 1", n)
	}
	claims := srvs[0].fleet.claimsSent.Load() + srvs[1].fleet.claimsSent.Load()
	if claims == 0 {
		t.Fatal("no lease claims were sent; the gate never engaged")
	}
	// Settled jobs drop their lease tables; later claims 404 (no veto).
	for i, u := range urls {
		resp, err := http.Get(u + "/v1/leases/" + sb.JobID)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("replica %d still serves the settled lease table: %d", i, resp.StatusCode)
		}
	}
}

// TestFleetClaimProtocol drives the lease state machine directly:
// grant, deny-while-leased, renewal, expiry recovery, done denial, and
// the lowest-ID tie-break.
func TestFleetClaimProtocol(t *testing.T) {
	sw, err := sweep.Expand(mustDecodeSpec(t, gridSweep))
	if err != nil {
		t.Fatal(err)
	}
	f := newFleet(Config{
		SelfID:      "b",
		Peers:       []string{"http://127.0.0.1:1"},
		LeaseTTL:    50 * time.Millisecond,
		FleetPoll:   time.Second,
		PeerTimeout: time.Second,
	}, cache.New(1<<20), slog.New(slog.DiscardHandler))
	pt := sw.Points[0].Canonical.Hash

	if _, _, known := f.claim("nope", pt, "a"); known {
		t.Fatal("unknown sweep claimed")
	}
	f.register(sw)
	if granted, state, known := f.claim(sw.Hash, pt, "a"); !known || !granted || state != "leased" {
		t.Fatalf("fresh claim: granted=%v state=%q known=%v", granted, state, known)
	}
	if granted, _, _ := f.claim(sw.Hash, pt, "z"); granted {
		t.Fatal("live foreign lease granted to a second claimer")
	}
	if granted, _, _ := f.claim(sw.Hash, pt, "a"); !granted {
		t.Fatal("holder's own renewal denied")
	}
	time.Sleep(60 * time.Millisecond) // past the TTL: the dead-lessee path
	if granted, _, _ := f.claim(sw.Hash, pt, "z"); !granted {
		t.Fatal("expired lease not reclaimable")
	}

	// Tie-break: we ("b") hold a live self-lease; a lower ID's claim
	// wins it, a higher ID's does not.
	pt2 := sw.Points[1].Canonical.Hash
	if granted, _, _ := f.claim(sw.Hash, pt2, "b"); !granted {
		t.Fatal("self-lease setup failed")
	}
	if granted, _, _ := f.claim(sw.Hash, pt2, "z"); granted {
		t.Fatal("higher ID won the tie-break")
	}
	if granted, _, _ := f.claim(sw.Hash, pt2, "a"); !granted {
		t.Fatal("lower ID lost the tie-break")
	}

	pt3 := sw.Points[2].Canonical.Hash
	f.markDone(sw.Hash, pt3)
	if granted, state, _ := f.claim(sw.Hash, pt3, "a"); granted || state != "done" {
		t.Fatalf("done point: granted=%v state=%q", granted, state)
	}

	f.unregister(sw.Hash)
	if _, _, known := f.claim(sw.Hash, pt, "a"); known {
		t.Fatal("unregistered sweep still claimable")
	}
}

// TestLeaseRouteErrors: the lease routes 404 without fleet mode or an
// active sweep, and reject claims that name no holder.
func TestLeaseRouteErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{}) // no peers: fleet off
	resp, err := http.Post(ts.URL+"/v1/leases/x/y?holder=a", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("claim without fleet mode: %d, want 404", resp.StatusCode)
	}

	_, urls := newFleetServers(t, 2, nil)
	resp, err = http.Post(urls[0]+"/v1/leases/x/y", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("claim without holder: %d, want 400", resp.StatusCode)
	}
	resp, err = http.Post(urls[0]+"/v1/leases/x/y?holder=a", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("claim for unknown sweep: %d, want 404", resp.StatusCode)
	}
}

// TestFleetRenewExtendsOwnLease: renew pushes out the local expiry of
// a lease this replica holds — and only then; foreign, done, and
// unknown leases are left alone.
func TestFleetRenewExtendsOwnLease(t *testing.T) {
	sw, err := sweep.Expand(mustDecodeSpec(t, gridSweep))
	if err != nil {
		t.Fatal(err)
	}
	f := newFleet(Config{
		SelfID:      "b",
		Peers:       []string{"http://127.0.0.1:1"},
		LeaseTTL:    time.Minute,
		FleetPoll:   time.Second,
		PeerTimeout: 100 * time.Millisecond,
	}, cache.New(1<<20), slog.New(slog.DiscardHandler))
	f.register(sw)
	ctx := context.Background()

	mine := sw.Points[0].Canonical.Hash
	if granted, _, _ := f.claim(sw.Hash, mine, "b"); !granted {
		t.Fatal("self-claim failed")
	}
	f.mu.Lock()
	before := f.sweeps[sw.Hash].points[mine].expiry
	f.mu.Unlock()
	time.Sleep(2 * time.Millisecond)
	f.renew(ctx, sw.Hash, mine)
	f.mu.Lock()
	after := f.sweeps[sw.Hash].points[mine].expiry
	f.mu.Unlock()
	if !after.After(before) {
		t.Fatalf("renewal did not extend expiry: %v -> %v", before, after)
	}
	if got := f.leaseRenewals.Load(); got != 1 {
		t.Errorf("leaseRenewals = %d, want 1", got)
	}

	// A point held by someone else must not be renewed by us.
	theirs := sw.Points[1].Canonical.Hash
	if granted, _, _ := f.claim(sw.Hash, theirs, "a"); !granted {
		t.Fatal("foreign claim failed")
	}
	f.mu.Lock()
	before = f.sweeps[sw.Hash].points[theirs].expiry
	f.mu.Unlock()
	f.renew(ctx, sw.Hash, theirs)
	f.mu.Lock()
	after = f.sweeps[sw.Hash].points[theirs].expiry
	f.mu.Unlock()
	if !after.Equal(before) {
		t.Error("renewal touched a foreign lease")
	}

	// Done and unknown points are no-ops rather than panics.
	done := sw.Points[2].Canonical.Hash
	f.markDone(sw.Hash, done)
	f.renew(ctx, sw.Hash, done)
	f.renew(ctx, "nope", mine)
	f.renew(ctx, sw.Hash, "nope")
	if got := f.leaseRenewals.Load(); got != 1 {
		t.Errorf("leaseRenewals = %d after no-op renewals, want 1", got)
	}
}
