package serve

// Fleet mode: qlaserve replicas started with -peers cooperate on the
// same workload. Three mechanisms compose, all keyed by content
// addresses (the sweep hash and per-point Spec hashes), so no replica
// needs a coordinator or any shared state beyond HTTP:
//
//   - GET /v1/cache/{hash} serves this replica's stored Result bytes to
//     the others — the peer tier internal/cache probes between a local
//     disk miss and a fresh computation.
//   - POST /v1/sweeps submissions are forwarded to every peer (marked
//     with a header so they are never re-forwarded), and identical
//     submissions collapse by content address, so the whole fleet runs
//     the same job and races through its grid together.
//   - POST /v1/leases/{sweep}/{point} claims a per-point lease before a
//     replica computes a point every cache tier missed. A replica
//     grants a claim unless the point is done locally or leased to
//     someone else; simultaneous cross-claims resolve deterministically
//     (lowest replica ID wins). Leases expire after LeaseTTL and are
//     journaled, so a SIGKILLed lessee's points simply fall back to
//     pending — the surviving replicas' gates admit them once the lease
//     lapses, and crash replay (the journal) re-admits the dead
//     replica's own job on restart.
//
// A syncer goroutine per active sweep polls each peer's lease ledger
// (GET /v1/leases/{sweep}) and prefetches completions into the local
// cache, so the fleet's results converge onto every replica while the
// sweep runs — the property the kill -9 e2e test asserts: the survivor
// finishes the dead replica's points from its own copy of their bytes.
//
// Unreachable peers never veto and never block: per-peer circuit
// breakers (the WithDegrade episode pattern) skip a dead peer after a
// few consecutive errors, and a partitioned fleet degrades to replicas
// computing independently — duplicated work the shared tier absorbs,
// never a stalled sweep.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"log/slog"
	"net/http"
	"net/url"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"qla/internal/cache"
	"qla/internal/journal"
	"qla/internal/obs"
	"qla/internal/sweep"
)

// forwardHeader marks a replicated sweep submission with the sender's
// replica ID so receivers admit it without re-forwarding — the fleet's
// loop-prevention bit.
const forwardHeader = "X-QLA-Forwarded"

// Per-peer breaker knobs, reusing the cache tier's episode pattern:
// skip a peer after a few consecutive errors, probe it occasionally.
const (
	fleetDegradeAfter = 3
	fleetProbeEvery   = 5 * time.Second
)

// fleet is the per-server coordination state of fleet mode.
type fleet struct {
	self   string
	peers  []string
	ttl    time.Duration
	poll   time.Duration
	cache  *cache.Cache
	client *http.Client
	log    *slog.Logger

	mu     sync.Mutex
	sweeps map[string]*fleetSweep
	health map[string]*peerHealth

	forwarded     atomic.Uint64
	claimsSent    atomic.Uint64
	claimsDenied  atomic.Uint64
	claimErrors   atomic.Uint64
	leasesGranted atomic.Uint64
	leaseDenials  atomic.Uint64
	prefetched    atomic.Uint64
	leaseRenewals atomic.Uint64
}

// fleetSweep tracks one active sweep's per-point lease table.
type fleetSweep struct {
	points map[string]*pointLease
}

// pointLease is one point's coordination state: free (zero value),
// leased (holder + expiry), or done.
type pointLease struct {
	holder string
	expiry time.Time
	done   bool
}

// peerHealth is one peer's circuit breaker.
type peerHealth struct {
	consecErrs int
	degraded   bool
	nextProbe  time.Time
}

func newFleet(cfg Config, c *cache.Cache, logger *slog.Logger) *fleet {
	return &fleet{
		self:   cfg.SelfID,
		peers:  cfg.Peers,
		ttl:    cfg.LeaseTTL,
		poll:   cfg.FleetPoll,
		cache:  c,
		client: &http.Client{Timeout: cfg.PeerTimeout},
		log:    logger.With("subsystem", "fleet", "self", cfg.SelfID),
		sweeps: make(map[string]*fleetSweep),
		health: make(map[string]*peerHealth),
	}
}

// register builds the lease table for sw; idempotent so a resubmission
// joining the running job never resets live leases.
func (f *fleet) register(sw *sweep.Sweep) {
	if f == nil {
		return
	}
	f.mu.Lock()
	if _, ok := f.sweeps[sw.Hash]; !ok {
		pts := make(map[string]*pointLease, len(sw.Points))
		for _, pt := range sw.Points {
			pts[pt.Canonical.Hash] = &pointLease{}
		}
		f.sweeps[sw.Hash] = &fleetSweep{points: pts}
	}
	f.mu.Unlock()
}

// unregister drops the lease table once the local job settles. Later
// claims 404, which claimers read as "no veto" — correct, because every
// result this replica produced is in the shared cache tier by then.
func (f *fleet) unregister(sweepHash string) {
	if f == nil {
		return
	}
	f.mu.Lock()
	delete(f.sweeps, sweepHash)
	f.mu.Unlock()
}

// markDone records a locally settled point, clearing any lease on it.
func (f *fleet) markDone(sweepHash, pointHash string) {
	if f == nil {
		return
	}
	f.mu.Lock()
	if fs := f.sweeps[sweepHash]; fs != nil {
		if pl := fs.points[pointHash]; pl != nil {
			pl.done = true
			pl.holder = ""
		}
	}
	f.mu.Unlock()
}

// offset is this replica's deterministic starting rotation for sw:
// different replicas drain the grid from different offsets so they
// meet in the middle instead of contending on every point in order.
func (f *fleet) offset(sw *sweep.Sweep) int {
	if f == nil || len(sw.Points) == 0 {
		return 0
	}
	h := fnv.New32a()
	io.WriteString(h, f.self)
	io.WriteString(h, sw.Hash)
	return int(h.Sum32() % uint32(len(sw.Points)))
}

// claim decides an inbound lease claim from holder. known=false means
// this replica is not tracking the sweep/point (the handler 404s and
// the claimer proceeds without a veto).
func (f *fleet) claim(sweepHash, pointHash, holder string) (granted bool, state string, known bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	fs := f.sweeps[sweepHash]
	if fs == nil {
		return false, "", false
	}
	pl := fs.points[pointHash]
	if pl == nil {
		return false, "", false
	}
	now := time.Now()
	switch {
	case pl.done:
		// Already computed here: the claimer's next cache probe will
		// find the bytes, so denying is cheaper than letting it run.
		f.leaseDenials.Add(1)
		return false, "done", true
	case pl.holder == holder:
		// Renewal of the claimer's own lease.
		pl.expiry = now.Add(f.ttl)
		return true, "leased", true
	case pl.holder == f.self && now.Before(pl.expiry) && holder < f.self:
		// Simultaneous cross-claim: both replicas tentatively
		// self-leased the point and claimed each other in the same
		// instant. Lowest ID wins, deterministically, in one round —
		// we yield here while the peer denies our in-flight claim.
		// (A committed local compute never reaches this arm: once our
		// own claim round succeeded, the peer's table holds our lease
		// and its gate defers instead of claiming.)
		pl.holder, pl.expiry = holder, now.Add(f.ttl)
		f.leasesGranted.Add(1)
		return true, "leased", true
	case pl.holder != "" && now.Before(pl.expiry):
		f.leaseDenials.Add(1)
		return false, "leased", true
	default:
		// Free, or an expired lease — the dead-lessee recovery path.
		pl.holder, pl.expiry = holder, now.Add(f.ttl)
		f.leasesGranted.Add(1)
		return true, "leased", true
	}
}

// gate implements sweep.GateFunc for one sweep: may this replica
// compute pointHash now? The local table is the fast path (a live
// foreign lease defers without network); otherwise the point is
// tentatively self-leased — so concurrent inbound claims are denied or
// tie-broken while we ask — and every reachable peer must grant.
// Unreachable peers and peers not tracking the sweep have no veto:
// availability wins, and the worst case is duplicated work the shared
// cache tier dedups. Granted leases are journaled so crash replay
// knows which points this replica had claimed.
func (f *fleet) gate(ctx context.Context, entry *journal.Entry, sweepHash, pointHash string) sweep.GateDecision {
	f.mu.Lock()
	fs := f.sweeps[sweepHash]
	if fs == nil {
		f.mu.Unlock()
		return sweep.GateProceed
	}
	pl := fs.points[pointHash]
	if pl == nil || pl.done {
		f.mu.Unlock()
		return sweep.GateProceed
	}
	now := time.Now()
	if pl.holder != "" && pl.holder != f.self && now.Before(pl.expiry) {
		f.mu.Unlock()
		return sweep.GateDefer
	}
	pl.holder, pl.expiry = f.self, now.Add(f.ttl)
	f.mu.Unlock()

	for _, peer := range f.peers {
		granted, err := f.claimFrom(ctx, peer, sweepHash, pointHash)
		if err != nil {
			f.claimErrors.Add(1)
			continue
		}
		if !granted {
			f.claimsDenied.Add(1)
			f.mu.Lock()
			// Release only our own tentative claim — a concurrent
			// tie-break may already have reassigned the lease.
			if cur := fs.points[pointHash]; cur != nil && cur.holder == f.self {
				cur.holder = ""
			}
			f.mu.Unlock()
			return sweep.GateDefer
		}
	}
	entry.Lease(pointHash, f.self)
	return sweep.GateProceed
}

// renew re-asserts this replica's lease on a point still computing:
// the local expiry is pushed out and every peer is re-claimed (a
// same-holder claim is a renewal at the grantor, extending its table's
// expiry too). Called by the sweep runner at half the lease TTL, so a
// slow point never outlives its lease and gets duplicated by a peer
// that mistook the TTL for a death certificate. Every failure is
// ignored: a missed renewal just falls back to expiry semantics.
func (f *fleet) renew(ctx context.Context, sweepHash, pointHash string) {
	if f == nil {
		return
	}
	f.mu.Lock()
	fs := f.sweeps[sweepHash]
	var pl *pointLease
	if fs != nil {
		pl = fs.points[pointHash]
	}
	if pl == nil || pl.done || pl.holder != f.self {
		// Not ours (anymore): a tie-break may have reassigned it while
		// we computed. Renewing would re-steal it — leave it alone.
		f.mu.Unlock()
		return
	}
	pl.expiry = time.Now().Add(f.ttl)
	f.mu.Unlock()
	f.leaseRenewals.Add(1)
	for _, peer := range f.peers {
		if _, err := f.claimFrom(ctx, peer, sweepHash, pointHash); err != nil {
			f.claimErrors.Add(1)
		}
	}
}

// leaseBody is the POST /v1/leases/{sweep}/{point} response payload.
type leaseBody struct {
	// Granted says the claim succeeded; State is the point's standing
	// at the grantor ("leased" or "done").
	Granted bool   `json:"granted"`
	State   string `json:"state"`
}

// claimFrom posts one lease claim to one peer, through its breaker.
func (f *fleet) claimFrom(ctx context.Context, peer, sweepHash, pointHash string) (bool, error) {
	if err := f.peerAllowed(peer); err != nil {
		return false, err
	}
	f.claimsSent.Add(1)
	granted, err := f.postClaim(ctx, peer, sweepHash, pointHash)
	f.notePeer(peer, err)
	return granted, err
}

func (f *fleet) postClaim(ctx context.Context, peer, sweepHash, pointHash string) (bool, error) {
	u := peer + "/v1/leases/" + sweepHash + "/" + pointHash + "?holder=" + url.QueryEscape(f.self)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, u, nil)
	if err != nil {
		return false, err
	}
	// The claim carries the sweep's trace, so the grantor's log line
	// joins the same story as the origin's admission.
	if id := obs.TraceFrom(ctx); id != "" {
		req.Header.Set(obs.TraceHeader, id)
	}
	resp, err := f.client.Do(req)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusNotFound:
		// The peer is not tracking the sweep (not forwarded yet, or its
		// job already settled): it has no veto.
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4<<10))
		return true, nil
	default:
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4<<10))
		return false, fmt.Errorf("fleet: peer %s: claim status %d", peer, resp.StatusCode)
	}
	var body leaseBody
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&body); err != nil {
		return false, err
	}
	return body.Granted, nil
}

// peerAllowed consults peer's breaker, claiming the probe slot when one
// is due; the returned error means "skip this peer right now".
func (f *fleet) peerAllowed(peer string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	h := f.health[peer]
	if h == nil {
		h = &peerHealth{}
		f.health[peer] = h
	}
	if h.degraded {
		if time.Now().Before(h.nextProbe) {
			return fmt.Errorf("fleet: peer %s circuit open", peer)
		}
		h.nextProbe = time.Now().Add(fleetProbeEvery)
	}
	return nil
}

// notePeer records one request's outcome in peer's breaker.
func (f *fleet) notePeer(peer string, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	h := f.health[peer]
	if h == nil {
		h = &peerHealth{}
		f.health[peer] = h
	}
	if err != nil {
		h.consecErrs++
		if !h.degraded && h.consecErrs >= fleetDegradeAfter {
			h.degraded = true
			h.nextProbe = time.Now().Add(fleetProbeEvery)
			// Logged once per episode: the steady state is silent skips.
			f.log.Warn("fleet peer skipped", "peer", peer, "consecutive_errors", h.consecErrs,
				"err", err, "probe_every", fleetProbeEvery)
		}
		return
	}
	if h.degraded {
		f.log.Info("fleet peer reachable again", "peer", peer)
	}
	h.degraded, h.consecErrs = false, 0
}

// forward replicates a freshly admitted sweep to every peer,
// fire-and-forget: content addressing makes the POST idempotent, the
// forward header stops re-forwarding, and a peer that misses it only
// loses the chance to help (its cache still converges via the others).
func (f *fleet) forward(sw *sweep.Sweep, timeout time.Duration, tenant, trace string) {
	if f == nil {
		return
	}
	log := f.log
	if trace != "" {
		log = log.With("trace", trace)
	}
	for _, peer := range f.peers {
		go func(peer string) {
			u := peer + "/v1/sweeps?timeout=" + url.QueryEscape(timeout.String())
			req, err := http.NewRequest(http.MethodPost, u, bytes.NewReader(sw.JSON))
			if err != nil {
				return
			}
			req.Header.Set("Content-Type", "application/json")
			req.Header.Set(forwardHeader, f.self)
			if tenant != "" {
				// The owner travels with the forward, so every replica
				// quota-accounts and fair-shares the sweep identically.
				req.Header.Set(TenantHeader, tenant)
			}
			if trace != "" {
				// The goroutine outlives the submitting request, so the
				// trace travels by value, not context: the peer's
				// admission logs under the same ID as ours.
				req.Header.Set(obs.TraceHeader, trace)
			}
			resp, err := f.client.Do(req)
			if err != nil {
				log.Warn("sweep forward failed", "sweep", sw.Hash[:12], "peer", peer, "err", err)
				return
			}
			io.Copy(io.Discard, io.LimitReader(resp.Body, 4<<10))
			resp.Body.Close()
			if resp.StatusCode >= 300 {
				log.Warn("sweep forward refused", "sweep", sw.Hash[:12], "peer", peer, "status", resp.StatusCode)
				return
			}
			f.forwarded.Add(1)
		}(peer)
	}
}

// sync polls each peer's lease ledger for sweepHash until done closes,
// prefetching completions this replica does not hold into the local
// cache tiers. This is what bounds the damage of a SIGKILLed replica:
// its finished points are already local (or one peer-tier probe away)
// on every survivor.
func (f *fleet) sync(sweepHash string, done <-chan struct{}) {
	if f == nil {
		return
	}
	t := time.NewTicker(f.poll)
	defer t.Stop()
	for {
		select {
		case <-done:
			return
		case <-t.C:
		}
		for _, peer := range f.peers {
			for _, h := range f.peerDone(peer, sweepHash) {
				if stored, inflight := f.cache.Contains(h); stored || inflight {
					continue
				}
				if f.cache.Prefetch(h) {
					f.prefetched.Add(1)
				}
			}
		}
	}
}

// peerDone fetches the point hashes peer has completed for sweepHash;
// every failure is just an empty answer (and breaker food).
func (f *fleet) peerDone(peer, sweepHash string) []string {
	if err := f.peerAllowed(peer); err != nil {
		return nil
	}
	resp, err := f.client.Get(peer + "/v1/leases/" + sweepHash)
	if err != nil {
		f.notePeer(peer, err)
		return nil
	}
	defer resp.Body.Close()
	f.notePeer(peer, nil)
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4<<10))
		return nil
	}
	var led LeaseLedger
	if err := json.NewDecoder(io.LimitReader(resp.Body, 8<<20)).Decode(&led); err != nil {
		return nil
	}
	return led.Done
}

// LeaseLedger is the GET /v1/leases/{sweep} payload: this replica's
// view of one active sweep — which points it has settled and which are
// under a live lease (point hash → holder ID).
type LeaseLedger struct {
	Sweep  string            `json:"sweep"`
	Total  int               `json:"total"`
	Done   []string          `json:"done"`
	Leased map[string]string `json:"leased,omitempty"`
}

// ledger snapshots the lease table for the polling route.
func (f *fleet) ledger(sweepHash string) (LeaseLedger, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	fs := f.sweeps[sweepHash]
	if fs == nil {
		return LeaseLedger{}, false
	}
	led := LeaseLedger{Sweep: sweepHash, Total: len(fs.points), Done: make([]string, 0, len(fs.points))}
	now := time.Now()
	for h, pl := range fs.points {
		switch {
		case pl.done:
			led.Done = append(led.Done, h)
		case pl.holder != "" && now.Before(pl.expiry):
			if led.Leased == nil {
				led.Leased = make(map[string]string)
			}
			led.Leased[h] = pl.holder
		}
	}
	sort.Strings(led.Done)
	return led, true
}

// FleetStats is the fleet section of GET /v1/stats.
type FleetStats struct {
	// SelfID is this replica's lease-holder identity; Peers the
	// configured fleet, PeersDown how many are currently skipped by
	// their breaker; ActiveSweeps the lease tables currently held.
	SelfID       string   `json:"self_id"`
	Peers        []string `json:"peers"`
	PeersDown    int      `json:"peers_down"`
	ActiveSweeps int      `json:"active_sweeps"`
	// ForwardedSweeps counts successful sweep replications to a peer.
	ForwardedSweeps uint64 `json:"forwarded_sweeps"`
	// ClaimsSent counts outbound lease claims; ClaimsDenied the ones a
	// peer vetoed (the point deferred); ClaimErrors claims that failed
	// to reach a peer (no veto).
	ClaimsSent   uint64 `json:"claims_sent"`
	ClaimsDenied uint64 `json:"claims_denied"`
	ClaimErrors  uint64 `json:"claim_errors"`
	// LeasesGranted / LeaseDenials count the inbound side.
	LeasesGranted uint64 `json:"leases_granted"`
	LeaseDenials  uint64 `json:"lease_denials"`
	// Prefetched counts peer completions pulled in by the syncer.
	Prefetched uint64 `json:"prefetched"`
	// LeaseRenewals counts mid-compute renewals of this replica's own
	// leases (fired at half the lease TTL for still-running points).
	LeaseRenewals uint64 `json:"lease_renewals"`
}

func (f *fleet) stats() FleetStats {
	f.mu.Lock()
	down := 0
	for _, h := range f.health {
		if h.degraded {
			down++
		}
	}
	active := len(f.sweeps)
	f.mu.Unlock()
	return FleetStats{
		SelfID:          f.self,
		Peers:           f.peers,
		PeersDown:       down,
		ActiveSweeps:    active,
		ForwardedSweeps: f.forwarded.Load(),
		ClaimsSent:      f.claimsSent.Load(),
		ClaimsDenied:    f.claimsDenied.Load(),
		ClaimErrors:     f.claimErrors.Load(),
		LeasesGranted:   f.leasesGranted.Load(),
		LeaseDenials:    f.leaseDenials.Load(),
		Prefetched:      f.prefetched.Load(),
		LeaseRenewals:   f.leaseRenewals.Load(),
	}
}

// handleCacheGet is GET /v1/cache/{hash}: the peer cache route — the
// raw cached Result bytes for one content address, from this replica's
// local tiers only (memory, then disk; never a transitive peer fetch,
// never a computation). The body's SHA-256 rides in a header so the
// receiver can reject corruption. 404 is an ordinary miss.
func (s *Server) handleCacheGet(w http.ResponseWriter, r *http.Request) {
	hash := r.PathValue("hash")
	val, ok := s.cache.Peek(hash)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no cached result for %q", hash))
		return
	}
	s.peerServes.Add(1)
	obs.L(r.Context(), s.log).Info("peer cache fetch served", "hash", hash, "bytes", len(val))
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set(cache.HashHeader, cache.BodyHash(val))
	w.Write(val)
}

// handleLeaseClaim is POST /v1/leases/{sweep}/{point}?holder=ID: a
// peer asks to compute one point. 404 when fleet mode is off or this
// replica is not tracking the sweep — which a claimer reads as "no
// veto", so an untracked sweep is never blocked, merely uncoordinated.
func (s *Server) handleLeaseClaim(w http.ResponseWriter, r *http.Request) {
	if s.fleet == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("fleet mode disabled (start with -peers)"))
		return
	}
	holder := r.URL.Query().Get("holder")
	if holder == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("missing ?holder= replica ID"))
		return
	}
	sweepHash, pointHash := r.PathValue("sweep"), r.PathValue("point")
	granted, state, known := s.fleet.claim(sweepHash, pointHash, holder)
	if !known {
		writeError(w, http.StatusNotFound, fmt.Errorf("not tracking sweep %q point %q", sweepHash, pointHash))
		return
	}
	if granted {
		obs.L(r.Context(), s.log).Info("lease granted", "sweep", sweepHash, "point", pointHash, "holder", holder)
	}
	writeJSON(w, http.StatusOK, leaseBody{Granted: granted, State: state})
}

// handleLeaseLedger is GET /v1/leases/{sweep}: the lease table — done
// points and live leases — that peers' syncers poll to prefetch this
// replica's completions.
func (s *Server) handleLeaseLedger(w http.ResponseWriter, r *http.Request) {
	if s.fleet == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("fleet mode disabled (start with -peers)"))
		return
	}
	led, ok := s.fleet.ledger(r.PathValue("sweep"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no active lease table for sweep %q", r.PathValue("sweep")))
		return
	}
	writeJSON(w, http.StatusOK, led)
}
