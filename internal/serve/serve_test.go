package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// tinySpec is a figure7 Spec small enough to run in milliseconds; seed
// varies the content address, so distinct seeds are distinct runs.
func tinySpec(seed int) string {
	return fmt.Sprintf(`{"experiment":"figure7","params":{"phys-errors":[0.004],"trials":16,"seed":%d}}`, seed)
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func postRun(t *testing.T, url, spec string) (status int, xcache string, body []byte) {
	t.Helper()
	resp, err := http.Post(url+"/v1/run", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatalf("POST /v1/run: %v", err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading body: %v", err)
	}
	return resp.StatusCode, resp.Header.Get("X-Cache"), raw
}

// TestRepeatedSpecServedFromCache is the acceptance-criteria test: a
// repeated figure7 Spec served over HTTP returns a bit-identical Result
// body from cache, with the hit visible both in X-Cache and /v1/stats.
func TestRepeatedSpecServedFromCache(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	status, xc, first := postRun(t, ts.URL, tinySpec(11))
	if status != http.StatusOK || xc != "miss" {
		t.Fatalf("first run: status=%d X-Cache=%q body=%s", status, xc, first)
	}
	status, xc, second := postRun(t, ts.URL, tinySpec(11))
	if status != http.StatusOK || xc != "hit" {
		t.Fatalf("second run: status=%d X-Cache=%q", status, xc)
	}
	if !bytes.Equal(first, second) {
		t.Fatalf("cache hit not byte-identical:\n%s\nvs\n%s", first, second)
	}
	var res struct {
		Experiment string `json:"experiment"`
		Seed       uint64 `json:"seed"`
	}
	if err := json.Unmarshal(second, &res); err != nil {
		t.Fatalf("Result body not JSON: %v", err)
	}
	if res.Experiment != "figure7" || res.Seed != 11 {
		t.Errorf("Result = %+v", res)
	}
	cs := srv.CacheStats()
	if cs.Hits != 1 || cs.Misses != 1 {
		t.Errorf("cache stats %+v", cs)
	}
}

// TestAliasAndDefaultsShareCacheEntry: a Spec spelled via alias with
// defaults made explicit hashes to the same content address as the
// canonical spelling, so the second request is a cache hit.
func TestAliasAndDefaultsShareCacheEntry(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	canonical := `{"experiment":"run-chain","params":{"trials":20,"seed":3}}`
	spelled := `{"experiment":"run-chain","params":{"seed":3,"trials":20,"links":2,"link-eps":0.06,"purify-rounds":1,"swap-eps":0}}`
	status, xc, first := postRun(t, ts.URL, canonical)
	if status != http.StatusOK || xc != "miss" {
		t.Fatalf("canonical: status=%d X-Cache=%q body=%s", status, xc, first)
	}
	status, xc, second := postRun(t, ts.URL, spelled)
	if status != http.StatusOK {
		t.Fatalf("spelled-out: status=%d body=%s", status, second)
	}
	if xc != "hit" {
		t.Errorf("equivalent spec missed the cache (X-Cache=%q)", xc)
	}
	if !bytes.Equal(first, second) {
		t.Errorf("equivalent specs returned different bodies")
	}
}

// TestConcurrentRunsSingleflightAndBudget drives ≥8 concurrent POSTs —
// a mix of identical and distinct Specs — through a 2-worker budget,
// asserting (a) responses for the same Spec are byte-identical whether
// hit or miss, (b) singleflight collapses duplicates to one execution
// per distinct Spec, and (c) the global worker budget is never
// exceeded. Run under -race in CI.
func TestConcurrentRunsSingleflightAndBudget(t *testing.T) {
	const workers = 2
	srv, ts := newTestServer(t, Config{Workers: workers})

	seeds := []int{101, 101, 101, 101, 202, 202, 303, 404, 404, 303}
	bodies := make([][]byte, len(seeds))
	var wg sync.WaitGroup
	for i, seed := range seeds {
		wg.Add(1)
		go func(i, seed int) {
			defer wg.Done()
			status, xc, body := postRun(t, ts.URL, tinySpec(seed))
			if status != http.StatusOK {
				t.Errorf("request %d: status %d body %s", i, status, body)
				return
			}
			if xc != "hit" && xc != "miss" {
				t.Errorf("request %d: X-Cache=%q", i, xc)
			}
			bodies[i] = body
		}(i, seed)
	}
	wg.Wait()

	// (a) byte-identical within each Spec group, distinct across groups.
	bySeed := map[int][]byte{}
	for i, seed := range seeds {
		if prev, ok := bySeed[seed]; ok {
			if !bytes.Equal(prev, bodies[i]) {
				t.Errorf("seed %d: divergent bodies across hit/miss", seed)
			}
		} else {
			bySeed[seed] = bodies[i]
		}
	}
	if bytes.Equal(bySeed[101], bySeed[202]) {
		t.Error("distinct seeds returned identical bodies")
	}

	// (b) one execution per distinct Spec.
	distinct := uint64(len(bySeed))
	if got := srv.runsExecuted.Value(); got != distinct {
		t.Errorf("runs executed = %d, want %d (singleflight must collapse duplicates)", got, distinct)
	}
	cs := srv.CacheStats()
	if cs.Misses != distinct {
		t.Errorf("cache misses = %d, want %d", cs.Misses, distinct)
	}
	if cs.Hits+cs.Dedups != uint64(len(seeds))-distinct {
		t.Errorf("hits(%d)+dedups(%d) != %d duplicates", cs.Hits, cs.Dedups, len(seeds)-int(distinct))
	}

	// (c) the shared worker budget held.
	ss := srv.SchedulerStats()
	if ss.Peak > workers {
		t.Errorf("scheduler peak %d exceeded the %d-worker budget", ss.Peak, workers)
	}
	if ss.InUse != 0 || ss.Waiting != 0 {
		t.Errorf("scheduler not drained: %+v", ss)
	}
}

func TestExperimentsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/experiments")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var infos []ExperimentInfo
	if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
		t.Fatal(err)
	}
	if len(infos) < 20 {
		t.Fatalf("catalog has %d experiments", len(infos))
	}
	byName := map[string]ExperimentInfo{}
	for _, e := range infos {
		byName[e.Name] = e
	}
	fig7, ok := byName["figure7"]
	if !ok {
		t.Fatal("figure7 missing from the catalog")
	}
	if len(fig7.Aliases) == 0 || fig7.Title == "" || fig7.Doc == "" {
		t.Errorf("figure7 catalog entry incomplete: %+v", fig7)
	}
	var seedParam *ParamInfo
	for i := range fig7.Params {
		if fig7.Params[i].Name == "seed" {
			seedParam = &fig7.Params[i]
		}
	}
	if seedParam == nil || seedParam.Kind != "uint" || seedParam.Doc == "" {
		t.Errorf("figure7 seed parameter undocumented: %+v", seedParam)
	}
	// A zero-valued default (run-chain swap-eps: 0) must stay
	// distinguishable from no default (equation2 p0: optional).
	param := func(exp, name string) ParamInfo {
		t.Helper()
		for _, p := range byName[exp].Params {
			if p.Name == name {
				return p
			}
		}
		t.Fatalf("%s has no parameter %q", exp, name)
		return ParamInfo{}
	}
	if p := param("run-chain", "swap-eps"); p.Optional || p.Default != 0.0 {
		t.Errorf("swap-eps catalog entry lost its zero default: %+v", p)
	}
	if p := param("equation2", "p0"); !p.Optional || p.Default != nil {
		t.Errorf("p0 catalog entry not marked optional: %+v", p)
	}
}

func TestStatsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	postRun(t, ts.URL, tinySpec(5))
	postRun(t, ts.URL, tinySpec(5))
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats StatsBody
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.RunRequests != 2 || stats.RunsExecuted != 1 {
		t.Errorf("requests=%d executed=%d", stats.RunRequests, stats.RunsExecuted)
	}
	if stats.Cache.Hits != 1 || stats.Cache.Misses != 1 {
		t.Errorf("cache stats %+v", stats.Cache)
	}
	if stats.Scheduler.Capacity < 1 {
		t.Errorf("scheduler stats %+v", stats.Scheduler)
	}
	if stats.Experiments < 20 {
		t.Errorf("experiments = %d", stats.Experiments)
	}
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	var body map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body["status"] != "ok" {
		t.Errorf("healthz body %v", body)
	}
}

// TestErrorResponses: every client mistake maps to a 400 with a JSON
// error envelope carrying the engine's validation text; deadlines map
// to 504.
func TestErrorResponses(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, tc := range []struct {
		name     string
		spec     string
		status   int
		contains string
	}{
		{"malformed JSON", `{"experiment":`, http.StatusBadRequest, "invalid spec JSON"},
		{"unknown field", `{"experiment":"table1","bogus":1}`, http.StatusBadRequest, "bogus"},
		{"trailing data", `{"experiment":"table1"} extra`, http.StatusBadRequest, "trailing data"},
		{"unknown experiment", `{"experiment":"no-such"}`, http.StatusBadRequest, "unknown experiment"},
		{"unknown parameter", `{"experiment":"figure7","params":{"bogus":1}}`, http.StatusBadRequest, "unknown parameter"},
		{"invalid chain backend", `{"experiment":"run-chain","params":{"backend":"warp"}}`, http.StatusBadRequest, `run-chain: engine: parameter "backend": invalid value "warp" (want one of "batch", "scalar")`},
		{"invalid codes backend", `{"experiment":"code-ablation","params":{"backend":"tableau"}}`, http.StatusBadRequest, `parameter "backend": invalid value "tableau" (want one of "batch", "scalar")`},
		{"machine where unused", `{"experiment":"table2","machine":{"param_set":"current"}}`, http.StatusBadRequest, "no machine configuration"},
		{"bad param set", `{"experiment":"ec-latency","machine":{"param_set":"warp"}}`, http.StatusBadRequest, `unknown parameter set "warp"`},
		{"negative level", `{"experiment":"ec-latency","machine":{"level":-1}}`, http.StatusBadRequest, "negative recursion level -1"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			status, _, body := postRun(t, ts.URL, tc.spec)
			if status != tc.status {
				t.Fatalf("status = %d, want %d (body %s)", status, tc.status, body)
			}
			var eb errorBody
			if err := json.Unmarshal(body, &eb); err != nil {
				t.Fatalf("error envelope not JSON: %s", body)
			}
			if !strings.Contains(eb.Error, tc.contains) {
				t.Errorf("error %q does not contain %q", eb.Error, tc.contains)
			}
		})
	}

	t.Run("bad timeout query", func(t *testing.T) {
		resp, err := http.Post(ts.URL+"/v1/run?timeout=banana", "application/json", strings.NewReader(tinySpec(1)))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status %d", resp.StatusCode)
		}
	})

	t.Run("deadline exceeded", func(t *testing.T) {
		resp, err := http.Post(ts.URL+"/v1/run?timeout=1ns", "application/json", strings.NewReader(tinySpec(77)))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusGatewayTimeout {
			body, _ := io.ReadAll(resp.Body)
			t.Fatalf("status %d, body %s", resp.StatusCode, body)
		}
	})

	t.Run("wrong method", func(t *testing.T) {
		resp, err := http.Get(ts.URL + "/v1/run")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("GET /v1/run status %d", resp.StatusCode)
		}
	})
}

// TestTimeoutClamped: a request asking beyond MaxTimeout is clamped,
// not rejected — the tiny run still completes.
func TestTimeoutClamped(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxTimeout: 5 * time.Second})
	resp, err := http.Post(ts.URL+"/v1/run?timeout=24h", "application/json", strings.NewReader(tinySpec(9)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d, body %s", resp.StatusCode, body)
	}
}

// TestBodyLimit: an oversized spec body is rejected as 413, not
// conflated with malformed JSON.
func TestBodyLimit(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBodyBytes: 64})
	big := `{"experiment":"figure7","params":{"phys-errors":[` + strings.Repeat("0.004,", 100) + `0.004]}}`
	status, _, body := postRun(t, ts.URL, big)
	if status != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, body %s", status, body)
	}
}
