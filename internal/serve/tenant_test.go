package serve

import (
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"qla/internal/sched"
)

// doRun posts a run spec under a tenant identity and returns the raw
// response (caller closes the body via the returned cleanup).
func doRun(t *testing.T, url, tenant, spec string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+"/v1/run", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if tenant != "" {
		req.Header.Set(TenantHeader, tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST /v1/run: %v", err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func doSweep(t *testing.T, url, tenant, body string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+"/v1/sweeps", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if tenant != "" {
		req.Header.Set(TenantHeader, tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST /v1/sweeps: %v", err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// TestTenantHeaderValidation: a malformed tenant name is a 400, not a
// fresh stats bucket.
func TestTenantHeaderValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp := doRun(t, ts.URL, "bad tenant!", tinySpec(60))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
}

// TestInteractiveNotStarvedByBulk is the acceptance-criteria
// starvation test: tenant A floods the server with a bulk sweep that
// saturates the bulk share of a 2-worker pool; tenant B's interactive
// /v1/run must still complete while the sweep is running, admitted
// through the reserved slot. Run under -race in CI.
func TestInteractiveNotStarvedByBulk(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 2, InteractiveReserve: 1})

	resp := doSweep(t, ts.URL, "tenant-a", fig7Sweep(300000))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("tenant-a sweep submit: %d", resp.StatusCode)
	}

	// Wait until bulk work actually occupies the pool.
	deadline := time.Now().Add(30 * time.Second)
	for {
		st := srv.SchedulerStats()
		if st.Classes[sched.ClassBulk.String()].InUse >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("bulk sweep never occupied the pool: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}

	// Tenant B's interactive run completes while the sweep holds the
	// bulk share — the reserve guarantees it a slot.
	start := time.Now()
	resp = doRun(t, ts.URL, "tenant-b", tinySpec(61))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("interactive run under bulk flood: status %d", resp.StatusCode)
	}
	t.Logf("interactive run completed in %v under bulk load", time.Since(start))

	st := srv.SchedulerStats()
	if st.InteractiveReserve != 1 {
		t.Errorf("stats interactive_reserve = %d, want 1", st.InteractiveReserve)
	}
	if got := st.Classes[sched.ClassBulk.String()].SlotCap; got != 1 {
		t.Errorf("bulk slot_cap = %d, want 1", got)
	}
	if st.Tenants["tenant-b"].Grants == 0 {
		t.Error("tenant-b recorded no scheduler grants")
	}

	var body StatsBody
	if status := getJSON(t, ts.URL+"/v1/stats", &body); status != http.StatusOK {
		t.Fatalf("stats: %d", status)
	}
	if body.Scheduler.InteractiveReserve != 1 {
		t.Errorf("/v1/stats scheduler.interactive_reserve = %d", body.Scheduler.InteractiveReserve)
	}
	if _, ok := body.Scheduler.Classes["interactive"]; !ok {
		t.Error("/v1/stats scheduler.classes missing interactive")
	}
	if _, ok := body.Tenants["tenant-b"]; !ok {
		t.Errorf("/v1/stats tenants missing tenant-b: %v", body.Tenants)
	}
}

// TestTenantRateLimit429: past its token bucket a tenant's submissions
// get 429 with the unified throttle envelope — tenant and limit
// headers, a Retry-After no smaller than the bucket wait — while other
// tenants are unaffected.
func TestTenantRateLimit429(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 1, TenantRPS: 0.1, TenantBurst: 1})

	resp := doRun(t, ts.URL, "rl", tinySpec(70))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first run: %d", resp.StatusCode)
	}
	resp = doRun(t, ts.URL, "rl", tinySpec(71))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second run: %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get(TenantHeader); got != "rl" {
		t.Errorf("%s = %q, want rl", TenantHeader, got)
	}
	if got := resp.Header.Get(ThrottleHeader); got != throttleRate {
		t.Errorf("%s = %q, want %q", ThrottleHeader, got, throttleRate)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || ra < 1 || ra > 30 {
		t.Errorf("Retry-After = %q, want integer in [1,30]", resp.Header.Get("Retry-After"))
	}

	// Another tenant has its own bucket.
	resp = doRun(t, ts.URL, "other", tinySpec(72))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("other tenant: %d, want 200", resp.StatusCode)
	}

	var body StatsBody
	if status := getJSON(t, ts.URL+"/v1/stats", &body); status != http.StatusOK {
		t.Fatalf("stats: %d", status)
	}
	if body.Throttled429 != 1 {
		t.Errorf("throttled_429 = %d, want 1", body.Throttled429)
	}
	tb := body.Tenants["rl"]
	if tb.RateLimited != 1 || tb.Requests != 2 {
		t.Errorf("tenant rl stats = %+v, want requests=2 rate_limited=1", tb)
	}
	_ = srv
}

// TestTenantJobQuota429: a tenant at its concurrent-job quota gets 429
// with the quota limit named; a different tenant may still submit.
func TestTenantJobQuota429(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 1, TenantMaxJobs: 1})
	// Hold the only worker slot so the first sweep stays running (its
	// bulk points queue) for the whole test.
	release := saturate(t, srv, 0)
	defer release()

	resp := doSweep(t, ts.URL, "q", fig7Sweep(4000))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first sweep: %d", resp.StatusCode)
	}
	resp = doSweep(t, ts.URL, "q", fig7Sweep(4001))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second sweep: %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get(ThrottleHeader); got != throttleQuota {
		t.Errorf("%s = %q, want %q", ThrottleHeader, got, throttleQuota)
	}
	if got := resp.Header.Get(TenantHeader); got != "q" {
		t.Errorf("%s = %q, want q", TenantHeader, got)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("quota 429 missing Retry-After")
	}

	resp = doSweep(t, ts.URL, "unconstrained", fig7Sweep(4002))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("other tenant sweep: %d, want 202", resp.StatusCode)
	}

	var body StatsBody
	if status := getJSON(t, ts.URL+"/v1/stats", &body); status != http.StatusOK {
		t.Fatalf("stats: %d", status)
	}
	if got := body.Tenants["q"].QuotaDenied; got != 1 {
		t.Errorf("tenant q quota_denied = %d, want 1", got)
	}
	if body.Jobs.QuotaDenied != 1 {
		t.Errorf("jobs quota_denied = %d, want 1", body.Jobs.QuotaDenied)
	}
}
