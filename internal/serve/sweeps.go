package serve

// The async sweep surface: POST /v1/sweeps fans one base Spec out over
// a machine/parameter grid behind the same cache and scheduler the
// synchronous /v1/run path uses, and returns a job immediately. The
// job ID is the canonical SweepSpec's content address, so identical
// submissions — concurrent or repeated — collapse onto one job, and
// every grid point is itself content-addressed: a re-submitted sweep
// (after the job expires) replays its points from the result cache
// rather than recomputing them. Progress is pollable (GET
// /v1/jobs/{id}) and streamable as Server-Sent Events
// (GET /v1/jobs/{id}/events).

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"qla/internal/jobs"
	"qla/internal/journal"
	"qla/internal/obs"
	"qla/internal/sweep"
)

// SubmitBody is the POST /v1/sweeps response payload.
type SubmitBody struct {
	// JobID is the sweep's content address; poll /v1/jobs/{id} with it.
	JobID string `json:"job_id"`
	// Existing reports that an identical sweep was already stored
	// (running or finished) and this submission joined it.
	Existing bool `json:"existing,omitempty"`
	// Experiment is the canonical base experiment; Points the grid size.
	Experiment string `json:"experiment"`
	Points     int    `json:"points"`
	// State and Progress snapshot the job at submission time.
	State    jobs.State    `json:"state"`
	Progress jobs.Progress `json:"progress"`
}

// parseTimeout resolves the ?timeout= query against a default and cap.
func parseTimeout(r *http.Request, def, max time.Duration) (time.Duration, error) {
	timeout := def
	if q := r.URL.Query().Get("timeout"); q != "" {
		d, err := time.ParseDuration(q)
		if err != nil || d <= 0 {
			return 0, fmt.Errorf("invalid timeout %q (want a positive Go duration, e.g. 30s)", q)
		}
		timeout = d
	}
	if timeout > max {
		timeout = max
	}
	return timeout, nil
}

// handleSweeps is POST /v1/sweeps: decode the SweepSpec strictly,
// expand it (full validation — every grid point canonicalizes, so a
// sweep that submits is a sweep that runs), and submit it as an async
// job keyed by the sweep's content address. The response is 202 for a
// newly started job, 200 when the submission joined an existing one.
func (s *Server) handleSweeps(w http.ResponseWriter, r *http.Request) {
	s.sweepRequests.Add(1)
	tenant, err := tenantFrom(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// Fleet-forwarded copies skip the per-tenant limits: the
	// originating replica already enforced them, and a replica-count
	// fan-out must not multiply one submission's token spend. The
	// tenant still rides along for scheduling and stats.
	forwarded := r.Header.Get(forwardHeader) != ""
	if !forwarded && !s.rateLimit(w, tenant) {
		return
	}
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		status := http.StatusBadRequest
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			status = http.StatusRequestEntityTooLarge
		}
		writeError(w, status, fmt.Errorf("reading sweep body: %w", err))
		return
	}
	ss, err := sweep.DecodeSpec(raw)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	sw, err := sweep.Expand(ss)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	timeout, err := parseTimeout(r, s.cfg.SweepTimeout, s.cfg.SweepTimeout)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// Load shedding: a fresh sweep is a batch of compute, so a
	// saturated scheduler queue refuses it too — unless the sweep's
	// content address already names a stored job, which joining costs
	// nothing.
	if _, exists := s.jobs.Get(sw.Hash); !exists {
		if over, retryAfter := s.overloaded(); over {
			s.shed(w, tenant, retryAfter, "sweep submission")
			return
		}
	}

	trace := obs.TraceFrom(r.Context())
	job, created, err := s.startSweep(sw, timeout, nil, tenant, forwarded, trace)
	if err != nil {
		var qe *jobs.QuotaError
		if errors.As(err, &qe) {
			// The tenant is over its concurrent-job quota: client
			// pacing, not server overload — 429, through the same
			// throttle path and backlog-scaled Retry-After as the rest.
			s.throttle(w, http.StatusTooManyRequests, tenant, throttleQuota, s.retryAfterSeconds(), err)
			return
		}
		// The bounded store is saturated with running jobs: ask the
		// client to retry — with the same backlog-scaled hint every
		// other 503 quotes — nothing about the sweep itself is wrong.
		s.throttle(w, http.StatusServiceUnavailable, tenant, throttleQueue, s.retryAfterSeconds(), err)
		return
	}
	// The admission log line: one trace ID connects this line to the
	// peer replicas' own admissions (the forward carries it), their
	// lease grants, and their peer cache fetches.
	obs.L(r.Context(), s.log).Info("sweep admitted", "sweep", sw.Hash,
		"points", len(sw.Points), "tenant", tenant, "joined", !created, "forwarded", forwarded)
	if created && !forwarded {
		// Replicate a locally originated sweep to the fleet (nil-safe
		// no-op without peers). Forwarded copies carry the header, so
		// this never loops; the tenant rides along so every replica
		// schedules the sweep under its real owner.
		s.fleet.forward(sw, timeout, tenant, trace)
	}
	snap := job.Snapshot()
	w.Header().Set("Location", "/v1/jobs/"+job.ID())
	w.Header().Set("X-Sweep-Hash", sw.Hash)
	status := http.StatusAccepted
	if !created {
		status = http.StatusOK
	}
	writeJSON(w, status, SubmitBody{
		JobID:      job.ID(),
		Existing:   !created,
		Experiment: sw.Experiment,
		Points:     len(sw.Points),
		State:      snap.State,
		Progress:   snap.Progress,
	})
}

// startSweep submits sw as an async job, wiring in the durable and
// failure-tolerant machinery: the write-ahead journal entry (admitted
// before the job starts, fed per-point completion records, finished
// with the job's terminal state), the per-point retry policy, and the
// test-only fault seam. resumed carries the already-open journal entry
// when the sweep is being re-admitted by ReplayJournal; nil admits a
// fresh one. tenant is the owning tenant: the job is quota-accounted
// to it (unless quotaExempt — fleet-forwarded and journal-replayed
// work was admitted elsewhere/earlier) and every point acquisition
// runs as that tenant's bulk work. trace is the admitting request's
// trace ID: the job manager detaches the run from the request context,
// so the trace is re-attached by value inside the closure — lease
// claims, renewals and peer cache fetches all carry it from there.
func (s *Server) startSweep(sw *sweep.Sweep, timeout time.Duration, resumed *journal.Entry, tenant string, quotaExempt bool, trace string) (*jobs.Job, bool, error) {
	entry := resumed
	freshEntry := false
	if entry == nil && s.journal != nil {
		e, fresh, err := s.journal.Admit(sw.Hash, journal.KindSweep, tenant, sw.JSON)
		if err != nil {
			// Journal trouble must not block serving: the job runs, it
			// just won't survive a crash.
			s.log.Error("journal admission failed; job runs without durability",
				"sweep", sw.Hash[:12], "err", err, "trace", trace)
		} else {
			entry, freshEntry = e, fresh
		}
	}
	opts := jobs.SubmitOptions{Tenant: tenant, Total: len(sw.Points), BypassQuota: quotaExempt}
	job, created, err := s.jobs.Submit(sw.Hash, opts, func(ctx context.Context, report func(jobs.Progress)) ([]byte, error) {
		runCtx, cancel := context.WithTimeout(obs.WithTrace(ctx, trace), timeout)
		defer cancel()
		// Fleet mode (every call below is a nil-safe no-op without
		// peers): track the sweep's lease table for the job's lifetime,
		// and poll peers' ledgers so their completions land in the local
		// cache while we run.
		s.fleet.register(sw)
		defer s.fleet.unregister(sw.Hash)
		syncDone := make(chan struct{})
		defer close(syncDone)
		go s.fleet.sync(sw.Hash, syncDone)
		runner := &sweep.Runner{
			Engine:  s.eng,
			Cache:   s.cache,
			Retry:   s.retryPolicy(),
			Fault:   s.fault,
			Tenant:  tenant,
			Offset:  s.fleet.offset(sw),
			Metrics: s.pointMetrics,
			Observer: func(pr sweep.PointResult) {
				entry.Point(pr.SpecHash, pr.Status, pr.Cached, pr.Attempts)
				if pr.Status == "ok" {
					// Only successes enter the ledger: a failed point has
					// no bytes to serve, so advertising it as done would
					// wedge peers deferring to a result that never comes.
					s.fleet.markDone(sw.Hash, pr.SpecHash)
				}
			},
		}
		if s.fleet != nil {
			runner.Gate = func(gctx context.Context, pointHash string) sweep.GateDecision {
				return s.fleet.gate(gctx, entry, sw.Hash, pointHash)
			}
			// Mid-compute lease renewal: a point still computing at
			// half the lease TTL re-asserts its claim so peers do not
			// re-run work that merely outlived the TTL. Renewal
			// failures are ignored — expiry semantics take over.
			runner.Renew = func(rctx context.Context, pointHash string) {
				s.fleet.renew(rctx, sw.Hash, pointHash)
			}
			runner.RenewEvery = s.cfg.LeaseTTL / 2
		}
		res, runErr := runner.Run(runCtx, sw, func(p sweep.Progress) {
			report(jobs.Progress{Total: p.Total, Done: p.Done, Cached: p.Cached, Failed: p.Failed, Retries: p.Retries, Deferred: p.Deferred})
		})
		// The terminal record settles the journal entry whatever the
		// outcome; in particular a failure is recorded (and the file
		// removed) rather than left to replay as a stale failed job.
		switch {
		case runErr == nil:
			entry.Finish(string(jobs.StateDone))
		case errors.Is(runErr, context.Canceled):
			entry.Finish(string(jobs.StateCancelled))
		default:
			entry.Finish(string(jobs.StateFailed))
		}
		if runErr != nil {
			return nil, runErr
		}
		s.sweepPoints.Add(uint64(res.Total))
		s.sweepCached.Add(uint64(res.Cached))
		s.sweepFailed.Add(uint64(res.Failed))
		s.sweepRetried.Add(uint64(res.Retried))
		s.sweepRetries.Add(uint64(res.RetryAttempts))
		return json.Marshal(res)
	})
	if (err != nil || !created) && freshEntry {
		// The submission was rejected, or joined an existing job that
		// owns no journal entry (a finished job still within its TTL):
		// the fresh admission would otherwise replay a settled sweep
		// after the next restart.
		entry.Discard()
	}
	return job, created, err
}

// ReplayJournal re-admits every unfinished journaled sweep — the crash
// recovery path. Call it once at startup, after New and before
// serving. Each re-admitted sweep re-runs under the configured sweep
// timeout; points that completed before the crash are served from the
// content-addressed result cache (the disk tier, when configured,
// makes that survive the restart too), so recovery recomputes only
// what was genuinely lost. Entries that no longer decode or re-expand
// to a different content address are dropped. It returns the number of
// jobs re-admitted.
func (s *Server) ReplayJournal() (int, error) {
	if s.journal == nil {
		return 0, nil
	}
	pending, err := s.journal.Replay()
	if err != nil {
		return 0, err
	}
	n := 0
	for _, p := range pending {
		sw, err := decodePending(p)
		if err != nil {
			s.log.Warn("dropping unreplayable journal entry", "entry", p.ID, "err", err)
			s.journal.Drop(p.ID)
			continue
		}
		entry, err := s.journal.Resume(p.ID)
		if err != nil {
			// Re-admit anyway: completing the sweep beats preserving its
			// journal continuity.
			s.log.Warn("resuming journal entry", "entry", p.ID, "err", err)
		}
		// Replayed jobs keep the tenant recorded at admission and
		// bypass the concurrent-job quota: refusing durable work at
		// restart would silently drop it. Each replay runs under a
		// fresh trace ID — the admitting request's trace died with the
		// crashed process.
		trace := obs.NewTraceID()
		_, created, err := s.startSweep(sw, s.cfg.SweepTimeout, entry, p.Tenant, true, trace)
		if err != nil {
			s.log.Error("re-admitting journaled sweep failed", "entry", p.ID, "err", err, "trace", trace)
			continue
		}
		if created {
			n++
			s.journalReplayed.Add(1)
			s.log.Info("re-admitted journaled sweep", "sweep", p.ID[:12],
				"points", len(sw.Points), "completions_recorded", len(p.Points), "trace", trace)
		}
	}
	return n, nil
}

// decodePending turns a replayed journal entry back into an expanded
// Sweep, verifying its content address still matches.
func decodePending(p journal.Pending) (*sweep.Sweep, error) {
	if p.Kind != journal.KindSweep {
		return nil, fmt.Errorf("unknown journal kind %q", p.Kind)
	}
	ss, err := sweep.DecodeSpec(p.Spec)
	if err != nil {
		return nil, err
	}
	sw, err := sweep.Expand(ss)
	if err != nil {
		return nil, err
	}
	if sw.Hash != p.ID {
		return nil, fmt.Errorf("journal entry %s re-expands to %s", p.ID, sw.Hash)
	}
	return sw, nil
}

// jobForRequest resolves the {id} path segment, writing a 404 when the
// job is unknown (or already evicted).
func (s *Server) jobForRequest(w http.ResponseWriter, r *http.Request) (*jobs.Job, bool) {
	id := r.PathValue("id")
	j, ok := s.jobs.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q (expired, evicted, or never submitted)", id))
		return nil, false
	}
	return j, true
}

// handleJob is GET /v1/jobs/{id}: the polling surface — state and
// progress counters.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobForRequest(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, j.Snapshot())
}

// handleJobResult is GET /v1/jobs/{id}/result: the aggregated sweep
// Result bytes once the job is done; 409 while it runs, 410 after a
// cancel, 500 with the job error after a failure.
func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobForRequest(w, r)
	if !ok {
		return
	}
	res, snap := j.Result()
	switch snap.State {
	case jobs.StateRunning:
		writeError(w, http.StatusConflict,
			fmt.Errorf("job %s still running (%d/%d points done); poll /v1/jobs/%s", snap.ID, snap.Progress.Done, snap.Progress.Total, snap.ID))
	case jobs.StateCancelled:
		writeError(w, http.StatusGone, fmt.Errorf("job %s was cancelled", snap.ID))
	case jobs.StateFailed:
		writeError(w, http.StatusInternalServerError, fmt.Errorf("job %s failed: %s", snap.ID, snap.Error))
	default:
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Sweep-Hash", snap.ID)
		w.Write(res)
	}
}

// handleJobCancel is DELETE /v1/jobs/{id}: request cancellation and
// return the (possibly already terminal) snapshot.
func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobForRequest(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, j.Cancel())
}

// handleJobEvents is GET /v1/jobs/{id}/events: a Server-Sent Events
// stream of progress snapshots. The first event is emitted
// immediately; every progress change wakes the stream (coalesced —
// intermediate counts may be skipped, but the sequence is monotonic,
// Progress updates never roll backwards); the terminal event is named
// "done" and carries the full job snapshot, after which the stream
// closes. A disconnecting client only ends its own stream, never the
// job.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobForRequest(w, r)
	if !ok {
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, fmt.Errorf("response writer cannot stream"))
		return
	}
	wake, stop := j.Subscribe()
	defer stop()
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)

	var last *jobs.Progress
	for {
		snap := j.Snapshot()
		if last == nil || snap.Progress != *last {
			p := snap.Progress
			last = &p
			if err := writeEvent(w, "progress", p); err != nil {
				return
			}
			fl.Flush()
		}
		if snap.State.Finished() {
			writeEvent(w, "done", snap)
			fl.Flush()
			return
		}
		select {
		case <-wake:
		case <-r.Context().Done():
			return
		}
	}
}

// writeEvent emits one SSE frame.
func writeEvent(w io.Writer, event string, data any) error {
	raw, err := json.Marshal(data)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, raw)
	return err
}
