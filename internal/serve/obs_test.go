package serve

import (
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"qla/internal/obs"
)

// statsGoldenKeys is the full key shape of GET /v1/stats on a fresh
// standalone server. The legacy JSON contract is pinned here: removing
// or renaming a key (the /metrics migration must not drift the JSON
// surface) fails this test. Conditional sections — peer_serves,
// journal, fleet — are pinned separately below.
var statsGoldenKeys = []string{
	"cache",
	"cache.bytes",
	"cache.dedups",
	"cache.entries",
	"cache.evictions",
	"cache.hits",
	"cache.inflight",
	"cache.max_bytes",
	"cache.misses",
	"experiments",
	"jobs",
	"jobs.cancelled",
	"jobs.completed",
	"jobs.deduped",
	"jobs.evicted",
	"jobs.failed",
	"jobs.max_jobs",
	"jobs.max_result_bytes",
	"jobs.quota_denied",
	"jobs.result_bytes",
	"jobs.running",
	"jobs.stored",
	"jobs.submitted",
	"jobs.ttl_seconds",
	"max_queue",
	"run_requests",
	"runs_executed",
	"scheduler",
	"scheduler.capacity",
	"scheduler.classes",
	"scheduler.classes.bulk",
	"scheduler.classes.bulk.avg_queue_wait_ms",
	"scheduler.classes.bulk.grants",
	"scheduler.classes.bulk.in_use",
	"scheduler.classes.bulk.max_queue_wait_ms",
	"scheduler.classes.bulk.queue_timeouts",
	"scheduler.classes.bulk.slot_cap",
	"scheduler.classes.bulk.waiting",
	"scheduler.classes.bulk.waits",
	"scheduler.classes.interactive",
	"scheduler.classes.interactive.avg_queue_wait_ms",
	"scheduler.classes.interactive.grants",
	"scheduler.classes.interactive.in_use",
	"scheduler.classes.interactive.max_queue_wait_ms",
	"scheduler.classes.interactive.queue_timeouts",
	"scheduler.classes.interactive.slot_cap",
	"scheduler.classes.interactive.waiting",
	"scheduler.classes.interactive.waits",
	"scheduler.grants",
	"scheduler.in_use",
	"scheduler.interactive_reserve",
	"scheduler.peak",
	"scheduler.waiting",
	"scheduler.waits",
	"shed_bypass_misses",
	"shed_requests",
	"sweeps",
	"sweeps.point_cache_hit_ratio",
	"sweeps.points",
	"sweeps.points_cached",
	"sweeps.points_failed",
	"sweeps.points_retried",
	"sweeps.requests",
	"sweeps.retry_attempts",
	"tenants",
	"throttled_429",
	"uptime_seconds",
}

func jsonKeyPaths(v any, prefix string, out *[]string) {
	m, ok := v.(map[string]any)
	if !ok {
		return
	}
	for k, child := range m {
		*out = append(*out, prefix+k)
		jsonKeyPaths(child, prefix+k+".", out)
	}
}

// TestStatsGoldenShape pins the /v1/stats JSON key set exactly. The
// counters now live in the metrics registry; this is the drift guard
// ensuring the legacy JSON surface stayed byte-compatible in shape.
func TestStatsGoldenShape(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	var got []string
	jsonKeyPaths(body, "", &got)
	sort.Strings(got)
	want := append([]string(nil), statsGoldenKeys...)
	sort.Strings(want)
	if len(got) != len(want) {
		t.Errorf("stats key count drifted: got %d keys, want %d", len(got), len(want))
	}
	gotSet := make(map[string]bool, len(got))
	for _, k := range got {
		gotSet[k] = true
	}
	for _, k := range want {
		if !gotSet[k] {
			t.Errorf("stats key %q missing from /v1/stats", k)
		}
		delete(gotSet, k)
	}
	for k := range gotSet {
		t.Errorf("stats key %q is new: add it to the golden list deliberately", k)
	}

	// The conditional keys keep their tag names: peer_serves appears
	// once a peer fetch is served, journal with -journal-dir.
	raw, err := json.Marshal(StatsBody{PeerServes: 1, Journal: &JournalStats{}})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{`"peer_serves":1`, `"journal"`, `"shed_bypass_misses"`} {
		if !strings.Contains(string(raw), k) {
			t.Errorf("StatsBody marshal lost %s: %s", k, raw)
		}
	}
}

// TestMetricsEndpoint drives a run and reads GET /metrics: the
// exposition must carry the serve counters, cache tier counters, the
// per-class queue-wait histogram and the per-route HTTP vec, with
// HELP/TYPE headers in Prometheus text format.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	if status, _, body := postRun(t, ts.URL, tinySpec(31)); status != http.StatusOK {
		t.Fatalf("run: %d %s", status, body)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type %q", ct)
	}
	raw, _ := io.ReadAll(resp.Body)
	text := string(raw)
	for _, want := range []string{
		"# TYPE qla_serve_run_requests_total counter",
		"qla_serve_run_requests_total 1",
		"# TYPE qla_cache_hits_total counter",
		`qla_cache_hits_total{tier="memory"}`,
		"# TYPE qla_sched_queue_wait_seconds histogram",
		`qla_sched_queue_wait_seconds_bucket{class="interactive",`,
		`qla_http_requests_total{route="POST /v1/run",status="200"`,
		"qla_http_request_duration_seconds_bucket",
		"qla_sched_capacity",
		"qla_uptime_seconds",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// Every sample line belongs to an announced family: no typos in
	// family names, no unannounced series.
	types := map[string]bool{}
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			types[strings.Fields(line)[2]] = true
		}
	}
	for _, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		base := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if trimmed, ok := strings.CutSuffix(name, suffix); ok && types[trimmed] {
				base = trimmed
			}
		}
		if !types[base] {
			t.Errorf("sample %q has no # TYPE header", line)
		}
	}
}

// TestBuildinfoEndpoint: GET /buildinfo reports the module metadata
// embedded in the binary. Under `go test` only the Go version is
// guaranteed, so that is what is pinned.
func TestBuildinfoEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var bi BuildInfo
	if status := getJSON(t, ts.URL+"/buildinfo", &bi); status != http.StatusOK {
		t.Fatalf("GET /buildinfo: %d", status)
	}
	if !strings.HasPrefix(bi.GoVersion, "go") {
		t.Fatalf("buildinfo go_version %q", bi.GoVersion)
	}
}

// TestTraceHeaderRoundTrip: a well-formed client trace ID is accepted
// and echoed; an absent one is minted; a hostile one is replaced; and
// error envelopes carry the trace for log correlation.
func TestTraceHeaderRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
	req.Header.Set(obs.TraceHeader, "client-trace-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(obs.TraceHeader); got != "client-trace-42" {
		t.Fatalf("client trace not echoed: %q", got)
	}

	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	minted := resp.Header.Get(obs.TraceHeader)
	if len(minted) != 32 {
		t.Fatalf("minted trace %q, want 32 hex chars", minted)
	}

	req, _ = http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
	req.Header.Set(obs.TraceHeader, "bad trace\twith spaces")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(obs.TraceHeader); strings.Contains(got, " ") || len(got) != 32 {
		t.Fatalf("hostile trace not replaced: %q", got)
	}

	// Error envelope: invalid spec → 4xx with the trace echoed in JSON.
	req, _ = http.NewRequest(http.MethodPost, ts.URL+"/v1/run", strings.NewReader("{"))
	req.Header.Set(obs.TraceHeader, "err-trace-7")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var envelope struct {
		Error string `json:"error"`
		Trace string `json:"trace"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&envelope); err != nil {
		t.Fatal(err)
	}
	if envelope.Trace != "err-trace-7" {
		t.Fatalf("error envelope trace %q, want err-trace-7 (error=%q)", envelope.Trace, envelope.Error)
	}
}

// logBuffer collects slog text output concurrently.
type logBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (l *logBuffer) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.Write(p)
}

func (l *logBuffer) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.String()
}

// lines returns the buffered log lines containing every given substring.
func (l *logBuffer) lines(subs ...string) []string {
	var out []string
outer:
	for _, line := range strings.Split(l.String(), "\n") {
		for _, s := range subs {
			if !strings.Contains(line, s) {
				continue outer
			}
		}
		out = append(out, line)
	}
	return out
}

// TestFleetTraceOneID is the acceptance-criteria tracing test: one
// client-supplied trace ID on a sweep submitted to replica A must show
// up, verbatim, in both replicas' structured logs — at A's admission
// line and at B's side of the fleet protocol (the forwarded admission,
// lease grants, peer cache fetches all carry X-QLA-Trace).
func TestFleetTraceOneID(t *testing.T) {
	logs := make([]*logBuffer, 2)
	srvs, urls := newFleetServers(t, 2, func(i int, cfg *Config) {
		logs[i] = &logBuffer{}
		cfg.Logger = slog.New(slog.NewTextHandler(logs[i], nil))
	})
	_ = srvs

	const trace = "trace-fleet-e2e-0001"
	req, _ := http.NewRequest(http.MethodPost, urls[0]+"/v1/sweeps", strings.NewReader(gridSweep))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(obs.TraceHeader, trace)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var sb struct {
		JobID string `json:"job_id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sb); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("sweep submit: %d", resp.StatusCode)
	}
	if got := resp.Header.Get(obs.TraceHeader); got != trace {
		t.Fatalf("sweep response trace %q", got)
	}

	snap := pollJob(t, urls[0], sb.JobID)
	if string(snap.State) != "done" {
		t.Fatalf("sweep state %s", snap.State)
	}

	if n := len(logs[0].lines("sweep admitted", "trace="+trace)); n != 1 {
		t.Fatalf("origin logged %d admission lines with trace %s:\n%s", n, trace, logs[0].String())
	}
	// The fire-and-forget forward and the tail of the lease protocol
	// may land after the origin sees the job done; give B a moment.
	deadline := time.Now().Add(5 * time.Second)
	for len(logs[1].lines("sweep admitted", "trace="+trace)) == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("peer never logged the forwarded admission with trace %s:\n%s", trace, logs[1].String())
		}
		time.Sleep(10 * time.Millisecond)
	}
	// The same single ID follows the work across the protocol: lease
	// grants and peer cache fetches on either side log it too.
	granted := len(logs[0].lines("lease granted", "trace="+trace)) +
		len(logs[1].lines("lease granted", "trace="+trace))
	if granted == 0 {
		t.Fatalf("no lease grant carried trace %s:\nA:\n%s\nB:\n%s", trace, logs[0].String(), logs[1].String())
	}
	// Any trace attr on fleet log lines must be this trace or a minted
	// 32-char ID (peer poll prefetches run outside the request) — a
	// truncated or mangled ID would show up here.
	for i, lb := range logs {
		for _, line := range lb.lines("trace=") {
			f := line[strings.Index(line, "trace=")+len("trace="):]
			if j := strings.IndexByte(f, ' '); j >= 0 {
				f = f[:j]
			}
			if f != trace && len(f) != 32 {
				t.Errorf("replica %d logged malformed trace %q in %q", i, f, line)
			}
		}
	}
}
