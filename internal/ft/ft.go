// Package ft implements the fault-tolerance analysis of the QLA paper:
//
//   - Equation 1: the recursive error-correction latency model over the
//     Figure-6 Steane [[7,1,3]] circuit, evaluated with Table-1 component
//     times (Section 4.1.1: ≈0.003 s at level 1 and ≈0.043 s at level 2);
//   - Equation 2: Gottesman's local-architecture failure-rate estimate,
//     used to size the recursion level (Section 4.1.2: level 2 yields
//     P_f ≈ 1.0×10⁻¹⁶, i.e. a computer of S ≈ 9.9×10¹⁵ elementary steps);
//   - the fault-tolerant Toffoli cost model (Section 5: 15 EC steps of
//     ancilla preparation + 6 EC steps to finish the gate).
package ft

import (
	"fmt"
	"math"

	"qla/internal/iontrap"
	"qla/internal/layout"
)

// Threshold constants quoted by the paper.
const (
	// PthLocal is the Steane-code threshold accounting for movement and
	// gates on a local architecture (Svore, Terhal, DiVincenzo).
	PthLocal = 7.5e-5
	// PthReichardt is the improved ancilla-preparation threshold estimate.
	PthReichardt = 9e-3
	// PthEmpiricalQLA is the paper's measured pseudo-threshold for the QLA
	// logical qubit: (2.1 ± 1.8)×10⁻³.
	PthEmpiricalQLA = 2.1e-3
	// PthEmpiricalQLAErr is the quoted uncertainty.
	PthEmpiricalQLAErr = 1.8e-3
)

// Toffoli gate cost in error-correction steps (Section 5).
const (
	ToffoliPrepECSteps   = 15
	ToffoliFinishECSteps = 6
	// ToffoliECSteps is the total EC steps charged per Toffoli on the
	// modular-exponentiation critical path (ancilla prep overlaps the
	// previous Toffoli except when operands share ancilla, so the paper
	// charges all 21).
	ToffoliECSteps = ToffoliPrepECSteps + ToffoliFinishECSteps
)

// GottesmanFailure evaluates Equation 2: the failure probability of a
// level-L logical gate on a local architecture,
//
//	P_f(L) = (p_th / r^L) · (p0/p_th)^(2^L),
//
// where p0 is the physical component failure rate, p_th the threshold and
// r the communication distance between level-1 blocks in cells.
func GottesmanFailure(p0, pth, r float64, level int) float64 {
	if level < 0 {
		panic("ft: negative recursion level")
	}
	if p0 <= 0 || pth <= 0 || r <= 0 {
		panic("ft: non-positive parameter in Equation 2")
	}
	return pth / math.Pow(r, float64(level)) * math.Pow(p0/pth, math.Pow(2, float64(level)))
}

// MaxSystemSize returns S = K·Q = 1/P_f, the largest computation (in
// elementary steps × logical qubits) executable at the given logical
// failure rate.
func MaxSystemSize(pf float64) float64 {
	if pf <= 0 {
		return math.Inf(1)
	}
	return 1 / pf
}

// RequiredLevel returns the smallest recursion level whose Equation-2
// failure rate supports a computation of size s, or an error when p0 is at
// or above threshold (no level suffices).
func RequiredLevel(p0, pth, r, s float64) (int, error) {
	if p0 >= pth {
		return 0, fmt.Errorf("ft: p0 = %g is not below threshold %g", p0, pth)
	}
	for level := 0; level <= 10; level++ {
		if MaxSystemSize(GottesmanFailure(p0, pth, r, level)) >= s {
			return level, nil
		}
	}
	return 0, fmt.Errorf("ft: no recursion level up to 10 reaches size %g", s)
}

// LatencyModel evaluates Equation 1 over the concrete Figure-6 circuit
// structure with Table-1 component times. Structural assumptions (see
// DESIGN.md §6):
//
//   - physical operations within one level-1 block are serial (one
//     addressing beam per block); transversal operations on distinct
//     blocks run in parallel;
//   - each block has MeasureParallelism simultaneous readout channels;
//   - ancilla verification follows the Figure-6 lower circuit: encode,
//     copy onto verification ions, read them out;
//   - at level L ≥ 2 every logical encoder gate is followed by level-(L-1)
//     error correction of the touched blocks (the fault-tolerance rule),
//     and X/Z syndromes extract in parallel on the two ancilla
//     conglomerations, repeated twice for the two-successive-agreeing-
//     syndromes rule; at level 1 the single ancilla block serializes X
//     then Z instead. Both cases give Equation 1's T_ecc = 2·T_synd.
type LatencyModel struct {
	P iontrap.Params

	// MeasureParallelism is the number of simultaneous ion readouts per
	// level-1 block (default 2).
	MeasureParallelism int

	// EncoderCNOTStages is the ASAP depth of the [[7,1,3]] encoder's CNOT
	// schedule (the steane.EncodeZero circuit has 5 CNOT layers after the
	// Hadamard layer).
	EncoderCNOTStages int

	// NonTrivialRate[L] is the probability that a level-L syndrome
	// extraction is non-trivial, triggering Equation 1's repeat branch.
	// Defaults are the paper's measured rates (Section 4.1.1).
	NonTrivialRate map[int]float64
}

// NewLatencyModel returns the model with the paper's structural defaults
// over the given technology parameters.
func NewLatencyModel(p iontrap.Params) *LatencyModel {
	return &LatencyModel{
		P:                  p,
		MeasureParallelism: 2,
		EncoderCNOTStages:  5,
		NonTrivialRate: map[int]float64{
			1: 3.35e-4,
			2: 7.92e-4,
		},
	}
}

// PhysGate2Intra is the cost of one physical two-qubit gate inside a
// block: split, shuttle a couple of cells, gate.
func (m *LatencyModel) PhysGate2Intra() float64 {
	mv := layout.IntraBlockGateMove()
	return m.P.MoveTime(mv.Cells, mv.Corners) + m.P.Time[iontrap.OpDouble]
}

// PhysGate2Inter is the cost of one physical two-qubit gate between
// neighbouring blocks: split, shuttle r = 12 cells with up to two turns,
// gate.
func (m *LatencyModel) PhysGate2Inter() float64 {
	mv := layout.InterBlockGateMove()
	return m.P.MoveTime(mv.Cells, mv.Corners) + m.P.Time[iontrap.OpDouble]
}

// Readout is the time to measure the 7 ions of one block with the model's
// readout parallelism (blocks read out in parallel with each other).
func (m *LatencyModel) Readout() float64 {
	per := (7 + m.MeasureParallelism - 1) / m.MeasureParallelism
	return float64(per) * m.P.Time[iontrap.OpMeasure]
}

// TransversalGate1 is a logical one-qubit gate at any level ≥ 1: seven
// serial physical gates within each block, blocks in parallel.
func (m *LatencyModel) TransversalGate1() float64 {
	return 7 * m.P.Time[iontrap.OpSingle]
}

// TransversalGate2 is a logical two-qubit gate at any level ≥ 1: seven
// serial inter-block physical CNOTs per block pair, pairs in parallel.
func (m *LatencyModel) TransversalGate2() float64 {
	return 7 * m.PhysGate2Inter()
}

// PrepTime returns the verified logical-ancilla preparation time at the
// given level (Figure 6, lower circuit).
func (m *LatencyModel) PrepTime(level int) float64 {
	switch {
	case level < 1:
		panic("ft: PrepTime needs level ≥ 1")
	case level == 1:
		// Serial physical encoding: 3 H + 9 intra-block CNOTs, then copy
		// onto the 7 verification ions and read them out.
		encode := 3*m.P.Time[iontrap.OpSingle] + 9*m.PhysGate2Intra()
		verify := 7*m.PhysGate2Intra() + m.Readout()
		return encode + verify
	default:
		// Logical-level encoding over 7 level-(L-1) ancillae prepared in
		// parallel; each encoder stage is a transversal gate followed by
		// level-(L-1) EC of the touched blocks; then transversal
		// verification and a final lower-level EC round before use.
		sub := m.PrepTime(level - 1)
		eccBelow := m.ECTime(level - 1)
		stages := m.TransversalGate1() + // Hadamard layer (no EC needed: Pauli-frame safe)
			float64(m.EncoderCNOTStages)*(m.TransversalGate2()+eccBelow)
		verify := m.TransversalGate2() + m.Readout()
		return sub + stages + verify + eccBelow
	}
}

// SyndromeTime returns T_{L,synd}: one syndrome extraction (one error
// kind) at the given level: ancilla preparation, transversal interaction
// with the data, lower-level EC of the data blocks (level ≥ 2), readout.
func (m *LatencyModel) SyndromeTime(level int) float64 {
	if level < 1 {
		panic("ft: SyndromeTime needs level ≥ 1")
	}
	t := m.PrepTime(level) + m.TransversalGate2() + m.Readout()
	if level >= 2 {
		t += m.ECTime(level - 1)
	}
	return t
}

// ECTime evaluates Equation 1: the expected duration of one error-
// correction step at the given level, weighting the trivial and
// non-trivial syndrome branches by the measured non-trivial rate.
//
//	T_{L,ecc} = 2·T_{L,synd}                                  (trivial)
//	T_{L,ecc} = 2·(2·T_{L,synd} + T_1 + T_{L-1,ecc})          (non-trivial)
func (m *LatencyModel) ECTime(level int) float64 {
	if level <= 0 {
		return 0
	}
	synd := m.SyndromeTime(level)
	trivial := 2 * synd
	pnt := m.NonTrivialRate[level]
	nontrivial := 2 * (2*synd + m.TransversalGate1() + m.ECTime(level-1))
	return (1-pnt)*trivial + pnt*nontrivial
}

// Summary holds the headline Equation-1 latencies.
type Summary struct {
	ECLevel1    float64 // T_{1,ecc} (paper ≈ 0.003 s)
	ECLevel2    float64 // T_{2,ecc} (paper ≈ 0.043 s)
	AncillaPrep float64 // level-2 logical ancilla preparation
}

// Summarize evaluates the model at levels 1 and 2.
func (m *LatencyModel) Summarize() Summary {
	return Summary{
		ECLevel1:    m.ECTime(1),
		ECLevel2:    m.ECTime(2),
		AncillaPrep: m.PrepTime(2),
	}
}
