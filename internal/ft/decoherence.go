package ft

import (
	"fmt"

	"qla/internal/iontrap"
)

// Decoherence budgeting: DiVincenzo criterion 4 ("It must allow much
// longer qubit lifetimes than the time of a quantum logic gate") applied
// to the QLA's actual cadence. The relevant ratio is not lifetime/gate but
// lifetime/EC-step: a logical qubit is refreshed once per EC step, so the
// per-step idle error T_ecc/lifetime must sit safely inside the code's
// correction budget, even though a full Shor run (hours) vastly exceeds
// any single ion's lifetime (10-100 s).

// DecoherenceReport summarizes the idle-error budget at one recursion
// level.
type DecoherenceReport struct {
	Level          int
	ECStep         float64 // seconds between refreshes
	Lifetime       float64 // memory lifetime, seconds
	IdleErrPerStep float64 // per-qubit idle error accumulated per EC step
	Threshold      float64 // the budget it must stay under
	Margin         float64 // Threshold / IdleErrPerStep
	OK             bool
}

// CheckDecoherence evaluates whether the memory lifetime supports the EC
// cadence at the given level with the given threshold budget.
func CheckDecoherence(p iontrap.Params, level int, threshold float64) (DecoherenceReport, error) {
	if level < 1 {
		return DecoherenceReport{}, fmt.Errorf("ft: level must be ≥ 1")
	}
	if threshold <= 0 || threshold >= 1 {
		return DecoherenceReport{}, fmt.Errorf("ft: threshold %g outside (0,1)", threshold)
	}
	if p.MemoryLifetime <= 0 {
		return DecoherenceReport{}, fmt.Errorf("ft: non-positive memory lifetime")
	}
	ec := NewLatencyModel(p).ECTime(level)
	rep := DecoherenceReport{
		Level:          level,
		ECStep:         ec,
		Lifetime:       p.MemoryLifetime,
		IdleErrPerStep: ec / p.MemoryLifetime,
		Threshold:      threshold,
	}
	rep.OK = rep.IdleErrPerStep < threshold
	if rep.IdleErrPerStep > 0 {
		rep.Margin = threshold / rep.IdleErrPerStep
	}
	return rep, nil
}

// AlgorithmLifetimes returns how many ion lifetimes a computation of the
// given duration spans — the reason error correction (not raw memory) is
// what makes hours-long algorithms possible.
func AlgorithmLifetimes(p iontrap.Params, durationSec float64) float64 {
	if p.MemoryLifetime <= 0 {
		return 0
	}
	return durationSec / p.MemoryLifetime
}
