package ft

import (
	"math"
	"testing"

	"qla/internal/iontrap"
)

func TestEquation2PaperNumbers(t *testing.T) {
	// Section 4.1.2: with p0 = average expected failure rate, pth =
	// 7.5e-5, r = 12 cells, level 2 gives P_f ≈ 1.0e-16 and
	// S = K·Q ≈ 9.9e15.
	p0 := iontrap.Expected().AverageComponentFailure()
	pf := GottesmanFailure(p0, PthLocal, 12, 2)
	if pf < 0.8e-16 || pf > 1.2e-16 {
		t.Errorf("Equation 2 level-2 failure = %.3g, paper says ≈1.0e-16", pf)
	}
	s := MaxSystemSize(pf)
	if s < 8e15 || s > 1.2e16 {
		t.Errorf("system size = %.3g, paper says ≈9.9e15", s)
	}
}

func TestEquation2EmpiricalThreshold(t *testing.T) {
	// "Reevaluating Equation 2 with the empirical value for pth we get an
	// estimated level 2 reliability approaching 10^-21."
	p0 := iontrap.Expected().AverageComponentFailure()
	pf := GottesmanFailure(p0, PthEmpiricalQLA, 12, 2)
	if pf > 1e-20 || pf < 1e-22 {
		t.Errorf("empirical-threshold level-2 failure = %.3g, paper says ≈1e-21", pf)
	}
}

func TestEquation2Monotonicity(t *testing.T) {
	p0 := 1e-6
	// Below threshold, more recursion must help.
	prev := GottesmanFailure(p0, PthLocal, 12, 0)
	for l := 1; l <= 4; l++ {
		cur := GottesmanFailure(p0, PthLocal, 12, l)
		if cur >= prev {
			t.Errorf("level %d failure %.3g not below level %d failure %.3g", l, cur, l-1, prev)
		}
		prev = cur
	}
	// Above threshold, recursion hurts.
	p0 = 1e-3
	if GottesmanFailure(p0, PthLocal, 12, 2) <= GottesmanFailure(p0, PthLocal, 12, 1) {
		t.Error("above threshold, level 2 should be worse than level 1")
	}
}

func TestRequiredLevel(t *testing.T) {
	p0 := iontrap.Expected().AverageComponentFailure()
	// Shor-1024 needs S ≈ 4.4e12 (paper): level 2 must suffice and level
	// 1 must not.
	l, err := RequiredLevel(p0, PthLocal, 12, 4.4e12)
	if err != nil {
		t.Fatal(err)
	}
	if l != 2 {
		t.Errorf("required level for Shor-1024 = %d, paper says 2", l)
	}
	// Tiny computations need no encoding.
	l, err = RequiredLevel(p0, PthLocal, 12, 10)
	if err != nil {
		t.Fatal(err)
	}
	if l != 0 {
		t.Errorf("required level for S=10 at p0=%.2g = %d, want 0", p0, l)
	}
	// Above threshold: error.
	if _, err := RequiredLevel(1e-3, PthLocal, 12, 1e6); err == nil {
		t.Error("RequiredLevel above threshold should fail")
	}
}

func TestECLatencyPaperValues(t *testing.T) {
	// Section 4.1.1: T_{1,ecc} ≈ 0.003 s and T_{2,ecc} ≈ 0.043 s.
	m := NewLatencyModel(iontrap.Expected())
	sum := m.Summarize()
	if sum.ECLevel1 < 0.002 || sum.ECLevel1 > 0.004 {
		t.Errorf("T(1,ecc) = %.4f s, paper says ≈0.003 s", sum.ECLevel1)
	}
	if sum.ECLevel2 < 0.035 || sum.ECLevel2 > 0.050 {
		t.Errorf("T(2,ecc) = %.4f s, paper says ≈0.043 s", sum.ECLevel2)
	}
	if sum.AncillaPrep <= 0 || sum.AncillaPrep >= sum.ECLevel2 {
		t.Errorf("ancilla prep %.4f s should be positive and below T(2,ecc)", sum.AncillaPrep)
	}
}

func TestECLatencyStructure(t *testing.T) {
	m := NewLatencyModel(iontrap.Expected())
	// Level 0 costs nothing; levels increase steeply.
	if m.ECTime(0) != 0 {
		t.Error("ECTime(0) should be 0")
	}
	t1, t2 := m.ECTime(1), m.ECTime(2)
	if t2 < 5*t1 {
		t.Errorf("level-2 EC (%.4f) should dwarf level-1 (%.4f)", t2, t1)
	}
	// Syndrome extraction dominates: T_ecc ≈ 2·T_synd at the trivial
	// branch, so T_ecc < 2.2·T_synd with the tiny non-trivial weighting.
	if r := t2 / m.SyndromeTime(2); r < 2.0 || r > 2.2 {
		t.Errorf("T_ecc/T_synd at level 2 = %.3f, want ≈2", r)
	}
}

func TestNonTrivialBranchIncreasesLatency(t *testing.T) {
	m := NewLatencyModel(iontrap.Expected())
	base := m.ECTime(2)
	m.NonTrivialRate[2] = 0.5 // force frequent repeats
	if m.ECTime(2) <= base {
		t.Error("raising the non-trivial syndrome rate must increase EC time")
	}
	m.NonTrivialRate[2] = 0
	if got := m.ECTime(2); math.Abs(got-2*m.SyndromeTime(2)) > 1e-12 {
		t.Errorf("with pnt=0, ECTime = %.5g, want exactly 2·T_synd = %.5g", got, 2*m.SyndromeTime(2))
	}
}

func TestToffoliCost(t *testing.T) {
	if ToffoliECSteps != 21 {
		t.Errorf("Toffoli EC steps = %d, paper says 15+6 = 21", ToffoliECSteps)
	}
	// 128-bit modular exponentiation sanity (Section 5): 63730 Toffolis
	// at 21 steps each ≈ 1.34e6 EC steps; at 0.043 s per step ≈ 16 h.
	m := NewLatencyModel(iontrap.Expected())
	steps := 21.0 * 63730
	hours := steps * m.ECTime(2) / 3600
	if hours < 12 || hours > 21 {
		t.Errorf("128-bit modexp ≈ %.1f h, paper says ≈16 h", hours)
	}
}

func TestMeasureParallelismKnob(t *testing.T) {
	m := NewLatencyModel(iontrap.Expected())
	base := m.Readout()
	m.MeasureParallelism = 7
	if m.Readout() >= base {
		t.Error("more readout channels must shorten readout")
	}
	if m.Readout() != m.P.Time[iontrap.OpMeasure] {
		t.Error("7-way parallel readout should take one measurement time")
	}
}

func TestGottesmanFailurePanics(t *testing.T) {
	for _, fn := range []func(){
		func() { GottesmanFailure(0, PthLocal, 12, 2) },
		func() { GottesmanFailure(1e-6, 0, 12, 2) },
		func() { GottesmanFailure(1e-6, PthLocal, 0, 2) },
		func() { GottesmanFailure(1e-6, PthLocal, 12, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic on invalid Equation-2 input")
				}
			}()
			fn()
		}()
	}
}

func TestMaxSystemSizeEdge(t *testing.T) {
	if !math.IsInf(MaxSystemSize(0), 1) {
		t.Error("zero failure rate means unbounded computation")
	}
	if MaxSystemSize(1e-10) != 1e10 {
		t.Error("MaxSystemSize should invert the failure rate")
	}
}
