package ft

import (
	"testing"

	"qla/internal/iontrap"
)

func TestCheckDecoherenceExpected(t *testing.T) {
	// Expected parameters: 100 s lifetime, 0.046 s EC step -> idle error
	// ≈ 4.6e-4 per step, inside the empirical threshold budget with
	// comfortable margin.
	rep, err := CheckDecoherence(iontrap.Expected(), 2, PthEmpiricalQLA)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK {
		t.Errorf("expected parameters should pass the decoherence check: %+v", rep)
	}
	if rep.IdleErrPerStep < 1e-4 || rep.IdleErrPerStep > 1e-3 {
		t.Errorf("idle error per EC step = %.3g, expected ≈5e-4", rep.IdleErrPerStep)
	}
	if rep.Margin < 2 {
		t.Errorf("margin = %.2f, expected comfortable headroom", rep.Margin)
	}
}

func TestCheckDecoherenceTightLifetime(t *testing.T) {
	// A 0.1 s lifetime cannot support a 0.046 s EC cadence at any
	// realistic threshold.
	p := iontrap.Expected()
	p.MemoryLifetime = 0.1
	rep, err := CheckDecoherence(p, 2, PthEmpiricalQLA)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK {
		t.Error("a 0.1 s lifetime should fail the level-2 decoherence check")
	}
}

func TestCheckDecoherenceLevelDependence(t *testing.T) {
	// Level 1's faster cadence leaves more lifetime margin than level 2.
	p := iontrap.Expected()
	r1, err := CheckDecoherence(p, 1, PthEmpiricalQLA)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := CheckDecoherence(p, 2, PthEmpiricalQLA)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Margin <= r2.Margin {
		t.Error("level 1 should have more decoherence margin than level 2")
	}
}

func TestAlgorithmLifetimes(t *testing.T) {
	// The 128-bit factorization (≈16 h) spans hundreds of ion lifetimes —
	// the whole point of active error correction.
	spans := AlgorithmLifetimes(iontrap.Expected(), 16*3600)
	if spans < 100 {
		t.Errorf("16 h spans %.0f lifetimes; expected hundreds", spans)
	}
}

func TestCheckDecoherenceValidation(t *testing.T) {
	if _, err := CheckDecoherence(iontrap.Expected(), 0, 1e-3); err == nil {
		t.Error("level 0 should be rejected")
	}
	if _, err := CheckDecoherence(iontrap.Expected(), 2, 1.5); err == nil {
		t.Error("threshold > 1 should be rejected")
	}
	bad := iontrap.Expected()
	bad.MemoryLifetime = 0
	if _, err := CheckDecoherence(bad, 2, 1e-3); err == nil {
		t.Error("zero lifetime should be rejected")
	}
}
