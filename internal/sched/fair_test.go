package sched

import (
	"context"
	"errors"
	"sort"
	"sync"
	"testing"
	"time"
)

// drainOrder parks one waiter per entry of ids behind a held pool, then
// releases the blocker and records the order in which the waiters are
// granted. Capacity must be 1 so grants serialize.
func drainOrder(t *testing.T, p *Pool, block func(), ids []Identity) []Identity {
	t.Helper()
	order := make(chan Identity, len(ids))
	var wg sync.WaitGroup
	for _, id := range ids {
		// Enqueue strictly one at a time so same-tenant FIFO order in
		// the queue matches the ids slice.
		before := p.Stats().Waiting
		wg.Add(1)
		go func(id Identity) {
			defer wg.Done()
			ctx := WithIdentity(context.Background(), id)
			_, release, err := p.Acquire(ctx, 1)
			if err != nil {
				t.Errorf("Acquire(%v): %v", id, err)
				return
			}
			order <- id
			release()
		}(id)
		deadline := time.Now().Add(5 * time.Second)
		for p.Stats().Waiting != before+1 {
			if time.Now().After(deadline) {
				t.Fatalf("waiter %v never queued", id)
			}
			time.Sleep(100 * time.Microsecond)
		}
	}
	block()
	wg.Wait()
	close(order)
	var got []Identity
	for id := range order {
		got = append(got, id)
	}
	return got
}

// TestWeightedFairShare: two bulk tenants flood a one-slot pool with
// weights 2:1. While both stay backlogged, stride scheduling must give
// the weight-2 tenant twice the grants of the weight-1 tenant.
func TestWeightedFairShare(t *testing.T) {
	p := NewFair(Config{Capacity: 1, Weights: map[string]float64{"heavy": 2, "light": 1}})
	_, blocker, err := p.Acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}

	var ids []Identity
	for i := 0; i < 16; i++ {
		ids = append(ids, Identity{Tenant: "heavy", Class: ClassBulk})
	}
	for i := 0; i < 8; i++ {
		ids = append(ids, Identity{Tenant: "light", Class: ClassBulk})
	}
	got := drainOrder(t, p, blocker, ids)
	if len(got) != 24 {
		t.Fatalf("granted %d of 24 waiters", len(got))
	}
	// While both tenants are backlogged (the first 12 grants: light's 8
	// waiters outlast heavy's share of 8), heavy must receive 2× light.
	heavy, light := 0, 0
	for _, id := range got[:12] {
		if id.Tenant == "heavy" {
			heavy++
		} else {
			light++
		}
	}
	if heavy != 8 || light != 4 {
		t.Fatalf("first 12 grants: heavy=%d light=%d, want 8/4 (2:1 weights)", heavy, light)
	}
}

// TestEqualWeightInterleave: with default weights, two backlogged
// tenants of one class alternate grants instead of one draining first.
func TestEqualWeightInterleave(t *testing.T) {
	p := NewFair(Config{Capacity: 1})
	_, blocker, err := p.Acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	var ids []Identity
	for i := 0; i < 4; i++ {
		ids = append(ids, Identity{Tenant: "a", Class: ClassBulk})
	}
	for i := 0; i < 4; i++ {
		ids = append(ids, Identity{Tenant: "b", Class: ClassBulk})
	}
	got := drainOrder(t, p, blocker, ids)
	for i := 0; i+1 < 8 && i < len(got)-1; i += 2 {
		if got[i].Tenant == got[i+1].Tenant {
			t.Fatalf("grants %d,%d both for %q: want strict alternation, got %v",
				i, i+1, got[i].Tenant, got)
		}
	}
}

// TestInteractiveOutranksBulk: queued interactive work is dispatched
// before earlier-queued bulk work.
func TestInteractiveOutranksBulk(t *testing.T) {
	p := NewFair(Config{Capacity: 1})
	_, blocker, err := p.Acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	ids := []Identity{
		{Tenant: "batch", Class: ClassBulk},
		{Tenant: "batch", Class: ClassBulk},
		{Tenant: "live", Class: ClassInteractive},
	}
	got := drainOrder(t, p, blocker, ids)
	if len(got) != 3 || got[0].Class != ClassInteractive {
		t.Fatalf("grant order %v: interactive must be served first", got)
	}
}

// TestInteractiveReserve: bulk in-use is capped at capacity-reserve, so
// an interactive arrival is admitted immediately even while bulk work
// saturates its share.
func TestInteractiveReserve(t *testing.T) {
	p := NewFair(Config{Capacity: 2, InteractiveReserve: 1})
	bctx := WithIdentity(context.Background(), Identity{Tenant: "batch", Class: ClassBulk})

	g, rel1, err := p.Acquire(bctx, 2)
	if err != nil {
		t.Fatal(err)
	}
	if g != 1 {
		t.Fatalf("bulk granted %d slots, want 1 (reserve must hold one back)", g)
	}
	defer rel1()

	// A second bulk acquirer must queue: bulk is at its cap.
	queued := make(chan struct{})
	go func() {
		_, rel, err := p.Acquire(bctx, 1)
		if err == nil {
			rel()
		}
		close(queued)
	}()
	deadline := time.Now().Add(5 * time.Second)
	for p.Stats().Waiting != 1 {
		if time.Now().After(deadline) {
			t.Fatal("second bulk acquirer never queued")
		}
		time.Sleep(100 * time.Microsecond)
	}

	// Interactive work takes the reserved slot without waiting.
	ictx := WithIdentity(context.Background(), Identity{Tenant: "live", Class: ClassInteractive})
	done := make(chan error, 1)
	go func() {
		_, rel, err := p.Acquire(ictx, 1)
		if err == nil {
			rel()
		}
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("interactive acquire: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("interactive acquire starved behind bulk despite the reserve")
	}

	st := p.Stats()
	if st.InteractiveReserve != 1 {
		t.Errorf("InteractiveReserve = %d, want 1", st.InteractiveReserve)
	}
	if bc := st.Classes[ClassBulk.String()]; bc.SlotCap != 1 {
		t.Errorf("bulk SlotCap = %d, want 1", bc.SlotCap)
	}
	if ic := st.Classes[ClassInteractive.String()]; ic.SlotCap != 2 {
		t.Errorf("interactive SlotCap = %d, want 2", ic.SlotCap)
	}
	rel1()
	<-queued
}

// TestQueueWaitBound: an acquisition queued past its class bound is
// refused with a *QueueWaitError and counted in class stats.
func TestQueueWaitBound(t *testing.T) {
	p := NewFair(Config{Capacity: 1, BulkMaxWait: 10 * time.Millisecond})
	_, release, err := p.Acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	bctx := WithIdentity(context.Background(), Identity{Tenant: "batch", Class: ClassBulk})
	_, _, err = p.Acquire(bctx, 1)
	var qw *QueueWaitError
	if !errors.As(err, &qw) {
		t.Fatalf("err = %v, want *QueueWaitError", err)
	}
	if qw.Identity.Tenant != "batch" || qw.Identity.Class != ClassBulk {
		t.Errorf("QueueWaitError identity = %+v", qw.Identity)
	}
	if qw.Waited < 10*time.Millisecond {
		t.Errorf("Waited = %v, want >= bound", qw.Waited)
	}
	st := p.Stats()
	if got := st.Classes[ClassBulk.String()].QueueTimeouts; got != 1 {
		t.Errorf("bulk QueueTimeouts = %d, want 1", got)
	}
	if st.Waiting != 0 {
		t.Errorf("Waiting = %d after timeout, want 0", st.Waiting)
	}
}

// TestBulkFloodNoStarvation: with a reserve configured, a sustained
// bulk flood from one tenant cannot starve another tenant's
// interactive acquisitions. Run under -race in CI.
func TestBulkFloodNoStarvation(t *testing.T) {
	p := NewFair(Config{Capacity: 2, InteractiveReserve: 1})
	floodCtx, stopFlood := context.WithCancel(context.Background())
	defer stopFlood()
	bctx := WithIdentity(floodCtx, Identity{Tenant: "batch", Class: ClassBulk})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				_, release, err := p.Acquire(bctx, 2)
				if err != nil {
					return
				}
				time.Sleep(200 * time.Microsecond)
				release()
			}
		}()
	}

	// Let the flood actually occupy the pool before probing it.
	deadline := time.Now().Add(5 * time.Second)
	for p.Stats().Tenants["batch"].Grants == 0 {
		if time.Now().After(deadline) {
			t.Fatal("flood never started")
		}
		time.Sleep(100 * time.Microsecond)
	}

	ictx := WithIdentity(context.Background(), Identity{Tenant: "live", Class: ClassInteractive})
	for i := 0; i < 20; i++ {
		ctx, cancel := context.WithTimeout(ictx, 5*time.Second)
		_, release, err := p.Acquire(ctx, 1)
		if err != nil {
			cancel()
			t.Fatalf("interactive acquire %d starved: %v", i, err)
		}
		release()
		cancel()
	}
	stopFlood()
	wg.Wait()

	st := p.Stats()
	if st.Tenants["live"].Grants != 20 {
		t.Errorf("live grants = %d, want 20", st.Tenants["live"].Grants)
	}
	if st.Tenants["batch"].Grants == 0 {
		t.Error("flood recorded no bulk grants")
	}
}

// BenchmarkAdmissionMixedLoad measures interactive admission latency
// under a sustained bulk flood: four bulk floods of a 4-slot pool with
// one reserved slot, while the benchmark loop runs interactive
// acquire/release pairs. Reported metrics: p99 interactive queue wait
// and end-to-end grant throughput.
func BenchmarkAdmissionMixedLoad(b *testing.B) {
	p := NewFair(Config{Capacity: 4, InteractiveReserve: 1})
	floodCtx, stopFlood := context.WithCancel(context.Background())
	defer stopFlood()
	bctx := WithIdentity(floodCtx, Identity{Tenant: "batch", Class: ClassBulk})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				_, release, err := p.Acquire(bctx, 2)
				if err != nil {
					return
				}
				time.Sleep(50 * time.Microsecond)
				release()
			}
		}()
	}

	ictx := WithIdentity(context.Background(), Identity{Tenant: "live", Class: ClassInteractive})
	waits := make([]time.Duration, b.N)
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		_, release, err := p.Acquire(ictx, 1)
		if err != nil {
			b.Fatal(err)
		}
		waits[i] = time.Since(t0)
		release()
	}
	elapsed := time.Since(start)
	b.StopTimer()
	stopFlood()
	wg.Wait()

	sort.Slice(waits, func(i, j int) bool { return waits[i] < waits[j] })
	idx := len(waits) * 99 / 100
	if idx >= len(waits) {
		idx = len(waits) - 1
	}
	p99 := waits[idx]
	b.ReportMetric(float64(p99.Nanoseconds()), "p99-wait-ns")
	b.ReportMetric(float64(b.N)/elapsed.Seconds(), "grants/s")
}
