// Package sched is a process-wide worker-budget scheduler for the QLA
// engine. Engine.WithParallelism bounds one run's Monte Carlo fanout,
// but a serving deployment executes many runs concurrently, and if each
// takes GOMAXPROCS workers the process oversubscribes its cores by the
// number of in-flight requests. A Pool holds the one global budget:
// every run asks for the width it wants and is granted a share of
// whatever is free (always at least one slot, blocking until one is).
// Results are unaffected — fixed-seed runs are bit-identical at any
// parallelism — so the grant width is purely a throughput decision.
//
// Admission is class-aware and tenant-fair. Each acquisition carries an
// Identity (tenant name + priority class) in its context, attached with
// WithIdentity. Two classes exist: ClassInteractive (short synchronous
// /v1/run requests) strictly outranks ClassBulk (sweep points), and an
// optional slot floor (Config.InteractiveReserve) keeps bulk work from
// ever occupying the last reserve slots, so an interactive arrival is
// admitted without waiting for a saturating sweep to drain. Inside a
// class, queued tenants share capacity by stride-style weighted fair
// queuing: each tenant carries a virtual-time pass, the tenant with the
// smallest pass is served next, and a grant of g slots advances the
// pass by g/weight — a flood of one tenant's requests therefore costs
// only that tenant virtual time and cannot starve another's queue.
package sched

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"qla/internal/obs"
)

// Class is an admission priority class. Lower values outrank higher
// ones: the dispatcher always serves queued interactive work before
// queued bulk work.
type Class int

const (
	// ClassInteractive is for short, latency-sensitive requests
	// (synchronous /v1/run). It may use every slot in the pool.
	ClassInteractive Class = iota
	// ClassBulk is for throughput work (sweep points). Its in-use
	// slots are capped at capacity minus the interactive reserve.
	ClassBulk

	numClasses
)

// String returns the stable wire name of the class ("interactive",
// "bulk"), used as the key under /v1/stats scheduler.classes.
func (c Class) String() string {
	switch c {
	case ClassInteractive:
		return "interactive"
	case ClassBulk:
		return "bulk"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// DefaultTenant is the tenant identity attached to requests that carry
// none (no X-QLA-Tenant header, library callers, tests).
const DefaultTenant = "default"

// Identity names the owner of an acquisition: which tenant is asking
// and at which priority class.
type Identity struct {
	Tenant string
	Class  Class
}

type identityKey struct{}

// WithIdentity returns a context carrying the given identity. The
// identity survives context.WithoutCancel, so detached compute
// contexts keep their owner.
func WithIdentity(ctx context.Context, id Identity) context.Context {
	return context.WithValue(ctx, identityKey{}, id)
}

// IdentityFrom extracts the identity from ctx, normalizing absent or
// malformed values to the default tenant at interactive class.
func IdentityFrom(ctx context.Context) Identity {
	id, _ := ctx.Value(identityKey{}).(Identity)
	if id.Tenant == "" {
		id.Tenant = DefaultTenant
	}
	if id.Class < 0 || id.Class >= numClasses {
		id.Class = ClassInteractive
	}
	return id
}

// Config describes a fair pool. The zero value is usable: GOMAXPROCS
// capacity, no reserve, unbounded queue waits, weight 1 for every
// tenant.
type Config struct {
	// Capacity is the global slot budget; <= 0 means GOMAXPROCS.
	Capacity int
	// InteractiveReserve is a slot floor held back from ClassBulk:
	// bulk in-use never exceeds Capacity-InteractiveReserve, so that
	// many slots are always available to (or idle for) interactive
	// work. Clamped to [0, Capacity-1] so bulk always keeps at least
	// one usable slot.
	InteractiveReserve int
	// InteractiveMaxWait / BulkMaxWait bound how long an acquirer of
	// that class may sit queued before Acquire gives up with a
	// *QueueWaitError. Zero means wait forever.
	InteractiveMaxWait time.Duration
	BulkMaxWait        time.Duration
	// Weights maps tenant name to fair-share weight (default 1).
	// A tenant with weight 2 receives twice the slot-time of a
	// weight-1 tenant while both have queued work.
	Weights map[string]float64
	// Metrics, when non-nil, receives a qla_sched_queue_wait_seconds
	// observation for every grant (zero for fast-path grants), labeled
	// by class and tenant — the per-class wait percentiles are the
	// pool's autoscaling signal.
	Metrics *obs.Registry
}

// maxWait returns the queue-wait bound for a class.
func (c Config) maxWait(cl Class) time.Duration {
	if cl == ClassBulk {
		return c.BulkMaxWait
	}
	return c.InteractiveMaxWait
}

// QueueWaitError reports that an acquisition sat queued past its
// class's bound and was refused. Callers should treat it as overload
// (HTTP 503) rather than failure of the work itself.
type QueueWaitError struct {
	Identity Identity
	Waited   time.Duration
}

func (e *QueueWaitError) Error() string {
	return fmt.Sprintf("sched: %s acquisition for tenant %q timed out after %v queued",
		e.Identity.Class, e.Identity.Tenant, e.Waited.Round(time.Millisecond))
}

// tenantStatsCap bounds the per-tenant counter map: tenant names come
// from request headers and are unbounded-cardinality, so beyond the
// cap new tenants are folded into a single overflow bucket.
const tenantStatsCap = 512

// OverflowTenant is the synthetic stats bucket that absorbs per-tenant
// counters once more than tenantStatsCap distinct tenants have been
// seen.
const OverflowTenant = "~overflow"

// Pool is a class-aware, tenant-fair counting semaphore with partial
// grants: an acquirer asking for n slots receives between 1 and n,
// depending on what is free when its turn comes. The zero Pool is not
// usable; construct with New or NewFair. A Pool is safe for concurrent
// use.
type Pool struct {
	mu       sync.Mutex
	capacity int
	reserve  int
	cfg      Config

	inUse      int
	classInUse [numClasses]int
	classes    [numClasses]*classQueue

	peak   int
	grants uint64
	waits  uint64

	classStats  [numClasses]classCounters
	tenantStats map[string]*tenantCounters

	queueWait *obs.HistogramVec // nil unless Config.Metrics set
}

// classQueue holds one class's queued tenants and the class virtual
// clock that new arrivals are clamped to.
type classQueue struct {
	tenants map[string]*tenantQueue
	vtime   float64
	waiting int
}

// tenantQueue is one tenant's FIFO of queued waiters plus its fair-
// share pass. When the queue drains the tenantQueue is dropped and the
// pass forgotten; a returning tenant re-enters at the class virtual
// time, i.e. fairness history applies only while a tenant stays
// backlogged.
type tenantQueue struct {
	ws     []*waiter
	pass   float64
	weight float64
}

type waiter struct {
	id      Identity
	want    int
	granted int
	ready   chan struct{}
	enq     time.Time
}

type classCounters struct {
	grants    uint64
	waits     uint64
	timeouts  uint64
	waitTotal time.Duration
	waitMax   time.Duration
}

type tenantCounters struct {
	grants uint64
	waits  uint64
}

// New builds a single-class-behaving Pool with the given slot capacity
// (<= 0 means GOMAXPROCS): no reserve, no queue-wait bounds, equal
// weights. Existing callers that never attach an Identity get the old
// strict-FIFO semantics, since all their work lands in one tenant
// queue of one class.
func New(capacity int) *Pool {
	return NewFair(Config{Capacity: capacity})
}

// NewFair builds a Pool from a full admission config.
func NewFair(cfg Config) *Pool {
	if cfg.Capacity <= 0 {
		cfg.Capacity = runtime.GOMAXPROCS(0)
	}
	if cfg.InteractiveReserve < 0 {
		cfg.InteractiveReserve = 0
	}
	if cfg.InteractiveReserve > cfg.Capacity-1 {
		cfg.InteractiveReserve = cfg.Capacity - 1
	}
	p := &Pool{
		capacity:    cfg.Capacity,
		reserve:     cfg.InteractiveReserve,
		cfg:         cfg,
		tenantStats: make(map[string]*tenantCounters),
	}
	for c := Class(0); c < numClasses; c++ {
		p.classes[c] = &classQueue{tenants: make(map[string]*tenantQueue)}
	}
	if cfg.Metrics != nil {
		p.queueWait = cfg.Metrics.HistogramVec("qla_sched_queue_wait_seconds",
			"Queue wait before a slot grant, by admission class and tenant.",
			obs.LatencyBuckets, "class", "tenant")
	}
	return p
}

// bulkCap is the ceiling on bulk in-use slots.
func (p *Pool) bulkCap() int { return p.capacity - p.reserve }

// weightOf returns the configured fair-share weight for a tenant.
func (p *Pool) weightOf(tenant string) float64 {
	if w, ok := p.cfg.Weights[tenant]; ok && w > 0 {
		return w
	}
	return 1
}

// Acquire obtains between 1 and want slots, blocking while the pool is
// exhausted (or while earlier acquirers of the same tenant are queued —
// within one tenant and class, grants stay strictly FIFO). The caller's
// identity is read from ctx (see WithIdentity); absent one, the work is
// charged to the default tenant at interactive class. It returns the
// number of slots granted and a release function that must be called
// exactly when the work finishes (calling it more than once is a
// no-op). On context cancellation while waiting it returns ctx.Err()
// with no slots held; past the class queue-wait bound it returns a
// *QueueWaitError.
func (p *Pool) Acquire(ctx context.Context, want int) (int, func(), error) {
	id := IdentityFrom(ctx)
	if want < 1 {
		want = 1
	}
	if want > p.capacity {
		want = p.capacity
	}
	if id.Class == ClassBulk && want > p.bulkCap() {
		want = p.bulkCap()
	}
	if err := ctx.Err(); err != nil {
		return 0, nil, err
	}

	p.mu.Lock()
	if p.canGrantNowLocked(id.Class) {
		g := want
		if free := p.capacity - p.inUse; g > free {
			g = free
		}
		if id.Class == ClassBulk {
			if room := p.bulkCap() - p.classInUse[ClassBulk]; g > room {
				g = room
			}
		}
		p.bookLocked(id, g, 0, false)
		p.mu.Unlock()
		return g, p.releaseFunc(id.Class, g), nil
	}
	w := &waiter{id: id, want: want, ready: make(chan struct{}), enq: time.Now()}
	p.enqueueLocked(w)
	p.mu.Unlock()

	var timeoutC <-chan time.Time
	if bound := p.cfg.maxWait(id.Class); bound > 0 {
		t := time.NewTimer(bound)
		defer t.Stop()
		timeoutC = t.C
	}

	select {
	case <-w.ready:
		return w.granted, p.releaseFunc(id.Class, w.granted), nil
	case <-timeoutC:
		p.mu.Lock()
		if p.removeWaiterLocked(w) {
			p.classStats[id.Class].timeouts++
			p.mu.Unlock()
			return 0, nil, &QueueWaitError{Identity: id, Waited: time.Since(w.enq)}
		}
		// A grant raced the timer; take it rather than waste the
		// already-booked slots.
		p.mu.Unlock()
		<-w.ready
		return w.granted, p.releaseFunc(id.Class, w.granted), nil
	case <-ctx.Done():
		p.mu.Lock()
		if p.removeWaiterLocked(w) {
			p.mu.Unlock()
			return 0, nil, ctx.Err()
		}
		// A release granted our slots concurrently with the
		// cancellation; hand them straight back. granted is stable
		// here: the dispatcher sets it before closing ready, under
		// the lock we now hold.
		p.releaseLocked(id.Class, w.granted)
		p.mu.Unlock()
		return 0, nil, ctx.Err()
	}
}

// canGrantNowLocked reports whether a new arrival of class c may be
// granted immediately without overtaking anyone it must yield to:
// queued work of its own class (fairness) or queued interactive work
// (priority). An interactive arrival may overtake queued bulk waiters
// by design.
func (p *Pool) canGrantNowLocked(c Class) bool {
	if p.capacity-p.inUse < 1 {
		return false
	}
	if p.classes[c].waiting > 0 {
		return false
	}
	if c == ClassBulk {
		if p.classes[ClassInteractive].waiting > 0 {
			return false
		}
		if p.classInUse[ClassBulk] >= p.bulkCap() {
			return false
		}
	}
	return true
}

// enqueueLocked parks w in its tenant's queue, creating the tenant
// entry at the class virtual time if it is not already backlogged.
func (p *Pool) enqueueLocked(w *waiter) {
	cq := p.classes[w.id.Class]
	tq := cq.tenants[w.id.Tenant]
	if tq == nil {
		tq = &tenantQueue{pass: cq.vtime, weight: p.weightOf(w.id.Tenant)}
		cq.tenants[w.id.Tenant] = tq
	}
	tq.ws = append(tq.ws, w)
	cq.waiting++
	p.waits++
	p.classStats[w.id.Class].waits++
	p.tenantCountersLocked(w.id.Tenant).waits++
}

// removeWaiterLocked unlinks w from its queue, returning false if it
// was already dispatched.
func (p *Pool) removeWaiterLocked(w *waiter) bool {
	cq := p.classes[w.id.Class]
	tq := cq.tenants[w.id.Tenant]
	if tq == nil {
		return false
	}
	for i, q := range tq.ws {
		if q == w {
			tq.ws = append(tq.ws[:i], tq.ws[i+1:]...)
			cq.waiting--
			if len(tq.ws) == 0 {
				delete(cq.tenants, w.id.Tenant)
			}
			return true
		}
	}
	return false
}

// dispatchLocked hands freed capacity to queued waiters: interactive
// strictly first, then bulk while under its cap; within a class, the
// backlogged tenant with the smallest pass (ties broken by name for
// determinism), charging pass += granted/weight per grant.
func (p *Pool) dispatchLocked() {
	for {
		free := p.capacity - p.inUse
		if free < 1 {
			return
		}
		var c Class
		switch {
		case p.classes[ClassInteractive].waiting > 0:
			c = ClassInteractive
		case p.classes[ClassBulk].waiting > 0 && p.classInUse[ClassBulk] < p.bulkCap():
			c = ClassBulk
		default:
			return
		}
		cq := p.classes[c]
		name, tq := minTenant(cq)
		w := tq.ws[0]
		g := w.want
		if g > free {
			g = free
		}
		if c == ClassBulk {
			if room := p.bulkCap() - p.classInUse[ClassBulk]; g > room {
				g = room
			}
		}
		tq.ws = tq.ws[1:]
		cq.waiting--
		if cq.vtime < tq.pass {
			cq.vtime = tq.pass
		}
		tq.pass += float64(g) / tq.weight
		if len(tq.ws) == 0 {
			delete(cq.tenants, name)
		}
		w.granted = g
		p.bookLocked(w.id, g, time.Since(w.enq), true)
		close(w.ready)
	}
}

// minTenant picks the backlogged tenant with the smallest pass,
// breaking ties by name so scheduling is deterministic.
func minTenant(cq *classQueue) (string, *tenantQueue) {
	var bestName string
	var best *tenantQueue
	for name, tq := range cq.tenants {
		if best == nil || tq.pass < best.pass ||
			(tq.pass == best.pass && name < bestName) {
			bestName, best = name, tq
		}
	}
	return bestName, best
}

// bookLocked records a grant of g slots to id, with the queue wait it
// paid (zero for fast-path grants).
func (p *Pool) bookLocked(id Identity, g int, waited time.Duration, queued bool) {
	p.inUse += g
	p.classInUse[id.Class] += g
	p.grants++
	p.classStats[id.Class].grants++
	p.tenantCountersLocked(id.Tenant).grants++
	p.queueWait.With(id.Class.String(), id.Tenant).Observe(waited.Seconds())
	if queued {
		cs := &p.classStats[id.Class]
		cs.waitTotal += waited
		if waited > cs.waitMax {
			cs.waitMax = waited
		}
	}
	if p.inUse > p.peak {
		p.peak = p.inUse
	}
}

// tenantCountersLocked returns the stats bucket for a tenant, folding
// new tenants into OverflowTenant once the map is full.
func (p *Pool) tenantCountersLocked(tenant string) *tenantCounters {
	tc := p.tenantStats[tenant]
	if tc == nil {
		if len(p.tenantStats) >= tenantStatsCap {
			tenant = OverflowTenant
			if tc = p.tenantStats[tenant]; tc != nil {
				return tc
			}
		}
		tc = &tenantCounters{}
		p.tenantStats[tenant] = tc
	}
	return tc
}

// releaseFunc wraps releaseLocked in the idempotent closure Acquire
// hands out.
func (p *Pool) releaseFunc(c Class, n int) func() {
	var once sync.Once
	return func() {
		once.Do(func() {
			p.mu.Lock()
			p.releaseLocked(c, n)
			p.mu.Unlock()
		})
	}
}

// releaseLocked returns n slots held by class c and re-runs dispatch.
func (p *Pool) releaseLocked(c Class, n int) {
	p.inUse -= n
	p.classInUse[c] -= n
	p.dispatchLocked()
}

// ClassStats is one priority class's slice of the pool snapshot.
type ClassStats struct {
	// InUse is the class's currently granted slots; SlotCap is the
	// most it may ever hold (capacity for interactive, capacity minus
	// the reserve for bulk).
	InUse   int `json:"in_use"`
	SlotCap int `json:"slot_cap"`
	// Waiting is the class's queued acquirers right now.
	Waiting int `json:"waiting"`
	// Grants counts completed acquisitions; Waits the subset that
	// queued first; QueueTimeouts the subset refused at the class
	// queue-wait bound.
	Grants        uint64 `json:"grants"`
	Waits         uint64 `json:"waits"`
	QueueTimeouts uint64 `json:"queue_timeouts"`
	// AvgQueueWaitMS / MaxQueueWaitMS summarize the queue wait paid
	// by grants that had to queue.
	AvgQueueWaitMS float64 `json:"avg_queue_wait_ms"`
	MaxQueueWaitMS float64 `json:"max_queue_wait_ms"`
}

// TenantStats is one tenant's slice of the pool snapshot.
type TenantStats struct {
	Grants  uint64 `json:"grants"`
	Waits   uint64 `json:"waits"`
	Waiting int    `json:"waiting"`
}

// Stats is a point-in-time snapshot of the pool.
type Stats struct {
	// Capacity is the global slot budget.
	Capacity int `json:"capacity"`
	// InteractiveReserve is the slot floor withheld from bulk work.
	InteractiveReserve int `json:"interactive_reserve"`
	// InUse is the number of slots currently granted.
	InUse int `json:"in_use"`
	// Waiting is the number of queued acquirers.
	Waiting int `json:"waiting"`
	// Peak is the high-water mark of InUse; it never exceeds Capacity.
	Peak int `json:"peak"`
	// Grants counts completed acquisitions; Waits counts the subset
	// that had to queue first.
	Grants uint64 `json:"grants"`
	Waits  uint64 `json:"waits"`
	// Classes breaks the pool down by priority class, keyed by class
	// name ("interactive", "bulk").
	Classes map[string]ClassStats `json:"classes"`
	// Tenants breaks grants down by tenant, keyed by tenant name
	// (bounded; see OverflowTenant).
	Tenants map[string]TenantStats `json:"tenants,omitempty"`
}

// Stats returns a snapshot of the pool's counters.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := Stats{
		Capacity:           p.capacity,
		InteractiveReserve: p.reserve,
		InUse:              p.inUse,
		Waiting:            p.classes[ClassInteractive].waiting + p.classes[ClassBulk].waiting,
		Peak:               p.peak,
		Grants:             p.grants,
		Waits:              p.waits,
		Classes:            make(map[string]ClassStats, numClasses),
		Tenants:            make(map[string]TenantStats, len(p.tenantStats)),
	}
	for c := Class(0); c < numClasses; c++ {
		cc := p.classStats[c]
		cs := ClassStats{
			InUse:          p.classInUse[c],
			SlotCap:        p.capacity,
			Waiting:        p.classes[c].waiting,
			Grants:         cc.grants,
			Waits:          cc.waits,
			QueueTimeouts:  cc.timeouts,
			MaxQueueWaitMS: float64(cc.waitMax) / float64(time.Millisecond),
		}
		if c == ClassBulk {
			cs.SlotCap = p.bulkCap()
		}
		if cc.waits > 0 {
			cs.AvgQueueWaitMS = float64(cc.waitTotal) / float64(cc.waits) / float64(time.Millisecond)
		}
		st.Classes[c.String()] = cs
	}
	for name, tc := range p.tenantStats {
		st.Tenants[name] = TenantStats{Grants: tc.grants, Waits: tc.waits}
	}
	for c := Class(0); c < numClasses; c++ {
		for name, tq := range p.classes[c].tenants {
			ts := st.Tenants[name]
			ts.Waiting += len(tq.ws)
			st.Tenants[name] = ts
		}
	}
	return st
}
