// Package sched is a process-wide worker-budget scheduler for the QLA
// engine. Engine.WithParallelism bounds one run's Monte Carlo fanout,
// but a serving deployment executes many runs concurrently, and if each
// takes GOMAXPROCS workers the process oversubscribes its cores by the
// number of in-flight requests. A Pool holds the one global budget:
// every run asks for the width it wants and is granted a share of
// whatever is free (always at least one slot, blocking FIFO until one
// is). Results are unaffected — fixed-seed runs are bit-identical at
// any parallelism — so the grant width is purely a throughput decision.
package sched

import (
	"context"
	"runtime"
	"sync"
)

// Pool is a FIFO counting semaphore with partial grants: an acquirer
// asking for n slots receives between 1 and n, depending on what is
// free when its turn comes. The zero Pool is not usable; construct with
// New. A Pool is safe for concurrent use.
type Pool struct {
	mu       sync.Mutex
	capacity int
	inUse    int
	waiters  []*waiter

	peak   int
	grants uint64
	waits  uint64
}

type waiter struct {
	want    int
	granted int
	ready   chan struct{}
}

// New builds a Pool with the given slot capacity; capacity <= 0 means
// GOMAXPROCS.
func New(capacity int) *Pool {
	if capacity <= 0 {
		capacity = runtime.GOMAXPROCS(0)
	}
	return &Pool{capacity: capacity}
}

// Acquire obtains between 1 and want slots, blocking while the pool is
// exhausted (or while earlier acquirers are still queued — grants are
// strictly FIFO, so a small request cannot starve behind-the-head
// waiters by overtaking them). It returns the number of slots granted
// and a release function that must be called exactly when the work
// finishes (calling it more than once is a no-op). On context
// cancellation while waiting it returns ctx.Err() with no slots held.
func (p *Pool) Acquire(ctx context.Context, want int) (int, func(), error) {
	if want < 1 {
		want = 1
	}
	if want > p.capacity {
		want = p.capacity
	}
	if err := ctx.Err(); err != nil {
		return 0, nil, err
	}
	p.mu.Lock()
	if len(p.waiters) == 0 && p.inUse < p.capacity {
		granted := min(want, p.capacity-p.inUse)
		p.grantLocked(granted)
		p.mu.Unlock()
		return granted, p.releaseFunc(granted), nil
	}
	w := &waiter{want: want, ready: make(chan struct{})}
	p.waiters = append(p.waiters, w)
	p.waits++
	p.mu.Unlock()

	select {
	case <-w.ready:
		return w.granted, p.releaseFunc(w.granted), nil
	case <-ctx.Done():
		p.mu.Lock()
		for i, q := range p.waiters {
			if q == w {
				p.waiters = append(p.waiters[:i], p.waiters[i+1:]...)
				p.mu.Unlock()
				return 0, nil, ctx.Err()
			}
		}
		// A release granted our slots concurrently with the
		// cancellation; hand them straight back.
		p.releaseLocked(w.granted)
		p.mu.Unlock()
		return 0, nil, ctx.Err()
	}
}

// grantLocked books n slots and updates the grant statistics.
func (p *Pool) grantLocked(n int) {
	p.inUse += n
	p.grants++
	if p.inUse > p.peak {
		p.peak = p.inUse
	}
}

// releaseFunc wraps releaseLocked in the idempotent closure Acquire
// hands out.
func (p *Pool) releaseFunc(n int) func() {
	var once sync.Once
	return func() {
		once.Do(func() {
			p.mu.Lock()
			p.releaseLocked(n)
			p.mu.Unlock()
		})
	}
}

// releaseLocked returns n slots and hands the freed capacity to queued
// waiters in FIFO order, each receiving up to its requested width.
func (p *Pool) releaseLocked(n int) {
	p.inUse -= n
	for len(p.waiters) > 0 && p.inUse < p.capacity {
		w := p.waiters[0]
		p.waiters = p.waiters[1:]
		w.granted = min(w.want, p.capacity-p.inUse)
		p.grantLocked(w.granted)
		close(w.ready)
	}
}

// Stats is a point-in-time snapshot of the pool.
type Stats struct {
	// Capacity is the global slot budget.
	Capacity int `json:"capacity"`
	// InUse is the number of slots currently granted.
	InUse int `json:"in_use"`
	// Waiting is the number of queued acquirers.
	Waiting int `json:"waiting"`
	// Peak is the high-water mark of InUse; it never exceeds Capacity.
	Peak int `json:"peak"`
	// Grants counts completed acquisitions; Waits counts the subset
	// that had to queue first.
	Grants uint64 `json:"grants"`
	Waits  uint64 `json:"waits"`
}

// Stats returns a snapshot of the pool's counters.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return Stats{
		Capacity: p.capacity,
		InUse:    p.inUse,
		Waiting:  len(p.waiters),
		Peak:     p.peak,
		Grants:   p.grants,
		Waits:    p.waits,
	}
}
