package sched

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestBudgetNeverExceeded drives many concurrent acquirers through a
// small pool and checks — with an independent atomic census, not the
// pool's own bookkeeping — that the number of simultaneously granted
// slots never exceeds the capacity. Run under -race in CI.
func TestBudgetNeverExceeded(t *testing.T) {
	const capacity = 4
	p := New(capacity)
	var inUse, peak atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(want int) {
			defer wg.Done()
			granted, release, err := p.Acquire(context.Background(), want)
			if err != nil {
				t.Errorf("Acquire: %v", err)
				return
			}
			if granted < 1 || granted > want || granted > capacity {
				t.Errorf("granted %d for want %d", granted, want)
			}
			now := inUse.Add(int64(granted))
			for {
				old := peak.Load()
				if now <= old || peak.CompareAndSwap(old, now) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			inUse.Add(-int64(granted))
			release()
		}(1 + i%6)
	}
	wg.Wait()
	if got := peak.Load(); got > capacity {
		t.Errorf("observed %d slots in use, capacity %d", got, capacity)
	}
	s := p.Stats()
	if s.InUse != 0 || s.Waiting != 0 {
		t.Errorf("pool not drained: %+v", s)
	}
	if s.Peak > capacity {
		t.Errorf("pool peak %d exceeds capacity %d", s.Peak, capacity)
	}
	if s.Grants != 32 {
		t.Errorf("grants = %d, want 32", s.Grants)
	}
}

// TestGrantClamping covers the want-normalization edges.
func TestGrantClamping(t *testing.T) {
	p := New(3)
	for _, tc := range []struct{ want, granted int }{
		{-5, 1}, {0, 1}, {1, 1}, {3, 3}, {99, 3},
	} {
		granted, release, err := p.Acquire(context.Background(), tc.want)
		if err != nil {
			t.Fatal(err)
		}
		if granted != tc.granted {
			t.Errorf("Acquire(want=%d) granted %d, want %d", tc.want, granted, tc.granted)
		}
		release()
	}
}

// TestPartialGrant: with some of the pool held, a wide request gets the
// remainder rather than blocking for its full width.
func TestPartialGrant(t *testing.T) {
	p := New(4)
	_, release1, err := p.Acquire(context.Background(), 3)
	if err != nil {
		t.Fatal(err)
	}
	granted, release2, err := p.Acquire(context.Background(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if granted != 1 {
		t.Errorf("granted %d from a pool with 1 free, want 1", granted)
	}
	release1()
	release2()
	if s := p.Stats(); s.InUse != 0 {
		t.Errorf("InUse = %d after releases", s.InUse)
	}
}

// TestFIFOOrder: queued acquirers are served strictly in arrival order,
// even when a later, narrower request would fit sooner.
func TestFIFOOrder(t *testing.T) {
	p := New(2)
	_, releaseHead, err := p.Acquire(context.Background(), 2)
	if err != nil {
		t.Fatal(err)
	}
	// The first two waiters want the full capacity so each release wakes
	// exactly one of them; the last wants a single slot that would fit
	// beside waiter 1's grant — FIFO must not let it overtake.
	wants := []int{2, 2, 1}
	var order []int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, release, err := p.Acquire(context.Background(), wants[i])
			if err != nil {
				t.Errorf("waiter %d: %v", i, err)
				return
			}
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			release()
		}(i)
		// Wait until waiter i is queued before launching i+1 so the
		// arrival order is deterministic.
		for p.Stats().Waiting != i+1 {
			time.Sleep(100 * time.Microsecond)
		}
	}
	releaseHead()
	wg.Wait()
	for i, got := range order {
		if got != i {
			t.Fatalf("service order %v, want [0 1 2]", order)
		}
	}
	if s := p.Stats(); s.Waits != 3 {
		t.Errorf("Waits = %d, want 3", s.Waits)
	}
}

// TestCancelWhileWaiting: a cancelled waiter leaves the queue without
// holding slots, and the pool keeps serving.
func TestCancelWhileWaiting(t *testing.T) {
	p := New(1)
	_, release, err := p.Acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, _, err := p.Acquire(ctx, 1)
		errc <- err
	}()
	for p.Stats().Waiting != 1 {
		time.Sleep(100 * time.Microsecond)
	}
	cancel()
	if err := <-errc; err != context.Canceled {
		t.Fatalf("cancelled Acquire returned %v", err)
	}
	if s := p.Stats(); s.Waiting != 0 {
		t.Fatalf("cancelled waiter still queued: %+v", s)
	}
	release()
	granted, release2, err := p.Acquire(context.Background(), 1)
	if err != nil || granted != 1 {
		t.Fatalf("pool unusable after cancellation: granted=%d err=%v", granted, err)
	}
	release2()
}

// TestCancelledContextUpFront never enters the queue.
func TestCancelledContextUpFront(t *testing.T) {
	p := New(1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := p.Acquire(ctx, 1); err != context.Canceled {
		t.Fatalf("err = %v", err)
	}
	if s := p.Stats(); s.InUse != 0 || s.Waiting != 0 {
		t.Fatalf("stats after pre-cancelled acquire: %+v", s)
	}
}

// TestReleaseIdempotent: releasing twice must not free slots twice.
func TestReleaseIdempotent(t *testing.T) {
	p := New(2)
	_, release, err := p.Acquire(context.Background(), 2)
	if err != nil {
		t.Fatal(err)
	}
	release()
	release()
	if s := p.Stats(); s.InUse != 0 {
		t.Fatalf("InUse = %d after double release", s.InUse)
	}
	granted, release2, err := p.Acquire(context.Background(), 2)
	if err != nil || granted != 2 {
		t.Fatalf("granted=%d err=%v", granted, err)
	}
	release2()
}
