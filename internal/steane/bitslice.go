package steane

// Bit-sliced (lane-parallel) decode arithmetic: every uint64 here is a
// lane mask carrying one bit of 64 independent Monte Carlo trials, the
// layout used by pauliframe.Batch. The functions mirror Syndrome,
// DecodePosition and DecodeBlock word-wise, so a batched simulator
// decodes all 64 trials with a handful of XOR/AND operations instead of
// 64 scalar Hamming decodes.

// SyndromeMasks computes the Hamming syndrome of a 7-bit measurement
// word for 64 lanes at once. w[q] is the lane mask of measured bits on
// qubit q; the returned planes s0, s1, s2 carry bit 0 (LSB), bit 1 and
// bit 2 of each lane's syndrome value, matching Syndrome's convention
// (row 0 of Supports is the most significant bit). A lane whose three
// planes are all zero detected no error.
func SyndromeMasks(w *[7]uint64) (s0, s1, s2 uint64) {
	// The planes are the parities over Supports[2], Supports[1],
	// Supports[0] respectively (column q of the check matrix is the
	// binary representation of q+1).
	s0 = w[0] ^ w[2] ^ w[4] ^ w[6]
	s1 = w[1] ^ w[2] ^ w[5] ^ w[6]
	s2 = w[3] ^ w[4] ^ w[5] ^ w[6]
	return s0, s1, s2
}

// PositionMask returns the lane mask of trials whose syndrome planes
// decode to physical qubit pos (0..6): the lanes where the syndrome
// value equals pos+1. Lanes with the trivial (zero) syndrome appear in
// no position mask, mirroring DecodePosition's -1.
func PositionMask(s0, s1, s2 uint64, pos int) uint64 {
	if pos < 0 || pos >= N {
		panic("steane: PositionMask position out of range")
	}
	v := pos + 1
	m := ^uint64(0)
	if v&1 != 0 {
		m &= s0
	} else {
		m &^= s0
	}
	if v&2 != 0 {
		m &= s1
	} else {
		m &^= s1
	}
	if v&4 != 0 {
		m &= s2
	} else {
		m &^= s2
	}
	return m
}

// DecodeBlockMasks performs ideal decoding of one error-component word
// for 64 lanes at once, returning the lane mask of decoder failures
// (lanes whose corrected residual is a logical operator). It mirrors
// DecodeBlock: correcting the single qubit named by a non-trivial
// syndrome flips the word's overall parity, so the corrected logical
// parity is the raw parity XOR the "syndrome non-zero" mask.
func DecodeBlockMasks(w *[7]uint64) uint64 {
	s0, s1, s2 := SyndromeMasks(w)
	parity := w[0] ^ w[1] ^ w[2] ^ w[3] ^ w[4] ^ w[5] ^ w[6]
	return parity ^ (s0 | s1 | s2)
}
