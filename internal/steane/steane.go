// Package steane implements the Steane [[7,1,3]] quantum error-correcting
// code: the building block of every QLA logical qubit. "We choose to model
// the Steane [[7,1,3]] code, where 7 physical qubits are encoded to form 1
// logical qubit that can correct at most (3-1)/2 = 1 error ... because it
// allows the implementation of a universal set of logical gates
// transversally."
//
// The package provides the stabilizer generators, logical operators, the
// |0⟩_L encoding circuit, syndrome arithmetic (classical Hamming decode),
// and hierarchical (recursive) decoding used to score logical failures.
package steane

import (
	"fmt"

	"qla/internal/circuit"
	"qla/internal/pauli"
)

// N is the number of physical qubits per code block.
const N = 7

// K is the number of logical qubits per block.
const K = 1

// Distance is the code distance.
const Distance = 3

// Supports lists the qubit support of the three Hamming parity checks; the
// code's X-stabilizers and Z-stabilizers both use these rows (the code is
// CSS and self-dual). Column q carries the binary representation of q+1:
// row 0 is the most significant bit.
var Supports = [3][4]int{
	{3, 4, 5, 6}, // 0001111
	{1, 2, 5, 6}, // 0110011
	{0, 2, 4, 6}, // 1010101
}

// genOn builds the generator of the given Pauli kind on a row support.
func genOn(kind byte, row int) pauli.String {
	p := pauli.NewIdentity(N)
	for _, q := range Supports[row] {
		p.Set(q, kind)
	}
	return p
}

// XStabilizers returns the three X-type stabilizer generators.
func XStabilizers() []pauli.String {
	return []pauli.String{genOn('X', 0), genOn('X', 1), genOn('X', 2)}
}

// ZStabilizers returns the three Z-type stabilizer generators.
func ZStabilizers() []pauli.String {
	return []pauli.String{genOn('Z', 0), genOn('Z', 1), genOn('Z', 2)}
}

// Generators returns all six stabilizer generators (X-type then Z-type).
func Generators() []pauli.String {
	return append(XStabilizers(), ZStabilizers()...)
}

// LogicalX returns the transversal logical X operator X⊗7.
func LogicalX() pauli.String {
	p := pauli.NewIdentity(N)
	for q := 0; q < N; q++ {
		p.Set(q, 'X')
	}
	return p
}

// LogicalZ returns the transversal logical Z operator Z⊗7.
func LogicalZ() pauli.String {
	p := pauli.NewIdentity(N)
	for q := 0; q < N; q++ {
		p.Set(q, 'Z')
	}
	return p
}

// EncodeZero returns the 7-qubit circuit preparing |0⟩_L from |0…0⟩:
// Hadamards on the pivot qubit of each X-stabilizer row followed by CNOT
// fan-outs along the row supports.
func EncodeZero() *circuit.Circuit {
	c := circuit.New(N)
	// Pivots: leading qubit of each row (3, 1, 0).
	c.H(3)
	c.H(1)
	c.H(0)
	// Row 0 from pivot 3: 3 -> 4,5,6.
	c.CNOT(3, 4)
	c.CNOT(3, 5)
	c.CNOT(3, 6)
	// Row 1 from pivot 1: 1 -> 2,5,6.
	c.CNOT(1, 2)
	c.CNOT(1, 5)
	c.CNOT(1, 6)
	// Row 2 from pivot 0: 0 -> 2,4,6.
	c.CNOT(0, 2)
	c.CNOT(0, 4)
	c.CNOT(0, 6)
	return c
}

// EncodePlus returns the circuit preparing |+⟩_L: |0⟩_L followed by a
// transversal Hadamard (the code is self-dual, so H⊗7 is the logical H).
func EncodePlus() *circuit.Circuit {
	c := EncodeZero()
	for q := 0; q < N; q++ {
		c.H(q)
	}
	return c
}

// Syndrome computes the Hamming syndrome value (0..7) of a 7-bit
// measurement or error word: bit r of the result is the parity of the word
// over Supports[r], with row 0 as the most significant bit. A zero result
// means "no error detected"; otherwise the value-1 is the qubit to correct.
func Syndrome(bits [N]int) int {
	s := 0
	for r := 0; r < 3; r++ {
		par := 0
		for _, q := range Supports[r] {
			par ^= bits[q] & 1
		}
		s |= par << (2 - r)
	}
	return s
}

// DecodePosition maps a syndrome value to the physical qubit to correct, or
// -1 for the trivial syndrome.
func DecodePosition(syndrome int) int {
	if syndrome < 0 || syndrome > 7 {
		panic(fmt.Sprintf("steane: syndrome %d out of range", syndrome))
	}
	return syndrome - 1
}

// Parity returns the overall parity of a 7-bit word: the logical readout of
// a transversally measured block (both logical operators act on all 7
// qubits).
func Parity(bits [N]int) int {
	p := 0
	for _, b := range bits {
		p ^= b & 1
	}
	return p
}

// CorrectWord applies the Hamming decode to a 7-bit word in place and
// reports whether a correction was applied.
func CorrectWord(bits *[N]int) bool {
	pos := DecodePosition(Syndrome(*bits))
	if pos < 0 {
		return false
	}
	bits[pos] ^= 1
	return true
}

// DecodeBlock performs ideal decoding of one error-component word (the X
// bits or the Z bits of the residual error on a block): it corrects the
// word to the nearest coset and returns 1 when the residual is a logical
// operator (decoder failure), 0 when it is a stabilizer (harmless).
func DecodeBlock(bits [N]int) int {
	CorrectWord(&bits)
	return Parity(bits)
}

// BlocksPerLevel returns 7^level: the number of physical qubits per logical
// qubit at the given recursion level (data qubits only, excluding ancilla).
func BlocksPerLevel(level int) int {
	if level < 0 {
		panic("steane: negative recursion level")
	}
	n := 1
	for i := 0; i < level; i++ {
		n *= N
	}
	return n
}

// DecodeRecursive performs ideal hierarchical decoding of a level-L error
// word over 7^L physical bits (one error component, X or Z): each group of
// 7 is decoded to its logical value, recursively, and the final logical bit
// is returned (1 = logical error at the top level).
func DecodeRecursive(bits []int, level int) int {
	if len(bits) != BlocksPerLevel(level) {
		panic(fmt.Sprintf("steane: DecodeRecursive got %d bits for level %d", len(bits), level))
	}
	if level == 0 {
		return bits[0] & 1
	}
	sub := BlocksPerLevel(level - 1)
	var word [N]int
	for b := 0; b < N; b++ {
		word[b] = DecodeRecursive(bits[b*sub:(b+1)*sub], level-1)
	}
	return DecodeBlock(word)
}
