package steane

import (
	"testing"

	"qla/internal/stabilizer"
)

func TestGeneratorsCommute(t *testing.T) {
	gens := Generators()
	if len(gens) != 6 {
		t.Fatalf("got %d generators", len(gens))
	}
	for i := range gens {
		for j := range gens {
			if !gens[i].Commutes(gens[j]) {
				t.Errorf("generators %d and %d anticommute", i, j)
			}
		}
	}
}

func TestLogicalOperators(t *testing.T) {
	lx, lz := LogicalX(), LogicalZ()
	if !lx.Commutes(lz) == false {
		// X⊗7 and Z⊗7 overlap on 7 qubits -> anticommute.
		t.Error("logical X and Z should anticommute")
	}
	for i, g := range Generators() {
		if !lx.Commutes(g) {
			t.Errorf("logical X anticommutes with generator %d", i)
		}
		if !lz.Commutes(g) {
			t.Errorf("logical Z anticommutes with generator %d", i)
		}
	}
	if lx.Weight() != 7 || lz.Weight() != 7 {
		t.Error("transversal logical operators should have weight 7")
	}
}

func TestEncodeZeroStabilized(t *testing.T) {
	s := stabilizer.New(N)
	EncodeZero().RunOn(s)
	for i, g := range Generators() {
		if e := s.Expectation(g); e != 1 {
			t.Errorf("<generator %d> = %d after encoding, want +1", i, e)
		}
	}
	if e := s.Expectation(LogicalZ()); e != 1 {
		t.Errorf("<Z_L> = %d on |0>_L, want +1", e)
	}
	if e := s.Expectation(LogicalX()); e != 0 {
		t.Errorf("<X_L> = %d on |0>_L, want 0 (random)", e)
	}
}

func TestEncodePlusStabilized(t *testing.T) {
	s := stabilizer.New(N)
	EncodePlus().RunOn(s)
	for i, g := range Generators() {
		if e := s.Expectation(g); e != 1 {
			t.Errorf("<generator %d> = %d on |+>_L, want +1", i, e)
		}
	}
	if e := s.Expectation(LogicalX()); e != 1 {
		t.Errorf("<X_L> = %d on |+>_L, want +1", e)
	}
	if e := s.Expectation(LogicalZ()); e != 0 {
		t.Errorf("<Z_L> = %d on |+>_L, want 0", e)
	}
}

func TestTransversalXFlipsLogical(t *testing.T) {
	s := stabilizer.New(N)
	EncodeZero().RunOn(s)
	s.ApplyPauli(LogicalX())
	if e := s.Expectation(LogicalZ()); e != -1 {
		t.Errorf("<Z_L> = %d after logical X on |0>_L, want -1", e)
	}
	// Still in the code space.
	for i, g := range Generators() {
		if e := s.Expectation(g); e != 1 {
			t.Errorf("generator %d violated after transversal X: %d", i, e)
		}
	}
}

func TestTransversalCNOT(t *testing.T) {
	// Two blocks; logical CNOT = 7 transversal physical CNOTs.
	s := stabilizer.New(2 * N)
	enc := EncodeZero()
	blockA := make([]int, N)
	blockB := make([]int, N)
	for i := 0; i < N; i++ {
		blockA[i] = i
		blockB[i] = N + i
	}
	// Encode both blocks.
	for _, blk := range [][]int{blockA, blockB} {
		for _, op := range enc.Ops {
			switch op.Type.String() {
			case "h":
				s.H(blk[op.Q[0]])
			case "cnot":
				s.CNOT(blk[op.Q[0]], blk[op.Q[1]])
			}
		}
	}
	// Flip block A to logical |1>.
	for _, q := range blockA {
		s.X(q)
	}
	// Transversal CNOT A -> B.
	for i := 0; i < N; i++ {
		s.CNOT(blockA[i], blockB[i])
	}
	// Block B must now read logical 1.
	lzB := LogicalZ().Embed(2*N, blockB)
	if e := s.Expectation(lzB); e != -1 {
		t.Errorf("<Z_L(B)> = %d after logical CNOT from |1>_L, want -1", e)
	}
	lzA := LogicalZ().Embed(2*N, blockA)
	if e := s.Expectation(lzA); e != -1 {
		t.Errorf("<Z_L(A)> = %d, control should stay |1>_L", e)
	}
}

func TestSyndromeAllSingleErrors(t *testing.T) {
	// Every weight-1 error word must decode back to itself.
	for q := 0; q < N; q++ {
		var w [N]int
		w[q] = 1
		s := Syndrome(w)
		if got := DecodePosition(s); got != q {
			t.Errorf("error on qubit %d decoded to %d (syndrome %d)", q, got, s)
		}
	}
	// Trivial syndrome.
	var zero [N]int
	if Syndrome(zero) != 0 || DecodePosition(0) != -1 {
		t.Error("zero word should have trivial syndrome")
	}
}

func TestSyndromeOfStabilizersTrivial(t *testing.T) {
	// Stabilizer supports (and their sums) are codewords: syndrome 0.
	for r := 0; r < 3; r++ {
		var w [N]int
		for _, q := range Supports[r] {
			w[q] = 1
		}
		if s := Syndrome(w); s != 0 {
			t.Errorf("row %d has syndrome %d, want 0", r, s)
		}
		if Parity(w) != 0 {
			t.Errorf("stabilizer row %d has odd parity", r)
		}
	}
}

func TestDecodeBlock(t *testing.T) {
	// Single errors are corrected: no logical error.
	for q := 0; q < N; q++ {
		var w [N]int
		w[q] = 1
		if DecodeBlock(w) != 0 {
			t.Errorf("single error on %d caused logical failure", q)
		}
	}
	// The all-ones word is the logical operator: failure.
	var all [N]int
	for q := range all {
		all[q] = 1
	}
	if DecodeBlock(all) != 1 {
		t.Error("logical operator not detected as failure")
	}
	// Two errors exceed the distance: decoding must misfire into a
	// logical error for at least some pairs (weight-2 + correction =
	// weight 3 logical coset).
	fails := 0
	for a := 0; a < N; a++ {
		for b := a + 1; b < N; b++ {
			var w [N]int
			w[a], w[b] = 1, 1
			fails += DecodeBlock(w)
		}
	}
	if fails == 0 {
		t.Error("no weight-2 error produced a logical failure; decoder too strong for a d=3 code")
	}
}

func TestDecodeRecursive(t *testing.T) {
	// Level 1 with a single physical error: no failure.
	bits := make([]int, 7)
	bits[3] = 1
	if DecodeRecursive(bits, 1) != 0 {
		t.Error("level-1 single error should decode cleanly")
	}
	// Level 2 (49 bits): one error in each of two different sub-blocks is
	// still corrected (each block fixes its own).
	bits = make([]int, 49)
	bits[0] = 1 // block 0
	bits[8] = 1 // block 1
	if DecodeRecursive(bits, 2) != 0 {
		t.Error("level-2 sparse errors should decode cleanly")
	}
	// A full logical error in enough blocks to fool level 2: logical X on
	// blocks 0..6 (all bits set) is the top-level logical operator.
	for i := range bits {
		bits[i] = 1
	}
	if DecodeRecursive(bits, 2) != 1 {
		t.Error("top-level logical operator must fail decoding")
	}
	// Level 0 passthrough.
	if DecodeRecursive([]int{1}, 0) != 1 || DecodeRecursive([]int{0}, 0) != 0 {
		t.Error("level-0 decode should be identity")
	}
}

func TestBlocksPerLevel(t *testing.T) {
	want := []int{1, 7, 49, 343}
	for l, w := range want {
		if got := BlocksPerLevel(l); got != w {
			t.Errorf("BlocksPerLevel(%d) = %d, want %d", l, got, w)
		}
	}
}

func TestEncoderDetectsInjectedError(t *testing.T) {
	// Inject each single-qubit X error after encoding; the Z-stabilizer
	// syndrome measured via expectations must identify it.
	for q := 0; q < N; q++ {
		s := stabilizer.New(N)
		EncodeZero().RunOn(s)
		s.X(q)
		var word [N]int
		for r, g := range ZStabilizers() {
			e := s.Expectation(g)
			if e == 0 {
				t.Fatalf("Z stabilizer %d random after X error", r)
			}
			if e == -1 {
				// violated: record a 1 on any support qubit... build the
				// syndrome directly instead.
				word[Supports[r][0]] ^= 0 // no-op; syndrome assembled below
			}
		}
		// Assemble syndrome value from violated stabilizers directly.
		sv := 0
		for r, g := range ZStabilizers() {
			if s.Expectation(g) == -1 {
				sv |= 1 << (2 - r)
			}
		}
		if got := DecodePosition(sv); got != q {
			t.Errorf("X error on %d: syndrome %d decodes to %d", q, sv, got)
		}
	}
}

func TestCorrectWord(t *testing.T) {
	var w [N]int
	w[5] = 1
	if !CorrectWord(&w) {
		t.Error("correction should have been applied")
	}
	for q, b := range w {
		if b != 0 {
			t.Errorf("bit %d still set after correction", q)
		}
	}
	var clean [N]int
	if CorrectWord(&clean) {
		t.Error("no correction expected on clean word")
	}
}
