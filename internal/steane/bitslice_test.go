package steane

import (
	"math/rand/v2"
	"testing"
)

// laneWord extracts lane l of the 7 plane masks as a scalar bit word.
func laneWord(w *[7]uint64, l int) [N]int {
	var bits [N]int
	for q := 0; q < N; q++ {
		bits[q] = int(w[q] >> uint(l) & 1)
	}
	return bits
}

func randomPlanes(rng *rand.Rand) [7]uint64 {
	var w [7]uint64
	for q := range w {
		w[q] = rng.Uint64()
	}
	return w
}

func TestSyndromeMasksMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for round := 0; round < 50; round++ {
		w := randomPlanes(rng)
		s0, s1, s2 := SyndromeMasks(&w)
		for l := 0; l < 64; l++ {
			want := Syndrome(laneWord(&w, l))
			got := int(s0>>uint(l)&1) | int(s1>>uint(l)&1)<<1 | int(s2>>uint(l)&1)<<2
			if got != want {
				t.Fatalf("lane %d: bit-sliced syndrome %d, scalar %d", l, got, want)
			}
		}
	}
}

func TestPositionMaskMatchesDecodePosition(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	for round := 0; round < 50; round++ {
		w := randomPlanes(rng)
		s0, s1, s2 := SyndromeMasks(&w)
		for l := 0; l < 64; l++ {
			want := DecodePosition(Syndrome(laneWord(&w, l)))
			got := -1
			for pos := 0; pos < N; pos++ {
				if PositionMask(s0, s1, s2, pos)>>uint(l)&1 == 1 {
					if got != -1 {
						t.Fatalf("lane %d decodes to two positions", l)
					}
					got = pos
				}
			}
			if got != want {
				t.Fatalf("lane %d: bit-sliced position %d, scalar %d", l, got, want)
			}
		}
	}
}

func TestDecodeBlockMasksMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	for round := 0; round < 50; round++ {
		w := randomPlanes(rng)
		fail := DecodeBlockMasks(&w)
		for l := 0; l < 64; l++ {
			want := DecodeBlock(laneWord(&w, l))
			if got := int(fail >> uint(l) & 1); got != want {
				t.Fatalf("lane %d: bit-sliced decode %d, scalar %d", l, got, want)
			}
		}
	}
}

func TestPositionMaskRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range position must panic")
		}
	}()
	PositionMask(0, 0, 0, 7)
}
