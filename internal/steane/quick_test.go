package steane

import (
	"testing"
	"testing/quick"
)

func wordFromMask(mask uint8) [N]int {
	var w [N]int
	for q := 0; q < N; q++ {
		w[q] = int(mask>>q) & 1
	}
	return w
}

// Property: the syndrome map is linear: s(a ⊕ b) = s(a) ⊕ s(b).
func TestQuickSyndromeLinear(t *testing.T) {
	f := func(a, b uint8) bool {
		wa, wb := wordFromMask(a), wordFromMask(b)
		var wab [N]int
		for q := 0; q < N; q++ {
			wab[q] = wa[q] ^ wb[q]
		}
		return Syndrome(wab) == Syndrome(wa)^Syndrome(wb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: multiplying by a stabilizer row changes neither the syndrome
// nor the decoded logical value (stabilizers are the code's gauge).
func TestQuickStabilizerGauge(t *testing.T) {
	f := func(mask uint8, rowRaw uint8) bool {
		w := wordFromMask(mask)
		row := int(rowRaw) % 3
		var gauged [N]int
		copy(gauged[:], w[:])
		for _, q := range Supports[row] {
			gauged[q] ^= 1
		}
		return Syndrome(gauged) == Syndrome(w) && DecodeBlock(gauged) == DecodeBlock(w)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: multiplying by the logical operator (all ones) flips the
// decoded value while preserving the syndrome.
func TestQuickLogicalFlip(t *testing.T) {
	f := func(mask uint8) bool {
		w := wordFromMask(mask)
		var flipped [N]int
		for q := 0; q < N; q++ {
			flipped[q] = w[q] ^ 1
		}
		return Syndrome(flipped) == Syndrome(w) && DecodeBlock(flipped) == 1-DecodeBlock(w)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: decoding is idempotent — correcting a corrected word changes
// nothing further.
func TestQuickDecodeIdempotent(t *testing.T) {
	f := func(mask uint8) bool {
		w := wordFromMask(mask)
		CorrectWord(&w)
		if Syndrome(w) != 0 {
			return false
		}
		again := w
		return !CorrectWord(&again) && again == w
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: level-1 recursive decoding agrees with direct block decoding.
func TestQuickRecursiveConsistent(t *testing.T) {
	f := func(mask uint8) bool {
		w := wordFromMask(mask)
		return DecodeRecursive(w[:], 1) == DecodeBlock(w)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Exhaustive complement of the properties: every one of the 128 error
// words decodes to the coset of its nearest codeword (distance-3 promise:
// weight-1 words never fail).
func TestAllWordsDistanceThreePromise(t *testing.T) {
	for mask := 0; mask < 128; mask++ {
		w := wordFromMask(uint8(mask))
		weight := 0
		for _, b := range w {
			weight += b
		}
		if weight <= 1 && DecodeBlock(w) != 0 {
			t.Errorf("weight-%d word %07b failed to decode", weight, mask)
		}
	}
}
