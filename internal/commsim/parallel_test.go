package commsim

import (
	"context"
	"reflect"
	"testing"
)

// TestParallelMatchesSerial: both RNG streams of a trial derive from the
// trial's global index (and each worker's reused scratch resets to that
// trial-indexed state), so the aggregate must be bit-identical at any
// worker-pool width — on both backends.
func TestParallelMatchesSerial(t *testing.T) {
	for _, backend := range []string{BackendScalar, BackendBatch} {
		base := ChainConfig{
			Links: 3, LinkEps: 0.07, PurifyRounds: 1, SwapEps: 0.01,
			Trials: 1200, Seed: 29, Backend: backend,
		}
		serial := base
		serial.Parallelism = 1
		want, err := RunChain(serial)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 5, 16} {
			cfg := base
			cfg.Parallelism = workers
			got, err := RunChain(cfg)
			if err != nil {
				t.Fatal(err)
			}
			// Configs differ only in Parallelism; the measurements must not.
			got.Config, want.Config = ChainConfig{}, ChainConfig{}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s parallelism %d: %+v != serial %+v", backend, workers, got, want)
			}
		}
	}
}

func TestRunChainCtxCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunChainCtx(ctx, ChainConfig{
		Links: 2, LinkEps: 0.05, Trials: 100000, Seed: 1,
	})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
