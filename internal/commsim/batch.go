package commsim

// Bit-sliced (batch) chain backend: 64 independent protocol instances
// per uint64 word on a Pauli error frame.
//
// The ideal repeater protocol is a Clifford circuit whose classically
// relevant quantities are all deterministic: the BBPSSW sacrificial
// parity Z⊗Z is a stabilizer of the ideal pre-measurement state (the
// two outcomes are random but always agree), entanglement swapping and
// teleportation apply Pauli corrections that rebuild |Φ+⟩ (resp.
// deliver the probe state) exactly in every outcome branch, and the
// final probe readout is 0 in the noise-free circuit. Everything a
// trial reports is therefore a function of the injected Pauli noise
// alone, so the whole protocol runs on a pauliframe.Batch: Clifford
// propagation is word-wide and branch-free, a measurement's outcome
// *flip* is its frame X-bit, and the classically controlled X/Z
// corrections fold the flip masks straight back into the frame.
//
// Per-lane control flow — purification's data-dependent retries — is
// expressed with execution masks: only unconverged lanes re-run a
// purification attempt, and each lane draws its noise from its own RNG
// stream so a lane's trajectory is independent of its neighbours'.
// Each lane's stream is seeded exactly as the scalar backend seeds the
// same global trial's noise RNG, and the protocol visits a lane's
// noise sites in exactly the scalar order, so the batch backend is
// bit-identical to the scalar one at the same seed: same per-trial
// error verdicts, same per-trial raw-pair counts (batch_test.go
// enforces both, per lane, at forced-fault sites and on full runs).

import (
	"context"
	"math/bits"
	"math/rand/v2"

	"qla/internal/pauliframe"
)

// Lane parity masks: trial t lives in lane t mod 64 of block t / 64,
// and blocks are 64 trials wide, so a lane's basis is its parity —
// even lanes probe |0⟩ (Z basis), odd lanes probe |+⟩ (X basis).
const (
	zBasisLanes = 0x5555555555555555
	xBasisLanes = 0xAAAAAAAAAAAAAAAA
)

// batchChain holds one worker's 64-lane state: the frame, the per-lane
// RNGs and the raw-pair counters are scratch that reset() rewinds per
// block instead of reallocating.
type batchChain struct {
	cfg     ChainConfig
	f       *pauliframe.Batch
	pcgs    [pauliframe.Lanes]*rand.PCG
	rngs    [pauliframe.Lanes]*rand.Rand
	raw     [pauliframe.Lanes]int
	scratch [][2]int
	// forceDisagree is a test seam: when non-nil, its result is XORed
	// into the parity-disagreement mask of every level-k purification
	// junction at the given attempt, forcing the returned lanes to
	// retry. Production runs leave it nil.
	forceDisagree func(k, attempt int) uint64
}

// newBatchChain allocates one worker's reusable block state.
func newBatchChain(cfg ChainConfig) *batchChain {
	r := &batchChain{
		cfg:     cfg,
		f:       pauliframe.NewBatch(cfg.width()),
		scratch: cfg.scratchPairs(),
	}
	for l := range r.pcgs {
		r.pcgs[l] = rand.NewPCG(0, 0)
		r.rngs[l] = rand.New(r.pcgs[l])
	}
	return r
}

// reset rewinds the scratch to the deterministic start state of the
// block holding trials [block*64, block*64+lanes): every lane's noise
// RNG reseeds exactly as the scalar backend seeds that global trial,
// so blocks are independent of execution order.
func (r *batchChain) reset(block, lanes int) {
	r.f.Clear()
	for l := 0; l < lanes; l++ {
		trial := uint64(block)*pauliframe.Lanes + uint64(l)
		r.pcgs[l].Seed(r.cfg.Seed^0x1e97, (trial+1)*0x9e3779b97f4a7c15)
		r.raw[l] = 0
	}
}

// depolarize draws each masked lane's own Bernoulli(eps) + Pauli-choice
// variables — one Float64 per lane, matching the scalar backend's
// stream draw for draw — and injects the hits into the frame.
func (r *batchChain) depolarize(q int, eps float64, mask uint64) {
	var xm, ym, zm uint64
	for m := mask; m != 0; m &= m - 1 {
		l := bits.TrailingZeros64(m)
		rng := r.rngs[l]
		if rng.Float64() < eps {
			switch rng.IntN(3) {
			case 0:
				xm |= 1 << uint(l)
			case 1:
				ym |= 1 << uint(l)
			default:
				zm |= 1 << uint(l)
			}
		}
	}
	r.f.InjectX(q, xm|ym)
	r.f.InjectZ(q, zm|ym)
}

// rawPair prepares |Φ+⟩ on (x, y) in the masked lanes and depolarizes
// the travelling half. The ideal H/CNOT preparation acts on a frame
// just cleared by the resets — the identity — so only the noise below
// leaves a trace.
func (r *batchChain) rawPair(x, y int, mask uint64) {
	r.f.Reset(x, mask)
	r.f.Reset(y, mask)
	r.depolarize(y, r.cfg.LinkEps, mask)
	for m := mask; m != 0; m &= m - 1 {
		r.raw[bits.TrailingZeros64(m)]++
	}
}

// purifiedPair builds a level-k purified pair on (x, y) for the masked
// lanes. Disagreeing sacrificial parities — frame X-bits differing
// between sx and sy, since the ideal outcomes always agree — keep a
// lane in the masked retry loop while converged lanes sit out.
func (r *batchChain) purifiedPair(x, y, k int, mask uint64) error {
	if k == 0 {
		r.rawPair(x, y, mask)
		return nil
	}
	sx, sy := r.scratch[k-1][0], r.scratch[k-1][1]
	need := mask
	for attempt := 0; attempt < maxPurifyAttempts && need != 0; attempt++ {
		if err := r.purifiedPair(x, y, k-1, need); err != nil {
			return err
		}
		if err := r.purifiedPair(sx, sy, k-1, need); err != nil {
			return err
		}
		r.f.CNOT(x, sx, need)
		r.f.CNOT(y, sy, need)
		disagree := r.f.MeasureZ(sx, need) ^ r.f.MeasureZ(sy, need)
		if r.forceDisagree != nil {
			disagree ^= r.forceDisagree(k, attempt) & need
		}
		need &= disagree
	}
	if need != 0 {
		return errPurifyDiverged()
	}
	return nil
}

// entanglementSwap mirrors teleport.EntanglementSwap on the frame: the
// Bell measurement's outcome flips are exactly the difference between
// the corrections the noisy run applies and the ideal ones, so they
// fold into the surviving half's frame as extra X/Z components.
func (r *batchChain) entanglementSwap(a2, b1, b2 int, mask uint64) {
	r.f.CNOT(a2, b1, mask)
	r.f.H(a2, mask)
	m0 := r.f.MeasureZ(a2, mask)
	m1 := r.f.MeasureZ(b1, mask)
	r.f.InjectX(b2, m1)
	r.f.InjectZ(b2, m0)
}

// run executes the full protocol once for every lane in active and
// returns the mask of lanes whose delivered probe read out wrong (the
// ideal readout is 0 in both bases).
func (r *batchChain) run(active uint64) (errMask uint64, err error) {
	cfg := r.cfg

	// Build one purified pair per link.
	for i := 0; i < cfg.Links; i++ {
		a, b := linkQubits(i)
		if err := r.purifiedPair(a, b, cfg.PurifyRounds, active); err != nil {
			return 0, err
		}
	}
	// Swap the chain down to a single end-to-end pair (a_0, far).
	a0, far := linkQubits(0)
	for i := 1; i < cfg.Links; i++ {
		ai, bi := linkQubits(i)
		r.entanglementSwap(far, ai, bi, active)
		r.depolarize(bi, cfg.SwapEps, active)
		far = bi
	}

	// Probe: teleport |0⟩ in even lanes, |+⟩ in odd ones. The basis
	// choice is invisible to the frame until the final readout (the
	// probe preparation acts on a freshly reset, error-free qubit).
	const data = 0
	r.f.Reset(data, active)
	r.f.CNOT(data, a0, active)
	r.f.H(data, active)
	m0 := r.f.MeasureZ(data, active)
	m1 := r.f.MeasureZ(a0, active)
	r.f.InjectX(far, m1)
	r.f.InjectZ(far, m0)
	r.f.H(far, xBasisLanes&active)
	return r.f.MeasureZ(far, active), nil
}

// runChainBlock simulates one 64-trial block on the worker's reusable
// scratch and folds its lane masks into integer statistics.
func runChainBlock(r *batchChain, block, lanes int) (chainStats, error) {
	r.reset(block, lanes)
	active := pauliframe.LaneMask(lanes)
	errMask, err := r.run(active)
	if err != nil {
		return chainStats{}, err
	}
	var st chainStats
	st.zErrors = bits.OnesCount64(errMask & zBasisLanes)
	st.xErrors = bits.OnesCount64(errMask & xBasisLanes)
	st.zTrials = (lanes + 1) / 2
	st.xTrials = lanes / 2
	for l := 0; l < lanes; l++ {
		st.rawPairs += r.raw[l]
	}
	return st, nil
}

// runChainBatched fans 64-trial blocks out over the worker pool; the
// final block runs short when Trials is not a multiple of 64. Blocks
// are seeded by their global index and integer-summed, so the result
// is bit-identical at any parallelism.
func runChainBatched(ctx context.Context, cfg ChainConfig) (chainStats, error) {
	blocks := (cfg.Trials + pauliframe.Lanes - 1) / pauliframe.Lanes
	return chainFanOut(ctx, cfg.Parallelism, blocks, func(scratch any, block int) (chainStats, error) {
		lanes := pauliframe.Lanes
		if rem := cfg.Trials - block*pauliframe.Lanes; rem < lanes {
			lanes = rem
		}
		return runChainBlock(scratch.(*batchChain), block, lanes)
	}, func() any { return newBatchChain(cfg) })
}
