// Package commsim executes the QLA repeater-chain communication
// protocol gate by gate on the stabilizer backend: raw EPR pairs are
// created and depolarized, purified by nested BBPSSW rounds with real
// post-selection, merged by entanglement swapping with per-swap noise,
// and finally used to teleport a data qubit whose delivered state is
// checked in both bases.
//
// The analytic interconnect model (internal/teleport) applies the
// Werner-state recurrences of Dür et al. to size the Figure-9 network;
// this package is the low-level validation the paper insists on
// ("low-level simulation is important to account for small factors that
// accumulate exponentially"): the same protocol, run as an actual noisy
// quantum circuit, must deliver error rates the recurrences predict.
// It also measures raw-pair consumption directly, exhibiting the
// exponential cost of purification rounds that motivates repeater
// islands over end-to-end purification.
package commsim

import (
	"context"
	"fmt"
	"math/rand/v2"
	"runtime"
	"sync"

	"qla/internal/stabilizer"
	"qla/internal/teleport"
)

// ChainConfig parameterizes one chain experiment.
type ChainConfig struct {
	// Links is the number of repeater links in the chain (1 = direct
	// neighbours, no swapping).
	Links int
	// LinkEps is the depolarization probability applied to each raw
	// pair's travelling half: raw link fidelity = 1 - LinkEps.
	LinkEps float64
	// PurifyRounds is the nested BBPSSW ladder depth per link; each
	// round doubles the raw-pair cost and post-selects on agreeing
	// parities.
	PurifyRounds int
	// SwapEps is the depolarization applied to the surviving half
	// after each entanglement swap (imperfect Bell measurement).
	SwapEps float64
	// Trials is the Monte Carlo sample count.
	Trials int
	// Seed feeds the deterministic RNG.
	Seed uint64
	// Parallelism bounds the worker-pool width (0 means GOMAXPROCS).
	// Every trial derives its RNG streams from its global trial index,
	// so the result is bit-identical at any parallelism for a fixed
	// Seed. As a pure execution detail it is excluded from the JSON
	// form (results at different widths must serialize identically).
	Parallelism int `json:"-"`
}

// Validate checks the configuration bounds.
func (c ChainConfig) Validate() error {
	switch {
	case c.Links <= 0:
		return fmt.Errorf("commsim: links must be positive, got %d", c.Links)
	case c.LinkEps < 0 || c.LinkEps >= 0.5:
		return fmt.Errorf("commsim: link eps %g outside [0, 0.5)", c.LinkEps)
	case c.PurifyRounds < 0 || c.PurifyRounds > 6:
		return fmt.Errorf("commsim: purify rounds %d outside [0,6]", c.PurifyRounds)
	case c.SwapEps < 0 || c.SwapEps >= 0.5:
		return fmt.Errorf("commsim: swap eps %g outside [0, 0.5)", c.SwapEps)
	case c.Trials <= 0:
		return fmt.Errorf("commsim: trials must be positive, got %d", c.Trials)
	}
	return nil
}

// ChainResult reports one chain experiment.
type ChainResult struct {
	Config ChainConfig
	// ZBasisErrors counts trials where a teleported |0⟩ read out 1
	// (sensitive to X and Y errors on the delivered pair).
	ZBasisErrors int
	// XBasisErrors counts trials where a teleported |+⟩ read out -,
	// (sensitive to Z and Y errors).
	XBasisErrors int
	// ZTrials and XTrials split Trials between the two probes.
	ZTrials, XTrials int
	// ErrorRate is the combined observed error fraction.
	ErrorRate float64
	// PredictedError is 1 - F from the Werner recurrences of the
	// analytic model, an upper envelope for either basis (a Werner
	// pair of fidelity F errs in one fixed basis with probability
	// 2(1-F)/3).
	PredictedError float64
	// RawPairsMean is the measured average number of raw EPR pairs
	// consumed per delivered connection (purification retries
	// included) — the resource the paper's repeater design bounds.
	RawPairsMean float64
}

// chainRun holds per-trial state.
type chainRun struct {
	cfg      ChainConfig
	rng      *rand.Rand
	s        *stabilizer.State
	rawPairs int
	// scratch[k] is the qubit pair reserved for purification level k.
	scratch [][2]int
}

// qubit indices: 0 is the data qubit; link i owns (1+2i, 2+2i);
// purification level k owns the pair after the links.
func (r *chainRun) linkQubits(i int) (int, int) { return 1 + 2*i, 2 + 2*i }

func (r *chainRun) depolarize(q int, eps float64) {
	if r.rng.Float64() < eps {
		switch r.rng.IntN(3) {
		case 0:
			r.s.X(q)
		case 1:
			r.s.Y(q)
		default:
			r.s.Z(q)
		}
	}
}

// rawPair prepares |Φ+⟩ on (x, y) and depolarizes the travelling half.
func (r *chainRun) rawPair(x, y int) {
	r.s.Reset(x)
	r.s.Reset(y)
	r.s.H(x)
	r.s.CNOT(x, y)
	r.depolarize(y, r.cfg.LinkEps)
	r.rawPairs++
}

const maxPurifyAttempts = 4096

// purifiedPair recursively builds a level-k purified pair on (x, y):
// two level-(k-1) pairs are combined by bilateral CNOT and the
// sacrificial pair is measured; disagreement discards everything and
// retries, exactly as the physical protocol would.
func (r *chainRun) purifiedPair(x, y, k int) error {
	if k == 0 {
		r.rawPair(x, y)
		return nil
	}
	sx, sy := r.scratch[k-1][0], r.scratch[k-1][1]
	for attempt := 0; attempt < maxPurifyAttempts; attempt++ {
		if err := r.purifiedPair(x, y, k-1); err != nil {
			return err
		}
		if err := r.purifiedPair(sx, sy, k-1); err != nil {
			return err
		}
		r.s.CNOT(x, sx)
		r.s.CNOT(y, sy)
		if r.s.Measure(sx) == r.s.Measure(sy) {
			return nil
		}
	}
	return fmt.Errorf("commsim: purification did not converge in %d attempts", maxPurifyAttempts)
}

// RunChain executes the full protocol cfg.Trials times and aggregates
// delivered-state error rates and raw-pair consumption.
func RunChain(cfg ChainConfig) (ChainResult, error) {
	return RunChainCtx(context.Background(), cfg)
}

// RunChainCtx is RunChain with cooperative cancellation: trials fan out
// over a worker pool of cfg.Parallelism goroutines (GOMAXPROCS when
// zero), each trial seeded from its global index so the aggregate is
// bit-identical to a serial run at the same seed. Workers poll ctx
// between trials and the call returns ctx.Err() on cancellation.
func RunChainCtx(ctx context.Context, cfg ChainConfig) (ChainResult, error) {
	if err := cfg.Validate(); err != nil {
		return ChainResult{}, err
	}

	workers := cfg.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > cfg.Trials {
		workers = cfg.Trials
	}
	type shardResult struct {
		zErrors, xErrors int
		zTrials, xTrials int
		rawPairs         int
		err              error
	}
	shards := make([]shardResult, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lo := cfg.Trials * w / workers
			hi := cfg.Trials * (w + 1) / workers
			r := &shards[w]
			for trial := lo; trial < hi; trial++ {
				if ctx.Err() != nil {
					return
				}
				xBasis := trial%2 == 1
				bad, raw, err := runChainTrial(cfg, trial, xBasis)
				if err != nil {
					r.err = err
					return
				}
				r.rawPairs += raw
				if xBasis {
					r.xTrials++
					if bad {
						r.xErrors++
					}
				} else {
					r.zTrials++
					if bad {
						r.zErrors++
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return ChainResult{}, err
	}

	res := ChainResult{Config: cfg}
	totalRaw := 0
	for _, r := range shards {
		if r.err != nil {
			return ChainResult{}, r.err
		}
		res.ZBasisErrors += r.zErrors
		res.XBasisErrors += r.xErrors
		res.ZTrials += r.zTrials
		res.XTrials += r.xTrials
		totalRaw += r.rawPairs
	}
	res.ErrorRate = float64(res.ZBasisErrors+res.XBasisErrors) / float64(cfg.Trials)
	res.RawPairsMean = float64(totalRaw) / float64(cfg.Trials)
	res.PredictedError = 1 - cfg.predictFidelity()
	return res, nil
}

// runChainTrial executes one end-to-end protocol instance. Both RNG
// streams (noise injection and measurement outcomes) are derived from
// the trial index alone, so trials are independent of execution order.
func runChainTrial(cfg ChainConfig, trial int, xBasis bool) (errored bool, rawPairs int, err error) {
	width := 1 + 2*cfg.Links + 2*cfg.PurifyRounds
	run := &chainRun{
		cfg: cfg,
		rng: rand.New(rand.NewPCG(cfg.Seed^0x1e97, (uint64(trial)+1)*0x9e3779b97f4a7c15)),
		s:   stabilizer.NewWithRand(width, rand.New(rand.NewPCG(uint64(trial), cfg.Seed))),
	}
	for k := 0; k < cfg.PurifyRounds; k++ {
		base := 1 + 2*cfg.Links + 2*k
		run.scratch = append(run.scratch, [2]int{base, base + 1})
	}

	// Build one purified pair per link.
	for i := 0; i < cfg.Links; i++ {
		a, b := run.linkQubits(i)
		if err := run.purifiedPair(a, b, cfg.PurifyRounds); err != nil {
			return false, 0, err
		}
	}
	// Swap the chain down to a single end-to-end pair (a_0, far).
	a0, far := run.linkQubits(0)
	for i := 1; i < cfg.Links; i++ {
		ai, bi := run.linkQubits(i)
		teleport.EntanglementSwap(run.s, far, ai, bi)
		run.depolarize(bi, cfg.SwapEps)
		far = bi
	}

	// Probe: teleport |0⟩ on even trials, |+⟩ on odd ones.
	data := 0
	run.s.Reset(data)
	if xBasis {
		run.s.H(data)
	}
	run.s.CNOT(data, a0)
	run.s.H(data)
	m0 := run.s.Measure(data)
	m1 := run.s.Measure(a0)
	if m1 == 1 {
		run.s.X(far)
	}
	if m0 == 1 {
		run.s.Z(far)
	}
	if xBasis {
		run.s.H(far)
	}
	return run.s.Measure(far) != 0, run.rawPairs, nil
}

// predictFidelity chains the analytic Werner recurrences: the raw link
// fidelity is lifted by PurifyRounds BBPSSW steps, then folded across
// the chain with one SwapStep plus swap depolarization per merge.
func (c ChainConfig) predictFidelity() float64 {
	f := 1 - c.LinkEps
	for k := 0; k < c.PurifyRounds; k++ {
		f, _ = teleport.PurifyStep(f)
	}
	chain := f
	for i := 1; i < c.Links; i++ {
		chain = teleport.SwapStep(chain, f)
		chain = teleport.Depolarize(chain, c.SwapEps)
	}
	return chain
}

// ResourceCurve measures raw-pair consumption against purification
// depth at fixed link noise — the doubling-per-round cost that makes
// end-to-end purification over long, lossy channels untenable and
// repeater islands necessary (the paper's "exponential resource
// overhead" argument).
func ResourceCurve(linkEps float64, maxRounds, trials int, seed uint64) ([]ChainResult, error) {
	out := make([]ChainResult, 0, maxRounds+1)
	for k := 0; k <= maxRounds; k++ {
		r, err := RunChain(ChainConfig{
			Links: 1, LinkEps: linkEps, PurifyRounds: k,
			Trials: trials, Seed: seed + uint64(k),
		})
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// NaiveVsRepeater contrasts the two long-distance strategies at equal
// total channel noise: the naive approach stretches one pair across the
// whole distance (link noise grows with distance, purification from a
// poor starting fidelity); the repeater approach splits the distance
// into links of modest noise and swaps. Both run on the full backend.
type NaiveVsRepeater struct {
	Naive, Repeater ChainResult
}

// CompareStrategies runs both strategies over a channel whose per-link
// depolarization is perLinkEps and which the repeater splits into
// links equal segments. The naive strategy sees the accumulated noise
// 1-(1-perLinkEps)^links on its single stretched pair.
func CompareStrategies(perLinkEps float64, links, purifyRounds, trials int, seed uint64) (NaiveVsRepeater, error) {
	return CompareStrategiesCtx(context.Background(), perLinkEps, links, purifyRounds, trials, seed, 0)
}

// CompareStrategiesCtx is CompareStrategies with cooperative
// cancellation and an explicit worker-pool width (parallelism 0 means
// GOMAXPROCS).
func CompareStrategiesCtx(ctx context.Context, perLinkEps float64, links, purifyRounds, trials int, seed uint64, parallelism int) (NaiveVsRepeater, error) {
	accum := 1.0
	for i := 0; i < links; i++ {
		accum *= 1 - perLinkEps
	}
	naiveEps := 1 - accum
	if naiveEps >= 0.5 {
		naiveEps = 0.499999 // the pair is fully depolarized; clamp for the run
	}
	naive, err := RunChainCtx(ctx, ChainConfig{
		Links: 1, LinkEps: naiveEps, PurifyRounds: purifyRounds,
		Trials: trials, Seed: seed, Parallelism: parallelism,
	})
	if err != nil {
		return NaiveVsRepeater{}, err
	}
	rep, err := RunChainCtx(ctx, ChainConfig{
		Links: links, LinkEps: perLinkEps, PurifyRounds: purifyRounds,
		Trials: trials, Seed: seed + 1, Parallelism: parallelism,
	})
	if err != nil {
		return NaiveVsRepeater{}, err
	}
	return NaiveVsRepeater{Naive: naive, Repeater: rep}, nil
}
