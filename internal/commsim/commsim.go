// Package commsim executes the QLA repeater-chain communication
// protocol gate by gate: raw EPR pairs are created and depolarized,
// purified by nested BBPSSW rounds with real post-selection, merged by
// entanglement swapping with per-swap noise, and finally used to
// teleport a data qubit whose delivered state is checked in both bases.
//
// The analytic interconnect model (internal/teleport) applies the
// Werner-state recurrences of Dür et al. to size the Figure-9 network;
// this package is the low-level validation the paper insists on
// ("low-level simulation is important to account for small factors that
// accumulate exponentially"): the same protocol, run as an actual noisy
// quantum circuit, must deliver error rates the recurrences predict.
// It also measures raw-pair consumption directly, exhibiting the
// exponential cost of purification rounds that motivates repeater
// islands over end-to-end purification.
//
// Two Monte Carlo backends execute the protocol (see batch.go): the
// bit-sliced default runs 64 trials per uint64 word on a Pauli-frame
// chain model, and the scalar stabilizer-tableau path remains as the
// reference oracle. Because every lane of the batch backend replays
// exactly the scalar backend's per-trial noise RNG stream, the two are
// bit-identical at the same seed — not merely statistically compatible.
package commsim

import (
	"context"
	"fmt"
	"math/rand/v2"
	"runtime"
	"sync"

	"qla/internal/stabilizer"
	"qla/internal/teleport"
)

// Monte Carlo backends.
const (
	// BackendBatch is the bit-sliced Pauli-frame engine: 64 independent
	// trials per uint64 word, the default (an empty Backend selects it).
	BackendBatch = "batch"
	// BackendScalar is the one-trial-at-a-time stabilizer-tableau
	// reference engine.
	BackendScalar = "scalar"
)

// ChainConfig parameterizes one chain experiment.
type ChainConfig struct {
	// Links is the number of repeater links in the chain (1 = direct
	// neighbours, no swapping).
	Links int
	// LinkEps is the depolarization probability applied to each raw
	// pair's travelling half: raw link fidelity = 1 - LinkEps.
	LinkEps float64
	// PurifyRounds is the nested BBPSSW ladder depth per link; each
	// round doubles the raw-pair cost and post-selects on agreeing
	// parities.
	PurifyRounds int
	// SwapEps is the depolarization applied to the surviving half
	// after each entanglement swap (imperfect Bell measurement).
	SwapEps float64
	// Trials is the Monte Carlo sample count.
	Trials int
	// Seed feeds the deterministic RNG.
	Seed uint64
	// Backend selects the Monte Carlo engine: BackendBatch (the
	// default, 64 bit-sliced trials per word) or BackendScalar (the
	// stabilizer-tableau reference oracle). Every batch lane replays
	// the scalar backend's per-trial noise stream, so both backends
	// produce bit-identical measurements at the same Seed.
	Backend string `json:"Backend,omitempty"`
	// Parallelism bounds the worker-pool width (0 means GOMAXPROCS).
	// Every trial derives its RNG streams from its global trial index,
	// so the result is bit-identical at any parallelism for a fixed
	// Seed. As a pure execution detail it is excluded from the JSON
	// form (results at different widths must serialize identically).
	Parallelism int `json:"-"`
}

// Validate checks the configuration bounds.
func (c ChainConfig) Validate() error {
	switch {
	case c.Links <= 0:
		return fmt.Errorf("commsim: links must be positive, got %d", c.Links)
	case c.LinkEps < 0 || c.LinkEps >= 0.5:
		return fmt.Errorf("commsim: link eps %g outside [0, 0.5)", c.LinkEps)
	case c.PurifyRounds < 0 || c.PurifyRounds > 6:
		return fmt.Errorf("commsim: purify rounds %d outside [0,6]", c.PurifyRounds)
	case c.SwapEps < 0 || c.SwapEps >= 0.5:
		return fmt.Errorf("commsim: swap eps %g outside [0, 0.5)", c.SwapEps)
	case c.Trials <= 0:
		return fmt.Errorf("commsim: trials must be positive, got %d", c.Trials)
	}
	switch c.Backend {
	case "", BackendBatch, BackendScalar:
	default:
		return fmt.Errorf("commsim: unknown backend %q (want %q or %q)",
			c.Backend, BackendBatch, BackendScalar)
	}
	return nil
}

// width is the qubit count of one protocol instance: the data qubit,
// one pair per link, and one sacrificial pair per purification level.
func (c ChainConfig) width() int { return 1 + 2*c.Links + 2*c.PurifyRounds }

// scratchPairs lays out the sacrificial purification pairs after the
// link qubits; scratch[k] serves purification level k+1.
func (c ChainConfig) scratchPairs() [][2]int {
	out := make([][2]int, 0, c.PurifyRounds)
	for k := 0; k < c.PurifyRounds; k++ {
		base := 1 + 2*c.Links + 2*k
		out = append(out, [2]int{base, base + 1})
	}
	return out
}

// ChainResult reports one chain experiment.
type ChainResult struct {
	Config ChainConfig
	// ZBasisErrors counts trials where a teleported |0⟩ read out 1
	// (sensitive to X and Y errors on the delivered pair).
	ZBasisErrors int
	// XBasisErrors counts trials where a teleported |+⟩ read out -,
	// (sensitive to Z and Y errors).
	XBasisErrors int
	// ZTrials and XTrials split Trials between the two probes.
	ZTrials, XTrials int
	// ErrorRate is the combined observed error fraction.
	ErrorRate float64
	// PredictedError is 1 - F from the Werner recurrences of the
	// analytic model, an upper envelope for either basis (a Werner
	// pair of fidelity F errs in one fixed basis with probability
	// 2(1-F)/3).
	PredictedError float64
	// RawPairsMean is the measured average number of raw EPR pairs
	// consumed per delivered connection (purification retries
	// included) — the resource the paper's repeater design bounds.
	RawPairsMean float64
}

// chainStats is the integer-summable aggregate one worker shard (or
// one 64-trial block) contributes.
type chainStats struct {
	zErrors, xErrors int
	zTrials, xTrials int
	rawPairs         int
}

func (a *chainStats) add(b chainStats) {
	a.zErrors += b.zErrors
	a.xErrors += b.xErrors
	a.zTrials += b.zTrials
	a.xTrials += b.xTrials
	a.rawPairs += b.rawPairs
}

// chainRun holds the scalar backend's per-worker state: the stabilizer
// tableau, both RNG streams and the raw-pair counter are scratch that
// reset() rewinds per trial instead of reallocating (the scalar hot
// path used to pay a fresh tableau per trial).
type chainRun struct {
	cfg      ChainConfig
	noisePCG *rand.PCG
	rng      *rand.Rand
	outPCG   *rand.PCG
	s        *stabilizer.State
	rawPairs int
	// scratch[k] is the qubit pair reserved for purification level k.
	scratch [][2]int
}

// newChainRun allocates one worker's reusable trial state.
func newChainRun(cfg ChainConfig) *chainRun {
	r := &chainRun{
		cfg:      cfg,
		noisePCG: rand.NewPCG(0, 0),
		outPCG:   rand.NewPCG(0, 0),
		scratch:  cfg.scratchPairs(),
	}
	r.rng = rand.New(r.noisePCG)
	r.s = stabilizer.NewWithRand(cfg.width(), rand.New(r.outPCG))
	return r
}

// reset rewinds the run to the deterministic start state of one trial:
// both RNG streams (noise injection and measurement outcomes) reseed
// from the trial's global index alone — so trials are independent of
// execution order — and the tableau returns to |0…0⟩ in place.
func (r *chainRun) reset(trial int) {
	r.noisePCG.Seed(r.cfg.Seed^0x1e97, (uint64(trial)+1)*0x9e3779b97f4a7c15)
	r.outPCG.Seed(uint64(trial), r.cfg.Seed)
	r.s.ResetAllZero()
	r.rawPairs = 0
}

// qubit indices: 0 is the data qubit; link i owns (1+2i, 2+2i);
// purification level k owns the pair after the links.
func linkQubits(i int) (int, int) { return 1 + 2*i, 2 + 2*i }

func (r *chainRun) depolarize(q int, eps float64) {
	if r.rng.Float64() < eps {
		switch r.rng.IntN(3) {
		case 0:
			r.s.X(q)
		case 1:
			r.s.Y(q)
		default:
			r.s.Z(q)
		}
	}
}

// rawPair prepares |Φ+⟩ on (x, y) and depolarizes the travelling half.
func (r *chainRun) rawPair(x, y int) {
	r.s.Reset(x)
	r.s.Reset(y)
	r.s.H(x)
	r.s.CNOT(x, y)
	r.depolarize(y, r.cfg.LinkEps)
	r.rawPairs++
}

const maxPurifyAttempts = 4096

func errPurifyDiverged() error {
	return fmt.Errorf("commsim: purification did not converge in %d attempts", maxPurifyAttempts)
}

// purifiedPair recursively builds a level-k purified pair on (x, y):
// two level-(k-1) pairs are combined by bilateral CNOT and the
// sacrificial pair is measured; disagreement discards everything and
// retries, exactly as the physical protocol would.
func (r *chainRun) purifiedPair(x, y, k int) error {
	if k == 0 {
		r.rawPair(x, y)
		return nil
	}
	sx, sy := r.scratch[k-1][0], r.scratch[k-1][1]
	for attempt := 0; attempt < maxPurifyAttempts; attempt++ {
		if err := r.purifiedPair(x, y, k-1); err != nil {
			return err
		}
		if err := r.purifiedPair(sx, sy, k-1); err != nil {
			return err
		}
		r.s.CNOT(x, sx)
		r.s.CNOT(y, sy)
		if r.s.Measure(sx) == r.s.Measure(sy) {
			return nil
		}
	}
	return errPurifyDiverged()
}

// RunChain executes the full protocol cfg.Trials times and aggregates
// delivered-state error rates and raw-pair consumption.
func RunChain(cfg ChainConfig) (ChainResult, error) {
	return RunChainCtx(context.Background(), cfg)
}

// RunChainCtx is RunChain with cooperative cancellation: trials (or
// 64-trial blocks, on the batch backend) fan out over a worker pool of
// cfg.Parallelism goroutines (GOMAXPROCS when zero), each unit seeded
// from its global index so the aggregate is bit-identical to a serial
// run at the same seed. Workers poll ctx between units and the call
// returns ctx.Err() on cancellation.
func RunChainCtx(ctx context.Context, cfg ChainConfig) (ChainResult, error) {
	if err := cfg.Validate(); err != nil {
		return ChainResult{}, err
	}

	var total chainStats
	var err error
	switch cfg.Backend {
	case "", BackendBatch:
		total, err = runChainBatched(ctx, cfg)
	case BackendScalar:
		total, err = runChainScalar(ctx, cfg)
	}
	if err != nil {
		return ChainResult{}, err
	}

	res := ChainResult{
		Config:       cfg,
		ZBasisErrors: total.zErrors,
		XBasisErrors: total.xErrors,
		ZTrials:      total.zTrials,
		XTrials:      total.xTrials,
	}
	res.ErrorRate = float64(res.ZBasisErrors+res.XBasisErrors) / float64(cfg.Trials)
	res.RawPairsMean = float64(total.rawPairs) / float64(cfg.Trials)
	res.PredictedError = 1 - cfg.predictFidelity()
	return res, nil
}

// runChainScalar fans trials out one at a time over the worker pool,
// each worker reusing one chainRun's tableau and RNG scratch across
// all of its trials.
func runChainScalar(ctx context.Context, cfg ChainConfig) (chainStats, error) {
	return chainFanOut(ctx, cfg.Parallelism, cfg.Trials, func(run any, trial int) (chainStats, error) {
		r := run.(*chainRun)
		var st chainStats
		xBasis := trial%2 == 1
		bad, raw, err := r.runTrial(trial, xBasis)
		if err != nil {
			return st, err
		}
		st.rawPairs = raw
		if xBasis {
			st.xTrials = 1
			if bad {
				st.xErrors = 1
			}
		} else {
			st.zTrials = 1
			if bad {
				st.zErrors = 1
			}
		}
		return st, nil
	}, func() any { return newChainRun(cfg) })
}

// chainFanOut shards unit indices [0,units) over a worker pool. Each
// worker owns one scratch value (built by newScratch) for its whole
// life; each unit is seeded from its global index by the runner and the
// integer statistics are summed, so the total is bit-identical at any
// worker count.
func chainFanOut(ctx context.Context, parallelism, units int, run func(scratch any, unit int) (chainStats, error), newScratch func() any) (chainStats, error) {
	workers := parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > units {
		workers = units
	}
	type shard struct {
		st  chainStats
		err error
	}
	shards := make([]shard, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			scratch := newScratch()
			lo := units * w / workers
			hi := units * (w + 1) / workers
			s := &shards[w]
			for u := lo; u < hi; u++ {
				if ctx.Err() != nil {
					return
				}
				st, err := run(scratch, u)
				if err != nil {
					s.err = err
					return
				}
				s.st.add(st)
			}
		}(w)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return chainStats{}, err
	}
	var total chainStats
	for _, s := range shards {
		if s.err != nil {
			return chainStats{}, s.err
		}
		total.add(s.st)
	}
	return total, nil
}

// runTrial executes one end-to-end protocol instance on the reusable
// scalar scratch.
func (r *chainRun) runTrial(trial int, xBasis bool) (errored bool, rawPairs int, err error) {
	cfg := r.cfg
	r.reset(trial)

	// Build one purified pair per link.
	for i := 0; i < cfg.Links; i++ {
		a, b := linkQubits(i)
		if err := r.purifiedPair(a, b, cfg.PurifyRounds); err != nil {
			return false, 0, err
		}
	}
	// Swap the chain down to a single end-to-end pair (a_0, far).
	a0, far := linkQubits(0)
	for i := 1; i < cfg.Links; i++ {
		ai, bi := linkQubits(i)
		teleport.EntanglementSwap(r.s, far, ai, bi)
		r.depolarize(bi, cfg.SwapEps)
		far = bi
	}

	// Probe: teleport |0⟩ on even trials, |+⟩ on odd ones.
	data := 0
	r.s.Reset(data)
	if xBasis {
		r.s.H(data)
	}
	r.s.CNOT(data, a0)
	r.s.H(data)
	m0 := r.s.Measure(data)
	m1 := r.s.Measure(a0)
	if m1 == 1 {
		r.s.X(far)
	}
	if m0 == 1 {
		r.s.Z(far)
	}
	if xBasis {
		r.s.H(far)
	}
	return r.s.Measure(far) != 0, r.rawPairs, nil
}

// predictFidelity chains the analytic Werner recurrences: the raw link
// fidelity is lifted by PurifyRounds BBPSSW steps, then folded across
// the chain with one SwapStep plus swap depolarization per merge.
func (c ChainConfig) predictFidelity() float64 {
	f := 1 - c.LinkEps
	for k := 0; k < c.PurifyRounds; k++ {
		f, _ = teleport.PurifyStep(f)
	}
	chain := f
	for i := 1; i < c.Links; i++ {
		chain = teleport.SwapStep(chain, f)
		chain = teleport.Depolarize(chain, c.SwapEps)
	}
	return chain
}

// ResourceCurve measures raw-pair consumption against purification
// depth at fixed link noise — the doubling-per-round cost that makes
// end-to-end purification over long, lossy channels untenable and
// repeater islands necessary (the paper's "exponential resource
// overhead" argument).
func ResourceCurve(linkEps float64, maxRounds, trials int, seed uint64) ([]ChainResult, error) {
	out := make([]ChainResult, 0, maxRounds+1)
	for k := 0; k <= maxRounds; k++ {
		r, err := RunChain(ChainConfig{
			Links: 1, LinkEps: linkEps, PurifyRounds: k,
			Trials: trials, Seed: seed + uint64(k),
		})
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// NaiveVsRepeater contrasts the two long-distance strategies at equal
// total channel noise: the naive approach stretches one pair across the
// whole distance (link noise grows with distance, purification from a
// poor starting fidelity); the repeater approach splits the distance
// into links of modest noise and swaps. Both run on the full backend.
type NaiveVsRepeater struct {
	Naive, Repeater ChainResult
}

// CompareStrategies runs both strategies over a channel whose per-link
// depolarization is perLinkEps and which the repeater splits into
// links equal segments. The naive strategy sees the accumulated noise
// 1-(1-perLinkEps)^links on its single stretched pair.
func CompareStrategies(perLinkEps float64, links, purifyRounds, trials int, seed uint64) (NaiveVsRepeater, error) {
	return CompareStrategiesCtx(context.Background(), perLinkEps, links, purifyRounds, trials, seed, 0, "")
}

// CompareStrategiesCtx is CompareStrategies with cooperative
// cancellation, an explicit worker-pool width (parallelism 0 means
// GOMAXPROCS) and a backend selection (empty means BackendBatch).
func CompareStrategiesCtx(ctx context.Context, perLinkEps float64, links, purifyRounds, trials int, seed uint64, parallelism int, backend string) (NaiveVsRepeater, error) {
	accum := 1.0
	for i := 0; i < links; i++ {
		accum *= 1 - perLinkEps
	}
	naiveEps := 1 - accum
	if naiveEps >= 0.5 {
		naiveEps = 0.499999 // the pair is fully depolarized; clamp for the run
	}
	naive, err := RunChainCtx(ctx, ChainConfig{
		Links: 1, LinkEps: naiveEps, PurifyRounds: purifyRounds,
		Trials: trials, Seed: seed, Parallelism: parallelism, Backend: backend,
	})
	if err != nil {
		return NaiveVsRepeater{}, err
	}
	rep, err := RunChainCtx(ctx, ChainConfig{
		Links: links, LinkEps: perLinkEps, PurifyRounds: purifyRounds,
		Trials: trials, Seed: seed + 1, Parallelism: parallelism, Backend: backend,
	})
	if err != nil {
		return NaiveVsRepeater{}, err
	}
	return NaiveVsRepeater{Naive: naive, Repeater: rep}, nil
}
