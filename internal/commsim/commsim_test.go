package commsim

import (
	"math"
	"testing"
)

func TestValidate(t *testing.T) {
	good := ChainConfig{Links: 2, LinkEps: 0.05, PurifyRounds: 1, Trials: 10}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []ChainConfig{
		{Links: 0, Trials: 10},
		{Links: 1, LinkEps: 0.6, Trials: 10},
		{Links: 1, LinkEps: -0.1, Trials: 10},
		{Links: 1, PurifyRounds: -1, Trials: 10},
		{Links: 1, PurifyRounds: 9, Trials: 10},
		{Links: 1, SwapEps: 0.7, Trials: 10},
		{Links: 1, Trials: 0},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: bad config accepted: %+v", i, cfg)
		}
	}
}

func TestNoiselessChainIsPerfect(t *testing.T) {
	res, err := RunChain(ChainConfig{Links: 4, Trials: 200, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.ErrorRate != 0 {
		t.Fatalf("noiseless chain error rate %g", res.ErrorRate)
	}
	if res.PredictedError > 1e-12 {
		t.Fatalf("prediction should be 0, got %g", res.PredictedError)
	}
	if res.RawPairsMean != 4 {
		t.Fatalf("raw pairs %g, want exactly 4 (one per link)", res.RawPairsMean)
	}
}

func TestFullyTrackedBases(t *testing.T) {
	res, err := RunChain(ChainConfig{Links: 2, LinkEps: 0.1, Trials: 101, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.ZTrials+res.XTrials != 101 {
		t.Fatalf("trials split %d+%d != 101", res.ZTrials, res.XTrials)
	}
	if res.ZTrials != 51 || res.XTrials != 50 {
		t.Fatalf("basis split %d/%d", res.ZTrials, res.XTrials)
	}
}

// TestErrorRateTracksPrediction: the measured error rate must sit in a
// band around the Werner-model prediction. A Werner pair of fidelity F
// errs in one fixed basis with probability 2(1-F)/3, so the combined
// two-basis observable is ~2/3 of the envelope 1-F.
func TestErrorRateTracksPrediction(t *testing.T) {
	res, err := RunChain(ChainConfig{
		Links: 3, LinkEps: 0.06, SwapEps: 0.01, Trials: 4000, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.PredictedError <= 0 {
		t.Fatal("expected non-zero prediction")
	}
	lo, hi := 0.3*res.PredictedError, 1.1*res.PredictedError
	if res.ErrorRate < lo || res.ErrorRate > hi {
		t.Fatalf("error rate %.4f outside [%.4f, %.4f] around prediction %.4f",
			res.ErrorRate, lo, hi, res.PredictedError)
	}
}

// TestPurificationImprovesDeliveredState: at fixed link noise, one
// BBPSSW round must reduce the measured error rate.
func TestPurificationImprovesDeliveredState(t *testing.T) {
	raw, err := RunChain(ChainConfig{Links: 2, LinkEps: 0.12, Trials: 3000, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	pur, err := RunChain(ChainConfig{Links: 2, LinkEps: 0.12, PurifyRounds: 1, Trials: 3000, Seed: 22})
	if err != nil {
		t.Fatal(err)
	}
	if pur.ErrorRate >= raw.ErrorRate {
		t.Fatalf("purified %.4f not better than raw %.4f", pur.ErrorRate, raw.ErrorRate)
	}
}

// TestResourceCurveDoubles: raw-pair cost must at least double per
// purification round (2 pairs per round before retry losses).
func TestResourceCurveDoubles(t *testing.T) {
	curve, err := ResourceCurve(0.08, 3, 600, 31)
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) != 4 {
		t.Fatalf("curve length %d", len(curve))
	}
	for k := 0; k < len(curve); k++ {
		// Structural floor: a level-k pair consumes at least 2^k raws
		// even with zero retries; with noise, strictly more for k >= 1.
		floor := float64(int(1) << uint(k))
		if curve[k].RawPairsMean < floor {
			t.Fatalf("round %d: %.2f pairs below structural floor %g",
				k, curve[k].RawPairsMean, floor)
		}
		if k >= 1 && curve[k].RawPairsMean <= floor {
			t.Fatalf("round %d: %.2f pairs; retries should exceed the floor %g",
				k, curve[k].RawPairsMean, floor)
		}
	}
	// Exponential growth overall: two extra rounds multiply the cost by
	// nearly 4 (exactly 4 at perfect acceptance; retries add more at
	// low rounds, so the measured ratio sits just below 4).
	if ratio := curve[3].RawPairsMean / curve[1].RawPairsMean; ratio < 3.5 {
		t.Fatalf("rounds 1->3 cost ratio %.2f, want >= 3.5 (exponential growth)", ratio)
	}
}

// TestRepeaterBeatsNaive is the paper's contribution-2 claim executed
// on the quantum backend: over a channel long enough that a stretched
// pair is badly degraded, splitting into repeater links delivers a
// lower error rate with the same purification depth.
func TestRepeaterBeatsNaive(t *testing.T) {
	cmp, err := CompareStrategies(0.05, 8, 1, 3000, 41)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Repeater.ErrorRate >= cmp.Naive.ErrorRate {
		t.Fatalf("repeater %.4f not better than naive %.4f",
			cmp.Repeater.ErrorRate, cmp.Naive.ErrorRate)
	}
	// The naive pair's accumulated noise should be near the depolarized
	// ceiling; the repeater chain must stay usable (< 25% combined).
	if cmp.Repeater.ErrorRate > 0.25 {
		t.Fatalf("repeater chain unusable: %.4f", cmp.Repeater.ErrorRate)
	}
}

// TestSwapNoiseAccumulates: adding swap noise must not decrease the
// prediction, and the measured rate should grow with chain length.
func TestSwapNoiseAccumulates(t *testing.T) {
	short, err := RunChain(ChainConfig{Links: 2, LinkEps: 0.04, SwapEps: 0.02, Trials: 3000, Seed: 51})
	if err != nil {
		t.Fatal(err)
	}
	long, err := RunChain(ChainConfig{Links: 6, LinkEps: 0.04, SwapEps: 0.02, Trials: 3000, Seed: 52})
	if err != nil {
		t.Fatal(err)
	}
	if long.PredictedError <= short.PredictedError {
		t.Fatal("prediction should grow with chain length")
	}
	if long.ErrorRate <= short.ErrorRate {
		t.Fatalf("measured error should grow with chain length: %.4f vs %.4f",
			long.ErrorRate, short.ErrorRate)
	}
}

// TestDeterministicSeeding: identical configs give identical results.
func TestDeterministicSeeding(t *testing.T) {
	cfg := ChainConfig{Links: 3, LinkEps: 0.07, PurifyRounds: 1, Trials: 500, Seed: 61}
	a, err := RunChain(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunChain(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.ErrorRate != b.ErrorRate || a.RawPairsMean != b.RawPairsMean {
		t.Fatalf("non-deterministic: %+v vs %+v", a, b)
	}
}

// TestPredictFidelityMonotone: prediction degrades smoothly with link
// noise.
func TestPredictFidelityMonotone(t *testing.T) {
	prev := math.Inf(-1)
	for _, eps := range []float64{0.0, 0.02, 0.05, 0.1, 0.2} {
		cfg := ChainConfig{Links: 4, LinkEps: eps, Trials: 1}
		pe := 1 - cfg.predictFidelity()
		if pe < prev {
			t.Fatalf("prediction not monotone at eps=%g", eps)
		}
		prev = pe
	}
}

func BenchmarkRunChain4Links(b *testing.B) {
	cfg := ChainConfig{Links: 4, LinkEps: 0.05, PurifyRounds: 1, Trials: 50}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i)
		if _, err := RunChain(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
